// Command isim simulates intermittent DNN inference of a model on the
// MSP430-class device under a chosen power supply, reporting latency,
// energy, power cycles and the active-time breakdown.
//
// Usage:
//
//	isim -model HAR -power weak
//	isim -in har-iprune.model -power 6mW -n 5
//	isim -model HAR -power weak -trace run.json -metrics run.csv -v
//
// Flags:
//
//	-model NAME    SQN, HAR or CKS (fresh, untrained weights; default HAR)
//	-in FILE       simulate a model file written by cmd/iprune instead
//	-power NAME    continuous | strong | weak, or a custom value like 6mW
//	-n N           number of inferences to simulate (default 1)
//	-seed N        random seed for harvest jitter (default 1)
//	-trace FILE    write a Chrome trace-event JSON of the first inference
//	               (open in https://ui.perfetto.dev or chrome://tracing)
//	-metrics FILE  write per-layer latency/energy/NVM-traffic CSV of the
//	               first inference
//	-v             print a per-layer and per-power-cycle summary table
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"iprune"
)

func main() {
	model := flag.String("model", "HAR", "model name: SQN, HAR or CKS")
	in := flag.String("in", "", "model file to simulate")
	powerName := flag.String("power", "strong", "supply: continuous|strong|weak or e.g. 6mW")
	n := flag.Int("n", 1, "inferences to simulate")
	seed := flag.Int64("seed", 1, "harvest jitter seed")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON of the first inference")
	metricsPath := flag.String("metrics", "", "write per-layer metrics CSV of the first inference")
	histPath := flag.String("hist", "", "write latency/energy/utilization histograms CSV of the first inference")
	verbose := flag.Bool("v", false, "print per-layer and power-cycle summary")
	flag.Parse()

	var net *iprune.Network
	var err error
	if *in != "" {
		net, err = iprune.LoadModel(*in)
	} else {
		net, err = iprune.BuildModel(*model, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}

	sup, err := iprune.ParseSupply(*powerName)
	if err != nil {
		log.Fatal(err)
	}

	st, err := iprune.Stats(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s (%d KB, %d K MACs, %d K accelerator outputs)\n",
		net.Name, st.SizeBytes/1024, st.MACs/1000, st.AccOutputs/1000)
	fmt.Printf("supply: %s (%g mW)\n", sup.Name, sup.Power*1e3)

	// Observability is attached to the first inference only: one run is
	// what a trace viewer wants, and repeated inferences differ only by
	// harvest jitter.
	observing := *tracePath != "" || *metricsPath != "" || *histPath != "" || *verbose
	var rec *iprune.TraceRecorder
	if observing {
		rec = iprune.NewTraceRecorder()
	}

	var totalLat, totalEnergy float64
	var totalFail int
	for i := 0; i < *n; i++ {
		var r iprune.SimResult
		if i == 0 && observing {
			r = iprune.SimulateObserved(net, sup, *seed+int64(i), rec)
		} else {
			r = iprune.Simulate(net, sup, *seed+int64(i))
		}
		totalLat += r.Latency
		totalEnergy += r.Energy
		totalFail += r.Failures
		fmt.Printf("inference %d: latency %.3fs (active %.3fs, charging %.3fs), %d power cycles, %.2f mJ\n",
			i+1, r.Latency, r.ActiveTime, r.OffTime, r.Failures, r.Energy*1e3)
		if i == 0 {
			b := r.Break
			total := b.ReadTime + b.WriteTime + b.ComputeTime + b.OverheadTime
			if total > 0 {
				fmt.Printf("  breakdown: NVM-read %.1f%%  NVM-write %.1f%%  compute %.1f%%  overhead %.1f%%  (+recovery %.3fs)\n",
					100*b.ReadTime/total, 100*b.WriteTime/total,
					100*b.ComputeTime/total, 100*b.OverheadTime/total, b.RecoveryTime)
			}
		}
	}
	if *n > 1 {
		fmt.Printf("mean: latency %.3fs, %.1f power cycles, %.2f mJ\n",
			totalLat/float64(*n), float64(totalFail)/float64(*n), totalEnergy*1e3/float64(*n))
	}

	if !observing {
		return
	}
	names := iprune.PrunableLayerNames(net)
	stats := iprune.CollectTrace(rec.Events())

	if *tracePath != "" {
		err := iprune.WriteArtifact(*tracePath, func(w io.Writer) error {
			return iprune.WriteChromeTrace(w, rec.Events(), names)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote trace %s (%d events; open in https://ui.perfetto.dev)\n",
			*tracePath, len(rec.Events()))
	}
	if *metricsPath != "" {
		err := iprune.WriteArtifact(*metricsPath, func(w io.Writer) error {
			return iprune.WriteTraceCSV(w, stats, names)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote metrics %s (%d layers)\n", *metricsPath, len(stats.Layers))
	}
	if *histPath != "" || *verbose {
		m := iprune.NewMetrics()
		stats.Fill(m)
		iprune.ObserveModel(m, net)
		if *histPath != "" {
			err := iprune.WriteArtifact(*histPath, func(w io.Writer) error {
				return iprune.WriteHistogramsCSV(w, m)
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote histograms %s\n", *histPath)
		}
		if *verbose {
			if err := iprune.WriteTraceSummary(os.Stdout, stats, m, names); err != nil {
				log.Fatal(err)
			}
		}
	}
}
