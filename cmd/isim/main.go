// Command isim simulates intermittent DNN inference of a model on the
// MSP430-class device under a chosen power supply, reporting latency,
// energy, power cycles and the active-time breakdown.
//
// Usage:
//
//	isim -model HAR -power weak
//	isim -in har-iprune.model -power 6mW -n 5
//
// Flags:
//
//	-model NAME    SQN, HAR or CKS (fresh, untrained weights; default HAR)
//	-in FILE       simulate a model file written by cmd/iprune instead
//	-power NAME    continuous | strong | weak, or a custom value like 6mW
//	-n N           number of inferences to simulate (default 1)
//	-seed N        random seed for harvest jitter (default 1)
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"iprune"
)

func main() {
	model := flag.String("model", "HAR", "model name: SQN, HAR or CKS")
	in := flag.String("in", "", "model file to simulate")
	powerName := flag.String("power", "strong", "supply: continuous|strong|weak or e.g. 6mW")
	n := flag.Int("n", 1, "inferences to simulate")
	seed := flag.Int64("seed", 1, "harvest jitter seed")
	flag.Parse()

	var net *iprune.Network
	var err error
	if *in != "" {
		net, err = iprune.LoadModel(*in)
	} else {
		net, err = iprune.BuildModel(*model, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}

	sup, err := parseSupply(*powerName)
	if err != nil {
		log.Fatal(err)
	}

	st, err := iprune.Stats(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s (%d KB, %d K MACs, %d K accelerator outputs)\n",
		net.Name, st.SizeBytes/1024, st.MACs/1000, st.AccOutputs/1000)
	fmt.Printf("supply: %s (%g mW)\n", sup.Name, sup.Power*1e3)

	var totalLat, totalEnergy float64
	var totalFail int
	for i := 0; i < *n; i++ {
		r := iprune.Simulate(net, sup, *seed+int64(i))
		totalLat += r.Latency
		totalEnergy += r.Energy
		totalFail += r.Failures
		fmt.Printf("inference %d: latency %.3fs (active %.3fs, charging %.3fs), %d power cycles, %.2f mJ\n",
			i+1, r.Latency, r.ActiveTime, r.OffTime, r.Failures, r.Energy*1e3)
		if i == 0 {
			b := r.Break
			total := b.ReadTime + b.WriteTime + b.ComputeTime + b.OverheadTime
			if total > 0 {
				fmt.Printf("  breakdown: NVM-read %.1f%%  NVM-write %.1f%%  compute %.1f%%  overhead %.1f%%  (+recovery %.3fs)\n",
					100*b.ReadTime/total, 100*b.WriteTime/total,
					100*b.ComputeTime/total, 100*b.OverheadTime/total, b.RecoveryTime)
			}
		}
	}
	if *n > 1 {
		fmt.Printf("mean: latency %.3fs, %.1f power cycles, %.2f mJ\n",
			totalLat/float64(*n), float64(totalFail)/float64(*n), totalEnergy*1e3/float64(*n))
	}
}

func parseSupply(name string) (iprune.Supply, error) {
	switch strings.ToLower(name) {
	case "continuous":
		return iprune.ContinuousPower, nil
	case "strong":
		return iprune.StrongPower, nil
	case "weak":
		return iprune.WeakPower, nil
	}
	if s, ok := strings.CutSuffix(strings.ToLower(name), "mw"); ok {
		mw, err := strconv.ParseFloat(s, 64)
		if err != nil || mw <= 0 {
			return iprune.Supply{}, fmt.Errorf("bad power %q", name)
		}
		return iprune.Supply{Name: name, Power: mw * 1e-3, Jitter: 0.15}, nil
	}
	return iprune.Supply{}, fmt.Errorf("unknown supply %q (continuous|strong|weak|<N>mW)", name)
}
