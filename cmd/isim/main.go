// Command isim simulates intermittent DNN inference of a model on the
// MSP430-class device under a chosen power supply, reporting latency,
// energy, power cycles and the active-time breakdown. It also diffs two
// previously exported metrics CSVs against each other.
//
// Usage:
//
//	isim -model HAR -power weak
//	isim -in har-iprune.model -power 6mW -n 5
//	isim -model HAR -power weak -trace run.json -metrics run.csv -v
//	isim -model HAR -power weak -audit
//	isim -model HAR -sweep 2mW,4mW,8mW,16mW,strong -workers 4
//	isim -compare before.csv after.csv
//
// Flags:
//
//	-model NAME     SQN, HAR or CKS (fresh, untrained weights; default HAR)
//	-in FILE        simulate a model file written by cmd/iprune instead
//	-power NAME     continuous | strong | weak, or a custom value like 6mW
//	-n N            number of inferences to simulate (default 1)
//	-seed N         random seed for harvest jitter (default 1)
//	-trace FILE     stream a Chrome trace-event JSON of the run (open in
//	                https://ui.perfetto.dev or chrome://tracing): one
//	                process section per inference, plus one section
//	                overlaying the functional engine's calibrated trace of
//	                the same model and supply on the same time axis;
//	                events are encoded as they happen, so memory use does
//	                not grow with the run
//	-metrics FILE   write per-layer latency/energy/NVM-traffic CSV of the
//	                first inference
//	-hist FILE      write latency/energy/utilization histograms CSV of
//	                the first inference
//	-sweep LIST     simulate one inference per supply in the
//	                comma-separated list (each entry a -power spelling)
//	                and print one line per operating point; points run
//	                concurrently when -workers > 1, with deterministic
//	                output order
//	-workers N      worker-pool width for -sweep (0 = one per CPU;
//	                default 1, sequential)
//	-audit          audit the first inference's measured per-region and
//	                per-power-cycle energy against the static power-cycle
//	                budget; exits non-zero on a violation
//	-auditlint FILE cross-check an `iprunelint -json` report in the audit
//	                (regionbudget findings fail it)
//	-cpuprofile F   write a runtime/pprof CPU profile of the simulation
//	-memprofile F   write a heap profile taken after the simulation
//	-v              print a per-layer and per-power-cycle summary table
//	-compare        diff two metrics CSVs and exit: per-layer tables
//	                (written by -metrics) diff layer by layer, histogram
//	                exports (written by -hist) diff by p50/p95/p99 tails
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"

	"iprune"
)

func main() {
	model := flag.String("model", "HAR", "model name: SQN, HAR or CKS")
	in := flag.String("in", "", "model file to simulate")
	powerName := flag.String("power", "strong", "supply: continuous|strong|weak or e.g. 6mW")
	n := flag.Int("n", 1, "inferences to simulate")
	seed := flag.Int64("seed", 1, "harvest jitter seed")
	tracePath := flag.String("trace", "", "stream Chrome trace-event JSON of the run")
	metricsPath := flag.String("metrics", "", "write per-layer metrics CSV of the first inference")
	histPath := flag.String("hist", "", "write latency/energy/utilization histograms CSV of the first inference")
	sweep := flag.String("sweep", "", "comma-separated supplies to sweep (e.g. 2mW,4mW,8mW,strong); prints one line per point")
	workers := flag.Int("workers", 1, "parallel workers for -sweep (0 = one per CPU)")
	audit := flag.Bool("audit", false, "audit measured energy against the static power-cycle budget")
	auditLint := flag.String("auditlint", "", "iprunelint -json report to cross-check in the audit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
	memProfile := flag.String("memprofile", "", "write a post-simulation heap profile to this file")
	verbose := flag.Bool("v", false, "print per-layer and power-cycle summary")
	compare := flag.Bool("compare", false, "diff two metrics CSVs: isim -compare A.csv B.csv")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("usage: isim -compare before.csv after.csv")
		}
		if err := compareCSVs(os.Stdout, flag.Arg(0), flag.Arg(1)); err != nil {
			log.Fatal(err)
		}
		return
	}

	var net *iprune.Network
	var err error
	if *in != "" {
		net, err = iprune.LoadModel(*in)
	} else {
		net, err = iprune.BuildModel(*model, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *sweep != "" {
		if err := runSweep(os.Stdout, net, *sweep, *seed, *workers); err != nil {
			log.Fatal(err)
		}
		return
	}

	sup, err := iprune.ParseSupply(*powerName)
	if err != nil {
		log.Fatal(err)
	}

	st, err := iprune.Stats(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s (%d KB, %d K MACs, %d K accelerator outputs)\n",
		net.Name, st.SizeBytes/1024, st.MACs/1000, st.AccOutputs/1000)
	fmt.Printf("supply: %s (%g mW)\n", sup.Name, sup.Power*1e3)

	// Aggregated views (metrics CSV, histograms, summary, audit) ride on
	// a recorder attached to the first inference: repeated inferences
	// differ only by harvest jitter, and the audit's power-cycle
	// accounting needs one run's coherent time axis. The trace artifact
	// streams every inference to disk, each as its own process section.
	names := iprune.PrunableLayerNames(net)
	var rec *iprune.TraceRecorder
	if *metricsPath != "" || *histPath != "" || *verbose || *audit {
		rec = iprune.NewTraceRecorder()
	}
	var stream *iprune.TraceStream
	if *tracePath != "" {
		if stream, err = iprune.CreateTraceStream(*tracePath, names); err != nil {
			log.Fatal(err)
		}
	}

	stopProf, err := iprune.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}

	var totalLat, totalEnergy float64
	var totalFail int
	for i := 0; i < *n; i++ {
		var tr iprune.Tracer
		switch {
		case stream != nil:
			stream.NextProcess(fmt.Sprintf("cost-sim inference %d", i+1), names)
			if i == 0 && rec != nil {
				tr = iprune.TeeTracers(stream, rec)
			} else {
				tr = stream
			}
		case i == 0 && rec != nil:
			tr = rec
		}
		var r iprune.SimResult
		var simErr error
		if tr != nil {
			r, simErr = iprune.SimulateObserved(net, sup, *seed+int64(i), tr)
		} else {
			r, simErr = iprune.Simulate(net, sup, *seed+int64(i))
		}
		if simErr != nil {
			log.Fatal(simErr)
		}
		totalLat += r.Latency
		totalEnergy += r.Energy
		totalFail += r.Failures
		fmt.Printf("inference %d: latency %.3fs (active %.3fs, charging %.3fs), %d power cycles, %.2f mJ\n",
			i+1, r.Latency, r.ActiveTime, r.OffTime, r.Failures, r.Energy*1e3)
		if i == 0 {
			b := r.Break
			total := b.ReadTime + b.WriteTime + b.ComputeTime + b.OverheadTime
			if total > 0 {
				fmt.Printf("  breakdown: NVM-read %.1f%%  NVM-write %.1f%%  compute %.1f%%  overhead %.1f%%  (+recovery %.3fs)\n",
					100*b.ReadTime/total, 100*b.WriteTime/total,
					100*b.ComputeTime/total, 100*b.OverheadTime/total, b.RecoveryTime)
			}
		}
	}
	if *n > 1 {
		fmt.Printf("mean: latency %.3fs, %.1f power cycles, %.2f mJ\n",
			totalLat/float64(*n), float64(totalFail)/float64(*n), totalEnergy*1e3/float64(*n))
	}

	if stream != nil {
		// Overlay the functional engine's energy-calibrated trace of the
		// same model and supply as one more process section: both
		// backends then share the microsecond/joule axis in the viewer.
		stream.NextProcess("engine (calibrated)", names)
		if err := iprune.ObserveEngine(net, sup, *seed, stream, nil); err != nil {
			log.Fatal(err)
		}
	}

	if err := stopProf(); err != nil {
		log.Fatal(err)
	}

	if stream != nil {
		// A failed Close means the artifact is truncated: exit non-zero
		// rather than reporting a file that will not load.
		if err := stream.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote trace %s (%d events, streamed; open in https://ui.perfetto.dev)\n",
			*tracePath, stream.Events())
	}
	if rec == nil {
		return
	}
	stats := iprune.CollectTrace(rec.Events())

	if *metricsPath != "" {
		err := iprune.WriteArtifact(*metricsPath, func(w io.Writer) error {
			return iprune.WriteTraceCSV(w, stats, names)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote metrics %s (%d layers)\n", *metricsPath, len(stats.Layers))
	}
	if *histPath != "" || *verbose {
		m := iprune.NewMetrics()
		stats.Fill(m)
		iprune.ObserveModel(m, net)
		if *histPath != "" {
			err := iprune.WriteArtifact(*histPath, func(w io.Writer) error {
				return iprune.WriteHistogramsCSV(w, m)
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote histograms %s\n", *histPath)
		}
		if *verbose {
			if err := iprune.WriteTraceSummary(os.Stdout, stats, m, names); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *audit {
		report := iprune.AuditTrace(rec.Events(), sup)
		if *auditLint != "" {
			f, err := os.Open(*auditLint)
			if err != nil {
				log.Fatal(err)
			}
			count, err := iprune.CountRegionFindings(f)
			f.Close() //iprune:allow-err read-only file; decode errors dominate
			if err != nil {
				log.Fatal(err)
			}
			report.StaticFindings = count
		}
		if err := report.WriteReport(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if report.Failed() {
			os.Exit(1)
		}
	}
}

// runSweep simulates one inference per supply in list (comma-separated
// -power spellings), fanned out -workers wide over the internal worker
// pool, and prints one line per operating point in input order. Points
// that cannot complete (e.g. a supply too weak to charge one op) print
// their error on the point's line instead of failing the whole sweep.
func runSweep(w io.Writer, net *iprune.Network, list string, seed int64, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var sups []iprune.Supply
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		sup, err := iprune.ParseSupply(name)
		if err != nil {
			return err
		}
		sups = append(sups, sup)
	}
	if len(sups) == 0 {
		return fmt.Errorf("isim: -sweep needs at least one supply")
	}
	st, err := iprune.Stats(net)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "model: %s (%d KB, %d K MACs, %d K accelerator outputs)\n",
		net.Name, st.SizeBytes/1024, st.MACs/1000, st.AccOutputs/1000); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "sweep: %d supplies, %d worker(s)\n", len(sups), workers); err != nil {
		return err
	}
	for _, p := range iprune.PowerSweep(net, sups, seed, workers) {
		if p.Err != nil {
			if _, err := fmt.Fprintf(w, "%-12s %8.3f mW  error: %v\n", p.Supply.Name, p.Supply.Power*1e3, p.Err); err != nil {
				return err
			}
			continue
		}
		r := p.Result
		if _, err := fmt.Fprintf(w, "%-12s %8.3f mW  latency %8.3fs  %4d power cycles  %8.2f mJ\n",
			p.Supply.Name, p.Supply.Power*1e3, r.Latency, r.Failures, r.Energy*1e3); err != nil {
			return err
		}
	}
	return nil
}

// compareCSVs diffs two metrics CSV exports and renders the comparison
// table: per-layer run stats (the -metrics format) layer by layer, or
// histogram exports (the -hist format) by count, mean and tail
// quantiles. The format is sniffed from the header line, so both sides
// must be the same kind.
func compareCSVs(w io.Writer, pathA, pathB string) error {
	if isHistCSV(pathA) || isHistCSV(pathB) {
		before, err := readHistFile(pathA)
		if err != nil {
			return err
		}
		after, err := readHistFile(pathB)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "comparing %s vs %s\n", pathA, pathB); err != nil {
			return err
		}
		return iprune.WriteHistogramDiffTable(w, before, after)
	}
	before, namesA, err := readStatsFile(pathA)
	if err != nil {
		return err
	}
	after, namesB, err := readStatsFile(pathB)
	if err != nil {
		return err
	}
	names := namesA
	if len(namesB) > len(names) {
		names = namesB
	}
	if _, err := fmt.Fprintf(w, "comparing %s vs %s\n", pathA, pathB); err != nil {
		return err
	}
	return iprune.WriteTraceDiffTable(w, iprune.DiffTrace(before, after), names)
}

// isHistCSV sniffs whether path is a histogram export (the -hist
// format) by its header line.
func isHistCSV(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close() //iprune:allow-err read-only sniff; the real read reopens
	var head [13]byte
	n, _ := f.Read(head[:])
	return bytes.HasPrefix(head[:n], []byte("histogram,le,"))
}

func readStatsFile(path string) (*iprune.RunStats, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() //iprune:allow-err read-only file; ReadTraceCSV errors dominate
	s, names, err := iprune.ReadTraceCSV(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, names, nil
}

func readHistFile(path string) (*iprune.Metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //iprune:allow-err read-only file; ReadHistogramsCSV errors dominate
	m, err := iprune.ReadHistogramsCSV(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}
