package main

import (
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iprune"
)

// TestSupplyParsing pins the -power flag grammar end to end as the CLI
// resolves it: the paper's named operating points, custom milliwatt
// values, and rejection of malformed inputs.
func TestSupplyParsing(t *testing.T) {
	good := []struct {
		in    string
		watts float64
	}{
		{"continuous", 1.65},
		{"strong", 8e-3},
		{"weak", 4e-3},
		{"Weak", 4e-3},
		{"6mW", 6e-3},
		{"6mw", 6e-3},
		{"0.25mW", 0.25e-3},
	}
	for _, c := range good {
		sup, err := iprune.ParseSupply(c.in)
		if err != nil {
			t.Errorf("-power %s: %v", c.in, err)
			continue
		}
		if math.Abs(sup.Power-c.watts) > 1e-15 {
			t.Errorf("-power %s: %g W, want %g W", c.in, sup.Power, c.watts)
		}
	}
	for _, in := range []string{"", "mains", "6", "6w", "0mW", "-2mW", "NaNmW", "InfmW", "xmW"} {
		if sup, err := iprune.ParseSupply(in); err == nil {
			t.Errorf("-power %s: accepted as %+v, want error", in, sup)
		}
	}
	// Named supplies resolve to the package-level operating points, so a
	// scripted `-power weak` is exactly the paper's 4 mW point.
	if sup, _ := iprune.ParseSupply("weak"); sup != iprune.WeakPower {
		t.Errorf("weak resolved to %+v", sup)
	}
}

// TestCompareCSVs drives the -compare mode end to end: two simulated
// runs exported via the -metrics schema, loaded back and diffed.
func TestCompareCSVs(t *testing.T) {
	net, err := iprune.BuildModel("HAR", 2)
	if err != nil {
		t.Fatal(err)
	}
	names := iprune.PrunableLayerNames(net)
	dir := t.TempDir()
	write := func(name string, sup iprune.Supply) string {
		rec := iprune.NewTraceRecorder()
		iprune.SimulateObserved(net, sup, 2, rec)
		path := filepath.Join(dir, name)
		err := iprune.WriteArtifact(path, func(w io.Writer) error {
			return iprune.WriteTraceCSV(w, iprune.CollectTrace(rec.Events()), names)
		})
		if err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := write("strong.csv", iprune.StrongPower)
	b := write("weak.csv", iprune.WeakPower)

	var sb strings.Builder
	if err := compareCSVs(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range append([]string{"total", "->"}, names...) {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
	// Self-compare renders without arrows (no metric changed).
	sb.Reset()
	if err := compareCSVs(&sb, a, a); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "->") {
		t.Errorf("self-compare must not show changes:\n%s", sb.String())
	}
	if err := compareCSVs(io.Discard, a, filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("compare must surface a missing input file")
	}
}

func TestWriteArtifactWritesAndPropagatesErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	err := iprune.WriteArtifact(path, func(w io.Writer) error {
		_, err := w.Write([]byte("ok"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "ok" {
		t.Fatalf("read back %q, %v", data, err)
	}

	sentinel := errors.New("render failed")
	err = iprune.WriteArtifact(filepath.Join(t.TempDir(), "bad.txt"), func(io.Writer) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("WriteArtifact swallowed the render error: %v", err)
	}

	if err := iprune.WriteArtifact(filepath.Join(t.TempDir(), "no", "such", "dir.txt"), func(io.Writer) error { return nil }); err == nil {
		t.Error("WriteArtifact must surface create errors")
	}
}
