package main

import (
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"iprune"
)

// TestSupplyParsing pins the -power flag grammar end to end as the CLI
// resolves it: the paper's named operating points, custom milliwatt
// values, and rejection of malformed inputs.
func TestSupplyParsing(t *testing.T) {
	good := []struct {
		in    string
		watts float64
	}{
		{"continuous", 1.65},
		{"strong", 8e-3},
		{"weak", 4e-3},
		{"Weak", 4e-3},
		{"6mW", 6e-3},
		{"6mw", 6e-3},
		{"0.25mW", 0.25e-3},
	}
	for _, c := range good {
		sup, err := iprune.ParseSupply(c.in)
		if err != nil {
			t.Errorf("-power %s: %v", c.in, err)
			continue
		}
		if math.Abs(sup.Power-c.watts) > 1e-15 {
			t.Errorf("-power %s: %g W, want %g W", c.in, sup.Power, c.watts)
		}
	}
	for _, in := range []string{"", "mains", "6", "6w", "0mW", "-2mW", "NaNmW", "InfmW", "xmW"} {
		if sup, err := iprune.ParseSupply(in); err == nil {
			t.Errorf("-power %s: accepted as %+v, want error", in, sup)
		}
	}
	// Named supplies resolve to the package-level operating points, so a
	// scripted `-power weak` is exactly the paper's 4 mW point.
	if sup, _ := iprune.ParseSupply("weak"); sup != iprune.WeakPower {
		t.Errorf("weak resolved to %+v", sup)
	}
}

func TestWriteArtifactWritesAndPropagatesErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	err := iprune.WriteArtifact(path, func(w io.Writer) error {
		_, err := w.Write([]byte("ok"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "ok" {
		t.Fatalf("read back %q, %v", data, err)
	}

	sentinel := errors.New("render failed")
	err = iprune.WriteArtifact(filepath.Join(t.TempDir(), "bad.txt"), func(io.Writer) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("WriteArtifact swallowed the render error: %v", err)
	}

	if err := iprune.WriteArtifact(filepath.Join(t.TempDir(), "no", "such", "dir.txt"), func(io.Writer) error { return nil }); err == nil {
		t.Error("WriteArtifact must surface create errors")
	}
}
