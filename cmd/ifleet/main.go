//iprune:allow-err diagnostics print to the process stdio (or a test buffer); a failed write there has no recovery path

// Command ifleet runs declarative fleet scenarios: a JSON file describes
// a heterogeneous fleet of intermittent devices, a timed event script
// (harvest changes, brownout storms, model switches) and end-of-run
// assertions; every node runs the real HAWAII⁺ cost simulator with only
// its power layer scripted.
//
// Usage:
//
//	ifleet run [-workers N] [-trace FILE] scenario.json
//	ifleet validate scenario.json
//
// run simulates the scenario and prints the per-node summary, the fleet
// rollup and the assertion verdicts; output is byte-identical for any
// -workers width. It exits non-zero when an assertion fails or a node
// errors. validate checks the scenario's schema, cross-references and
// assertion shapes without simulating anything.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iprune"
	"iprune/internal/fleet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: ifleet run [-workers N] [-trace FILE] scenario.json")
	fmt.Fprintln(stderr, "       ifleet validate scenario.json")
	return 2
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		return usage(stderr)
	}
	switch args[0] {
	case "run":
		return runScenario(args[1:], stdout, stderr)
	case "validate":
		return validateScenario(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "ifleet: unknown subcommand %q\n", args[0])
		return usage(stderr)
	}
}

func runScenario(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ifleet run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workers := fs.Int("workers", 1, "fan-out width across nodes (<=0: GOMAXPROCS)")
	tracePath := fs.String("trace", "", "write the merged Chrome trace (one section per node)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		return usage(stderr)
	}
	sc, err := fleet.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	rep, err := fleet.Run(sc, fleet.Options{Workers: *workers})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := rep.WriteSummary(stdout); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *tracePath != "" {
		if err := iprune.WriteArtifact(*tracePath, rep.WriteTrace); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if rep.Failed() {
		return 1
	}
	return 0
}

func validateScenario(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ifleet validate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		return usage(stderr)
	}
	sc, err := fleet.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "%s: %d nodes, %d events, %d assertions — ok\n",
		sc.Name, len(sc.Nodes), len(sc.Events), len(sc.Assertions))
	return 0
}
