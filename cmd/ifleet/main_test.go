package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const smokePath = "../../examples/fleet/smoke.json"

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestSmokeDeterministicAcrossWorkers pins the acceptance criterion:
// the shipped smoke scenario passes and its output is byte-identical
// for -workers 1 and -workers 4.
func TestSmokeDeterministicAcrossWorkers(t *testing.T) {
	code1, out1, err1 := runCmd(t, "run", "-workers", "1", smokePath)
	if code1 != 0 {
		t.Fatalf("workers=1 exit %d\nstdout:\n%s\nstderr:\n%s", code1, out1, err1)
	}
	code4, out4, _ := runCmd(t, "run", "-workers", "4", smokePath)
	if code4 != 0 {
		t.Fatalf("workers=4 exit %d", code4)
	}
	if out1 != out4 {
		t.Fatalf("output differs between -workers 1 and 4:\n--- 1:\n%s--- 4:\n%s", out1, out4)
	}
	if !strings.Contains(out1, "PASS (") {
		t.Fatalf("smoke scenario did not pass:\n%s", out1)
	}
}

func TestFailingAssertionExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "strict.json")
	scenario := `{
	  "name": "strict", "seed": 1,
	  "nodes": [{"id": "w", "model": "HAR", "supply": "weak"}],
	  "assertions": [{"type": "max-recoveries", "max": 0}]
	}`
	if err := os.WriteFile(path, []byte(scenario), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCmd(t, "run", path)
	if code == 0 {
		t.Fatalf("violated assertion exited 0:\n%s", out)
	}
	if !strings.Contains(out, "check FAIL") {
		t.Errorf("failure not surfaced in summary:\n%s", out)
	}
}

func TestValidate(t *testing.T) {
	code, out, _ := runCmd(t, "validate", smokePath)
	if code != 0 || !strings.Contains(out, "ok") {
		t.Fatalf("validate exit %d, out %q", code, out)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":"x","seed":1,"nodes":[{"id":"a","model":"NOPE","supply":"weak"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errOut := runCmd(t, "validate", bad); code == 0 || !strings.Contains(errOut, "unknown model") {
		t.Fatalf("bad scenario: exit %d, stderr %q", code, errOut)
	}
}

func TestUsageAndTraceArtifact(t *testing.T) {
	if code, _, _ := runCmd(t); code != 2 {
		t.Error("no-args must exit 2")
	}
	if code, _, _ := runCmd(t, "bogus"); code != 2 {
		t.Error("unknown subcommand must exit 2")
	}
	if code, _, _ := runCmd(t, "run"); code != 2 {
		t.Error("run without a scenario must exit 2")
	}
	tracePath := filepath.Join(t.TempDir(), "fleet.json")
	if code, _, errOut := runCmd(t, "run", "-trace", tracePath, smokePath); code != 0 {
		t.Fatalf("run -trace exit %d: %s", code, errOut)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) {
		t.Error("trace artifact is not valid JSON")
	}
	for _, id := range []string{"har-weak", "har-storm", "cks-solar"} {
		if !bytes.Contains(raw, []byte(id)) {
			t.Errorf("trace missing node section %q", id)
		}
	}
}
