// Command repro regenerates every table and figure of the paper's
// evaluation (Section IV) from this repository's implementation.
//
// Usage:
//
//	repro [flags] <what>
//
// where <what> is one of: table1, table2, table3, fig2, fig5, layers, all.
//
// Flags:
//
//	-scale quick|full   pipeline scale (default quick; full is the
//	                    paper-style run used for EXPERIMENTS.md)
//	-cache DIR          cache trained/pruned models under DIR
//	-seed N             master random seed (default 42)
//	-q                  quiet: suppress progress logging
//	-csv FILE           also write tidy results CSV (pipeline targets only)
//	-artifacts DIR      stream a Chrome trace of each regenerated target to
//	                    DIR/<target>/trace.json (table1 has no simulation
//	                    and writes none); traces stream straight to disk,
//	                    so -scale full stays bounded in memory
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"iprune/internal/models"
	"iprune/internal/obs"
	"iprune/internal/report"
)

func main() {
	scale := flag.String("scale", "quick", "pipeline scale: quick or full")
	cache := flag.String("cache", "", "cache directory for trained/pruned models")
	seed := flag.Int64("seed", 42, "master random seed")
	quiet := flag.Bool("q", false, "suppress progress logging")
	csvPath := flag.String("csv", "", "also write tidy results CSV to this path")
	artifacts := flag.String("artifacts", "", "stream per-target trace artifacts under DIR/<target>/trace.json")
	flag.Parse()
	what := flag.Arg(0)
	if what == "" {
		what = "all"
	}

	var sc report.Scale
	switch *scale {
	case "quick":
		sc = report.Quick
	case "full":
		sc = report.Full
	default:
		log.Fatalf("unknown scale %q (quick or full)", *scale)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	needsPipeline := map[string]bool{"table2": true, "table3": true, "fig5": true, "layers": true, "all": true}
	var results []*report.AppResult
	if needsPipeline[what] {
		var err error
		results, err = report.RunAll(sc, *seed, *cache, logf)
		if err != nil {
			log.Fatal(err)
		}
		if *csvPath != "" {
			// obs.WriteFile surfaces close/flush errors, so a full disk is
			// a failed run rather than a truncated results file.
			if err := obs.WriteFile(*csvPath, func(w io.Writer) error {
				return report.WriteCSV(w, results)
			}); err != nil {
				log.Fatal(err)
			}
		}
	}

	// writeTrace streams one target's Chrome trace artifact. Any create,
	// write or close failure is fatal: a truncated trace.json will not
	// load in a viewer and must not look like a produced artifact.
	writeTrace := func(target string, render func(io.Writer) error) {
		if *artifacts == "" {
			return
		}
		dir := filepath.Join(*artifacts, target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(dir, "trace.json")
		if err := obs.WriteFile(path, render); err != nil {
			log.Fatal(err)
		}
		if logf != nil {
			logf("wrote %s", path)
		}
	}
	if what == "fig2" || what == "all" {
		writeTrace("fig2", func(w io.Writer) error { return report.WriteFig2Traces(w, *seed) })
	}
	if needsPipeline[what] {
		writeTrace(what, func(w io.Writer) error { return report.WriteRunTraces(w, results, *seed) })
	}

	switch what {
	case "table1":
		fmt.Print(report.RenderTable1())
	case "table2":
		fmt.Print(report.RenderTable2(results))
	case "table3":
		fmt.Print(report.RenderTable3(results))
	case "fig2":
		printFig2(sc, *seed)
	case "fig5":
		fmt.Print(report.RenderFig5(results))
	case "layers":
		for _, r := range results {
			fmt.Print(report.RenderLayerTable(r))
		}
	case "all":
		fmt.Print(report.RenderTable1())
		fmt.Println()
		fmt.Print(report.RenderTable2(results))
		fmt.Println()
		fmt.Print(report.RenderTable3(results))
		fmt.Println()
		printFig2(sc, *seed)
		fmt.Println()
		fmt.Print(report.RenderFig5(results))
		fmt.Println()
		for _, r := range results {
			fmt.Print(report.RenderLayerTable(r))
		}
	default:
		log.Fatalf("unknown target %q (table1|table2|table3|fig2|fig5|layers|all)", what)
	}
}

func printFig2(sc report.Scale, seed int64) {
	for _, app := range models.Names() {
		conv, inter, err := report.Fig2Breakdown(app, sc, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report.RenderFig2(app, conv, inter))
	}
}
