// Command repro regenerates every table and figure of the paper's
// evaluation (Section IV) from this repository's implementation.
//
// Usage:
//
//	repro [flags] <what>
//
// where <what> is one of: table1, table2, table3, fig2, fig5, layers, all.
//
// Flags:
//
//	-scale quick|full   pipeline scale (default quick; full is the
//	                    paper-style run used for EXPERIMENTS.md)
//	-cache DIR          cache trained/pruned models under DIR
//	-seed N             master random seed (default 42)
//	-q                  quiet: suppress progress logging
//	-csv FILE           also write tidy results CSV (pipeline targets only)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"iprune/internal/models"
	"iprune/internal/report"
)

func main() {
	scale := flag.String("scale", "quick", "pipeline scale: quick or full")
	cache := flag.String("cache", "", "cache directory for trained/pruned models")
	seed := flag.Int64("seed", 42, "master random seed")
	quiet := flag.Bool("q", false, "suppress progress logging")
	csvPath := flag.String("csv", "", "also write tidy results CSV to this path")
	flag.Parse()
	what := flag.Arg(0)
	if what == "" {
		what = "all"
	}

	var sc report.Scale
	switch *scale {
	case "quick":
		sc = report.Quick
	case "full":
		sc = report.Full
	default:
		log.Fatalf("unknown scale %q (quick or full)", *scale)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	needsPipeline := map[string]bool{"table2": true, "table3": true, "fig5": true, "layers": true, "all": true}
	var results []*report.AppResult
	if needsPipeline[what] {
		var err error
		results, err = report.RunAll(sc, *seed, *cache, logf)
		if err != nil {
			log.Fatal(err)
		}
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				log.Fatal(err)
			}
			if err := report.WriteCSV(f, results); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}

	switch what {
	case "table1":
		fmt.Print(report.RenderTable1())
	case "table2":
		fmt.Print(report.RenderTable2(results))
	case "table3":
		fmt.Print(report.RenderTable3(results))
	case "fig2":
		printFig2(sc, *seed)
	case "fig5":
		fmt.Print(report.RenderFig5(results))
	case "layers":
		for _, r := range results {
			fmt.Print(report.RenderLayerTable(r))
		}
	case "all":
		fmt.Print(report.RenderTable1())
		fmt.Println()
		fmt.Print(report.RenderTable2(results))
		fmt.Println()
		fmt.Print(report.RenderTable3(results))
		fmt.Println()
		printFig2(sc, *seed)
		fmt.Println()
		fmt.Print(report.RenderFig5(results))
		fmt.Println()
		for _, r := range results {
			fmt.Print(report.RenderLayerTable(r))
		}
	default:
		log.Fatalf("unknown target %q (table1|table2|table3|fig2|fig5|layers|all)", what)
	}
}

func printFig2(sc report.Scale, seed int64) {
	for _, app := range models.Names() {
		conv, inter, err := report.Fig2Breakdown(app, sc, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report.RenderFig2(app, conv, inter))
	}
}
