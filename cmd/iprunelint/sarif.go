package main

// SARIF 2.1.0 rendering for -sarif: the static-analysis interchange
// format GitHub code scanning ingests. Only the slice of the spec the
// findings need is modeled — a single run, one rule per analyzer (plus
// the directive parser's own findings under "directives"), and physical
// locations with module-root-relative URIs.

import (
	"encoding/json"
	"io"

	"iprune/internal/analysis"
)

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the diagnostics (whose filenames must already be
// module-root-relative, forward-slash form) as one SARIF run. Every
// analyzer contributes a rule even when it found nothing, so consumers
// can tell "clean" from "not run".
func writeSARIF(w io.Writer, diags []analysis.Diagnostic, analyzers []*analysis.Analyzer) error {
	driver := sarifDriver{Name: "iprunelint"}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	driver.Rules = append(driver.Rules, sarifRule{
		ID:               "directives",
		ShortDescription: sarifMessage{Text: "//iprune: directives are well formed"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		line := d.Pos.Line
		if line < 1 {
			line = 1 // SARIF requires 1-based regions
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       d.Pos.Filename,
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	})
}
