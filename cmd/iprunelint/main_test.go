package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module named "iprune" (the analyzer
// scopes key on that module path) and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module iprune\n\ngo 1.21\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runLint(t *testing.T, dir string, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(append([]string{"-dir", dir}, args...), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestExitCodeClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/fixed/fixed.go": "package fixed\n\nfunc Add(a, b int16) int16 { return a + b }\n",
	})
	code, stdout, stderr := runLint(t, dir, "./...")
	if code != 0 {
		t.Fatalf("clean module: exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean module printed findings: %s", stdout)
	}
}

func TestExitCodeFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/fixed/fixed.go": "package fixed\n\nfunc Scale(x float64) float64 { return x * 1.5 }\n",
	})
	code, stdout, stderr := runLint(t, dir, "./...")
	if code != 1 {
		t.Fatalf("float in kernel package: exit %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "floatpurity") {
		t.Errorf("findings output missing analyzer name:\n%s", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr missing findings count: %s", stderr)
	}
}

func TestExitCodeOperationalError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/fixed/fixed.go": "package fixed\n\nfunc Broken( {\n",
	})
	code, _, stderr := runLint(t, dir, "./...")
	if code != 2 {
		t.Fatalf("syntax error: exit %d, want 2\nstderr: %s", code, stderr)
	}
	if stderr == "" {
		t.Error("syntax error reported nothing on stderr")
	}
}

func TestExitCodeBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/fixed/fixed.go": "package fixed\n\nfunc Scale(x float64) float64 { return x * 1.5 }\n",
	})
	code, stdout, _ := runLint(t, dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, stdout)
	}
	if len(findings) == 0 {
		t.Fatal("-json emitted an empty array for a dirty module")
	}
	f := findings[0]
	if f.File != "internal/fixed/fixed.go" || f.Line == 0 || f.Analyzer != "floatpurity" || f.Message == "" {
		t.Errorf("finding fields = %+v", f)
	}

	// A clean run still emits valid JSON: an empty array, not nothing.
	clean := writeModule(t, map[string]string{
		"internal/fixed/fixed.go": "package fixed\n\nfunc Add(a, b int16) int16 { return a + b }\n",
	})
	code, stdout, _ = runLint(t, clean, "-json", "./...")
	if code != 0 || strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json run: exit %d, stdout %q", code, stdout)
	}
}

func TestCacheFlag(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/fixed/fixed.go": "package fixed\n\nfunc Scale(x float64) float64 { return x * 1.5 }\n",
		"internal/nn/nn.go":       "package nn\n\nfunc Fine(x int) int { return x }\n",
	})
	code, cold, coldErr := runLint(t, dir, "-cache", "-json", "./...")
	if code != 1 {
		t.Fatalf("cold cached run: exit %d, want 1\nstderr: %s", code, coldErr)
	}
	if !strings.Contains(coldErr, "cache: 0 reused, 2 analyzed") {
		t.Errorf("cold run stderr missing cache accounting: %s", coldErr)
	}
	code, warm, warmErr := runLint(t, dir, "-cache", "-json", "./...")
	if code != 1 {
		t.Fatalf("warm cached run: exit %d, want 1\nstderr: %s", code, warmErr)
	}
	if !strings.Contains(warmErr, "cache: 2 reused, 0 analyzed") {
		t.Errorf("warm run re-analyzed packages: %s", warmErr)
	}
	// The whole point: a warm run's findings are byte-identical.
	if warm != cold {
		t.Errorf("warm -json output differs from cold:\ncold: %s\nwarm: %s", cold, warm)
	}
	if _, err := os.Stat(filepath.Join(dir, ".iprunelint.cache")); err != nil {
		t.Errorf("default cache directory not created: %v", err)
	}
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, name := range []string{"floatpurity", "warhazard", "parsafe", "floatflow", "allocflow", "errcheck", "regionbudget", "lockorder", "goleak"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, stdout.String())
		}
	}
	// Each analyzer with an escape hatch names its suppression directive.
	for _, dir := range []string{"//iprune:allow-float", "//iprune:allow-conc", "//iprune:allow-budget"} {
		if !strings.Contains(stdout.String(), dir) {
			t.Errorf("-list missing directive %s:\n%s", dir, stdout.String())
		}
	}
}

// dirtyModule declares findings for several analyzers across multiple
// packages — per-package and module-level, including the concflow pair —
// so driver-equivalence tests exercise every task kind.
func dirtyModule(t *testing.T) string {
	return writeModule(t, map[string]string{
		"internal/fixed/fixed.go": "package fixed\n\nfunc Scale(x float64) float64 { return x * 1.5 }\n",
		"internal/nn/nn.go": `package nn

import "sync"

var muA, muB sync.Mutex

func AB() { muA.Lock(); muB.Lock(); muB.Unlock(); muA.Unlock() }
func BA() { muB.Lock(); muA.Lock(); muA.Unlock(); muB.Unlock() }

func Leak() {
	go func() {
		for {
		}
	}()
}
`,
		"internal/util/util.go": `package util

import "os"

func Touch(name string) {
	os.Remove(name)
}
`,
	})
}

// TestWorkersByteIdentical pins the tentpole driver contract: the
// parallel driver's -json output is byte-for-byte the sequential
// driver's, cached and uncached.
func TestWorkersByteIdentical(t *testing.T) {
	dir := dirtyModule(t)
	code, seq, seqErr := runLint(t, dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("sequential run: exit %d, want 1\nstderr: %s", code, seqErr)
	}
	if !strings.Contains(seq, "lockorder") || !strings.Contains(seq, "goleak") || !strings.Contains(seq, "floatpurity") {
		t.Fatalf("dirty module did not exercise the expected analyzers:\n%s", seq)
	}
	for _, workers := range []string{"2", "8"} {
		code, par, parErr := runLint(t, dir, "-workers", workers, "-json", "./...")
		if code != 1 {
			t.Fatalf("-workers %s run: exit %d, want 1\nstderr: %s", workers, code, parErr)
		}
		if par != seq {
			t.Errorf("-workers %s output differs from sequential:\nseq: %s\npar: %s", workers, seq, par)
		}
	}

	// Cached: a parallel cold run fills the cache, a parallel warm run
	// hits everything and still matches the sequential output.
	code, cold, coldErr := runLint(t, dir, "-workers", "8", "-cache", "-json", "./...")
	if code != 1 {
		t.Fatalf("parallel cold cached run: exit %d\nstderr: %s", code, coldErr)
	}
	if cold != seq {
		t.Errorf("parallel cold cached output differs from sequential:\nseq: %s\ncold: %s", seq, cold)
	}
	code, warm, warmErr := runLint(t, dir, "-workers", "8", "-cachestats", "-json", "./...")
	if code != 1 {
		t.Fatalf("parallel warm cached run: exit %d\nstderr: %s", code, warmErr)
	}
	if warm != seq {
		t.Errorf("parallel warm cached output differs from sequential:\nseq: %s\nwarm: %s", seq, warm)
	}
	if !strings.Contains(warmErr, "0 miss(es), 0 invalidation(s)") {
		t.Errorf("parallel warm run was not fully cached: %s", warmErr)
	}
}

func TestSARIFOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/fixed/fixed.go": "package fixed\n\nfunc Scale(x float64) float64 { return x * 1.5 }\n",
	})
	code, stdout, stderr := runLint(t, dir, "-sarif", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("-sarif output is not JSON: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "iprunelint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"floatpurity", "regionbudget", "warhazard", "directives"} {
		if !ruleIDs[want] {
			t.Errorf("rules missing %s", want)
		}
	}
	if len(run.Results) == 0 {
		t.Fatal("dirty module produced no SARIF results")
	}
	res := run.Results[0]
	if res.RuleID != "floatpurity" || res.Level != "warning" || res.Message.Text == "" {
		t.Errorf("result = %+v", res)
	}
	if len(res.Locations) != 1 {
		t.Fatalf("%d locations", len(res.Locations))
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/fixed/fixed.go" || loc.Region.StartLine < 1 {
		t.Errorf("location = %+v", loc)
	}
	if !ruleIDs[res.RuleID] {
		t.Errorf("result rule %q not declared in rules", res.RuleID)
	}

	// A clean run still emits a complete log with an empty results array.
	clean := writeModule(t, map[string]string{
		"internal/fixed/fixed.go": "package fixed\n\nfunc Add(a, b int16) int16 { return a + b }\n",
	})
	code, stdout, _ = runLint(t, clean, "-sarif", "./...")
	if code != 0 {
		t.Fatalf("clean -sarif run: exit %d", code)
	}
	if !strings.Contains(stdout, `"results": []`) {
		t.Errorf("clean -sarif run missing empty results array:\n%s", stdout)
	}
}

// TestSARIFGolden pins the full SARIF log of a small fixture module
// byte-for-byte (sarifcheck validates shape in check.sh; this catches
// any drift in field order, indentation, rule metadata or escaping).
// Regenerate after an intentional emitter change with:
//
//	UPDATE_SARIF_GOLDEN=1 go test ./cmd/iprunelint -run TestSARIFGolden
func TestSARIFGolden(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/fixed/fixed.go": `package fixed

//iprune:allow-floot typo exercises the directives rule
func Scale(x float64) float64 { return x * 1.5 }
`,
	})
	code, stdout, stderr := runLint(t, dir, "-sarif", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr)
	}
	golden := filepath.Join("testdata", "golden.sarif")
	if os.Getenv("UPDATE_SARIF_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(stdout), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_SARIF_GOLDEN=1): %v", err)
	}
	if stdout != string(want) {
		t.Errorf("SARIF output diverged from %s (regenerate with UPDATE_SARIF_GOLDEN=1 if intended):\ngot:\n%s\nwant:\n%s",
			golden, stdout, want)
	}
}

func TestJSONSARIFExclusive(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-sarif"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-json -sarif: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "mutually exclusive") {
		t.Errorf("stderr: %s", stderr.String())
	}
}

// TestCacheStatsFlag pins the expanded accounting: a cold run misses
// everything, a warm run hits everything, and editing one package turns
// exactly its entry into an invalidation.
func TestCacheStatsFlag(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/fixed/fixed.go": "package fixed\n\nfunc Scale(x float64) float64 { return x * 1.5 }\n",
		"internal/nn/nn.go":       "package nn\n\nfunc Fine(x int) int { return x }\n",
	})
	code, _, cold := runLint(t, dir, "-cachestats", "./...")
	if code != 1 {
		t.Fatalf("cold run: exit %d, want 1\nstderr: %s", code, cold)
	}
	if !strings.Contains(cold, "cache: 0 hit(s), 2 miss(es), 0 invalidation(s)") {
		t.Errorf("cold run accounting: %s", cold)
	}
	if !strings.Contains(cold, "reanalyzed: iprune/internal/fixed") ||
		!strings.Contains(cold, "reanalyzed: iprune/internal/nn") {
		t.Errorf("cold run missing reanalyzed packages: %s", cold)
	}
	code, _, warm := runLint(t, dir, "-cachestats", "./...")
	if code != 1 {
		t.Fatalf("warm run: exit %d, want 1\nstderr: %s", code, warm)
	}
	if !strings.Contains(warm, "cache: 2 hit(s), 0 miss(es), 0 invalidation(s)") {
		t.Errorf("warm run accounting: %s", warm)
	}
	if strings.Contains(warm, "reanalyzed:") {
		t.Errorf("warm run re-analyzed something: %s", warm)
	}

	// Editing one package invalidates its stored entry (stale key), while
	// the untouched package still hits.
	edited := "package fixed\n\nfunc Scale(x float64) float64 { return x * 2.5 }\n"
	if err := os.WriteFile(filepath.Join(dir, "internal/fixed/fixed.go"), []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stale := runLint(t, dir, "-cachestats", "./...")
	if code != 1 {
		t.Fatalf("stale run: exit %d, want 1\nstderr: %s", code, stale)
	}
	if !strings.Contains(stale, "cache: 1 hit(s), 1 miss(es), 1 invalidation(s)") {
		t.Errorf("stale run accounting: %s", stale)
	}
	if !strings.Contains(stale, "reanalyzed: iprune/internal/fixed") {
		t.Errorf("stale run missing the edited package: %s", stale)
	}
}
