//iprune:allow-err diagnostics print to the process stdio (or a test buffer); a failed write there has no recovery path

// Command iprunelint runs the repository's custom static analyzers over
// the given packages and reports findings as file:line:col diagnostics.
//
// Usage:
//
//	iprunelint [-list] [-json] [-sarif] [-workers N] [-cache] [-cachestats] [-cachedir DIR] [-dir DIR] [packages]
//
// Packages default to ./... relative to the module root, which is found
// by walking up from -dir (default: the working directory). The
// analyzers and the directives steering them are documented in
// internal/analysis and in the "Static analysis & invariants" section
// of README.md.
//
// With -cache, diagnostics are cached per package under -cachedir
// (default <module root>/.iprunelint.cache), keyed by the hashes of the
// package's sources, its module-internal dependency closure and the
// module's interface-implementation closure; a warm run re-analyzes
// only packages whose inputs changed and prints an accounting line
// ("iprunelint: cache: N reused, M analyzed") to stderr.
//
// With -json, findings are emitted as a JSON array of
// {file,line,col,analyzer,message} objects (file paths module-root
// relative) so CI tooling can post-process them; an empty run prints
// "[]". With -sarif, findings are emitted as a SARIF 2.1.0 log with one
// rule per analyzer, suitable for GitHub code scanning upload; -json
// and -sarif are mutually exclusive.
//
// With -cachestats (implies -cache), the accounting expands to hits,
// misses and invalidations plus the re-analyzed package list.
//
// With -workers N, analysis fans out over the internal/pool worker pool
// — one task per (package, analyzer) pair plus one per module-level
// analyzer. Output is byte-identical to the sequential driver for any N
// (-workers 0 means one worker per CPU; 1 is fully sequential).
//
// Exit status: 0 clean, 1 findings reported, 2 operational error
// (unparseable source, type-check failure, bad invocation).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"iprune/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is the -json wire form of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run is main with its dependencies injected, so the exit-code contract
// (0 clean, 1 findings, 2 operational error) is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iprunelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	asSARIF := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	dir := fs.String("dir", "", "directory to resolve the module root from (default: working directory)")
	useCache := fs.Bool("cache", false, "reuse cached diagnostics for packages whose inputs are unchanged")
	cacheStats := fs.Bool("cachestats", false, "print cache hit/miss/invalidation accounting (implies -cache)")
	cacheDir := fs.String("cachedir", "", "cache directory (default: <module root>/.iprunelint.cache)")
	workers := fs.Int("workers", 1, "parallel analysis workers (0 = one per CPU, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(stderr, "iprunelint: -json and -sarif are mutually exclusive")
		return 2
	}
	if *cacheStats {
		*useCache = true
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
			if a.Allow != "" {
				fmt.Fprintf(stdout, "%-14s   suppress with //iprune:%s <reason>\n", "", a.Allow)
			}
		}
		return 0
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := analysis.NewLoader(root, "")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	broken := false
	for _, pkg := range pkgs {
		for _, perr := range pkg.Errs {
			broken = true
			fmt.Fprintln(stderr, perr)
		}
	}
	if broken {
		return 2
	}

	var diags []analysis.Diagnostic
	if *useCache {
		cdir := *cacheDir
		if cdir == "" {
			cdir = filepath.Join(root, ".iprunelint.cache")
		}
		c := &analysis.Cache{Dir: cdir, Root: root}
		diags = analysis.RunCachedParallel(analysis.All(), pkgs, loader.Directives(), c, loader.Packages(), *workers)
		if *cacheStats {
			c.Stats.Detail(stderr)
		} else {
			c.Stats.Summary(stderr)
		}
	} else {
		diags = analysis.RunParallel(analysis.All(), pkgs, loader.Directives(), *workers)
	}
	diags = append(diags, loader.Directives().Problems...)
	analysis.Sort(diags)
	for i, d := range diags {
		if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(r)
			diags[i] = d
		}
	}

	if *asSARIF {
		if err := writeSARIF(stdout, diags, analysis.All()); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else if *asJSON {
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "iprunelint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks up from start (or the working directory when
// empty) to the nearest go.mod.
func findModuleRoot(start string) (string, error) {
	dir := start
	if dir == "" {
		var err error
		dir, err = os.Getwd()
		if err != nil {
			return "", err
		}
	}
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("iprunelint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
