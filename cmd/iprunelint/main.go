// Command iprunelint runs the repository's custom static analyzers over
// the given packages and reports findings as file:line:col diagnostics.
//
// Usage:
//
//	iprunelint [-list] [packages]
//
// Packages default to ./... relative to the module root, which is found
// by walking up from the working directory. The analyzers and the
// directives steering them are documented in internal/analysis and in
// the "Static analysis & invariants" section of README.md.
//
// Exit status: 0 clean, 1 findings reported, 2 operational error
// (unparseable source, type-check failure, bad invocation).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"iprune/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root, "")
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fatal(err)
	}

	broken := false
	for _, pkg := range pkgs {
		for _, perr := range pkg.Errs {
			broken = true
			fmt.Fprintln(os.Stderr, perr)
		}
	}
	if broken {
		os.Exit(2)
	}

	diags := analysis.Run(analysis.All(), pkgs, loader.Directives())
	diags = append(diags, loader.Directives().Problems...)
	analysis.Sort(diags)
	for _, d := range diags {
		rel := d
		if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			rel.Pos.Filename = r
		}
		fmt.Println(rel.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "iprunelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("iprunelint: no go.mod found above working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
