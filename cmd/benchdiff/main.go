//iprune:allow-err diagnostics print to the process stdio (or a test buffer); a failed write there has no recovery path

// Command benchdiff compares two benchmark snapshots produced by
// scripts/bench.sh and fails when the hot-path benchmarks regressed.
//
// Usage:
//
//	benchdiff [-ns-threshold 10] [-hot regexp] OLD.json NEW.json
//
// Every benchmark present in both snapshots is compared; ones matching
// -hot are gating: a ns/op increase beyond -ns-threshold percent, or
// any allocs/op increase at all (the tracing layer's zero-alloc budget),
// fails the diff. A hot benchmark whose baseline ns/op is zero or
// missing cannot be compared by percent and fails closed, and a hot
// benchmark that disappeared from the new snapshot fails too — a
// deleted benchmark must not silently drop its gate. Non-hot benchmarks
// are reported but never fail — macro benchmarks (whole pruning runs)
// jitter too much to gate on.
//
// Exit status: 0 no hot-path regression, 1 regression found, 2
// operational error (bad invocation, unreadable or malformed snapshot).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// defaultHot matches the kernel/engine benchmarks whose per-op numbers
// are stable enough to gate on: the fixed-point kernels, the HAWAII⁺
// engine, the sparse formats, the cost simulator, the streaming trace
// encoder (whose zero-alloc Emit budget the alloc gate enforces) and
// the sharded power sweep (sequential and pooled widths).
const defaultHot = `Gemm|Conv|Engine|BSR|CostSim|Schedule|StreamTracer|PowerSweep`

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// snapshot mirrors the BENCH_<date>.json layout written by
// scripts/bench.sh.
type snapshot struct {
	Date       string  `json:"date"`
	Benchmarks []bench `json:"benchmarks"`
}

type bench struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp *int64  `json:"allocs_per_op"`
}

func (b bench) key() string { return b.Pkg + "." + b.Name }

// run is main with its dependencies injected, so the exit-code contract
// is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("ns-threshold", 10, "gating ns/op regression threshold, percent")
	hotPat := fs.String("hot", defaultHot, "regexp of gating (hot-path) benchmark names")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-ns-threshold PCT] [-hot REGEXP] OLD.json NEW.json")
		return 2
	}
	hot, err := regexp.Compile(*hotPat)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: bad -hot regexp: %v\n", err)
		return 2
	}
	old, err := readSnapshot(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	cur, err := readSnapshot(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	oldBy := map[string]bench{}
	for _, b := range old.Benchmarks {
		oldBy[b.key()] = b
	}

	regressions := 0
	compared := 0
	for _, nb := range cur.Benchmarks {
		ob, ok := oldBy[nb.key()]
		if !ok {
			fmt.Fprintf(stdout, "new   %-40s %12.0f ns/op (no baseline)\n", nb.Name, nb.NsPerOp)
			continue
		}
		delete(oldBy, nb.key())
		compared++
		gating := hot.MatchString(nb.Name)
		pct := 0.0
		pctOK := ob.NsPerOp > 0
		if pctOK {
			pct = 100 * (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		}
		status := "ok   "
		fail := false
		if gating && pctOK && pct > *threshold {
			status = "FAIL "
			fail = true
		}
		if gating && !pctOK && nb.NsPerOp > 0 {
			// A zero/absent baseline gives no percentage to gate on: fail
			// closed instead of letting an unbounded regression through.
			status = "FAIL "
			fail = true
		}
		allocNote := ""
		if nb.AllocsPerOp != nil && ob.AllocsPerOp != nil && *nb.AllocsPerOp > *ob.AllocsPerOp {
			allocNote = fmt.Sprintf("  allocs %d -> %d", *ob.AllocsPerOp, *nb.AllocsPerOp)
			if gating {
				status = "FAIL "
				fail = true
			}
		}
		if !gating {
			status = "info "
		}
		if fail {
			regressions++
		}
		fmt.Fprintf(stdout, "%s %-40s %12.0f -> %12.0f ns/op (%+.1f%%)%s\n",
			status, nb.Name, ob.NsPerOp, nb.NsPerOp, pct, allocNote)
	}
	gone := make([]string, 0, len(oldBy))
	for key := range oldBy {
		gone = append(gone, key)
	}
	sort.Strings(gone)
	for _, key := range gone {
		if hot.MatchString(oldBy[key].Name) {
			// A vanished hot benchmark silently retires its gate: treat
			// the disappearance itself as a failure.
			fmt.Fprintf(stdout, "FAIL  %s disappeared from %s (hot benchmarks must not vanish)\n", key, fs.Arg(1))
			regressions++
			continue
		}
		fmt.Fprintf(stdout, "gone  %s (present in %s only)\n", key, fs.Arg(0))
	}

	if regressions > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d hot-path regression(s) beyond %.0f%% ns/op or any allocs/op increase\n",
			regressions, *threshold)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: %d benchmark(s) compared, no hot-path regression\n", compared)
	return 0
}

func readSnapshot(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchdiff: %w", err)
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchdiff: %s holds no benchmarks", path)
	}
	return &s, nil
}
