package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnap(t *testing.T, name, gemmNs string, gemmAllocs int, tableNs string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	content := fmt.Sprintf(`{
  "date": "2026-08-06",
  "benchmarks": [
    {"pkg": "iprune", "name": "BenchmarkGemm64", "iterations": 100, "ns_per_op": %s, "bytes_per_op": 0, "allocs_per_op": %d},
    {"pkg": "iprune", "name": "BenchmarkTable1Environment", "iterations": 100, "ns_per_op": %s, "bytes_per_op": 1384, "allocs_per_op": 20}
  ]
}`, gemmNs, gemmAllocs, tableNs)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runDiff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestNoRegression(t *testing.T) {
	old := writeSnap(t, "old.json", "1000", 0, "5000")
	cur := writeSnap(t, "new.json", "1050", 0, "9000") // +5% hot, macro noise ignored
	code, stdout, stderr := runDiff(t, old, cur)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "no hot-path regression") {
		t.Errorf("missing summary line:\n%s", stdout)
	}
	// The macro benchmark regressed 80% but is not gating.
	if !strings.Contains(stdout, "info ") {
		t.Errorf("macro benchmark not reported as info:\n%s", stdout)
	}
}

func TestNsRegressionFails(t *testing.T) {
	old := writeSnap(t, "old.json", "1000", 0, "5000")
	cur := writeSnap(t, "new.json", "1200", 0, "5000") // +20% on a hot benchmark
	code, stdout, stderr := runDiff(t, old, cur)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s", code, stdout)
	}
	if !strings.Contains(stdout, "FAIL ") || !strings.Contains(stderr, "regression(s)") {
		t.Errorf("regression not reported:\nstdout: %s\nstderr: %s", stdout, stderr)
	}
}

func TestAllocRegressionFailsRegardlessOfNs(t *testing.T) {
	old := writeSnap(t, "old.json", "1000", 0, "5000")
	cur := writeSnap(t, "new.json", "990", 2, "5000") // faster but now allocating
	code, stdout, _ := runDiff(t, old, cur)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s", code, stdout)
	}
	if !strings.Contains(stdout, "allocs 0 -> 2") {
		t.Errorf("alloc delta not shown:\n%s", stdout)
	}
}

func TestThresholdFlag(t *testing.T) {
	old := writeSnap(t, "old.json", "1000", 0, "5000")
	cur := writeSnap(t, "new.json", "1200", 0, "5000")
	if code, _, _ := runDiff(t, "-ns-threshold", "25", old, cur); code != 0 {
		t.Errorf("+20%% under a 25%% threshold: exit %d, want 0", code)
	}
}

func TestHotFlag(t *testing.T) {
	old := writeSnap(t, "old.json", "1000", 0, "5000")
	cur := writeSnap(t, "new.json", "1500", 0, "5000")
	// Narrow -hot so the regressed Gemm benchmark is no longer gating.
	if code, _, _ := runDiff(t, "-hot", "NothingMatches", old, cur); code != 0 {
		t.Error("non-matching -hot must not gate")
	}
	// And widen it onto the macro benchmark, which is stable here.
	if code, _, _ := runDiff(t, "-hot", "Table1", old, cur); code != 0 {
		t.Error("stable benchmark under -hot must pass")
	}
}

func TestOperationalErrors(t *testing.T) {
	old := writeSnap(t, "old.json", "1000", 0, "5000")
	if code, _, _ := runDiff(t, old); code != 2 {
		t.Error("one arg: want exit 2")
	}
	if code, _, _ := runDiff(t, old, filepath.Join(t.TempDir(), "missing.json")); code != 2 {
		t.Error("missing file: want exit 2")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runDiff(t, old, bad); code != 2 {
		t.Error("malformed JSON: want exit 2")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"date":"x","benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runDiff(t, old, empty); code != 2 {
		t.Error("empty snapshot: want exit 2")
	}
	if code, _, _ := runDiff(t, "-hot", "(", old, old); code != 2 {
		t.Error("bad regexp: want exit 2")
	}
}

// TestZeroBaselineHotFailsClosed pins the div-by-zero guard: a hot
// benchmark whose baseline ns/op is zero has no percentage to gate on
// and must fail rather than sail through on pct == 0.
func TestZeroBaselineHotFailsClosed(t *testing.T) {
	old := writeSnap(t, "old.json", "0", 0, "5000")
	cur := writeSnap(t, "new.json", "999999", 0, "5000") // huge, but pct would be 0
	code, stdout, stderr := runDiff(t, old, cur)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "FAIL ") {
		t.Errorf("zero-baseline hot benchmark not failed:\n%s", stdout)
	}
	// Zero on both sides carries no signal and must not gate.
	same := writeSnap(t, "same.json", "0", 0, "5000")
	same2 := writeSnap(t, "same2.json", "0", 0, "5000")
	if code, stdout, _ := runDiff(t, same, same2); code != 0 {
		t.Errorf("zero-vs-zero: exit %d, want 0\n%s", code, stdout)
	}
}

// TestGoneHotBenchmarkFails pins the disappearance gate: deleting a hot
// benchmark from the new snapshot must fail the diff, not just log it.
func TestGoneHotBenchmarkFails(t *testing.T) {
	old := writeSnap(t, "old.json", "1000", 0, "5000")
	cur := filepath.Join(t.TempDir(), "new.json")
	content := `{
  "date": "2026-08-07",
  "benchmarks": [
    {"pkg": "iprune", "name": "BenchmarkTable1Environment", "iterations": 100, "ns_per_op": 5000, "bytes_per_op": 1384, "allocs_per_op": 20}
  ]
}`
	if err := os.WriteFile(cur, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runDiff(t, old, cur)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "FAIL  iprune.BenchmarkGemm64 disappeared") {
		t.Errorf("gone hot benchmark not failed:\n%s", stdout)
	}
}

func TestGoneAndNewBenchmarks(t *testing.T) {
	old := writeSnap(t, "old.json", "1000", 0, "5000")
	cur := filepath.Join(t.TempDir(), "new.json")
	content := `{
  "date": "2026-08-07",
  "benchmarks": [
    {"pkg": "iprune", "name": "BenchmarkGemm64", "iterations": 100, "ns_per_op": 1000, "bytes_per_op": 0, "allocs_per_op": 0},
    {"pkg": "iprune", "name": "BenchmarkBrandNew", "iterations": 100, "ns_per_op": 7, "bytes_per_op": 0, "allocs_per_op": 0}
  ]
}`
	if err := os.WriteFile(cur, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runDiff(t, old, cur)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "new   BenchmarkBrandNew") || !strings.Contains(stdout, "gone  iprune.BenchmarkTable1Environment") {
		t.Errorf("new/gone benchmarks not reported:\n%s", stdout)
	}
}
