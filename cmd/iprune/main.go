// Command iprune trains and prunes one of the paper's TinyML models and
// writes the pruned model to disk.
//
// Usage:
//
//	iprune -model HAR -criterion iprune -out har-pruned.model
//	iprune -model HAR -power weak -trace pruned.json -metrics pruned.csv
//
// Flags:
//
//	-model NAME       SQN, HAR or CKS (default HAR)
//	-criterion NAME   iprune | eprune | macs | uniform (default iprune)
//	-in FILE          load a pretrained model instead of training
//	-out FILE         where to write the pruned model (default <model>-<criterion>.model)
//	-epochs N         pretraining epochs (default 8)
//	-iters N          max pruning iterations (default 6)
//	-epsilon F        recoverable accuracy-loss threshold (default 0.05)
//	-seed N           random seed (default 1)
//	-power NAME       supply for the post-pruning evaluation run
//	                  (continuous | strong | weak | <N>mW; default strong)
//	-trace FILE       write a Chrome trace-event JSON of one intermittent
//	                  inference of the pruned model under -power
//	-metrics FILE     write per-layer metrics CSV of that inference
//	-v                print the per-layer summary of that inference
//	-diff             simulate one inference of the unpruned and the pruned
//	                  model under -power and print the per-layer delta
//	                  (latency, energy, preserves, re-executions)
//	-diffcsv FILE     write that delta as long-form CSV
//	-cpuprofile FILE  write a runtime/pprof CPU profile of training+pruning
//	-memprofile FILE  write a heap profile taken after pruning
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"iprune"
)

func main() {
	model := flag.String("model", "HAR", "model name: SQN, HAR or CKS")
	criterion := flag.String("criterion", "iprune", "pruning criterion: iprune|eprune|macs|uniform")
	in := flag.String("in", "", "pretrained model file (skips training)")
	out := flag.String("out", "", "output model file")
	epochs := flag.Int("epochs", 8, "pretraining epochs")
	iters := flag.Int("iters", 6, "max pruning iterations")
	epsilon := flag.Float64("epsilon", 0.05, "recoverable accuracy-loss threshold")
	seed := flag.Int64("seed", 1, "random seed")
	powerName := flag.String("power", "strong", "supply for the evaluation run: continuous|strong|weak or e.g. 6mW")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON of one pruned-model inference")
	metricsPath := flag.String("metrics", "", "write per-layer metrics CSV of one pruned-model inference")
	verbose := flag.Bool("v", false, "print per-layer summary of one pruned-model inference")
	diff := flag.Bool("diff", false, "print per-layer before/after pruning delta of one inference under -power")
	diffCSVPath := flag.String("diffcsv", "", "write the before/after pruning delta as long-form CSV")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of training+pruning to this file")
	memProfile := flag.String("memprofile", "", "write a post-pruning heap profile to this file")
	flag.Parse()

	var crit iprune.Criterion
	switch strings.ToLower(*criterion) {
	case "iprune":
		crit = iprune.CriterionAccOutputs
	case "eprune":
		crit = iprune.CriterionEnergy
	case "macs":
		crit = iprune.CriterionMACs
	case "uniform":
		crit = iprune.CriterionUniform
	default:
		log.Fatalf("unknown criterion %q", *criterion)
	}

	sup, err := iprune.ParseSupply(*powerName)
	if err != nil {
		log.Fatal(err)
	}

	ds, err := datasetFor(*model, *seed)
	if err != nil {
		log.Fatal(err)
	}

	// The profile window covers the compute that matters: training and
	// the prune/finetune loop.
	stopProf, err := iprune.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}

	var net *iprune.Network
	if *in != "" {
		net, err = iprune.LoadModel(*in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s (accuracy %.1f%%)\n", *in, 100*iprune.Accuracy(net, ds.Test))
	} else {
		net, err = iprune.BuildModel(*model, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("training %s for %d epochs...\n", *model, *epochs)
		iprune.TrainSGD(net, ds.Train, *epochs, 0.005, *seed)
		fmt.Printf("base accuracy %.1f%%\n", 100*iprune.Accuracy(net, ds.Test))
	}

	opts := iprune.DefaultPruneOptions()
	opts.MaxIters = *iters
	opts.Epsilon = *epsilon
	opts.FinetuneEpochs = 4
	opts.LR = 0.002
	opts.LRDecay = 0.85
	opts.GammaHat = 0.2
	opts.Seed = *seed
	opts.Logf = func(f string, a ...any) { fmt.Printf("  "+f+"\n", a...) }

	fmt.Printf("pruning with %s...\n", crit.Name())
	res, err := iprune.PruneWith(crit, net, ds.Train, ds.Test, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := stopProf(); err != nil {
		log.Fatal(err)
	}

	before, err := iprune.Stats(net)
	if err != nil {
		log.Fatal(err)
	}
	after, err := iprune.Stats(res.Net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy  %.1f%% -> %.1f%%\n", 100*res.BaseAccuracy, 100*res.Accuracy)
	fmt.Printf("size      %d KB -> %d KB\n", before.SizeBytes/1024, after.SizeBytes/1024)
	fmt.Printf("MACs      %d K -> %d K\n", before.MACs/1000, after.MACs/1000)
	fmt.Printf("acc. outs %d K -> %d K\n", before.AccOutputs/1000, after.AccOutputs/1000)

	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%s.model", strings.ToLower(*model), strings.ToLower(crit.Name()))
	}
	if err := iprune.SaveModel(path, res.Net, *seed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)

	// Optional cross-run diff: one observed inference of the unpruned
	// network against one of the pruned result under the same supply and
	// seed, so the pruning story reads per layer (latency, energy,
	// preserves, re-executions) instead of only in the aggregate numbers
	// above. The pruner leaves its input network untouched, so `net` is
	// the before side.
	if *diff || *diffCSVPath != "" {
		observe := func(n *iprune.Network) *iprune.RunStats {
			rec := iprune.NewTraceRecorder()
			if _, err := iprune.SimulateObserved(n, sup, *seed, rec); err != nil {
				log.Fatal(err)
			}
			return iprune.CollectTrace(rec.Events())
		}
		d := iprune.DiffTrace(observe(net), observe(res.Net))
		names := iprune.PrunableLayerNames(res.Net)
		if *diff {
			fmt.Printf("pruning impact under %s (unpruned vs pruned):\n", sup.Name)
			if err := iprune.WriteTraceDiffTable(os.Stdout, d, names); err != nil {
				log.Fatal(err)
			}
		}
		if *diffCSVPath != "" {
			err := iprune.WriteArtifact(*diffCSVPath, func(w io.Writer) error {
				return iprune.WriteTraceDiffCSV(w, d, names)
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote diff %s\n", *diffCSVPath)
		}
	}

	// Optional observability pass: trace one intermittent inference of the
	// pruned model so the effect of pruning is visible per layer and per
	// power cycle, not just in the aggregate numbers above.
	if *tracePath == "" && *metricsPath == "" && !*verbose {
		return
	}
	rec := iprune.NewTraceRecorder()
	r, err := iprune.SimulateObserved(res.Net, sup, *seed, rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluation under %s: latency %.3fs, %d power cycles, %.2f mJ\n",
		sup.Name, r.Latency, r.Failures, r.Energy*1e3)
	names := iprune.PrunableLayerNames(res.Net)
	stats := iprune.CollectTrace(rec.Events())

	if *tracePath != "" {
		err := iprune.WriteArtifact(*tracePath, func(w io.Writer) error {
			return iprune.WriteChromeTrace(w, rec.Events(), names)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote trace %s (%d events; open in https://ui.perfetto.dev)\n",
			*tracePath, len(rec.Events()))
	}
	if *metricsPath != "" {
		err := iprune.WriteArtifact(*metricsPath, func(w io.Writer) error {
			return iprune.WriteTraceCSV(w, stats, names)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote metrics %s (%d layers)\n", *metricsPath, len(stats.Layers))
	}
	if *verbose {
		m := iprune.NewMetrics()
		stats.Fill(m)
		iprune.ObserveModel(m, res.Net)
		if err := iprune.WriteTraceSummary(os.Stdout, stats, m, names); err != nil {
			log.Fatal(err)
		}
	}
}

func datasetFor(model string, seed int64) (*iprune.Dataset, error) {
	cfg := iprune.DataConfig{Train: 256, Test: 128}
	switch model {
	case "SQN":
		cfg.Noise = 0.45
		return iprune.ImageData(cfg, seed), nil
	case "HAR":
		cfg.Noise = 0.35
		return iprune.HARData(cfg, seed), nil
	case "CKS":
		cfg.Noise = 0.5
		return iprune.SpeechData(cfg, seed), nil
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}
