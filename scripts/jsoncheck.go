//go:build ignore

// jsoncheck validates a Chrome trace-event JSON artifact: the file must
// parse as JSON and hold a non-empty traceEvents array. Used by
// scripts/check.sh to smoke-test the repro trace pipeline:
//
//	go run scripts/jsoncheck.go artifacts/fig2/trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: jsoncheck TRACE.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "jsoncheck:", err)
		os.Exit(1)
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		fmt.Fprintf(os.Stderr, "jsoncheck: %s: not valid JSON: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	if len(tr.TraceEvents) == 0 {
		fmt.Fprintf(os.Stderr, "jsoncheck: %s: traceEvents is empty\n", os.Args[1])
		os.Exit(1)
	}
	fmt.Printf("%s: %d trace events\n", os.Args[1], len(tr.TraceEvents))
}
