#!/bin/sh
# check.sh is the repo's verify entrypoint: formatting, vet, build,
# tests (with the race detector) and the project's own static analysis.
# Run from anywhere; it cds to the repo root first.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== iprunelint"
go run ./cmd/iprunelint ./...

echo "OK"
