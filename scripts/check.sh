#!/bin/sh
# check.sh is the repo's verify entrypoint: formatting, vet, build,
# tests (with the race detector) and the project's own static analysis.
# Run from anywhere; it cds to the repo root first.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

# Artifact directory shared by the SARIF and repro-smoke steps. CI sets
# CHECK_ARTIFACT_DIR to a directory it uploads; local runs use a
# throwaway temp dir.
if [ -n "${CHECK_ARTIFACT_DIR:-}" ]; then
    tmp="$CHECK_ARTIFACT_DIR"
    mkdir -p "$tmp"
else
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
fi

echo "== iprunelint"
status=0
go run ./cmd/iprunelint -cache -cachestats -json ./... > "$tmp/iprunelint.json" || status=$?
cat "$tmp/iprunelint.json"
[ "$status" -eq 0 ] || exit "$status"

# Cache soundness: an immediate rerun over unchanged sources must be
# fully warm — any miss or invalidation means the cache key omits an
# input that the first run just wrote, i.e. the cache would silently
# serve stale diagnostics after that input changes.
echo "== iprunelint cache soundness"
warm=$(go run ./cmd/iprunelint -cache -cachestats ./... 2>&1 >/dev/null)
echo "$warm"
case "$warm" in
*" 0 miss(es), 0 invalidation(s)"*) ;;
*)
    echo "iprunelint: warm rerun was not fully cached (unsound cache key?)" >&2
    exit 1
    ;;
esac

# Budget audit: the measured energy of an intermittent run must respect
# the same per-power-cycle bound the regionbudget analyzer proves
# statically, and the lint report above must carry zero regionbudget
# findings.
echo "== budget audit"
go run ./cmd/isim -model HAR -power weak -audit -auditlint "$tmp/iprunelint.json"

# Regenerate the findings as SARIF for code scanning and validate the
# emitter's output shape. Exit 1 means findings (already gated by the
# JSON run above); anything higher is an analyzer failure.
echo "== iprunelint sarif"
status=0
go run ./cmd/iprunelint -cache -sarif ./... > "$tmp/iprunelint.sarif" || status=$?
[ "$status" -le 1 ] || exit "$status"
go run scripts/sarifcheck.go "$tmp/iprunelint.sarif"

# Trace-pipeline smoke test: a quick-scale fig2 regeneration must leave
# a parseable, non-empty Chrome trace artifact behind.
echo "== repro trace smoke"
go run ./cmd/repro -scale quick -artifacts "$tmp" -q fig2 > /dev/null
test -s "$tmp/fig2/trace.json"
go run scripts/jsoncheck.go "$tmp/fig2/trace.json"

# Fleet scenario smoke: the shipped scenario must validate, pass its
# assertions (ifleet run exits non-zero on a violation), and produce
# byte-identical output at any fan-out width.
echo "== fleet smoke"
go run ./cmd/ifleet validate examples/fleet/smoke.json
go run ./cmd/ifleet run -workers 1 examples/fleet/smoke.json > "$tmp/fleet1.out"
go run ./cmd/ifleet run -workers 4 examples/fleet/smoke.json > "$tmp/fleet4.out"
cmp "$tmp/fleet1.out" "$tmp/fleet4.out"
cat "$tmp/fleet1.out"

# Benchmark regression gate: when at least two BENCH_<date>.json
# snapshots exist, diff the two most recent (lexical date sort) and fail
# on hot-path regressions. One snapshot alone is just a baseline.
snaps=$(ls BENCH_*.json 2>/dev/null | sort | tail -2 || true)
if [ "$(printf '%s\n' "$snaps" | grep -c .)" -ge 2 ]; then
    old=$(printf '%s\n' "$snaps" | head -1)
    new=$(printf '%s\n' "$snaps" | tail -1)
    echo "== benchdiff $old -> $new"
    go run ./cmd/benchdiff "$old" "$new"
fi

echo "OK"
