//go:build ignore

// sarifcheck validates a SARIF 2.1.0 artifact as emitted by
// `iprunelint -sarif`: the file must parse as JSON, declare version
// 2.1.0, carry exactly one run with a named driver, and every result
// must reference a rule declared by that driver and anchor a physical
// location with a 1-based start line. Used by scripts/check.sh so a
// malformed SARIF emitter fails the gate before GitHub code scanning
// silently rejects the upload:
//
//	go run scripts/sarifcheck.go artifacts/iprunelint.sarif
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: sarifcheck REPORT.sarif")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "sarifcheck:", err)
		os.Exit(1)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		fmt.Fprintf(os.Stderr, "sarifcheck: %s: not valid JSON: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "sarifcheck: %s: %s\n", os.Args[1], fmt.Sprintf(format, args...))
		os.Exit(1)
	}
	if log.Version != "2.1.0" {
		fail("version %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		fail("%d runs, want exactly 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name == "" {
		fail("run has no tool.driver.name")
	}
	rules := make(map[string]bool, len(run.Tool.Driver.Rules))
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" {
			fail("driver declares a rule with an empty id")
		}
		rules[r.ID] = true
	}
	for i, res := range run.Results {
		if !rules[res.RuleID] {
			fail("result %d references undeclared rule %q", i, res.RuleID)
		}
		if res.Message.Text == "" {
			fail("result %d (%s) has an empty message", i, res.RuleID)
		}
		if len(res.Locations) == 0 {
			fail("result %d (%s) has no locations", i, res.RuleID)
		}
		for _, loc := range res.Locations {
			if loc.PhysicalLocation.ArtifactLocation.URI == "" {
				fail("result %d (%s) has a location without an artifact URI", i, res.RuleID)
			}
			if loc.PhysicalLocation.Region.StartLine < 1 {
				fail("result %d (%s) has a non-positive startLine %d",
					i, res.RuleID, loc.PhysicalLocation.Region.StartLine)
			}
		}
	}
	fmt.Printf("%s: valid SARIF 2.1.0, driver %s, %d rule(s), %d result(s)\n",
		os.Args[1], run.Tool.Driver.Name, len(rules), len(run.Results))
}
