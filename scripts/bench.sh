#!/bin/sh
# bench.sh runs the repo's Go benchmarks with memory stats and writes a
# machine-readable snapshot to BENCH_<date>.json, so perf regressions
# (latency or per-op allocations — the tracing layer's overhead budget)
# are diffable across commits.
#
# Usage:
#   scripts/bench.sh                 # short benchmarks, 100ms each
#   BENCHTIME=1s scripts/bench.sh    # longer sampling
#   BENCH=EngineInfer scripts/bench.sh  # filter by name
#   BENCHCOUNT=3 scripts/bench.sh    # min-of-3 per benchmark
#
# BENCHCOUNT > 1 repeats every benchmark and records the minimum —
# the usual noise-floor estimator on shared or single-CPU hosts, where
# a co-tenant burst can inflate any single sample by 10% or more.
#
# The heavy paper-reproduction benchmarks (pruning runs) skip themselves
# under -short; drop SHORT= only when you want the full set.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-100ms}"
BENCH="${BENCH:-.}"
SHORT="${SHORT:--short}"
BENCHCOUNT="${BENCHCOUNT:-1}"
date="$(date +%Y-%m-%d)"
out="BENCH_${date}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running benchmarks (bench=$BENCH benchtime=$BENCHTIME count=$BENCHCOUNT $SHORT)..."
# -run '^$' skips tests; benchmarks across all packages, BENCHCOUNT
# result lines per benchmark.
go test $SHORT -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" -count "$BENCHCOUNT" ./... | tee "$raw"

# Convert `go test -bench` output to JSON. A result line looks like:
#   BenchmarkEngineInferHAR-8   123  9876543 ns/op  1234 B/op  5 allocs/op
# and the `pkg:` context comes from the preceding "pkg: ..." line.
# Repeated lines for one benchmark (-count > 1) collapse to the
# minimum of each metric.
awk -v date="$date" '
BEGIN { n = 0 }
$1 == "pkg:" { pkg = $2 }
$1 ~ /^Benchmark/ && NF >= 4 {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    key = pkg SUBSEP name
    if (!(key in seen)) {
        seen[key] = 1
        order[n++] = key
        pkgOf[key] = pkg; nameOf[key] = name
        itersOf[key] = iters; nsOf[key] = ns
        bytesOf[key] = bytes; allocsOf[key] = allocs
    } else {
        if (ns != "" && (nsOf[key] == "" || ns + 0 < nsOf[key] + 0)) {
            nsOf[key] = ns
            itersOf[key] = iters
        }
        if (bytes != "" && (bytesOf[key] == "" || bytes + 0 < bytesOf[key] + 0)) bytesOf[key] = bytes
        if (allocs != "" && (allocsOf[key] == "" || allocs + 0 < allocsOf[key] + 0)) allocsOf[key] = allocs
    }
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"benchmarks\": [\n", date
    for (i = 0; i < n; i++) {
        key = order[i]
        line = sprintf("    {\"pkg\": \"%s\", \"name\": \"%s\", \"iterations\": %s", pkgOf[key], nameOf[key], itersOf[key])
        if (nsOf[key] != "") line = line sprintf(", \"ns_per_op\": %s", nsOf[key])
        if (bytesOf[key] != "") line = line sprintf(", \"bytes_per_op\": %s", bytesOf[key])
        if (allocsOf[key] != "") line = line sprintf(", \"allocs_per_op\": %s", allocsOf[key])
        line = line "}"
        printf "%s%s\n", line, (i < n - 1 ? "," : "")
    }
    printf "  ]\n}\n"
}' "$raw" > "$out"

count=$(grep -c '"name"' "$out" || true)
echo "wrote $out ($count benchmarks)"
