#!/bin/sh
# bench.sh runs the repo's Go benchmarks with memory stats and writes a
# machine-readable snapshot to BENCH_<date>.json, so perf regressions
# (latency or per-op allocations — the tracing layer's overhead budget)
# are diffable across commits.
#
# Usage:
#   scripts/bench.sh                 # short benchmarks, 100ms each
#   BENCHTIME=1s scripts/bench.sh    # longer sampling
#   BENCH=EngineInfer scripts/bench.sh  # filter by name
#
# The heavy paper-reproduction benchmarks (pruning runs) skip themselves
# under -short; drop SHORT= only when you want the full set.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-100ms}"
BENCH="${BENCH:-.}"
SHORT="${SHORT:--short}"
date="$(date +%Y-%m-%d)"
out="BENCH_${date}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running benchmarks (bench=$BENCH benchtime=$BENCHTIME $SHORT)..."
# -run '^$' skips tests; benchmarks across all packages, one iteration
# count line per benchmark.
go test $SHORT -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" ./... | tee "$raw"

# Convert `go test -bench` output to JSON. A result line looks like:
#   BenchmarkEngineInferHAR-8   123  9876543 ns/op  1234 B/op  5 allocs/op
# and the `pkg:` context comes from the preceding "pkg: ..." line.
awk -v date="$date" '
BEGIN { n = 0 }
$1 == "pkg:" { pkg = $2 }
$1 ~ /^Benchmark/ && NF >= 4 {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    line = sprintf("    {\"pkg\": \"%s\", \"name\": \"%s\", \"iterations\": %s", pkg, name, iters)
    if (ns != "") line = line sprintf(", \"ns_per_op\": %s", ns)
    if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    results[n++] = line
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"benchmarks\": [\n", date
    for (i = 0; i < n; i++) printf "%s%s\n", results[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}' "$raw" > "$out"

count=$(grep -c '"name"' "$out" || true)
echo "wrote $out ($count benchmarks)"
