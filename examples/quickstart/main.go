// Quickstart: train the HAR activity model, prune it with iPrune, and
// compare simulated intermittent inference latency before and after.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"iprune"
)

func main() {
	// 1. Data and model: the 6-class accelerometer task from the paper.
	ds := iprune.HARData(iprune.DataConfig{Train: 192, Test: 96, Noise: 0.35}, 42)
	net, err := iprune.BuildModel("HAR", 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Pretrain.
	fmt.Println("training HAR (8 epochs)...")
	iprune.TrainSGD(net, ds.Train, 8, 0.005, 7)
	fmt.Printf("  float accuracy:    %.1f%%\n", 100*iprune.Accuracy(net, ds.Test))

	// 3. Prune with the intermittent-aware criterion.
	opts := iprune.DefaultPruneOptions()
	opts.MaxIters = 5
	opts.FinetuneEpochs = 4
	opts.Epsilon = 0.05 // the 96-sample split quantizes accuracy in ~1% steps
	opts.GammaCap = 0.5
	opts.LR = 0.004
	fmt.Println("pruning with iPrune...")
	res, err := iprune.Prune(net, ds.Train, ds.Test, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d iterations, accuracy %.1f%% (base %.1f%%)\n",
		res.Iterations, 100*res.Accuracy, 100*res.BaseAccuracy)

	// 4. Compare the deployed models.
	before, err := iprune.Stats(net)
	if err != nil {
		log.Fatal(err)
	}
	after, err := iprune.Stats(res.Net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  model size:        %d KB -> %d KB\n", before.SizeBytes/1024, after.SizeBytes/1024)
	fmt.Printf("  MACs:              %d K -> %d K\n", before.MACs/1000, after.MACs/1000)
	fmt.Printf("  accelerator outs:  %d K -> %d K  (the iPrune criterion)\n",
		before.AccOutputs/1000, after.AccOutputs/1000)
	fmt.Printf("  deployed accuracy: %.1f%% (Q15)\n", 100*iprune.DeployedAccuracy(res.Net, ds.Test))

	// 5. Simulate intermittent inference on the MSP430-class device under
	// the paper's harvested-power operating points.
	for _, sup := range []iprune.Supply{iprune.ContinuousPower, iprune.StrongPower, iprune.WeakPower} {
		b := mustSimulate(net, sup)
		a := mustSimulate(res.Net, sup)
		fmt.Printf("  %-10s latency %.3fs -> %.3fs  (%.2fx, %d -> %d power cycles)\n",
			sup.Name, b.Latency, a.Latency, b.Latency/a.Latency, b.Failures, a.Failures)
	}
}

// mustSimulate runs one simulated inference, aborting the demo if the
// schedule cannot complete under the supply (op exceeds the buffer).
func mustSimulate(net *iprune.Network, sup iprune.Supply) iprune.SimResult {
	r, err := iprune.Simulate(net, sup, 1)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
