// keyword_spotting: the paper's CKS scenario. A speech keyword spotter
// must answer quickly on harvested power; this example prunes the CKS
// model with both the intermittent-aware criterion (iPrune) and the
// energy-aware one (ePrune) and compares the resulting intermittent
// inference latency under the weak 4 mW supply — the regime where the
// choice of criterion matters most (paper Figure 5, CKS columns).
//
//	go run ./examples/keyword_spotting
package main

import (
	"fmt"
	"log"

	"iprune"
)

func main() {
	ds := iprune.SpeechData(iprune.DataConfig{Train: 192, Test: 96, Noise: 0.5}, 5)
	net, err := iprune.BuildModel("CKS", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training the keyword spotter (8 epochs)...")
	iprune.TrainSGD(net, ds.Train, 8, 0.005, 5)
	fmt.Printf("base accuracy %.1f%%\n", 100*iprune.Accuracy(net, ds.Test))

	opts := iprune.DefaultPruneOptions()
	opts.MaxIters = 6
	opts.FinetuneEpochs = 4
	opts.LR = 0.002
	opts.LRDecay = 0.85
	opts.Epsilon = 0.05
	opts.GammaHat = 0.2

	variants := []struct {
		crit iprune.Criterion
		net  *iprune.Network
	}{
		{iprune.CriterionEnergy, nil},
		{iprune.CriterionAccOutputs, nil},
	}
	for i := range variants {
		fmt.Printf("pruning with %s...\n", variants[i].crit.Name())
		res, err := iprune.PruneWith(variants[i].crit, net, ds.Train, ds.Test, opts)
		if err != nil {
			log.Fatal(err)
		}
		variants[i].net = res.Net
		st, err := iprune.Stats(res.Net)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  accuracy %.1f%%, size %d KB, accelerator outputs %d K\n",
			100*res.Accuracy, st.SizeBytes/1024, st.AccOutputs/1000)
	}

	fmt.Println("\nintermittent latency under the paper's power strengths:")
	fmt.Printf("  %-11s %10s %10s %10s\n", "supply", "unpruned", "ePrune", "iPrune")
	for _, sup := range []iprune.Supply{iprune.ContinuousPower, iprune.StrongPower, iprune.WeakPower} {
		u := mustSimulate(net, sup)
		e := mustSimulate(variants[0].net, sup)
		i := mustSimulate(variants[1].net, sup)
		fmt.Printf("  %-11s %9.3fs %9.3fs %9.3fs   (iPrune %.2fx vs ePrune)\n",
			sup.Name, u.Latency, e.Latency, i.Latency, e.Latency/i.Latency)
	}
}

// mustSimulate runs one simulated inference, aborting the comparison if
// the schedule cannot complete under the supply (op exceeds the buffer).
func mustSimulate(net *iprune.Network, sup iprune.Supply) iprune.SimResult {
	r, err := iprune.Simulate(net, sup, 1)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
