// solar_camera: a solar-powered smart camera running the SQN image model
// (the paper's demo scenario). Instead of the paper's two harvested
// operating points, this example sweeps harvest power from 2 mW to 32 mW
// and plots how end-to-end inference latency, power-failure count and
// duty cycle respond — the trade the deployment engineer actually tunes
// a panel size against.
//
// The sweep uses the pretrained (unpruned) model and an iPrune-style
// block-pruned variant (one-shot, no fine-tuning) so it runs in seconds;
// see examples/quickstart for the full prune-with-recovery flow.
//
//	go run ./examples/solar_camera
package main

import (
	"fmt"
	"log"
	"strings"

	"iprune"
	"iprune/internal/core"
)

func main() {
	net, err := iprune.BuildModel("SQN", 1)
	if err != nil {
		log.Fatal(err)
	}
	// A one-shot 40% block prune stands in for a full iPrune run (this
	// example is about the power model, not accuracy).
	pruned, err := iprune.BuildModel("SQN", 1)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := iprune.Stats(pruned); err != nil { // installs masks
		log.Fatal(err)
	}
	core.OneShotBlocks(pruned, 0.4)

	fmt.Println("solar harvest sweep, SQN image recognition, one inference:")
	fmt.Printf("  %8s | %22s | %22s\n", "harvest", "unpruned", "pruned 40%")
	fmt.Printf("  %8s | %10s %11s | %10s %11s\n", "mW", "latency", "cycles", "latency", "cycles")
	for _, mw := range []float64{2, 4, 8, 16, 32} {
		sup := iprune.Supply{Name: fmt.Sprintf("%.0fmW", mw), Power: mw * 1e-3, Jitter: 0.1}
		u := mustSimulate(net, sup)
		p := mustSimulate(pruned, sup)
		bar := strings.Repeat("#", int(u.Latency/p.Latency*4))
		fmt.Printf("  %8.0f | %9.2fs %11d | %9.2fs %11d  speedup %s %.2fx\n",
			mw, u.Latency, u.Failures, p.Latency, p.Failures, bar, u.Latency/p.Latency)
	}

	fmt.Println("\nduty cycle (on-time share) of the pruned model:")
	for _, mw := range []float64{2, 4, 8, 16, 32} {
		sup := iprune.Supply{Name: "sweep", Power: mw * 1e-3, Jitter: 0.1}
		r := mustSimulate(pruned, sup)
		duty := r.ActiveTime / r.Latency
		fmt.Printf("  %5.0f mW: %5.1f%% %s\n", mw, 100*duty, strings.Repeat("=", int(duty*40)))
	}

	// A cloudy solar day: inference latency depends on when in the day it
	// starts, because the harvest trace moves under the capacitor.
	fmt.Println("\ncloudy 10 mW solar day (trace-driven):")
	day := iprune.SolarTrace(10e-3, 600, 4, 9)
	for _, startFrac := range []float64{0.1, 0.3, 0.5, 0.8} {
		// Shift the trace so the inference starts at this point of the day.
		shift := startFrac * 600
		tr := iprune.Trace{}
		for i := range day.Times {
			if day.Times[i] >= shift {
				tr.Times = append(tr.Times, day.Times[i]-shift)
				tr.Powers = append(tr.Powers, day.Powers[i])
			}
		}
		if len(tr.Times) < 2 {
			continue
		}
		if tr.Times[0] != 0 {
			tr.Times = append([]float64{0}, tr.Times...)
			tr.Powers = append([]float64{day.At(shift)}, tr.Powers...)
		}
		r, err := iprune.SimulateTrace(pruned, tr, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  start at %3.0f%% of day (%.1f mW): latency %7.2fs, %d power cycles\n",
			100*startFrac, 1e3*day.At(shift), r.Latency, r.Failures)
	}
}

// mustSimulate runs one simulated inference, aborting the sweep if the
// schedule cannot complete under the supply (op exceeds the buffer).
func mustSimulate(net *iprune.Network, sup iprune.Supply) iprune.SimResult {
	r, err := iprune.Simulate(net, sup, 1)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
