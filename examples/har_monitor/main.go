// har_monitor: a battery-less activity monitor running the functional
// HAWAII⁺ engine. The example deploys a pruned HAR model to the simulated
// device, injects power failures at increasing rates, and shows that
// progress preservation and recovery keep every classification
// bit-identical to an uninterrupted run — the correctness property the
// whole intermittent-computing stack exists to provide.
//
//	go run ./examples/har_monitor
package main

import (
	"fmt"
	"log"

	"iprune"
	"iprune/internal/hawaii"
)

func main() {
	ds := iprune.HARData(iprune.DataConfig{Train: 192, Test: 48, Noise: 0.35}, 11)
	net, err := iprune.BuildModel("HAR", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training the activity monitor...")
	iprune.TrainSGD(net, ds.Train, 8, 0.005, 3)

	opts := iprune.DefaultPruneOptions()
	opts.MaxIters = 4
	opts.FinetuneEpochs = 4
	opts.Epsilon = 0.06
	opts.GammaCap = 0.5
	opts.LR = 0.004
	res, err := iprune.Prune(net, ds.Train, ds.Test, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pruned model accuracy: %.1f%%\n", 100*res.Accuracy)

	// Deploy onto the functional engine (Q15 + BSR + job counters).
	eng, err := iprune.Engine(res.Net)
	if err != nil {
		log.Fatal(err)
	}
	eng.Calibrate(ds.Train[:16])

	// Reference pass: no power failures.
	clean := make([]int, len(ds.Test))
	correct := 0
	for i, s := range ds.Test {
		r, err := eng.Infer(s.X, nil)
		if err != nil {
			log.Fatal(err)
		}
		clean[i] = r.Pred
		if r.Pred == s.Label {
			correct++
		}
	}
	fmt.Printf("on-device (Q15) accuracy, stable power: %.1f%%\n",
		100*float64(correct)/float64(len(ds.Test)))

	// Now the harvested-power regimes: fail every N preservation
	// boundaries and verify bit-identical classifications.
	for _, everyN := range []int64{50, 10, 3} {
		var failures, reexec int64
		mismatches := 0
		for i, s := range ds.Test {
			r, err := eng.Infer(s.X, &hawaii.EveryN{N: everyN})
			if err != nil {
				log.Fatal(err)
			}
			failures += r.Stats.Failures
			reexec += r.Stats.ReExecOps
			if r.Pred != clean[i] {
				mismatches++
			}
		}
		fmt.Printf("failure every %3d ops: %5d power failures, %4d ops re-executed, %d mismatched classifications\n",
			everyN, failures, reexec, mismatches)
		if mismatches != 0 {
			log.Fatal("recovery changed inference results — preservation broken")
		}
	}
	fmt.Println("all interrupted inferences matched the uninterrupted reference exactly")
}
