// model_switcher: environment-adaptive model selection (in the spirit of
// EVE, the paper's reference [8]). The deployment stores the unpruned HAR
// model plus two pruned variants; at run time a selector picks the most
// accurate variant whose simulated intermittent latency meets the
// application deadline under the currently harvested power.
//
//	go run ./examples/model_switcher
package main

import (
	"fmt"
	"log"

	"iprune"
	"iprune/internal/adaptive"
	"iprune/internal/core"
)

func main() {
	ds := iprune.HARData(iprune.DataConfig{Train: 192, Test: 96, Noise: 0.4}, 17)
	base, err := iprune.BuildModel("HAR", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training the base model...")
	iprune.TrainSGD(base, ds.Train, 8, 0.005, 2)

	// Build the variant ladder: base, plus two one-shot pruned-and-tuned
	// variants at increasing depth.
	variants := []adaptive.Variant{{
		Name: "full", Net: base, Accuracy: iprune.Accuracy(base, ds.Test),
	}}
	for _, ratio := range []float64{0.35, 0.65} {
		v := base.Clone()
		if _, err := iprune.Stats(v); err != nil { // installs masks
			log.Fatal(err)
		}
		core.OneShotBlocks(v, ratio)
		iprune.TrainSGD(v, ds.Train, 4, 0.002, 2) // brief recovery tuning
		variants = append(variants, adaptive.Variant{
			Name:     fmt.Sprintf("pruned%.0f%%", ratio*100),
			Net:      v,
			Accuracy: iprune.Accuracy(v, ds.Test),
		})
	}
	for _, v := range variants {
		st, err := iprune.Stats(v.Net)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s accuracy %.1f%%, %2d KB, %d K accelerator outputs\n",
			v.Name, 100*v.Accuracy, st.SizeBytes/1024, st.AccOutputs/1000)
	}

	sel, err := adaptive.NewSelector(variants)
	if err != nil {
		log.Fatal(err)
	}

	const deadline = 0.35 // seconds per classification
	fmt.Printf("\nselector decisions for a %.2fs deadline:\n", deadline)
	for _, mw := range []float64{2, 3, 4, 6, 8, 12, 1650} {
		d := sel.Pick(mw*1e-3, deadline)
		status := "meets deadline"
		if !d.Met {
			status = "DEADLINE MISSED (fastest available)"
		}
		fmt.Printf("  %7.0f mW -> %-10s (est. %.3fs, accuracy %.1f%%) %s\n",
			mw, d.Variant.Name, d.Latency, 100*d.Variant.Accuracy, status)
	}
}
