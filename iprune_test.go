package iprune_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iprune"
)

func TestFacadeBuildAndStats(t *testing.T) {
	for _, name := range iprune.ModelNames() {
		net, err := iprune.BuildModel(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		st, err := iprune.Stats(net)
		if err != nil {
			t.Fatal(err)
		}
		if st.SizeBytes <= 0 || st.MACs <= 0 || st.AccOutputs <= 0 || st.Weights <= 0 {
			t.Errorf("%s: degenerate stats %+v", name, st)
		}
	}
	if _, err := iprune.BuildModel("nope", 1); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestFacadeSimulateOrdering(t *testing.T) {
	net, err := iprune.BuildModel("HAR", 1)
	if err != nil {
		t.Fatal(err)
	}
	sim := func(sup iprune.Supply) iprune.SimResult {
		t.Helper()
		r, err := iprune.Simulate(net, sup, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cont := sim(iprune.ContinuousPower)
	strong := sim(iprune.StrongPower)
	weak := sim(iprune.WeakPower)
	if !(cont.Latency < strong.Latency && strong.Latency < weak.Latency) {
		t.Errorf("latency ordering violated: %v %v %v", cont.Latency, strong.Latency, weak.Latency)
	}
}

// TestPowerSweepCancelledPropagatesError pins the sweep error path: a
// cancelled fan-out must surface the pool's error on every point it
// never ran instead of returning points that look clean.
func TestPowerSweepCancelledPropagatesError(t *testing.T) {
	net, err := iprune.BuildModel("HAR", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sups := []iprune.Supply{iprune.ContinuousPower, iprune.StrongPower, iprune.WeakPower}
	for _, workers := range []int{1, 3} {
		pts := iprune.PowerSweepContext(ctx, net, sups, 1, workers)
		if len(pts) != len(sups) {
			t.Fatalf("workers=%d: got %d points, want %d", workers, len(pts), len(sups))
		}
		for i, pt := range pts {
			if pt.Supply.Name != sups[i].Name {
				t.Errorf("workers=%d: pts[%d].Supply = %q, want %q", workers, i, pt.Supply.Name, sups[i].Name)
			}
			if pt.Err == nil {
				t.Errorf("workers=%d: pts[%d].Err = nil after cancellation", workers, i)
			}
		}
	}
}

func TestFacadeTrainPruneRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end train+prune")
	}
	ds := iprune.HARData(iprune.DataConfig{Train: 96, Test: 48, Noise: 0.3}, 3)
	net, err := iprune.BuildModel("HAR", 3)
	if err != nil {
		t.Fatal(err)
	}
	iprune.TrainSGD(net, ds.Train, 6, 0.005, 3)
	base := iprune.Accuracy(net, ds.Test)
	if base < 0.6 {
		t.Fatalf("HAR failed to train: %.3f", base)
	}

	opts := iprune.DefaultPruneOptions()
	opts.MaxIters = 3
	opts.FinetuneEpochs = 3
	opts.Epsilon = 0.08
	opts.GammaHat = 0.2
	opts.LR = 0.002
	res, err := iprune.Prune(net, ds.Train, ds.Test, opts)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := iprune.Stats(net)
	after, err := iprune.Stats(res.Net)
	if err != nil {
		t.Fatal(err)
	}
	if after.AccOutputs >= before.AccOutputs {
		t.Errorf("pruning did not reduce accelerator outputs: %d -> %d", before.AccOutputs, after.AccOutputs)
	}
	if res.BaseAccuracy-res.Accuracy > opts.Epsilon+1e-9 {
		t.Errorf("accuracy loss %.3f exceeds epsilon", res.BaseAccuracy-res.Accuracy)
	}

	// Deployment accuracy and persistence.
	if q := iprune.DeployedAccuracy(res.Net, ds.Test); q < res.Accuracy-0.1 {
		t.Errorf("Q15 accuracy %.3f far below float %.3f", q, res.Accuracy)
	}
	path := filepath.Join(t.TempDir(), "m.model")
	if err := iprune.SaveModel(path, res.Net, 3); err != nil {
		t.Fatal(err)
	}
	loaded, err := iprune.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := iprune.Stats(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if ls.AccOutputs != after.AccOutputs {
		t.Error("loaded model lost pruning masks")
	}
}

func TestFacadeEngineMatchesSimCriterion(t *testing.T) {
	// The functional engine's committed jobs must equal the Stats
	// criterion value: the two views of "accelerator outputs" agree.
	net, err := iprune.BuildModel("HAR", 5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := iprune.Stats(net)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := iprune.Engine(net)
	if err != nil {
		t.Fatal(err)
	}
	ds := iprune.HARData(iprune.DataConfig{Train: 4, Test: 4, Noise: 0.3}, 5)
	eng.Calibrate(ds.Train)
	r, err := eng.Infer(ds.Test[0].X, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Jobs != st.AccOutputs {
		t.Errorf("engine jobs %d != criterion %d", r.Stats.Jobs, st.AccOutputs)
	}
}

// TestFacadeStreamMatchesRecordedTrace pins the streaming path end to
// end over a real simulated run: a TraceStreamer teed with a recorder
// must produce exactly the bytes WriteChromeTrace renders from the
// recording afterwards.
func TestFacadeStreamMatchesRecordedTrace(t *testing.T) {
	net, err := iprune.BuildModel("HAR", 7)
	if err != nil {
		t.Fatal(err)
	}
	names := iprune.PrunableLayerNames(net)
	rec := iprune.NewTraceRecorder()
	var streamed bytes.Buffer
	st := iprune.NewTraceStreamer(&streamed, names)
	if _, err := iprune.SimulateObserved(net, iprune.StrongPower, 7, iprune.TeeTracers(st, rec)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) == 0 {
		t.Fatal("simulation emitted no events")
	}
	var recorded bytes.Buffer
	if err := iprune.WriteChromeTrace(&recorded, rec.Events(), names); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), recorded.Bytes()) {
		t.Error("streamed trace diverges from the recorded render")
	}

	// File-backed variant plus the CSV diff round trip.
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	fs, err := iprune.CreateTraceStream(path, names)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := iprune.SimulateObserved(net, iprune.StrongPower, 7, fs); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, recorded.Bytes()) {
		t.Error("file-backed stream diverges from the recorded render")
	}

	stats := iprune.CollectTrace(rec.Events())
	var csvBuf bytes.Buffer
	if err := iprune.WriteTraceCSV(&csvBuf, stats, names); err != nil {
		t.Fatal(err)
	}
	loaded, loadedNames, err := iprune.ReadTraceCSV(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	d := iprune.DiffTrace(stats, loaded)
	if d.Total.Latency.Abs != 0 || d.Total.Energy.Abs != 0 || d.Total.Ops.Abs != 0 {
		t.Errorf("CSV round-trip self-diff not zero: %+v", d.Total)
	}
	var table strings.Builder
	if err := iprune.WriteTraceDiffTable(&table, d, loadedNames); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "total") {
		t.Errorf("diff table missing total row:\n%s", table.String())
	}
}

func TestFacadeShareWeights(t *testing.T) {
	net, err := iprune.BuildModel("HAR", 9)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := iprune.Stats(net)
	mse, err := iprune.ShareWeights(net, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mse <= 0 {
		t.Error("sharing should perturb weights")
	}
	after, _ := iprune.Stats(net)
	if after.AccOutputs != before.AccOutputs {
		t.Error("sharing must not change accelerator outputs")
	}
	if _, err := iprune.ShareWeights(net, 0, 1); err == nil {
		t.Error("expected error for invalid bits")
	}
}

func TestFacadeSimulateTrace(t *testing.T) {
	net, err := iprune.BuildModel("HAR", 9)
	if err != nil {
		t.Fatal(err)
	}
	bright := iprune.Trace{Times: []float64{0, 100}, Powers: []float64{16e-3, 16e-3}}
	dim := iprune.Trace{Times: []float64{0, 100}, Powers: []float64{3e-3, 3e-3}}
	rb, err := iprune.SimulateTrace(net, bright, 1)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := iprune.SimulateTrace(net, dim, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Latency >= rd.Latency {
		t.Errorf("bright %v should beat dim %v", rb.Latency, rd.Latency)
	}
	if _, err := iprune.SimulateTrace(net, iprune.Trace{}, 1); err == nil {
		t.Error("expected error for invalid trace")
	}
}
