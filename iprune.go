// Package iprune is an intermittent-aware neural network pruning toolkit:
// a Go reproduction of "Intermittent-Aware Neural Network Pruning"
// (Lin et al., DAC 2023).
//
// Battery-less devices running DNN inference on harvested energy must
// preserve every accelerator output to nonvolatile memory so progress
// survives power failures; the resulting NVM writes, not MACs or reads,
// dominate inference latency. iPrune therefore prunes by a criterion that
// counts accelerator outputs, removing weight blocks at exactly the
// granularity of one accelerator operation so pruned blocks disappear
// from the operation schedule.
//
// The package exposes the complete stack built for the reproduction:
//
//   - training (nn substrate) and the three TinyML models of the paper;
//   - synthetic datasets standing in for CIFAR-10 / HAR / speech commands;
//   - the tiling/cost model that counts accelerator outputs (the pruning
//     criterion) and NVM traffic;
//   - iterative three-step pruning (iPrune) plus the energy-aware ePrune
//     comparison and ablation criteria;
//   - Q15 quantization and BSR block-sparse deployment;
//   - the HAWAII⁺ intermittent inference engine: a functional simulator
//     with job-counter progress preservation/recovery, and an
//     event-driven latency/energy simulator with an MSP430FR5994-class
//     device profile and a capacitor-buffered harvesting supply.
//
// Quick start:
//
//	net, _ := iprune.BuildModel("HAR", 1)
//	ds := iprune.HARData(iprune.DataConfig{Train: 192, Test: 96, Noise: 0.35}, 1)
//	iprune.TrainSGD(net, ds.Train, 8, 0.005, 1)
//	res, _ := iprune.Prune(net, ds.Train, ds.Test, iprune.DefaultPruneOptions())
//	before, _ := iprune.Simulate(net, iprune.StrongPower, 1)
//	after, _ := iprune.Simulate(res.Net, iprune.StrongPower, 1)
//	fmt.Printf("speedup %.2fx\n", before.Latency/after.Latency)
package iprune

import (
	"context"
	"io"
	"math/rand"
	"os"

	"iprune/internal/compress"
	"iprune/internal/core"
	"iprune/internal/dataset"
	"iprune/internal/device"
	"iprune/internal/energy"
	"iprune/internal/hawaii"
	"iprune/internal/models"
	"iprune/internal/nn"
	"iprune/internal/obs"
	"iprune/internal/pool"
	"iprune/internal/power"
	"iprune/internal/quant"
	"iprune/internal/tensor"
	"iprune/internal/tile"
)

// Re-exported foundation types. The aliases make the internal packages'
// documented types part of the public API without duplicating them.
type (
	// Network is a trainable DNN (see the nn layer types for building
	// custom architectures).
	Network = nn.Network
	// Sample is one labelled input.
	Sample = nn.Sample
	// Dataset is a generated train/test split.
	Dataset = dataset.Dataset
	// DataConfig sizes a generated dataset.
	DataConfig = dataset.Config
	// PruneOptions tunes the iterative pruning loop.
	PruneOptions = core.Options
	// PruneResult is the outcome of a pruning run.
	PruneResult = core.Result
	// Criterion scores layers for pruning-ratio allocation.
	Criterion = core.Criterion
	// Supply is a power operating point.
	Supply = power.Supply
	// SimResult is a simulated end-to-end inference outcome.
	SimResult = hawaii.Result
	// EngineConfig is the inference-engine tiling configuration.
	EngineConfig = tile.Config
	// DeviceProfile is the hardware latency/energy model.
	DeviceProfile = device.Profile
	// Tracer receives typed observability events from the simulators
	// (see internal/obs for the event model).
	Tracer = obs.Tracer
	// TraceEvent is one typed observability event.
	TraceEvent = obs.Event
	// TraceRecorder records emitted events in memory for export.
	TraceRecorder = obs.Recorder
	// TraceStreamer encodes events straight to an io.Writer as Chrome
	// trace JSON in O(1) event memory (see NewTraceStreamer).
	TraceStreamer = obs.StreamTracer
	// TraceDiff is the typed cross-run comparison of two RunStats.
	TraceDiff = obs.StatsDiff
	// RunStats is the per-layer / per-power-cycle aggregation of a
	// recorded run.
	RunStats = obs.RunStats
	// Metrics is a registry of observability counters and histograms.
	Metrics = obs.Metrics
)

// Pruning criteria.
var (
	// CriterionAccOutputs is iPrune's accelerator-output criterion.
	CriterionAccOutputs Criterion = core.AccOutputs{}
	// CriterionEnergy is the energy-aware (ePrune) criterion.
	CriterionEnergy Criterion = core.Energy{}
	// CriterionMACs is the compute-only ablation criterion.
	CriterionMACs Criterion = core.MACs{}
	// CriterionUniform treats all layers alike (magnitude-only ablation).
	CriterionUniform Criterion = core.Uniform{}
)

// The paper's power operating points.
var (
	// ContinuousPower never browns out (1.65 W).
	ContinuousPower = power.ContinuousPower
	// StrongPower is 8 mW harvested.
	StrongPower = power.StrongPower
	// WeakPower is 4 mW harvested.
	WeakPower = power.WeakPower
)

// BuildModel constructs one of the paper's TinyML models: "SQN", "HAR" or
// "CKS".
func BuildModel(name string, seed int64) (*Network, error) {
	return models.ByName(name, seed)
}

// ModelNames lists the available model builders.
func ModelNames() []string { return models.Names() }

// ImageData generates the 10-class image-recognition dataset (SQN).
func ImageData(cfg DataConfig, seed int64) *Dataset { return dataset.Images(cfg, seed) }

// HARData generates the 6-class activity dataset (HAR).
func HARData(cfg DataConfig, seed int64) *Dataset { return dataset.HAR(cfg, seed) }

// SpeechData generates the 12-class keyword dataset (CKS).
func SpeechData(cfg DataConfig, seed int64) *Dataset { return dataset.Speech(cfg, seed) }

// TrainSGD trains the network with momentum SGD and per-epoch learning
// rate decay (0.85), returning the final training loss.
func TrainSGD(net *Network, train []Sample, epochs int, lr float64, seed int64) float64 {
	opt := nn.NewSGD(lr, 0.9)
	rng := rand.New(rand.NewSource(seed))
	var loss float64
	for e := 0; e < epochs; e++ {
		loss = nn.TrainEpoch(net, train, opt, 16, rng)
		opt.LR *= 0.85
	}
	return loss
}

// Accuracy evaluates float top-1 accuracy.
func Accuracy(net *Network, samples []Sample) float64 { return nn.Accuracy(net, samples) }

// DeployedAccuracy evaluates top-1 accuracy under Q15 deployment numerics.
func DeployedAccuracy(net *Network, samples []Sample) float64 {
	return quant.AccuracyQ15(quant.QuantizeWeights(net), samples)
}

// DefaultPruneOptions returns the paper-default pruning configuration
// (Γ̂=40%, ε=1%, second chance, RMS blocks, simulated annealing).
func DefaultPruneOptions() PruneOptions { return core.DefaultOptions() }

// Prune runs intermittent-aware (iPrune) pruning on a trained network.
func Prune(net *Network, train, val []Sample, opts PruneOptions) (*PruneResult, error) {
	return PruneWith(CriterionAccOutputs, net, train, val, opts)
}

// PruneWith runs the iterative pruning loop under any criterion.
func PruneWith(crit Criterion, net *Network, train, val []Sample, opts PruneOptions) (*PruneResult, error) {
	p := core.NewPruner(crit)
	p.Opt = opts
	return p.Run(net, train, val)
}

// DefaultEngineConfig returns the HAWAII⁺ tiling configuration for the
// MSP430 platform.
func DefaultEngineConfig() EngineConfig { return tile.DefaultConfig() }

// MSP430 returns the default device cost profile.
func MSP430() DeviceProfile { return device.MSP430FR5994() }

// Simulate runs one event-driven end-to-end intermittent inference of the
// network under a supply and returns latency, energy, failure and
// breakdown statistics. The network's pruning masks (if any) shape the
// accelerator-operation schedule. A non-nil error is
// *hawaii.ErrOpExceedsBuffer: an op in the schedule can never fit one
// buffer charge, so the inference cannot complete under this supply.
func Simulate(net *Network, sup Supply, seed int64) (SimResult, error) {
	return SimulateObserved(net, sup, seed, nil)
}

// SimulateObserved is Simulate with a tracer attached: every op, layer
// boundary, power cycle, failure and recovery of the run is emitted as a
// typed event (record with NewTraceRecorder, then export via
// CollectTrace / WriteChromeTrace / WriteTraceCSV). A nil tracer
// behaves exactly like Simulate.
func SimulateObserved(net *Network, sup Supply, seed int64, tr Tracer) (SimResult, error) {
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	ensureMasks(net, specs)
	cs := hawaii.NewCostSim(cfg)
	cs.Trace = tr
	return cs.RunNetwork(net, specs, tile.Intermittent, sup, seed)
}

// SweepPoint is one operating point of a PowerSweep: the supply it ran
// under and the simulation outcome. Err is non-nil when the point cannot
// complete (ErrOpExceedsBuffer at powers too weak to charge one op).
type SweepPoint struct {
	Supply Supply
	Result SimResult
	Err    error
}

// PowerSweep simulates one end-to-end inference of net at every supply,
// sharded workers-wide across the internal worker pool (workers <= 1 is
// fully sequential, 0 is not special-cased — pass the parallelism you
// want). Every point builds its own schedule and cost simulator, so
// points share only the immutable network and results are positionally
// deterministic: pts[i] always corresponds to sups[i], whatever the
// worker count. The masks the schedule needs are installed once, before
// the fan-out, keeping the shared network read-only inside it.
func PowerSweep(net *Network, sups []Supply, seed int64, workers int) []SweepPoint {
	return PowerSweepContext(context.Background(), net, sups, seed, workers)
}

// PowerSweepContext is PowerSweep under a cancellable context. Points
// the fan-out never ran (cancellation stops the pool between index
// draws) carry the pool's error — typically ctx.Err() — in their Err
// field alongside their Supply, so a partially-swept result never looks
// like a clean one. Worker panics still propagate as panics.
func PowerSweepContext(ctx context.Context, net *Network, sups []Supply, seed int64, workers int) []SweepPoint {
	pts := make([]SweepPoint, len(sups))
	for i := range pts {
		pts[i].Supply = sups[i]
	}
	// Install masks up front so concurrent points never mutate net.
	cfg := tile.DefaultConfig()
	ensureMasks(net, tile.SpecsFromNetwork(net, cfg))
	done := make([]bool, len(sups))
	runPoint := func(i int) {
		pts[i].Result, pts[i].Err = Simulate(net, sups[i], seed)
		done[i] = true
	}
	markSkipped := func(err error) {
		for i := range pts {
			if !done[i] {
				pts[i].Err = err
			}
		}
	}
	if workers <= 1 || len(sups) <= 1 {
		for i := range sups {
			if err := ctx.Err(); err != nil {
				markSkipped(err)
				return pts
			}
			runPoint(i)
		}
		return pts
	}
	p := pool.New(workers - 1) // the calling goroutine participates
	defer p.Close()
	if err := p.ForEach(ctx, len(sups), runPoint); err != nil {
		if pe, ok := err.(*pool.PanicError); ok {
			panic(pe.Value)
		}
		markSkipped(err)
	}
	return pts
}

// NewTraceRecorder returns an in-memory event recorder to pass to
// SimulateObserved or an Engine's Trace field.
func NewTraceRecorder() *TraceRecorder { return obs.NewRecorder() }

// NewTraceStreamer returns a tracer that renders each emitted event as
// Chrome trace-event JSON straight into w, retaining nothing — the
// constant-memory counterpart of recording and then calling
// WriteChromeTrace, with byte-identical output. The caller must Close
// it to terminate the JSON document; any prefix of emissions followed
// by Close parses.
func NewTraceStreamer(w io.Writer, names []string) *TraceStreamer {
	return obs.NewStreamTracer(w, names)
}

// TeeTracers fans one event stream out to several tracers — typically a
// streaming artifact writer plus a recorder feeding CollectTrace. Nil
// members are dropped.
func TeeTracers(ts ...Tracer) Tracer { return obs.NewTee(ts...) }

// TraceStream is a file-backed TraceStreamer created by
// CreateTraceStream; Close finalizes both the JSON document and the
// file.
type TraceStream struct {
	*TraceStreamer
	f io.Closer
}

// Close terminates the trace document and closes the underlying file,
// returning the first error of the stream's lifetime.
func (s *TraceStream) Close() error {
	err := s.TraceStreamer.Close()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// CreateTraceStream creates path and returns a streaming tracer writing
// Chrome trace JSON into it. Pass it to SimulateObserved (directly or
// inside TeeTracers) and Close it when the run ends; Close errors mean
// the artifact is incomplete and must be surfaced.
func CreateTraceStream(path string, names []string) (*TraceStream, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &TraceStream{TraceStreamer: obs.NewStreamTracer(f, names), f: f}, nil
}

// DiffTrace compares two aggregated runs layer by layer: the
// before/after pruning story (latency, energy, preserves,
// re-executions per layer, absolute and percent). Layers present in
// only one run diff against zero; percent changes against a zero
// baseline are marked invalid rather than divided.
func DiffTrace(before, after *RunStats) *TraceDiff { return obs.DiffRunStats(before, after) }

// ReadTraceCSV parses a CSV written by WriteTraceCSV back into run
// statistics plus the layer-name table, so exported runs can be diffed
// without re-simulating.
func ReadTraceCSV(r io.Reader) (*RunStats, []string, error) { return obs.ReadStatsCSV(r) }

// WriteTraceDiffTable renders a cross-run diff as a terminal table.
func WriteTraceDiffTable(w io.Writer, d *TraceDiff, names []string) error {
	return obs.WriteDiffTable(w, d, names)
}

// WriteTraceDiffCSV renders a cross-run diff as long-form CSV (one row
// per layer per metric).
func WriteTraceDiffCSV(w io.Writer, d *TraceDiff, names []string) error {
	return obs.WriteDiffCSV(w, d, names)
}

// CollectTrace aggregates recorded events into per-layer and
// per-power-cycle statistics.
func CollectTrace(events []TraceEvent) *RunStats { return obs.Collect(events) }

// PrunableLayerNames returns the names of the network's prunable layers
// in schedule order — the name table for trace and metrics sinks.
func PrunableLayerNames(net *Network) []string {
	specs := tile.SpecsFromNetwork(net, tile.DefaultConfig())
	names := make([]string, len(specs))
	for i := range specs {
		names[i] = specs[i].Name
	}
	return names
}

// ParseSupply parses a supply name: continuous | strong | weak, or a
// custom harvest power like "6mW".
func ParseSupply(name string) (Supply, error) { return power.ParseSupply(name) }

// NewMetrics returns an empty observability metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// WriteChromeTrace renders recorded events as Chrome trace-event JSON,
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// names labels layer indices (see PrunableLayerNames).
func WriteChromeTrace(w io.Writer, events []TraceEvent, names []string) error {
	return obs.WriteChromeTrace(w, events, names)
}

// WriteTraceCSV renders per-layer run statistics as CSV (one row per
// layer plus a "total" row whose latency/energy equal the simulator's
// aggregate result).
func WriteTraceCSV(w io.Writer, s *RunStats, names []string) error {
	return obs.WriteCSV(w, s, names)
}

// WriteTraceSummary renders a terminal summary of a recorded run; m is
// optional (nil skips the counter/histogram section).
func WriteTraceSummary(w io.Writer, s *RunStats, m *Metrics, names []string) error {
	return obs.WriteSummary(w, s, m, names)
}

// WriteHistogramsCSV renders every histogram of a metrics registry in
// long form, one CSV row per bucket (le = inclusive upper bound, "+Inf"
// for overflow) — the machine-readable companion to WriteTraceSummary.
func WriteHistogramsCSV(w io.Writer, m *Metrics) error {
	return obs.WriteHistogramsCSV(w, m)
}

// WriteArtifact creates path and renders into it, surfacing write and
// close errors instead of leaving a silently truncated file. It is the
// export primitive behind every CLI -trace/-metrics/-hist flag.
func WriteArtifact(path string, render func(io.Writer) error) error {
	return obs.WriteFile(path, render)
}

// ObserveModel registers the analytic per-layer cost counters of the
// network (ops, jobs — the pruning criterion —, MACs and NVM traffic)
// in a metrics registry.
func ObserveModel(m *Metrics, net *Network) {
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	ensureMasks(net, specs)
	tile.ObserveNetwork(m, net, specs, tile.Intermittent, cfg)
}

// ModelStats summarizes a deployable model.
type ModelStats struct {
	SizeBytes  int   // BSR payload + indices + biases
	Weights    int   // remaining weight elements
	MACs       int64 // multiply-accumulates per inference
	AccOutputs int64 // accelerator outputs per inference (iPrune criterion)
}

// Stats computes the deployable-model statistics of a network under the
// default engine configuration.
func Stats(net *Network) (ModelStats, error) {
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	ensureMasks(net, specs)
	m, err := quant.Deploy(net, specs)
	if err != nil {
		return ModelStats{}, err
	}
	c := tile.CountNetwork(net, specs, tile.Intermittent, cfg)
	return ModelStats{
		SizeBytes:  m.SizeBytes(),
		Weights:    net.TotalWeights(),
		MACs:       c.MACs,
		AccOutputs: c.Jobs,
	}, nil
}

// Engine constructs the functional HAWAII⁺ engine for a network: it
// executes real Q15 inference job by job with progress preservation and
// recovery under injected power failures. Calibrate it with a few samples
// before use.
func Engine(net *Network) (*hawaii.Engine, error) {
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	ensureMasks(net, specs)
	return hawaii.NewEngine(net, specs, cfg)
}

// SaveModel writes a trained (possibly pruned) paper model to disk; the
// network must come from BuildModel with the given seed.
func SaveModel(path string, net *Network, seed int64) error {
	return models.Save(path, net, seed)
}

// LoadModel restores a model written by SaveModel.
func LoadModel(path string) (*Network, error) { return models.Load(path) }

// ensureMasks installs accelerator-block masks on networks that have not
// been through the pruner yet, so cost counting always has geometry.
func ensureMasks(net *Network, specs []tile.LayerSpec) {
	for i, p := range net.Prunables() {
		if m := p.Mask(); m == nil || m.BM != specs[i].TM || m.BK != specs[i].TK {
			if m == nil {
				p.InitBlocks(specs[i].TM, specs[i].TK)
			}
		}
	}
}

// ShareWeights applies k-means weight sharing (2^bits shared values per
// layer) in place — the compression extension from the paper's
// conclusion. It composes with pruning: masked weights stay zero. Returns
// the mean squared weight perturbation.
func ShareWeights(net *Network, bits int, seed int64) (float64, error) {
	res, err := compress.Share(net, bits, 25, seed)
	if err != nil {
		return 0, err
	}
	return res.MeanSquaredError, nil
}

// SolarTrace builds a synthetic solar-day harvest profile (sine arc with
// seeded cloud dips) peaking at peakWatts over duration seconds.
func SolarTrace(peakWatts, duration float64, clouds int, seed int64) power.Trace {
	return power.SolarDay(peakWatts, duration, clouds, seed)
}

// SimulateTrace runs one intermittent inference against a time-varying
// harvest trace (see SolarTrace).
func SimulateTrace(net *Network, tr power.Trace, seed int64) (SimResult, error) {
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	ensureMasks(net, specs)
	sim, err := power.NewTraceSim(power.DefaultBuffer(), tr, seed)
	if err != nil {
		return SimResult{}, err
	}
	cs := hawaii.NewCostSim(cfg)
	ops := hawaii.ScheduleFromNetwork(net, specs, tile.Intermittent, cfg)
	return cs.RunWithSim(ops, tile.Intermittent, sim)
}

// Trace re-exports the time-varying harvest profile type.
type Trace = power.Trace

// FailEveryN re-exports the functional engine's deterministic failure
// injector (fails at every N-th preservation boundary).
type FailEveryN = hawaii.EveryN

// ---------------------------------------------------------------------------
// Unified timeline: calibrated engine traces, telemetry hub, budget audit

// ObserveEngine runs one functional-engine inference of the network
// with its trace calibrated against the shared energy cost model: the
// emitted events are stamped in the same simulated seconds and joules
// CostSim stamps, so an engine section and a cost-sim section of the
// same model and supply overlay on one time axis (stream both into one
// TraceStreamer with NextProcess between them). The input sample is
// synthesized from the model's input shape with the given seed; inj may
// be nil (no injected failures) or a FailEveryN to exercise the
// recovery and recharge pricing.
func ObserveEngine(net *Network, sup Supply, seed int64, tr Tracer, inj *FailEveryN) error {
	shape, err := models.InputShape(net.Name)
	if err != nil {
		return err
	}
	e, err := Engine(net)
	if err != nil {
		return err
	}
	e.Trace = tr
	e.Price = hawaii.NewTracePricer(sup, tile.DefaultConfig())
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = float32(rng.Float64()*2 - 1)
	}
	var fi hawaii.FailureInjector
	if inj != nil {
		fi = inj
	}
	_, err = e.Infer(x, fi)
	return err
}

// BudgetAudit is the static-vs-measured energy audit of one recorded
// run (see AuditTrace).
type BudgetAudit = energy.AuditReport

// AuditTrace cross-checks a recorded run's measured energy against the
// static power-cycle budget the regionbudget analyzer enforces: every
// measured atomic region (op commit, recovery, preservation write,
// failed attempt) must fit one buffer charge, and every completed power
// cycle's draw must be explained by one charge plus the supply's
// harvest. The trace must carry energy — record a Simulate run, or an
// ObserveEngine run (whose pricing the audit then checks against the
// same model). Use AuditReport.WriteReport to render, Failed to gate.
func AuditTrace(events []TraceEvent, sup Supply) *BudgetAudit {
	hw := sup.Power
	if sup.Continuous {
		hw = 0
	}
	return energy.Default().AuditTrace(events, hw, sup.Jitter)
}

// CountRegionFindings reads an `iprunelint -json` report and counts its
// regionbudget findings — the static half of the budget audit. Assign
// the count to an AuditReport's StaticFindings to fold the static
// cross-check into its verdict.
func CountRegionFindings(r io.Reader) (int, error) { return energy.CountRegionFindings(r) }

// TelemetryHub re-exports the concurrency-safe fleet telemetry
// collector: per-device tracer lanes sharded across owning goroutines,
// merged into per-device stats, fleet rollup metrics and one
// multi-process trace. See obs.Hub for the ownership model.
type TelemetryHub = obs.Hub

// TelemetryDevice is one device's tracer lane into a TelemetryHub.
type TelemetryDevice = obs.HubDevice

// NewTelemetryHub starts a hub with the given shard count (clamped to
// >= 1); Close it after all producers finish.
func NewTelemetryHub(shards int) *TelemetryHub { return obs.NewHub(shards) }

// ReadHistogramsCSV parses a WriteHistogramsCSV export back into a
// metrics registry.
func ReadHistogramsCSV(r io.Reader) (*Metrics, error) { return obs.ReadHistogramsCSV(r) }

// WriteHistogramDiffTable renders a cross-run histogram comparison
// (n, mean, p50/p95/p99 per histogram) as a terminal table.
func WriteHistogramDiffTable(w io.Writer, before, after *Metrics) error {
	return obs.WriteHistDiffTable(w, before, after)
}

// StartProfiles starts the runtime/pprof CPU and/or heap profiles
// behind the CLIs' -cpuprofile/-memprofile flags; either path may be
// empty. Run the returned stop function before exiting to finalize the
// profile files.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	return obs.StartProfiles(cpuPath, memPath)
}
