// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md and
// microbenchmarks of the substrates.
//
// The Table III / Figure 5 benches run the full train→prune→deploy→
// simulate pipeline once per process (cached via sync.Once, reusing
// ./artifacts when present) and report the headline quantities as custom
// metrics. Set IPRUNE_FULL=1 to run them at the paper-style full scale.
package iprune_test

import (
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"iprune"
	"iprune/internal/core"
	"iprune/internal/dataset"
	"iprune/internal/fixed"
	"iprune/internal/hawaii"
	"iprune/internal/models"
	"iprune/internal/nn"
	"iprune/internal/power"
	"iprune/internal/report"
	"iprune/internal/sparse"
	"iprune/internal/tensor"
	"iprune/internal/tile"
)

// ---------------------------------------------------------------------------
// Pipeline (shared by the Table III / Figure 5 benches)

var (
	pipeOnce sync.Once
	pipeRes  []*report.AppResult
	pipeErr  error
)

func pipeline(b *testing.B) []*report.AppResult {
	b.Helper()
	pipeOnce.Do(func() {
		sc := report.Quick
		if os.Getenv("IPRUNE_FULL") == "1" {
			sc = report.Full
		}
		pipeRes, pipeErr = report.RunAll(sc, 42, "artifacts", nil)
	})
	if pipeErr != nil {
		b.Fatal(pipeErr)
	}
	return pipeRes
}

// BenchmarkTable1Environment renders the platform specification table.
func BenchmarkTable1Environment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(report.RenderTable1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Characteristics measures the analytic model
// characterization (build + lower + count) of all three applications.
func BenchmarkTable2Characteristics(b *testing.B) {
	cfg := tile.DefaultConfig()
	for i := 0; i < b.N; i++ {
		for _, name := range models.Names() {
			net, err := models.ByName(name, 1)
			if err != nil {
				b.Fatal(err)
			}
			specs := tile.SpecsFromNetwork(net, cfg)
			tile.InstallMasks(net, specs)
			c := tile.CountNetwork(net, specs, tile.Intermittent, cfg)
			if c.Jobs == 0 {
				b.Fatal("no jobs counted")
			}
		}
	}
}

// BenchmarkTable3PrunedModels runs the full pruning pipeline and reports
// the Table III quantities for the iPrune variants.
func BenchmarkTable3PrunedModels(b *testing.B) {
	if testing.Short() {
		b.Skip("full pipeline")
	}
	results := pipeline(b)
	for i := 0; i < b.N; i++ {
		_ = report.RenderTable3(results)
	}
	for _, r := range results {
		ip := r.Variants[2]
		b.ReportMetric(float64(ip.SizeBytes)/1024, r.App+"_iprune_KB")
		b.ReportMetric(100*ip.AccuracyQ, r.App+"_iprune_acc%")
		b.ReportMetric(float64(ip.Counts.Jobs)/1000, r.App+"_iprune_jobsK")
	}
}

// BenchmarkFig2Breakdown measures the latency-breakdown simulation of the
// unpruned models in both execution disciplines.
func BenchmarkFig2Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, app := range models.Names() {
			conv, inter, err := report.Fig2Breakdown(app, report.Quick, 1)
			if err != nil {
				b.Fatal(err)
			}
			if inter.Break.WriteTime <= conv.Break.WriteTime {
				b.Fatal("breakdown shape violated")
			}
		}
	}
}

// BenchmarkFig5Latency runs the full pipeline and reports the headline
// speedups of Figure 5.
func BenchmarkFig5Latency(b *testing.B) {
	if testing.Short() {
		b.Skip("full pipeline")
	}
	results := pipeline(b)
	for i := 0; i < b.N; i++ {
		_ = report.RenderFig5(results)
	}
	for _, r := range results {
		for _, sup := range report.Supplies() {
			u := r.Variants[0].Latency[sup.Name].Latency
			e := r.Variants[1].Latency[sup.Name].Latency
			ip := r.Variants[2].Latency[sup.Name].Latency
			b.ReportMetric(e/ip, r.App+"_"+sup.Name+"_vs_eprune_x")
			b.ReportMetric(u/ip, r.App+"_"+sup.Name+"_vs_unpruned_x")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md section 5)

func ablationNet(b *testing.B, seed int64) (*nn.Network, []nn.Sample, []nn.Sample) {
	b.Helper()
	ds := dataset.HAR(dataset.Config{Train: 96, Test: 48, Noise: 0.3}, seed)
	net := models.HAR(seed)
	opt := nn.NewSGD(0.005, 0.9)
	rng := rand.New(rand.NewSource(seed))
	for e := 0; e < 6; e++ {
		nn.TrainEpoch(net, ds.Train, opt, 16, rng)
		opt.LR *= 0.85
	}
	return net, ds.Train, ds.Test
}

func ablationOpts() core.Options {
	o := core.DefaultOptions()
	o.MaxIters = 3
	o.FinetuneEpochs = 3
	o.Epsilon = 0.08
	o.GammaHat = 0.2
	o.LR = 0.002
	o.LRDecay = 0.85
	o.SenseSamples = 32
	return o
}

// BenchmarkAblationCriterion prunes the same pretrained model under every
// criterion and reports the resulting accelerator-output counts: the
// iPrune criterion should end lowest.
func BenchmarkAblationCriterion(b *testing.B) {
	if testing.Short() {
		b.Skip("pruning ablation")
	}
	net, train, val := ablationNet(b, 21)
	crits := []core.Criterion{core.AccOutputs{}, core.Energy{}, core.MACs{}, core.Uniform{}}
	for i := 0; i < b.N; i++ {
		for _, crit := range crits {
			p := core.NewPruner(crit)
			p.Opt = ablationOpts()
			res, err := p.Run(net, train, val)
			if err != nil {
				b.Fatal(err)
			}
			st, err := iprune.Stats(res.Net)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(st.AccOutputs)/1000, crit.Name()+"_jobsK")
			}
		}
	}
}

// BenchmarkAblationGranularity compares block pruning with fine-grained
// element zeroing at equal sparsity: only the former removes accelerator
// outputs (the paper's guideline-3 argument).
func BenchmarkAblationGranularity(b *testing.B) {
	cfg := tile.DefaultConfig()
	for i := 0; i < b.N; i++ {
		blockNet := models.HAR(7)
		fineNet := models.HAR(7)
		for _, net := range []*nn.Network{blockNet, fineNet} {
			specs := tile.SpecsFromNetwork(net, cfg)
			tile.InstallMasks(net, specs)
		}
		core.OneShotBlocks(blockNet, 0.5)
		core.FineGrainedZero(fineNet, 0.5)
		bs := tile.SpecsFromNetwork(blockNet, cfg)
		fs := tile.SpecsFromNetwork(fineNet, cfg)
		blockJobs := tile.CountNetwork(blockNet, bs, tile.Intermittent, cfg).Jobs
		fineJobs := tile.CountNetwork(fineNet, fs, tile.Intermittent, cfg).Jobs
		if blockJobs >= fineJobs {
			b.Fatal("block pruning must remove accelerator outputs; fine-grained must not")
		}
		if i == 0 {
			b.ReportMetric(float64(blockJobs)/1000, "block_jobsK")
			b.ReportMetric(float64(fineJobs)/1000, "fine_jobsK")
		}
	}
}

// BenchmarkAblationGamma compares the sensitivity-guided Γ selection
// (guideline 1) against a fixed Γ̂ under the iPrune criterion.
func BenchmarkAblationGamma(b *testing.B) {
	if testing.Short() {
		b.Skip("pruning ablation")
	}
	net, train, val := ablationNet(b, 23)
	for i := 0; i < b.N; i++ {
		for _, guided := range []bool{true, false} {
			p := core.NewPruner(core.AccOutputs{})
			p.Opt = ablationOpts()
			if !guided {
				// Degenerate guideline 1: always use the upper bound.
				p.Opt.GammaHat = 0.2
				p.Opt.SensitivityDelta = 0 // probes prune one block: ~flat ranks
			}
			res, err := p.Run(net, train, val)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				name := "fixed"
				if guided {
					name = "guided"
				}
				b.ReportMetric(100*res.Accuracy, name+"_acc%")
			}
		}
	}
}

// BenchmarkPowerSweep extends Figure 5 beyond the paper's two harvested
// operating points: latency of the unpruned HAR model vs harvest power.
func BenchmarkPowerSweep(b *testing.B) {
	net := models.HAR(1)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	cs := hawaii.NewCostSim(cfg)
	sweep := []float64{2e-3, 4e-3, 8e-3, 16e-3, 32e-3}
	for i := 0; i < b.N; i++ {
		var last float64
		for _, p := range sweep {
			sup := power.Supply{Name: "sweep", Power: p, Jitter: 0}
			r, err := cs.RunNetwork(net, specs, tile.Intermittent, sup, 1)
			if err != nil {
				b.Fatal(err)
			}
			if last != 0 && r.Latency >= last {
				b.Fatal("latency must fall as harvest power rises")
			}
			last = r.Latency
		}
	}
}

// BenchmarkPowerSweepParallel is the same sweep through the public
// PowerSweep facade, sharded across the internal worker pool. Sub-bench
// names carry the worker count so benchdiff tracks the scaling curve;
// the monotone latency-vs-power assertion from BenchmarkPowerSweep
// holds at every width (results are positionally deterministic).
func BenchmarkPowerSweepParallel(b *testing.B) {
	net := models.HAR(1)
	sups := make([]iprune.Supply, 0, 5)
	for _, p := range []string{"2mW", "4mW", "8mW", "16mW", "32mW"} {
		sup, err := iprune.ParseSupply(p)
		if err != nil {
			b.Fatal(err)
		}
		sups = append(sups, sup)
	}
	for _, workers := range []int{1, 4} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var last float64
				for _, pt := range iprune.PowerSweep(net, sups, 1, workers) {
					if pt.Err != nil {
						b.Fatal(pt.Err)
					}
					if last != 0 && pt.Result.Latency >= last {
						b.Fatal("latency must fall as harvest power rises")
					}
					last = pt.Result.Latency
				}
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "=" + strconv.Itoa(n)
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the substrates

func BenchmarkGemm64(b *testing.B) {
	const m, k, n = 64, 64, 64
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	c := make([]float32, m*n)
	for i := range a {
		a[i] = float32(i % 7)
	}
	for i := range bb {
		bb[i] = float32(i % 5)
	}
	b.SetBytes(int64(m * k * n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Gemm(a, bb, c, m, k, n, false)
	}
}

func BenchmarkConvForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	conv := nn.NewConv2D("c", tensor.ConvGeom{InC: 16, InH: 16, InW: 16, OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, rng)
	in := tensor.New(16, 16, 16)
	for i := range in.Data {
		in.Data[i] = rng.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(in)
	}
}

func BenchmarkEngineInferHAR(b *testing.B) {
	net := models.HAR(1)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	eng, err := hawaii.NewEngine(net, specs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ds := dataset.HAR(dataset.Config{Train: 2, Test: 2, Noise: 0.3}, 1)
	eng.Calibrate(ds.Train)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Infer(ds.Test[0].X, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCostSimHAR(b *testing.B) {
	net := models.HAR(1)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	cs := hawaii.NewCostSim(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.RunNetwork(net, specs, tile.Intermittent, power.WeakPower, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBSRMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rows, cols := 64, 512
	w := make([]float32, rows*cols)
	for i := range w {
		w[i] = rng.Float32() - 0.5
	}
	mask := nn.NewBlockMask(rows, cols, 8, 32)
	for i := 0; i < mask.NumBlocks(); i += 2 {
		mask.Keep[i] = false
	}
	mask.Apply(w)
	m, err := sparse.FromDense(w, rows, cols, mask, 8, 32)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]fixed.Q15, cols)
	for i := range x {
		x[i] = fixed.FromFloat(rng.Float64() - 0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x)
	}
}

func BenchmarkScheduleBuild(b *testing.B) {
	net := models.SQN(1)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops := hawaii.ScheduleFromNetwork(net, specs, tile.Intermittent, cfg)
		if len(ops) == 0 {
			b.Fatal("empty schedule")
		}
	}
}

func BenchmarkSensitivityAnalysis(b *testing.B) {
	if testing.Short() {
		b.Skip("training-backed")
	}
	net, _, val := ablationNet(b, 29)
	p := core.NewPruner(core.AccOutputs{})
	p.Opt.SenseSamples = 24
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One full pruning iteration's criterion estimation path.
		cfg := tile.DefaultConfig()
		specs := tile.SpecsFromNetwork(net, cfg)
		scores := p.Crit.LayerScores(net, specs, cfg, &p.Dev)
		if len(scores) == 0 {
			b.Fatal("no scores")
		}
		_ = val
	}
}

// BenchmarkAblationWeightSharing contrasts the two compression axes: a
// 50% block prune cuts accelerator outputs (and with them intermittent
// latency) while 4-bit weight sharing cuts storage but not outputs —
// the distinction motivating intermittent-aware pruning.
func BenchmarkAblationWeightSharing(b *testing.B) {
	cfg := tile.DefaultConfig()
	for i := 0; i < b.N; i++ {
		prunedNet := models.HAR(9)
		sharedNet := models.HAR(9)
		for _, net := range []*nn.Network{prunedNet, sharedNet} {
			specs := tile.SpecsFromNetwork(net, cfg)
			tile.InstallMasks(net, specs)
		}
		core.OneShotBlocks(prunedNet, 0.5)
		if _, err := iprune.ShareWeights(sharedNet, 4, 1); err != nil {
			b.Fatal(err)
		}
		ps := tile.SpecsFromNetwork(prunedNet, cfg)
		ss := tile.SpecsFromNetwork(sharedNet, cfg)
		prunedJobs := tile.CountNetwork(prunedNet, ps, tile.Intermittent, cfg).Jobs
		sharedJobs := tile.CountNetwork(sharedNet, ss, tile.Intermittent, cfg).Jobs
		if prunedJobs >= sharedJobs {
			b.Fatal("pruning must cut jobs; sharing must not")
		}
		if i == 0 {
			b.ReportMetric(float64(prunedJobs)/1000, "pruned_jobsK")
			b.ReportMetric(float64(sharedJobs)/1000, "shared_jobsK")
		}
	}
}

// BenchmarkDisciplineComparison contrasts HAWAII's job-level preservation
// with a SONIC/TAILS-style task-level discipline (paper Section I): the
// coarse discipline re-executes whole tasks after each failure, so the
// job-level engine wins under harvested power.
func BenchmarkDisciplineComparison(b *testing.B) {
	net := models.HAR(1)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	cs := hawaii.NewCostSim(cfg)
	jobOps := hawaii.ScheduleFromNetwork(net, specs, tile.Intermittent, cfg)
	tasks := hawaii.TaskScheduleFromNetwork(net, specs, cfg)
	for i := 0; i < b.N; i++ {
		for _, sup := range report.Supplies() {
			job, err := cs.Run(jobOps, tile.Intermittent, sup, 1)
			if err != nil {
				b.Fatal(err)
			}
			task, err := cs.Run(tasks, tile.Intermittent, sup, 1)
			if err != nil {
				b.Fatal(err)
			}
			if !sup.Continuous && task.Latency <= job.Latency {
				b.Fatalf("task-level should lose under %s power", sup.Name)
			}
			if i == 0 {
				b.ReportMetric(task.Latency/job.Latency, sup.Name+"_task_vs_job_x")
			}
		}
	}
}
