package iprune_test

import (
	"fmt"

	"iprune"
)

// Example_characterize shows the analytic characterization path: build a
// paper model and read the quantities the pruning criterion is built on.
// No training involved, so the output is deterministic.
func Example_characterize() {
	net, err := iprune.BuildModel("HAR", 1)
	if err != nil {
		panic(err)
	}
	st, err := iprune.Stats(net)
	if err != nil {
		panic(err)
	}
	fmt.Printf("HAR: %d KB, %d K MACs, %d K accelerator outputs\n",
		st.SizeBytes/1024, st.MACs/1000, st.AccOutputs/1000)
	// Output:
	// HAR: 31 KB, 460 K MACs, 50 K accelerator outputs
}

// Example_simulate runs one simulated intermittent inference under the
// paper's strong (8 mW) harvested supply with deterministic jitter.
func Example_simulate() {
	net, err := iprune.BuildModel("HAR", 1)
	if err != nil {
		panic(err)
	}
	sup := iprune.StrongPower
	sup.Jitter = 0 // deterministic for the doc example
	res, err := iprune.Simulate(net, sup, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("power cycles > 10: %v\n", res.Failures > 10)
	fmt.Printf("charging dominates: %v\n", res.OffTime > res.ActiveTime)
	// Output:
	// power cycles > 10: true
	// charging dominates: true
}

// Example_engine deploys a model on the functional HAWAII⁺ engine and
// shows that a power failure every third preservation boundary does not
// change the classification.
func Example_engine() {
	net, err := iprune.BuildModel("HAR", 1)
	if err != nil {
		panic(err)
	}
	eng, err := iprune.Engine(net)
	if err != nil {
		panic(err)
	}
	ds := iprune.HARData(iprune.DataConfig{Train: 4, Test: 1, Noise: 0.3}, 1)
	eng.Calibrate(ds.Train)
	clean, err := eng.Infer(ds.Test[0].X, nil)
	if err != nil {
		panic(err)
	}
	faulty, err := eng.Infer(ds.Test[0].X, &iprune.FailEveryN{N: 3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("failures injected > 100: %v\n", faulty.Stats.Failures > 100)
	fmt.Printf("same prediction: %v\n", clean.Pred == faulty.Pred)
	// Output:
	// failures injected > 100: true
	// same prediction: true
}
