module iprune

go 1.22
