// Package pool is the repo's bounded worker pool: the parallel
// execution core that power sweeps, candidate evaluation, and the lint
// driver shard work onto.
//
// Design constraints, in order:
//
//   - Certified lifecycle. The pool is the first client of the concflow
//     analyzers (lockorder, goleak, parsafe): workers terminate through
//     a close-signal select that goleak can prove, Close is idempotent
//     and joins every worker, and the pool takes no lock while another
//     is held. `iprunelint ./...` runs over this package in CI.
//   - Zero-alloc steady state. ForEach reuses one batch descriptor per
//     pool and hands workers work by atomic index draw, so a sweep that
//     calls ForEach per power point allocates nothing per call
//     (testing.AllocsPerRun-pinned).
//   - Containment. A panicking task does not kill the process or wedge
//     the pool: the first panic is captured with its stack, the batch
//     drains, and ForEach returns it as a *PanicError. The pool stays
//     usable.
//
// The shape follows the obs.Hub discipline: goroutines are owned by the
// struct that spawned them, shut down by one close, and joined before
// Close returns.
package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by ForEach after Close.
var ErrClosed = errors.New("pool: closed")

// PanicError carries the first panic recovered from a task, with the
// goroutine stack captured at the panic site.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // debug-style stack of the panicking worker
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: task panicked: %v", e.Value)
}

// Pool is a bounded worker pool. The zero value is not usable; call New.
// All methods are safe for concurrent use, but batches are serialized:
// one ForEach runs at a time.
type Pool struct {
	workers int
	tasks   chan *batch
	stop    chan struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool

	mu sync.Mutex // serializes ForEach and guards b against reconfiguration
	b  batch
}

// batch is the reusable work descriptor for one ForEach call. Workers
// draw indices [0,n) from next; the last field write in ForEach
// happens-before the channel send that hands the batch to a worker.
type batch struct {
	ctx  context.Context
	fn   func(int)
	n    int64
	next atomic.Int64
	wg   sync.WaitGroup // workers attached to this batch
	pan  atomic.Pointer[PanicError]
}

// New returns a started pool. workers <= 0 means runtime.GOMAXPROCS(0).
// The calling goroutine also executes tasks during ForEach, so total
// parallelism is workers+1.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan *batch),
		stop:    make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the number of pool-owned workers (excluding the
// ForEach caller).
func (p *Pool) Workers() int { return p.workers }

// worker pulls batches until Close. The stop select is the provable
// termination path: Close closes p.stop exactly once.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case b := <-p.tasks:
			b.run()
			b.wg.Done()
		}
	}
}

// ForEach runs fn(i) for every i in [0,n), fanning the indices across
// the pool's workers plus the calling goroutine. It returns when every
// started task has finished: on context cancellation remaining indices
// are abandoned and ctx.Err() is returned; if a task panicked the first
// panic is returned as a *PanicError after the batch drains. A nil
// return means all n tasks ran. Steady-state calls do not allocate.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(int)) error {
	if n <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	b := &p.b
	b.ctx = ctx
	b.fn = fn
	b.n = int64(n)
	b.next.Store(0)
	b.pan.Store(nil)

	// Hand the batch to at most n workers — extra workers would have
	// nothing to draw. Sends block only until an idle worker's select
	// fires; Close cannot race (it takes p.mu).
	fan := p.workers
	if n < fan {
		fan = n
	}
	b.wg.Add(fan)
	for i := 0; i < fan; i++ {
		p.tasks <- b
	}
	b.run() // the caller participates
	b.wg.Wait()

	err := b.ctx.Err()
	if pe := b.pan.Load(); pe != nil {
		err = pe
	}
	b.ctx = nil
	b.fn = nil // release the closure; the descriptor outlives the batch
	return err
}

// run draws indices until the batch is exhausted or canceled.
func (b *batch) run() {
	for b.ctx.Err() == nil {
		i := b.next.Add(1) - 1
		if i >= b.n {
			return
		}
		b.call(int(i))
	}
}

// call executes one task with panic containment: the first panic is
// recorded with its stack and the rest of the batch is abandoned so
// ForEach returns promptly.
func (b *batch) call(i int) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 8192)
			buf = buf[:runtime.Stack(buf, false)]
			if b.pan.CompareAndSwap(nil, &PanicError{Value: r, Stack: buf}) {
				b.next.Store(b.n) // abandon remaining indices
			}
		}
	}()
	b.fn(i)
}

// Close shuts the pool down and joins every worker. Idempotent; safe to
// call concurrently with ForEach (it waits for the batch to finish).
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
}
