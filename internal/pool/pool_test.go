package pool

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAll(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 1000
	var hits [n]atomic.Int32
	if err := p.ForEach(context.Background(), n, func(i int) {
		hits[i].Add(1)
	}); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, got)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	p := New(2)
	defer p.Close()
	if err := p.ForEach(context.Background(), 0, func(int) { t.Error("fn called for n=0") }); err != nil {
		t.Fatalf("ForEach(0): %v", err)
	}
}

func TestForEachFewerTasksThanWorkers(t *testing.T) {
	p := New(8)
	defer p.Close()
	var ran atomic.Int32
	if err := p.ForEach(context.Background(), 3, func(int) { ran.Add(1) }); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	if ran.Load() != 3 {
		t.Fatalf("ran %d tasks, want 3", ran.Load())
	}
}

// Cancellation mid-batch abandons the remaining indices: every started
// task finishes, ForEach returns ctx.Err(), and the pool stays usable.
func TestCancellationMidBatch(t *testing.T) {
	p := New(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	const n = 100000
	err := p.ForEach(ctx, n, func(i int) {
		if ran.Add(1) == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEach after cancel: %v, want context.Canceled", err)
	}
	if got := ran.Load(); got < 10 || got == n {
		t.Fatalf("ran %d tasks; want ≥10 (reached the trigger) and <%d (abandoned the tail)", got, n)
	}
	// The pool must still work.
	if err := p.ForEach(context.Background(), 5, func(int) {}); err != nil {
		t.Fatalf("ForEach after cancellation: %v", err)
	}
}

func TestPreCanceledContext(t *testing.T) {
	p := New(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.ForEach(ctx, 10, func(int) { t.Error("fn ran under pre-canceled ctx") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEach: %v, want context.Canceled", err)
	}
}

// A panicking task is contained: ForEach reports the first panic as a
// *PanicError with a stack, the process survives, the pool stays usable.
func TestPanicContainment(t *testing.T) {
	p := New(4)
	defer p.Close()
	err := p.ForEach(context.Background(), 100, func(i int) {
		if i == 7 {
			panic("boom 7")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("ForEach: %v, want *PanicError", err)
	}
	if pe.Value != "boom 7" {
		t.Fatalf("PanicError.Value = %v, want \"boom 7\"", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "pool") {
		t.Fatalf("PanicError.Stack does not mention the pool:\n%s", pe.Stack)
	}
	if err := p.ForEach(context.Background(), 10, func(int) {}); err != nil {
		t.Fatalf("ForEach after panic: %v", err)
	}
}

func TestCloseIdempotentAndJoins(t *testing.T) {
	p := New(3)
	done := make(chan struct{})
	go func() {
		p.Close()
		p.Close() // second close must be a no-op, not a panic
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
	if err := p.ForEach(context.Background(), 1, func(int) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ForEach after Close: %v, want ErrClosed", err)
	}
}

func TestNewClampsWorkers(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", p.Workers(), runtime.GOMAXPROCS(0))
	}
}

// Steady-state ForEach calls must not allocate: the batch descriptor is
// reused and indices are drawn atomically, so a sweep calling ForEach
// per power point adds zero GC pressure.
func TestForEachZeroAllocSteadyState(t *testing.T) {
	p := New(2)
	defer p.Close()
	var sink atomic.Int64
	fn := func(i int) { sink.Add(int64(i)) }
	ctx := context.Background()
	// Warm up (first call may fault in lazily initialized runtime state).
	if err := p.ForEach(ctx, 64, fn); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := p.ForEach(ctx, 64, fn); err != nil {
			t.Fatalf("ForEach: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ForEach allocates %v per call in steady state, want 0", allocs)
	}
}

// Stress under -race: concurrent ForEach callers (serialized internally),
// interleaved cancellations and panics, then Close racing a final batch.
func TestStressConcurrent(t *testing.T) {
	p := New(4)
	const callers = 8
	done := make(chan error, callers)
	for c := 0; c < callers; c++ {
		go func(c int) {
			var err error
			for iter := 0; iter < 50; iter++ {
				ctx, cancel := context.WithCancel(context.Background())
				var ran atomic.Int32
				e := p.ForEach(ctx, 200, func(i int) {
					n := ran.Add(1)
					if c%3 == 0 && n == 50 {
						cancel()
					}
					if c%3 == 1 && i == 199 {
						panic("stress panic")
					}
				})
				cancel()
				var pe *PanicError
				if e != nil && !errors.Is(e, context.Canceled) && !errors.As(e, &pe) {
					err = e
					break
				}
			}
			done <- err
		}(c)
	}
	for c := 0; c < callers; c++ {
		if err := <-done; err != nil {
			t.Fatalf("stress caller: %v", err)
		}
	}
	p.Close()
}

func BenchmarkForEach(b *testing.B) {
	p := New(0)
	defer p.Close()
	var sink atomic.Int64
	fn := func(i int) { sink.Add(int64(i)) }
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.ForEach(ctx, 256, fn); err != nil {
			b.Fatal(err)
		}
	}
}
