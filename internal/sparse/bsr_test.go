package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"iprune/internal/fixed"
	"iprune/internal/nn"
)

func denseRand(rng *rand.Rand, n int) []float32 {
	w := make([]float32, n)
	for i := range w {
		w[i] = rng.Float32()*2 - 1
	}
	return w
}

func TestFromDenseRoundTripUnmasked(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := denseRand(rng, 6*8)
	m, err := FromDense(w, 6, 8, nil, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZBlocks() != 6 {
		t.Fatalf("NNZBlocks = %d, want 6 (3x2 grid)", m.NNZBlocks())
	}
	if m.Density() != 1 {
		t.Errorf("Density = %v, want 1", m.Density())
	}
	back := m.ToDense()
	for i := range w {
		if math.Abs(float64(back[i]-w[i])) > 1.0/(1<<14) {
			t.Fatalf("round trip at %d: %v vs %v", i, back[i], w[i])
		}
	}
}

func TestFromDenseMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := denseRand(rng, 4*8)
	mask := nn.NewBlockMask(4, 8, 2, 4)
	mask.Keep[0] = false // block row 0, block col 0
	mask.Apply(w)
	m, err := FromDense(w, 4, 8, mask, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZBlocks() != 3 {
		t.Fatalf("NNZBlocks = %d, want 3", m.NNZBlocks())
	}
	back := m.ToDense()
	for r := 0; r < 2; r++ {
		for c := 0; c < 4; c++ {
			if back[r*8+c] != 0 {
				t.Errorf("pruned region nonzero at (%d,%d)", r, c)
			}
		}
	}
	// Kept region survives.
	for r := 0; r < 4; r++ {
		for c := 4; c < 8; c++ {
			if math.Abs(float64(back[r*8+c]-w[r*8+c])) > 1.0/(1<<14) {
				t.Errorf("kept region mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestFromDenseValidation(t *testing.T) {
	if _, err := FromDense(make([]float32, 5), 2, 4, nil, 1, 2); err == nil {
		t.Error("expected error for short slice")
	}
	mask := nn.NewBlockMask(2, 4, 1, 1)
	if _, err := FromDense(make([]float32, 8), 2, 4, mask, 1, 2); err == nil {
		t.Error("expected error for mismatched mask")
	}
}

func TestRowPtrInvariants(t *testing.T) {
	f := func(rSeed int64, prunePct uint8) bool {
		rng := rand.New(rand.NewSource(rSeed))
		rows, cols, bm, bk := 6, 10, 2, 3
		w := denseRand(rng, rows*cols)
		mask := nn.NewBlockMask(rows, cols, bm, bk)
		for b := range mask.Keep {
			if rng.Intn(100) < int(prunePct%100) {
				mask.Keep[b] = false
			}
		}
		mask.Apply(w)
		m, err := FromDense(w, rows, cols, mask, bm, bk)
		if err != nil {
			return false
		}
		// RowPtr monotone, first 0, last == nnz.
		if m.RowPtr[0] != 0 || int(m.RowPtr[len(m.RowPtr)-1]) != m.NNZBlocks() {
			return false
		}
		for i := 1; i < len(m.RowPtr); i++ {
			if m.RowPtr[i] < m.RowPtr[i-1] {
				return false
			}
		}
		// ColIdx strictly increasing within each block row.
		for br := 0; br < m.BlockRows(); br++ {
			for s := int(m.RowPtr[br]) + 1; s < int(m.RowPtr[br+1]); s++ {
				if m.ColIdx[s] <= m.ColIdx[s-1] {
					return false
				}
			}
		}
		return m.NNZBlocks() == mask.KeptBlocks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSizeBytesAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := denseRand(rng, 4*8)
	mask := nn.NewBlockMask(4, 8, 2, 4)
	mask.Keep[1] = false
	mask.Apply(w)
	m, err := FromDense(w, 4, 8, mask, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 3 blocks * 8 vals * 2B + 3 colidx * 2B + 3 rowptr * 2B.
	want := 3*8*2 + 3*2 + 3*2
	if m.SizeBytes() != want {
		t.Errorf("SizeBytes = %d, want %d", m.SizeBytes(), want)
	}
	if m.IndexBytes() != 12 {
		t.Errorf("IndexBytes = %d, want 12", m.IndexBytes())
	}
}

func TestPruningShrinksSize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := denseRand(rng, 16*32)
	full, err := FromDense(w, 16, 32, nil, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	mask := nn.NewBlockMask(16, 32, 4, 8)
	for b := 0; b < mask.NumBlocks(); b += 2 {
		mask.Keep[b] = false
	}
	w2 := append([]float32(nil), w...)
	mask.Apply(w2)
	half, err := FromDense(w2, 16, 32, mask, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if half.SizeBytes() >= full.SizeBytes() {
		t.Errorf("pruned size %d >= full size %d", half.SizeBytes(), full.SizeBytes())
	}
}

func TestBlockLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := denseRand(rng, 4*6)
	mask := nn.NewBlockMask(4, 6, 2, 2)
	mask.Keep[0] = false
	mask.Keep[4] = false
	mask.Apply(w)
	m, err := FromDense(w, 4, 6, mask, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	for s := 0; s < m.NNZBlocks(); s++ {
		_, br, bc := m.Block(s)
		seen[[2]int{br, bc}] = true
	}
	if seen[[2]int{0, 0}] || seen[[2]int{1, 1}] {
		t.Error("pruned blocks present in BSR")
	}
	if len(seen) != 4 {
		t.Errorf("stored blocks = %d, want 4", len(seen))
	}
}

func TestBlockPanicsOutOfRange(t *testing.T) {
	m := &Matrix{Rows: 2, Cols: 2, BM: 1, BK: 1, RowPtr: []int32{0, 0, 0}}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.Block(0)
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rows, cols := 8, 16
	w := denseRand(rng, rows*cols)
	mask := nn.NewBlockMask(rows, cols, 2, 4)
	mask.Keep[3] = false
	mask.Keep[7] = false
	mask.Apply(w)
	m, err := FromDense(w, rows, cols, mask, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]fixed.Q15, cols)
	xf := make([]float64, cols)
	for i := range x {
		v := rng.Float64()*1.6 - 0.8
		x[i] = fixed.FromFloat(v)
		xf[i] = x[i].Float()
	}
	acc := m.MulVec(x)
	dense := m.ToDense()
	scale := math.Pow(2, float64(m.Shift))
	for r := 0; r < rows; r++ {
		var want float64
		for c := 0; c < cols; c++ {
			want += float64(dense[r*cols+c]) * xf[c]
		}
		// acc has 30 fractional bits at combined scale 2^-Shift.
		got := float64(acc[r]) / (1 << 30) * scale
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("MulVec row %d = %v, want %v", r, got, want)
		}
	}
}
