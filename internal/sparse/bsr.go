// Package sparse implements the Block Compressed Sparse Row (BSR) format
// the paper integrates into HAWAII⁺ (Section III-D): a pruned layer's
// weight matrix is stored as three one-dimensional arrays — the nonzero
// weight blocks, plus two index arrays that jointly locate each block in
// the original matrix. Inference progress through a BSR layer is jointly
// indicated by the current indices into the three arrays, and skipping
// zero blocks is what converts pruning into fewer accelerator operations
// and fewer NVM writes.
package sparse

import (
	"fmt"

	"iprune/internal/fixed"
	"iprune/internal/nn"
)

// Matrix is a BSR-encoded, Q15-quantized weight matrix.
//
// Blocks are stored padded to the uniform BM×BK shape (edge blocks are
// zero-padded), which is how fixed-function DMA engines prefer them; the
// padding is charged to the reported model size, as it occupies NVM.
type Matrix struct {
	Rows, Cols int
	BM, BK     int
	// RowPtr has BlockRows+1 entries; block row br owns the BSR slots
	// RowPtr[br] .. RowPtr[br+1].
	RowPtr []int32
	// ColIdx holds the block-column index of each stored block.
	ColIdx []int32
	// Blocks holds the stored blocks back to back, each BM*BK values.
	Blocks []fixed.Q15
	// Shift is the power-of-two scale shared by all values (see fixed).
	Shift int
}

// indexEntryBytes is the on-device width of one index entry. Layer
// dimensions on MSP430-class devices fit in 16 bits.
const indexEntryBytes = 2

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// FromDense quantizes the kept blocks of a dense rows×cols float32 matrix
// into BSR form. mask may be nil for a fully dense encoding.
func FromDense(w []float32, rows, cols int, mask *nn.BlockMask, bm, bk int) (*Matrix, error) {
	if len(w) < rows*cols {
		return nil, fmt.Errorf("sparse: weight slice %d smaller than %dx%d", len(w), rows, cols)
	}
	if mask != nil && (mask.Rows != rows || mask.Cols != cols || mask.BM != bm || mask.BK != bk) {
		return nil, fmt.Errorf("sparse: mask %dx%d/%dx%d does not match %dx%d/%dx%d",
			mask.Rows, mask.Cols, mask.BM, mask.BK, rows, cols, bm, bk)
	}
	qt := fixed.QuantizeSlice(w[:rows*cols])
	m := &Matrix{Rows: rows, Cols: cols, BM: bm, BK: bk, Shift: qt.Shift}
	brs, bcs := ceilDiv(rows, bm), ceilDiv(cols, bk)
	m.RowPtr = make([]int32, brs+1)
	for br := 0; br < brs; br++ {
		m.RowPtr[br] = int32(len(m.ColIdx))
		for bc := 0; bc < bcs; bc++ {
			if mask != nil && !mask.Keep[br*bcs+bc] {
				continue
			}
			m.ColIdx = append(m.ColIdx, int32(bc))
			base := len(m.Blocks)
			m.Blocks = append(m.Blocks, make([]fixed.Q15, bm*bk)...)
			for r := 0; r < bm; r++ {
				gr := br*bm + r
				if gr >= rows {
					break
				}
				for c := 0; c < bk; c++ {
					gc := bc*bk + c
					if gc >= cols {
						break
					}
					m.Blocks[base+r*bk+c] = qt.Data[gr*cols+gc]
				}
			}
		}
	}
	m.RowPtr[brs] = int32(len(m.ColIdx))
	return m, nil
}

// BlockRows returns the number of block rows.
func (m *Matrix) BlockRows() int { return ceilDiv(m.Rows, m.BM) }

// BlockCols returns the number of block columns.
func (m *Matrix) BlockCols() int { return ceilDiv(m.Cols, m.BK) }

// NNZBlocks returns the number of stored (nonzero) blocks.
func (m *Matrix) NNZBlocks() int { return len(m.ColIdx) }

// Density returns the fraction of blocks stored.
//
//iprune:allow-float reporting ratio, not device numerics
func (m *Matrix) Density() float64 {
	total := m.BlockRows() * m.BlockCols()
	if total == 0 {
		return 0
	}
	return float64(m.NNZBlocks()) / float64(total)
}

// SizeBytes reports the NVM footprint: stored blocks at 2 bytes per
// value plus the two index arrays at their on-device width.
func (m *Matrix) SizeBytes() int {
	return 2*len(m.Blocks) + indexEntryBytes*len(m.ColIdx) + indexEntryBytes*len(m.RowPtr)
}

// IndexBytes reports just the indexing-structure overhead.
func (m *Matrix) IndexBytes() int {
	return indexEntryBytes*len(m.ColIdx) + indexEntryBytes*len(m.RowPtr)
}

// Block returns the values of stored block slot s (BM*BK values) and its
// block coordinates.
func (m *Matrix) Block(s int) (vals []fixed.Q15, br, bc int) {
	if s < 0 || s >= m.NNZBlocks() {
		panic(fmt.Sprintf("sparse: block slot %d out of range [0,%d)", s, m.NNZBlocks()))
	}
	// Binary-search-free scan is fine: BlockRows is small on these models,
	// and the engine iterates slots in order anyway.
	br = 0
	for int(m.RowPtr[br+1]) <= s {
		br++
	}
	return m.Blocks[s*m.BM*m.BK : (s+1)*m.BM*m.BK], br, int(m.ColIdx[s])
}

// ToDense reconstructs the dense float32 matrix (pruned blocks are zero).
//
//iprune:allow-float dequantization boundary: exports BSR weights back to trainer floats
func (m *Matrix) ToDense() []float32 {
	out := make([]float32, m.Rows*m.Cols)
	scale := float32(1)
	for i := 0; i < m.Shift; i++ {
		scale *= 2
	}
	for s := 0; s < m.NNZBlocks(); s++ {
		vals, br, bc := m.Block(s)
		for r := 0; r < m.BM; r++ {
			gr := br*m.BM + r
			if gr >= m.Rows {
				break
			}
			for c := 0; c < m.BK; c++ {
				gc := bc*m.BK + c
				if gc >= m.Cols {
					break
				}
				out[gr*m.Cols+gc] = float32(vals[r*m.BK+c].Float()) * scale
			}
		}
	}
	return out
}

// MulVec computes y = W·x in fixed point for an FC layer stored in BSR
// (x has Cols entries at shift xShift; y gets Rows entries). The returned
// shift is Shift+xShift, i.e. products are narrowed back to Q15 with the
// combined scale folded out. Used by the functional engine and tests.
//
//iprune:hotpath
//iprune:allow-budget row and block counts are model geometry; the FC op built on this is priced against the buffer dynamically by CostSim
func (m *Matrix) MulVec(x []fixed.Q15) []int64 {
	if len(x) < m.Cols {
		panic(fmt.Sprintf("sparse: MulVec input %d < cols %d", len(x), m.Cols))
	}
	acc := make([]int64, m.Rows)
	for s := 0; s < m.NNZBlocks(); s++ {
		vals, br, bc := m.Block(s)
		for r := 0; r < m.BM; r++ {
			gr := br*m.BM + r
			if gr >= m.Rows {
				break
			}
			var a int64
			for c := 0; c < m.BK; c++ {
				gc := bc*m.BK + c
				if gc >= m.Cols {
					break
				}
				a += int64(vals[r*m.BK+c]) * int64(x[gc])
			}
			acc[gr] += a
		}
	}
	return acc
}
