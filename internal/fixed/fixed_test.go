package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 0.5, -0.5, 0.25, -0.99, 0.999, 1.0 / 3.0}
	for _, f := range cases {
		q := FromFloat(f)
		got := q.Float()
		if math.Abs(got-f) > 1.0/(1<<FracBits) {
			t.Errorf("round trip %v -> %v: error too large", f, got)
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if FromFloat(2.0) != One {
		t.Errorf("FromFloat(2.0) = %d, want %d", FromFloat(2.0), One)
	}
	if FromFloat(-2.0) != MinVal {
		t.Errorf("FromFloat(-2.0) = %d, want %d", FromFloat(-2.0), MinVal)
	}
	if FromFloat(math.NaN()) != 0 {
		t.Errorf("FromFloat(NaN) = %d, want 0", FromFloat(math.NaN()))
	}
}

func TestAddSaturates(t *testing.T) {
	if Add(Q15(One), Q15(One)) != One {
		t.Error("positive add should saturate at One")
	}
	if Add(Q15(MinVal), Q15(MinVal)) != MinVal {
		t.Error("negative add should saturate at MinVal")
	}
	if Add(FromFloat(0.25), FromFloat(0.5)) != FromFloat(0.75) {
		t.Error("0.25+0.5 != 0.75")
	}
}

func TestSub(t *testing.T) {
	if Sub(FromFloat(0.5), FromFloat(0.25)) != FromFloat(0.25) {
		t.Error("0.5-0.25 != 0.25")
	}
	if Sub(Q15(MinVal), Q15(One)) != MinVal {
		t.Error("sub should saturate at MinVal")
	}
}

func TestMul(t *testing.T) {
	got := Mul(FromFloat(0.5), FromFloat(0.5)).Float()
	if math.Abs(got-0.25) > 1e-4 {
		t.Errorf("0.5*0.5 = %v, want 0.25", got)
	}
	got = Mul(FromFloat(-0.5), FromFloat(0.5)).Float()
	if math.Abs(got+0.25) > 1e-4 {
		t.Errorf("-0.5*0.5 = %v, want -0.25", got)
	}
	// -1 * -1 must saturate to just below +1, not wrap.
	if Mul(Q15(MinVal), Q15(MinVal)) != One {
		t.Error("(-1)*(-1) should saturate at One")
	}
}

func TestMulPropertyNoWrap(t *testing.T) {
	f := func(a, b int16) bool {
		p := Mul(Q15(a), Q15(b)).Float()
		exact := Q15(a).Float() * Q15(b).Float()
		return math.Abs(p-exact) <= 1.0/(1<<FracBits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddCommutativeProperty(t *testing.T) {
	f := func(a, b int16) bool {
		return Add(Q15(a), Q15(b)) == Add(Q15(b), Q15(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotQ15(t *testing.T) {
	a := []Q15{FromFloat(0.5), FromFloat(0.25), FromFloat(-0.5)}
	b := []Q15{FromFloat(0.5), FromFloat(0.5), FromFloat(0.25)}
	got := DotQ15(a, b).Float()
	want := 0.5*0.5 + 0.25*0.5 - 0.5*0.25
	if math.Abs(got-want) > 1e-4 {
		t.Errorf("dot = %v, want %v", got, want)
	}
}

func TestDotQ15MismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	DotQ15(make([]Q15, 2), make([]Q15, 3))
}

func TestQuantizeSliceShift(t *testing.T) {
	src := []float32{3.5, -2.0, 0.5}
	qt := QuantizeSlice(src)
	if qt.Shift != 2 {
		t.Errorf("shift = %d, want 2 (max |3.5| needs /4)", qt.Shift)
	}
	back := qt.Dequantize()
	for i := range src {
		if math.Abs(float64(back[i]-src[i])) > 4.0/(1<<FracBits) {
			t.Errorf("dequantize[%d] = %v, want ~%v", i, back[i], src[i])
		}
	}
}

func TestQuantizeSliceInRange(t *testing.T) {
	src := []float32{0.1, -0.9, 0.999}
	qt := QuantizeSlice(src)
	if qt.Shift != 0 {
		t.Errorf("shift = %d, want 0 for in-range data", qt.Shift)
	}
	if qt.SizeBytes() != 6 {
		t.Errorf("SizeBytes = %d, want 6", qt.SizeBytes())
	}
}

func TestQuantizeRoundTripProperty(t *testing.T) {
	f := func(raw []float32) bool {
		// Clamp the fuzz input into a sane magnitude window; quantization
		// is only specified for finite values.
		src := make([]float32, len(raw))
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 0
			}
			if v > 100 {
				v = 100
			}
			if v < -100 {
				v = -100
			}
			src[i] = v
		}
		qt := QuantizeSlice(src)
		back := qt.Dequantize()
		tol := math.Pow(2, float64(qt.Shift)) / (1 << FracBits)
		for i := range src {
			if math.Abs(float64(back[i]-src[i])) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNarrowAccShift(t *testing.T) {
	// 0.5 * 0.5 accumulated once, with shift 1 applied -> 0.125.
	acc := MACAcc(0, FromFloat(0.5), FromFloat(0.5))
	got := NarrowAcc(acc, 1).Result().Float()
	if math.Abs(got-0.125) > 1e-4 {
		t.Errorf("narrow with shift = %v, want 0.125", got)
	}
}
