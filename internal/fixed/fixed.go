// Package fixed implements the 16-bit fixed-point arithmetic used when
// deploying pruned models on the simulated MSP430-class device.
//
// The paper quantizes model parameters from 32-bit floating point to a
// 16-bit fixed-point representation for on-device inference (Section IV-A).
// We implement the common Q1.15 layout (one sign bit, fifteen fractional
// bits, values in [-1, 1)) plus per-tensor power-of-two scaling, which is
// how the TI DSP library and the LEA coprocessor operate on fractional
// data: values outside [-1, 1) are stored pre-divided by 2^shift and the
// shift is folded back after accumulation.
package fixed

import (
	"fmt"
	"math"
)

// FracBits is the number of fractional bits in the Q1.15 format.
const FracBits = 15

// One is the Q1.15 encoding of the largest representable value just
// below +1.0.
const One = 1<<FracBits - 1 // 0x7FFF

// MinVal is the Q1.15 encoding of -1.0.
const MinVal = -1 << FracBits // -0x8000

// Q15 is a 16-bit fixed-point value with 15 fractional bits.
type Q15 int16

// FromFloat converts a float to Q1.15 with saturation and
// round-to-nearest. NaN converts to zero.
//
//iprune:allow-float quantization boundary: converts trainer floats into Q1.15
func FromFloat(f float64) Q15 {
	if math.IsNaN(f) {
		return 0
	}
	v := math.Round(f * (1 << FracBits))
	if v > One {
		return Q15(One)
	}
	if v < MinVal {
		return Q15(MinVal)
	}
	return Q15(v)
}

// Float converts a Q1.15 value back to float64.
//
//iprune:allow-float dequantization boundary for calibration and reporting
func (q Q15) Float() float64 {
	return float64(q) / (1 << FracBits)
}

// Add returns a+b with saturation.
func Add(a, b Q15) Q15 {
	s := int32(a) + int32(b)
	return sat32(s)
}

// Sub returns a-b with saturation.
func Sub(a, b Q15) Q15 {
	s := int32(a) - int32(b)
	return sat32(s)
}

// Mul returns the Q1.15 product of a and b with rounding and saturation.
// The intermediate product has 30 fractional bits; we add the rounding
// constant before shifting back to 15.
func Mul(a, b Q15) Q15 {
	p := int64(a) * int64(b)
	p += 1 << (FracBits - 1) // round half up
	return sat32(int32(p >> FracBits))
}

// MACAcc multiplies a and b and adds the full-precision product into a
// 32-bit accumulator, mirroring how the LEA keeps partial sums in a wide
// register before writing the narrowed result back. The accumulator holds
// values with 30 fractional bits.
func MACAcc(acc int64, a, b Q15) int64 {
	return acc + int64(a)*int64(b)
}

// NarrowAcc converts a 30-fractional-bit accumulator back to Q1.15 with
// rounding and saturation, applying an additional right shift (used to
// undo per-tensor scaling).
func NarrowAcc(acc int64, shift uint) int64r {
	return int64r{acc, shift}
}

// int64r is a tiny helper carrying the accumulator and shift so Result can
// round exactly once.
type int64r struct {
	acc   int64
	shift uint
}

// Result performs the rounding shift and saturation.
func (r int64r) Result() Q15 {
	total := FracBits + r.shift
	v := r.acc
	if total > 0 {
		v += 1 << (total - 1)
		v >>= total
	}
	if v > One {
		return Q15(One)
	}
	if v < MinVal {
		return Q15(MinVal)
	}
	return Q15(v)
}

func sat32(s int32) Q15 {
	if s > One {
		return Q15(One)
	}
	if s < MinVal {
		return Q15(MinVal)
	}
	return Q15(s)
}

// DotQ15 computes the saturating Q1.15 dot product of two equal-length
// vectors using a wide accumulator, the primitive the LEA vector-MAC
// command implements.
//
//iprune:hotpath
//iprune:allow-budget vector length is a tile dimension the planner sizes to the VM buffer; CostSim prices the resulting op against the power-cycle budget dynamically
func DotQ15(a, b []Q15) Q15 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("fixed: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var acc int64
	for i := range a {
		acc += int64(a[i]) * int64(b[i])
	}
	return int64r{acc, 0}.Result()
}

// Tensor is a quantized tensor: Q1.15 data plus a power-of-two scale.
// Real value = Data[i] * 2^Shift / 2^15.
type Tensor struct {
	Data  []Q15
	Shift int // power-of-two pre-division applied before quantization
}

// QuantizeSlice converts a float32 slice into a Q15 tensor, choosing the
// smallest power-of-two shift that brings every value into [-1, 1).
//
//iprune:allow-float quantization boundary: deploy-time conversion of trained weights
func QuantizeSlice(src []float32) Tensor {
	maxAbs := 0.0
	for _, v := range src {
		a := math.Abs(float64(v))
		if a > maxAbs {
			maxAbs = a
		}
	}
	shift := 0
	for maxAbs >= 1.0 {
		maxAbs /= 2
		shift++
	}
	scale := math.Pow(2, -float64(shift))
	out := Tensor{Data: make([]Q15, len(src)), Shift: shift}
	for i, v := range src {
		out.Data[i] = FromFloat(float64(v) * scale)
	}
	return out
}

// Dequantize returns the float32 values represented by the tensor.
//
//iprune:allow-float dequantization boundary for fake-quant evaluation
func (t Tensor) Dequantize() []float32 {
	out := make([]float32, len(t.Data))
	scale := math.Pow(2, float64(t.Shift))
	for i, q := range t.Data {
		out[i] = float32(q.Float() * scale)
	}
	return out
}

// SizeBytes reports the storage footprint of the quantized payload
// (2 bytes per element), excluding any sparse indexing structures.
func (t Tensor) SizeBytes() int { return 2 * len(t.Data) }
