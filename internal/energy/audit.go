// Budget audit: the dynamic half of the static-vs-measured energy
// argument. The regionbudget analyzer statically bounds every
// preserve-to-preserve region against the power-cycle buffer
// (Model.BufferJ); AuditTrace checks a recorded run's *measured*
// per-region and per-power-cycle energy against the same number, so a
// bound the analyzer proved and a draw the simulator measured can be
// cross-examined on one table. A region whose measured spend exceeds
// the static bound is a soundness violation (the analyzer under-priced
// something the run actually did); a maximum spend far below the bound
// is a precision note (the bound is real but loose).
package energy

import (
	"encoding/json"
	"fmt"
	"io"

	"iprune/internal/obs"
)

// auditTol absorbs float accumulation error in energy comparisons.
const auditTol = 1e-12

// AuditReport is the outcome of auditing one recorded run.
type AuditReport struct {
	BudgetJ float64 // the static bound: usable joules of one buffer charge

	Regions        int     // measured atomic regions (op commits, recoveries, preserves, failed attempts)
	MaxRegionJ     float64 // largest single-region draw
	MaxRegionOp    int64   // its op ordinal (-1 when none)
	MaxRegionLayer int     // its layer (-1 when none)

	Cycles    int     // completed power cycles in the trace
	MaxCycleJ float64 // largest per-cycle draw

	// StaticFindings is the number of regionbudget findings in an
	// iprunelint -json report cross-checked alongside the trace (-1 when
	// no report was given). A clean repo has 0: the static analyzer and
	// the measured run then agree that every region fits the budget.
	StaticFindings int

	// Violations are soundness failures: measured spend above the
	// static bound. An empty list means the audit passed.
	Violations []string
	// Notes are informational precision observations (bounds that held
	// with large slack).
	Notes []string
}

// SlackRatio is MaxRegionJ / BudgetJ: 1.0 means the hottest measured
// region exactly fills the static budget, small values mean the static
// bound is sound but loose for this workload.
func (r *AuditReport) SlackRatio() float64 {
	if r.BudgetJ <= 0 {
		return 0
	}
	return r.MaxRegionJ / r.BudgetJ
}

// AuditTrace audits a recorded event stream against the model's
// power-cycle budget.
//
// Region check (soundness): every atomic region the run measured — an
// op commit's draw, a recovery's draw, a standalone preservation write,
// or a failed attempt's lost draw — must fit one buffer charge; this is
// the dynamic mirror of the regionbudget analyzer's claim and of the
// cost simulator's ErrOpExceedsBuffer condition.
//
// Cycle check (accounting): a completed power cycle cannot draw more
// than one full buffer charge, plus what the harvester delivered while
// the device was on (harvestW*(1+jitter)*OnTime), plus one region's
// overshoot — the draw that *causes* a failure discovers the buffer is
// empty only at its end, so the cycle's ledger legitimately dips below
// zero by at most the largest single region. Energy is conserved, so a
// cycle above that line means the trace's accounting is broken. Pass
// harvestW = 0 for a continuous supply (the cycle check then
// degenerates to "the single cycle may draw anything" — continuous
// runs complete in one cycle fed by the wall, so only the region check
// binds).
//
//iprune:allow-float analytic audit integrates measured joules against static bounds, not device numerics
func (m Model) AuditTrace(events []obs.Event, harvestW, jitter float64) *AuditReport {
	r := &AuditReport{
		BudgetJ:        m.BufferJ,
		MaxRegionOp:    -1,
		MaxRegionLayer: -1,
		StaticFindings: -1,
	}
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case obs.KindOpCommit, obs.KindRecovery, obs.KindPreserve, obs.KindFailure:
			if ev.Energy <= 0 {
				continue // untraced energy (step-clock traces) or free event
			}
			r.Regions++
			if ev.Energy > r.MaxRegionJ {
				r.MaxRegionJ = ev.Energy
				r.MaxRegionOp = ev.Op
				r.MaxRegionLayer = ev.Layer
			}
			if ev.Energy > m.BufferJ+auditTol {
				r.Violations = append(r.Violations, fmt.Sprintf(
					"%s (layer %d, op %d) drew %s in one region; the static bound is %s per power cycle",
					ev.Kind, ev.Layer, ev.Op, FormatJ(ev.Energy), FormatJ(m.BufferJ)))
			}
		}
	}
	stats := obs.Collect(events)
	for i := range stats.Cycles {
		c := &stats.Cycles[i]
		r.Cycles++
		if c.Energy > r.MaxCycleJ {
			r.MaxCycleJ = c.Energy
		}
		limit := m.BufferJ + harvestW*(1+jitter)*c.OnTime + r.MaxRegionJ
		if harvestW > 0 && c.Energy > limit+auditTol {
			r.Violations = append(r.Violations, fmt.Sprintf(
				"power cycle %d drew %s but one charge plus harvest plus one region's overshoot supplies at most %s",
				i, FormatJ(c.Energy), FormatJ(limit)))
		}
	}
	if r.Regions > 0 && len(r.Violations) == 0 {
		switch ratio := r.SlackRatio(); {
		case ratio < 0.01:
			r.Notes = append(r.Notes, fmt.Sprintf(
				"static bound is loose here: hottest measured region used %.2g%% of the %s budget",
				100*ratio, FormatJ(m.BufferJ)))
		case ratio > 0.5:
			r.Notes = append(r.Notes, fmt.Sprintf(
				"hottest measured region used %.0f%% of the %s budget; schedule is near the intermittence limit",
				100*ratio, FormatJ(m.BufferJ)))
		}
	}
	return r
}

// lintFinding mirrors the JSON shape cmd/iprunelint emits with -json.
type lintFinding struct {
	Analyzer string `json:"analyzer"`
}

// CountRegionFindings reads an `iprunelint -json` report and returns
// how many of its findings came from the regionbudget analyzer — the
// static side of the audit. The budget audit expects 0 on a clean
// repo.
func CountRegionFindings(r io.Reader) (int, error) {
	var findings []lintFinding
	dec := json.NewDecoder(r)
	if err := dec.Decode(&findings); err != nil {
		return 0, fmt.Errorf("energy: parse lint report: %w", err)
	}
	n := 0
	for _, f := range findings {
		if f.Analyzer == "regionbudget" {
			n++
		}
	}
	return n, nil
}

// WriteReport renders the audit for a terminal: the bound, the measured
// maxima, the static cross-check, and every violation and note.
func (r *AuditReport) WriteReport(w io.Writer) error {
	status := "PASS"
	if len(r.Violations) > 0 || r.StaticFindings > 0 {
		status = "FAIL"
	}
	_, err := fmt.Fprintf(w, "budget audit: %s\n  static bound      %s per power cycle\n  measured regions  %d (max %s",
		status, FormatJ(r.BudgetJ), r.Regions, FormatJ(r.MaxRegionJ))
	if err != nil {
		return err
	}
	if r.MaxRegionOp >= 0 || r.MaxRegionLayer >= 0 {
		if _, err := fmt.Fprintf(w, " at layer %d op %d", r.MaxRegionLayer, r.MaxRegionOp); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, ", %.3g%% of bound)\n  power cycles      %d (max draw %s)\n",
		100*r.SlackRatio(), r.Cycles, FormatJ(r.MaxCycleJ)); err != nil {
		return err
	}
	if r.StaticFindings >= 0 {
		if _, err := fmt.Fprintf(w, "  static findings   %d regionbudget finding(s) in lint report\n", r.StaticFindings); err != nil {
			return err
		}
	}
	for _, v := range r.Violations {
		if _, err := fmt.Fprintf(w, "  VIOLATION: %s\n", v); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Failed reports whether the audit found soundness violations or the
// cross-checked static report carried regionbudget findings.
func (r *AuditReport) Failed() bool {
	return len(r.Violations) > 0 || r.StaticFindings > 0
}
