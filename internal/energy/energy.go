// Package energy is the single source of truth for pricing work in
// joules. Both the hawaii cost simulator (dynamic pricing of scheduled
// accelerator ops) and the regionbudget static analyzer (worst-case
// pricing of preserve-to-preserve source regions) draw their per-op
// cost tables from here, so the two views of "what does this work
// cost" cannot drift apart: the simulator's panic threshold and the
// analyzer's static budget are the same number, read from the same
// table. Divergence between the two was previously possible because
// the cost arithmetic lived inline in hawaii.CostSim; it is now a
// compile error (there is one copy) and a test failure
// (TestOpCostMatchesEnergyModel in internal/hawaii).
//
// The Model also defines the default region budget: the usable energy
// of one power cycle of the paper's harvesting buffer. The central
// intermittence invariant — every atomic progress region completes
// within one buffer charge — is checked dynamically by the cost sim
// (hawaii.ErrOpExceedsBuffer) and statically by the regionbudget
// analyzer against this same quantity.
package energy

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"iprune/internal/device"
	"iprune/internal/power"
)

// Model prices work against a device profile and the harvesting
// buffer that bounds how much of it one power cycle can afford.
type Model struct {
	Dev device.Profile
	// BufferJ is the usable energy of one power cycle: the budget an
	// atomic progress region must fit in.
	BufferJ float64
}

// Default returns the paper's platform: the MSP430FR5994 profile and
// the 100 µF / 2.8 V / 2.4 V capacitor buffer.
func Default() Model {
	return Model{
		Dev:     device.MSP430FR5994(),
		BufferJ: power.DefaultBuffer().UsableEnergy(),
	}
}

// CPUOpJ is the energy of one CPU-side scalar operation, priced as one
// core cycle of base power. The static analyzer uses it to bound the
// arithmetic between NVM transactions; it is deliberately the cheapest
// unit in the table — regions are dominated by NVM traffic and MACs,
// and the paper's ratios depend on that ordering.
func (m Model) CPUOpJ() float64 {
	return m.Dev.BasePower * m.Dev.MACTime
}

// MACJ prices macs multiply-accumulates on the accelerator.
func (m Model) MACJ(macs int64) float64 {
	return m.Dev.ComputeEnergy(macs)
}

// NVMReadJ prices one read transaction of n bytes, folding in the base
// power drawn over the transfer's elapsed time (the simulator charges
// base power against wall-clock; a static bound must fold it into the
// per-transaction price).
func (m Model) NVMReadJ(n int64) float64 {
	return m.Dev.TransferEnergyOf(n, false) + m.Dev.BasePower*m.Dev.TransferTime(n, false)
}

// NVMWriteJ prices one write transaction of n bytes, base power
// included.
func (m Model) NVMWriteJ(n int64) float64 {
	return m.Dev.TransferEnergyOf(n, true) + m.Dev.BasePower*m.Dev.TransferTime(n, true)
}

// OpCost prices one accelerator op: readBytes stream in, the
// accelerator runs macs MACs while writeBytes stream out. Overlapped
// ops (intermittent mode's pipelined preservation) expose
// max(compute, write); serialized ones (continuous mode, task-level
// preservation) the sum. This is the pricing core of
// hawaii.CostSim.opCost.
//
//iprune:allow-float analytic cost model integrates seconds and joules, not device numerics
func (m Model) OpCost(macs, readBytes, writeBytes int64, overlapped bool) (t, e float64) {
	d := &m.Dev
	readT := d.TransferTime(readBytes, false)
	compT := d.ComputeTime(macs)
	var writeT float64
	if writeBytes > 0 {
		writeT = d.TransferTime(writeBytes, true)
	}
	exposed := compT
	if overlapped {
		if writeT > exposed {
			exposed = writeT
		}
	} else {
		exposed = compT + writeT
	}
	t = d.OpOverheadTime + readT + exposed
	e = d.BasePower*t + d.ComputeEnergy(macs) + d.TransferEnergyOf(readBytes, false)
	if writeBytes > 0 {
		e += d.TransferEnergyOf(writeBytes, true)
	}
	return t, e
}

// RecoveryCost prices progress recovery after a failure: reboot, the
// progress-indicator read of idxBytes, and the refetch of the
// interrupted op's tile data. This is the pricing core of
// hawaii.CostSim.recoveryCost.
//
//iprune:allow-float analytic cost model integrates seconds and joules, not device numerics
func (m Model) RecoveryCost(idxBytes, refetchBytes int64) (t, e float64) {
	d := &m.Dev
	t = d.RebootTime + d.TransferTime(idxBytes, false) + d.TransferTime(refetchBytes, false)
	e = d.RebootEnergy + d.BasePower*t + d.TransferEnergyOf(idxBytes, false) + d.TransferEnergyOf(refetchBytes, false)
	return t, e
}

// Budget is a declared per-function region budget: exactly one of the
// two dimensions is set.
type Budget struct {
	Joules float64 // > 0 when the budget is energy-dimensioned
	Ops    int64   // > 0 when the budget counts abstract CPU ops
}

// String renders the budget the way ParseBudget accepts it.
func (b Budget) String() string {
	if b.Ops > 0 {
		return fmt.Sprintf("%dops", b.Ops)
	}
	return FormatJ(b.Joules)
}

// ParseBudget parses the //iprune:budget directive argument: either an
// abstract op count ("20000ops") or a quantity of joules with an SI
// suffix ("104uJ", "1.5mJ", "2e-5J").
//
//iprune:allow-float budgets are joules, parsed once per directive, never device numerics
func ParseBudget(s string) (Budget, error) {
	s = strings.TrimSpace(s)
	if rest, ok := strings.CutSuffix(s, "ops"); ok {
		n, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil || n <= 0 {
			return Budget{}, fmt.Errorf("energy: bad op budget %q (want e.g. \"20000ops\")", s)
		}
		return Budget{Ops: n}, nil
	}
	scale := 1.0
	num := s
	for _, suf := range []struct {
		text  string
		scale float64
	}{{"nJ", 1e-9}, {"uJ", 1e-6}, {"mJ", 1e-3}, {"J", 1}} {
		if rest, ok := strings.CutSuffix(s, suf.text); ok {
			scale, num = suf.scale, strings.TrimSpace(rest)
			break
		}
	}
	if num == s {
		return Budget{}, fmt.Errorf("energy: budget %q needs a unit (nJ|uJ|mJ|J|ops)", s)
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return Budget{}, fmt.Errorf("energy: bad energy budget %q", s)
	}
	return Budget{Joules: v * scale}, nil
}

// FormatJ renders an energy in the largest SI unit that keeps the
// mantissa >= 1, with three significant digits — deterministic, so
// analyzer diagnostics and cache entries stay byte-identical across
// runs.
//
//iprune:allow-float diagnostic formatting of joule quantities
func FormatJ(j float64) string {
	switch {
	case j >= 1 || j == 0:
		return fmt.Sprintf("%.3gJ", j)
	case j >= 1e-3:
		return fmt.Sprintf("%.3gmJ", j*1e3)
	case j >= 1e-6:
		return fmt.Sprintf("%.3guJ", j*1e6)
	default:
		return fmt.Sprintf("%.3gnJ", j*1e9)
	}
}
