package energy

import (
	"strings"
	"testing"

	"iprune/internal/obs"
)

// auditEvents builds one power cycle of op commits with the given
// per-op energies, stamped at unit intervals.
func auditEvents(energies ...float64) []obs.Event {
	evs := []obs.Event{{Kind: obs.KindPowerOn, Time: 0, Layer: -1, Op: -1}}
	t := 0.0
	for i, e := range energies {
		evs = append(evs, obs.Event{Kind: obs.KindOpCommit, Time: t, Dur: 1e-3, Layer: 0, Op: int64(i), Energy: e})
		t += 1e-3
	}
	return append(evs, obs.Event{Kind: obs.KindPowerOff, Time: t, Layer: -1, Op: -1})
}

func TestAuditTracePass(t *testing.T) {
	m := Default()
	r := m.AuditTrace(auditEvents(m.BufferJ/4, 0.6*m.BufferJ), 4e-3, 0.15)
	if r.Failed() || len(r.Violations) != 0 {
		t.Fatalf("clean trace failed: %v", r.Violations)
	}
	if r.Regions != 2 || r.Cycles != 1 {
		t.Errorf("regions=%d cycles=%d, want 2/1", r.Regions, r.Cycles)
	}
	if r.MaxRegionJ != 0.6*m.BufferJ || r.MaxRegionOp != 1 || r.MaxRegionLayer != 0 {
		t.Errorf("max region %g at layer %d op %d", r.MaxRegionJ, r.MaxRegionLayer, r.MaxRegionOp)
	}
	// Near-limit schedule (>50% of the bound) earns a precision note.
	if len(r.Notes) != 1 || !strings.Contains(r.Notes[0], "intermittence limit") {
		t.Errorf("notes = %v", r.Notes)
	}
	// StaticFindings defaults to "no report given".
	if r.StaticFindings != -1 {
		t.Errorf("StaticFindings = %d, want -1", r.StaticFindings)
	}
}

func TestAuditTraceLooseBoundNote(t *testing.T) {
	m := Default()
	r := m.AuditTrace(auditEvents(m.BufferJ/1000), 4e-3, 0)
	if r.Failed() {
		t.Fatal("loose bound must pass")
	}
	if len(r.Notes) != 1 || !strings.Contains(r.Notes[0], "loose") {
		t.Errorf("notes = %v", r.Notes)
	}
}

func TestAuditTraceRegionViolation(t *testing.T) {
	m := Default()
	r := m.AuditTrace(auditEvents(2*m.BufferJ), 4e-3, 0.15)
	if !r.Failed() || len(r.Violations) == 0 {
		t.Fatal("oversized region must fail the audit")
	}
	if !strings.Contains(r.Violations[0], "static bound") {
		t.Errorf("violation = %q", r.Violations[0])
	}
}

func TestAuditTraceCycleViolation(t *testing.T) {
	m := Default()
	// Three regions, each individually inside the bound, but the cycle
	// total exceeds one charge + harvest + one region's overshoot.
	e := 0.8 * m.BufferJ
	r := m.AuditTrace(auditEvents(e, e, e), 4e-3, 0)
	found := false
	for _, v := range r.Violations {
		if strings.Contains(v, "power cycle") {
			found = true
		}
	}
	if !found {
		t.Fatalf("cycle over-draw not flagged: %v", r.Violations)
	}
	// The same trace under a continuous supply (harvestW = 0) only runs
	// the region check: the wall feeds the single cycle.
	if rc := m.AuditTrace(auditEvents(e, e, e), 0, 0); rc.Failed() {
		t.Errorf("continuous-supply cycle check must not bind: %v", rc.Violations)
	}
}

func TestAuditStepTraceHasNoRegions(t *testing.T) {
	// Step-clock traces carry no energy: the audit sees zero regions and
	// passes vacuously instead of inventing violations.
	m := Default()
	r := m.AuditTrace(auditEvents(0, 0), 4e-3, 0.15)
	if r.Regions != 0 || r.Failed() {
		t.Errorf("unpriced trace: regions=%d violations=%v", r.Regions, r.Violations)
	}
}

func TestCountRegionFindings(t *testing.T) {
	in := `[{"analyzer":"regionbudget","msg":"a"},{"analyzer":"parsafe"},{"analyzer":"regionbudget"}]`
	n, err := CountRegionFindings(strings.NewReader(in))
	if err != nil || n != 2 {
		t.Fatalf("CountRegionFindings = %d, %v; want 2", n, err)
	}
	if n, err := CountRegionFindings(strings.NewReader("[]")); err != nil || n != 0 {
		t.Errorf("empty report = %d, %v", n, err)
	}
	if _, err := CountRegionFindings(strings.NewReader("not json")); err == nil {
		t.Error("malformed report must error")
	}
}

func TestAuditWriteReport(t *testing.T) {
	m := Default()
	r := m.AuditTrace(auditEvents(m.BufferJ/10), 4e-3, 0.15)
	r.StaticFindings = 0
	var b strings.Builder
	if err := r.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"budget audit: PASS", "static bound", "measured regions", "power cycles", "0 regionbudget"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// A cross-checked lint report with regionbudget findings fails the
	// audit even when the measured side is clean.
	r.StaticFindings = 3
	if !r.Failed() {
		t.Error("static findings must fail the audit")
	}
	b.Reset()
	if err := r.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "budget audit: FAIL") {
		t.Errorf("report not FAIL:\n%s", b.String())
	}
}
