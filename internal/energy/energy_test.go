package energy

import (
	"math"
	"testing"

	"iprune/internal/power"
)

func TestDefaultBuffer(t *testing.T) {
	m := Default()
	want := power.DefaultBuffer().UsableEnergy()
	if m.BufferJ != want {
		t.Fatalf("BufferJ = %g, want %g", m.BufferJ, want)
	}
	// The paper's buffer: ½·100µF·(2.8²−2.4²) = 104 µJ.
	if math.Abs(m.BufferJ-104e-6) > 1e-12 {
		t.Fatalf("BufferJ = %g, want 104 µJ", m.BufferJ)
	}
	if m.CPUOpJ() <= 0 {
		t.Fatalf("CPUOpJ = %g, want > 0", m.CPUOpJ())
	}
}

func TestOpCostShape(t *testing.T) {
	m := Default()
	tOv, eOv := m.OpCost(1000, 512, 256, true)
	tSer, eSer := m.OpCost(1000, 512, 256, false)
	if tOv <= 0 || eOv <= 0 {
		t.Fatalf("overlapped op cost not positive: t=%g e=%g", tOv, eOv)
	}
	// Serialized preservation exposes compute + write; overlap hides the
	// smaller of the two — so serialized is never cheaper.
	if tSer < tOv || eSer < eOv {
		t.Fatalf("serialized (t=%g e=%g) cheaper than overlapped (t=%g e=%g)", tSer, eSer, tOv, eOv)
	}
	// More work costs more.
	t2, e2 := m.OpCost(2000, 1024, 512, true)
	if t2 <= tOv || e2 <= eOv {
		t.Fatalf("doubled op not more expensive: t %g→%g, e %g→%g", tOv, t2, eOv, e2)
	}
}

func TestRecoveryCostIncludesReboot(t *testing.T) {
	m := Default()
	rt, re := m.RecoveryCost(4, 1024)
	if rt < m.Dev.RebootTime {
		t.Fatalf("recovery time %g below reboot time %g", rt, m.Dev.RebootTime)
	}
	if re < m.Dev.RebootEnergy {
		t.Fatalf("recovery energy %g below reboot energy %g", re, m.Dev.RebootEnergy)
	}
}

func TestParseBudget(t *testing.T) {
	cases := []struct {
		in   string
		want Budget
		ok   bool
	}{
		{"20000ops", Budget{Ops: 20000}, true},
		{" 5 ops", Budget{Ops: 5}, true},
		{"104uJ", Budget{Joules: 104e-6}, true},
		{"1.5mJ", Budget{Joules: 1.5e-3}, true},
		{"250nJ", Budget{Joules: 250e-9}, true},
		{"2e-5J", Budget{Joules: 2e-5}, true},
		{"104", Budget{}, false},  // unit required
		{"-3uJ", Budget{}, false}, // budgets are positive
		{"0ops", Budget{}, false},
		{"NaNJ", Budget{}, false},
		{"", Budget{}, false},
	}
	for _, c := range cases {
		got, err := ParseBudget(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseBudget(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if got.Ops != c.want.Ops || math.Abs(got.Joules-c.want.Joules) > 1e-18 {
			t.Errorf("ParseBudget(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestBudgetRoundTrip(t *testing.T) {
	for _, s := range []string{"20000ops", "104uJ", "1.5mJ"} {
		b, err := ParseBudget(s)
		if err != nil {
			t.Fatalf("ParseBudget(%q): %v", s, err)
		}
		b2, err := ParseBudget(b.String())
		if err != nil {
			t.Fatalf("reparse ParseBudget(%q): %v", b.String(), err)
		}
		if b2 != b {
			t.Fatalf("round trip %q → %+v → %q → %+v", s, b, b.String(), b2)
		}
	}
}

func TestFormatJ(t *testing.T) {
	cases := []struct {
		j    float64
		want string
	}{
		{104e-6, "104uJ"},
		{1.5e-3, "1.5mJ"},
		{2.5, "2.5J"},
		{250e-9, "250nJ"},
		{0, "0J"},
	}
	for _, c := range cases {
		if got := FormatJ(c.j); got != c.want {
			t.Errorf("FormatJ(%g) = %q, want %q", c.j, got, c.want)
		}
	}
}
