// Package core implements the paper's contribution: intermittent-aware
// neural network pruning (iPrune, Section III), alongside the
// energy-aware comparison framework (ePrune) and ablation criteria.
//
// The framework follows the estimate–prune–retrain principle with
// iterative pruning. Each iteration runs the three-step strategy of
// Figure 4:
//
//  1. network level — pick the overall pruning ratio Γ from per-layer
//     sensitivity ranks (guideline 1);
//  2. layer level — allocate per-layer ratios γᵢ with simulated
//     annealing, minimizing the criterion subject to Σγᵢkᵢ = ΓK
//     (guideline 2);
//  3. block level — remove the lowest-RMS weight blocks of each layer,
//     one accelerator operation's weights at a time (guideline 3);
//
// then fine-tunes and applies the ε-recoverable stopping rule with a
// second chance (Section III-A).
package core

import (
	"iprune/internal/device"
	"iprune/internal/nn"
	"iprune/internal/tile"
)

// Criterion estimates how much each layer contributes to the quantity a
// pruning framework wants to reduce. Higher score → prune more there.
type Criterion interface {
	Name() string
	// LayerScores returns one positive score per prunable layer under the
	// network's current masks.
	LayerScores(net *nn.Network, specs []tile.LayerSpec, cfg tile.Config, dev *device.Profile) []float64
}

// AccOutputs is iPrune's criterion (Section III-B): the number of
// accelerator outputs a layer produces, which governs both progress
// preservation traffic and, through NVM write energy, the power-failure
// frequency of intermittent inference.
type AccOutputs struct{}

// Name implements Criterion.
func (AccOutputs) Name() string { return "iPrune" }

// LayerScores implements Criterion.
func (AccOutputs) LayerScores(net *nn.Network, specs []tile.LayerSpec, cfg tile.Config, _ *device.Profile) []float64 {
	jobs := tile.LayerJobs(net, specs, cfg)
	out := make([]float64, len(jobs))
	for i, j := range jobs {
		out[i] = float64(j)
	}
	return out
}

// Energy is ePrune's criterion (after Yang et al. [18]): the estimated
// energy a layer consumes on a continuously-powered system — accelerator
// MACs plus NVM traffic under the conventional data-reuse flow, priced by
// the device profile's energy model.
type Energy struct{}

// Name implements Criterion.
func (Energy) Name() string { return "ePrune" }

// LayerScores implements Criterion.
func (Energy) LayerScores(net *nn.Network, specs []tile.LayerSpec, cfg tile.Config, dev *device.Profile) []float64 {
	prunables := net.Prunables()
	out := make([]float64, len(specs))
	for i := range specs {
		c := tile.CountLayer(&specs[i], prunables[i].Mask(), tile.Continuous, cfg)
		e := dev.ComputeEnergy(c.MACs) +
			dev.TransferEnergyOf(c.TotalNVMRead(), false) +
			dev.TransferEnergyOf(c.TotalNVMWrite(), true)
		out[i] = e
	}
	return out
}

// MACs is an ablation criterion: computational work only, ignoring where
// outputs go.
type MACs struct{}

// Name implements Criterion.
func (MACs) Name() string { return "macs" }

// LayerScores implements Criterion.
func (MACs) LayerScores(net *nn.Network, specs []tile.LayerSpec, cfg tile.Config, _ *device.Profile) []float64 {
	prunables := net.Prunables()
	out := make([]float64, len(specs))
	for i := range specs {
		c := tile.CountLayer(&specs[i], prunables[i].Mask(), tile.Intermittent, cfg)
		out[i] = float64(c.MACs)
	}
	return out
}

// Uniform is an ablation criterion that treats every layer alike, which
// reduces the allocation step to magnitude-only (RMS) pruning spread
// evenly by weight count.
type Uniform struct{}

// Name implements Criterion.
func (Uniform) Name() string { return "uniform" }

// LayerScores implements Criterion.
func (Uniform) LayerScores(net *nn.Network, specs []tile.LayerSpec, _ tile.Config, _ *device.Profile) []float64 {
	out := make([]float64, len(specs))
	for i := range out {
		out[i] = 1
	}
	return out
}
