package core

import (
	"math"
	"math/rand"
	"sort"

	"iprune/internal/nn"
	"iprune/internal/search"
)

// layerState is what the allocator knows about one prunable layer at the
// start of an iteration.
type layerState struct {
	weights   int       // remaining (unpruned) weight elements kᵢ
	score     float64   // criterion score (e.g. accelerator outputs)
	sens      float64   // normalized sensitivity from the analysis step
	rmsPrefix []float64 // prefix sums of sorted kept-block RMS values
	blockW    []int     // weights of the kept blocks, in the same order
	wPrefix   []int     // prefix sums of blockW
}

// impact returns the estimated accuracy impact of pruning ratio γ of the
// layer's remaining weights: the RMS mass of the removed (lowest-RMS)
// blocks as a fraction of the layer's total RMS mass [20].
func (ls *layerState) impact(gamma float64) float64 {
	nb := len(ls.blockW)
	if nb == 0 || ls.rmsPrefix[nb] == 0 {
		return 0
	}
	return ls.rmsPrefix[ls.blocksFor(gamma)] / ls.rmsPrefix[nb]
}

// blocksFor returns how many lowest-RMS blocks fit within ratio γ (the
// largest count whose cumulative weight stays at or below γ·kᵢ). Floor
// semantics matter: on layers with few, large blocks a small allocated
// ratio must prune nothing rather than round up to half the layer.
func (ls *layerState) blocksFor(gamma float64) int {
	if gamma <= 0 || len(ls.blockW) == 0 {
		return 0
	}
	target := int(gamma * float64(ls.weights))
	// First index whose cumulative weight exceeds the target equals the
	// count of blocks that fit within it.
	k := sort.SearchInts(ls.wPrefix[1:], target+1)
	if k > len(ls.blockW) {
		k = len(ls.blockW)
	}
	return k
}

// newLayerState captures a prunable layer: kept blocks sorted by RMS
// ascending, with weight-count and RMS prefix sums for O(log n) lookups
// during annealing.
func newLayerState(p nn.Prunable, score, sens float64) *layerState {
	mask := p.Mask()
	w, _, _ := p.WeightMatrix()
	type blk struct {
		rms float64
		nw  int
		id  int
	}
	var blocks []blk
	for b, keep := range mask.Keep {
		if !keep {
			continue
		}
		blocks = append(blocks, blk{rms: mask.BlockRMS(w, b), nw: mask.BlockWeights(b), id: b})
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].rms < blocks[j].rms })
	ls := &layerState{weights: mask.KeptWeights(), score: score, sens: sens}
	ls.rmsPrefix = make([]float64, len(blocks)+1)
	ls.wPrefix = make([]int, len(blocks)+1)
	ls.blockW = make([]int, len(blocks))
	for i, b := range blocks {
		ls.rmsPrefix[i+1] = ls.rmsPrefix[i] + b.rms
		ls.wPrefix[i+1] = ls.wPrefix[i] + b.nw
		ls.blockW[i] = b.nw
	}
	return ls
}

// sortedKeptBlocks returns the kept block ids of a layer sorted by RMS
// ascending (the block-selection order of guideline 3).
func sortedKeptBlocks(p nn.Prunable) []int {
	mask := p.Mask()
	w, _, _ := p.WeightMatrix()
	var ids []int
	for b, keep := range mask.Keep {
		if keep {
			ids = append(ids, b)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		return mask.BlockRMS(w, ids[i]) < mask.BlockRMS(w, ids[j])
	})
	return ids
}

// applySensitivity normalizes measured per-layer sensitivities into the
// layer states, flooring each at a fraction of the mean: a probe that
// showed no accuracy drop at ~10% pruning is evidence of local slack, not
// of immunity to arbitrary pruning, so no layer is ever free.
func applySensitivity(layers []*layerState, sens []float64) {
	if len(layers) == 0 {
		return
	}
	mean := 0.0
	for _, s := range sens {
		mean += s
	}
	mean /= float64(len(sens))
	floor := 0.25*mean + 1e-3
	total := 0.0
	floored := make([]float64, len(sens))
	for i, s := range sens {
		floored[i] = math.Max(s, floor)
		total += floored[i]
	}
	for i := range layers {
		layers[i].sens = floored[i] / total
	}
}

// allocProblem is the simulated-annealing search space of guideline 2:
// states are per-layer ratio vectors γ with Σγᵢkᵢ = ΓK held invariant by
// the neighbour move. Energy balances the criterion left after pruning
// against the RMS accuracy impact, weighted by layer sensitivity.
type allocProblem struct {
	layers   []*layerState
	caps     []float64 // per-layer ceiling on γᵢ
	lambda   float64   // accuracy-impact weight
	scoreSum float64
}

func (ap *allocProblem) Energy(state []float64) float64 {
	var remain, impact float64
	for i, ls := range ap.layers {
		remain += ls.score * (1 - state[i])
		// Hyperbolic accuracy penalty: removing a small share of a
		// layer's RMS mass is cheap, removing most of it diverges, so
		// sensitive layers resist near-total pruning regardless of how
		// many criterion points they would yield.
		im := ls.impact(state[i])
		impact += ls.sens * im / (1.05 - im)
	}
	return remain/ap.scoreSum + ap.lambda*impact
}

func (ap *allocProblem) Neighbor(state, out []float64, rng *rand.Rand) {
	copy(out, state)
	if len(out) < 2 {
		return
	}
	a := rng.Intn(len(out))
	b := rng.Intn(len(out) - 1)
	if b >= a {
		b++
	}
	ka, kb := float64(ap.layers[a].weights), float64(ap.layers[b].weights)
	if ka == 0 || kb == 0 {
		return
	}
	// Move pruning mass (in weights) from layer b to layer a, bounded so
	// both ratios stay in [0, cap]: the Σγᵢkᵢ invariant is exact.
	maxUp := (ap.caps[a] - out[a]) * ka
	maxDown := out[b] * kb
	limit := math.Min(maxUp, maxDown)
	if limit <= 0 {
		return
	}
	m := rng.Float64() * limit
	out[a] += m / ka
	out[b] -= m / kb
}

// capFor bounds a layer's per-iteration ratio: never beyond the global
// ceiling, and never so far that the layer loses its last (highest-RMS)
// block — a fully pruned layer severs the network irrecoverably.
func capFor(ls *layerState, gammaCap float64) float64 {
	nb := len(ls.blockW)
	if nb <= 1 || ls.weights == 0 {
		return 0
	}
	most := float64(ls.wPrefix[nb-1]) / float64(ls.weights)
	return math.Min(gammaCap, most)
}

// allocate runs the annealer and returns the per-layer ratios. The
// initial state waterfills the Γ·K weight budget uniformly across layers,
// respecting per-layer caps; if the caps cannot absorb the whole budget,
// the realized overall ratio is lower than Γ (and so is every iterate).
func allocate(layers []*layerState, gamma, gammaCap, lambda float64, cfg search.Config, seed int64) []float64 {
	ap := &allocProblem{layers: layers, lambda: lambda, caps: make([]float64, len(layers))}
	var totalW float64
	for i, ls := range layers {
		ap.scoreSum += ls.score
		ap.caps[i] = capFor(ls, gammaCap)
		totalW += float64(ls.weights)
	}
	if ap.scoreSum == 0 {
		ap.scoreSum = 1
	}
	init := make([]float64, len(layers))
	remaining := gamma * totalW
	for pass := 0; pass < 64 && remaining > 1e-9*totalW; pass++ {
		var openW float64
		for i, ls := range layers {
			if init[i] < ap.caps[i] {
				openW += float64(ls.weights)
			}
		}
		if openW == 0 {
			break
		}
		share := remaining / openW
		progressed := false
		for i, ls := range layers {
			room := ap.caps[i] - init[i]
			if room <= 0 {
				continue
			}
			add := math.Min(share, room)
			if add > 0 {
				init[i] += add
				remaining -= add * float64(ls.weights)
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	best, _ := search.Anneal(ap, init, cfg, seed)
	return best
}
