package core

import (
	"math/rand"
	"testing"

	"iprune/internal/device"
	"iprune/internal/nn"
	"iprune/internal/search"
	"iprune/internal/tensor"
	"iprune/internal/tile"
)

// diverseNet has one convolution with many accelerator outputs but few
// weights, and one FC layer with many weights but almost no outputs —
// the constellation where iPrune and weight-oriented criteria disagree.
func diverseNet(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	n := nn.NewNetwork("diverse", 4)
	n.Add(nn.NewConv2D("conv", tensor.ConvGeom{InC: 2, InH: 12, InW: 12, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, rng))
	n.Add(nn.NewReLU("relu"))
	n.Add(nn.NewMaxPool2D("pool", 8, 12, 12, 2, 2))
	n.Add(nn.NewFlatten("flat"))
	n.Add(nn.NewFC("fc_wide", 8*6*6, 32, rng))
	n.Add(nn.NewReLU("relu2"))
	n.Add(nn.NewFC("fc_out", 32, 4, rng))
	return n
}

func blobData(rng *rand.Rand, n, classes int) []nn.Sample {
	samples := make([]nn.Sample, n)
	for i := range samples {
		label := i % classes
		x := tensor.New(2, 12, 12)
		for j := range x.Data {
			x.Data[j] = float32(rng.NormFloat64()*0.3) + float32(label)*0.4 - 0.6
		}
		samples[i] = nn.Sample{X: x, Label: label}
	}
	return samples
}

func pretrained(t *testing.T, seed int64) (*nn.Network, []nn.Sample, []nn.Sample) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := diverseNet(seed)
	train := blobData(rng, 96, 4)
	val := blobData(rng, 48, 4)
	opt := nn.NewSGD(0.03, 0.9)
	for e := 0; e < 8; e++ {
		nn.TrainEpoch(net, train, opt, 12, rng)
	}
	if acc := nn.Accuracy(net, val); acc < 0.9 {
		t.Fatalf("pretraining failed: acc=%v", acc)
	}
	return net, train, val
}

func quickOpts(seed int64) Options {
	o := DefaultOptions()
	o.MaxIters = 4
	o.SenseSamples = 32
	// The 48-sample validation split quantizes accuracy in ~2% steps, so
	// the paper's ε=1% would stop on single-sample noise; widen it for
	// the unit tests and recover with two epochs.
	o.Epsilon = 0.06
	o.FinetuneEpochs = 2
	o.Anneal = search.Config{Iters: 300, T0: 1, T1: 1e-2}
	o.Seed = seed
	return o
}

func TestPrunerKeepsAccuracyWithinEpsilon(t *testing.T) {
	net, train, val := pretrained(t, 1)
	p := NewPruner(AccOutputs{})
	p.Opt = quickOpts(1)
	res, err := p.Run(net, train, val)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseAccuracy-res.Accuracy > p.Opt.Epsilon+1e-9 {
		t.Errorf("returned model lost %.4f accuracy, > ε=%.4f",
			res.BaseAccuracy-res.Accuracy, p.Opt.Epsilon)
	}
	if res.Iterations == 0 || len(res.History) == 0 {
		t.Error("no pruning iterations ran")
	}
}

func TestPrunerReducesJobsAndWeights(t *testing.T) {
	net, train, val := pretrained(t, 2)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	before := tile.CountNetwork(net, specs, tile.Intermittent, cfg)
	beforeW := net.TotalWeights()

	p := NewPruner(AccOutputs{})
	p.Opt = quickOpts(2)
	res, err := p.Run(net, train, val)
	if err != nil {
		t.Fatal(err)
	}
	outSpecs := tile.SpecsFromNetwork(res.Net, cfg)
	after := tile.CountNetwork(res.Net, outSpecs, tile.Intermittent, cfg)
	if after.Jobs >= before.Jobs {
		t.Errorf("jobs not reduced: %d -> %d", before.Jobs, after.Jobs)
	}
	if res.Net.TotalWeights() >= beforeW {
		t.Errorf("weights not reduced: %d -> %d", beforeW, res.Net.TotalWeights())
	}
}

func TestPrunerDoesNotMutateInput(t *testing.T) {
	net, train, val := pretrained(t, 3)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	wantW := net.TotalWeights()
	p := NewPruner(AccOutputs{})
	p.Opt = quickOpts(3)
	if _, err := p.Run(net, train, val); err != nil {
		t.Fatal(err)
	}
	if net.TotalWeights() != wantW {
		t.Error("Run mutated the input network")
	}
}

func TestPrunerDeterministic(t *testing.T) {
	net, train, val := pretrained(t, 4)
	run := func() *Result {
		p := NewPruner(AccOutputs{})
		p.Opt = quickOpts(7)
		res, err := p.Run(net, train, val)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Iterations != b.Iterations || a.Accuracy != b.Accuracy {
		t.Error("same seed produced different results")
	}
	for i := range a.History {
		if a.History[i].Jobs != b.History[i].Jobs {
			t.Errorf("iteration %d jobs differ: %d vs %d", i, a.History[i].Jobs, b.History[i].Jobs)
		}
	}
}

func TestPrunerHistoryJobsMonotone(t *testing.T) {
	net, train, val := pretrained(t, 5)
	p := NewPruner(AccOutputs{})
	p.Opt = quickOpts(5)
	res, err := p.Run(net, train, val)
	if err != nil {
		t.Fatal(err)
	}
	last := int64(1 << 62)
	for _, st := range res.History {
		if st.Jobs > last {
			t.Errorf("iteration %d increased jobs: %d -> %d", st.Iter, last, st.Jobs)
		}
		last = st.Jobs
	}
}

func TestIPruneFavorsHighOutputLayers(t *testing.T) {
	net, train, val := pretrained(t, 6)
	p := NewPruner(AccOutputs{})
	p.Opt = quickOpts(6)
	res, err := p.Run(net, train, val)
	if err != nil {
		t.Fatal(err)
	}
	// Layer 0 (conv) holds the vast majority of accelerator outputs in
	// diverseNet; iPrune's first-iteration allocation should prune it at
	// least as hard as the weight-heavy FC.
	r := res.History[0].Ratios
	if r[0] < r[1] {
		t.Errorf("iPrune allocated conv=%.3f < fc=%.3f despite conv dominating outputs", r[0], r[1])
	}
}

func TestCriteriaDisagreeOnDiverseNet(t *testing.T) {
	net, _, _ := pretrained(t, 7)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	dev := device.MSP430FR5994()
	jobs := AccOutputs{}.LayerScores(net, specs, cfg, &dev)
	energy := Energy{}.LayerScores(net, specs, cfg, &dev)
	// The conv dominates outputs; relative to that, the FC should matter
	// more under the energy view (weight reads) than under the jobs view.
	jobShare := jobs[1] / (jobs[0] + jobs[1])
	energyShare := energy[1] / (energy[0] + energy[1])
	if energyShare <= jobShare {
		t.Errorf("criteria do not disagree: fc share jobs=%.3f energy=%.3f", jobShare, energyShare)
	}
}

func TestSelectGammaGuideline1(t *testing.T) {
	p := NewPruner(AccOutputs{})
	p.Opt.GammaHat = 0.4
	// Three layers; layer 2 has the most outputs. If it is also the most
	// sensitive (rank 1), Γ = 1·Γ̂/3; if least sensitive (rank 3), Γ = Γ̂.
	scores := []float64{10, 20, 100}
	mostSensitive := []float64{0.0, 0.01, 0.5}
	leastSensitive := []float64{0.5, 0.01, 0.0}
	gHigh := p.selectGamma(scores, leastSensitive)
	gLow := p.selectGamma(scores, mostSensitive)
	if gLow >= gHigh {
		t.Errorf("guideline 1 violated: sensitive-top Γ=%.3f, insensitive-top Γ=%.3f", gLow, gHigh)
	}
	if diff := gHigh - 0.4; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Γ high = %v, want 0.4", gHigh)
	}
	if diff := gLow - 0.4/3; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Γ low = %v, want %v", gLow, 0.4/3)
	}
}

func TestAllocateRespectsBudgetConstraint(t *testing.T) {
	net, _, _ := pretrained(t, 8)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	prunables := net.Prunables()
	layers := make([]*layerState, len(prunables))
	var totalW float64
	for i, pr := range prunables {
		layers[i] = newLayerState(pr, float64(i+1), 0.1)
		totalW += float64(layers[i].weights)
	}
	gamma := 0.3
	ratios := allocate(layers, gamma, 0.85, 1.0, search.Config{Iters: 500, T0: 1, T1: 1e-2}, 1)
	var got float64
	for i, r := range ratios {
		if r < -1e-9 || r > 0.85+1e-9 {
			t.Errorf("ratio %d = %v outside [0, cap]", i, r)
		}
		got += r * float64(layers[i].weights)
	}
	want := gamma * totalW
	if diff := got - want; diff > 1e-6*totalW || diff < -1e-6*totalW {
		t.Errorf("Σγk = %v, want %v (constraint violated)", got, want)
	}
}

func TestLayerStateBlocksFor(t *testing.T) {
	net := diverseNet(9)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	ls := newLayerState(net.Prunables()[0], 1, 0)
	if ls.blocksFor(0) != 0 {
		t.Error("γ=0 must prune no blocks")
	}
	if ls.blocksFor(1.0) != len(ls.blockW) {
		t.Error("γ=1 must prune all blocks")
	}
	half := ls.blocksFor(0.5)
	if half <= 0 || half >= len(ls.blockW) {
		t.Errorf("γ=0.5 pruned %d of %d blocks", half, len(ls.blockW))
	}
	if ls.impact(0) != 0 {
		t.Error("impact(0) must be 0")
	}
	if ls.impact(1.0) != 1.0 {
		t.Error("impact(1) must be 1")
	}
	if ls.impact(0.3) >= ls.impact(0.9) {
		t.Error("impact must grow with γ")
	}
}

func TestSensitivityDetectsImportantLayer(t *testing.T) {
	net, _, val := pretrained(t, 10)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	p := NewPruner(AccOutputs{})
	p.Opt = quickOpts(10)
	p.Opt.SensitivityDelta = 0.5 // aggressive probe for a clear signal
	sens := p.sensitivity(net, val, rand.New(rand.NewSource(1)))
	if len(sens) != 3 {
		t.Fatalf("sensitivities for %d layers, want 3", len(sens))
	}
	for i, s := range sens {
		if s < 0 {
			t.Errorf("negative sensitivity %v at layer %d", s, i)
		}
	}
}

func TestOneShotBlocks(t *testing.T) {
	net := diverseNet(11)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	before := tile.CountNetwork(net, specs, tile.Intermittent, cfg).Jobs
	OneShotBlocks(net, 0.5)
	after := tile.CountNetwork(net, specs, tile.Intermittent, cfg).Jobs
	if after >= before*3/4 {
		t.Errorf("one-shot 50%% pruning only reduced jobs %d -> %d", before, after)
	}
}

func TestFineGrainedZeroDoesNotReduceJobs(t *testing.T) {
	// The paper's guideline-3 argument: element-level sparsity does not
	// remove accelerator operations.
	net := diverseNet(12)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	before := tile.CountNetwork(net, specs, tile.Intermittent, cfg).Jobs
	FineGrainedZero(net, 0.5)
	after := tile.CountNetwork(net, specs, tile.Intermittent, cfg).Jobs
	if after != before {
		t.Errorf("fine-grained zeroing changed jobs %d -> %d", before, after)
	}
	// But it did zero half the weights.
	w, _, _ := net.Prunables()[0].WeightMatrix()
	zeros := 0
	for _, v := range w {
		if v == 0 {
			zeros++
		}
	}
	if zeros < len(w)/3 {
		t.Errorf("only %d/%d weights zeroed", zeros, len(w))
	}
}

func TestRunValidation(t *testing.T) {
	net := diverseNet(13)
	p := NewPruner(AccOutputs{})
	if _, err := p.Run(net, nil, nil); err == nil {
		t.Error("expected error for empty datasets")
	}
}

func TestCriterionNames(t *testing.T) {
	if (AccOutputs{}).Name() != "iPrune" || (Energy{}).Name() != "ePrune" {
		t.Error("criterion names wrong")
	}
	if (MACs{}).Name() != "macs" || (Uniform{}).Name() != "uniform" {
		t.Error("ablation criterion names wrong")
	}
}

func TestPrunerHandlesBranchNetworks(t *testing.T) {
	// Multi-path (fire-module) networks must prune end to end.
	rng := rand.New(rand.NewSource(41))
	net := nn.NewNetwork("fire", 3)
	net.Add(nn.NewConv2D("sq", tensor.ConvGeom{InC: 2, InH: 8, InW: 8, OutC: 6, KH: 1, KW: 1, StrideH: 1, StrideW: 1}, rng))
	net.Add(nn.NewReLU("r0"))
	net.Add(nn.NewBranch("ex",
		[]nn.Layer{nn.NewConv2D("e1", tensor.ConvGeom{InC: 6, InH: 8, InW: 8, OutC: 4, KH: 1, KW: 1, StrideH: 1, StrideW: 1}, rng), nn.NewReLU("r1")},
		[]nn.Layer{nn.NewConv2D("e3", tensor.ConvGeom{InC: 6, InH: 8, InW: 8, OutC: 6, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, rng), nn.NewReLU("r2")},
	))
	net.Add(nn.NewFlatten("fl"))
	net.Add(nn.NewFC("fc", 10*8*8, 3, rng))

	var train, val []nn.Sample
	for i := 0; i < 72; i++ {
		label := i % 3
		x := tensor.New(2, 8, 8)
		for j := range x.Data {
			x.Data[j] = float32(rng.NormFloat64()*0.3) + float32(label)*0.5 - 0.5
		}
		s := nn.Sample{X: x, Label: label}
		if i < 48 {
			train = append(train, s)
		} else {
			val = append(val, s)
		}
	}
	opt := nn.NewSGD(0.03, 0.9)
	for e := 0; e < 8; e++ {
		nn.TrainEpoch(net, train, opt, 8, rng)
	}
	if acc := nn.Accuracy(net, val); acc < 0.85 {
		t.Fatalf("fire net failed to train: %v", acc)
	}

	p := NewPruner(AccOutputs{})
	p.Opt = quickOpts(41)
	res, err := p.Run(net, train, val)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tile.DefaultConfig()
	outSpecs := tile.SpecsFromNetwork(res.Net, cfg)
	before := tile.CountNetwork(func() *nn.Network {
		c := net.Clone()
		tile.InstallMasks(c, tile.SpecsFromNetwork(c, cfg))
		return c
	}(), tile.SpecsFromNetwork(net, cfg), tile.Intermittent, cfg)
	after := tile.CountNetwork(res.Net, outSpecs, tile.Intermittent, cfg)
	if after.Jobs >= before.Jobs {
		t.Errorf("branch pruning did not reduce jobs: %d -> %d", before.Jobs, after.Jobs)
	}
	if res.BaseAccuracy-res.Accuracy > p.Opt.Epsilon+1e-9 {
		t.Errorf("accuracy loss too high: %v -> %v", res.BaseAccuracy, res.Accuracy)
	}
}
