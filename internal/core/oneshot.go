package core

import (
	"math"
	"sort"

	"iprune/internal/nn"
)

// OneShotBlocks prunes the given fraction of every prunable layer's
// weights in one pass at block granularity (lowest RMS first). Used as an
// ablation baseline against the iterative three-step strategy.
func OneShotBlocks(net *nn.Network, ratio float64) {
	for _, p := range net.Prunables() {
		ls := newLayerState(p, 1, 0)
		n := ls.blocksFor(ratio)
		ids := sortedKeptBlocks(p)
		for _, id := range ids[:min(n, len(ids))] {
			p.Mask().Keep[id] = false
		}
		p.ApplyMask()
	}
}

// FineGrainedZero zeroes the given fraction of each layer's individual
// smallest-magnitude weights without touching the block masks — the
// classic fine-grained pruning of Han et al. [6]. It raises sparsity but,
// because the surviving blocks still contain nonzero weights, the
// accelerator-operation schedule (and hence the accelerator-output count)
// is unchanged: the paper's guideline-3 argument for block granularity.
func FineGrainedZero(net *nn.Network, ratio float64) {
	for _, p := range net.Prunables() {
		w, _, _ := p.WeightMatrix()
		idx := make([]int, len(w))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return math.Abs(float64(w[idx[a]])) < math.Abs(float64(w[idx[b]]))
		})
		n := int(ratio * float64(len(w)))
		for _, i := range idx[:n] {
			w[i] = 0
		}
	}
}
