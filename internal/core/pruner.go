package core

import (
	"fmt"
	"math/rand"
	"sort"

	"iprune/internal/device"
	"iprune/internal/nn"
	"iprune/internal/search"
	"iprune/internal/tile"
)

// Options tunes the iterative pruning loop. The defaults follow the
// paper's Section III-D: Γ̂ = 40 %, ε = 1 %, a second chance of two
// over-threshold iterations, RMS block importance, and simulated
// annealing for ratio allocation.
type Options struct {
	Epsilon      float64 // recoverable accuracy-loss threshold ε
	GammaHat     float64 // upper bound Γ̂ on the per-iteration overall ratio
	SecondChance int     // over-threshold iterations tolerated before stopping
	MaxIters     int     // safety cap on iterations
	GammaCap     float64 // ceiling on any single layer's per-iteration ratio

	FinetuneEpochs int
	LR             float64
	LRDecay        float64 // per-epoch LR decay during fine-tuning
	Momentum       float64
	Batch          int

	SensitivityDelta float64 // trial ratio used by the sensitivity analysis
	SenseSamples     int     // validation subset size for sensitivity probes
	Lambda           float64 // accuracy-impact weight in the allocator

	Anneal search.Config
	Seed   int64
	Logf   func(format string, args ...any) // optional progress logger
}

// DefaultOptions returns the paper-default configuration.
func DefaultOptions() Options {
	return Options{
		Epsilon:          0.01,
		GammaHat:         0.40,
		SecondChance:     2,
		MaxIters:         12,
		GammaCap:         0.85,
		FinetuneEpochs:   1,
		LR:               0.01,
		LRDecay:          1.0,
		Momentum:         0.9,
		Batch:            16,
		SensitivityDelta: 0.10,
		SenseSamples:     96,
		Lambda:           2.0,
		Anneal:           search.DefaultConfig(),
		Seed:             1,
	}
}

// IterStats records one pruning iteration for reporting.
type IterStats struct {
	Iter     int
	Gamma    float64   // overall ratio Γ chosen this iteration
	Ratios   []float64 // per-layer ratios γᵢ
	Accuracy float64   // validation accuracy after fine-tuning
	Jobs     int64     // accelerator outputs of the model afterwards
	Weights  int       // remaining weights afterwards
	OverEps  bool      // accuracy drop exceeded ε
}

// Result is the outcome of a pruning run.
type Result struct {
	Net          *nn.Network // most compact model with accuracy recovered
	BaseAccuracy float64     // validation accuracy of the input model
	Accuracy     float64     // validation accuracy of Result.Net
	Iterations   int         // iterations executed
	History      []IterStats
}

// Pruner drives the estimate–prune–retrain loop for a given criterion.
type Pruner struct {
	Crit Criterion
	Opt  Options
	Cfg  tile.Config
	Dev  device.Profile
}

// NewPruner builds a pruner with the default device profile and options.
func NewPruner(crit Criterion) *Pruner {
	return &Pruner{Crit: crit, Opt: DefaultOptions(), Cfg: tile.DefaultConfig(), Dev: device.MSP430FR5994()}
}

func (p *Pruner) logf(format string, args ...any) {
	if p.Opt.Logf != nil {
		p.Opt.Logf(format, args...)
	}
}

// Run prunes the network iteratively. The input network must already be
// trained; its masks are installed (or replaced) to match the accelerator
// block geometry. The input is not modified — the returned Result.Net is
// an independent clone.
func (p *Pruner) Run(net *nn.Network, train, val []nn.Sample) (*Result, error) {
	if len(train) == 0 || len(val) == 0 {
		return nil, fmt.Errorf("core: empty train (%d) or validation (%d) set", len(train), len(val))
	}
	work := net.Clone()
	specs := tile.SpecsFromNetwork(work, p.Cfg)
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: network %q has no prunable layers", net.Name)
	}
	tile.InstallMasks(work, specs)
	work.ApplyMasks()

	rng := rand.New(rand.NewSource(p.Opt.Seed))
	res := &Result{BaseAccuracy: nn.Accuracy(work, val)}
	best := work.Clone()
	res.Accuracy = res.BaseAccuracy
	strikes := 0

	for iter := 1; iter <= p.Opt.MaxIters; iter++ {
		prunables := work.Prunables()
		scores := p.Crit.LayerScores(work, specs, p.Cfg, &p.Dev)

		// Step 0: layer-wise sensitivity analysis.
		sens := p.sensitivity(work, val, rng)

		// Step 1 (guideline 1): overall ratio Γ from sensitivity ranks.
		gamma := p.selectGamma(scores, sens)

		// Step 2 (guideline 2): per-layer ratios via simulated annealing.
		layers := make([]*layerState, len(prunables))
		for i, pr := range prunables {
			layers[i] = newLayerState(pr, scores[i], 0)
		}
		applySensitivity(layers, sens)
		ratios := allocate(layers, gamma, p.Opt.GammaCap, p.Opt.Lambda, p.Opt.Anneal, p.Opt.Seed+int64(iter))

		// Step 3 (guideline 3): block-level pruning by RMS.
		prunedBlocks := 0
		for i, pr := range prunables {
			n := layers[i].blocksFor(ratios[i])
			ids := sortedKeptBlocks(pr)
			// Belt over the allocator's suspenders: a layer always keeps
			// its highest-RMS block.
			n = min(n, len(ids)-1)
			if n <= 0 {
				continue
			}
			for _, id := range ids[:n] {
				pr.Mask().Keep[id] = false
				prunedBlocks++
			}
			pr.ApplyMask()
		}
		if prunedBlocks == 0 {
			p.logf("iter %d: nothing left to prune (Γ=%.3f)", iter, gamma)
			res.Iterations = iter
			break
		}

		// Retrain to recover.
		opt := nn.NewSGD(p.Opt.LR, p.Opt.Momentum)
		for e := 0; e < p.Opt.FinetuneEpochs; e++ {
			nn.TrainEpoch(work, train, opt, p.Opt.Batch, rng)
			if p.Opt.LRDecay > 0 {
				opt.LR *= p.Opt.LRDecay
			}
		}
		acc := nn.Accuracy(work, val)

		st := IterStats{
			Iter:     iter,
			Gamma:    gamma,
			Ratios:   append([]float64(nil), ratios...),
			Accuracy: acc,
			Jobs:     tile.CountNetwork(work, specs, tile.Intermittent, p.Cfg).Jobs,
			Weights:  work.TotalWeights(),
			OverEps:  res.BaseAccuracy-acc > p.Opt.Epsilon,
		}
		res.History = append(res.History, st)
		res.Iterations = iter
		p.logf("iter %d: Γ=%.3f acc=%.4f (base %.4f) jobs=%d weights=%d overEps=%v",
			iter, gamma, acc, res.BaseAccuracy, st.Jobs, st.Weights, st.OverEps)

		if st.OverEps {
			strikes++
			if strikes >= p.Opt.SecondChance {
				break
			}
		} else {
			// Accuracy recovered: this is the most compact acceptable
			// model so far.
			best = work.Clone()
			res.Accuracy = acc
		}
	}
	res.Net = best
	return res, nil
}

// sensitivity measures, per layer, the validation-accuracy drop caused by
// trial-pruning SensitivityDelta of the layer's remaining weights (lowest
// RMS blocks first), with everything else untouched.
func (p *Pruner) sensitivity(net *nn.Network, val []nn.Sample, rng *rand.Rand) []float64 {
	subset := val
	if p.Opt.SenseSamples > 0 && len(val) > p.Opt.SenseSamples {
		subset = make([]nn.Sample, p.Opt.SenseSamples)
		perm := rng.Perm(len(val))
		for i := range subset {
			subset[i] = val[perm[i]]
		}
	}
	base := nn.Accuracy(net, subset)
	prunables := net.Prunables()
	sens := make([]float64, len(prunables))
	for i := range prunables {
		trial := net.Clone()
		tp := trial.Prunables()[i]
		ids := sortedKeptBlocks(tp)
		n := int(float64(len(ids)) * p.Opt.SensitivityDelta)
		if n == 0 && len(ids) > 0 {
			n = 1
		}
		for _, id := range ids[:n] {
			tp.Mask().Keep[id] = false
		}
		tp.ApplyMask()
		drop := base - nn.Accuracy(trial, subset)
		if drop < 0 {
			drop = 0
		}
		sens[i] = drop
	}
	return sens
}

// selectGamma implements guideline 1: rank layers by sensitivity in
// decreasing order, map rank i (1 = most sensitive) to i·Γ̂/n, and select
// the ratio mapped to the layer with the highest criterion score.
func (p *Pruner) selectGamma(scores, sens []float64) float64 {
	n := len(scores)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return sens[order[a]] > sens[order[b]] })
	rank := make([]int, n) // rank[layer] = 1-based sensitivity rank
	for pos, layer := range order {
		rank[layer] = pos + 1
	}
	top := 0
	for i := 1; i < n; i++ {
		if scores[i] > scores[top] {
			top = i
		}
	}
	return float64(rank[top]) * p.Opt.GammaHat / float64(n)
}
