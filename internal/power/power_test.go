package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUsableEnergy(t *testing.T) {
	b := DefaultBuffer()
	want := 0.5 * 100e-6 * (2.8*2.8 - 2.4*2.4) // 104 µJ
	if math.Abs(b.UsableEnergy()-want) > 1e-12 {
		t.Errorf("UsableEnergy = %g, want %g", b.UsableEnergy(), want)
	}
}

func TestContinuousNeverFails(t *testing.T) {
	s := NewSim(DefaultBuffer(), ContinuousPower, 1)
	for i := 0; i < 10000; i++ {
		if s.Consume(1e-3, 1e-3) { // draws far beyond the buffer
			t.Fatal("continuous supply must never fail")
		}
	}
	if s.Failures != 0 {
		t.Errorf("Failures = %d, want 0", s.Failures)
	}
}

func TestHarvestedFailureCadence(t *testing.T) {
	// Deterministic strong power (no jitter): draining 10 mW against
	// 8 mW harvest nets 2 mW, so one 104 µJ buffer lasts 52 ms.
	sup := StrongPower
	sup.Jitter = 0
	s := NewSim(DefaultBuffer(), sup, 1)
	const dt = 1e-3
	const draw = 10e-3 * dt // 10 mW for 1 ms
	steps := 0
	for !s.Consume(draw, dt) {
		steps++
		if steps > 1e6 {
			t.Fatal("never failed")
		}
	}
	elapsed := float64(steps+1) * dt
	if math.Abs(elapsed-0.052) > 0.002 {
		t.Errorf("time to failure = %v s, want ~0.052", elapsed)
	}
	off := s.Recharge()
	want := DefaultBuffer().UsableEnergy() / 8e-3 // 13 ms
	if math.Abs(off-want) > 1e-9 {
		t.Errorf("recharge = %v, want %v", off, want)
	}
}

func TestWeakPowerFailsMoreOften(t *testing.T) {
	run := func(sup Supply) int {
		sup.Jitter = 0
		s := NewSim(DefaultBuffer(), sup, 1)
		for i := 0; i < 20000; i++ {
			if s.Consume(10e-3*1e-3, 1e-3) {
				s.Recharge()
			}
		}
		return s.Failures
	}
	strong := run(StrongPower)
	weak := run(WeakPower)
	if weak <= strong {
		t.Errorf("weak power failures (%d) must exceed strong (%d)", weak, strong)
	}
	if strong == 0 {
		t.Error("strong power should still fail under 10 mW draw")
	}
}

func TestHarvestTopsUpWithoutOverfill(t *testing.T) {
	sup := StrongPower
	sup.Jitter = 0
	s := NewSim(DefaultBuffer(), sup, 1)
	// Draw less than harvest: buffer must stay at (not above) full.
	for i := 0; i < 100; i++ {
		if s.Consume(1e-6, 1e-3) { // 1 mW draw vs 8 mW harvest
			t.Fatal("must not fail when harvest exceeds draw")
		}
	}
	if s.Remaining() > DefaultBuffer().UsableEnergy()+1e-15 {
		t.Errorf("buffer overfilled: %g", s.Remaining())
	}
}

func TestJitterIsSeededDeterministic(t *testing.T) {
	run := func(seed int64) (int, float64) {
		s := NewSim(DefaultBuffer(), WeakPower, seed)
		for i := 0; i < 5000; i++ {
			if s.Consume(12e-3*1e-3, 1e-3) {
				s.Recharge()
			}
		}
		return s.Failures, s.OffTime
	}
	f1, o1 := run(7)
	f2, o2 := run(7)
	if f1 != f2 || o1 != o2 {
		t.Error("same seed must reproduce identical failure sequence")
	}
	f3, _ := run(8)
	if f1 == f3 {
		t.Log("different seeds gave same failure count (possible but unlikely); not fatal")
	}
}

func TestConsumePanicsOnNegative(t *testing.T) {
	s := NewSim(DefaultBuffer(), WeakPower, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Consume(-1, 0)
}

func TestStatsAccumulate(t *testing.T) {
	sup := WeakPower
	sup.Jitter = 0
	s := NewSim(DefaultBuffer(), sup, 1)
	for i := 0; i < 50; i++ {
		if s.Consume(20e-3*1e-3, 1e-3) {
			s.Recharge()
		}
	}
	if s.OnTime <= 0 || s.EnergyUsed <= 0 {
		t.Error("stats not accumulating")
	}
	if s.Failures > 0 && s.OffTime <= 0 {
		t.Error("failures without off time")
	}
}

func TestRechargeRestoresFullBufferProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := NewSim(DefaultBuffer(), WeakPower, seed)
		for i := 0; i < 200; i++ {
			if s.Consume(15e-3*1e-3, 1e-3) {
				s.Recharge()
				if math.Abs(s.Remaining()-DefaultBuffer().UsableEnergy()) > 1e-15 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
