package power

import (
	"math"
	"testing"
)

func TestTraceValidate(t *testing.T) {
	good := Trace{Times: []float64{0, 1, 2}, Powers: []float64{0, 5e-3, 1e-3}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Trace{
		{Times: []float64{0}, Powers: []float64{1}},
		{Times: []float64{1, 2}, Powers: []float64{1, 1}},
		{Times: []float64{0, 0}, Powers: []float64{1, 1}},
		{Times: []float64{0, 1}, Powers: []float64{1, -1}},
		{Times: []float64{0, 1}, Powers: []float64{1}},
	}
	for i, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestTraceInterpolation(t *testing.T) {
	tr := Trace{Times: []float64{0, 10, 20}, Powers: []float64{0, 10e-3, 0}}
	if got := tr.At(5); math.Abs(got-5e-3) > 1e-12 {
		t.Errorf("At(5) = %v, want 5mW", got)
	}
	if got := tr.At(-1); got != 0 {
		t.Errorf("At(-1) = %v, want clamp to 0", got)
	}
	if got := tr.At(100); got != 0 {
		t.Errorf("At(100) = %v, want clamp to end", got)
	}
	if got := tr.At(10); math.Abs(got-10e-3) > 1e-12 {
		t.Errorf("At(10) = %v, want peak", got)
	}
}

func TestSolarDayShape(t *testing.T) {
	tr := SolarDay(10e-3, 3600, 3, 7)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dawn and dusk are dark; midday is bright.
	if tr.Powers[0] > 1e-9 || tr.Powers[len(tr.Powers)-1] > 1e-9 {
		t.Error("solar day should start and end at ~0")
	}
	peak := 0.0
	for _, p := range tr.Powers {
		if p > peak {
			peak = p
		}
		if p > 10e-3+1e-12 {
			t.Fatalf("power %v exceeds peak", p)
		}
	}
	if peak < 4e-3 {
		t.Errorf("peak %v too low for a 10mW day", peak)
	}
}

func TestSolarDayDeterministic(t *testing.T) {
	a := SolarDay(5e-3, 100, 2, 3)
	b := SolarDay(5e-3, 100, 2, 3)
	for i := range a.Powers {
		if a.Powers[i] != b.Powers[i] {
			t.Fatal("SolarDay not deterministic")
		}
	}
}

func TestTraceSimFollowsProfile(t *testing.T) {
	// Strong power early, near-darkness later: recharge after the bright
	// phase must take far longer than during it.
	tr := Trace{Times: []float64{0, 0.05, 0.06, 10}, Powers: []float64{20e-3, 20e-3, 0.1e-3, 0.1e-3}}
	s, err := NewTraceSim(DefaultBuffer(), tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	drainUntilFail := func() {
		for i := 0; i < 1e6; i++ {
			if s.Consume(30e-3*1e-3, 1e-3) {
				return
			}
		}
		t.Fatal("never failed")
	}
	drainUntilFail()
	offBright := s.Recharge()
	// Skip ahead into the dark phase.
	for s.OnTime+s.OffTime < 0.06 {
		drainUntilFail()
		s.Recharge()
	}
	drainUntilFail()
	offDark := s.Recharge()
	if offDark < 10*offBright {
		t.Errorf("dark recharge %v not much longer than bright %v", offDark, offBright)
	}
}

func TestTraceSimRejectsBadTrace(t *testing.T) {
	if _, err := NewTraceSim(DefaultBuffer(), Trace{}, 1); err == nil {
		t.Error("expected error for empty trace")
	}
}

func TestTraceZeroPowerDoesNotDivideByZero(t *testing.T) {
	tr := Trace{Times: []float64{0, 1}, Powers: []float64{0, 0}}
	s, err := NewTraceSim(DefaultBuffer(), tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if s.Consume(1e-6, 1e-4) {
			off := s.Recharge()
			if math.IsInf(off, 0) || math.IsNaN(off) {
				t.Fatal("recharge diverged at zero power")
			}
			return
		}
	}
	t.Fatal("never failed under zero harvest")
}
