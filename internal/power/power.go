// Package power simulates the energy-harvesting supply of the paper's
// Table I: a programmable source feeding a TI BQ25504 boost converter
// that buffers energy in a 100 µF capacitor; the device is switched on
// when the capacitor reaches 2.8 V and off when it falls to 2.4 V.
//
// Under continuous power (1.65 W) the device never browns out; under
// strong (8 mW) and weak (4 mW) harvest power the buffered energy runs
// out repeatedly, producing the "repeated yet unpredictable power
// failures" the paper evaluates against. Unpredictability is modelled as
// seeded per-cycle jitter on the harvested power, so runs are reproducible
// yet failure points do not align with op boundaries.
package power

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"iprune/internal/obs"
)

// Buffer is the capacitor energy buffer behind the boost converter.
type Buffer struct {
	CapF float64 // capacitance in farads
	VOn  float64 // switch-on voltage
	VOff float64 // switch-off voltage
}

// DefaultBuffer returns the paper's 100 µF, 2.8 V / 2.4 V configuration.
func DefaultBuffer() Buffer {
	return Buffer{CapF: 100e-6, VOn: 2.8, VOff: 2.4}
}

// UsableEnergy returns the energy available per power cycle:
// ½·C·(VOn²−VOff²).
func (b Buffer) UsableEnergy() float64 {
	return 0.5 * b.CapF * (b.VOn*b.VOn - b.VOff*b.VOff)
}

// Supply describes a harvest-power operating point.
type Supply struct {
	Name       string
	Power      float64 // average harvested power, watts
	Continuous bool    // true: mains-powered, the buffer never depletes
	// Jitter is the relative per-cycle variation of harvested power
	// (0 = deterministic). The paper's ambient sources are "inherently
	// weak and unstable".
	Jitter float64
}

// The paper's three operating points.
var (
	// ContinuousPower is 1.65 W (3.3 V × 0.5 A): the device runs without
	// interruption, though HAWAII⁺ still preserves progress.
	ContinuousPower = Supply{Name: "continuous", Power: 1.65, Continuous: true}
	// StrongPower is 8 mW (1 V × 8 mA).
	StrongPower = Supply{Name: "strong", Power: 8e-3, Jitter: 0.15}
	// WeakPower is 4 mW (1 V × 4 mA).
	WeakPower = Supply{Name: "weak", Power: 4e-3, Jitter: 0.15}
)

// ParseSupply parses a supply name as the CLIs accept it: one of the
// paper's named operating points (continuous | strong | weak,
// case-insensitive) or a custom harvest power like "6mW", which gets
// the paper-default 15% per-cycle jitter.
func ParseSupply(name string) (Supply, error) {
	switch strings.ToLower(name) {
	case "continuous":
		return ContinuousPower, nil
	case "strong":
		return StrongPower, nil
	case "weak":
		return WeakPower, nil
	}
	if s, ok := strings.CutSuffix(strings.ToLower(name), "mw"); ok {
		mw, err := strconv.ParseFloat(s, 64)
		if err != nil || mw <= 0 || math.IsInf(mw, 0) || math.IsNaN(mw) {
			return Supply{}, fmt.Errorf("power: bad supply %q", name)
		}
		return Supply{Name: name, Power: mw * 1e-3, Jitter: 0.15}, nil
	}
	return Supply{}, fmt.Errorf("power: unknown supply %q (continuous|strong|weak|<N>mW)", name)
}

// Sim tracks the buffer charge across one execution. It is advanced by
// Consume calls (energy drawn over elapsed time) and reports when the
// buffer depletes.
type Sim struct {
	Buffer Buffer
	Supply Supply

	// Trace receives the power-cycle events (power-on/off, failure,
	// charge interval) timed on the simulator's own clock
	// (OnTime+OffTime). The cost simulator attaches its tracer here when
	// the field is nil; nil disables emission entirely.
	Trace obs.Tracer

	rng       *rand.Rand
	remaining float64 // energy left in this power cycle
	cyclePow  float64 // harvest power for the current cycle (jittered)
	trace     *Trace  // optional time-varying profile
	started   bool    // initial power-on event emitted

	// Stats: the energy-accounting counters behind every latency and
	// energy number the paper reports. They are NVM-disciplined — only
	// Consume and Recharge (the //iprune:nvm-api functions) may store to
	// them, so no code path can spend energy without accounting for it.

	//iprune:nvm
	Failures int
	//iprune:nvm
	OnTime float64 // seconds spent powered
	//iprune:nvm
	OffTime float64 // seconds spent recharging
	//iprune:nvm
	EnergyUsed float64 // joules drawn by the device
	// Overshoot is the cumulative energy drawn past depletion: the draw
	// that browns the device out discovers the empty buffer only at its
	// end, so its tail is spent from below VOff. Accounting it here keeps
	// Remaining clamped at zero (telemetry never sees negative buffer
	// energy) without losing the deficit from the ledger.
	//
	//iprune:nvm
	Overshoot float64
}

// NewSim constructs a simulator; seed controls the jitter sequence.
func NewSim(b Buffer, s Supply, seed int64) *Sim {
	sim := &Sim{Buffer: b, Supply: s, rng: rand.New(rand.NewSource(seed))}
	sim.remaining = b.UsableEnergy()
	sim.cyclePow = sim.drawCyclePower()
	return sim
}

func (s *Sim) drawCyclePower() float64 {
	p := s.Supply.Power
	if s.trace != nil {
		p = math.Max(s.trace.At(s.OnTime+s.OffTime), traceFloor)
	}
	if s.Supply.Jitter > 0 {
		p *= 1 + s.Supply.Jitter*(2*s.rng.Float64()-1)
	}
	return p
}

// Consume draws energy over dt seconds of device activity. It returns
// true if the buffer depleted during this draw — a power failure — in
// which case the caller must treat the activity as lost and call
// Recharge before resuming. Harvested power arriving during the activity
// offsets the draw.
//
// The energy ledger (OnTime, EnergyUsed, Failures) models NVM-resident
// counters updated atomically at each draw, so the read-modify-write
// pattern inside is the audited commit itself.
//
//iprune:nvm-api
//iprune:preserve
func (s *Sim) Consume(energy, dt float64) bool {
	if energy < 0 || dt < 0 {
		panic(fmt.Sprintf("power: negative consume (%g J, %g s)", energy, dt))
	}
	t0 := s.OnTime + s.OffTime
	if !s.started && s.Trace != nil && s.Trace.Enabled() {
		s.started = true
		s.Trace.Emit(obs.Event{Kind: obs.KindPowerOn, Time: t0, Layer: -1, Op: -1})
	}
	s.OnTime += dt
	s.EnergyUsed += energy
	if s.Supply.Continuous {
		return false
	}
	net := energy - s.cyclePow*dt
	if net < 0 {
		// Harvest exceeded draw: the converter tops the buffer back up
		// (it cannot exceed the switch-on level).
		s.remaining -= net
		if full := s.Buffer.UsableEnergy(); s.remaining > full {
			s.remaining = full
		}
		return false
	}
	s.remaining -= net
	if s.remaining <= 0 {
		s.Overshoot -= s.remaining // record the deficit, then clamp
		s.remaining = 0
		s.Failures++
		if s.Trace != nil && s.Trace.Enabled() {
			s.Trace.Emit(obs.Event{Kind: obs.KindFailure, Time: t0 + dt, Layer: -1, Op: -1, Energy: energy})
			s.Trace.Emit(obs.Event{Kind: obs.KindPowerOff, Time: t0 + dt, Layer: -1, Op: -1})
		}
		return true
	}
	return false
}

// Recharge models the off period after a failure: the device is dark
// while the harvester refills the buffer from VOff to VOn. It returns the
// off-time spent and rolls the jitter for the next cycle.
//
// Like Consume, the OffTime ledger update is the atomic commit.
//
//iprune:nvm-api
//iprune:preserve
func (s *Sim) Recharge() float64 {
	if s.Supply.Continuous {
		return 0
	}
	t0 := s.OnTime + s.OffTime
	var off float64
	if s.trace != nil {
		// Trace-driven supplies harvest at the profile's power *during*
		// the dark interval, not at the power sampled when the cycle
		// began: integrate the piecewise-linear trace forward from t0
		// until it has refilled the buffer. Dividing by the stale
		// cycle-start power instead mis-prices any recharge that spans a
		// profile edge — a trace ramping up from ~0 after a cloud would
		// charge the whole refill at the floor power and report hours of
		// dark time the profile does not contain.
		off = s.trace.rechargeTime(t0, s.Buffer.UsableEnergy())
	} else {
		off = s.Buffer.UsableEnergy() / s.cyclePow
	}
	s.OffTime += off
	s.remaining = s.Buffer.UsableEnergy()
	s.cyclePow = s.drawCyclePower()
	if s.Trace != nil && s.Trace.Enabled() {
		s.Trace.Emit(obs.Event{Kind: obs.KindCharge, Time: t0, Dur: off, Layer: -1, Op: -1})
		s.Trace.Emit(obs.Event{Kind: obs.KindPowerOn, Time: t0 + off, Layer: -1, Op: -1})
	}
	return off
}

// Remaining exposes the current buffer energy (for tests and telemetry).
// It is clamped at zero: between a failure-causing Consume and the next
// Recharge the buffer reads empty, with the deficit accounted in
// Overshoot rather than as negative energy.
func (s *Sim) Remaining() float64 { return s.remaining }

// ---------------------------------------------------------------------------
// Trace-driven supplies

// Trace is a time-varying harvest profile: piecewise-linear power samples
// over elapsed wall-clock time, emulating e.g. a solar panel through
// passing clouds. Times must be strictly increasing and start at 0.
type Trace struct {
	Times  []float64 // seconds
	Powers []float64 // watts at each time point
}

// Validate checks the trace invariants.
func (tr *Trace) Validate() error {
	if len(tr.Times) != len(tr.Powers) || len(tr.Times) < 2 {
		return fmt.Errorf("power: trace needs >= 2 aligned samples, got %d/%d", len(tr.Times), len(tr.Powers))
	}
	if tr.Times[0] != 0 {
		return fmt.Errorf("power: trace must start at t=0")
	}
	for i := 1; i < len(tr.Times); i++ {
		if tr.Times[i] <= tr.Times[i-1] {
			return fmt.Errorf("power: trace times not increasing at %d", i)
		}
	}
	for i, p := range tr.Powers {
		if p < 0 {
			return fmt.Errorf("power: negative power at sample %d", i)
		}
	}
	return nil
}

// At returns the interpolated power at time t (clamped to the ends).
func (tr *Trace) At(t float64) float64 {
	if t <= tr.Times[0] {
		return tr.Powers[0]
	}
	last := len(tr.Times) - 1
	if t >= tr.Times[last] {
		return tr.Powers[last]
	}
	// Smallest i with Times[i] >= t; the clamps above guarantee
	// 1 <= i <= last, matching the old linear scan index exactly. At is
	// called once per power cycle and per event-script tick, so a linear
	// scan turns quadratic over long scenario traces.
	i := sort.SearchFloat64s(tr.Times, t)
	t0, t1 := tr.Times[i-1], tr.Times[i]
	p0, p1 := tr.Powers[i-1], tr.Powers[i]
	return p0 + (p1-p0)*(t-t0)/(t1-t0)
}

// rechargeTime returns how long the harvester needs, starting at t0, to
// accumulate need joules from the (floor-clamped) piecewise-linear
// profile. It walks the trace segment by segment, integrating the
// trapezoid under each, and solves the final partial segment exactly.
func (tr *Trace) rechargeTime(t0, need float64) float64 {
	if need <= 0 {
		return 0
	}
	t := t0
	last := len(tr.Times) - 1
	for t < tr.Times[last] {
		pa := math.Max(tr.At(t), traceFloor)
		i := sort.SearchFloat64s(tr.Times, t)
		if tr.Times[i] == t {
			i++ // t sits exactly on a sample: integrate to the next one
		}
		pb := math.Max(tr.Powers[i], traceFloor)
		dt := tr.Times[i] - t
		if seg := 0.5 * (pa + pb) * dt; seg < need {
			need -= seg
			t = tr.Times[i]
			continue
		}
		// need is met inside [t, Times[i]): solve
		// pa·x + ½·slope·x² = need for x. The citardauq form is stable
		// for slope → 0 and the discriminant is ≥ pb² > 0 because the
		// whole segment holds at least need.
		slope := (pb - pa) / dt
		x := 2 * need / (pa + math.Sqrt(math.Max(pa*pa+2*slope*need, 0)))
		return t + x - t0
	}
	// Past the last sample the profile holds its final value (same end
	// clamp as At).
	pa := math.Max(tr.Powers[last], traceFloor)
	return t - t0 + need/pa
}

// SolarDay builds a synthetic cloudy-day trace: a sine arc from dawn to
// dusk with seeded cloud dips, peaking at peak watts over the duration.
func SolarDay(peak, duration float64, clouds int, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	const samples = 96
	tr := Trace{}
	dip := make([]float64, samples+1)
	for c := 0; c < clouds; c++ {
		center := rng.Float64() * float64(samples)
		width := 2 + rng.Float64()*6
		depth := 0.4 + rng.Float64()*0.5
		for i := 0; i <= samples; i++ {
			d := (float64(i) - center) / width
			dip[i] += depth * math.Exp(-0.5*d*d)
		}
	}
	for i := 0; i <= samples; i++ {
		frac := float64(i) / samples
		arc := math.Sin(math.Pi * frac)
		shade := 1 - math.Min(dip[i], 0.95)
		tr.Times = append(tr.Times, frac*duration)
		tr.Powers = append(tr.Powers, peak*arc*arc*shade)
	}
	return tr
}

// NewTraceSim constructs a simulator whose harvest power follows the
// trace as simulated time (on-time plus recharge time) advances.
func NewTraceSim(b Buffer, tr Trace, seed int64) (*Sim, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	s := NewSim(b, Supply{Name: "trace", Power: tr.Powers[0]}, seed)
	s.trace = &tr
	s.cyclePow = math.Max(tr.Powers[0], traceFloor)
	return s, nil
}

// traceFloor avoids division by zero when a trace hits exactly zero
// power: recharge stalls at a very long (but finite) off-time.
const traceFloor = 1e-6
