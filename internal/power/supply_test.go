package power

import (
	"math"
	"testing"

	"iprune/internal/obs"
)

func TestParseSupplyNamed(t *testing.T) {
	cases := []struct {
		in   string
		want Supply
	}{
		{"continuous", ContinuousPower},
		{"CONTINUOUS", ContinuousPower},
		{"strong", StrongPower},
		{"Strong", StrongPower},
		{"weak", WeakPower},
		{"WeAk", WeakPower},
	}
	for _, c := range cases {
		got, err := ParseSupply(c.in)
		if err != nil {
			t.Errorf("ParseSupply(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSupply(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseSupplyCustomMilliwatts(t *testing.T) {
	cases := []struct {
		in    string
		watts float64
	}{
		{"6mW", 6e-3},
		{"6mw", 6e-3},
		{"6MW", 6e-3}, // the suffix is case-insensitive; there is no megawatt harvester
		{"0.5mW", 0.5e-3},
		{"12.75mW", 12.75e-3},
	}
	for _, c := range cases {
		got, err := ParseSupply(c.in)
		if err != nil {
			t.Errorf("ParseSupply(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got.Power-c.watts) > 1e-15 {
			t.Errorf("ParseSupply(%q).Power = %g, want %g", c.in, got.Power, c.watts)
		}
		if got.Continuous {
			t.Errorf("ParseSupply(%q) marked continuous", c.in)
		}
		if got.Jitter != 0.15 {
			t.Errorf("ParseSupply(%q).Jitter = %g, want paper-default 0.15", c.in, got.Jitter)
		}
		if got.Name != c.in {
			t.Errorf("ParseSupply(%q).Name = %q", c.in, got.Name)
		}
	}
}

func TestParseSupplyMalformed(t *testing.T) {
	for _, in := range []string{
		"",        // empty
		"solar",   // unknown name
		"6",       // no unit
		"6w",      // wrong unit
		"mW",      // no number
		"xmW",     // not a number
		"0mW",     // zero power cannot recharge
		"-3mW",    // negative power
		"InfmW",   // non-finite
		"-InfmW",  // non-finite
		"NaNmW",   // non-finite
		"6 mW",    // interior space
		"6mWatts", // trailing junk
	} {
		if got, err := ParseSupply(in); err == nil {
			t.Errorf("ParseSupply(%q) = %+v, want error", in, got)
		}
	}
}

// TestSimTraceEvents verifies the power simulator's event emission: a
// depleting draw produces failure + power-off, and the recharge that
// follows produces a charge span and the next power-on, all stamped on
// the simulator's own OnTime+OffTime clock.
func TestSimTraceEvents(t *testing.T) {
	rec := obs.NewRecorder()
	sim := NewSim(DefaultBuffer(), Supply{Name: "det", Power: 4e-3}, 1)
	sim.Trace = rec
	full := sim.Buffer.UsableEnergy()
	if failed := sim.Consume(full/2, 1e-6); failed {
		t.Fatal("half-buffer draw must not fail")
	}
	if failed := sim.Consume(full, 1e-6); !failed {
		t.Fatal("over-buffer draw must fail")
	}
	off := sim.Recharge()
	if off <= 0 {
		t.Fatal("recharge must take time")
	}
	evs := rec.Events()
	var kinds []obs.Kind
	for _, ev := range evs {
		kinds = append(kinds, ev.Kind)
	}
	want := []obs.Kind{obs.KindPowerOn, obs.KindFailure, obs.KindPowerOff, obs.KindCharge, obs.KindPowerOn}
	if len(kinds) != len(want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event kinds = %v, want %v", kinds, want)
		}
	}
	// The charge span's duration is the off-time, and the next power-on
	// lands at its end.
	charge, on := evs[3], evs[4]
	if math.Abs(charge.Dur-off) > 1e-12 {
		t.Errorf("charge dur = %g, want %g", charge.Dur, off)
	}
	if math.Abs(on.Time-(charge.Time+charge.Dur)) > 1e-12 {
		t.Errorf("power-on at %g, want end of charge %g", on.Time, charge.Time+charge.Dur)
	}
}

// TestSimNilTraceIsFree pins the disabled-path contract: with no tracer
// attached, Consume and Recharge never construct events.
func TestSimNilTraceIsFree(t *testing.T) {
	sim := NewSim(DefaultBuffer(), StrongPower, 1)
	allocs := testing.AllocsPerRun(100, func() {
		sim.Consume(1e-9, 1e-6)
	})
	if allocs != 0 {
		t.Errorf("untraced Consume allocates %.1f per call, want 0", allocs)
	}
}
