package power

import (
	"math"
	"math/rand"
	"testing"
)

// TestTraceRechargeIntegratesDarkInterval pins the trace-driven recharge
// fix: a profile that goes bright → hard dark → slow ramp-up. The buggy
// recharge divided the refill energy by the power sampled at cycle
// *start*; a cycle beginning inside the dark stretch then priced the
// whole refill at traceFloor and reported ~1e8 s of off-time the profile
// does not contain. Integrating the trace keeps the dark time bounded by
// the ramp actually present.
func TestTraceRechargeIntegratesDarkInterval(t *testing.T) {
	tr := Trace{
		Times:  []float64{0, 0.004, 0.0041, 0.1, 10},
		Powers: []float64{20e-3, 20e-3, 0, 0, 20e-3},
	}
	sim, err := NewTraceSim(DefaultBuffer(), tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Draw 50 µJ per 1 ms step (50 mW): a net ~30 µJ/step deficit while
	// bright, so the first failure lands at ~4 ms and the first recharge
	// spans the profile's dark interval.
	for sim.Failures < 2 {
		if sim.Consume(50e-6, 1e-3) {
			sim.Recharge()
		}
		if sim.OnTime > 1 {
			t.Fatalf("no second failure within 1 s of on-time (failures=%d)", sim.Failures)
		}
	}
	// The ramp reaches 20 mW by t=10 s, so two refills fit in well under
	// 5 s of dark time; the stale-power recharge yields ~104 s.
	if sim.OffTime >= 5 {
		t.Fatalf("OffTime = %g s; recharge priced dark interval at stale cycle-start power", sim.OffTime)
	}
}

// TestTraceRechargeConstantMatchesSupply pins that on a flat trace the
// integrating recharge degenerates to the closed form energy/power used
// by plain supplies.
func TestTraceRechargeConstantMatchesSupply(t *testing.T) {
	const p = 4e-3
	tr := Trace{Times: []float64{0, 100}, Powers: []float64{p, p}}
	sim, err := NewTraceSim(DefaultBuffer(), tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultBuffer().UsableEnergy() / p
	for i := 0; i < 3; i++ {
		for !sim.Consume(20e-6, 1e-3) {
		}
		if off := sim.Recharge(); math.Abs(off-want) > 1e-12 {
			t.Fatalf("recharge %d = %g s, want %g", i, off, want)
		}
	}
}

// TestRemainingClampedAtDepletion pins the Remaining() clamp: the draw
// that browns the device out must leave the buffer reading empty — not
// negative — with the deficit accounted in Overshoot.
func TestRemainingClampedAtDepletion(t *testing.T) {
	sup := WeakPower
	sup.Jitter = 0
	sim := NewSim(DefaultBuffer(), sup, 1)
	e := DefaultBuffer().UsableEnergy()

	if !sim.Consume(10*e, 1e-3) {
		t.Fatal("10x-buffer draw did not fail")
	}
	if got := sim.Remaining(); got != 0 {
		t.Fatalf("Remaining() = %g after depletion, want 0", got)
	}
	// The draw net of harvest was 10e − p·dt; the buffer held e, so the
	// overshoot is the rest.
	want := 9*e - sup.Power*1e-3
	if math.Abs(sim.Overshoot-want) > 1e-12 {
		t.Fatalf("Overshoot = %g, want %g", sim.Overshoot, want)
	}
	if sim.Recharge(); sim.Remaining() != e {
		t.Fatalf("Remaining() = %g after recharge, want %g", sim.Remaining(), e)
	}
}

// atLinear is the pre-fix linear-scan interpolation, kept verbatim so the
// binary-search At can be pinned against it.
func atLinear(tr *Trace, t float64) float64 {
	if t <= tr.Times[0] {
		return tr.Powers[0]
	}
	last := len(tr.Times) - 1
	if t >= tr.Times[last] {
		return tr.Powers[last]
	}
	i := 1
	for tr.Times[i] < t {
		i++
	}
	t0, t1 := tr.Times[i-1], tr.Times[i]
	p0, p1 := tr.Powers[i-1], tr.Powers[i]
	return p0 + (p1-p0)*(t-t0)/(t1-t0)
}

// TestAtBinarySearchMatchesLinearScan pins exact (bit-for-bit) agreement
// between the binary-search At and the old linear scan: both resolve the
// same segment index, so the interpolation arithmetic is identical.
func TestAtBinarySearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	traces := []Trace{
		{Times: []float64{0, 1}, Powers: []float64{1e-3, 2e-3}},
		SolarDay(10e-3, 3600, 3, 1),
		SolarDay(8e-3, 120, 5, 42),
	}
	for n := 0; n < 4; n++ {
		tr := Trace{Times: []float64{0}, Powers: []float64{rng.Float64()}}
		for len(tr.Times) < 3+rng.Intn(40) {
			tr.Times = append(tr.Times, tr.Times[len(tr.Times)-1]+1e-4+rng.Float64())
			tr.Powers = append(tr.Powers, rng.Float64()*1e-2)
		}
		traces = append(traces, tr)
	}
	for ti := range traces {
		tr := &traces[ti]
		if err := tr.Validate(); err != nil {
			t.Fatalf("trace %d: %v", ti, err)
		}
		last := len(tr.Times) - 1
		var ts []float64
		ts = append(ts, -1, 0, tr.Times[last]+1)
		for i, s := range tr.Times {
			ts = append(ts, s)
			if i > 0 {
				ts = append(ts, 0.5*(tr.Times[i-1]+s))
			}
		}
		for i := 0; i < 50; i++ {
			ts = append(ts, rng.Float64()*tr.Times[last]*1.1)
		}
		for _, q := range ts {
			if got, want := tr.At(q), atLinear(tr, q); got != want {
				t.Fatalf("trace %d: At(%g) = %g, linear scan says %g", ti, q, got, want)
			}
		}
	}
}
