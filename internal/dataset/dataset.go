// Package dataset generates the synthetic stand-ins for the paper's three
// TinyML evaluation datasets (Table II): CIFAR-10 images for SQN,
// tri-axial accelerometer windows for HAR, and speech-command MFCC maps
// for CKS.
//
// The real datasets cannot ship with an offline reproduction, and pruning
// research does not need them verbatim — it needs trainable tasks whose
// accuracy degrades when a network is over-pruned and recovers under
// fine-tuning. Each generator therefore builds seeded class structure
// (smooth image prototypes, class-specific motion spectra, formant
// trajectories) plus calibrated noise and per-sample distortions, tuned
// so the unpruned models land near the paper's accuracies (76.3 / 92.5 /
// 87.5 %). Everything is deterministic in the seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"iprune/internal/nn"
	"iprune/internal/tensor"
)

// Dataset is a labelled train/test split with a fixed input shape.
type Dataset struct {
	Name    string
	Classes int
	Shape   []int // input tensor shape (C, H, W)
	Train   []nn.Sample
	Test    []nn.Sample
}

// Config sizes a generated dataset.
type Config struct {
	Train int     // training samples
	Test  int     // held-out samples
	Noise float64 // noise scale; each generator documents its default
}

func (c Config) validate() {
	if c.Train <= 0 || c.Test <= 0 {
		panic(fmt.Sprintf("dataset: non-positive split sizes %+v", c))
	}
}

// ---------------------------------------------------------------------------
// Images (SQN / CIFAR-10 stand-in)

// ImagesConfig returns the calibrated default configuration for the image
// task: 10 classes of 3×32×32 images.
func ImagesConfig() Config { return Config{Train: 512, Test: 256, Noise: 0.68} }

// Images generates the 10-class image-recognition task. Each class is a
// smooth prototype (a superposition of random low-frequency 2-D sinusoids
// per channel); samples add per-sample amplitude jitter, a random
// translation, and Gaussian pixel noise.
func Images(cfg Config, seed int64) *Dataset {
	cfg.validate()
	rng := rand.New(rand.NewSource(seed))
	const classes, ch, hw = 10, 3, 32
	protos := make([][]float32, classes)
	for cl := range protos {
		p := make([]float32, ch*hw*hw)
		for c := 0; c < ch; c++ {
			for w := 0; w < 3; w++ { // three sinusoid components per channel
				fx := 1 + rng.Float64()*2.5
				fy := 1 + rng.Float64()*2.5
				ph := rng.Float64() * 2 * math.Pi
				amp := 0.3 + rng.Float64()*0.4
				for y := 0; y < hw; y++ {
					for x := 0; x < hw; x++ {
						v := amp * math.Sin(2*math.Pi*(fx*float64(x)/hw+fy*float64(y)/hw)+ph)
						p[(c*hw+y)*hw+x] += float32(v)
					}
				}
			}
		}
		protos[cl] = p
	}
	d := &Dataset{Name: "images", Classes: classes, Shape: []int{ch, hw, hw}}
	gen := func(n int) []nn.Sample {
		samples := make([]nn.Sample, n)
		for i := range samples {
			cl := i % classes
			x := tensor.New(ch, hw, hw)
			dx, dy := rng.Intn(5)-2, rng.Intn(5)-2
			gain := float32(0.8 + rng.Float64()*0.4)
			for c := 0; c < ch; c++ {
				for y := 0; y < hw; y++ {
					sy := clampInt(y+dy, 0, hw-1)
					for xx := 0; xx < hw; xx++ {
						sx := clampInt(xx+dx, 0, hw-1)
						v := protos[cl][(c*hw+sy)*hw+sx]*gain +
							float32(rng.NormFloat64()*cfg.Noise)
						x.Data[(c*hw+y)*hw+xx] = v
					}
				}
			}
			samples[i] = nn.Sample{X: x, Label: cl}
		}
		return samples
	}
	d.Train = gen(cfg.Train)
	d.Test = gen(cfg.Test)
	return d
}

// ---------------------------------------------------------------------------
// HAR (accelerometer stand-in)

// HARConfig returns the calibrated default configuration for the
// human-activity task: 6 classes of 3-axis, 128-step windows.
func HARConfig() Config { return Config{Train: 384, Test: 192, Noise: 0.87} }

// HAR generates the 6-class activity-detection task. Each class gives
// every axis a characteristic frequency/amplitude pair (walking, running,
// sitting... analogues); samples draw random phase, small frequency
// wander, amplitude jitter and Gaussian sensor noise.
func HAR(cfg Config, seed int64) *Dataset {
	cfg.validate()
	rng := rand.New(rand.NewSource(seed))
	const classes, axes, steps = 6, 3, 128
	type axisSpec struct{ f, a, bias float64 }
	specs := make([][]axisSpec, classes)
	for cl := range specs {
		specs[cl] = make([]axisSpec, axes)
		for ax := range specs[cl] {
			specs[cl][ax] = axisSpec{
				f:    0.5 + rng.Float64()*6,
				a:    0.2 + rng.Float64()*0.8,
				bias: rng.Float64()*0.6 - 0.3,
			}
		}
	}
	d := &Dataset{Name: "har", Classes: classes, Shape: []int{axes, 1, steps}}
	gen := func(n int) []nn.Sample {
		samples := make([]nn.Sample, n)
		for i := range samples {
			cl := i % classes
			x := tensor.New(axes, 1, steps)
			for ax := 0; ax < axes; ax++ {
				s := specs[cl][ax]
				ph := rng.Float64() * 2 * math.Pi
				fj := s.f * (1 + rng.NormFloat64()*0.05)
				aj := s.a * (0.85 + rng.Float64()*0.3)
				for t := 0; t < steps; t++ {
					v := s.bias + aj*math.Sin(2*math.Pi*fj*float64(t)/steps+ph) +
						rng.NormFloat64()*cfg.Noise
					x.Data[ax*steps+t] = float32(v)
				}
			}
			samples[i] = nn.Sample{X: x, Label: cl}
		}
		return samples
	}
	d.Train = gen(cfg.Train)
	d.Test = gen(cfg.Test)
	return d
}

// ---------------------------------------------------------------------------
// Speech (CKS / keyword-spotting stand-in)

// SpeechConfig returns the calibrated default configuration for the
// keyword task: 12 classes of 10×49 MFCC-like maps.
func SpeechConfig() Config { return Config{Train: 480, Test: 240, Noise: 0.88} }

// Speech generates the 12-class keyword-spotting task. Each keyword is a
// pair of formant trajectories — smooth tracks across the time axis with
// Gaussian energy profiles across the coefficient axis; samples add time
// warping, amplitude jitter and noise.
func Speech(cfg Config, seed int64) *Dataset {
	cfg.validate()
	rng := rand.New(rand.NewSource(seed))
	const classes, coeffs, frames = 12, 10, 49
	type track struct{ start, end, width, amp float64 }
	tracks := make([][]track, classes)
	for cl := range tracks {
		tracks[cl] = make([]track, 2)
		for k := range tracks[cl] {
			tracks[cl][k] = track{
				start: rng.Float64() * float64(coeffs-1),
				end:   rng.Float64() * float64(coeffs-1),
				width: 0.7 + rng.Float64()*1.3,
				amp:   0.5 + rng.Float64()*0.5,
			}
		}
	}
	d := &Dataset{Name: "speech", Classes: classes, Shape: []int{1, coeffs, frames}}
	gen := func(n int) []nn.Sample {
		samples := make([]nn.Sample, n)
		for i := range samples {
			cl := i % classes
			x := tensor.New(1, coeffs, frames)
			warp := 0.9 + rng.Float64()*0.2
			gain := 0.8 + rng.Float64()*0.4
			for _, tr := range tracks[cl] {
				for t := 0; t < frames; t++ {
					pos := math.Min(float64(t)*warp/float64(frames-1), 1)
					center := tr.start + (tr.end-tr.start)*pos
					for c := 0; c < coeffs; c++ {
						dz := (float64(c) - center) / tr.width
						v := tr.amp * gain * math.Exp(-0.5*dz*dz)
						x.Data[c*frames+t] += float32(v)
					}
				}
			}
			for j := range x.Data {
				x.Data[j] += float32(rng.NormFloat64() * cfg.Noise)
			}
			samples[i] = nn.Sample{X: x, Label: cl}
		}
		return samples
	}
	d.Train = gen(cfg.Train)
	d.Test = gen(cfg.Test)
	return d
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
