package dataset

import (
	"math"
	"testing"
)

func allGenerators() []struct {
	name string
	gen  func(Config, int64) *Dataset
	cfg  Config
} {
	return []struct {
		name string
		gen  func(Config, int64) *Dataset
		cfg  Config
	}{
		{"images", Images, ImagesConfig()},
		{"har", HAR, HARConfig()},
		{"speech", Speech, SpeechConfig()},
	}
}

func TestShapesAndSplits(t *testing.T) {
	for _, g := range allGenerators() {
		cfg := g.cfg
		cfg.Train, cfg.Test = 40, 20
		d := g.gen(cfg, 1)
		if len(d.Train) != 40 || len(d.Test) != 20 {
			t.Errorf("%s: split sizes %d/%d", g.name, len(d.Train), len(d.Test))
		}
		want := 1
		for _, dim := range d.Shape {
			want *= dim
		}
		for _, s := range append(d.Train, d.Test...) {
			if s.X.Len() != want {
				t.Fatalf("%s: sample size %d, want %d", g.name, s.X.Len(), want)
			}
			if s.Label < 0 || s.Label >= d.Classes {
				t.Fatalf("%s: label %d out of range", g.name, s.Label)
			}
		}
	}
}

func TestAllClassesPresent(t *testing.T) {
	for _, g := range allGenerators() {
		cfg := g.cfg
		cfg.Train, cfg.Test = 60, 24
		d := g.gen(cfg, 2)
		seen := make([]bool, d.Classes)
		for _, s := range d.Train {
			seen[s.Label] = true
		}
		for cl, ok := range seen {
			if !ok {
				t.Errorf("%s: class %d missing from train split", g.name, cl)
			}
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	for _, g := range allGenerators() {
		cfg := g.cfg
		cfg.Train, cfg.Test = 10, 5
		a := g.gen(cfg, 7)
		b := g.gen(cfg, 7)
		for i := range a.Train {
			for j := range a.Train[i].X.Data {
				if a.Train[i].X.Data[j] != b.Train[i].X.Data[j] {
					t.Fatalf("%s: seed 7 not reproducible at sample %d", g.name, i)
				}
			}
		}
		c := g.gen(cfg, 8)
		same := true
		for j := range a.Train[0].X.Data {
			if a.Train[0].X.Data[j] != c.Train[0].X.Data[j] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical data", g.name)
		}
	}
}

func TestClassSeparationExceedsNoise(t *testing.T) {
	// Prototype structure must be detectable: the mean intra-class
	// distance should be smaller than the mean inter-class distance.
	for _, g := range allGenerators() {
		cfg := g.cfg
		cfg.Train, cfg.Test = 100, 10
		d := g.gen(cfg, 3)
		dist := func(a, b []float32) float64 {
			var s float64
			for i := range a {
				dd := float64(a[i] - b[i])
				s += dd * dd
			}
			return math.Sqrt(s)
		}
		var intra, inter float64
		var nIntra, nInter int
		for i := 0; i < len(d.Train); i++ {
			for j := i + 1; j < len(d.Train) && j < i+20; j++ {
				dd := dist(d.Train[i].X.Data, d.Train[j].X.Data)
				if d.Train[i].Label == d.Train[j].Label {
					intra += dd
					nIntra++
				} else {
					inter += dd
					nInter++
				}
			}
		}
		intra /= float64(nIntra)
		inter /= float64(nInter)
		if inter <= intra {
			t.Errorf("%s: inter-class distance %v <= intra-class %v; task unlearnable", g.name, inter, intra)
		}
	}
}

func TestValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero-sized split")
		}
	}()
	Images(Config{Train: 0, Test: 1}, 1)
}

func TestValuesFinite(t *testing.T) {
	for _, g := range allGenerators() {
		cfg := g.cfg
		cfg.Train, cfg.Test = 12, 6
		d := g.gen(cfg, 4)
		for _, s := range d.Train {
			for _, v := range s.X.Data {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					t.Fatalf("%s: non-finite sample value", g.name)
				}
			}
		}
	}
}
