package fleet

import "fmt"

// evalChecks evaluates every assertion of the scenario against the node
// results. Checks are pure functions of the results, so their order and
// details are deterministic.
func evalChecks(sc *Scenario, nodes []NodeResult) []CheckResult {
	checks := make([]CheckResult, 0, len(sc.Assertions))
	for _, a := range sc.Assertions {
		var sel []NodeResult
		for _, n := range nodes {
			if a.Node == "" || a.Node == "*" || a.Node == n.ID {
				sel = append(sel, n)
			}
		}
		c := CheckResult{Desc: a.describe()}
		switch a.Type {
		case "accuracy-floor":
			minAcc, id := 2.0, ""
			for _, n := range sel {
				if n.Accuracy < minAcc {
					minAcc, id = n.Accuracy, n.ID
				}
			}
			c.Pass = minAcc >= *a.Min
			c.Detail = fmt.Sprintf("min accuracy %.3f (%s), floor %.3f", minAcc, id, *a.Min)
		case "max-recoveries":
			maxRec, id := -1, ""
			for _, n := range sel {
				if n.Recoveries > maxRec {
					maxRec, id = n.Recoveries, n.ID
				}
			}
			c.Pass = float64(maxRec) <= *a.Max
			c.Detail = fmt.Sprintf("max recoveries %d (%s), limit %g", maxRec, id, *a.Max)
		case "deadline-hit-rate":
			hits, owed := 0, 0
			for _, n := range sel {
				hits += n.DeadlineHits
				owed += n.Deadlines
			}
			rate := 0.0
			if owed > 0 {
				rate = float64(hits) / float64(owed)
			}
			c.Pass = rate >= *a.Min
			c.Detail = fmt.Sprintf("hit-rate %.3f (%d/%d), floor %.3f", rate, hits, owed, *a.Min)
		}
		checks = append(checks, c)
	}
	return checks
}
