package fleet

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func f(v float64) *float64 { return &v }

// testScenario builds a small but fully-featured fleet: plain supplies,
// a scripted brownout, a harvest change, a model switch and every
// assertion type.
func testScenario() *Scenario {
	return &Scenario{
		Name: "unit",
		Seed: 7,
		Nodes: []NodeSpec{
			{ID: "a", Model: "HAR", Supply: "strong", Inferences: 2, DeadlineS: 30},
			{ID: "b", Model: "HAR", Supply: "weak"},
			{ID: "c", Model: "CKS", Supply: "8mW"},
		},
		Events: []EventSpec{
			{AtS: 0.05, Node: "b", Action: "brownout", DurationS: 0.2},
			{AtS: 1.0, Node: "b", Action: "set-harvest", Supply: "6mW"},
			{AtS: 0, Node: "c", Action: "switch-model", Model: "HAR"},
		},
		Assertions: []AssertSpec{
			{Type: "accuracy-floor", Min: f(0.01)},
			{Type: "max-recoveries", Max: f(1e6)},
			{Type: "deadline-hit-rate", Node: "a", Min: f(0)},
		},
	}
}

func TestScenarioValidate(t *testing.T) {
	if err := testScenario().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	bad := []func(*Scenario){
		func(sc *Scenario) { sc.Name = "" },
		func(sc *Scenario) { sc.Nodes = nil },
		func(sc *Scenario) { sc.Nodes[1].ID = "a" },
		func(sc *Scenario) { sc.Nodes[0].Model = "nope" },
		func(sc *Scenario) { sc.Nodes[0].Supply = "alsono" },
		func(sc *Scenario) { sc.Nodes[0].Solar = &SolarSpec{PeakMW: 10, DurationS: 60} },
		func(sc *Scenario) { sc.Events[0].Node = "ghost" },
		func(sc *Scenario) { sc.Events[0].DurationS = 0 },
		func(sc *Scenario) { sc.Events[1].Supply = "continuous" },
		func(sc *Scenario) { sc.Events[2].Model = "zzz" },
		func(sc *Scenario) { sc.Assertions[0].Min = nil },
		func(sc *Scenario) { sc.Assertions[0].Min = f(1.5) },
		func(sc *Scenario) { sc.Assertions[1].Max = f(-1) },
		func(sc *Scenario) { sc.Assertions[2].Node = "b" }, // b has no deadline
		func(sc *Scenario) { sc.Assertions[2].Type = "weird" },
	}
	for i, mutate := range bad {
		sc := testScenario()
		mutate(sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("mutation %d: invalid scenario accepted", i)
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"name":"x","seed":1,"typo_field":true,"nodes":[]}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestScriptTraceEdges pins the compiled power trace against the event
// script: harvest steps and brownout windows must reproduce exactly at
// the trace's linear interpolation.
func TestScriptTraceEdges(t *testing.T) {
	sc := &Scenario{
		Name: "edges", Seed: 1,
		Nodes: []NodeSpec{{ID: "n", Model: "HAR", Supply: "4mW"}},
		Events: []EventSpec{
			{AtS: 1, Node: "n", Action: "brownout", DurationS: 0.5},
			{AtS: 2, Node: "n", Action: "set-harvest", Supply: "8mW"},
		},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	nodes, err := compile(sc)
	if err != nil {
		t.Fatal(err)
	}
	tr := nodes[0].trace
	if tr == nil {
		t.Fatal("event-scripted node compiled to a plain supply")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ t, want float64 }{
		{0, 4e-3},    // baseline
		{0.5, 4e-3},  // before the storm
		{1.0, 0},     // brownout start (right-continuous)
		{1.25, 0},    // mid-brownout
		{1.5, 4e-3},  // brownout end restores the baseline
		{2.0, 8e-3},  // harvest step
		{2.5, 8e-3},  // holds after the step
		{10.0, 8e-3}, // end clamp
	} {
		if got := tr.At(tc.t); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("At(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
	if nodes[0].label != "4mW+events" {
		t.Errorf("label = %q", nodes[0].label)
	}
}

func TestCompileSolarBaseline(t *testing.T) {
	sc := &Scenario{
		Name: "sun", Seed: 1,
		Nodes: []NodeSpec{{ID: "n", Model: "CKS",
			Solar: &SolarSpec{PeakMW: 10, DurationS: 120, Clouds: 2, Seed: 3}}},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	nodes, err := compile(sc)
	if err != nil {
		t.Fatal(err)
	}
	tr := nodes[0].trace
	if tr == nil || nodes[0].label != "solar" {
		t.Fatalf("solar node compiled wrong: trace=%v label=%q", tr != nil, nodes[0].label)
	}
	// The solar knots must carry over: mid-day power is near peak.
	if p := tr.At(60); p <= 1e-3 {
		t.Errorf("mid-day solar power %g implausibly low", p)
	}
}

// TestRunDeterministicAcrossWorkers pins the tentpole's core contract:
// a fixed scenario+seed produces byte-identical summaries at any fan-out
// width.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	sc := testScenario()
	var outs []string
	for _, workers := range []int{1, 4} {
		rep, err := Run(sc, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := rep.WriteSummary(&b); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, b.String())
		if rep.Failed() {
			t.Fatalf("workers=%d: scenario unexpectedly failed:\n%s", workers, b.String())
		}
	}
	if outs[0] != outs[1] {
		t.Fatalf("summaries differ between -workers 1 and 4:\n--- 1:\n%s--- 4:\n%s", outs[0], outs[1])
	}
}

func TestRunResultsAndTrace(t *testing.T) {
	sc := testScenario()
	rep, err := Run(sc, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Nodes) != 3 || len(rep.Checks) != 3 {
		t.Fatalf("got %d nodes, %d checks", len(rep.Nodes), len(rep.Checks))
	}
	a, b, c := rep.Nodes[0], rep.Nodes[1], rep.Nodes[2]
	if a.Inferences != 2 || a.Deadlines != 2 {
		t.Errorf("node a: inf=%d deadlines=%d", a.Inferences, a.Deadlines)
	}
	if b.Recoveries == 0 {
		t.Error("weak-supply node b survived without a single recovery")
	}
	if c.Model != "HAR" || c.Switches != 1 {
		t.Errorf("node c switch-model not applied: model=%s switches=%d", c.Model, c.Switches)
	}
	for _, n := range rep.Nodes {
		if n.Err != nil {
			t.Errorf("%s: %v", n.ID, n.Err)
		}
		if n.Accuracy <= 0 || n.Latency <= 0 || n.Energy <= 0 {
			t.Errorf("%s: degenerate result %+v", n.ID, n)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("fleet trace is not valid JSON")
	}
	for _, id := range []string{"a", "b", "c"} {
		if !strings.Contains(buf.String(), `"`+id+`"`) {
			t.Errorf("trace missing a section for node %s", id)
		}
	}
	if ops := rep.Rollup().Counter("run/ops").Value(); ops <= 0 {
		t.Errorf("rollup ops = %g", ops)
	}
}

// TestNodeTimelineMonotonic pins the clock alignment between the
// cost-simulator's per-run clock and the node's global power timeline:
// events recorded for one node never go backwards in time across
// inference boundaries.
func TestNodeTimelineMonotonic(t *testing.T) {
	sc := &Scenario{
		Name: "mono", Seed: 3,
		Nodes: []NodeSpec{{ID: "n", Model: "HAR", Supply: "weak", Inferences: 3}},
	}
	rep, err := Run(sc, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes[0].Err != nil {
		t.Fatal(rep.Nodes[0].Err)
	}
	evs := rep.hub.Devices()[0].Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	prev := 0.0
	for i, ev := range evs {
		if ev.Time < prev-1e-9 {
			t.Fatalf("event %d (%v) at %g s runs backwards (prev %g s)", i, ev.Kind, ev.Time, prev)
		}
		if ev.Time > prev {
			prev = ev.Time
		}
	}
	if total := rep.Nodes[0].Latency; math.Abs(prev-total) > total*0.5 {
		t.Errorf("last event at %g s vs total latency %g s: clocks diverged", prev, total)
	}
}

func TestFailingAssertionFlipsFailed(t *testing.T) {
	sc := &Scenario{
		Name: "strict", Seed: 1,
		Nodes: []NodeSpec{{ID: "w", Model: "HAR", Supply: "weak"}},
		Assertions: []AssertSpec{
			{Type: "max-recoveries", Max: f(0)}, // weak supply must violate this
		},
	}
	rep, err := Run(sc, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("recovery-heavy run passed a max-recoveries=0 assertion")
	}
	var b bytes.Buffer
	if err := rep.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "check FAIL") || !strings.Contains(b.String(), "FAIL (") {
		t.Errorf("summary does not surface the failure:\n%s", b.String())
	}
}
