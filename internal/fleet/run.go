package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"

	"iprune/internal/dataset"
	"iprune/internal/energy"
	"iprune/internal/hawaii"
	"iprune/internal/models"
	"iprune/internal/obs"
	"iprune/internal/pool"
	"iprune/internal/power"
	"iprune/internal/quant"
	"iprune/internal/tile"
)

// Options configures a scenario run.
type Options struct {
	// Workers is the fan-out width across nodes (the calling goroutine
	// participates); <= 0 uses GOMAXPROCS. Results are identical for any
	// width: nodes share nothing but the scenario.
	Workers int
}

// NodeResult is the outcome of one node's run.
type NodeResult struct {
	ID         string
	Model      string // deployed model after any switch-model events
	Supply     string
	Switches   int // model switches applied
	Inferences int // inferences completed
	Recoveries int // power failures survived (= progress recoveries)
	// DeadlineHits / Deadlines: inferences that met the node's deadline
	// over those that owed one — inferences never run (after an error)
	// count as misses.
	DeadlineHits int
	Deadlines    int
	Latency      float64 // total simulated seconds, dark time included
	Energy       float64 // joules drawn over the whole run
	Accuracy     float64 // deployed (quantized) accuracy of the final model
	Err          error
}

// CheckResult is one evaluated assertion.
type CheckResult struct {
	Desc   string
	Pass   bool
	Detail string
}

// Report is the outcome of a fleet run: per-node results, evaluated
// assertions, and the merged telemetry of every node.
type Report struct {
	Scenario *Scenario
	Nodes    []NodeResult
	Checks   []CheckResult

	hub *obs.Hub
}

// Run executes the scenario: every node simulates independently (fanned
// out Workers-wide), telemetry flows through one obs.Hub, and the
// scenario's assertions are evaluated over the joined results. The
// returned error covers scenario-level problems only; per-node failures
// land in NodeResult.Err and flip Failed().
func Run(sc *Scenario, opts Options) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	nodes, err := compile(sc)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := workers
	if shards > len(nodes) {
		shards = len(nodes)
	}
	hub := obs.NewHub(shards)
	// Register every device before the fan-out, in node order: device
	// identity, shard pinning and trace sections are then independent of
	// worker scheduling.
	devs := make([]*obs.HubDevice, len(nodes))
	for i, n := range nodes {
		devs[i] = hub.Device(n.spec.ID, nil)
	}
	results := make([]NodeResult, len(nodes))
	runOne := func(i int) { results[i] = runNode(nodes[i], devs[i]) }
	if workers <= 1 || len(nodes) <= 1 {
		for i := range nodes {
			runOne(i)
		}
	} else {
		p := pool.New(workers - 1) // the calling goroutine participates
		if err := p.ForEach(context.Background(), len(nodes), runOne); err != nil {
			p.Close()
			if pe, ok := err.(*pool.PanicError); ok {
				panic(pe.Value)
			}
			return nil, err
		}
		p.Close()
	}
	hub.Close()
	return &Report{
		Scenario: sc,
		Nodes:    results,
		Checks:   evalChecks(sc, results),
		hub:      hub,
	}, nil
}

// offsetTracer shifts cost-simulator events — stamped on the per-run
// clock that restarts at zero for every inference — onto the node's
// global power timeline (power.Sim's OnTime+OffTime), so a node's trace
// section is one continuous history across inferences and the power
// simulator's own events interleave correctly. The wrapped device is
// held concretely (not as obs.Tracer) so the wrapper never re-enters
// the interface's devirtualized call graph.
type offsetTracer struct {
	t  *obs.HubDevice
	dt float64
}

func (o *offsetTracer) Enabled() bool { return o.t.Enabled() }
func (o *offsetTracer) Emit(ev obs.Event) {
	ev.Time += o.dt
	o.t.Emit(ev)
}

// buildSchedule constructs the accelerator-op schedule for a model, as
// deployed (dense block masks installed).
func buildSchedule(model string, seed int64, cfg tile.Config) ([]hawaii.Op, error) {
	net, err := models.ByName(model, seed)
	if err != nil {
		return nil, err
	}
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	return hawaii.ScheduleFromNetwork(net, specs, tile.Intermittent, cfg), nil
}

// accSamples sizes the held-out set for the deployed-accuracy probe:
// large enough to rank models, small enough that a fleet of nodes stays
// interactive.
const accSamples = 64

// deployedAccuracy evaluates the quantized model on its task's held-out
// split, seeded per node so the probe is deterministic.
func deployedAccuracy(model string, seed int64) (float64, error) {
	net, err := models.ByName(model, seed)
	if err != nil {
		return 0, err
	}
	var cfg dataset.Config
	var build func(dataset.Config, int64) *dataset.Dataset
	switch model {
	case "SQN":
		cfg, build = dataset.ImagesConfig(), dataset.Images
	case "HAR":
		cfg, build = dataset.HARConfig(), dataset.HAR
	case "CKS":
		cfg, build = dataset.SpeechConfig(), dataset.Speech
	default:
		return 0, fmt.Errorf("fleet: no dataset for model %q", model)
	}
	cfg.Train, cfg.Test = 1, accSamples
	ds := build(cfg, seed)
	return quant.AccuracyQ15(quant.QuantizeWeights(net), ds.Test), nil
}

// runNode simulates one node end to end: one power simulator spans every
// inference (failures and profile time carry across boundaries), the
// schedule is rebuilt at each switch-model boundary, and all events flow
// into the node's hub device.
func runNode(n *node, dev *obs.HubDevice) NodeResult {
	r := NodeResult{ID: n.spec.ID, Model: n.spec.Model, Supply: n.label}
	if n.spec.DeadlineS > 0 {
		r.Deadlines = n.spec.Inferences
	}
	var sim *power.Sim
	if n.trace != nil {
		s, err := power.NewTraceSim(power.DefaultBuffer(), *n.trace, n.seed)
		if err != nil {
			r.Err = err
			return r
		}
		sim = s
	} else {
		sim = power.NewSim(power.DefaultBuffer(), n.supply, n.seed)
	}
	// The power simulator emits on the node's global clock; keep it on
	// the raw device so RunWithSim does not rebind it to the per-run
	// tracer below.
	sim.Trace = dev

	cfg := tile.DefaultConfig()
	ops, err := buildSchedule(r.Model, n.seed, cfg)
	if err != nil {
		r.Err = err
		return r
	}
	pending := n.switches
	for k := 0; k < n.spec.Inferences; k++ {
		now := sim.OnTime + sim.OffTime
		for len(pending) > 0 && pending[0].at <= now {
			sw := pending[0]
			pending = pending[1:]
			if sw.model == r.Model {
				continue
			}
			r.Model = sw.model
			r.Switches++
			if ops, err = buildSchedule(r.Model, n.seed, cfg); err != nil {
				r.Err = err
				return r
			}
		}
		cs := hawaii.NewCostSim(cfg)
		cs.Trace = &offsetTracer{t: dev, dt: now}
		res, err := cs.RunWithSim(ops, tile.Intermittent, sim)
		r.Latency += res.Latency
		if err != nil {
			r.Err = err
			break
		}
		r.Inferences++
		if n.spec.DeadlineS > 0 && res.Latency <= n.spec.DeadlineS {
			r.DeadlineHits++
		}
	}
	r.Recoveries = sim.Failures
	r.Energy = sim.EnergyUsed
	if acc, err := deployedAccuracy(r.Model, n.seed); err == nil {
		r.Accuracy = acc
	} else if r.Err == nil {
		r.Err = err
	}
	return r
}

// Failed reports whether any node errored or any assertion failed.
func (r *Report) Failed() bool {
	for _, n := range r.Nodes {
		if n.Err != nil {
			return true
		}
	}
	for _, c := range r.Checks {
		if !c.Pass {
			return true
		}
	}
	return false
}

// Rollup returns the fleet-wide merged metrics.
func (r *Report) Rollup() *obs.Metrics { return r.hub.Rollup() }

// WriteTrace writes the merged Chrome trace: one process section per
// node.
func (r *Report) WriteTrace(w io.Writer) error { return r.hub.WriteTrace(w) }

// WriteSummary renders the per-node summary lines, the fleet rollup and
// the assertion verdicts. The output is deterministic for a fixed
// scenario and seed, whatever the worker count.
func (r *Report) WriteSummary(w io.Writer) error {
	var b bytes.Buffer
	fmt.Fprintf(&b, "fleet %s: %d nodes, seed %d\n", r.Scenario.Name, len(r.Nodes), r.Scenario.Seed)
	for _, n := range r.Nodes {
		fmt.Fprintf(&b, "  %-12s model=%s supply=%s inf=%d/%d recov=%d",
			n.ID, n.Model, n.Supply, n.Inferences, pickInferences(r.Scenario, n.ID), n.Recoveries)
		if n.Deadlines > 0 {
			fmt.Fprintf(&b, " deadline=%d/%d", n.DeadlineHits, n.Deadlines)
		}
		fmt.Fprintf(&b, " lat=%.3fs energy=%s acc=%.3f", n.Latency, energy.FormatJ(n.Energy), n.Accuracy)
		if n.Switches > 0 {
			fmt.Fprintf(&b, " switches=%d", n.Switches)
		}
		if n.Err != nil {
			fmt.Fprintf(&b, " err=%v", n.Err)
		}
		b.WriteByte('\n')
	}
	m := r.Rollup()
	fmt.Fprintf(&b, "rollup: ops=%.0f cycles=%.0f failures=%.0f energy=%s\n",
		m.Counter("run/ops").Value(), m.Counter("run/power_cycles").Value(),
		m.Counter("run/failures").Value(), energy.FormatJ(m.Counter("run/energy_j").Value()))
	failed := 0
	for _, c := range r.Checks {
		verdict := "PASS"
		if !c.Pass {
			verdict, failed = "FAIL", failed+1
		}
		fmt.Fprintf(&b, "check %s %s: %s\n", verdict, c.Desc, c.Detail)
	}
	for _, n := range r.Nodes {
		if n.Err != nil {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(&b, "FAIL (%d problem(s))\n", failed)
	} else {
		fmt.Fprintf(&b, "PASS (%d nodes, %d checks)\n", len(r.Nodes), len(r.Checks))
	}
	_, err := w.Write(b.Bytes())
	return err
}

// pickInferences returns the configured inference count for a node (the
// denominator of the inf= column).
func pickInferences(sc *Scenario, id string) int {
	for _, n := range sc.Nodes {
		if n.ID == id {
			if n.Inferences <= 0 {
				return 1
			}
			return n.Inferences
		}
	}
	return 0
}
