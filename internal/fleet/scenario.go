// Package fleet runs declarative multi-device intermittent-computing
// scenarios: a JSON file describes a heterogeneous fleet of nodes (model,
// supply or harvest profile, seed), a timed event script (harvest
// changes, brownout storms, model switches), and end-of-run assertions.
// Each node runs the real HAWAII⁺ cost simulator — only the power layer
// is scripted — so scenario regressions exercise exactly the recovery
// machinery the paper evaluates, at fleet scale.
package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"iprune/internal/models"
	"iprune/internal/power"
)

// Scenario is the root of a fleet scenario file.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed is the fleet-wide base seed; a node without its own seed runs
	// at Seed + its index, so adding a node never reseeds the others.
	Seed       int64        `json:"seed"`
	Nodes      []NodeSpec   `json:"nodes"`
	Events     []EventSpec  `json:"events,omitempty"`
	Assertions []AssertSpec `json:"assertions,omitempty"`
}

// NodeSpec describes one device of the fleet.
type NodeSpec struct {
	ID    string `json:"id"`
	Model string `json:"model"` // Table II model name: SQN | HAR | CKS
	// Exactly one of Supply and Solar must be set. Supply accepts what
	// the CLIs accept: continuous | strong | weak | "<N>mW".
	Supply string     `json:"supply,omitempty"`
	Solar  *SolarSpec `json:"solar,omitempty"`
	// Seed overrides the derived per-node seed.
	Seed *int64 `json:"seed,omitempty"`
	// Inferences is the number of back-to-back inferences to run
	// (default 1). The power simulator spans all of them: failures and
	// profile time carry across inference boundaries.
	Inferences int `json:"inferences,omitempty"`
	// DeadlineS, when positive, marks each inference as a deadline hit
	// iff its end-to-end latency (dark time included) stays within it.
	DeadlineS float64 `json:"deadline_s,omitempty"`
}

// SolarSpec parameterizes a power.SolarDay harvest profile.
type SolarSpec struct {
	PeakMW    float64 `json:"peak_mw"`
	DurationS float64 `json:"duration_s"`
	Clouds    int     `json:"clouds"`
	Seed      int64   `json:"seed"`
}

// EventSpec is one entry of the timed event script. Node selects a node
// by ID, or "*" for the whole fleet.
type EventSpec struct {
	AtS    float64 `json:"at_s"`
	Node   string  `json:"node"`
	Action string  `json:"action"` // set-harvest | brownout | switch-model
	// Supply is the new harvest operating point for set-harvest (must
	// not be continuous — a scripted profile models harvest power).
	Supply string `json:"supply,omitempty"`
	// DurationS is the dark window length for brownout.
	DurationS float64 `json:"duration_s,omitempty"`
	// Model is the replacement model for switch-model; the switch takes
	// effect at the next inference boundary after AtS.
	Model string `json:"model,omitempty"`
}

// AssertSpec is one end-of-run check. Node narrows it to a single node;
// empty or "*" covers the fleet.
type AssertSpec struct {
	Type string   `json:"type"` // accuracy-floor | max-recoveries | deadline-hit-rate
	Node string   `json:"node,omitempty"`
	Min  *float64 `json:"min,omitempty"`
	Max  *float64 `json:"max,omitempty"`
}

// Parse decodes a scenario, rejecting unknown fields so typos in
// scenario files fail loudly, and validates it.
func Parse(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("fleet: parse scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //iprune:allow-err read-only file; Parse errors dominate
	return Parse(f)
}

func validModel(name string) bool {
	for _, m := range models.Names() {
		if m == name {
			return true
		}
	}
	return false
}

// Validate checks every cross-reference and value range of the scenario:
// node IDs, model and supply names, event targets and parameters, and
// assertion shapes. It does not simulate anything.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("fleet: scenario needs a name")
	}
	if len(sc.Nodes) == 0 {
		return fmt.Errorf("fleet: scenario %q has no nodes", sc.Name)
	}
	ids := make(map[string]bool, len(sc.Nodes))
	for i, n := range sc.Nodes {
		where := fmt.Sprintf("fleet: node %d (%q)", i, n.ID)
		if n.ID == "" || n.ID == "*" {
			return fmt.Errorf("%s: id must be non-empty and not %q", where, "*")
		}
		if ids[n.ID] {
			return fmt.Errorf("%s: duplicate id", where)
		}
		ids[n.ID] = true
		if !validModel(n.Model) {
			return fmt.Errorf("%s: unknown model %q (have %v)", where, n.Model, models.Names())
		}
		switch {
		case n.Supply != "" && n.Solar != nil:
			return fmt.Errorf("%s: supply and solar are mutually exclusive", where)
		case n.Supply != "":
			if _, err := power.ParseSupply(n.Supply); err != nil {
				return fmt.Errorf("%s: %w", where, err)
			}
		case n.Solar != nil:
			s := n.Solar
			if s.PeakMW <= 0 || s.DurationS <= 0 || s.Clouds < 0 {
				return fmt.Errorf("%s: solar needs peak_mw > 0, duration_s > 0, clouds >= 0", where)
			}
		default:
			return fmt.Errorf("%s: needs a supply or a solar profile", where)
		}
		if n.Inferences < 0 {
			return fmt.Errorf("%s: negative inferences", where)
		}
		if n.DeadlineS < 0 {
			return fmt.Errorf("%s: negative deadline_s", where)
		}
	}
	for i, ev := range sc.Events {
		where := fmt.Sprintf("fleet: event %d (%s at %gs)", i, ev.Action, ev.AtS)
		if ev.AtS < 0 {
			return fmt.Errorf("%s: negative at_s", where)
		}
		if ev.Node != "*" && !ids[ev.Node] {
			return fmt.Errorf("%s: unknown node %q", where, ev.Node)
		}
		switch ev.Action {
		case "set-harvest":
			sup, err := power.ParseSupply(ev.Supply)
			if err != nil {
				return fmt.Errorf("%s: %w", where, err)
			}
			if sup.Continuous {
				return fmt.Errorf("%s: a scripted harvest cannot be continuous", where)
			}
		case "brownout":
			if ev.DurationS <= 0 {
				return fmt.Errorf("%s: brownout needs duration_s > 0", where)
			}
		case "switch-model":
			if !validModel(ev.Model) {
				return fmt.Errorf("%s: unknown model %q (have %v)", where, ev.Model, models.Names())
			}
		default:
			return fmt.Errorf("%s: unknown action (set-harvest|brownout|switch-model)", where)
		}
	}
	for i, a := range sc.Assertions {
		where := fmt.Sprintf("fleet: assertion %d (%s)", i, a.Type)
		if a.Node != "" && a.Node != "*" && !ids[a.Node] {
			return fmt.Errorf("%s: unknown node %q", where, a.Node)
		}
		switch a.Type {
		case "accuracy-floor":
			if a.Min == nil || a.Max != nil {
				return fmt.Errorf("%s: needs min (and no max)", where)
			}
			if *a.Min < 0 || *a.Min > 1 {
				return fmt.Errorf("%s: min %g outside [0,1]", where, *a.Min)
			}
		case "max-recoveries":
			if a.Max == nil || a.Min != nil {
				return fmt.Errorf("%s: needs max (and no min)", where)
			}
			if *a.Max < 0 {
				return fmt.Errorf("%s: negative max", where)
			}
		case "deadline-hit-rate":
			if a.Min == nil || a.Max != nil {
				return fmt.Errorf("%s: needs min (and no max)", where)
			}
			if *a.Min < 0 || *a.Min > 1 {
				return fmt.Errorf("%s: min %g outside [0,1]", where, *a.Min)
			}
			any := false
			for _, n := range sc.Nodes {
				if (a.Node == "" || a.Node == "*" || a.Node == n.ID) && n.DeadlineS > 0 {
					any = true
				}
			}
			if !any {
				return fmt.Errorf("%s: no selected node has a deadline_s", where)
			}
		default:
			return fmt.Errorf("%s: unknown type (accuracy-floor|max-recoveries|deadline-hit-rate)", where)
		}
	}
	return nil
}

func (a AssertSpec) describe() string {
	target := a.Node
	if target == "" || target == "*" {
		target = "fleet"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s", a.Type, target)
	if a.Min != nil {
		fmt.Fprintf(&b, ", min=%g", *a.Min)
	}
	if a.Max != nil {
		fmt.Fprintf(&b, ", max=%g", *a.Max)
	}
	b.WriteString(")")
	return b.String()
}
