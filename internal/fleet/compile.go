package fleet

import (
	"math"
	"sort"

	"iprune/internal/power"
)

// node is a compiled NodeSpec: everything the run loop needs, resolved
// against the event script.
type node struct {
	spec  NodeSpec
	index int
	seed  int64
	label string // supply description for the summary line

	// Exactly one of the two power configurations is set: a plain supply
	// (keeps its per-cycle jitter) or a scripted piecewise-linear trace
	// (deterministic, jitter-free by construction of NewTraceSim).
	supply power.Supply
	trace  *power.Trace

	switches []modelSwitch // time-sorted pending switch-model commands
}

type modelSwitch struct {
	at    float64
	model string
}

// powerEvent is a set-harvest or brownout entry resolved for one node.
type powerEvent struct {
	at    float64
	dur   float64 // brownout window length
	pow   float64 // set-harvest power, watts
	brown bool
}

// compile resolves the scenario into per-node run plans. A node keeps
// its plain supply unless the event script touches its power or it has a
// solar profile; then its whole power history is compiled into one
// power.Trace so the simulator sees a single consistent profile.
func compile(sc *Scenario) ([]*node, error) {
	nodes := make([]*node, len(sc.Nodes))
	for i := range sc.Nodes {
		spec := sc.Nodes[i]
		if spec.Inferences <= 0 {
			spec.Inferences = 1
		}
		n := &node{spec: spec, index: i, seed: sc.Seed + int64(i)}
		if spec.Seed != nil {
			n.seed = *spec.Seed
		}
		var pevs []powerEvent
		for _, ev := range sc.Events {
			if ev.Node != "*" && ev.Node != spec.ID {
				continue
			}
			switch ev.Action {
			case "set-harvest":
				sup, err := power.ParseSupply(ev.Supply)
				if err != nil {
					return nil, err // unreachable after Validate
				}
				pevs = append(pevs, powerEvent{at: ev.AtS, pow: sup.Power})
			case "brownout":
				pevs = append(pevs, powerEvent{at: ev.AtS, dur: ev.DurationS, brown: true})
			case "switch-model":
				n.switches = append(n.switches, modelSwitch{at: ev.AtS, model: ev.Model})
			}
		}
		sort.SliceStable(n.switches, func(a, b int) bool { return n.switches[a].at < n.switches[b].at })
		sort.SliceStable(pevs, func(a, b int) bool { return pevs[a].at < pevs[b].at })
		if err := compilePower(n, pevs); err != nil {
			return nil, err
		}
		nodes[i] = n
	}
	return nodes, nil
}

// compilePower picks the node's power configuration and label.
func compilePower(n *node, pevs []powerEvent) error {
	spec := n.spec
	if spec.Solar == nil && len(pevs) == 0 {
		sup, err := power.ParseSupply(spec.Supply)
		if err != nil {
			return err
		}
		n.supply = sup
		n.label = sup.Name
		return nil
	}
	var solar *power.Trace
	base := 0.0
	switch {
	case spec.Solar != nil:
		tr := power.SolarDay(spec.Solar.PeakMW*1e-3, spec.Solar.DurationS, spec.Solar.Clouds, spec.Solar.Seed)
		solar = &tr
		n.label = "solar"
	default:
		sup, err := power.ParseSupply(spec.Supply)
		if err != nil {
			return err
		}
		// A mains-powered node hit by a power event becomes a scripted
		// harvest node: the trace machinery models harvested power, so
		// "continuous" is represented as its 1.65 W equivalent.
		base = sup.Power
		n.label = sup.Name
	}
	if len(pevs) > 0 {
		n.label += "+events"
	}
	tr := scriptTrace(solar, base, pevs)
	if err := tr.Validate(); err != nil {
		return err
	}
	n.trace = &tr
	return nil
}

// scriptTrace renders a baseline profile (a solar day or a constant
// harvest) overlaid with the event script into one piecewise-linear
// power.Trace. Every event edge gets a near-vertical step (a sample just
// before and one at the edge), and every solar knot is carried over, so
// linear interpolation between the emitted samples reproduces the
// scripted history exactly.
func scriptTrace(solar *power.Trace, base float64, pevs []powerEvent) power.Trace {
	eval := func(t float64) float64 {
		p := base
		if solar != nil {
			p = solar.At(t)
		}
		for _, e := range pevs { // time-sorted: the last harvest at or before t wins
			if !e.brown && e.at <= t {
				p = e.pow
			}
		}
		for _, e := range pevs {
			if e.brown && e.at <= t && t < e.at+e.dur {
				return 0
			}
		}
		return p
	}
	var bps []float64
	if solar != nil {
		bps = append(bps, solar.Times...)
	}
	for _, e := range pevs {
		bps = append(bps, e.at)
		if e.brown {
			bps = append(bps, e.at+e.dur)
		}
	}
	maxBP := 0.0
	for _, b := range bps {
		maxBP = math.Max(maxBP, b)
	}
	horizon := maxBP + 1
	sort.Float64s(bps)

	tr := power.Trace{Times: []float64{0}, Powers: []float64{eval(0)}}
	add := func(t float64) {
		if t > tr.Times[len(tr.Times)-1] && t < horizon {
			tr.Times = append(tr.Times, t)
			tr.Powers = append(tr.Powers, eval(t))
		}
	}
	for _, b := range bps {
		// The pre-edge sample keeps the step near-vertical; the offset is
		// relative so it survives float64 rounding at large times.
		add(b - math.Max(1e-9, b*1e-12))
		add(b)
	}
	tr.Times = append(tr.Times, horizon)
	tr.Powers = append(tr.Powers, eval(horizon))
	return tr
}
