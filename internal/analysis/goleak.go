package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"iprune/internal/analysis/flow"
)

// Goleak certifies goroutine and channel lifecycle: with parsafe and
// lockorder it forms the concflow family that the parallel phase's
// worker pool must pass before any hot path is sharded. parsafe polices
// where goroutines may spawn and how they synchronize; goleak proves
// they can *stop*, and that the channels they talk over are not misused.
//
// Four rules:
//
//   - Every goroutine spawned in the module must have a provably
//     reachable termination path. A loop that can never exit — `for {}`
//     with no reachable return/break, a select loop whose cases never
//     leave, or `for range ch` over a channel nothing in the module
//     closes — pins the goroutine (and everything it references) for the
//     life of the process. Evidence of termination is an exit statement
//     reaching out of every loop, or for channel-ranged loops a
//     module-reachable close of the ranged channel (channel identity is
//     the declared object: a struct field is a channel class, a variable
//     is itself; a channel-typed parameter is resolved through the spawn
//     site's argument).
//   - Double close: close(ch) when ch may already be closed on some path
//     — a guaranteed panic on that path.
//   - Send on possibly-closed: ch <- v after a close(ch) reaches the
//     send — a guaranteed panic on that path.
//   - Hot-path sends need receivers: inside //iprune:hotpath functions a
//     send on a channel no statement in the module ever receives from
//     blocks the kernel forever (or leaks a buffer slot per cycle).
//
// Sites opt out with //iprune:allow-conc <reason>.
var Goleak = &Analyzer{
	Name:      "goleak",
	Doc:       "spawned goroutines provably terminate; channels are not double-closed, sent to after close, or sent with no receiver in hot paths",
	Allow:     "allow-conc",
	Scope:     func(path string) bool { return true },
	RunModule: runGoleak,
}

// chanIndex is the module-wide channel fact base: which channel objects
// are ever closed, and which are ever received from.
type chanIndex struct {
	closed map[types.Object]bool
	recvd  map[types.Object]bool
}

func runGoleak(mp *ModulePass) {
	idx := buildChanIndex(mp)
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkCloseDiscipline(mp, pkg, fd)
				checkHotpathSends(mp, pkg, fd, idx)
				checkSpawns(mp, pkg, fd, idx)
			}
		}
	}
}

// buildChanIndex scans every file for close(ch) calls and channel
// receives (unary <-, range-over-channel). Identity is the declared
// object, so a close of one instance's field counts for the field class
// — the same abstraction lockorder uses for locks.
func buildChanIndex(mp *ModulePass) *chanIndex {
	idx := &chanIndex{closed: map[types.Object]bool{}, recvd: map[types.Object]bool{}}
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					if arg, ok := closeArg(pkg, x); ok {
						if obj, ok := refObject(pkg, arg); ok {
							idx.closed[obj] = true
						}
					}
				case *ast.UnaryExpr:
					if x.Op == token.ARROW {
						if obj, ok := refObject(pkg, x.X); ok {
							idx.recvd[obj] = true
						}
					}
				case *ast.RangeStmt:
					if isChanType(pkg, x.X) {
						if obj, ok := refObject(pkg, x.X); ok {
							idx.recvd[obj] = true
						}
					}
				}
				return true
			})
		}
	}
	return idx
}

// closeArg returns the argument of a builtin close(ch) call.
func closeArg(pkg *Package, call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) != 1 {
		return nil, false
	}
	if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
		return nil, false
	}
	return call.Args[0], true
}

func isChanType(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// ---- close discipline: double-close and send-after-close ----

// checkCloseDiscipline runs a may-closed dataflow over the function's
// CFG: close(ch) adds the channel to the set, reassigning the channel
// variable removes it (a fresh channel is open). A close or send that a
// prior close reaches is a guaranteed panic on that path.
func checkCloseDiscipline(mp *ModulePass, pkg *Package, fd *ast.FuncDecl) {
	g := flow.Build(fd.Body)
	entry := map[*flow.Block]map[types.Object]bool{}
	entry[g.Entry] = map[types.Object]bool{}
	work := []*flow.Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := cloneSet(entry[b])
		for _, n := range b.Nodes {
			closedTransfer(pkg, n, out, nil)
		}
		for _, s := range b.Succs {
			cur, seen := entry[s]
			if !seen {
				entry[s] = cloneSet(out)
				work = append(work, s)
				continue
			}
			changed := false
			for k := range out {
				if !cur[k] {
					cur[k] = true
					changed = true
				}
			}
			if changed {
				work = append(work, s)
			}
		}
	}
	pass := mp.Pass(pkg)
	for _, b := range g.Blocks {
		st, ok := entry[b]
		if !ok {
			continue // unreachable
		}
		out := cloneSet(st)
		for _, n := range b.Nodes {
			closedTransfer(pkg, n, out, pass)
		}
	}
}

// closedTransfer interprets one CFG node against the may-closed set;
// when pass is non-nil it also reports violations.
func closedTransfer(pkg *Package, n ast.Node, closed map[types.Object]bool, pass *Pass) {
	switch n.(type) {
	case *ast.RangeStmt, *ast.DeferStmt, *ast.GoStmt:
		// Deferred closes run at exit; spawned bodies run elsewhere.
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if obj, ok := disciplineObject(pkg, x.Chan); ok && closed[obj] && pass != nil {
				pass.Reportf(x.Arrow,
					"send on %s after close(%s) reaches it: sending on a closed channel panics (reorder the close, or annotate //iprune:allow-conc)",
					refName(obj), refName(obj))
			}
		case *ast.CallExpr:
			arg, ok := closeArg(pkg, x)
			if !ok {
				return true
			}
			obj, ok := disciplineObject(pkg, arg)
			if !ok {
				return true
			}
			if closed[obj] && pass != nil {
				pass.Reportf(x.Pos(),
					"close(%s) may close an already-closed channel: closing twice panics (close in exactly one owner, or annotate //iprune:allow-conc)",
					refName(obj))
			}
			closed[obj] = true
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if obj, ok := refObject(pkg, lhs); ok {
					delete(closed, obj) // reassigned: a fresh, open channel
				}
			}
		}
		return true
	})
}

// disciplineObject resolves a channel expression for the close-discipline
// check. Unlike refObject it refuses expressions that go through an
// index: closing h.shards[i].ch in a loop closes a *different* instance
// each iteration, so the field-class abstraction (one object per
// declared field) would see a false double-close. The module-wide close
// index keeps the class view — there, conflating instances is what makes
// a per-shard close count as termination evidence for a per-shard range.
func disciplineObject(pkg *Package, e ast.Expr) (types.Object, bool) {
	if hasIndexStep(e) {
		return nil, false
	}
	return refObject(pkg, e)
}

func hasIndexStep(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			return true
		default:
			return false
		}
	}
}

// ---- hot-path sends ----

// checkHotpathSends flags sends inside //iprune:hotpath functions on
// channels nothing in the module receives from.
func checkHotpathSends(mp *ModulePass, pkg *Package, fd *ast.FuncDecl, idx *chanIndex) {
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok || !mp.Dirs.ObjHas(fn, "hotpath") {
		return
	}
	pass := mp.Pass(pkg)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		obj, ok := refObject(pkg, send.Chan)
		if !ok || idx.recvd[obj] {
			return true
		}
		pass.Reportf(send.Arrow,
			"hotpath send on %s but no statement in the module receives from it: the kernel blocks (or fills the buffer) with no consumer (add a receiver, or annotate //iprune:allow-conc)",
			refName(obj))
		return true
	})
}

// ---- spawn termination ----

// checkSpawns verifies every go statement in the function spawns a body
// with a provably reachable termination path.
func checkSpawns(mp *ModulePass, pkg *Package, fd *ast.FuncDecl, idx *chanIndex) {
	pass := mp.Pass(pkg)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body, alias := spawnedBody(mp, pkg, gs)
		if body == nil {
			return true // dynamic target: nothing provable, stay silent
		}
		checkTermination(pass, pkg, gs.Pos(), body, alias, idx)
		return true
	})
}

// spawnedBody resolves a go statement to the body it runs: the literal's
// body for `go func(){...}()`, the declaration's body for a static
// callee in the module. For the latter, channel-typed parameters are
// aliased to the argument objects at the spawn site so close evidence
// transfers through the call.
func spawnedBody(mp *ModulePass, pkg *Package, gs *ast.GoStmt) (*ast.BlockStmt, map[types.Object]types.Object) {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body, nil
	}
	fn := staticCallee(pkg.Info, gs.Call)
	if fn == nil || interfaceMethod(fn) {
		return nil, nil
	}
	_, decl := funcDeclOf(mp, fn)
	if decl == nil || decl.Body == nil {
		return nil, nil
	}
	alias := map[types.Object]types.Object{}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len() && i < len(gs.Call.Args); i++ {
		param := sig.Params().At(i)
		if _, ok := param.Type().Underlying().(*types.Chan); !ok {
			continue
		}
		if argObj, ok := refObject(pkg, gs.Call.Args[i]); ok {
			alias[param] = argObj
		}
	}
	return decl.Body, alias
}

// funcDeclOf finds the declaration of fn anywhere in the module.
func funcDeclOf(mp *ModulePass, fn *types.Func) (*Package, *ast.FuncDecl) {
	for _, pkg := range mp.Pkgs {
		if pkg.Types != fn.Pkg() {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && pkg.Info.Defs[fd.Name] == fn {
					return pkg, fd
				}
			}
		}
	}
	return nil, nil
}

// checkTermination reports loops in a spawned body that can never exit.
func checkTermination(pass *Pass, pkg *Package, spawn token.Pos, body *ast.BlockStmt, alias map[types.Object]types.Object, idx *chanIndex) {
	chanOf := func(e ast.Expr) (types.Object, bool) {
		obj, ok := refObject(pkg, e)
		if !ok {
			return nil, false
		}
		if a, ok := alias[obj]; ok {
			obj = a
		}
		return obj, true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its own goroutine discipline is checked at its own spawn
		}
		switch loop := n.(type) {
		case *ast.ForStmt:
			if loop.Cond != nil || loopExits(loop) {
				return true
			}
			pass.Reportf(spawn,
				"goroutine spawned here never terminates: the loop at %s has no reachable return or break (select on a ctx.Done()/close-signal channel and exit, or annotate //iprune:allow-conc)",
				pkg.Fset.Position(loop.Pos()))
		case *ast.RangeStmt:
			if !isChanType(pkg, loop.X) || loopExits(loop) {
				return true
			}
			obj, ok := chanOf(loop.X)
			if !ok {
				return true
			}
			if !idx.closed[obj] {
				pass.Reportf(spawn,
					"goroutine spawned here never terminates: it ranges over %s but nothing in the module closes it (close the channel when producers finish, or annotate //iprune:allow-conc)",
					refName(obj))
			}
		}
		return true
	})
}

// loopExits reports whether a loop body contains a statement that leaves
// the loop: a return, a break binding to the loop (unlabeled breaks
// inside nested selects/switches/loops bind to those instead), a goto,
// or a call that never returns (panic, os.Exit, runtime.Goexit).
func loopExits(loop ast.Stmt) bool {
	var body *ast.BlockStmt
	switch l := loop.(type) {
	case *ast.ForStmt:
		body = l.Body
	case *ast.RangeStmt:
		body = l.Body
	default:
		return true
	}
	return exitsScan(body, false)
}

// exitsScan walks a statement tree; shadowed means an unlabeled break
// here would bind to an inner breakable construct, not the loop under
// test. Returns/gotos/no-return calls exit regardless of nesting.
func exitsScan(n ast.Node, shadowed bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found || m == nil {
			return false
		}
		switch s := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
			return false
		case *ast.BranchStmt:
			switch s.Tok {
			case token.BREAK:
				if !shadowed || s.Label != nil {
					found = true
				}
			case token.GOTO:
				found = true // conservatively an exit
			}
			return false
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			if m == n {
				return true // the construct we were asked about
			}
			if exitsScan(m, true) {
				found = true
			}
			return false
		case *ast.CallExpr:
			if noReturnCall(s) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// noReturnCall recognizes calls that never return control.
func noReturnCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return (pkg.Name == "os" && fun.Sel.Name == "Exit") ||
				(pkg.Name == "runtime" && fun.Sel.Name == "Goexit") ||
				(pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"))
		}
	}
	return false
}
