package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatFlow and AllocFlow propagate the floatpurity and hotalloc
// invariants interprocedurally: a //iprune:hotpath function that *calls*
// a helper which (possibly transitively) performs float arithmetic or
// allocates has exactly the same problem as one that does so inline —
// the per-package analyzers just cannot see it, because the offending
// construct lives in another function or another package.
//
// Both passes share one machinery: a summary is computed for every
// function declaration in the module (does its own body use floats /
// allocate, ignoring sites blessed by allow-* directives; which
// module-internal functions does it statically call, and from inside a
// loop or not), the summaries are closed under the call graph to a
// fixpoint, and then every call edge leaving a hotpath function is
// checked against the callee's closure.
//
// Interface-method calls are devirtualized by class-hierarchy analysis
// restricted to interfaces *defined in this module*: the call fans out
// to every module type implementing the interface (obs.Tracer-shaped
// dispatch, including single-implementation interfaces), each edge
// labeled with the interface method it came from. Interfaces with more
// than devirtMaxImpls module implementations — wide plug-in surfaces
// like nn.Layer — and stdlib interfaces (io.Writer) are skipped: there
// the analysis stays deliberately under-approximate rather than noisy.
//
// A function carrying a func-level allow-float / allow-alloc blessing
// is an audited boundary: its own sites are exempt *and* its callees'
// sites do not propagate through it. Without that rule, devirtualizing
// a blessed wrapper (obs.StepClock.Emit) would re-surface everything
// behind it at every hot call site the blessing already vouched for.
//
// FloatFlow reports ANY call from a hotpath function to a float-reaching
// callee, but only inside the fixed-point kernel packages (floatpurity's
// scope): elsewhere in the module, float use is legitimate. AllocFlow
// reports only calls made from inside a loop (matching hotalloc's
// depth rule — a once-per-invocation allocation is amortized) and
// applies module-wide.

// FloatFlow propagates the fixed-point purity invariant over the call
// graph. Suppress at the call site with //iprune:allow-float <reason>.
var FloatFlow = &Analyzer{
	Name:      "floatflow",
	Doc:       "no calls from fixed-point hot paths to float-using functions (interprocedural)",
	Allow:     "allow-float",
	Scope:     FloatPurity.Scope,
	RunModule: runFloatFlow,
}

// AllocFlow propagates the hot-loop allocation invariant over the call
// graph. Suppress at the call site with //iprune:allow-alloc <reason>.
var AllocFlow = &Analyzer{
	Name:      "allocflow",
	Doc:       "no calls from hot-path loops to allocating functions (interprocedural)",
	Allow:     "allow-alloc",
	Scope:     func(path string) bool { return true },
	RunModule: runAllocFlow,
}

// devirtMaxImpls caps the fan-out of one devirtualized interface call:
// an interface with more module implementations than this is treated as
// an open plug-in surface and its calls stay unresolved.
const devirtMaxImpls = 6

// callEdge is one call site inside a summarized function; via is the
// interface method the edge was devirtualized from (nil for a static
// call).
type callEdge struct {
	callee *types.Func
	pos    token.Pos
	inLoop bool
	via    *types.Func
}

// ifaceCall is one interface-method call site awaiting devirtualization.
type ifaceCall struct {
	method *types.Func
	pos    token.Pos
	inLoop bool
}

// funcSummary is what the fixpoint knows about one function declaration.
type funcSummary struct {
	fn   *types.Func
	pkg  *Package
	decl *ast.FuncDecl

	selfFloat    token.Pos // first unsuppressed float site, or NoPos
	selfAlloc    token.Pos // first unsuppressed allocation site, or NoPos
	blessedFloat bool      // func-level allow-float: audited boundary
	blessedAlloc bool      // func-level allow-alloc: audited boundary
	edges        []callEdge
	ifaceCalls   []ifaceCall

	// Fixpoint results: the witness site and the call chain (excluding
	// this function) leading to it. floatSite/allocSite == NoPos means
	// unreachable.
	floatSite token.Pos
	floatPath []*types.Func
	allocSite token.Pos
	allocPath []*types.Func
}

// summarize builds and closes the summaries for every function
// declaration across the module's packages.
func summarize(mp *ModulePass) ([]*funcSummary, map[*types.Func]*funcSummary) {
	var order []*funcSummary
	index := map[*types.Func]*funcSummary{}
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				s := &funcSummary{fn: fn, pkg: pkg, decl: fd}
				s.build(mp.Dirs)
				order = append(order, s)
				index[fn] = s
			}
		}
	}
	devirtualize(mp, order, index)
	propagate(order, index)
	return order, index
}

// devirtualizer resolves interface-method calls to the module types
// implementing them via class-hierarchy analysis (see the package
// comment for the scoping rules). It is shared by the interprocedural
// flow passes and the regionbudget analyzer so every pass prices the
// same devirtualized call graph.
type devirtualizer struct {
	pkgs       []*Package
	modulePkgs map[*types.Package]bool
	hasBody    func(*types.Func) bool
	memo       map[*types.Func][]*types.Func
}

// newDevirtualizer builds a resolver over the module's packages; hasBody
// filters out implementations (promoted methods, externals) the caller
// has no summary for.
func newDevirtualizer(pkgs []*Package, hasBody func(*types.Func) bool) *devirtualizer {
	modulePkgs := make(map[*types.Package]bool, len(pkgs))
	for _, pkg := range pkgs {
		if pkg.Types != nil {
			modulePkgs[pkg.Types] = true
		}
	}
	return &devirtualizer{
		pkgs:       pkgs,
		modulePkgs: modulePkgs,
		hasBody:    hasBody,
		memo:       map[*types.Func][]*types.Func{},
	}
}

// resolve returns the module implementations of one interface method, or
// nil when the call must stay unresolved (non-module interface, or a
// plug-in surface wider than devirtMaxImpls).
func (dv *devirtualizer) resolve(m *types.Func) []*types.Func {
	if impls, ok := dv.memo[m]; ok {
		return impls
	}
	dv.memo[m] = nil
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	named, _ := sig.Recv().Type().(*types.Named)
	if named == nil || named.Obj().Pkg() == nil || !dv.modulePkgs[named.Obj().Pkg()] {
		return nil // anonymous or non-module interface: stay conservative
	}
	iface, ok := named.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var impls []*types.Func
	seen := map[*types.Func]bool{}
	for _, pkg := range dv.pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			T := tn.Type()
			if types.IsInterface(T) {
				continue
			}
			var recv types.Type
			switch {
			case types.Implements(T, iface):
				recv = T
			case types.Implements(types.NewPointer(T), iface):
				recv = types.NewPointer(T)
			default:
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, tn.Pkg(), m.Name())
			fn, ok := obj.(*types.Func)
			if !ok || seen[fn] {
				continue
			}
			if !dv.hasBody(fn) {
				continue // promoted from outside the module: no summary
			}
			seen[fn] = true
			impls = append(impls, fn)
		}
	}
	if len(impls) > devirtMaxImpls {
		impls = nil // open plug-in surface: leave unresolved
	}
	dv.memo[m] = impls
	return impls
}

// devirtualize resolves the recorded interface-method call sites into
// concrete call edges.
func devirtualize(mp *ModulePass, order []*funcSummary, index map[*types.Func]*funcSummary) {
	dv := newDevirtualizer(mp.Pkgs, func(fn *types.Func) bool {
		_, ok := index[fn]
		return ok
	})
	for _, s := range order {
		for _, ic := range s.ifaceCalls {
			for _, impl := range dv.resolve(ic.method) {
				s.edges = append(s.edges, callEdge{callee: impl, pos: ic.pos, inLoop: ic.inLoop, via: ic.method})
			}
		}
	}
}

// build walks one function body collecting unsuppressed float and
// allocation sites and all static module-internal call edges. Function
// literals fold into the enclosing declaration (they inherit its
// directives and run in its frame); loop depth carries into them, since
// a closure created in a loop runs at least as often as the loop body.
func (s *funcSummary) build(dirs *Directives) {
	pkg := s.pkg
	info := pkg.Info
	s.blessedFloat = dirs.ObjHas(s.fn, "allow-float")
	s.blessedAlloc = dirs.ObjHas(s.fn, "allow-alloc")
	blessedFloat, blessedAlloc := s.blessedFloat, s.blessedAlloc
	suppressed := func(pos token.Pos, allow string) bool {
		p := pkg.Fset.Position(pos)
		return dirs.FileHas(p.Filename, allow) ||
			dirs.LineHas(p.Filename, p.Line, allow) ||
			dirs.LineHas(p.Filename, p.Line-1, allow)
	}
	noteFloat := func(pos token.Pos) {
		if s.selfFloat == token.NoPos && !blessedFloat && !suppressed(pos, "allow-float") {
			s.selfFloat = pos
		}
	}
	noteAlloc := func(pos token.Pos) {
		if s.selfAlloc == token.NoPos && !blessedAlloc && !suppressed(pos, "allow-alloc") {
			s.selfAlloc = pos
		}
	}
	isFloat := func(e ast.Expr) bool { return isFloatType(info.Types[e].Type) }

	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		ast.Inspect(n, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.ForStmt:
				if node.Init != nil {
					walk(node.Init, depth)
				}
				if node.Cond != nil {
					walk(node.Cond, depth)
				}
				if node.Post != nil {
					walk(node.Post, depth)
				}
				walk(node.Body, depth+1)
				return false
			case *ast.RangeStmt:
				if node.X != nil {
					walk(node.X, depth)
				}
				walk(node.Body, depth+1)
				return false
			case *ast.FuncLit:
				noteAlloc(node.Pos()) // the closure value itself allocates
				walk(node.Body, depth)
				return false
			case *ast.BinaryExpr:
				if arithmeticOp(node.Op) && (isFloat(node.X) || isFloat(node.Y)) {
					noteFloat(node.OpPos)
				}
			case *ast.UnaryExpr:
				if (node.Op == token.SUB || node.Op == token.ADD) && isFloat(node.X) {
					noteFloat(node.OpPos)
				}
			case *ast.AssignStmt:
				if arithmeticAssign(node.Tok) {
					for _, lhs := range node.Lhs {
						if isFloat(lhs) {
							noteFloat(node.TokPos)
							break
						}
					}
				}
			case *ast.CompositeLit:
				if t := info.Types[node].Type; t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						noteAlloc(node.Pos())
					}
				}
			case *ast.CallExpr:
				if tv, ok := info.Types[node.Fun]; ok && tv.IsType() {
					if isFloatType(tv.Type) && len(node.Args) == 1 {
						noteFloat(node.Lparen)
					}
					return true // conversion, not a call
				}
				if id, ok := node.Fun.(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok {
						switch b.Name() {
						case "make", "new", "append":
							noteAlloc(node.Pos())
						}
						return true
					}
				}
				if callee := staticCallee(info, node); callee != nil {
					if interfaceMethod(callee) {
						s.ifaceCalls = append(s.ifaceCalls, ifaceCall{method: callee, pos: node.Pos(), inLoop: depth > 0})
					} else {
						s.edges = append(s.edges, callEdge{callee: callee, pos: node.Pos(), inLoop: depth > 0})
					}
				}
			}
			return true
		})
	}
	walk(s.decl.Body, 0)
}

// interfaceMethod reports whether fn is declared on an interface type —
// a call through it has no static callee.
func interfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isIface := sig.Recv().Type().Underlying().(*types.Interface)
	return isIface
}

// propagate closes the summaries under the call graph: a function
// reaches a float/alloc site if its own body has one, or any summarized
// callee reaches one — except through a func-level allow-* blessing,
// which marks an audited boundary that callers need not see past.
// Iteration order is fixed so witness chains are deterministic.
func propagate(order []*funcSummary, index map[*types.Func]*funcSummary) {
	for _, s := range order {
		s.floatSite, s.allocSite = s.selfFloat, s.selfAlloc
	}
	for changed := true; changed; {
		changed = false
		for _, s := range order {
			for _, e := range s.edges {
				c, ok := index[e.callee]
				if !ok {
					continue
				}
				if !s.blessedFloat && s.floatSite == token.NoPos && c.floatSite != token.NoPos {
					s.floatSite = c.floatSite
					s.floatPath = append([]*types.Func{c.fn}, c.floatPath...)
					changed = true
				}
				if !s.blessedAlloc && s.allocSite == token.NoPos && c.allocSite != token.NoPos {
					s.allocSite = c.allocSite
					s.allocPath = append([]*types.Func{c.fn}, c.allocPath...)
					changed = true
				}
			}
		}
	}
}

func runFloatFlow(mp *ModulePass) {
	order, index := summarize(mp)
	for _, s := range order {
		if !mp.Dirs.ObjHas(s.fn, "hotpath") {
			continue
		}
		pass := mp.Pass(s.pkg)
		for _, e := range s.edges {
			c, ok := index[e.callee]
			if !ok || c.floatSite == token.NoPos {
				continue
			}
			pass.Reportf(e.pos, "fixed-point hot path calls %s, which %s float arithmetic at %s",
				edgeName(e, c), reachVerb(c.floatPath), s.pkg.Fset.Position(c.floatSite))
		}
	}
}

func runAllocFlow(mp *ModulePass) {
	order, index := summarize(mp)
	for _, s := range order {
		if !mp.Dirs.ObjHas(s.fn, "hotpath") {
			continue
		}
		pass := mp.Pass(s.pkg)
		for _, e := range s.edges {
			if !e.inLoop {
				continue // once-per-invocation calls are amortized
			}
			c, ok := index[e.callee]
			if !ok || c.allocSite == token.NoPos {
				continue
			}
			pass.Reportf(e.pos, "hot loop calls %s, which %s an allocation at %s",
				edgeName(e, c), reachVerb(c.allocPath), s.pkg.Fset.Position(c.allocSite))
		}
	}
}

// edgeName renders the callee of one edge, noting the interface method
// a devirtualized edge came from.
func edgeName(e callEdge, c *funcSummary) string {
	name := funcName(c.fn)
	if e.via != nil {
		name += " (devirtualized from " + funcName(e.via) + ")"
	}
	return name
}

// reachVerb phrases how the callee reaches the witness site: directly,
// or through a chain of further calls.
func reachVerb(path []*types.Func) string {
	if len(path) == 0 {
		return "performs"
	}
	names := make([]string, len(path))
	for i, fn := range path {
		names[i] = funcName(fn)
	}
	return "reaches (via " + strings.Join(names, " -> ") + ")"
}

// funcName renders a function or method with its receiver type.
func funcName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}
