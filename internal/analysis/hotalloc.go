package analysis

import (
	"go/ast"
	"go/types"
)

// HotAlloc flags heap-allocating constructs inside loops of functions
// marked //iprune:hotpath: make/new/append calls, map composite
// literals, and closures. These are the per-inference inner kernels the
// benchmarks measure; an allocation that creeps into one of their loops
// turns a tight counting/MAC kernel into a GC workload and skews every
// latency number downstream. Preallocate outside the loop, or annotate
// the site with //iprune:allow-alloc <reason> when the allocation is
// provably amortized (e.g. append into a slice sized up front).
var HotAlloc = &Analyzer{
	Name:  "hotalloc",
	Doc:   "no allocations inside loops of //iprune:hotpath functions",
	Allow: "allow-alloc",
	Scope: func(path string) bool { return true },
	Run:   runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !pass.FuncHas(fd, "hotpath") {
				continue
			}
			checkHotBody(pass, fd.Body, 0)
		}
	}
}

// checkHotBody walks a statement tree tracking loop depth; allocation
// sites at depth > 0 are reported. Closure bodies keep the depth of the
// loop they are created in: the closure runs (at least) as often as it
// is allocated.
func checkHotBody(pass *Pass, n ast.Node, depth int) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.ForStmt:
			if node.Init != nil {
				checkHotBody(pass, node.Init, depth)
			}
			checkHotBody(pass, node.Body, depth+1)
			return false
		case *ast.RangeStmt:
			checkHotBody(pass, node.Body, depth+1)
			return false
		case *ast.FuncLit:
			if depth > 0 {
				pass.Reportf(node.Pos(), "closure allocated in hot loop")
			}
			checkHotBody(pass, node.Body, depth)
			return false
		case *ast.CallExpr:
			if depth == 0 {
				return true
			}
			if id, ok := node.Fun.(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new", "append":
						pass.Reportf(node.Pos(), "%s in hot loop (preallocate outside the loop)", b.Name())
					}
				}
			}
		case *ast.CompositeLit:
			if depth == 0 {
				return true
			}
			if t := pass.Info.Types[node].Type; t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(node.Pos(), "map literal allocated in hot loop")
				}
			}
		}
		return true
	})
}
