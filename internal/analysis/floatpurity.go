package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatPurity flags floating-point arithmetic and conversions to float
// types inside the fixed-point kernel packages. The device computes in
// Q1.15 (DESIGN.md): a float sneaking into internal/fixed, internal/tile,
// internal/sparse or the internal/hawaii engine silently breaks the
// MSP430 fidelity claim, because the simulated numerics stop matching
// what the LEA would produce. Calibration, quantization boundaries and
// reporting code opt out with //iprune:allow-float <reason>.
var FloatPurity = &Analyzer{
	Name:  "floatpurity",
	Doc:   "forbid float arithmetic and conversions in fixed-point kernel packages",
	Allow: "allow-float",
	Scope: func(path string) bool {
		switch path {
		case "iprune/internal/fixed", "iprune/internal/tile",
			"iprune/internal/sparse", "iprune/internal/hawaii":
			return true
		}
		return false
	},
	Run: runFloatPurity,
}

func runFloatPurity(pass *Pass) {
	// One finding per source line keeps a compound expression like
	// a*b + c from reporting every sub-expression.
	reported := map[token.Position]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		p := pass.Fset.Position(pos)
		key := token.Position{Filename: p.Filename, Line: p.Line}
		if reported[key] {
			return
		}
		reported[key] = true
		pass.Reportf(pos, format, args...)
	}
	isFloat := func(e ast.Expr) bool {
		return isFloatType(pass.Info.Types[e].Type)
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if arithmeticOp(n.Op) && (isFloat(n.X) || isFloat(n.Y)) {
					report(n.OpPos, "float arithmetic (%s) in fixed-point hot path", n.Op)
				}
			case *ast.UnaryExpr:
				if (n.Op == token.SUB || n.Op == token.ADD) && isFloat(n.X) {
					report(n.OpPos, "float arithmetic (%s) in fixed-point hot path", n.Op)
				}
			case *ast.AssignStmt:
				if arithmeticAssign(n.Tok) {
					for _, lhs := range n.Lhs {
						if isFloat(lhs) {
							report(n.TokPos, "float arithmetic (%s) in fixed-point hot path", n.Tok)
							break
						}
					}
				}
			case *ast.CallExpr:
				tv, ok := pass.Info.Types[n.Fun]
				if ok && tv.IsType() && isFloatType(tv.Type) && len(n.Args) == 1 {
					report(n.Lparen, "conversion to %s in fixed-point hot path", tv.Type)
				}
			}
			return true
		})
	}
}

func arithmeticOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
		return true
	}
	return false
}

func arithmeticAssign(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0 && !strings.Contains(b.Name(), "complex")
}
