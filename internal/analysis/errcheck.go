package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrCheck flags call statements that silently discard an error result.
// The repro pipeline writes models, CSVs and reports to disk; a dropped
// error there means a truncated artifact is presented as a successful
// paper reproduction. Printing helpers whose error is documented to be
// unreachable (fmt printing to stdout/stderr, strings.Builder and
// bytes.Buffer writes) are excluded; anything else either gets handled
// or carries an explicit //iprune:allow-err <reason>.
var ErrCheck = &Analyzer{
	Name:  "errcheck",
	Doc:   "error returns must not be silently discarded",
	Allow: "allow-err",
	Scope: func(path string) bool {
		return strings.HasPrefix(path, "iprune/internal/") || strings.HasPrefix(path, "iprune/cmd/")
	},
	Run: runErrCheck,
}

func runErrCheck(pass *Pass) {
	check := func(call *ast.CallExpr) {
		if call == nil || !returnsError(pass, call) || excludedCall(pass, call) {
			return
		}
		pass.Reportf(call.Pos(), "error return of %s is discarded (handle it or assign to _ explicitly)", calleeName(pass, call))
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ := n.X.(*ast.CallExpr)
				check(call)
			case *ast.DeferStmt:
				check(n.Call)
			case *ast.GoStmt:
				check(n.Call)
			case *ast.AssignStmt:
				checkBlankClose(pass, n)
			}
			return true
		})
	}
}

// checkBlankClose flags `_ = x.Close()`. A plain blank assignment is an
// accepted explicit discard for most calls, but Close is where buffered
// sinks surface their flush error: discarding it — even visibly — lets a
// truncated trace or CSV artifact pass as a successful run. Such sites
// must handle the error (see obs.WriteFile) or carry //iprune:allow-err.
func checkBlankClose(pass *Pass, n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN || len(n.Rhs) != 1 {
		return
	}
	for _, lhs := range n.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			return
		}
	}
	call, ok := n.Rhs[0].(*ast.CallExpr)
	if !ok || !returnsError(pass, call) {
		return
	}
	fn := calledFunc(pass, call)
	if fn == nil || fn.Name() != "Close" {
		return
	}
	pass.Reportf(call.Pos(), "error return of %s is blank-discarded: Close surfaces buffered-write failures, so dropping it can hide a truncated artifact (handle it or annotate //iprune:allow-err)", calleeName(pass, call))
}

// returnsError reports whether the call yields an error (alone or as part
// of a result tuple). Conversions and builtins never do.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// calleeName renders the called function for the diagnostic.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	if fn := calledFunc(pass, call); fn != nil {
		return fn.FullName()
	}
	return "call"
}

func calledFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

// excludedCall applies the never-fails allowlist.
func excludedCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calledFunc(pass, call)
	if fn == nil {
		return false
	}
	name := fn.FullName()
	switch name {
	case "fmt.Print", "fmt.Printf", "fmt.Println":
		return true
	case "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
		// Writing to the process's own stdio or an in-memory buffer
		// never produces an error worth handling; other writers do.
		if len(call.Args) == 0 {
			return false
		}
		if t := pass.Info.Types[call.Args[0]].Type; t != nil {
			switch t.String() {
			case "*strings.Builder", "*bytes.Buffer":
				return true
			}
		}
		if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "os" &&
				(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
				return true
			}
		}
		return false
	}
	if strings.HasPrefix(name, "(*strings.Builder).Write") ||
		strings.HasPrefix(name, "(*bytes.Buffer).Write") {
		return true
	}
	return false
}
