// Package analysis is a small static-analysis framework for this
// repository, built only on the standard library's go/parser, go/ast and
// go/types (no golang.org/x/tools dependency). It enforces the invariants
// the Go compiler cannot see but the paper's claims rest on:
//
//   - floatpurity: inference hot paths stay in Q1.15 fixed point — no
//     float arithmetic or conversions in the kernel packages;
//   - nvmdiscipline: stores to FRAM-backed state and energy counters flow
//     through the hawaii progress-preservation discipline API;
//   - hotalloc: functions marked //iprune:hotpath do not allocate inside
//     loops;
//   - errcheck: error returns are not silently discarded;
//   - warhazard: no write-after-read hazard on NVM state between
//     preservation points (CFG + dataflow, see flow/ and warhazard.go);
//   - floatflow / allocflow: the float-purity and hot-alloc invariants
//     propagated interprocedurally over the module call graph;
//   - regionbudget: every preserve-to-preserve region in a hot path has
//     a static worst-case cost within the power-cycle energy budget
//     (trip-count inference + interprocedural summaries, see
//     regionbudget.go).
//
// Analyzers report findings through Pass.Reportf, which consults the
// directive index (see directives.go) so that //iprune:allow-* escape
// hatches suppress findings at file, function or line granularity.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, resolved to a concrete source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package, or — when
// RunModule is set — over every loaded package at once (for
// interprocedural passes that need the whole call graph).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics.
	Name string
	// Doc is a one-line description.
	Doc string
	// Allow is the directive suffix that suppresses this analyzer's
	// findings (e.g. "allow-float"); empty means no escape hatch.
	Allow string
	// Scope reports whether the analyzer applies to a package import
	// path: per-package analyzers are not run outside it, module-level
	// analyzers do not *report* outside it (their summaries still cover
	// every package). The driver consults it; running an analyzer
	// directly (as the fixture harness does) bypasses it.
	Scope func(pkgPath string) bool
	// Run performs a per-package check, reporting via pass.Reportf.
	// Exactly one of Run and RunModule is set.
	Run func(pass *Pass)
	// RunModule performs a whole-module check across every loaded
	// package, reporting via mp.Pass(pkg).Reportf.
	RunModule func(mp *ModulePass)
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *Package
	Info  *types.Info
	Dirs  *Directives
	diags *[]Diagnostic
	allow string // directive suffix suppressing this analyzer
	name  string
}

// Reportf records a finding unless a matching allow directive covers the
// position (same line, the line above, the enclosing function's doc
// comment, or the file header).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow != "" && p.suppressed(pos, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) suppressed(pos token.Pos, position token.Position) bool {
	if p.Dirs.FileHas(position.Filename, p.allow) {
		return true
	}
	if p.Dirs.LineHas(position.Filename, position.Line, p.allow) ||
		p.Dirs.LineHas(position.Filename, position.Line-1, p.allow) {
		return true
	}
	if decl := p.EnclosingFunc(pos); decl != nil {
		if obj := p.Info.Defs[decl.Name]; obj != nil && p.Dirs.ObjHas(obj, p.allow) {
			return true
		}
	}
	return false
}

// EnclosingFunc returns the innermost function declaration whose body
// spans pos, or nil. Function literals inherit their enclosing
// declaration's directives, so the declaration is what matters.
func (p *Pass) EnclosingFunc(pos token.Pos) *ast.FuncDecl {
	for _, f := range p.Pkg.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}

// FuncHas reports whether the declaration carries the directive.
func (p *Pass) FuncHas(decl *ast.FuncDecl, name string) bool {
	obj := p.Info.Defs[decl.Name]
	return obj != nil && p.Dirs.ObjHas(obj, name)
}

// ModulePass carries one module-level analyzer run over every loaded
// package. Analyses that need the whole call graph iterate mp.Pkgs for
// summaries and report through the per-package Pass.
type ModulePass struct {
	Pkgs []*Package
	Dirs *Directives

	diags  *[]Diagnostic
	allow  string
	name   string
	scope  func(string) bool
	only   map[*Package]bool // when non-nil, keep reports only for these packages
	passes map[*Package]*Pass
}

// Pass returns the reporting pass for one of the module's packages.
// When the analyzer's Scope excludes the package — or a cache-driven
// run restricts reporting to the re-analyzed packages (only) — reports
// through the returned pass are dropped (summaries over excluded
// packages still feed included findings).
func (mp *ModulePass) Pass(pkg *Package) *Pass {
	if p, ok := mp.passes[pkg]; ok {
		return p
	}
	diags := mp.diags
	if (mp.scope != nil && !mp.scope(pkg.Path)) || (mp.only != nil && !mp.only[pkg]) {
		diags = &[]Diagnostic{} // discard
	}
	p := &Pass{
		Fset:  pkg.Fset,
		Pkg:   pkg,
		Info:  pkg.Info,
		Dirs:  mp.Dirs,
		diags: diags,
		allow: mp.allow,
		name:  mp.name,
	}
	mp.passes[pkg] = p
	return p
}

// Run executes the analyzers over the packages and returns all findings
// sorted by position. Per-package analyzers run on each package inside
// their Scope; module-level analyzers run once over all packages.
// Packages that failed to type-check are skipped (the loader already
// surfaced their errors as diagnostics). Run is the one-worker case of
// RunParallel (see parallel.go); both share one task/merge path, so
// their output is identical by construction.
func Run(analyzers []*Analyzer, pkgs []*Package, dirs *Directives) []Diagnostic {
	return RunParallel(analyzers, pkgs, dirs, 1)
}

// RunOne runs a single analyzer over one package, ignoring its Scope.
// The fixture harness uses it to exercise analyzers on testdata packages
// whose import paths the Scope would reject. A module-level analyzer is
// run with that package as the whole module.
func RunOne(a *Analyzer, pkg *Package, dirs *Directives) []Diagnostic {
	if a.RunModule != nil {
		var diags []Diagnostic
		mp := &ModulePass{
			Pkgs:   []*Package{pkg},
			Dirs:   dirs,
			diags:  &diags,
			allow:  a.Allow,
			name:   a.Name,
			passes: map[*Package]*Pass{},
		}
		a.RunModule(mp)
		return diags
	}
	return runPkg(a, pkg, dirs)
}

func runPkg(a *Analyzer, pkg *Package, dirs *Directives) []Diagnostic {
	var diags []Diagnostic
	pass := &Pass{
		Fset:  pkg.Fset,
		Pkg:   pkg,
		Info:  pkg.Info,
		Dirs:  dirs,
		diags: &diags,
		allow: a.Allow,
		name:  a.Name,
	}
	a.Run(pass)
	return diags
}

// Sort orders diagnostics by file, line, column, analyzer, message. The
// message tiebreaker makes the order total, so identical finding sets
// serialize identically no matter how the producing tasks were
// scheduled — the parallel driver's byte-identity rests on it.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// All returns the project analyzers in their canonical order: the four
// per-package syntactic checks, the CFG/dataflow WAR-hazard and
// concurrency-safety passes, and the three interprocedural call-graph
// passes.
func All() []*Analyzer {
	return []*Analyzer{FloatPurity, NVMDiscipline, HotAlloc, ErrCheck, WARHazard, Parsafe, FloatFlow, AllocFlow, RegionBudget, LockOrder, Goleak}
}
