package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"iprune/internal/analysis/flow"
)

// Parsafe checks that goroutines do not undermine the intermittence
// story. Concurrency interacts with checkpointing in ways the other
// analyzers cannot see: a goroutine that touches FRAM-backed state races
// the preservation discipline (a checkpoint may capture a half-updated
// location, and re-execution after a power failure re-spawns work whose
// first run already mutated NVM), and a spawn inside a //iprune:hotpath
// kernel adds scheduling cost the per-power-cycle energy envelope does
// not budget for.
//
// Three rules:
//
//   - No goroutine launches inside //iprune:hotpath functions. The hot
//     kernels are sized to finish within one power cycle; spawn cost and
//     scheduling jitter break that accounting.
//
//   - A `go func() { … }()` closure that accesses //iprune:nvm state
//     (directly or through a derived alias) must perform a
//     synchronization step before the access: a sync.Mutex/RWMutex
//     Lock/RLock, or a channel send/receive that orders it against the
//     spawner. An unsynchronized access races the checkpoint walk.
//
//   - Function-local sync.WaitGroup discipline: every Add must have a
//     reachable Wait (otherwise spawned work can outlive the
//     preservation interval it was accounted to), and a spawned closure
//     that uses the WaitGroup must call Done — deferred, so panic and
//     early-return paths still release the Wait. WaitGroups whose
//     address escapes the function are skipped; the analysis cannot see
//     their other users.
//
// Sites opt out with //iprune:allow-par <reason>.
var Parsafe = &Analyzer{
	Name:  "parsafe",
	Doc:   "goroutines do not race NVM state, hot paths, or WaitGroup accounting",
	Allow: "allow-par",
	Scope: func(path string) bool { return true },
	Run:   runParsafe,
}

func runParsafe(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pf := &parsafeFunc{
				pass: pass,
				wf: &warFunc{
					pass:    pass,
					derived: map[types.Object]warKey{},
					display: map[warKey]string{},
				},
			}
			pf.wf.collectDerived(fd.Body)
			pf.check(fd)
		}
	}
}

// parsafeFunc analyzes one function declaration. It borrows the
// warhazard analyzer's NVM-location resolver (warFunc.nvmRef) so both
// analyzers agree on what counts as intermittence-critical state.
type parsafeFunc struct {
	pass *Pass
	wf   *warFunc
}

func (pf *parsafeFunc) check(fd *ast.FuncDecl) {
	hot := pf.pass.FuncHas(fd, "hotpath")
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if hot {
			pf.pass.Reportf(g.Pos(),
				"goroutine launched inside //iprune:hotpath function %s: spawn and scheduling costs are outside the kernel's per-power-cycle energy envelope (move the spawn out of the hot path or annotate //iprune:allow-par)",
				fd.Name.Name)
		}
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			pf.checkCapture(lit)
		}
		return true
	})
	pf.checkWaitGroups(fd)
}

// checkCapture walks a spawned closure's body in source order, tracking
// whether a synchronization event has happened yet; an NVM access before
// the first one is a race with the checkpoint discipline.
func (pf *parsafeFunc) checkCapture(lit *ast.FuncLit) {
	synced := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested spawn targets get their own visit
		case *ast.SendStmt:
			synced = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				synced = true
			}
		case *ast.CallExpr:
			if fn := staticCallee(pf.pass.Info, n); fn != nil && isSyncAcquire(fn) {
				synced = true
			}
		case ast.Expr:
			if key, disp, ok := pf.wf.nvmRef(n); ok {
				if !synced {
					pf.pass.Reportf(n.Pos(),
						"goroutine captures NVM-backed %s with no synchronization before the access: a concurrent access races checkpointing and re-execution can observe torn state (guard with a mutex or channel handoff, or annotate //iprune:allow-par)",
						disp)
				}
				_ = key
				return false // one report per access path
			}
		}
		return true
	})
}

// isSyncAcquire reports whether fn is a blocking acquisition from the
// sync package (Mutex.Lock, RWMutex.Lock/RLock) that orders the
// goroutine against its spawner.
func isSyncAcquire(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	return fn.Name() == "Lock" || fn.Name() == "RLock"
}

// checkWaitGroups enforces the Add/Wait/Done discipline for
// function-local sync.WaitGroup variables.
func (pf *parsafeFunc) checkWaitGroups(fd *ast.FuncDecl) {
	wgs := pf.localWaitGroups(fd.Body)
	if len(wgs) == 0 {
		return
	}
	g := flow.Build(fd.Body)
	for _, obj := range wgs {
		pf.checkAddWait(fd, g, obj)
		pf.checkSpawnedDone(fd.Body, obj)
	}
}

// localWaitGroups finds value-typed sync.WaitGroup locals whose address
// never escapes beyond their own method calls.
func (pf *parsafeFunc) localWaitGroups(body *ast.BlockStmt) []types.Object {
	var wgs []types.Object
	escaped := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pf.pass.Info.Defs[n]; obj != nil {
				if v, ok := obj.(*types.Var); ok && !v.IsField() && isWaitGroup(v.Type()) {
					wgs = append(wgs, obj)
				}
			}
		case *ast.UnaryExpr:
			// &wg hands the WaitGroup to code this function cannot see.
			if n.Op == token.AND {
				if obj := pf.wf.identObj(n.X); obj != nil {
					escaped[obj] = true
				}
			}
		}
		return true
	})
	kept := wgs[:0]
	for _, obj := range wgs {
		if !escaped[obj] {
			kept = append(kept, obj)
		}
	}
	return kept
}

func isWaitGroup(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// wgSite is one wg.<method> call site in the CFG.
type wgSite struct {
	block *flow.Block
	idx   int // node index within the block
	pos   token.Pos
}

// checkAddWait reports Add calls from which no Wait is reachable in the
// function's CFG. Calls inside function literals belong to the spawned
// goroutine and do not count for either side; a deferred Wait runs at
// function exit and so satisfies every Add.
func (pf *parsafeFunc) checkAddWait(fd *ast.FuncDecl, g *flow.Graph, obj types.Object) {
	var adds []wgSite
	waits := map[*flow.Block][]int{}
	deferredWait := false
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if ds, ok := n.(*ast.DeferStmt); ok {
				if m, ok := pf.wgMethod(ds.Call, obj); ok && m == "Wait" {
					deferredWait = true
				}
				continue
			}
			pf.scanCalls(n, func(call *ast.CallExpr) {
				m, ok := pf.wgMethod(call, obj)
				if !ok {
					return
				}
				switch m {
				case "Add":
					adds = append(adds, wgSite{block: b, idx: i, pos: call.Pos()})
				case "Wait":
					waits[b] = append(waits[b], i)
				}
			})
		}
	}
	if len(adds) == 0 || deferredWait {
		return
	}
	for _, add := range adds {
		if !pf.waitReachable(add, waits) {
			pf.pass.Reportf(add.pos,
				"sync.WaitGroup %s: no Wait is reachable after this Add, so spawned goroutines can outlive the interval that accounted for them (call %s.Wait before committing, or annotate //iprune:allow-par)",
				obj.Name(), obj.Name())
		}
	}
}

// waitReachable reports whether any Wait site lies after add in its own
// block or in a CFG-reachable successor block.
func (pf *parsafeFunc) waitReachable(add wgSite, waits map[*flow.Block][]int) bool {
	for _, wi := range waits[add.block] {
		if wi > add.idx {
			return true
		}
	}
	seen := map[*flow.Block]bool{}
	queue := append([]*flow.Block{}, add.block.Succs...)
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b] {
			continue
		}
		seen[b] = true
		if len(waits[b]) > 0 {
			return true
		}
		queue = append(queue, b.Succs...)
	}
	return false
}

// checkSpawnedDone checks every spawned closure that uses the WaitGroup:
// it must call Done, and the Done must be deferred so panic and
// early-return paths still release the Wait.
func (pf *parsafeFunc) checkSpawnedDone(body *ast.BlockStmt, obj types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok || !pf.usesObj(lit.Body, obj) {
			return true
		}
		deferred, plain := false, false
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				if name, ok := pf.wgMethod(m.Call, obj); ok && name == "Done" {
					deferred = true
					return false
				}
			case *ast.CallExpr:
				if name, ok := pf.wgMethod(m, obj); ok && name == "Done" {
					plain = true
				}
			}
			return true
		})
		switch {
		case !deferred && !plain:
			pf.pass.Reportf(g.Pos(),
				"goroutine uses sync.WaitGroup %s but never calls %s.Done: the matching Wait blocks forever and the power budget stalls with it",
				obj.Name(), obj.Name())
		case !deferred:
			pf.pass.Reportf(g.Pos(),
				"%s.Done is not deferred: a panic or early return in the goroutine skips it and the matching Wait blocks forever (use defer %s.Done())",
				obj.Name(), obj.Name())
		}
		return true
	})
}

// usesObj reports whether the node references obj.
func (pf *parsafeFunc) usesObj(n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pf.pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// wgMethod matches call as obj.<Add|Wait|Done>(...).
func (pf *parsafeFunc) wgMethod(call *ast.CallExpr, obj types.Object) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pf.wf.identObj(sel.X) != obj {
		return "", false
	}
	switch sel.Sel.Name {
	case "Add", "Wait", "Done":
		return sel.Sel.Name, true
	}
	return "", false
}

// scanCalls visits every call expression in n, skipping function
// literals (their bodies run on another goroutine and are checked by
// the spawn rules, not the spawner's CFG) and RangeStmt nodes (in the
// CFG they stand for the per-iteration binding only; the loop body's
// statements live in their own blocks and would be double-counted).
func (pf *parsafeFunc) scanCalls(n ast.Node, visit func(*ast.CallExpr)) {
	if _, ok := n.(*ast.RangeStmt); ok {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := m.(*ast.CallExpr); ok {
			visit(c)
		}
		return true
	})
}
