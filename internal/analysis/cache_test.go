package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// cacheModule is a three-package module with a stable finding in each
// leaf: kernel (floatpurity finding) imports helper (clean), and other
// (hotalloc finding) stands alone. No interfaces, so the
// implementation-closure hash stays constant across edits.
func cacheModule(t *testing.T) string {
	t.Helper()
	return writeModule(t, "iprune", map[string]string{
		"internal/fixed/helper.go": "package fixed\n\nfunc Clamp(x int16) int16 { return x }\n",
		"internal/tile/kernel.go": "package tile\n\nimport \"iprune/internal/fixed\"\n\n" +
			"func Scale(x float64) float64 { return x * 1.5 }\n\n" +
			"func Use(x int16) int16 { return fixed.Clamp(x) }\n",
		"internal/nn/other.go": "package nn\n\n//iprune:allow-budget test kernel, cost not under test\n//iprune:hotpath\nfunc Hot(xs []int) []int {\n" +
			"\tfor range xs {\n\t\txs = append(xs, 1)\n\t}\n\treturn xs\n}\n",
	})
}

func runCachedOnce(t *testing.T, dir string, c *Cache) []Diagnostic {
	t.Helper()
	l, pkgs := loadModule(t, dir, "./...")
	return RunCached(All(), pkgs, l.Directives(), c, l.Packages())
}

func TestCacheColdWarmIdentical(t *testing.T) {
	dir := cacheModule(t)
	cdir := filepath.Join(dir, ".cache")

	cold := &Cache{Dir: cdir, Root: dir}
	coldDiags := runCachedOnce(t, dir, cold)
	if len(coldDiags) == 0 {
		t.Fatal("cold run found nothing; the module should have findings")
	}
	if cold.Stats.Hits != 0 || cold.Stats.Misses == 0 {
		t.Fatalf("cold run stats = %+v, want all misses", cold.Stats)
	}

	warm := &Cache{Dir: cdir, Root: dir}
	warmDiags := runCachedOnce(t, dir, warm)
	if warm.Stats.Misses != 0 {
		t.Fatalf("warm run re-analyzed %v, want none", warm.Stats.Reanalyzed)
	}
	if warm.Stats.Hits == 0 {
		t.Fatal("warm run had no hits")
	}
	if !reflect.DeepEqual(coldDiags, warmDiags) {
		t.Fatalf("warm diagnostics differ from cold:\ncold: %v\nwarm: %v", coldDiags, warmDiags)
	}
}

func TestCacheUncachedEquivalence(t *testing.T) {
	// RunCached must produce exactly what Run produces, cold and warm.
	dir := cacheModule(t)
	l, pkgs := loadModule(t, dir, "./...")
	plain := Run(All(), pkgs, l.Directives())

	c := &Cache{Dir: filepath.Join(dir, ".cache"), Root: dir}
	if cached := runCachedOnce(t, dir, c); !reflect.DeepEqual(plain, cached) {
		t.Fatalf("cold cached run differs from Run:\nplain: %v\ncached: %v", plain, cached)
	}
	c2 := &Cache{Dir: c.Dir, Root: dir}
	if cached := runCachedOnce(t, dir, c2); !reflect.DeepEqual(plain, cached) {
		t.Fatalf("warm cached run differs from Run:\nplain: %v\ncached: %v", plain, cached)
	}
}

func TestCacheInvalidation(t *testing.T) {
	dir := cacheModule(t)
	cdir := filepath.Join(dir, ".cache")
	runCachedOnce(t, dir, &Cache{Dir: cdir, Root: dir})

	// Editing a leaf package re-analyzes only that package.
	leaf := filepath.Join(dir, "internal/nn/other.go")
	appendLine(t, leaf, "\nfunc Extra() int { return 1 }\n")
	c := &Cache{Dir: cdir, Root: dir}
	runCachedOnce(t, dir, c)
	if want := []string{"iprune/internal/nn"}; !reflect.DeepEqual(c.Stats.Reanalyzed, want) {
		t.Fatalf("leaf edit re-analyzed %v, want %v", c.Stats.Reanalyzed, want)
	}

	// Editing a dependency re-analyzes it and its importers, but not
	// the unrelated package.
	depFile := filepath.Join(dir, "internal/fixed/helper.go")
	appendLine(t, depFile, "\nfunc Zero() int16 { return 0 }\n")
	c = &Cache{Dir: cdir, Root: dir}
	runCachedOnce(t, dir, c)
	want := []string{"iprune/internal/fixed", "iprune/internal/tile"}
	if !reflect.DeepEqual(c.Stats.Reanalyzed, want) {
		t.Fatalf("dependency edit re-analyzed %v, want %v", c.Stats.Reanalyzed, want)
	}
}

func TestCacheInterproceduralInvalidation(t *testing.T) {
	// A dependency body change that creates a finding in its importer
	// must surface on the warm run: the importer's key covers the
	// dependency's files.
	dir := writeModule(t, "iprune", map[string]string{
		"internal/fixed/helper.go": "package fixed\n\nfunc Grow(xs []int) []int { return xs }\n",
		"internal/tile/kernel.go": "package tile\n\nimport \"iprune/internal/fixed\"\n\n" +
			"//iprune:allow-budget test kernel, cost not under test\n//iprune:hotpath\nfunc Hot(xs []int) []int {\n" +
			"\tfor range xs {\n\t\txs = fixed.Grow(xs)\n\t}\n\treturn xs\n}\n",
	})
	cdir := filepath.Join(dir, ".cache")
	if diags := runCachedOnce(t, dir, &Cache{Dir: cdir, Root: dir}); len(diags) != 0 {
		t.Fatalf("clean module reported %v", diags)
	}

	// Grow now allocates: the hot loop in tile must light up.
	helper := filepath.Join(dir, "internal/fixed/helper.go")
	if err := os.WriteFile(helper,
		[]byte("package fixed\n\nfunc Grow(xs []int) []int { return append(xs, 0) }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := &Cache{Dir: cdir, Root: dir}
	diags := runCachedOnce(t, dir, c)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "an allocation") {
		t.Fatalf("allocating dependency not detected through the cache: %v", diags)
	}
	if c.Stats.Hits != 0 {
		t.Fatalf("stale entries served after dependency edit: %+v", c.Stats)
	}
}

func appendLine(t *testing.T, path, text string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, []byte(text)...), 0o644); err != nil {
		t.Fatal(err)
	}
}
