// Package regionbudget exercises the static region-cost analyzer: trip
// counts, preserve boundaries, declared budgets, suppression and the
// devirtualized interprocedural summaries.
package regionbudget

// commit is the region boundary: an atomic preservation primitive.
//
//iprune:preserve
func commit() {}

// unbounded runs data-dependent work with no preservation point: the
// region from the caller's last preserve spans the whole loop, and no
// static bound exists.
//
//iprune:hotpath
func unbounded(n int) int { // want `cannot statically bound the worst-case preserve-to-preserve region in unbounded`
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

// eventLoop preserves every iteration: even with an unknown trip count,
// the worst region is the bounded wraparound tail+head, so the function
// is clean.
//
//iprune:hotpath
func eventLoop(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
		commit()
	}
	return s
}

// nestedCounted's trip-count product (100×100, ~40k ops ≈ 8uJ) fits the
// default power-cycle budget comfortably.
//
//iprune:hotpath
func nestedCounted() int {
	s := 0
	for i := 0; i < 100; i++ {
		for j := 0; j < 100; j++ {
			s += i * j
		}
	}
	return s
}

// overDefault's 200³ nest needs ~40M ops ≈ 7.5mJ, far past the 104uJ
// one power cycle delivers.
//
//iprune:hotpath
func overDefault() int { // want `worst-case preserve-to-preserve region in overDefault needs .* exceeding one power cycle's buffer energy`
	s := 0
	for i := 0; i < 200; i++ {
		for j := 0; j < 200; j++ {
			for k := 0; k < 200; k++ {
				s += i + j + k
			}
		}
	}
	return s
}

// exactlyMet pins the op pricing byte for byte: init (1) + outer assign
// (1) + 10×(cond 1 + body 2 + post 1) + exit cond (1) = 43 ops, and the
// declared budget is exactly 43.
//
//iprune:budget 43ops
func exactlyMet() int {
	x := 0
	for i := 0; i < 10; i++ {
		x = x + 1
	}
	return x
}

// justOver is the same 43-op body against a 42-op budget: one op over.
//
//iprune:budget 42ops
func justOver() int { // want `region in justOver needs ~43 ops .* exceeding the declared budget 42ops`
	x := 0
	for i := 0; i < 10; i++ {
		x = x + 1
	}
	return x
}

// suppressed carries the audited-boundary blessing: the same unbounded
// shape as unbounded() above, but no finding.
//
//iprune:allow-budget trip count is calibrated off-line; the region is cut by the caller's commit cadence
//iprune:hotpath
func suppressed(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

// callsSuppressed sees suppressed() as an audited zero-ish-cost
// boundary: the blessing vouches for the interior, so the caller stays
// clean.
//
//iprune:hotpath
func callsSuppressed() int {
	return suppressed(1000)
}

// recur has no static bound: the cycle is reported as the widening
// witness.
//
//iprune:hotpath
func recur(n int) int { // want `cannot statically bound .* recursive call cycle through recur`
	if n == 0 {
		return 0
	}
	return recur(n - 1)
}

// unit is priced at its declared budget when called, and its own body
// (43 ops) is checked against that budget at this declaration.
//
//iprune:budget 50ops
func unit() int {
	s := 0
	for i := 0; i < 10; i++ {
		s += i
	}
	return s
}

// callsUnit prices each unit() call as an opaque 50-op block: call
// overhead 1 + 50, twice, plus the add and return — over its 60-op
// budget even though unit's real cost is lower.
//
//iprune:budget 60ops
func callsUnit() int { // want `region in callsUnit needs .* exceeding the declared budget 60ops`
	return unit() + unit()
}

// badBudget's value does not parse.
//
//iprune:budget banana
func badBudget() {} // want `invalid //iprune:budget value "banana"`

// stepper is a module interface: calls through it devirtualize to every
// implementation, and the caller is charged the worst one.
type stepper interface {
	step(x int) int
}

type cheap struct{}

func (cheap) step(x int) int { return x + 1 }

type costly struct{}

func (costly) step(x int) int {
	s := x
	for i := 0; i < 300; i++ {
		s += i
	}
	return s
}

// viaInterface's s.step(1) fans out to {cheap, costly}.step; the costly
// implementation's ~1.2k ops bust the 100-op budget.
//
//iprune:budget 100ops
func viaInterface(s stepper) int { // want `region in viaInterface needs .* exceeding the declared budget 100ops`
	return s.step(1)
}
