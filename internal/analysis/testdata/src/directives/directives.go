// Package fixture exercises the directive parser's malformed-directive
// findings: an unknown //iprune: name is a problem, with a nearest
// known name suggested when one is within a plausible typo distance.
// The want comments ride inside the directive comments themselves —
// for an unknown name the trailing text is irrelevant.
package fixture

//iprune:preseve commit primitive // want `unknown directive //iprune:preseve \(did you mean //iprune:preserve\?\)`
func typoPreserve() {}

//iprune:allow-floot audited conversion // want `unknown directive //iprune:allow-floot \(did you mean //iprune:allow-float\?\)`
func typoAllowFloat() {}

//iprune:hotpth // want `unknown directive //iprune:hotpth \(did you mean //iprune:hotpath\?\)`
func typoHotpath() {}

//iprune:frobnicate // want `unknown directive //iprune:frobnicate$`
func farName() {}

//iprune:hotpath
func wellFormed() {}
