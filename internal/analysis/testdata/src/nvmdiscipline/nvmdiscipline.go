// Package fixture exercises the nvmdiscipline analyzer: stores to
// //iprune:nvm state must come from //iprune:nvm-api functions.
package fixture

// framState is FRAM-backed: every field write must flow through the
// discipline API.
//
//iprune:nvm
type framState struct {
	counter int64
	data    []int16
	acts    map[int][]int16
}

// meter marks a single field rather than the whole type.
type meter struct {
	//iprune:nvm
	energy int64
	other  int
}

type engine struct {
	nvm framState
	m   meter
}

// commit is the discipline API: its stores are allowed.
//
//iprune:nvm-api
func (e *engine) commit(v int64) {
	e.nvm.counter = v
	e.nvm.data[0] = 1
	e.m.energy += v
}

func (e *engine) rogue(v int64) {
	e.nvm.counter = v   // want `store to NVM-backed framState\.counter`
	e.nvm.data[0] = 1   // want `store to NVM-backed framState\.data`
	e.nvm.acts[3] = nil // want `store to NVM-backed framState\.acts`
	e.nvm = framState{} // want `store to NVM-backed framState`
	e.m.energy += v     // want `store to NVM-backed energy`
	e.m.other = 2       // unmarked field of unmarked type: fine
}

func increment(e *engine) {
	e.nvm.counter++ // want `store to NVM-backed framState\.counter`
}

func wholeValue() {
	var s framState
	s.counter = 1 // want `store to NVM-backed framState\.counter`
}

func escaped(e *engine) {
	e.m.energy = 0 //iprune:allow-nvm fixture reset outside the discipline
}
