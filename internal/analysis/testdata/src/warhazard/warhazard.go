// Package fixture exercises the warhazard analyzer: NVM-backed state
// must not be written after being read within one preservation interval
// (write-after-read breaks re-execution idempotence). Tracking is
// field-granular: distinct elements of one slice field share a fact.
package fixture

//iprune:nvm
type state struct {
	counter int64
	col     int
	data    []int16
	partial [2][]int16
}

type engine struct {
	nvm state
}

// commit is the preservation primitive: calls to it end the WAR
// interval, and its own body (two-phase commit internals, which always
// look like WARs) is exempt.
//
//iprune:preserve
func (e *engine) commit() {
	e.nvm.counter = e.nvm.counter + 1
}

// rogue is the classic non-idempotent update: read, then write, no
// preservation point between.
func (e *engine) rogue() {
	v := e.nvm.counter
	e.nvm.counter = v + 1 // want `WAR hazard on NVM-backed state\.counter`
}

// compound assignment reads then writes in one statement.
func (e *engine) compound() {
	e.nvm.counter += 1 // want `WAR hazard on NVM-backed state\.counter`
}

func (e *engine) incdec() {
	e.nvm.col++ // want `WAR hazard on NVM-backed state\.col`
}

// preserved: the commit between read and write ends the interval.
func (e *engine) preserved() {
	v := e.nvm.counter
	e.commit()
	e.nvm.counter = v + 1
}

// writeFirst: a location written before any read is safe to rewrite —
// re-execution deterministically repeats the store.
func (e *engine) writeFirst() {
	e.nvm.counter = 0
	v := e.nvm.counter
	e.nvm.counter = v + 1
}

// branchy: the read happens on only one path, but the merge must keep
// the hazardous state.
func (e *engine) branchy(c bool) {
	if c {
		_ = e.nvm.counter
	}
	e.nvm.counter = 7 // want `WAR hazard on NVM-backed state\.counter`
}

// bothArms: written-first on every incoming path stays written-first
// through the join.
func (e *engine) bothArms(c bool) {
	if c {
		e.nvm.col = 1
	} else {
		e.nvm.col = 2
	}
	v := e.nvm.col
	e.nvm.col = v + 1
}

// loopRead: a read inside the loop reaches the write after it.
func (e *engine) loopRead(n int) {
	s := int64(0)
	for i := 0; i < n; i++ {
		s += e.nvm.counter
	}
	e.nvm.counter = s // want `WAR hazard on NVM-backed state\.counter`
}

// loopCommit: committing inside the body ends each iteration's interval
// before the write, including around the back edge.
func (e *engine) loopCommit(n int) {
	for i := 0; i < n; i++ {
		v := e.nvm.counter
		e.commit()
		e.nvm.counter = v + 1
	}
}

// derived: a slice local bound to NVM state aliases its backing store.
// The binding itself copies only the header (idempotent on re-binding);
// the element read and the element write through the alias are the WAR.
func (e *engine) derived(i int) {
	dst := e.nvm.data
	x := dst[i]
	dst[i] = x + 1 // want `WAR hazard on NVM-backed state\.data`
}

// pingpong: field-granular tracking cannot see that reads and writes
// target opposite parity buffers — the site is justified by design.
func (e *engine) pingpong(i int) {
	v := e.nvm.partial[0][i]
	e.nvm.partial[1][i] = v //iprune:allow-war reads and writes target opposite parity buffers by construction
}
