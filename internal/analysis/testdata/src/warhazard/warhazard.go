// Package fixture exercises the warhazard analyzer: NVM-backed state
// must not be written after being read within one preservation interval
// (write-after-read breaks re-execution idempotence). Tracking is
// field-granular — distinct elements of one slice field share a fact —
// refined by constant indices into array fields (partial[0] and
// partial[1] are disjoint sub-locations) and by simple boolean guards
// (a read under `if fresh` and a write under `if !fresh` lie on
// disjoint paths).
package fixture

//iprune:nvm
type state struct {
	counter int64
	col     int
	data    []int16
	partial [2][]int16
}

type engine struct {
	nvm state
}

// commit is the preservation primitive: calls to it end the WAR
// interval, and its own body (two-phase commit internals, which always
// look like WARs) is exempt.
//
//iprune:preserve
func (e *engine) commit() {
	e.nvm.counter = e.nvm.counter + 1
}

// rogue is the classic non-idempotent update: read, then write, no
// preservation point between.
func (e *engine) rogue() {
	v := e.nvm.counter
	e.nvm.counter = v + 1 // want `WAR hazard on NVM-backed state\.counter`
}

// compound assignment reads then writes in one statement.
func (e *engine) compound() {
	e.nvm.counter += 1 // want `WAR hazard on NVM-backed state\.counter`
}

func (e *engine) incdec() {
	e.nvm.col++ // want `WAR hazard on NVM-backed state\.col`
}

// preserved: the commit between read and write ends the interval.
func (e *engine) preserved() {
	v := e.nvm.counter
	e.commit()
	e.nvm.counter = v + 1
}

// writeFirst: a location written before any read is safe to rewrite —
// re-execution deterministically repeats the store.
func (e *engine) writeFirst() {
	e.nvm.counter = 0
	v := e.nvm.counter
	e.nvm.counter = v + 1
}

// branchy: the read happens on only one path, but the merge must keep
// the hazardous state.
func (e *engine) branchy(c bool) {
	if c {
		_ = e.nvm.counter
	}
	e.nvm.counter = 7 // want `WAR hazard on NVM-backed state\.counter`
}

// bothArms: written-first on every incoming path stays written-first
// through the join.
func (e *engine) bothArms(c bool) {
	if c {
		e.nvm.col = 1
	} else {
		e.nvm.col = 2
	}
	v := e.nvm.col
	e.nvm.col = v + 1
}

// loopRead: a read inside the loop reaches the write after it.
func (e *engine) loopRead(n int) {
	s := int64(0)
	for i := 0; i < n; i++ {
		s += e.nvm.counter
	}
	e.nvm.counter = s // want `WAR hazard on NVM-backed state\.counter`
}

// loopCommit: committing inside the body ends each iteration's interval
// before the write, including around the back edge.
func (e *engine) loopCommit(n int) {
	for i := 0; i < n; i++ {
		v := e.nvm.counter
		e.commit()
		e.nvm.counter = v + 1
	}
}

// derived: a slice local bound to NVM state aliases its backing store.
// The binding itself copies only the header (idempotent on re-binding);
// the element read and the element write through the alias are the WAR.
func (e *engine) derived(i int) {
	dst := e.nvm.data
	x := dst[i]
	dst[i] = x + 1 // want `WAR hazard on NVM-backed state\.data`
}

// pingpong: constant parity indices address disjoint sub-buffers of one
// array field, so the read and the write provably never overlap. This
// used to need an //iprune:allow-war suppression; constant-index
// refinement deleted it.
func (e *engine) pingpong(i int) {
	v := e.nvm.partial[0][i]
	e.nvm.partial[1][i] = v
}

// pingpongAliased: the refinement survives alias bindings — the locals
// carry the parity buffers' sub-location keys.
func (e *engine) pingpongAliased(i int) {
	src := e.nvm.partial[0]
	dst := e.nvm.partial[1]
	dst[i] = src[i] + 1
}

// samePartition: identical constant indices still collide.
func (e *engine) samePartition(i int) {
	v := e.nvm.partial[1][i]
	e.nvm.partial[1][i] = v + 1 // want `WAR hazard on NVM-backed state\.partial\[1\]`
}

// dynamicParity: a non-constant index may address either sub-buffer, so
// it joins with both and the analyzer stays conservative; the parity
// arithmetic makes the accesses disjoint by construction.
func (e *engine) dynamicParity(i, seen int) {
	v := e.nvm.partial[(seen+1)%2][i]
	e.nvm.partial[seen%2][i] = v //iprune:allow-war reads and writes target opposite parity buffers by construction
}

// guardedDisjoint: the read happens only when fresh, the write only
// when not — path-sensitive guard tracking proves the paths disjoint
// (previously a false positive needing //iprune:allow-war).
func (e *engine) guardedDisjoint(fresh bool) int64 {
	v := int64(0)
	if fresh {
		v = e.nvm.counter
	}
	if !fresh {
		e.nvm.counter = 7
	}
	return v
}

// guardedFlag: the same correlation threaded through a local flag set
// on the reading path.
func (e *engine) guardedFlag(cond bool) int64 {
	loaded := false
	v := int64(0)
	if cond {
		v = e.nvm.counter
		loaded = true
	}
	if !loaded {
		e.nvm.counter = 1
	}
	return v
}

// guardedHazard: read and write share the fresh==true path — the guard
// does not help, still a hazard.
func (e *engine) guardedHazard(fresh bool) {
	if fresh {
		_ = e.nvm.counter
	}
	if fresh {
		e.nvm.counter = 3 // want `WAR hazard on NVM-backed state\.counter`
	}
}

// reassignedGuard: the flag is recomputed between the branches, so the
// correlation is void and the analyzer stays conservative.
func (e *engine) reassignedGuard(fresh bool) {
	if fresh {
		_ = e.nvm.counter
	}
	fresh = !fresh
	if !fresh {
		e.nvm.counter = 3 // want `WAR hazard on NVM-backed state\.counter`
	}
}
