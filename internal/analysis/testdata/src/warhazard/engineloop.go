package fixture

// engineloop models the HAWAII-style preservation loop: a tiled MAC
// kernel accumulating into an NVM partial buffer, committing a job
// counter every jobSz operations.

//iprune:nvm
type loopState struct {
	opCounter int
	partial   []int32
	shadow    []int32
	acts      []int16
}

type loopEngine struct {
	nvm   loopState
	jobSz int
}

// commitOp atomically publishes job progress.
//
//iprune:preserve
func (e *loopEngine) commitOp(ord int) {
	e.nvm.opCounter = ord + 1
}

// infer carries a seeded WAR hazard: the accumulation reads the running
// partial sum and writes it back within the same job interval. After a
// power failure mid-job, the re-executed MACs double-count everything
// since the last commitOp.
func (e *loopEngine) infer(w []int16) {
	for ord := 0; ord < len(w); ord += e.jobSz {
		for i := ord; i < ord+e.jobSz && i < len(w); i++ {
			acc := e.nvm.partial[i]
			e.nvm.partial[i] = acc + int32(w[i])*int32(e.nvm.acts[i]) // want `WAR hazard on NVM-backed loopState\.partial`
		}
		e.commitOp(ord)
	}
}

// inferShadow is the idempotent variant: reads come from the committed
// buffer, writes go to the shadow, and commitOp publishes the swap —
// re-executed MACs never observe their own writes.
func (e *loopEngine) inferShadow(w []int16) {
	for ord := 0; ord < len(w); ord += e.jobSz {
		for i := ord; i < ord+e.jobSz && i < len(w); i++ {
			e.nvm.shadow[i] = e.nvm.partial[i] + int32(w[i])*int32(e.nvm.acts[i])
		}
		e.commitOp(ord)
	}
}
