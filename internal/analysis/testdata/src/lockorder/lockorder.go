// Package fixture exercises the lockorder analyzer: pairwise acquisition
// order inversions (direct and through call chains), re-acquisition
// self-deadlocks, and the allow-conc suppression path.
package fixture

import "sync"

var muA sync.Mutex
var muB sync.Mutex

// Shape 1: direct inversion — AB here, BA in OrderBA.
func OrderAB() {
	muA.Lock()
	muB.Lock() // want `lock order inversion: muB is acquired while muA is held`
	muB.Unlock()
	muA.Unlock()
}

func OrderBA() {
	muB.Lock()
	muA.Lock() // want `lock order inversion: muA is acquired while muB is held`
	muA.Unlock()
	muB.Unlock()
}

var muC sync.Mutex
var muD sync.Mutex

// Shape 2: interprocedural inversion — the C→D edge only exists through
// the call to lockD, so the witness names the chain.
func OrderCD() {
	muC.Lock()
	defer muC.Unlock()
	lockD() // want `lock order inversion: muD is acquired \(via lockD\) while muC is held`
}

func lockD() {
	muD.Lock()
	muD.Unlock()
}

func OrderDC() {
	muD.Lock()
	muC.Lock() // want `lock order inversion: muC is acquired while muD is held`
	muC.Unlock()
	muD.Unlock()
}

var muE sync.Mutex

// Shape 3: re-acquiring a lock that is provably held self-deadlocks —
// sync.Mutex is not reentrant.
func Reacquire() {
	muE.Lock()
	muE.Lock() // want `lock muE acquired while already held by Reacquire`
	muE.Unlock()
	muE.Unlock()
}

// A lock held on only one branch is may-held, not must-held: acquiring
// it after the join must not be reported as a re-acquisition.
func BranchHeld(cond bool) {
	if cond {
		muE.Lock()
		muE.Unlock()
	}
	muE.Lock()
	muE.Unlock()
}

// Releasing before the second acquisition is fine.
func LockUnlockLock() {
	muE.Lock()
	muE.Unlock()
	muE.Lock()
	muE.Unlock()
}

// Lock classes: a mutex field identifies one lock per declaring field,
// so two instances of Guarded still share an order with gmu.
type Guarded struct {
	mu sync.Mutex
	n  int
}

var gmu sync.Mutex

func (g *Guarded) FieldThenGlobal() {
	g.mu.Lock()
	gmu.Lock() // want `lock order inversion: gmu is acquired while Guarded.mu is held`
	gmu.Unlock()
	g.mu.Unlock()
}

func GlobalThenField(g *Guarded) {
	gmu.Lock()
	g.mu.Lock() // want `lock order inversion: Guarded.mu is acquired while gmu is held`
	g.mu.Unlock()
	gmu.Unlock()
}

var muF sync.Mutex
var muG sync.Mutex

// Suppression: the inversion against OrderGF is acknowledged with a
// reasoned allow-conc, so only the un-annotated side reports.
func OrderFG() {
	muF.Lock()
	muG.Lock() //iprune:allow-conc fixture: audited nested order
	muG.Unlock()
	muF.Unlock()
}

func OrderGF() {
	muG.Lock()
	muF.Lock() // want `lock order inversion: muF is acquired while muG is held`
	muF.Unlock()
	muG.Unlock()
}

// Consistent nesting everywhere is clean: H before I in both callers.
var muH sync.Mutex
var muI sync.Mutex

func NestedOK1() {
	muH.Lock()
	muI.Lock()
	muI.Unlock()
	muH.Unlock()
}

func NestedOK2() {
	muH.Lock()
	defer muH.Unlock()
	muI.Lock()
	defer muI.Unlock()
}

// TryLock cannot block, so it never creates an order edge.
func TryNoEdge() {
	muI.Lock()
	if muH.TryLock() {
		muH.Unlock()
	}
	muI.Unlock()
}
