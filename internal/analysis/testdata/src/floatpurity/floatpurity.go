// Package fixture exercises the floatpurity analyzer: float arithmetic
// and conversions are findings unless covered by //iprune:allow-float.
package fixture

// kernelAdd is pure integer arithmetic: no findings.
func kernelAdd(a, b int16) int16 {
	s := int32(a) + int32(b)
	return int16(s >> 1)
}

func badMul(a, b float64) float64 {
	return a * b // want `float arithmetic \(\*\) in fixed-point hot path`
}

func badConv(x int) float64 {
	return float64(x) // want `conversion to float64 in fixed-point hot path`
}

func badConv32(x int16) float32 {
	return float32(x) // want `conversion to float32 in fixed-point hot path`
}

func badCompound(x float64) float64 {
	x /= 2 // want `float arithmetic \(/=\) in fixed-point hot path`
	return x
}

func badNeg(x float32) float32 {
	return -x // want `float arithmetic \(-\) in fixed-point hot path`
}

// oneFindingPerLine: a compound float expression reports once.
func oneFindingPerLine(a, b, c float64) float64 {
	return a*b + c/a // want `float arithmetic`
}

// calibrated opts the whole function out.
//
//iprune:allow-float calibration-only fixture function
func calibrated(a float64) float64 {
	v := a * 2
	return v / 3
}

func lineDirectives(a float64) float64 {
	v := a * 2 //iprune:allow-float same-line escape hatch
	//iprune:allow-float directive-above escape hatch
	w := v / 3
	u := a - w // want `float arithmetic \(-\) in fixed-point hot path`
	return u
}
