// Package fixture exercises the errcheck analyzer: error returns must
// not be silently discarded.
package fixture

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func valueAndError() (int, error) { return 0, nil }

func bad() {
	mayFail()       // want `error return of fix\.mayFail is discarded`
	valueAndError() // want `error return of fix\.valueAndError is discarded`
	defer mayFail() // want `error return of fix\.mayFail is discarded`
	go mayFail()    // want `error return of fix\.mayFail is discarded`
}

func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	_ = mayFail() // explicit discard is visible: fine
	v, _ := valueAndError()
	_ = v
	return nil
}

func excluded() {
	fmt.Println("stdout printing never fails usefully")
	fmt.Fprintf(os.Stderr, "stderr too\n")
	var sb strings.Builder
	fmt.Fprintf(&sb, "in-memory writers never fail")
	sb.WriteString("likewise")
	_ = sb.String()
}

func notExcluded(f *os.File) {
	fmt.Fprintf(f, "a real file can fail\n") // want `error return of fmt\.Fprintf is discarded`
}

func escaped() {
	mayFail() //iprune:allow-err fire-and-forget fixture call
}

type sink struct{}

func (sink) Close() error { return nil }

func blankClose(s sink) {
	_ = s.Close() // want `error return of \(fix\.sink\)\.Close is blank-discarded`
	_ = mayFail() // blank-discarding a non-Close call stays an accepted explicit discard
}

func blankCloseAllowed(s sink) {
	_ = s.Close() //iprune:allow-err best-effort cleanup on an error path that already has a cause
}

func handledClose(s sink) error {
	return s.Close()
}
