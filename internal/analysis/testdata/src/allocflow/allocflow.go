// Package fixture exercises the allocflow analyzer: loops inside
// //iprune:hotpath functions must not call helpers that (transitively)
// allocate — the per-package hotalloc check cannot see across the call.
// Calls outside any loop are amortized once per invocation and clean.
package fixture

// grow allocates via append.
func grow(xs []int) []int {
	return append(xs, 0)
}

// viaGrow reaches the allocation one hop down.
func viaGrow(xs []int) []int {
	return grow(xs)
}

// fill is allocation-free.
func fill(xs []int) {
	for i := range xs {
		xs[i] = 1
	}
}

// pooled's append is audited amortized — the directive blesses the
// whole function, so calls to it are clean.
//
//iprune:allow-alloc pool-backed slice, growth amortized by caller contract
func pooled(xs []int) []int {
	return append(xs, 0)
}

type tracer struct {
	buf []int
}

func (t *tracer) record(v int) {
	t.buf = append(t.buf, v)
}

//iprune:hotpath
func kernel(xs []int, t *tracer) int {
	xs = grow(xs) // outside any loop: amortized
	s := 0
	for _, v := range xs {
		fill(xs)
		t.record(v)      // want `hot loop calls tracer\.record, which performs an allocation`
		xs = viaGrow(xs) // want `hot loop calls viaGrow, which reaches \(via grow\) an allocation`
		xs = pooled(xs)
		s += v
	}
	return s
}

//iprune:hotpath
func suppressedSite(xs []int) int {
	s := 0
	for range xs {
		xs = grow(xs) //iprune:allow-alloc ring-buffer refill, bounded by construction
		s++
	}
	return s
}

// sink is a module-defined interface (obs.Tracer-shaped): calls through
// it devirtualize to every module implementation.
type sink interface {
	put(int)
}

// recording allocates on emission.
type recording struct {
	buf []int
}

func (r *recording) put(v int) {
	r.buf = append(r.buf, v)
}

// discarding is clean — its devirtualized edge produces no finding.
type discarding struct{}

func (discarding) put(int) {}

//iprune:hotpath
func devirtKernel(xs []int, s sink) {
	for _, v := range xs {
		s.put(v) // want `hot loop calls recording\.put \(devirtualized from sink\.put\), which performs an allocation`
	}
	s.put(0) // outside any loop: amortized
}
