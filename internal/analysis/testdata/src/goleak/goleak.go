// Package fixture exercises the goleak analyzer: goroutines with no
// reachable termination path, range-over-unclosed-channel leaks,
// double-close and send-after-close panics, hot-path sends with no
// receiver, and the allow-conc suppression path.
package fixture

import "context"

// Shape 1: infinite loop with no exit — the goroutine can never stop.
func SpinForever() {
	go func() { // want `goroutine spawned here never terminates: the loop at .* has no reachable return or break`
		for {
		}
	}()
}

var leakCh = make(chan int)

// Shape 2: ranging over a channel nothing in the module closes.
func RangeUnclosed() {
	go func() { // want `goroutine spawned here never terminates: it ranges over leakCh but nothing in the module closes it`
		for range leakCh {
		}
	}()
}

var drainCh = make(chan int)

// Ranging is fine when the module provably closes the channel.
func RangeClosed() {
	go func() {
		for v := range drainCh {
			_ = v
		}
	}()
	close(drainCh)
}

// A select loop with a reachable exit terminates.
func SelectWithDone(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

// An unlabeled break inside a select binds to the select, not the loop:
// this goroutine spins forever even though it says "break".
func SelectBreakOnly(work chan int) {
	go func() { // want `goroutine spawned here never terminates: the loop at .* has no reachable return or break`
		for {
			select {
			case v := <-work:
				_ = v
				break
			}
		}
	}()
}

// Spawning a named worker resolves the declaration; the channel
// parameter is aliased to the spawn-site argument, so the close of
// feedCh below is evidence that the worker's range loop ends.
func SpawnNamed() {
	go pump(feedCh)
	close(feedCh)
}

var feedCh = make(chan int)

func pump(ch chan int) {
	for v := range ch {
		_ = v
	}
}

// Shape 3: closing a channel a prior close reaches panics.
func DoubleClose(done bool) {
	ch := make(chan int)
	close(ch)
	if done {
		close(ch) // want `close\(ch\) may close an already-closed channel`
	}
}

// Reassigning the variable makes it a fresh, open channel.
func CloseReopenClose() {
	ch := make(chan int)
	close(ch)
	ch = make(chan int)
	close(ch)
}

// Shape 4: sending after a close reaches the send panics.
func SendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want `send on ch after close\(ch\) reaches it`
}

// A close on only one branch still reaches the send on that path.
func SendAfterBranchClose(early bool) {
	ch := make(chan int, 1)
	if early {
		close(ch)
	}
	ch <- 1 // want `send on ch after close\(ch\) reaches it`
}

var orphanCh = make(chan int, 8)

// Shape 5: a hot-path send with no receiver anywhere in the module.
//
//iprune:hotpath
func HotSendNoReceiver(v int) {
	orphanCh <- v // want `hotpath send on orphanCh but no statement in the module receives from it`
}

var metricsCh = make(chan int, 8)

// A hot-path send is fine when the module has a consumer.
//
//iprune:hotpath
func HotSendWithReceiver(v int) {
	metricsCh <- v
}

func consumeMetrics() {
	for range metricsCh {
	}
}

var auditCh = make(chan int)

// Suppression: a reasoned allow-conc silences the finding.
//
//iprune:hotpath
func HotSendSuppressed(v int) {
	auditCh <- v //iprune:allow-conc fixture: external consumer attaches in tests
}
