// Package fixture exercises the floatflow analyzer: //iprune:hotpath
// functions must not call helpers that (transitively) perform float
// arithmetic — the per-package floatpurity check cannot see across the
// call.
package fixture

// scale uses float arithmetic directly.
func scale(x int) int {
	return int(float64(x) * 1.5)
}

// viaScale reaches float use one hop down the call graph.
func viaScale(x int) int {
	return scale(x) + 1
}

// pure is integer-only.
func pure(x int) int {
	return x * 2
}

// blessed's float use is audited — the directive blesses the whole
// function, so calls to it are clean.
//
//iprune:allow-float calibration boundary, conversion audited here
func blessed(x int) int {
	return int(float64(x))
}

//iprune:hotpath
func kernel(xs []int) int {
	s := 0
	for _, v := range xs {
		s += pure(v)
	}
	s += scale(s)    // want `fixed-point hot path calls scale, which performs float arithmetic`
	s += viaScale(s) // want `fixed-point hot path calls viaScale, which reaches \(via scale\) float arithmetic`
	s += blessed(s)
	return s
}

//iprune:hotpath
func suppressedSite(x int) int {
	return scale(x) //iprune:allow-float boundary conversion, audited at this call site
}

// scaler is a module-defined interface with a small implementation set:
// calls through it devirtualize to every implementation, so the hot
// path sees through the dispatch instead of going blind.
type scaler interface{ apply(int) int }

// floatScaler's method uses float arithmetic directly.
type floatScaler struct{}

func (floatScaler) apply(x int) int { return int(float64(x) * 1.5) }

// intScaler is clean — its devirtualized edge produces no finding.
type intScaler struct{}

func (intScaler) apply(x int) int { return x * 2 }

// deepScaler reaches float use further down the call graph; the witness
// chain threads through the devirtualized edge.
type deepScaler struct{}

func (deepScaler) apply(x int) int { return viaScale(x) }

//iprune:hotpath
func devirtKernel(s scaler, xs []int) int {
	t := 0
	for _, v := range xs {
		t += v
	}
	return s.apply(t) // want `calls floatScaler\.apply \(devirtualized from scaler\.apply\), which performs float arithmetic` `calls deepScaler\.apply \(devirtualized from scaler\.apply\), which reaches \(via viaScale -> scale\) float arithmetic`
}

// onlyScaler is single-implementation: the call resolves uniquely.
type onlyScaler interface{ applyOnce(int) int }

type loneScaler struct{}

func (loneScaler) applyOnce(x int) int { return scale(x) }

//iprune:hotpath
func devirtSingle(s onlyScaler, x int) int {
	return s.applyOnce(x) // want `calls loneScaler\.applyOnce \(devirtualized from onlyScaler\.applyOnce\), which reaches \(via scale\) float arithmetic`
}

// blessedScaler's implementation is an audited boundary: the func-level
// blessing stops propagation through the devirtualized edge too.
type blessedScaler interface{ applyBlessed(int) int }

type auditedScaler struct{}

//iprune:allow-float calibration boundary, conversion audited here
func (auditedScaler) applyBlessed(x int) int { return scale(x) }

//iprune:hotpath
func devirtBlessed(s blessedScaler, x int) int {
	return s.applyBlessed(x)
}
