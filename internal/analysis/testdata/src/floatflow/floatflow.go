// Package fixture exercises the floatflow analyzer: //iprune:hotpath
// functions must not call helpers that (transitively) perform float
// arithmetic — the per-package floatpurity check cannot see across the
// call.
package fixture

// scale uses float arithmetic directly.
func scale(x int) int {
	return int(float64(x) * 1.5)
}

// viaScale reaches float use one hop down the call graph.
func viaScale(x int) int {
	return scale(x) + 1
}

// pure is integer-only.
func pure(x int) int {
	return x * 2
}

// blessed's float use is audited — the directive blesses the whole
// function, so calls to it are clean.
//
//iprune:allow-float calibration boundary, conversion audited here
func blessed(x int) int {
	return int(float64(x))
}

//iprune:hotpath
func kernel(xs []int) int {
	s := 0
	for _, v := range xs {
		s += pure(v)
	}
	s += scale(s)    // want `fixed-point hot path calls scale, which performs float arithmetic`
	s += viaScale(s) // want `fixed-point hot path calls viaScale, which reaches \(via scale\) float arithmetic`
	s += blessed(s)
	return s
}

//iprune:hotpath
func suppressedSite(x int) int {
	return scale(x) //iprune:allow-float boundary conversion, audited at this call site
}
