// Package fixture exercises the hotalloc analyzer: no allocations inside
// loops of //iprune:hotpath functions.
package fixture

//iprune:hotpath
func hot(n int) []int {
	out := make([]int, 0, n) // outside any loop: fine
	for i := 0; i < n; i++ {
		tmp := make([]int, 4) // want `make in hot loop`
		_ = tmp
		out = append(out, i) // want `append in hot loop`
		m := map[int]int{}   // want `map literal allocated in hot loop`
		_ = m
		p := new(int) // want `new in hot loop`
		_ = p
		f := func() int { return i } // want `closure allocated in hot loop`
		_ = f()
	}
	return out
}

//iprune:hotpath
func hotRange(xs []int) int {
	s := 0
	for _, x := range xs {
		buf := make([]int, 1) // want `make in hot loop`
		buf[0] = x
		s += buf[0]
	}
	return s
}

// cold is unmarked: allocations in its loops are nobody's business.
func cold(n int) {
	for i := 0; i < n; i++ {
		_ = make([]int, 4)
	}
}

//iprune:hotpath
func hotEscaped(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i) //iprune:allow-alloc appends into a preallocated slice
	}
	return out
}

//iprune:hotpath
func nestedLoops(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			row := make([]int, n) // want `make in hot loop`
			s += len(row) + i + j
		}
	}
	return s
}
