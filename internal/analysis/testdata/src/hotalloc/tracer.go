package fixture

// The tracer no-op pattern of internal/obs: events are plain value
// structs passed through an interface by value, emission is guarded by
// Enabled(), and the disabled tracer discards. None of that allocates,
// so a hot loop carrying a guarded emit must stay clean.

type event struct {
	kind  uint8
	time  float64
	bytes int64
}

type tracer interface {
	Enabled() bool
	Emit(event)
}

type nop struct{}

func (nop) Enabled() bool { return false }
func (nop) Emit(event)    {}

//iprune:hotpath
func hotTracedKernel(tr tracer, n int) int64 {
	var sum int64
	for i := 0; i < n; i++ {
		sum += int64(i)
		if tr.Enabled() {
			// Constructing the event value and calling through the
			// interface is allocation-free: no make/new/append, no
			// boxing, no closure.
			tr.Emit(event{kind: 1, time: float64(i), bytes: sum})
		}
	}
	return sum
}

// hotBufferedTracing is the antipattern the guarded-emit design exists
// to avoid: buffering events in a slice grown inside the hot loop.
//
//iprune:hotpath
func hotBufferedTracing(n int) []event {
	var buf []event
	for i := 0; i < n; i++ {
		buf = append(buf, event{kind: 1, time: float64(i)}) // want `append in hot loop`
	}
	return buf
}

// hotRecorder is the sanctioned opt-in recording shape: the append is
// amortized over a buffer preallocated outside the loop and carries an
// explicit directive, mirroring obs.Recorder.Emit.
//
//iprune:hotpath
func hotRecorder(n int) []event {
	buf := make([]event, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, event{kind: 1}) //iprune:allow-alloc amortized growth of a preallocated recording buffer
	}
	return buf
}
