// Package fixture exercises the parsafe analyzer: goroutines must not
// race NVM-backed state (synchronize before touching it), must not be
// spawned inside //iprune:hotpath kernels, and function-local
// sync.WaitGroup accounting must pair every Add with a reachable Wait
// and a deferred Done.
package fixture

import "sync"

//iprune:nvm
type state struct {
	counter int64
	data    []int16
}

type engine struct {
	nvm state
	mu  sync.Mutex
}

// unsyncCapture races checkpointing: the closure touches NVM state with
// no synchronization before the access.
func (e *engine) unsyncCapture() {
	go func() {
		e.nvm.counter++ // want `goroutine captures NVM-backed state\.counter with no synchronization`
	}()
}

// unsyncAlias reaches the NVM backing store through a derived local.
func (e *engine) unsyncAlias() {
	buf := e.nvm.data
	go func() {
		buf[0] = 1 // want `goroutine captures NVM-backed state\.data \(via buf\) with no synchronization`
	}()
}

// mutexGuarded acquires the lock before the access: clean.
func (e *engine) mutexGuarded() {
	go func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		e.nvm.counter++
	}()
}

// channelGuarded orders the access after a channel receive: clean.
func (e *engine) channelGuarded(ready chan struct{}) {
	go func() {
		<-ready
		e.nvm.counter++
	}()
}

// suppressedCapture documents an audited handoff with allow-par.
func (e *engine) suppressedCapture() {
	go func() {
		e.nvm.counter++ //iprune:allow-par spawner provably parked until this goroutine exits
	}()
}

// hotSpawn launches a goroutine inside a hot kernel: the spawn cost is
// outside the per-power-cycle energy envelope.
//
//iprune:hotpath
func (e *engine) hotSpawn(done chan struct{}) {
	go func() { // want `goroutine launched inside //iprune:hotpath function hotSpawn`
		close(done)
	}()
}

// addWithoutWait leaks the pending count: no Wait on any path.
func addWithoutWait(work []int) {
	var wg sync.WaitGroup
	for range work {
		wg.Add(1) // want `sync\.WaitGroup wg: no Wait is reachable after this Add`
		go func() {
			defer wg.Done()
		}()
	}
}

// addWaitBalanced pairs every Add with the Wait after the loop and a
// deferred Done in the goroutine: clean.
func addWaitBalanced(work []int) {
	var wg sync.WaitGroup
	for range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// deferredWait satisfies the Add through a deferred Wait at exit.
func deferredWait(work []int) {
	var wg sync.WaitGroup
	defer wg.Wait()
	for range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
}

// missingDone blocks the matching Wait forever.
func missingDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine uses sync\.WaitGroup wg but never calls wg\.Done`
		_ = wg
	}()
	wg.Wait()
}

// plainDone is skipped on panic or early return: it must be deferred.
func plainDone(fail bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `wg\.Done is not deferred: a panic or early return in the goroutine skips it`
		if fail {
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

// escapedGroup hands the WaitGroup's address to code this function
// cannot see — the discipline is the callee's problem, not flagged here.
func escapedGroup(park func(*sync.WaitGroup)) {
	var wg sync.WaitGroup
	wg.Add(1)
	park(&wg)
}
