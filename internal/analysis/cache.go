//iprune:allow-err hash writes cannot fail, and cache persistence is best-effort by design: any I/O failure degrades to a miss, never to wrong results

package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The summaries cache makes repeated iprunelint runs incremental: each
// analyzed package's diagnostics are stored under a key derived from
// everything that can influence them, and a later run whose key matches
// serves the stored findings without re-analyzing the package.
//
// The key covers, per package:
//
//   - a schema version and the analyzer set (so upgrading either
//     invalidates everything);
//   - the package's own source file hashes;
//   - the file hashes of its transitive module-internal dependencies
//     (interprocedural findings flow from callee bodies the package
//     imports);
//   - an implementation-closure hash: the file hashes of every package
//     declaring a concrete type that implements a module-defined
//     interface. Devirtualized call edges cross the import graph — a
//     hot loop in package B calling through an interface from package A
//     can reach an implementation body in package C that B never
//     imports — so those bodies must key B's entry even without an
//     import edge.
//
// Directive problems (unknown names, missing reasons) are NOT cached:
// the loader recomputes them on every run, so they stay exact for free.
//
// Cache misses run the per-package analyzers on the missed packages
// only; module-level analyzers still run over every package (their
// summaries must cover the whole call graph) but report only into
// missed packages — hit packages' findings come from the cache.

// cacheSchema versions the entry format and key derivation; bump it
// when either changes. v2: regionbudget joins the analyzer set and its
// interprocedural region summaries flow into cached diagnostics.
const cacheSchema = "iprunelint-cache-v2"

// Cache is an on-disk diagnostics cache keyed by content hashes.
type Cache struct {
	// Dir is the cache directory; it is created on first store.
	Dir string
	// Root is the module root; diagnostic positions are stored
	// root-relative so the cache survives a checkout moving.
	Root string
	// Stats accumulates hit/miss accounting for the run.
	Stats CacheStats

	fileHashes map[*Package]string
}

// CacheStats reports what a RunCached call did.
type CacheStats struct {
	Hits   int
	Misses int
	// Invalidated counts the subset of misses where a stored entry
	// existed but no longer matched its key (changed sources, schema or
	// analyzer set) — as opposed to cold misses with no entry at all.
	Invalidated int
	// Reanalyzed lists the import paths that missed, in input order.
	Reanalyzed []string
}

// cacheEntry is the stored form: the full key (verified on load, so a
// hash collision in the file name scheme cannot serve stale results)
// and the package's diagnostics with root-relative filenames.
type cacheEntry struct {
	Key   string       `json:"key"`
	Diags []Diagnostic `json:"diags"`
}

// RunCached is Run with a diagnostics cache. pkgs are the target
// packages; all must contain every loaded package including
// dependencies of the targets (for dependency hashing — see
// Loader.Packages). A nil cache degrades to plain Run. RunCached is the
// one-worker case of RunCachedParallel.
func RunCached(analyzers []*Analyzer, pkgs []*Package, dirs *Directives, c *Cache, all []*Package) []Diagnostic {
	return RunCachedParallel(analyzers, pkgs, dirs, c, all, 1)
}

// RunCachedParallel is RunCached with workers-way parallelism over the
// re-analysis of cache misses (key derivation and cache I/O stay
// sequential: the file-hash memo is not synchronized, and entry stores
// are already atomic per package). Output is byte-identical to
// RunCached for any worker count.
func RunCachedParallel(analyzers []*Analyzer, pkgs []*Package, dirs *Directives, c *Cache, all []*Package, workers int) []Diagnostic {
	if c == nil {
		return RunParallel(analyzers, pkgs, dirs, workers)
	}
	clean := cleanPkgs(pkgs)
	keys := c.keys(analyzers, clean, all)

	var diags []Diagnostic
	missed := map[*Package]bool{}
	var missedList []*Package
	for _, pkg := range clean {
		if cached, ok := c.load(pkg, keys[pkg]); ok {
			c.Stats.Hits++
			diags = append(diags, cached...)
			continue
		}
		c.Stats.Misses++
		c.Stats.Reanalyzed = append(c.Stats.Reanalyzed, pkg.Path)
		missed[pkg] = true
		missedList = append(missedList, pkg)
	}

	if len(missedList) > 0 {
		tasks := lintTasks(analyzers, clean, missedList, dirs, missed)
		results := executeTasks(tasks, workers)
		perPkg := map[*Package][]Diagnostic{}
		var modDiags []Diagnostic
		for i, t := range tasks {
			if t.pkg != nil {
				perPkg[t.pkg] = append(perPkg[t.pkg], results[i]...)
			} else {
				modDiags = append(modDiags, results[i]...)
			}
		}
		byDir := map[string]*Package{}
		for _, pkg := range missedList {
			byDir[pkg.Dir] = pkg
		}
		for _, d := range modDiags {
			if pkg := byDir[filepath.Dir(d.Pos.Filename)]; pkg != nil {
				perPkg[pkg] = append(perPkg[pkg], d)
			}
		}
		for _, pkg := range missedList {
			Sort(perPkg[pkg])
			c.store(pkg, keys[pkg], perPkg[pkg])
			diags = append(diags, perPkg[pkg]...)
		}
	}
	Sort(diags)
	return diags
}

// keys derives the cache key of every clean target package.
func (c *Cache) keys(analyzers []*Analyzer, clean, all []*Package) map[*Package]string {
	c.fileHashes = map[*Package]string{}
	byPath := make(map[string]*Package, len(all))
	for _, p := range all {
		byPath[p.Path] = p
	}
	var names []string
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	impl := c.implClosureHash(clean)

	keys := make(map[*Package]string, len(clean))
	for _, pkg := range clean {
		h := sha256.New()
		fmt.Fprintln(h, cacheSchema)
		fmt.Fprintln(h, strings.Join(names, ","))
		fmt.Fprintln(h, impl)
		for _, dep := range c.depClosure(pkg, byPath) {
			fmt.Fprintf(h, "%s %s\n", dep.Path, c.filesHash(dep))
		}
		keys[pkg] = hex.EncodeToString(h.Sum(nil))
	}
	return keys
}

// depClosure returns pkg plus its transitive module-internal
// dependencies that the loader has loaded, sorted by import path.
func (c *Cache) depClosure(pkg *Package, byPath map[string]*Package) []*Package {
	seen := map[*Package]bool{pkg: true}
	queue := []*Package{pkg}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if p.Types == nil {
			continue
		}
		for _, imp := range p.Types.Imports() {
			dep, ok := byPath[imp.Path()]
			if !ok || seen[dep] {
				continue
			}
			seen[dep] = true
			queue = append(queue, dep)
		}
	}
	out := make([]*Package, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// filesHash hashes a package's source files (names and contents),
// memoized per run. A file that cannot be read poisons the hash with
// the error text, which simply forces a miss.
func (c *Cache) filesHash(pkg *Package) string {
	if h, ok := c.fileHashes[pkg]; ok {
		return h
	}
	var files []string
	for _, f := range pkg.Files {
		files = append(files, pkg.Fset.Position(f.Pos()).Filename)
	}
	sort.Strings(files)
	h := sha256.New()
	for _, name := range files {
		fmt.Fprintf(h, "%s\n", filepath.Base(name))
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(h, "unreadable: %v\n", err)
			continue
		}
		h.Write(data)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	c.fileHashes[pkg] = sum
	return sum
}

// implClosureHash hashes the packages whose bodies devirtualized calls
// can reach from anywhere in the module: those declaring a concrete
// named type implementing a module-defined named interface. The result
// keys every package, so editing an implementation invalidates callers
// that reach it only through an interface.
func (c *Cache) implClosureHash(clean []*Package) string {
	var ifaces []*types.Interface
	for _, pkg := range clean {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if it, ok := tn.Type().Underlying().(*types.Interface); ok && it.NumMethods() > 0 {
				ifaces = append(ifaces, it)
			}
		}
	}
	h := sha256.New()
	if len(ifaces) == 0 {
		return hex.EncodeToString(h.Sum(nil))
	}
	for _, pkg := range clean {
		if pkg.Types == nil {
			continue
		}
		if !declaresImpl(pkg, ifaces) {
			continue
		}
		fmt.Fprintf(h, "%s %s\n", pkg.Path, c.filesHash(pkg))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// declaresImpl reports whether pkg declares a non-interface named type
// implementing any of the interfaces.
func declaresImpl(pkg *Package, ifaces []*types.Interface) bool {
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if _, isIface := t.Underlying().(*types.Interface); isIface {
			continue
		}
		for _, it := range ifaces {
			if types.Implements(t, it) || types.Implements(types.NewPointer(t), it) {
				return true
			}
		}
	}
	return false
}

// entryPath maps an import path to its cache file.
func (c *Cache) entryPath(pkg *Package) string {
	return filepath.Join(c.Dir, strings.ReplaceAll(pkg.Path, "/", "__")+".json")
}

// load returns the cached diagnostics when the stored key matches.
// Every failure mode — missing file, corrupt JSON, stale key — is just
// a miss.
func (c *Cache) load(pkg *Package, key string) ([]Diagnostic, bool) {
	if key == "" {
		return nil, false
	}
	data, err := os.ReadFile(c.entryPath(pkg))
	if err != nil {
		return nil, false
	}
	var entry cacheEntry
	if err := json.Unmarshal(data, &entry); err != nil || entry.Key != key {
		c.Stats.Invalidated++ // an entry existed but is stale or corrupt
		return nil, false
	}
	for i, d := range entry.Diags {
		if !filepath.IsAbs(d.Pos.Filename) {
			entry.Diags[i].Pos.Filename = filepath.Join(c.Root, filepath.FromSlash(d.Pos.Filename))
		}
	}
	return entry.Diags, true
}

// store writes one package's diagnostics atomically (temp file +
// rename); errors degrade to not caching.
func (c *Cache) store(pkg *Package, key string, diags []Diagnostic) {
	if key == "" {
		return
	}
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return
	}
	entry := cacheEntry{Key: key, Diags: make([]Diagnostic, len(diags))}
	copy(entry.Diags, diags)
	for i, d := range entry.Diags {
		if rel, err := filepath.Rel(c.Root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			entry.Diags[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
	data, err := json.Marshal(entry)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.Dir, ".entry-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.entryPath(pkg)); err != nil {
		os.Remove(tmp.Name())
	}
}

// Summary is the one-line human accounting for stderr.
func (s CacheStats) Summary(w io.Writer) {
	fmt.Fprintf(w, "iprunelint: cache: %d reused, %d analyzed\n", s.Hits, s.Misses)
}

// Detail is the expanded accounting behind iprunelint -cachestats: the
// hit/miss/invalidation counters plus which packages were re-analyzed.
func (s CacheStats) Detail(w io.Writer) {
	fmt.Fprintf(w, "iprunelint: cache: %d hit(s), %d miss(es), %d invalidation(s)\n",
		s.Hits, s.Misses, s.Invalidated)
	for _, path := range s.Reanalyzed {
		fmt.Fprintf(w, "iprunelint: reanalyzed: %s\n", path)
	}
}
