package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"

	"iprune/internal/analysis/flow"
)

// WARHazard flags write-after-read (WAR) hazards on //iprune:nvm state
// between preservation points. The progress-preservation argument
// (HAWAII⁺, and Alpaca-style idempotence analysis for intermittent
// programs generally) requires that everything between two commits be
// safe to re-execute after a power failure. A nonvolatile location that
// is *read and then overwritten* inside one preservation interval breaks
// that: re-execution reads the overwritten value and computes a
// different result than the first attempt — work is silently corrupted
// rather than resumed.
//
// The analyzer builds a per-function CFG (internal/analysis/flow) and
// runs a forward dataflow whose fact tracks, for each NVM location,
// whether its *first access since the last preservation point* was a
// read. A write to a read-first location is a finding; a call to a
// function marked //iprune:preserve ends the interval (the commit makes
// everything before it durable, so re-execution restarts after it). A
// location whose first access is a write is safe to rewrite —
// deterministic re-execution just repeats the store — which is exactly
// Alpaca's WAR criterion.
//
// Precision features beyond the plain lattice:
//
//   - Constant-index sub-locations: an NVM array field indexed by a
//     constant (partial[0] vs partial[1]) splits into disjoint
//     locations, so the ping-pong parity pattern — read one buffer,
//     write the other — is proved safe instead of suppressed. A
//     non-constant index falls back to the whole location and joins
//     conservatively with every sub-location.
//
//   - Path-sensitive boolean guards: the dataflow state is a bounded
//     disjunction of per-path facts, each carrying the known values of
//     simple boolean guard locals (`if committed { … }`). Branch edges
//     assert the guard's outcome and drop contradicting states, so a
//     read under `if fresh` and a write under `if !fresh` are seen to
//     lie on disjoint paths.
//
// Local variables derived from NVM state (`dst := e.nvm.buf[i]`) are
// tracked flow-insensitively: a write through such an alias is a write
// to the underlying NVM location. Functions marked //iprune:preserve
// are themselves exempt — they are the audited two-phase commit
// internals, which necessarily look like WARs. Sites opt out with
// //iprune:allow-war <reason>.
var WARHazard = &Analyzer{
	Name:  "warhazard",
	Doc:   "no write-after-read on NVM state between preservation points",
	Allow: "allow-war",
	Scope: func(path string) bool { return true },
	Run:   runWARHazard,
}

func runWARHazard(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.FuncHas(fd, "preserve") {
				continue // the commit primitive itself
			}
			wf := &warFunc{
				pass:     pass,
				derived:  map[types.Object]warKey{},
				display:  map[warKey]string{},
				guards:   map[types.Object]bool{},
				reported: map[token.Pos]bool{},
			}
			wf.collectDerived(fd.Body)
			wf.collectGuards(fd.Body)
			wf.analyze(fd.Body)
		}
	}
}

// wholeLoc is the index of an unrefined NVM location: the whole value,
// or an element selected by a non-constant index.
const wholeLoc = -1

// maxPathStates bounds the disjunction width of the path-sensitive
// state; beyond it, incoming states merge into the first state with
// their guard environments intersected (sound, less precise).
const maxPathStates = 8

// warKey identifies one NVM location: the field or type object plus a
// constant-index refinement for array-typed fields (idx == wholeLoc
// when the whole location is meant).
type warKey struct {
	obj types.Object
	idx int
}

// overlaps reports whether two keys may denote overlapping storage.
func (k warKey) overlaps(o warKey) bool {
	return k.obj == o.obj && (k.idx == wholeLoc || o.idx == wholeLoc || k.idx == o.idx)
}

// warAccess is the per-location dataflow fact: was the first access in
// the current preservation interval a read (and where)?
type warAccess struct {
	readFirst bool
	pos       token.Pos // position of the first read, for the diagnostic
}

// warFact maps an NVM location to its first-access state. Absent means
// untouched this interval.
type warFact map[warKey]warAccess

// pathFact is the dataflow fact along one boolean-guard valuation: the
// guard locals whose value is known on this path, and the per-location
// first-access state under that assumption.
type pathFact struct {
	env map[types.Object]bool
	acc warFact
}

func (p *pathFact) clone() *pathFact {
	cp := &pathFact{
		env: make(map[types.Object]bool, len(p.env)),
		acc: make(warFact, len(p.acc)),
	}
	for k, v := range p.env {
		cp.env[k] = v
	}
	for k, v := range p.acc {
		cp.acc[k] = v
	}
	return cp
}

// warState is the disjunctive dataflow state: one pathFact per
// distinguishable guard valuation, bounded by maxPathStates. nil is the
// solver's bottom (block not yet reached on any path).
type warState []*pathFact

// warFunc analyzes one function body.
type warFunc struct {
	pass     *Pass
	derived  map[types.Object]warKey // local var -> NVM location it aliases
	display  map[warKey]string       // location -> human name
	guards   map[types.Object]bool   // boolean locals trackable as path guards
	reported map[token.Pos]bool      // write sites already diagnosed (dedupe across path states)
}

// collectDerived finds locals that alias NVM state: simple assignments
// or declarations whose right-hand side resolves to an NVM location
// (possibly through another derived local), iterated to a fixpoint so
// chains resolve regardless of order. Only reference types (slices,
// pointers, maps) alias — writing through them mutates the NVM backing
// store; a scalar binding is a value copy, i.e. just a read.
// Flow-insensitive by design: a variable that ever aliases NVM is
// treated as aliasing it everywhere.
func (w *warFunc) collectDerived(body *ast.BlockStmt) {
	bind := func(lhs, rhs ast.Expr) bool {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := w.pass.Info.Defs[id]
		if obj == nil {
			obj = w.pass.Info.Uses[id]
		}
		if obj == nil || !referenceType(obj.Type()) {
			return false
		}
		if _, done := w.derived[obj]; done {
			return false
		}
		if key, disp, ok := w.nvmRef(rhs); ok {
			w.derived[obj] = key
			if _, ok := w.display[key]; !ok {
				w.display[key] = disp
			}
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						if bind(n.Lhs[i], n.Rhs[i]) {
							changed = true
						}
					}
				}
			case *ast.DeclStmt:
				if gd, ok := n.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
							for i := range vs.Names {
								if bind(vs.Names[i], vs.Values[i]) {
									changed = true
								}
							}
						}
					}
				}
			}
			return true
		})
	}
}

// collectGuards finds the boolean locals usable as path guards: plain
// identifiers appearing as (possibly negated) if/for conditions whose
// value assignments the analysis can observe. A guard whose address is
// taken or that is assigned inside a function literal escapes the
// per-path tracking and is dropped.
func (w *warFunc) collectGuards(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			w.guardCandidate(n.Cond)
		case *ast.ForStmt:
			if n.Cond != nil {
				w.guardCandidate(n.Cond)
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if obj := w.identObj(n.X); obj != nil {
					delete(w.guards, obj)
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if as, ok := m.(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						if obj := w.identObj(lhs); obj != nil {
							delete(w.guards, obj)
						}
					}
				}
				return true
			})
		}
		return true
	})
}

// guardCandidate registers cond's guard variable, if cond is a plain
// (possibly !-negated) boolean identifier.
func (w *warFunc) guardCandidate(cond ast.Expr) {
	if obj, _, ok := w.guardCond(cond); ok {
		w.guards[obj] = true
	}
}

// guardCond decomposes a branch condition into (guard object, value the
// condition asserts when true). Only `b` and `!b` forms qualify.
func (w *warFunc) guardCond(cond ast.Expr) (types.Object, bool, bool) {
	e := ast.Unparen(cond)
	val := true
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		e = ast.Unparen(u.X)
		val = false
	}
	obj := w.identObj(e)
	if obj == nil {
		return nil, false, false
	}
	if v, ok := obj.(*types.Var); !ok || v.IsField() {
		return nil, false, false
	}
	if b, ok := obj.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsBoolean == 0 {
		return nil, false, false
	}
	return obj, val, true
}

func (w *warFunc) identObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := w.pass.Info.Uses[id]
	if obj == nil {
		obj = w.pass.Info.Defs[id]
	}
	return obj
}

// analyze runs the path-sensitive dataflow over the function body and
// then replays each block against its fixed entry state to emit
// diagnostics exactly once.
func (w *warFunc) analyze(body *ast.BlockStmt) {
	g := flow.Build(body)
	facts := flow.ForwardEdges(g,
		warState{&pathFact{env: map[types.Object]bool{}, acc: warFact{}}},
		func() warState { return nil },
		w.join, w.transfer, w.refine)
	for _, b := range g.Blocks {
		states := make(warState, 0, len(facts[b]))
		for _, s := range facts[b] {
			states = append(states, s.clone())
		}
		for _, n := range b.Nodes {
			for _, s := range states {
				w.node(n, s, true)
			}
		}
	}
}

// join folds a predecessor's exit states into a block's entry states:
// a state with an already-seen guard environment merges its access
// facts into that state; a new environment appends a new state until
// the width bound, beyond which it merges into the first state with
// environments intersected.
func (w *warFunc) join(dst, src warState) (warState, bool) {
	if src == nil {
		return dst, false
	}
	changed := false
	for _, s := range src {
		var match *pathFact
		for _, d := range dst {
			if envEqual(d.env, s.env) {
				match = d
				break
			}
		}
		switch {
		case match != nil:
			if accJoin(match.acc, s.acc) {
				changed = true
			}
		case len(dst) < maxPathStates:
			dst = append(dst, s.clone())
			changed = true
		default:
			d := dst[0]
			for k, v := range d.env {
				if sv, ok := s.env[k]; !ok || sv != v {
					delete(d.env, k)
					changed = true
				}
			}
			if accJoin(d.acc, s.acc) {
				changed = true
			}
		}
	}
	return dst, changed
}

func envEqual(a, b map[types.Object]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// accJoin merges src's access facts into dst with the interval
// semantics: read-first survives a merge with an untouched path (the
// merged path may still read first), written-first survives only when
// written on both paths.
func accJoin(dst, src warFact) bool {
	changed := false
	for key, acc := range src {
		old, ok := dst[key]
		switch {
		case !ok:
			// Untouched on the dst path: the merge may still read first,
			// so src's state only survives if it is the hazardous one.
			if acc.readFirst {
				dst[key] = acc
				changed = true
			}
		case old.readFirst:
			if acc.readFirst && acc.pos < old.pos {
				dst[key] = acc
				changed = true
			}
		case acc.readFirst:
			dst[key] = acc
			changed = true
		}
	}
	// written-first on dst but absent on src: the src path can still
	// read first later, so written-first must not survive the merge.
	for key, acc := range dst {
		if !acc.readFirst {
			if _, ok := src[key]; !ok {
				delete(dst, key)
				changed = true
			}
		}
	}
	return changed
}

// transfer interprets a block's nodes over every path state.
func (w *warFunc) transfer(b *flow.Block, in warState) warState {
	out := make(warState, 0, len(in))
	for _, s := range in {
		out = append(out, s.clone())
	}
	for _, n := range b.Nodes {
		for _, s := range out {
			w.node(n, s, false)
		}
	}
	return out
}

// refine specializes a block's exit states to the branch edge being
// taken: when the block ends in a recognizable guard condition, states
// contradicting the edge's outcome are infeasible and dropped, and the
// surviving states record the asserted value.
func (w *warFunc) refine(from, to *flow.Block, out warState) (warState, bool) {
	br := from.Branch
	if br == nil {
		return out, true
	}
	obj, condVal, ok := w.guardCond(br.Cond)
	if !ok || !w.guards[obj] {
		return out, true
	}
	var want bool
	switch to {
	case br.True:
		want = condVal
	case br.False:
		want = !condVal
	default:
		return out, true
	}
	var kept warState
	for _, s := range out {
		if known, ok := s.env[obj]; ok && known != want {
			continue // this path's guard value contradicts the edge
		}
		cp := s.clone()
		cp.env[obj] = want
		kept = append(kept, cp)
	}
	if len(kept) == 0 {
		return nil, false
	}
	return kept, true
}

// node interprets one CFG node, updating the path state and (when
// report is set) emitting diagnostics for hazardous writes.
func (w *warFunc) node(n ast.Node, pf *pathFact, report bool) {
	st := pf.acc
	switch n := n.(type) {
	case *ast.AssignStmt:
		compound := n.Tok != token.ASSIGN && n.Tok != token.DEFINE
		if !compound && len(n.Lhs) == len(n.Rhs) {
			// Pairwise: an alias binding (dst := e.nvm.buf[k]) copies a
			// slice header or address, not the data a later write will
			// overwrite — re-binding on re-execution is idempotent — so
			// it does not count as a read of the location. Its index
			// sub-expressions are still real reads.
			for i := range n.Rhs {
				if w.aliasBinding(n.Lhs[i], n.Rhs[i]) {
					w.indexReads(n.Rhs[i], st)
				} else {
					w.reads(n.Rhs[i], st)
				}
			}
		} else {
			for _, rhs := range n.Rhs {
				w.reads(rhs, st)
			}
		}
		for _, lhs := range n.Lhs {
			if compound {
				w.reads(lhs, st) // x += v reads x first
			}
			w.writeTarget(lhs, st, report)
		}
		w.updateGuards(n, pf)
	case *ast.IncDecStmt:
		w.reads(n.X, st)
		w.writeTarget(n.X, st, report)
	case *ast.ExprStmt:
		w.reads(n.X, st)
	case *ast.SendStmt:
		w.reads(n.Chan, st)
		w.reads(n.Value, st)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			w.reads(r, st)
		}
	case *ast.DeferStmt:
		// Argument evaluation happens here; the deferred call itself
		// runs at return and is not a preservation point on this path.
		w.readsCallArgs(n.Call, st)
	case *ast.GoStmt:
		w.readsCallArgs(n.Call, st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.reads(v, st)
					}
					for _, name := range vs.Names {
						if obj := w.pass.Info.Defs[name]; obj != nil && w.guards[obj] {
							w.setGuard(pf, obj, vs.Values, indexOf(vs.Names, name))
						}
					}
				}
			}
		}
	case *ast.RangeStmt:
		// Stands for the per-iteration key/value binding (flow.Build);
		// X was consumed in a predecessor block.
		if n.Key != nil {
			w.writeTarget(n.Key, st, report)
			if obj := w.identObj(n.Key); obj != nil {
				delete(pf.env, obj)
			}
		}
		if n.Value != nil {
			w.writeTarget(n.Value, st, report)
			if obj := w.identObj(n.Value); obj != nil {
				delete(pf.env, obj)
			}
		}
	case ast.Expr:
		w.reads(n, st)
	}
}

// updateGuards tracks assignments to guard locals: a constant boolean
// right-hand side pins the guard's value on this path, anything else
// invalidates it.
func (w *warFunc) updateGuards(n *ast.AssignStmt, pf *pathFact) {
	for i, lhs := range n.Lhs {
		obj := w.identObj(lhs)
		if obj == nil || !w.guards[obj] {
			continue
		}
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			delete(pf.env, obj) // compound ops do not apply to bools anyway
			continue
		}
		if len(n.Lhs) == len(n.Rhs) {
			if v, ok := boolConst(w.pass.Info, n.Rhs[i]); ok {
				pf.env[obj] = v
				continue
			}
		}
		delete(pf.env, obj)
	}
}

// setGuard pins a guard declared with a constant initializer (var
// declarations route here; := assignments go through updateGuards).
func (w *warFunc) setGuard(pf *pathFact, obj types.Object, values []ast.Expr, i int) {
	if i >= 0 && i < len(values) {
		if v, ok := boolConst(w.pass.Info, values[i]); ok {
			pf.env[obj] = v
			return
		}
	}
	if len(values) == 0 {
		pf.env[obj] = false // zero value
		return
	}
	delete(pf.env, obj)
}

func indexOf(names []*ast.Ident, name *ast.Ident) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

// boolConst evaluates e as a compile-time boolean constant.
func boolConst(info *types.Info, e ast.Expr) (bool, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}

// intConst evaluates e as a compile-time non-negative integer constant.
func intConst(info *types.Info, e ast.Expr) (int, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact || v < 0 {
		return 0, false
	}
	return int(v), true
}

// reads records every NVM read inside the expression and handles calls:
// arguments are read, and a call to a //iprune:preserve function ends
// the interval. Function-literal bodies are skipped — they execute when
// called, and the analyzer treats closures conservatively (their NVM
// accesses are out of this function's interval tracking).
func (w *warFunc) reads(e ast.Expr, st warFact) {
	switch x := e.(type) {
	case nil:
	case *ast.ParenExpr:
		w.reads(x.X, st)
	case *ast.StarExpr:
		w.reads(x.X, st)
	case *ast.UnaryExpr:
		w.reads(x.X, st)
	case *ast.BinaryExpr:
		w.reads(x.X, st)
		w.reads(x.Y, st)
	case *ast.KeyValueExpr:
		w.reads(x.Key, st)
		w.reads(x.Value, st)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			w.reads(el, st)
		}
	case *ast.TypeAssertExpr:
		w.reads(x.X, st)
	case *ast.FuncLit:
		// skip: see doc comment
	case *ast.CallExpr:
		w.readsCallArgs(x, st)
		if fn := staticCallee(w.pass.Info, x); fn != nil && w.pass.Dirs.ObjHas(fn, "preserve") {
			// Preservation point: everything before it is durable.
			for k := range st {
				delete(st, k)
			}
		}
	case *ast.SliceExpr:
		if key, disp, ok := w.nvmRef(x); ok {
			w.read(key, disp, x.Pos(), st)
		} else {
			w.reads(x.X, st)
		}
		w.reads(x.Low, st)
		w.reads(x.High, st)
		w.reads(x.Max, st)
	case *ast.IndexExpr:
		if key, disp, ok := w.nvmRef(x); ok {
			w.read(key, disp, x.Pos(), st)
		} else {
			w.reads(x.X, st)
		}
		w.reads(x.Index, st)
	case *ast.SelectorExpr:
		if key, disp, ok := w.nvmRef(x); ok {
			w.read(key, disp, x.Pos(), st)
			return
		}
		w.reads(x.X, st)
	case *ast.Ident:
		if key, disp, ok := w.nvmRef(x); ok {
			w.read(key, disp, x.Pos(), st)
		}
	}
}

func (w *warFunc) readsCallArgs(call *ast.CallExpr, st warFact) {
	// A method receiver read (e.nvm.buf.Len()) counts too.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.reads(sel.X, st)
	}
	for _, a := range call.Args {
		w.reads(a, st)
	}
}

// aliasBinding reports whether lhs is a local the derived-alias pass
// bound to exactly the NVM location rhs denotes.
func (w *warFunc) aliasBinding(lhs, rhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := w.pass.Info.Defs[id]
	if obj == nil {
		obj = w.pass.Info.Uses[id]
	}
	if obj == nil {
		return false
	}
	key, bound := w.derived[obj]
	if !bound {
		return false
	}
	rkey, _, ok := w.nvmRef(rhs)
	return ok && rkey == key
}

// read records a first access being a read. A location already written
// this interval stays written-first: re-execution deterministically
// repeats the store before the read, so the read is consistent — and a
// whole-location write covers every constant-index sub-location.
// Reading a whole marked struct reads every field.
func (w *warFunc) read(key warKey, disp string, pos token.Pos, st warFact) {
	if _, ok := st[key]; !ok {
		covered := false
		if key.idx != wholeLoc {
			if acc, ok := st[warKey{obj: key.obj, idx: wholeLoc}]; ok && !acc.readFirst {
				covered = true
			}
		}
		if !covered {
			st[key] = warAccess{readFirst: true, pos: pos}
			w.display[key] = disp
		}
	}
	if named := asNamed(key.obj.Type()); named != nil && w.pass.Dirs.ObjHas(named.Obj(), "nvm") {
		if s, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < s.NumFields(); i++ {
				fk := warKey{obj: s.Field(i), idx: wholeLoc}
				if _, ok := st[fk]; !ok {
					st[fk] = warAccess{readFirst: true, pos: pos}
					w.display[fk] = named.Obj().Name() + "." + s.Field(i).Name()
				}
			}
		}
	}
}

// writeTarget resolves an assignment target; an NVM write to a
// location whose first access overlaps a read is the hazard. Assigning
// to a derived local *itself* (dst = ..., not dst[i] = ...) only
// replaces the local's header — the NVM backing store is untouched.
func (w *warFunc) writeTarget(e ast.Expr, st warFact, report bool) {
	if id, ok := e.(*ast.Ident); ok {
		obj := w.pass.Info.Defs[id]
		if obj == nil {
			obj = w.pass.Info.Uses[id]
		}
		if obj != nil {
			if _, isAlias := w.derived[obj]; isAlias {
				return
			}
		}
	}
	key, disp, ok := w.nvmRef(e)
	if !ok {
		// Index/slice sub-expressions of a non-NVM target may still
		// read NVM (a[nvm.idx] = v); nvmRef's unwrap loop covers the
		// NVM case below, so only scan here.
		w.indexReads(e, st)
		return
	}
	w.indexReads(e, st)
	// The hazard: any overlapping location read first this interval.
	hazard := warAccess{}
	for k, acc := range st {
		if acc.readFirst && k.overlaps(key) {
			if !hazard.readFirst || acc.pos < hazard.pos {
				hazard = acc
			}
		}
	}
	if hazard.readFirst {
		if report && !w.reported[e.Pos()] {
			w.reported[e.Pos()] = true
			w.pass.Reportf(e.Pos(),
				"WAR hazard on NVM-backed %s: written after a read at line %d with no preservation point between (re-execution after a power failure would observe the new value; commit through an //iprune:preserve function or annotate //iprune:allow-war)",
				disp, w.pass.Fset.Position(hazard.pos).Line)
		}
		// Downgrade the overlapping locations to written-first: one
		// report per interval per site.
		for k, acc := range st {
			if acc.readFirst && k.overlaps(key) {
				st[k] = warAccess{}
			}
		}
		st[key] = warAccess{}
		w.display[key] = disp
		return
	}
	if _, hit := st[key]; !hit {
		st[key] = warAccess{} // written-first: safe to re-execute
		w.display[key] = disp
	}
	// Writing a whole marked struct makes every field written-first.
	if named := asNamed(key.obj.Type()); named != nil && w.pass.Dirs.ObjHas(named.Obj(), "nvm") {
		if s, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < s.NumFields(); i++ {
				fk := warKey{obj: s.Field(i), idx: wholeLoc}
				if _, hit := st[fk]; !hit {
					st[fk] = warAccess{}
					w.display[fk] = named.Obj().Name() + "." + s.Field(i).Name()
				}
			}
		}
	}
}

// indexReads scans the index/slice sub-expressions along an assignment
// target's access path for NVM reads (the target itself is the write).
func (w *warFunc) indexReads(e ast.Expr, st warFact) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			w.reads(x.Index, st)
			e = x.X
		case *ast.SliceExpr:
			w.reads(x.Low, st)
			w.reads(x.High, st)
			w.reads(x.Max, st)
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return
		}
	}
}

// nvmRef resolves an expression to the NVM location it denotes: a field
// marked //iprune:nvm, any field of a type marked //iprune:nvm, a whole
// value of a marked type, or a local variable derived from one
// (collectDerived). A constant index into an array-typed NVM location
// refines it into a disjoint sub-location (partial[0] vs partial[1]);
// any other index denotes the whole location. Returns the identifying
// key and a display name.
func (w *warFunc) nvmRef(e ast.Expr) (warKey, string, bool) {
	p := w.pass
	switch x := e.(type) {
	case *ast.ParenExpr:
		return w.nvmRef(x.X)
	case *ast.StarExpr:
		return w.nvmRef(x.X)
	case *ast.SliceExpr:
		return w.nvmRef(x.X)
	case *ast.IndexExpr:
		key, disp, ok := w.nvmRef(x.X)
		if !ok {
			return warKey{}, "", false
		}
		if key.idx == wholeLoc {
			if t := p.Info.Types[x.X].Type; t != nil {
				if _, isArr := t.Underlying().(*types.Array); isArr {
					if c, okc := intConst(p.Info, x.Index); okc {
						return warKey{obj: key.obj, idx: c}, disp + "[" + strconv.Itoa(c) + "]", true
					}
				}
			}
		}
		return key, disp, true
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok {
			if obj := sel.Obj(); obj != nil && p.Dirs.ObjHas(obj, "nvm") {
				return warKey{obj: obj, idx: wholeLoc}, obj.Name(), true
			}
			if named := asNamed(sel.Recv()); named != nil && p.Dirs.ObjHas(named.Obj(), "nvm") {
				if obj := sel.Obj(); obj != nil {
					return warKey{obj: obj, idx: wholeLoc}, named.Obj().Name() + "." + x.Sel.Name, true
				}
			}
		}
		if named := asNamed(p.Info.Types[x].Type); named != nil && p.Dirs.ObjHas(named.Obj(), "nvm") {
			if obj, ok := selectionObj(p, x); ok {
				return warKey{obj: obj, idx: wholeLoc}, named.Obj().Name(), true
			}
			return warKey{obj: named.Obj(), idx: wholeLoc}, named.Obj().Name(), true
		}
		return w.nvmRef(x.X)
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		if obj != nil {
			if key, ok := w.derived[obj]; ok {
				return key, w.display[key] + " (via " + x.Name + ")", true
			}
			if p.Dirs.ObjHas(obj, "nvm") {
				return warKey{obj: obj, idx: wholeLoc}, obj.Name(), true
			}
		}
		if named := asNamed(p.Info.Types[x].Type); named != nil && p.Dirs.ObjHas(named.Obj(), "nvm") {
			if obj != nil {
				return warKey{obj: obj, idx: wholeLoc}, named.Obj().Name() + " " + x.Name, true
			}
			return warKey{obj: named.Obj(), idx: wholeLoc}, named.Obj().Name(), true
		}
		return warKey{}, "", false
	default:
		return warKey{}, "", false
	}
}

// selectionObj returns the field object a selector denotes, if any.
func selectionObj(p *Pass, x *ast.SelectorExpr) (types.Object, bool) {
	if sel, ok := p.Info.Selections[x]; ok && sel.Obj() != nil {
		return sel.Obj(), true
	}
	return nil, false
}

// referenceType reports whether writes through a value of t reach
// shared backing storage.
func referenceType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}

// asNamed unwraps pointers to a named type.
func asNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// staticCallee resolves a call expression's target function when it is
// a plain function or method reference.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
