package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"iprune/internal/analysis/flow"
)

// WARHazard flags write-after-read (WAR) hazards on //iprune:nvm state
// between preservation points. The progress-preservation argument
// (HAWAII⁺, and Alpaca-style idempotence analysis for intermittent
// programs generally) requires that everything between two commits be
// safe to re-execute after a power failure. A nonvolatile location that
// is *read and then overwritten* inside one preservation interval breaks
// that: re-execution reads the overwritten value and computes a
// different result than the first attempt — work is silently corrupted
// rather than resumed.
//
// The analyzer builds a per-function CFG (internal/analysis/flow) and
// runs a forward dataflow whose fact tracks, for each NVM location
// (field of a //iprune:nvm type, //iprune:nvm field, or whole marked
// value), whether its *first access since the last preservation point*
// was a read. A write to a read-first location is a finding; a call to
// a function marked //iprune:preserve ends the interval (the commit
// makes everything before it durable, so re-execution restarts after
// it). A location whose first access is a write is safe to rewrite —
// deterministic re-execution just repeats the store — which is exactly
// Alpaca's WAR criterion.
//
// Local variables derived from NVM state (`dst := e.nvm.buf[i]`) are
// tracked flow-insensitively: a write through such an alias is a write
// to the underlying NVM location. Functions marked //iprune:preserve
// are themselves exempt — they are the audited two-phase commit
// internals, which necessarily look like WARs. Sites opt out with
// //iprune:allow-war <reason>.
var WARHazard = &Analyzer{
	Name:  "warhazard",
	Doc:   "no write-after-read on NVM state between preservation points",
	Allow: "allow-war",
	Scope: func(path string) bool { return true },
	Run:   runWARHazard,
}

func runWARHazard(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.FuncHas(fd, "preserve") {
				continue // the commit primitive itself
			}
			wf := &warFunc{pass: pass, derived: map[types.Object]types.Object{}, display: map[types.Object]string{}}
			wf.collectDerived(fd.Body)
			wf.analyze(fd.Body)
		}
	}
}

// warAccess is the per-location dataflow fact: was the first access in
// the current preservation interval a read (and where)?
type warAccess struct {
	readFirst bool
	pos       token.Pos // position of the first read, for the diagnostic
}

// warFact maps an NVM location (the field or type object identifying
// it) to its first-access state. Absent means untouched this interval.
type warFact map[types.Object]warAccess

// warFunc analyzes one function body.
type warFunc struct {
	pass    *Pass
	derived map[types.Object]types.Object // local var -> NVM location it aliases
	display map[types.Object]string       // location -> human name
}

// collectDerived finds locals that alias NVM state: simple assignments
// or declarations whose right-hand side resolves to an NVM location
// (possibly through another derived local), iterated to a fixpoint so
// chains resolve regardless of order. Only reference types (slices,
// pointers, maps) alias — writing through them mutates the NVM backing
// store; a scalar binding is a value copy, i.e. just a read.
// Flow-insensitive by design: a variable that ever aliases NVM is
// treated as aliasing it everywhere.
func (w *warFunc) collectDerived(body *ast.BlockStmt) {
	bind := func(lhs, rhs ast.Expr) bool {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := w.pass.Info.Defs[id]
		if obj == nil {
			obj = w.pass.Info.Uses[id]
		}
		if obj == nil || !referenceType(obj.Type()) {
			return false
		}
		if _, done := w.derived[obj]; done {
			return false
		}
		if key, disp, ok := w.nvmRef(rhs); ok {
			w.derived[obj] = key
			if _, ok := w.display[key]; !ok {
				w.display[key] = disp
			}
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						if bind(n.Lhs[i], n.Rhs[i]) {
							changed = true
						}
					}
				}
			case *ast.DeclStmt:
				if gd, ok := n.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
							for i := range vs.Names {
								if bind(vs.Names[i], vs.Values[i]) {
									changed = true
								}
							}
						}
					}
				}
			}
			return true
		})
	}
}

// analyze runs the dataflow over the function body and then replays each
// block against its fixed entry fact to emit diagnostics exactly once.
func (w *warFunc) analyze(body *ast.BlockStmt) {
	g := flow.Build(body)
	// nil is the solver's bottom (block not yet reached on any path) and
	// must stay distinct from the empty fact (reached, nothing accessed):
	// written-first survives a join with bottom but not a join with a
	// genuinely-untouched path, where the next access may still read.
	join := func(dst, src warFact) (warFact, bool) {
		if src == nil {
			return dst, false
		}
		if dst == nil {
			cp := make(warFact, len(src))
			for k, v := range src {
				cp[k] = v
			}
			return cp, true
		}
		changed := false
		for key, acc := range src {
			old, ok := dst[key]
			switch {
			case !ok:
				// Untouched on the dst path: the merge may still read
				// first, so src's state only survives if it is the
				// hazardous one.
				if acc.readFirst {
					dst[key] = acc
					changed = true
				}
			case old.readFirst:
				if acc.readFirst && acc.pos < old.pos {
					dst[key] = acc
					changed = true
				}
			case acc.readFirst:
				dst[key] = acc
				changed = true
			}
		}
		// written-first on dst but absent on src: the src path can still
		// read first later, so written-first must not survive the merge.
		for key, acc := range dst {
			if !acc.readFirst {
				if _, ok := src[key]; !ok {
					delete(dst, key)
					changed = true
				}
			}
		}
		return dst, changed
	}
	transfer := func(b *flow.Block, in warFact) warFact {
		st := make(warFact, len(in))
		for k, v := range in {
			st[k] = v
		}
		for _, n := range b.Nodes {
			w.node(n, st, false)
		}
		return st
	}
	facts := flow.Forward(g, warFact{}, func() warFact { return nil }, join, transfer)
	for _, b := range g.Blocks {
		st := make(warFact, len(facts[b]))
		for k, v := range facts[b] {
			st[k] = v
		}
		for _, n := range b.Nodes {
			w.node(n, st, true)
		}
	}
}

// node interprets one CFG node, updating the fact and (when report is
// set) emitting diagnostics for hazardous writes.
func (w *warFunc) node(n ast.Node, st warFact, report bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		compound := n.Tok != token.ASSIGN && n.Tok != token.DEFINE
		if !compound && len(n.Lhs) == len(n.Rhs) {
			// Pairwise: an alias binding (dst := e.nvm.buf[k]) copies a
			// slice header or address, not the data a later write will
			// overwrite — re-binding on re-execution is idempotent — so
			// it does not count as a read of the location. Its index
			// sub-expressions are still real reads.
			for i := range n.Rhs {
				if w.aliasBinding(n.Lhs[i], n.Rhs[i]) {
					w.indexReads(n.Rhs[i], st)
				} else {
					w.reads(n.Rhs[i], st)
				}
			}
		} else {
			for _, rhs := range n.Rhs {
				w.reads(rhs, st)
			}
		}
		for _, lhs := range n.Lhs {
			if compound {
				w.reads(lhs, st) // x += v reads x first
			}
			w.writeTarget(lhs, st, report)
		}
	case *ast.IncDecStmt:
		w.reads(n.X, st)
		w.writeTarget(n.X, st, report)
	case *ast.ExprStmt:
		w.reads(n.X, st)
	case *ast.SendStmt:
		w.reads(n.Chan, st)
		w.reads(n.Value, st)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			w.reads(r, st)
		}
	case *ast.DeferStmt:
		// Argument evaluation happens here; the deferred call itself
		// runs at return and is not a preservation point on this path.
		w.readsCallArgs(n.Call, st)
	case *ast.GoStmt:
		w.readsCallArgs(n.Call, st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.reads(v, st)
					}
				}
			}
		}
	case *ast.RangeStmt:
		// Stands for the per-iteration key/value binding (flow.Build);
		// X was consumed in a predecessor block.
		if n.Key != nil {
			w.writeTarget(n.Key, st, report)
		}
		if n.Value != nil {
			w.writeTarget(n.Value, st, report)
		}
	case ast.Expr:
		w.reads(n, st)
	}
}

// reads records every NVM read inside the expression and handles calls:
// arguments are read, and a call to a //iprune:preserve function ends
// the interval. Function-literal bodies are skipped — they execute when
// called, and the analyzer treats closures conservatively (their NVM
// accesses are out of this function's interval tracking).
func (w *warFunc) reads(e ast.Expr, st warFact) {
	switch x := e.(type) {
	case nil:
	case *ast.ParenExpr:
		w.reads(x.X, st)
	case *ast.StarExpr:
		w.reads(x.X, st)
	case *ast.UnaryExpr:
		w.reads(x.X, st)
	case *ast.BinaryExpr:
		w.reads(x.X, st)
		w.reads(x.Y, st)
	case *ast.KeyValueExpr:
		w.reads(x.Key, st)
		w.reads(x.Value, st)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			w.reads(el, st)
		}
	case *ast.TypeAssertExpr:
		w.reads(x.X, st)
	case *ast.FuncLit:
		// skip: see doc comment
	case *ast.CallExpr:
		w.readsCallArgs(x, st)
		if fn := staticCallee(w.pass.Info, x); fn != nil && w.pass.Dirs.ObjHas(fn, "preserve") {
			// Preservation point: everything before it is durable.
			for k := range st {
				delete(st, k)
			}
		}
	case *ast.SliceExpr:
		if key, disp, ok := w.nvmRef(x); ok {
			w.read(key, disp, x.Pos(), st)
		} else {
			w.reads(x.X, st)
		}
		w.reads(x.Low, st)
		w.reads(x.High, st)
		w.reads(x.Max, st)
	case *ast.IndexExpr:
		if key, disp, ok := w.nvmRef(x); ok {
			w.read(key, disp, x.Pos(), st)
		} else {
			w.reads(x.X, st)
		}
		w.reads(x.Index, st)
	case *ast.SelectorExpr:
		if key, disp, ok := w.nvmRef(x); ok {
			w.read(key, disp, x.Pos(), st)
			return
		}
		w.reads(x.X, st)
	case *ast.Ident:
		if key, disp, ok := w.nvmRef(x); ok {
			w.read(key, disp, x.Pos(), st)
		}
	}
}

func (w *warFunc) readsCallArgs(call *ast.CallExpr, st warFact) {
	// A method receiver read (e.nvm.buf.Len()) counts too.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.reads(sel.X, st)
	}
	for _, a := range call.Args {
		w.reads(a, st)
	}
}

// aliasBinding reports whether lhs is a local the derived-alias pass
// bound to exactly the NVM location rhs denotes.
func (w *warFunc) aliasBinding(lhs, rhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := w.pass.Info.Defs[id]
	if obj == nil {
		obj = w.pass.Info.Uses[id]
	}
	if obj == nil {
		return false
	}
	key, bound := w.derived[obj]
	if !bound {
		return false
	}
	rkey, _, ok := w.nvmRef(rhs)
	return ok && rkey == key
}

// read records a first access being a read. A location already written
// this interval stays written-first: re-execution deterministically
// repeats the store before the read, so the read is consistent. Reading
// a whole marked struct reads every field.
func (w *warFunc) read(key types.Object, disp string, pos token.Pos, st warFact) {
	if _, ok := st[key]; !ok {
		st[key] = warAccess{readFirst: true, pos: pos}
		w.display[key] = disp
	}
	if named := asNamed(key.Type()); named != nil && w.pass.Dirs.ObjHas(named.Obj(), "nvm") {
		if s, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < s.NumFields(); i++ {
				f := s.Field(i)
				if _, ok := st[f]; !ok {
					st[f] = warAccess{readFirst: true, pos: pos}
					w.display[f] = named.Obj().Name() + "." + f.Name()
				}
			}
		}
	}
}

// writeTarget resolves an assignment target; an NVM write to a
// read-first location is the hazard. Assigning to a derived local
// *itself* (dst = ..., not dst[i] = ...) only replaces the local's
// header — the NVM backing store is untouched.
func (w *warFunc) writeTarget(e ast.Expr, st warFact, report bool) {
	if id, ok := e.(*ast.Ident); ok {
		obj := w.pass.Info.Defs[id]
		if obj == nil {
			obj = w.pass.Info.Uses[id]
		}
		if obj != nil {
			if _, isAlias := w.derived[obj]; isAlias {
				return
			}
		}
	}
	key, disp, ok := w.nvmRef(e)
	if !ok {
		// Index/slice sub-expressions of a non-NVM target may still
		// read NVM (a[nvm.idx] = v); nvmRef's unwrap loop covers the
		// NVM case below, so only scan here.
		w.indexReads(e, st)
		return
	}
	w.indexReads(e, st)
	if acc, hit := st[key]; hit && acc.readFirst {
		if report {
			w.pass.Reportf(e.Pos(),
				"WAR hazard on NVM-backed %s: written after a read at line %d with no preservation point between (re-execution after a power failure would observe the new value; commit through an //iprune:preserve function or annotate //iprune:allow-war)",
				disp, w.pass.Fset.Position(acc.pos).Line)
		}
		// Downgrade to written-first: one report per interval per site.
		st[key] = warAccess{}
		w.display[key] = disp
		return
	}
	if _, hit := st[key]; !hit {
		st[key] = warAccess{} // written-first: safe to re-execute
		w.display[key] = disp
	}
	// Writing a whole marked struct makes every field written-first.
	if named := asNamed(key.Type()); named != nil && w.pass.Dirs.ObjHas(named.Obj(), "nvm") {
		if s, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < s.NumFields(); i++ {
				f := s.Field(i)
				if _, hit := st[f]; !hit {
					st[f] = warAccess{}
					w.display[f] = named.Obj().Name() + "." + f.Name()
				}
			}
		}
	}
}

// indexReads scans the index/slice sub-expressions along an assignment
// target's access path for NVM reads (the target itself is the write).
func (w *warFunc) indexReads(e ast.Expr, st warFact) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			w.reads(x.Index, st)
			e = x.X
		case *ast.SliceExpr:
			w.reads(x.Low, st)
			w.reads(x.High, st)
			w.reads(x.Max, st)
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return
		}
	}
}

// nvmRef resolves an expression to the NVM location it denotes: a field
// marked //iprune:nvm, any field of a type marked //iprune:nvm, a whole
// value of a marked type, or a local variable derived from one
// (collectDerived). Returns the identifying object and a display name.
func (w *warFunc) nvmRef(e ast.Expr) (types.Object, string, bool) {
	p := w.pass
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := p.Info.Selections[x]; ok {
				if obj := sel.Obj(); obj != nil && p.Dirs.ObjHas(obj, "nvm") {
					return obj, obj.Name(), true
				}
				if named := asNamed(sel.Recv()); named != nil && p.Dirs.ObjHas(named.Obj(), "nvm") {
					if obj := sel.Obj(); obj != nil {
						return obj, named.Obj().Name() + "." + x.Sel.Name, true
					}
				}
			}
			if named := asNamed(p.Info.Types[x].Type); named != nil && p.Dirs.ObjHas(named.Obj(), "nvm") {
				if obj, ok := selectionObj(p, x); ok {
					return obj, named.Obj().Name(), true
				}
				return named.Obj(), named.Obj().Name(), true
			}
			e = x.X
		case *ast.Ident:
			obj := p.Info.Uses[x]
			if obj == nil {
				obj = p.Info.Defs[x]
			}
			if obj != nil {
				if key, ok := w.derived[obj]; ok {
					return key, w.display[key] + " (via " + x.Name + ")", true
				}
				if p.Dirs.ObjHas(obj, "nvm") {
					return obj, obj.Name(), true
				}
			}
			if named := asNamed(p.Info.Types[x].Type); named != nil && p.Dirs.ObjHas(named.Obj(), "nvm") {
				if obj != nil {
					return obj, named.Obj().Name() + " " + x.Name, true
				}
				return named.Obj(), named.Obj().Name(), true
			}
			return nil, "", false
		default:
			return nil, "", false
		}
	}
}

// selectionObj returns the field object a selector denotes, if any.
func selectionObj(p *Pass, x *ast.SelectorExpr) (types.Object, bool) {
	if sel, ok := p.Info.Selections[x]; ok && sel.Obj() != nil {
		return sel.Obj(), true
	}
	return nil, false
}

// referenceType reports whether writes through a value of t reach
// shared backing storage.
func referenceType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}

// asNamed unwraps pointers to a named type.
func asNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// staticCallee resolves a call expression's target function when it is
// a plain function or method reference.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
