package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module in a temp dir. Files maps
// relative paths to contents; a go.mod is written from modpath.
func writeModule(t *testing.T, modpath string, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module " + modpath + "\n\ngo 1.22\n"
	for rel, content := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func loadModule(t *testing.T, dir string, patterns ...string) (*Loader, []*Package) {
	t.Helper()
	l, err := NewLoader(dir, "")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return l, pkgs
}

func TestModulePathFromGoMod(t *testing.T) {
	dir := writeModule(t, "example.org/tiny", map[string]string{
		"a.go": "package tiny\n",
	})
	l, pkgs := loadModule(t, dir)
	if l.ModulePath != "example.org/tiny" {
		t.Fatalf("ModulePath = %q, want example.org/tiny", l.ModulePath)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "example.org/tiny" {
		t.Fatalf("loaded %v, want the root package", pkgs)
	}
}

func TestMalformedSource(t *testing.T) {
	dir := writeModule(t, "m", map[string]string{
		"bad.go": "package m\n\nfunc broken( {\n", // parse error
	})
	_, pkgs := loadModule(t, dir)
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	if len(pkgs[0].Errs) == 0 {
		t.Fatal("parse error not recorded in pkg.Errs")
	}
	// A broken package must be skipped by Run, not analyzed.
	if diags := Run(All(), pkgs, NewDirectives()); len(diags) != 0 {
		t.Fatalf("Run analyzed a broken package: %v", diags)
	}
}

func TestTypeCheckError(t *testing.T) {
	dir := writeModule(t, "m", map[string]string{
		"a.go": "package m\n\nfunc f() int { return \"not an int\" }\n",
	})
	_, pkgs := loadModule(t, dir)
	if len(pkgs) != 1 || len(pkgs[0].Errs) == 0 {
		t.Fatal("type-check error not recorded in pkg.Errs")
	}
	if diags := Run(All(), pkgs, NewDirectives()); len(diags) != 0 {
		t.Fatalf("Run analyzed a package with type errors: %v", diags)
	}
}

func TestMultiFilePackage(t *testing.T) {
	// g (in b.go) calls f (in a.go): type checking must see both files
	// as one package, and directives from each file must be indexed.
	dir := writeModule(t, "m", map[string]string{
		"a.go": "package m\n\n//iprune:hotpath\nfunc f(n int) int { return n }\n",
		"b.go": "package m\n\nfunc g() int { return f(1) }\n",
	})
	l, pkgs := loadModule(t, dir)
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.Errs) > 0 {
		t.Fatalf("multi-file package failed to type-check: %v", pkg.Errs)
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("parsed %d files, want 2", len(pkg.Files))
	}
	obj := pkg.Types.Scope().Lookup("f")
	if obj == nil {
		t.Fatal("f not in package scope")
	}
	if !l.Directives().ObjHas(obj, "hotpath") {
		t.Fatal("hotpath directive from a.go not attached to f")
	}
}

func TestCrossPackageImport(t *testing.T) {
	// The loader must resolve module-internal imports from source.
	dir := writeModule(t, "m", map[string]string{
		"lib/lib.go": "package lib\n\nfunc Answer() int { return 42 }\n",
		"main.go":    "package main\n\nimport \"m/lib\"\n\nfunc main() { _ = lib.Answer() }\n",
	})
	_, pkgs := loadModule(t, dir)
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.Errs) > 0 {
			t.Fatalf("%s has errors: %v", p.Path, p.Errs)
		}
	}
}

func TestDirectiveReasonRequired(t *testing.T) {
	dir := writeModule(t, "m", map[string]string{
		"a.go": "package m\n\nfunc f(a float64) float64 {\n" +
			"\treturn a * 2 //iprune:allow-float\n}\n",
	})
	l, _ := loadModule(t, dir)
	probs := l.Directives().Problems
	if len(probs) != 1 {
		t.Fatalf("got %d directive problems, want 1: %v", len(probs), probs)
	}
	if want := "//iprune:allow-float requires a reason"; probs[0].Message != want {
		t.Fatalf("problem = %q, want %q", probs[0].Message, want)
	}
	// A reasonless allow-* must NOT suppress: the escape hatch only
	// opens with a justification.
	pos := probs[0].Pos
	if l.Directives().LineHas(pos.Filename, pos.Line, "allow-float") {
		t.Fatal("reasonless allow-float was indexed as a live directive")
	}
}

func TestDirectiveWithReason(t *testing.T) {
	dir := writeModule(t, "m", map[string]string{
		"a.go": "package m\n\nfunc f(a float64) float64 {\n" +
			"\treturn a * 2 //iprune:allow-float calibration-time only\n}\n",
	})
	l, _ := loadModule(t, dir)
	if probs := l.Directives().Problems; len(probs) != 0 {
		t.Fatalf("well-formed directive reported as problem: %v", probs)
	}
	fname := filepath.Join(dir, "a.go")
	if !l.Directives().LineHas(fname, 4, "allow-float") {
		t.Fatal("allow-float with reason not indexed on its line")
	}
}

func TestUnknownDirective(t *testing.T) {
	dir := writeModule(t, "m", map[string]string{
		"a.go": "package m\n\n//iprune:allow-everything because I said so\nfunc f() {}\n",
	})
	l, _ := loadModule(t, dir)
	probs := l.Directives().Problems
	if len(probs) != 1 {
		t.Fatalf("got %d directive problems, want 1: %v", len(probs), probs)
	}
	if !strings.Contains(probs[0].Message, "unknown directive //iprune:allow-everything") {
		t.Fatalf("problem = %q, want unknown-directive message", probs[0].Message)
	}
}

func TestLoadPattern(t *testing.T) {
	dir := writeModule(t, "m", map[string]string{
		"lib/lib.go":    "package lib\n",
		"other/o.go":    "package other\n",
		"lib/lib2.go":   "package lib\n\nconst Two = 2\n",
		"testdata/t.go": "package ignored\n",
	})
	_, pkgs := loadModule(t, dir, "./lib")
	if len(pkgs) != 1 || pkgs[0].Path != "m/lib" {
		t.Fatalf("Load(./lib) = %v, want just m/lib", pkgs)
	}
	_, all := loadModule(t, dir, "./...")
	var paths []string
	for _, p := range all {
		paths = append(paths, p.Path)
	}
	if got := strings.Join(paths, " "); got != "m/lib m/other" {
		t.Fatalf("Load(./...) = %q, want %q (testdata skipped)", got, "m/lib m/other")
	}
}

func TestMissingGoMod(t *testing.T) {
	if _, err := NewLoader(t.TempDir(), ""); err == nil {
		t.Fatal("NewLoader without go.mod and module path should fail")
	}
}

func TestVendorSkipped(t *testing.T) {
	// ./... must not descend into vendor trees: vendored packages carry
	// their own import paths and directives that are not this module's.
	dir := writeModule(t, "m", map[string]string{
		"lib/lib.go":             "package lib\n",
		"vendor/dep/dep.go":      "package dep\n",
		"lib/vendor/dep2/dep.go": "package dep2\n",
	})
	_, pkgs := loadModule(t, dir, "./...")
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	if got := strings.Join(paths, " "); got != "m/lib" {
		t.Fatalf("Load(./...) = %q, want %q (vendor trees skipped)", got, "m/lib")
	}
}

func TestUnderscoreAndDotFilesSkipped(t *testing.T) {
	// The go tool ignores _*.go and .*.go entirely; loading them would
	// inject declarations (or syntax errors) the build never sees.
	dir := writeModule(t, "m", map[string]string{
		"a.go":      "package m\n\nconst A = 1\n",
		"_draft.go": "package m\n\nconst A = 2 // redeclaration if loaded\n",
		".gen.go":   "package m\n\nthis is not Go\n",
	})
	_, pkgs := loadModule(t, dir)
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	if len(pkgs[0].Errs) > 0 {
		t.Fatalf("underscore/dot files leaked into the build: %v", pkgs[0].Errs)
	}
	if len(pkgs[0].Files) != 1 {
		t.Fatalf("parsed %d files, want 1", len(pkgs[0].Files))
	}
}

func TestBuildTagExcludedFile(t *testing.T) {
	// A file constrained to a platform this host is not must be excluded
	// exactly as the compiler would exclude it: otherwise its
	// declarations conflict with the host variant's.
	dir := writeModule(t, "m", map[string]string{
		"a.go": "package m\n\nfunc impl() int { return 1 }\n",
		"b.go": "//go:build plan9 && mips64\n\npackage m\n\nfunc impl() int { return 2 }\n",
	})
	_, pkgs := loadModule(t, dir)
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	if len(pkgs[0].Errs) > 0 {
		t.Fatalf("tag-excluded file leaked into the build: %v", pkgs[0].Errs)
	}
	if len(pkgs[0].Files) != 1 {
		t.Fatalf("parsed %d files, want 1 (b.go excluded by //go:build)", len(pkgs[0].Files))
	}
}

func TestFilenameSuffixExcludedFile(t *testing.T) {
	// The _GOOS/_GOARCH filename convention is a build constraint too.
	dir := writeModule(t, "m", map[string]string{
		"a.go":             "package m\n\nfunc impl() int { return 1 }\n",
		"impl_plan9.go":    "package m\n\nfunc impl() int { return 2 }\n",
		"impl_windows.go":  "package m\n\nfunc impl() int { return 3 }\n",
		"impl_mips64le.go": "package m\n\nfunc impl() int { return 4 }\n",
	})
	_, pkgs := loadModule(t, dir)
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	if len(pkgs[0].Errs) > 0 {
		t.Fatalf("platform-suffixed files leaked into the build: %v", pkgs[0].Errs)
	}
	if len(pkgs[0].Files) != 1 {
		t.Fatalf("parsed %d files, want 1 (platform variants excluded)", len(pkgs[0].Files))
	}
}

func TestSyntaxErrorGraceful(t *testing.T) {
	// One broken package must not abort the load: the sibling package
	// still loads clean and the broken one carries its diagnostics.
	dir := writeModule(t, "m", map[string]string{
		"good/good.go": "package good\n\nconst OK = 1\n",
		"bad/bad.go":   "package bad\n\nfunc oops( {\n",
	})
	_, pkgs := loadModule(t, dir, "./...")
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	if p := byPath["m/bad"]; p == nil || len(p.Errs) == 0 {
		t.Fatal("syntax error not recorded on m/bad")
	}
	if p := byPath["m/good"]; p == nil || len(p.Errs) != 0 {
		t.Fatal("clean sibling package affected by m/bad's syntax error")
	}
}
