package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Errs holds parse and type-check errors. A package with errors is
	// not analyzed; the driver reports the errors instead.
	Errs []error
}

// Loader parses and type-checks packages of one module from source.
// Module-internal imports are resolved recursively from the module tree;
// standard-library imports go through the compiler-independent source
// importer, so the loader needs no precompiled export data.
type Loader struct {
	ModulePath string
	RootDir    string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
	dirs    *Directives
}

// NewLoader builds a loader for the module rooted at dir. When modulePath
// is empty it is read from dir/go.mod.
func NewLoader(dir, modulePath string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if modulePath == "" {
		modulePath, err = moduleName(filepath.Join(abs, "go.mod"))
		if err != nil {
			return nil, err
		}
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modulePath,
		RootDir:    abs,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
		dirs:       NewDirectives(),
	}, nil
}

// moduleName extracts the module path from a go.mod file.
func moduleName(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: cannot determine module path: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Fset exposes the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Packages returns every package the loader has loaded — targets and
// their module-internal dependencies — sorted by import path. The
// diagnostics cache uses it to hash a target's dependency closure.
func (l *Loader) Packages() []*Package {
	var out []*Package
	for _, p := range l.pkgs {
		if p != nil {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Directives exposes the directive index accumulated across every loaded
// package (targets and their module-internal dependencies).
func (l *Loader) Directives() *Directives { return l.dirs }

// Load resolves the patterns ("./...", "./internal/tile", "internal/tile")
// to package directories under the module root and loads each. The
// returned slice holds only the matched packages, sorted by import path;
// dependencies are loaded (and their directives indexed) but not
// returned.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []*Package
	for _, pat := range patterns {
		dirs, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, dir := range dirs {
			path, err := l.importPathFor(dir)
			if err != nil {
				return nil, err
			}
			if seen[path] {
				continue
			}
			seen[path] = true
			pkg, err := l.loadPackage(path)
			if err != nil {
				return nil, err
			}
			if pkg != nil {
				out = append(out, pkg)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// expand resolves one pattern to package directories.
func (l *Loader) expand(pat string) ([]string, error) {
	pat = strings.TrimPrefix(pat, "./")
	if pat == "..." {
		return l.walkDirs(l.RootDir)
	}
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		return l.walkDirs(filepath.Join(l.RootDir, rest))
	}
	dir := filepath.Join(l.RootDir, pat)
	if !hasGoFiles(dir) {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return []string{dir}, nil
}

// walkDirs finds every directory under root holding non-test Go files,
// skipping hidden directories, testdata trees and vendor directories
// (mirroring the go tool's ./... semantics).
func (l *Loader) walkDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && sourceFileName(e.Name()) {
			return true
		}
	}
	return false
}

// sourceFileName reports whether a file name belongs to the buildable,
// non-test source set: the go tool ignores files starting with "_" or
// "." entirely, and _test.go files are the test build.
func sourceFileName(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, "_") &&
		!strings.HasPrefix(name, ".")
}

// Platform constraint evaluation: the analyzers run on the host the lint
// runs on, so files constrained to another GOOS/GOARCH are excluded just
// as the compiler would exclude them — analyzing them would produce
// type errors against the host's dependency set.

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// fileNameConstraintOK evaluates the _GOOS and _GOARCH filename suffix
// convention (name_linux.go, name_arm64.go, name_linux_arm64.go).
func fileNameConstraintOK(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		if last != runtime.GOARCH {
			return false
		}
		if len(parts) >= 3 {
			if penult := parts[len(parts)-2]; knownOS[penult] && penult != runtime.GOOS {
				return false
			}
		}
		return true
	}
	if knownOS[last] {
		return last == runtime.GOOS
	}
	return true
}

// buildConstraintOK evaluates a parsed file's //go:build (or legacy
// // +build) constraint against the host platform. Files without a
// constraint are always included.
func buildConstraintOK(f *ast.File) bool {
	for _, g := range f.Comments {
		if g.Pos() >= f.Package {
			break
		}
		for _, c := range g.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue // malformed constraint: include, let the compiler complain
			}
			return expr.Eval(buildTagSatisfied)
		}
	}
	return true
}

func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "aix", "android", "darwin", "dragonfly", "freebsd", "illumos",
			"ios", "linux", "netbsd", "openbsd", "solaris":
			return true
		}
		return false
	}
	// Any toolchain new enough to build this module satisfies its go1.x
	// tags; custom tags are off by default, as in the go tool.
	return strings.HasPrefix(tag, "go1.")
}

func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.RootDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) dirForImport(path string) string {
	if path == l.ModulePath {
		return l.RootDir
	}
	rel := strings.TrimPrefix(path, l.ModulePath+"/")
	return filepath.Join(l.RootDir, filepath.FromSlash(rel))
}

// loadPackage parses and type-checks one module package (cached). A nil
// package with nil error means the directory holds no Go files.
func (l *Loader) loadPackage(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirForImport(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !sourceFileName(e.Name()) || !fileNameConstraintOK(e.Name()) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			pkg.Errs = append(pkg.Errs, err)
			continue
		}
		if !buildConstraintOK(f) {
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 && len(pkg.Errs) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.Errs = append(pkg.Errs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	if len(pkg.Errs) == 0 {
		l.dirs.Collect(pkg)
	}
	return pkg, nil
}

// loaderImporter routes module-internal imports back through the loader
// and everything else to the stdlib source importer.
type loaderImporter Loader

// Import implements types.Importer.
func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil || pkg.Types == nil {
			return nil, fmt.Errorf("analysis: no package at %s", path)
		}
		if len(pkg.Errs) > 0 {
			return nil, fmt.Errorf("analysis: dependency %s has errors: %v", path, pkg.Errs[0])
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
