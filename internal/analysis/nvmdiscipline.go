package analysis

import (
	"go/ast"
	"go/types"
)

// NVMDiscipline enforces the progress-preservation write discipline:
// state marked //iprune:nvm (FRAM-backed buffers, energy counters) may
// only be stored to from functions marked //iprune:nvm-api — the hawaii
// discipline layer. Any other assignment bypasses preservation
// accounting: a write that does not flow through the discipline is
// invisible to energy and recovery bookkeeping, which is exactly the
// class of bug that makes an intermittent system lose or duplicate work
// after a power failure.
//
// The check triggers when an assignment or ++/-- statement's target
// (a) is a field marked //iprune:nvm, (b) selects any field of a type
// marked //iprune:nvm, or (c) has a marked type itself (whole-struct
// overwrite). Individual sites opt out with //iprune:allow-nvm <reason>.
var NVMDiscipline = &Analyzer{
	Name:  "nvmdiscipline",
	Doc:   "stores to //iprune:nvm state must come from //iprune:nvm-api functions",
	Allow: "allow-nvm",
	Scope: func(path string) bool { return true },
	Run:   runNVMDiscipline,
}

func runNVMDiscipline(pass *Pass) {
	check := func(target ast.Expr, pos ast.Node) {
		what, hit := pass.nvmTarget(target)
		if !hit {
			return
		}
		if decl := pass.EnclosingFunc(pos.Pos()); decl != nil && pass.FuncHas(decl, "nvm-api") {
			return
		}
		pass.Reportf(pos.Pos(), "store to NVM-backed %s outside the discipline API (mark the function //iprune:nvm-api or route the write through it)", what)
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					check(lhs, n)
				}
			case *ast.IncDecStmt:
				check(n.X, n)
			}
			return true
		})
	}
}

// nvmTarget walks an assignment target and reports whether it reaches
// NVM-marked state, describing what was hit.
func (p *Pass) nvmTarget(e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := p.Info.Selections[x]; ok {
				if obj := sel.Obj(); obj != nil && p.Dirs.ObjHas(obj, "nvm") {
					return obj.Name(), true
				}
				if name := markedNamed(p, sel.Recv()); name != "" {
					return name + "." + x.Sel.Name, true
				}
			}
			if name := markedNamed(p, p.Info.Types[x].Type); name != "" {
				return name, true
			}
			e = x.X
		case *ast.Ident:
			if name := markedNamed(p, p.Info.Types[x].Type); name != "" {
				return name, true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// markedNamed returns the type name when t (possibly behind a pointer)
// is a named type marked //iprune:nvm.
func markedNamed(p *Pass, t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if p.Dirs.ObjHas(named.Obj(), "nvm") {
		return named.Obj().Name()
	}
	return ""
}
