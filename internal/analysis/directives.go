package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The analyzers are steered by //iprune: comment directives:
//
//	//iprune:allow-float <reason>  suppress floatpurity/floatflow findings
//	//iprune:allow-nvm <reason>    suppress nvmdiscipline findings
//	//iprune:allow-alloc <reason>  suppress hotalloc/allocflow findings
//	//iprune:allow-err <reason>    suppress errcheck findings
//	//iprune:allow-war <reason>    suppress warhazard findings
//	//iprune:allow-par <reason>    suppress parsafe findings
//	//iprune:allow-conc <reason>   suppress lockorder/goleak findings
//	//iprune:allow-budget <reason> suppress regionbudget findings; a
//	                               blessed function is an audited cost
//	                               boundary callers need not see past
//	//iprune:budget <joules|ops>   declare a function's per-region energy
//	                               budget (e.g. 104uJ, 2mJ, 5000ops);
//	                               regionbudget checks the function
//	                               against it instead of the default
//	                               power-cycle buffer energy
//	//iprune:hotpath               mark a function as a hot inner kernel
//	//iprune:nvm                   mark a type or field as FRAM-backed
//	//iprune:nvm-api               mark a function as discipline API
//	//iprune:preserve              mark a function as an atomic
//	                               preservation/commit primitive: calls to
//	                               it end a WAR interval, and its own body
//	                               (the two-phase commit internals, which
//	                               always look like WARs) is exempt from
//	                               the warhazard analyzer
//
// allow-* directives require a reason — an escape hatch without a
// justification is itself a finding. Placement decides scope: on a
// function's doc comment the directive covers the whole function
// (including literals nested in it); on or directly above a line it
// covers that line; before the package clause it covers the file; on a
// type or struct-field declaration it tags that object.

const directivePrefix = "//iprune:"

// Directive is one parsed //iprune: comment.
type Directive struct {
	Name   string // e.g. "allow-float", "hotpath"
	Reason string
	Pos    token.Position
}

// knownDirectives maps each directive name to whether a reason is
// required.
var knownDirectives = map[string]bool{
	"allow-float":  true,
	"allow-nvm":    true,
	"allow-alloc":  true,
	"allow-err":    true,
	"allow-war":    true,
	"allow-par":    true,
	"allow-conc":   true,
	"allow-budget": true,
	"budget":       true, // the "reason" slot carries the budget value
	"hotpath":      false,
	"nvm":          false,
	"nvm-api":      false,
	"preserve":     false,
}

// Directives indexes every directive of a load by file, line and
// declared object, plus the diagnostics for malformed ones.
type Directives struct {
	file map[string][]Directive
	line map[string]map[int][]Directive
	obj  map[types.Object][]Directive
	// Problems are malformed directives (unknown name, missing reason),
	// reported by the driver alongside analyzer findings.
	Problems []Diagnostic
}

// NewDirectives returns an empty index.
func NewDirectives() *Directives {
	return &Directives{
		file: map[string][]Directive{},
		line: map[string]map[int][]Directive{},
		obj:  map[types.Object][]Directive{},
	}
}

// FileHas reports whether the file header carries the directive.
func (d *Directives) FileHas(filename, name string) bool {
	return hasDirective(d.file[filename], name)
}

// LineHas reports whether the directive appears on the given line.
func (d *Directives) LineHas(filename string, line int, name string) bool {
	return hasDirective(d.line[filename][line], name)
}

// ObjHas reports whether the declared object carries the directive.
func (d *Directives) ObjHas(obj types.Object, name string) bool {
	return hasDirective(d.obj[obj], name)
}

// ObjGet returns the first directive with the given name on the declared
// object. Analyzers that consume a directive's value (regionbudget reads
// the budget expression out of //iprune:budget's reason slot) use this
// instead of the boolean ObjHas.
func (d *Directives) ObjGet(obj types.Object, name string) (Directive, bool) {
	for _, dir := range d.obj[obj] {
		if dir.Name == name {
			return dir, true
		}
	}
	return Directive{}, false
}

func hasDirective(dirs []Directive, name string) bool {
	for _, dir := range dirs {
		if dir.Name == name {
			return true
		}
	}
	return false
}

// parseDirective parses one comment; ok is false when the comment is not
// an //iprune: directive at all.
func parseDirective(c *ast.Comment, fset *token.FileSet) (Directive, bool) {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name, reason, _ := strings.Cut(rest, " ")
	return Directive{
		Name:   strings.TrimSpace(name),
		Reason: strings.TrimSpace(reason),
		Pos:    fset.Position(c.Pos()),
	}, true
}

// Collect indexes every directive of the package's files and records
// malformed ones as Problems. It must run after type checking so
// directives can be attached to the declared objects.
func (d *Directives) Collect(pkg *Package) {
	fset := pkg.Fset
	for _, f := range pkg.Files {
		filename := fset.Position(f.Pos()).Filename
		if d.line[filename] == nil {
			d.line[filename] = map[int][]Directive{}
		}
		pkgClause := f.Package
		for _, group := range f.Comments {
			for _, c := range group.List {
				dir, ok := parseDirective(c, fset)
				if !ok {
					continue
				}
				needsReason, known := knownDirectives[dir.Name]
				switch {
				case !known:
					d.Problems = append(d.Problems, Diagnostic{
						Pos:      dir.Pos,
						Analyzer: "directives",
						Message:  unknownDirectiveMessage(dir.Name),
					})
					continue
				case needsReason && dir.Reason == "":
					d.Problems = append(d.Problems, Diagnostic{
						Pos:      dir.Pos,
						Analyzer: "directives",
						Message:  "//iprune:" + dir.Name + " requires a reason",
					})
					continue
				}
				d.line[filename][dir.Pos.Line] = append(d.line[filename][dir.Pos.Line], dir)
				if c.Pos() < pkgClause {
					d.file[filename] = append(d.file[filename], dir)
				}
			}
		}
		d.collectDecls(pkg, f, fset)
	}
}

// collectDecls attaches doc-comment directives to the objects they
// document: functions, type declarations and struct fields.
func (d *Directives) collectDecls(pkg *Package, f *ast.File, fset *token.FileSet) {
	attach := func(ident *ast.Ident, groups ...*ast.CommentGroup) {
		obj := pkg.Info.Defs[ident]
		if obj == nil {
			return
		}
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				if dir, ok := parseDirective(c, fset); ok && knownDirectiveWellFormed(dir) {
					d.obj[obj] = append(d.obj[obj], dir)
				}
			}
		}
	}
	for _, decl := range f.Decls {
		switch n := decl.(type) {
		case *ast.FuncDecl:
			attach(n.Name, n.Doc)
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				// A directive on the GenDecl applies to its sole spec.
				if len(n.Specs) == 1 {
					attach(ts.Name, n.Doc, ts.Doc, ts.Comment)
				} else {
					attach(ts.Name, ts.Doc, ts.Comment)
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					for _, field := range st.Fields.List {
						for _, name := range field.Names {
							attach(name, field.Doc, field.Comment)
						}
					}
				}
			}
		}
	}
}

func knownDirectiveWellFormed(dir Directive) bool {
	needsReason, known := knownDirectives[dir.Name]
	return known && (!needsReason || dir.Reason != "")
}

// unknownDirectiveMessage formats the finding for an unrecognized
// directive name, suggesting the nearest known name when one is close
// enough to be a plausible typo.
func unknownDirectiveMessage(name string) string {
	msg := "unknown directive //iprune:" + name
	if near := nearestDirective(name); near != "" {
		msg += " (did you mean //iprune:" + near + "?)"
	}
	return msg
}

// nearestDirective returns the known directive name within Levenshtein
// distance 2 of name, or "" when none qualifies. Ties break
// lexicographically so the suggestion is deterministic.
func nearestDirective(name string) string {
	best, bestDist := "", 3
	for known := range knownDirectives {
		d := editDistance(name, known)
		if d < bestDist || (d == bestDist && best != "" && known < best) {
			best, bestDist = known, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
