package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"iprune/internal/analysis/flow"
	"iprune/internal/energy"
)

// RegionBudget statically bounds the worst-case cost of every
// preserve-to-preserve region in //iprune:hotpath (or //iprune:budget)
// functions and reports regions that cannot complete within one power
// cycle's buffer energy.
//
// An intermittently powered device makes forward progress only if each
// atomic region — the code between two //iprune:preserve commit points —
// fits the energy the capacitor buffer delivers in one on-period.
// A region that needs more energy than the buffer stores re-executes
// forever: the device charges, runs, dies inside the region, rolls back
// to the last preserve, and repeats. CostSim observes that dynamically
// (ErrOpExceedsBuffer); this analyzer proves its absence statically.
//
// The analysis composes, per statement, a summary of five quantities,
// all abstract CPU op counts priced through the shared energy model
// (internal/energy — the same tables CostSim charges, so the two views
// cannot drift):
//
//	head   worst cost from entry to the first preserve (over paths
//	       that reach one)
//	tail   worst cost from the last preserve to exit
//	maxMid worst complete preserve-to-preserve region inside the node
//	nopres worst cost of traversing the node on a preserve-free path
//	must   every path through the node hits a preserve
//
// Sequencing, branching and counted loops (via flow.TripCount /
// flow.RangeTripCount) combine summaries exactly; everything uncertain —
// unbounded loops around unpreserved work, recursion, goto — widens to
// ⊤ and is reported as "cannot statically bound". An unbounded loop
// whose body preserves on every iteration stays bounded: its worst
// region is the wraparound tail+head, which is precisely the shape an
// intermittent event loop must have.
//
// Calls inline the callee's memoized summary over the devirtualized
// call graph (interface calls fan out to module implementations, max
// componentwise). Three directives steer the interprocedural view:
// //iprune:preserve marks a region boundary, //iprune:budget <v> both
// sets the declared function's own check threshold and prices calls to
// it as an opaque unit of that cost, and //iprune:allow-budget <reason>
// marks an audited boundary whose interior callers need not see.
//
// The op pricing is deliberately uniform — one CPU op per arithmetic,
// load, store or index step, energy.Default().CPUOpJ() each — and
// external (non-module) callees are priced at a small nominal constant:
// the companion analyzers (hotalloc, floatpurity, parsafe) already keep
// heavyweight machinery out of hot paths, so what remains is
// straight-line arithmetic where op counting is the right granularity
// for a worst-case bound.
var RegionBudget = &Analyzer{
	Name:      "regionbudget",
	Doc:       "preserve-to-preserve regions in hot paths fit the static energy budget",
	Allow:     "allow-budget",
	Scope:     func(path string) bool { return true },
	RunModule: runRegionBudget,
}

// rcostCap saturates finite cost arithmetic well below int64 overflow;
// top is reserved for genuinely unbounded costs.
const rcostCap = int64(1) << 50

// maxLoopNest bounds the nesting depth the trip-count product is taken
// over; deeper nests widen to ⊤ rather than multiplying further.
const maxLoopNest = 8

// extCallOps is the nominal price of a call whose body the analysis
// cannot see (stdlib, unresolved interface, indirect function value).
const extCallOps = 4

// rcost is a saturating abstract op count; top means statically
// unbounded.
type rcost struct {
	n   int64
	top bool
}

var topCost = rcost{top: true}

func ops(n int64) rcost {
	if n > rcostCap {
		n = rcostCap
	}
	return rcost{n: n}
}

func (a rcost) add(b rcost) rcost {
	if a.top || b.top {
		return topCost
	}
	return ops(a.n + b.n)
}

func (a rcost) mul(k int64) rcost {
	if a.top {
		return topCost
	}
	if k != 0 && a.n > rcostCap/k {
		return ops(rcostCap)
	}
	return ops(a.n * k)
}

func (a rcost) max(b rcost) rcost {
	if a.top || b.top {
		return topCost
	}
	if b.n > a.n {
		return b
	}
	return a
}

// regSummary is the compositional cost summary of one AST node (see the
// analyzer comment for the invariants).
type regSummary struct {
	head   rcost
	tail   rcost
	maxMid rcost
	nopres rcost
	must   bool
	any    bool
}

// leaf is a preserve-free node of fixed cost.
func leaf(c rcost) regSummary {
	return regSummary{nopres: c}
}

// boundary is a preservation point costing c to reach.
func boundary(c rcost) regSummary {
	return regSummary{head: c, must: true, any: true}
}

// seq composes "a then b".
func seq(a, b regSummary) regSummary {
	s := regSummary{
		must:   a.must || b.must,
		any:    a.any || b.any,
		nopres: a.nopres.add(b.nopres),
	}
	s.head = a.head
	if !a.must && b.any {
		s.head = s.head.max(a.nopres.add(b.head))
	}
	s.tail = b.tail
	if !b.must && a.any {
		s.tail = s.tail.max(a.tail.add(b.nopres))
	}
	s.maxMid = a.maxMid.max(b.maxMid)
	if a.any && b.any {
		s.maxMid = s.maxMid.max(a.tail.add(b.head))
	}
	if s.must {
		s.nopres = rcost{} // no preserve-free path exists
	}
	return s
}

// alt joins two alternative paths (branch arms). A must-preserve arm
// has no preserve-free path, so its (meaningless) nopres does not feed
// the join.
func alt(a, b regSummary) regSummary {
	var nopres rcost
	switch {
	case a.must && b.must:
	case a.must:
		nopres = b.nopres
	case b.must:
		nopres = a.nopres
	default:
		nopres = a.nopres.max(b.nopres)
	}
	return regSummary{
		head:   a.head.max(b.head),
		tail:   a.tail.max(b.tail),
		maxMid: a.maxMid.max(b.maxMid),
		nopres: nopres,
		must:   a.must && b.must,
		any:    a.any || b.any,
	}
}

// loop composes n iterations of body (n < 0 means the trip count is
// unknown). The interesting case is the unknown-trip loop whose body
// preserves on every iteration: its regions stay bounded by the
// wraparound tail+head even though its total cost does not.
func loopSummary(body regSummary, n int64) (regSummary, bool) {
	if n == 0 {
		return regSummary{}, true
	}
	if !body.any {
		if n < 0 {
			return regSummary{}, false // unbounded unpreserved work: ⊤
		}
		return leaf(body.nopres.mul(n)), true
	}
	if body.must {
		s := regSummary{
			head:   body.head,
			tail:   body.tail,
			maxMid: body.maxMid,
			any:    true,
			must:   n > 0, // an unknown trip count may be zero
		}
		if n < 0 || n >= 2 {
			s.maxMid = s.maxMid.max(body.tail.add(body.head))
		}
		return s, true
	}
	// The body may or may not preserve per iteration: a preserve-free
	// segment can span up to every iteration.
	if n < 0 {
		return regSummary{}, false
	}
	span := body.nopres.mul(n)
	return regSummary{
		head:   span.add(body.head),
		tail:   body.tail.add(span),
		maxMid: body.maxMid.max(body.tail.add(span).add(body.head)),
		nopres: span,
		any:    true,
	}, true
}

// worst is the largest single preserve-to-preserve region cost the node
// can expose (its callers' preserves delimit the outermost region).
func (s regSummary) worst() rcost {
	w := s.head.max(s.maxMid).max(s.tail)
	if !s.must {
		w = w.max(s.nopres)
	}
	return w
}

// rbFunc is one function's memoized interprocedural summary plus the
// provenance of its first widening to ⊤, for diagnostics.
type rbFunc struct {
	sum      regSummary
	widenPos token.Pos
	widenWhy string
	pkg      *Package
	decl     *ast.FuncDecl
}

// regionAnalysis carries one whole-module regionbudget run.
type regionAnalysis struct {
	mp    *ModulePass
	model energy.Model
	decls map[*types.Func]*rbFunc
	done  map[*types.Func]bool
	stack map[*types.Func]bool
	dv    *devirtualizer
}

func runRegionBudget(mp *ModulePass) {
	ra := &regionAnalysis{
		mp:    mp,
		model: energy.Default(),
		decls: map[*types.Func]*rbFunc{},
		done:  map[*types.Func]bool{},
		stack: map[*types.Func]bool{},
	}
	var order []*types.Func
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ra.decls[fn] = &rbFunc{pkg: pkg, decl: fd}
				order = append(order, fn)
			}
		}
	}
	ra.dv = newDevirtualizer(mp.Pkgs, func(fn *types.Func) bool {
		_, ok := ra.decls[fn]
		return ok
	})

	for _, fn := range order {
		ra.check(fn)
	}
}

// check analyzes one function against its budget when it declares one —
// explicitly via //iprune:budget, or implicitly (the power-cycle buffer
// energy) by being marked //iprune:hotpath.
func (ra *regionAnalysis) check(fn *types.Func) {
	rf := ra.decls[fn]
	pass := ra.mp.Pass(rf.pkg)
	dir, hasBudget := ra.mp.Dirs.ObjGet(fn, "budget")
	if !hasBudget && !ra.mp.Dirs.ObjHas(fn, "hotpath") {
		return
	}

	budget := energy.Budget{Joules: ra.model.BufferJ}
	source := fmt.Sprintf("one power cycle's buffer energy (%s)", energy.FormatJ(ra.model.BufferJ))
	if hasBudget {
		b, err := energy.ParseBudget(dir.Reason)
		if err != nil {
			pass.Reportf(rf.decl.Name.Pos(), "invalid //iprune:budget value %q: %v", dir.Reason, err)
			return
		}
		budget = b
		source = "the declared budget " + budget.String()
	}

	sum := ra.summary(fn)
	name := funcName(fn)
	w := sum.worst()
	if w.top {
		why := "contains statically unboundable control flow"
		if rf.widenWhy != "" {
			why = fmt.Sprintf("%s at %s", rf.widenWhy, rf.pkg.Fset.Position(rf.widenPos))
		}
		pass.Reportf(rf.decl.Name.Pos(),
			"cannot statically bound the worst-case preserve-to-preserve region in %s: %s (add a preservation point, a constant trip count, or //iprune:allow-budget <reason>)",
			name, why)
		return
	}

	overOps := budget.Ops > 0 && w.n > budget.Ops
	wJoules := float64(w.n) * ra.model.CPUOpJ()
	overJ := budget.Ops == 0 && wJoules > budget.Joules
	if !overOps && !overJ {
		return
	}
	pass.Reportf(rf.decl.Name.Pos(),
		"worst-case preserve-to-preserve region in %s needs ~%d ops ≈ %s, exceeding %s (entry→preserve %s, interior %s, preserve→exit %s, preserve-free path %s)",
		name, w.n, energy.FormatJ(wJoules), source,
		ra.fmtCost(sum.head), ra.fmtCost(sum.maxMid), ra.fmtCost(sum.tail), ra.fmtCost(sum.nopres))
}

// fmtCost renders one breakdown component.
func (ra *regionAnalysis) fmtCost(c rcost) string {
	if c.top {
		return "⊤"
	}
	return energy.FormatJ(float64(c.n) * ra.model.CPUOpJ())
}

// summary returns fn's memoized summary, computing it on first use.
// Recursion widens to ⊤: a recursive hot path has no static bound.
func (ra *regionAnalysis) summary(fn *types.Func) regSummary {
	rf := ra.decls[fn]
	if ra.done[fn] {
		return rf.sum
	}
	if ra.stack[fn] {
		rf.sum = leaf(topCost)
		ra.note(rf, fn, rf.decl.Name.Pos(), "recursive call cycle through "+funcName(fn))
		return rf.sum
	}
	ra.stack[fn] = true
	w := &rbWalker{ra: ra, rf: rf}
	rf.sum = w.stmts(rf.decl.Body.List)
	delete(ra.stack, fn)
	ra.done[fn] = true
	return rf.sum
}

// note records the first widening witness for a function's diagnostics.
func (ra *regionAnalysis) note(rf *rbFunc, fn *types.Func, pos token.Pos, why string) {
	if rf.widenWhy == "" {
		rf.widenPos, rf.widenWhy = pos, why
	}
}

// rbWalker computes summaries for the statements of one function body.
type rbWalker struct {
	ra    *regionAnalysis
	rf    *rbFunc
	depth int // loop nesting, for the bounded product rule
}

func (w *rbWalker) widen(pos token.Pos, format string, args ...any) regSummary {
	w.ra.note(w.rf, nil, pos, fmt.Sprintf(format, args...))
	return leaf(topCost)
}

func (w *rbWalker) stmts(list []ast.Stmt) regSummary {
	var s regSummary
	for _, st := range list {
		s = seq(s, w.stmt(st))
	}
	return s
}

func (w *rbWalker) stmt(s ast.Stmt) regSummary {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return regSummary{}
	case *ast.BlockStmt:
		if s == nil {
			return regSummary{}
		}
		return w.stmts(s.List)
	case *ast.ExprStmt:
		return w.expr(s.X)
	case *ast.AssignStmt:
		sum := regSummary{}
		for _, r := range s.Rhs {
			sum = seq(sum, w.expr(r))
		}
		for _, l := range s.Lhs {
			sum = seq(sum, w.expr(l))
		}
		return seq(sum, leaf(ops(int64(len(s.Lhs)))))
	case *ast.IncDecStmt:
		return seq(w.expr(s.X), leaf(ops(1)))
	case *ast.DeclStmt:
		sum := regSummary{}
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sum = seq(sum, w.expr(v))
					}
					sum = seq(sum, leaf(ops(int64(len(vs.Names)))))
				}
			}
		}
		return sum
	case *ast.ReturnStmt:
		// The statements after a return over-approximate the path; an
		// early exit only shrinks real costs.
		sum := regSummary{}
		for _, r := range s.Results {
			sum = seq(sum, w.expr(r))
		}
		return sum
	case *ast.IfStmt:
		sum := seq(w.stmt(s.Init), w.expr(s.Cond))
		return seq(sum, alt(w.stmt(s.Body), w.stmt(s.Else)))
	case *ast.ForStmt:
		return w.forStmt(s)
	case *ast.RangeStmt:
		return w.rangeStmt(s)
	case *ast.SwitchStmt:
		sum := seq(w.stmt(s.Init), w.expr(s.Tag))
		return seq(sum, w.caseClauses(s.Body))
	case *ast.TypeSwitchStmt:
		sum := seq(w.stmt(s.Init), w.stmt(s.Assign))
		return seq(sum, w.caseClauses(s.Body))
	case *ast.SelectStmt:
		arms := regSummary{}
		first := true
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			arm := seq(w.stmt(cc.Comm), w.stmts(cc.Body))
			if first {
				arms, first = arm, false
			} else {
				arms = alt(arms, arm)
			}
		}
		return seq(leaf(ops(extCallOps)), arms)
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			// goto can build loops the structural walk cannot see.
			return w.widen(s.Pos(), "goto defeats structural cost composition")
		}
		return regSummary{} // break/continue only shorten paths
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt)
	case *ast.DeferStmt:
		// Charged at the defer site: an over-approximation of placement
		// (the call runs in the function's tail region at the latest).
		return w.expr(s.Call)
	case *ast.GoStmt:
		return w.expr(s.Call)
	case *ast.SendStmt:
		return seq(seq(w.expr(s.Chan), w.expr(s.Value)), leaf(ops(2)))
	default:
		return w.widen(s.Pos(), "unhandled statement %T", s)
	}
}

// caseClauses joins the arms of a switch body (an implicit empty arm
// models fallthrough-less misses).
func (w *rbWalker) caseClauses(body *ast.BlockStmt) regSummary {
	arms := regSummary{} // the no-case-taken path
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		arm := regSummary{}
		for _, e := range cc.List {
			arm = seq(arm, w.expr(e))
		}
		arm = seq(arm, w.stmts(cc.Body))
		arms = alt(arms, arm)
	}
	return arms
}

// forStmt prices a for loop: counted shapes multiply the body by the
// inferred trip count; everything else widens through loopSummary's
// unknown-count rules.
func (w *rbWalker) forStmt(s *ast.ForStmt) regSummary {
	init := w.stmt(s.Init)
	if w.depth >= maxLoopNest {
		return w.widen(s.Pos(), "loop nesting exceeds depth %d; trip-count product not taken", maxLoopNest)
	}
	w.depth++
	iter := seq(w.expr(s.Cond), seq(w.stmt(s.Body), w.stmt(s.Post)))
	w.depth--
	n, known := int64(-1), false
	if s.Cond == nil && !iter.must {
		// for {} without per-iteration preserves never terminates a
		// region: widen with a precise message.
		return seq(init, w.widen(s.Pos(), "unbounded for-loop with no preservation point per iteration"))
	}
	n, known = flow.TripCount(s, w.rf.pkg.Info)
	if !known {
		n = -1
	}
	ls, ok := loopSummary(iter, n)
	if !ok {
		return seq(init, w.widen(s.Pos(), "loop trip count is not a compile-time constant and the body does not preserve every iteration"))
	}
	// One extra condition evaluation on exit.
	return seq(init, seq(ls, w.expr(s.Cond)))
}

func (w *rbWalker) rangeStmt(s *ast.RangeStmt) regSummary {
	sum := w.expr(s.X)
	if w.depth >= maxLoopNest {
		return w.widen(s.Pos(), "loop nesting exceeds depth %d; trip-count product not taken", maxLoopNest)
	}
	w.depth++
	iter := seq(leaf(ops(1)), w.stmt(s.Body)) // per-iteration index/elem setup
	w.depth--
	n, known := flow.RangeTripCount(s, w.rf.pkg.Info)
	if !known {
		n = -1
	}
	ls, ok := loopSummary(iter, n)
	if !ok {
		return seq(sum, w.widen(s.Pos(), "range trip count is not statically known and the body does not preserve every iteration"))
	}
	return seq(sum, ls)
}

func (w *rbWalker) expr(e ast.Expr) regSummary {
	switch e := e.(type) {
	case nil, *ast.Ident, *ast.BasicLit, *ast.FuncLit:
		// A closure literal's body is charged where it is called; the
		// value itself is near-free (hotalloc polices the allocation).
		return regSummary{}
	case *ast.ParenExpr:
		return w.expr(e.X)
	case *ast.SelectorExpr:
		return w.expr(e.X)
	case *ast.StarExpr:
		return seq(w.expr(e.X), leaf(ops(1)))
	case *ast.UnaryExpr:
		return seq(w.expr(e.X), leaf(ops(1)))
	case *ast.BinaryExpr:
		return seq(seq(w.expr(e.X), w.expr(e.Y)), leaf(ops(1)))
	case *ast.IndexExpr:
		return seq(seq(w.expr(e.X), w.expr(e.Index)), leaf(ops(1)))
	case *ast.IndexListExpr:
		sum := w.expr(e.X)
		for _, ix := range e.Indices {
			sum = seq(sum, w.expr(ix))
		}
		return sum
	case *ast.SliceExpr:
		sum := w.expr(e.X)
		for _, ix := range []ast.Expr{e.Low, e.High, e.Max} {
			sum = seq(sum, w.expr(ix))
		}
		return seq(sum, leaf(ops(1)))
	case *ast.TypeAssertExpr:
		return seq(w.expr(e.X), leaf(ops(1)))
	case *ast.KeyValueExpr:
		return seq(w.expr(e.Key), w.expr(e.Value))
	case *ast.CompositeLit:
		sum := regSummary{}
		for _, el := range e.Elts {
			sum = seq(sum, w.expr(el))
		}
		return seq(sum, leaf(ops(int64(len(e.Elts)))))
	case *ast.CallExpr:
		return w.call(e)
	default:
		return regSummary{} // types and other non-evaluating nodes
	}
}

// call prices one call expression: argument evaluation, then the callee
// summary resolved through directives and the devirtualized call graph.
func (w *rbWalker) call(call *ast.CallExpr) regSummary {
	info := w.rf.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion, not a call.
		sum := regSummary{}
		for _, a := range call.Args {
			sum = seq(sum, w.expr(a))
		}
		return seq(sum, leaf(ops(1)))
	}
	sum := regSummary{}
	for _, a := range call.Args {
		sum = seq(sum, w.expr(a))
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				return seq(sum, leaf(ops(1)))
			default:
				return seq(sum, leaf(ops(extCallOps)))
			}
		}
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately invoked literal: inline its body at loop depth 0
		// semantics do not apply — it runs right here, once.
		return seq(sum, w.stmts(fl.Body.List))
	}
	callee := staticCallee(info, call)
	if callee == nil {
		return seq(sum, leaf(ops(extCallOps))) // indirect through a value
	}
	return seq(sum, w.callee(callee, call.Pos()))
}

// callee resolves one static callee to a summary.
func (w *rbWalker) callee(fn *types.Func, pos token.Pos) regSummary {
	ra := w.ra
	dirs := ra.mp.Dirs
	switch {
	case dirs.ObjHas(fn, "preserve"):
		// A commit primitive: the region boundary itself. Its body is
		// the two-phase commit machinery, priced as the boundary cost.
		return boundary(ops(extCallOps))
	case dirs.ObjHas(fn, "allow-budget"):
		// Audited boundary: the blessing vouches for the interior.
		return leaf(ops(extCallOps))
	}
	if dir, ok := dirs.ObjGet(fn, "budget"); ok {
		// A budget-annotated callee is an opaque unit priced at its
		// declared budget; its own compliance is checked at its
		// declaration.
		if b, err := energy.ParseBudget(dir.Reason); err == nil {
			n := b.Ops
			if n == 0 {
				n = int64(b.Joules / ra.model.CPUOpJ())
			}
			return leaf(ops(n))
		}
		return leaf(ops(extCallOps)) // malformed budget gets its own finding
	}
	if interfaceMethod(fn) {
		impls := ra.dv.resolve(fn)
		if len(impls) == 0 {
			return leaf(ops(extCallOps)) // unresolved: deliberately nominal
		}
		// Each implementation goes back through the directive checks: a
		// blessed or budget-annotated impl is a boundary on this path
		// exactly as it would be on a static call.
		sum := w.callee(impls[0], pos)
		for _, impl := range impls[1:] {
			sum = alt(sum, w.callee(impl, pos))
		}
		return sum
	}
	if _, ok := ra.decls[fn]; !ok {
		return leaf(ops(extCallOps)) // external body: nominal
	}
	return w.calleeSummary(fn, pos)
}

// calleeSummary inlines one summarized callee, re-anchoring any widening
// witness at this call site.
func (w *rbWalker) calleeSummary(fn *types.Func, pos token.Pos) regSummary {
	sum := w.ra.summary(fn)
	if sum.worst().top {
		cf := w.ra.decls[fn]
		why := "is statically unbounded"
		if cf != nil && cf.widenWhy != "" {
			why = cf.widenWhy
		}
		w.ra.note(w.rf, fn, pos, fmt.Sprintf("call to %s: %s", funcName(fn), why))
	}
	return seq(leaf(ops(1)), sum) // call/return overhead
}
