package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"iprune/internal/analysis/flow"
)

// LockOrder proves the module's mutexes are acquired in one consistent
// global order — the classic static deadlock-freedom argument. The
// parallel phase shards hot paths across goroutines, and two goroutines
// acquiring the same pair of locks in opposite orders can each hold one
// lock while waiting forever for the other; no test run is guaranteed
// to hit the interleaving, so the proof has to be static.
//
// The analysis computes, at every acquisition site, the set of locks
// already held (a lock-set dataflow over the flow CFG: Lock/RLock adds
// a lock, Unlock/RUnlock removes it, a deferred unlock keeps the lock
// held to function exit). Each "A held while acquiring B" observation
// becomes an order edge A→B; acquisitions are propagated
// interprocedurally over the devirtualized call graph, so a call made
// with A held contributes edges to every lock the callee transitively
// acquires, with a floatflow-style witness chain naming the path.
// Two findings result:
//
//   - an inversion: both A→B and B→A observed anywhere in the module
//     (reported at each site, citing the opposing site);
//   - a re-acquisition: taking a lock the function provably already
//     holds (sync.Mutex is not reentrant — this self-deadlocks on the
//     spot). Re-acquisition uses the must-held set, so a lock merely
//     held on *some* paths is not a false positive.
//
// Lock identity is the declared object: a struct *field* of type
// sync.Mutex/RWMutex identifies a lock class (every instance of the
// struct orders the same way), a package-level or local variable
// identifies itself. Calls through sync.Locker and TryLock are skipped
// — the first is dynamic, the second cannot block.
//
// Sites opt out with //iprune:allow-conc <reason>.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "mutexes are acquired in one consistent global order (potential-deadlock detection)",
	Allow:     "allow-conc",
	Scope:     func(path string) bool { return true },
	RunModule: runLockOrder,
}

// lockSets is the dataflow fact: the may-held set (union join — drives
// order edges, conservatively) and the must-held set (intersection join
// — drives re-acquisition reports, precisely).
type lockSets struct {
	may  map[types.Object]bool
	must map[types.Object]bool
}

func (ls lockSets) clone() lockSets {
	c := lockSets{may: make(map[types.Object]bool, len(ls.may)), must: make(map[types.Object]bool, len(ls.must))}
	for k := range ls.may {
		c.may[k] = true
	}
	for k := range ls.must {
		c.must[k] = true
	}
	return c
}

// acqSite is one Lock/RLock call with the lock sets in force just
// before it.
type acqSite struct {
	lock types.Object
	pos  token.Pos
	held lockSets
}

// callSite is one static call edge with the may-held set at the call.
type callSite struct {
	callee *types.Func
	via    *types.Func // interface method the edge was devirtualized from
	pos    token.Pos
	may    map[types.Object]bool
}

// lockFunc is the per-function lockorder summary.
type lockFunc struct {
	fn   *types.Func
	pkg  *Package
	decl *ast.FuncDecl

	acquires []acqSite
	calls    []callSite

	// closure: every lock this function transitively acquires, with the
	// call path (excluding this function) to a witness acquisition.
	reach map[types.Object][]*types.Func
}

// orderEdge is one observed "from held while acquiring to" pair.
type orderEdge struct {
	from, to types.Object
}

// orderWitness records where and how one order edge was observed.
type orderWitness struct {
	pkg  *Package
	pos  token.Pos
	fn   *types.Func   // function the observation is rooted in
	path []*types.Func // call chain from fn to the acquiring function (empty = direct)
}

func runLockOrder(mp *ModulePass) {
	dv := lockOrderDevirtualizer(mp)
	var order []*lockFunc
	index := map[*types.Func]*lockFunc{}
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				lf := &lockFunc{fn: fn, pkg: pkg, decl: fd}
				lf.analyze(pkg, dv)
				order = append(order, lf)
				index[fn] = lf
			}
		}
	}
	closeLockReach(order, index)

	// Collect order edges across the module, keeping the first witness
	// per edge (function order is deterministic, sites are in source
	// order, so witnesses are stable).
	edges := map[orderEdge]orderWitness{}
	note := func(e orderEdge, w orderWitness) {
		if _, ok := edges[e]; !ok {
			edges[e] = w
		}
	}
	for _, lf := range order {
		for _, a := range lf.acquires {
			// Re-acquisition: the must-held set already contains the lock.
			if a.held.must[a.lock] {
				mp.Pass(lf.pkg).Reportf(a.pos,
					"lock %s acquired while already held by %s: sync mutexes are not reentrant, this deadlocks immediately (restructure, or annotate //iprune:allow-conc)",
					refName(a.lock), funcName(lf.fn))
			}
			for held := range a.held.may {
				if held == a.lock {
					continue
				}
				note(orderEdge{from: held, to: a.lock},
					orderWitness{pkg: lf.pkg, pos: a.pos, fn: lf.fn})
			}
		}
		for _, c := range lf.calls {
			callee, ok := index[c.callee]
			if !ok {
				continue
			}
			for acquired, path := range callee.reach {
				for held := range c.may {
					if held == acquired {
						continue
					}
					note(orderEdge{from: held, to: acquired},
						orderWitness{pkg: lf.pkg, pos: c.pos, fn: lf.fn,
							path: append([]*types.Func{c.callee}, path...)})
				}
			}
		}
	}

	// Report every edge whose reverse also exists — an inconsistent
	// pairwise order is a potential deadlock. Sorted for determinism.
	var inverted []orderEdge
	for e := range edges {
		if _, ok := edges[orderEdge{from: e.to, to: e.from}]; ok {
			inverted = append(inverted, e)
		}
	}
	sort.Slice(inverted, func(i, j int) bool {
		a, b := inverted[i], inverted[j]
		if refName(a.from) != refName(b.from) {
			return refName(a.from) < refName(b.from)
		}
		return refName(a.to) < refName(b.to)
	})
	for _, e := range inverted {
		w := edges[e]
		rev := edges[orderEdge{from: e.to, to: e.from}]
		mp.Pass(w.pkg).Reportf(w.pos,
			"lock order inversion: %s is acquired%s while %s is held, but %s acquires %s while %s is held at %s: two goroutines interleaving these paths deadlock (pick one global order, or annotate //iprune:allow-conc)",
			refName(e.to), lockPathSuffix(w.path), refName(e.from),
			funcName(rev.fn), refName(e.from), refName(e.to),
			rev.pkg.Fset.Position(rev.pos))
	}
}

// lockOrderDevirtualizer builds the interface-call resolver over the
// module's function declarations.
func lockOrderDevirtualizer(mp *ModulePass) *devirtualizer {
	bodies := map[*types.Func]bool{}
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						bodies[fn] = true
					}
				}
			}
		}
	}
	return newDevirtualizer(mp.Pkgs, func(fn *types.Func) bool { return bodies[fn] })
}

// closeLockReach closes each function's acquired-lock set under the
// call graph, recording one witness path per lock. Iteration order is
// fixed so paths are deterministic.
func closeLockReach(order []*lockFunc, index map[*types.Func]*lockFunc) {
	for _, lf := range order {
		lf.reach = map[types.Object][]*types.Func{}
		for _, a := range lf.acquires {
			if _, ok := lf.reach[a.lock]; !ok {
				lf.reach[a.lock] = nil
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, lf := range order {
			for _, c := range lf.calls {
				callee, ok := index[c.callee]
				if !ok {
					continue
				}
				for lock, path := range callee.reach {
					if _, ok := lf.reach[lock]; ok {
						continue
					}
					lf.reach[lock] = append([]*types.Func{c.callee}, path...)
					changed = true
				}
			}
		}
	}
}

// analyze runs the lock-set dataflow over one function body and records
// acquisition and call sites with their entry lock sets.
func (lf *lockFunc) analyze(pkg *Package, dv *devirtualizer) {
	g := flow.Build(lf.decl.Body)
	entry := map[*flow.Block]lockSets{}
	universe := lf.collectLocks(pkg)

	bottom := func() lockSets {
		// Unvisited blocks: may = ∅, must = ⊤ (everything), so the
		// intersection join is the identity until a real path arrives.
		must := make(map[types.Object]bool, len(universe))
		for _, l := range universe {
			must[l] = true
		}
		return lockSets{may: map[types.Object]bool{}, must: must}
	}
	seen := map[*flow.Block]bool{}
	entry[g.Entry] = lockSets{may: map[types.Object]bool{}, must: map[types.Object]bool{}}
	seen[g.Entry] = true
	work := []*flow.Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := entry[b].clone()
		for _, n := range b.Nodes {
			lf.transfer(pkg, n, &out, false)
		}
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				entry[s] = bottom()
			}
			if joinLockSets(entry[s], out) {
				work = append(work, s)
			}
		}
	}

	// Replay each block once against its fixed entry state to record
	// sites exactly once, in block/source order.
	for _, b := range g.Blocks {
		st, ok := entry[b]
		if !ok {
			continue // unreachable
		}
		out := st.clone()
		for _, n := range b.Nodes {
			lf.transfer(pkg, n, &out, true)
		}
	}
	lf.resolveCalls(pkg, dv)
}

// joinLockSets merges src into dst (may ∪, must ∩); reports change.
func joinLockSets(dst, src lockSets) bool {
	changed := false
	for k := range src.may {
		if !dst.may[k] {
			dst.may[k] = true
			changed = true
		}
	}
	for k := range dst.must {
		if !src.must[k] {
			delete(dst.must, k)
			changed = true
		}
	}
	return changed
}

// transfer interprets one CFG node: lock operations update the sets, and
// when record is set, acquisition and call sites are captured with the
// state in force just before them. Function literals are skipped — their
// bodies run on another goroutine or at defer time with their own lock
// discipline.
func (lf *lockFunc) transfer(pkg *Package, n ast.Node, st *lockSets, record bool) {
	switch n.(type) {
	case *ast.RangeStmt:
		return // per-iteration binding only; the body has its own blocks
	case *ast.DeferStmt:
		// A deferred unlock runs at function exit: the lock stays held
		// for the rest of the function, which is exactly what not
		// interpreting the call models. Deferred locks are ignored too.
		return
	case *ast.GoStmt:
		// The spawned goroutine starts with an empty lock set — it does
		// not inherit the spawner's held locks, so its acquisitions
		// impose no order edge here. Its own body is analyzed when the
		// called function's declaration is.
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pkg.Info, call)
		if fn == nil {
			return true
		}
		if kind := lockMethodKind(fn); kind != lockNone {
			lock, ok := lockReceiver(pkg, call)
			if !ok {
				return true
			}
			switch kind {
			case lockAcquire:
				if record {
					lf.acquires = append(lf.acquires, acqSite{lock: lock, pos: call.Pos(), held: st.clone()})
				}
				st.may[lock] = true
				st.must[lock] = true
			case lockRelease:
				delete(st.may, lock)
				delete(st.must, lock)
			}
			return true
		}
		if record && fn.Pkg() != nil && !interfaceMethod(fn) {
			if len(st.may) > 0 {
				lf.calls = append(lf.calls, callSite{callee: fn, pos: call.Pos(), may: cloneSet(st.may)})
			}
		} else if record && interfaceMethod(fn) && len(st.may) > 0 {
			lf.calls = append(lf.calls, callSite{callee: nil, via: fn, pos: call.Pos(), may: cloneSet(st.may)})
		}
		return true
	})
}

// resolveCalls devirtualizes the interface-method call sites recorded by
// transfer into concrete callees (one callSite per implementation).
func (lf *lockFunc) resolveCalls(pkg *Package, dv *devirtualizer) {
	resolved := lf.calls[:0]
	for _, c := range lf.calls {
		if c.callee != nil {
			resolved = append(resolved, c)
			continue
		}
		for _, impl := range dv.resolve(c.via) {
			resolved = append(resolved, callSite{callee: impl, via: c.via, pos: c.pos, may: c.may})
		}
	}
	lf.calls = resolved
}

func cloneSet(s map[types.Object]bool) map[types.Object]bool {
	c := make(map[types.Object]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// collectLocks returns every lock object referenced in the function
// body — the must-set universe for the intersection join.
func (lf *lockFunc) collectLocks(pkg *Package) []types.Object {
	seen := map[types.Object]bool{}
	var locks []types.Object
	ast.Inspect(lf.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pkg.Info, call)
		if fn == nil || lockMethodKind(fn) == lockNone {
			return true
		}
		if lock, ok := lockReceiver(pkg, call); ok && !seen[lock] {
			seen[lock] = true
			locks = append(locks, lock)
		}
		return true
	})
	return locks
}

type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockRelease
)

// lockMethodKind classifies fn as a blocking sync.Mutex/RWMutex
// acquisition or release. TryLock variants cannot block and are skipped.
func lockMethodKind(fn *types.Func) lockKind {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockNone
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return lockNone
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return lockAcquire
	case "Unlock", "RUnlock":
		return lockRelease
	}
	return lockNone
}

// lockReceiver resolves the receiver expression of a mutex method call
// to the lock's identity object: the declared struct field for field
// locks (a lock *class* — every instance of the struct shares the
// order), or the variable object for package-level and local locks.
func lockReceiver(pkg *Package, call *ast.CallExpr) (types.Object, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	return refObject(pkg, sel.X)
}

func refObject(pkg *Package, e ast.Expr) (types.Object, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.StarExpr:
		return refObject(pkg, x.X)
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok && sel.Obj() != nil {
			return sel.Obj(), true
		}
		return nil, false
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		return obj, obj != nil
	case *ast.IndexExpr:
		return refObject(pkg, x.X)
	}
	return nil, false
}

// refName renders a lock object for diagnostics: Type.field for struct
// fields, the plain name otherwise.
func refName(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		// Find the named struct the field belongs to for display; the
		// object's parent scope does not record it, so fall back to the
		// package-qualified field name.
		return fieldOwnerName(v) + v.Name()
	}
	return obj.Name()
}

// fieldOwnerName best-effort resolves "Owner." for a struct field by
// scanning the declaring package's named types.
func fieldOwnerName(v *types.Var) string {
	pkg := v.Pkg()
	if pkg == nil {
		return ""
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name() + "."
			}
		}
	}
	return ""
}

// lockPathSuffix renders the interprocedural witness chain of an order
// edge ("" for a direct acquisition).
func lockPathSuffix(path []*types.Func) string {
	if len(path) == 0 {
		return ""
	}
	names := make([]string, len(path))
	for i, fn := range path {
		names[i] = funcName(fn)
	}
	return " (via " + strings.Join(names, " -> ") + ")"
}
