package analysis

import "testing"

// The regionbudget fixture exercises the analyzer end to end; these
// tests pin the summary algebra's corner cases directly, where getting
// a max/add wrong would silently under-count a region (the one failure
// mode the analyzer must not have).

func TestRcostSaturation(t *testing.T) {
	big := ops(rcostCap)
	if got := big.add(ops(1)); got.top || got.n != rcostCap {
		t.Errorf("add past cap = %+v, want saturated", got)
	}
	if got := big.mul(1 << 20); got.top || got.n != rcostCap {
		t.Errorf("mul past cap = %+v, want saturated", got)
	}
	if got := topCost.add(ops(1)); !got.top {
		t.Errorf("top+1 = %+v, want top", got)
	}
	if got := ops(5).max(topCost); !got.top {
		t.Errorf("max(5, top) = %+v, want top", got)
	}
}

func TestSeqCrossRegion(t *testing.T) {
	// a preserves (tail 3), b preserves (head 4): the cross region is
	// a.tail + b.head = 7, and the composite must-preserves.
	a := seq(seq(leaf(ops(2)), boundary(ops(1))), leaf(ops(3)))
	b := seq(seq(leaf(ops(4)), boundary(ops(1))), leaf(ops(5)))
	s := seq(a, b)
	if !s.must || !s.any {
		t.Fatalf("must/any = %v/%v", s.must, s.any)
	}
	if s.head.n != 3 { // 2 + boundary head 1
		t.Errorf("head = %+v, want 3", s.head)
	}
	if s.tail.n != 5 {
		t.Errorf("tail = %+v, want 5", s.tail)
	}
	// tail of a (3) + head of b (4 + boundary 1) = 8.
	if s.maxMid.n != 8 {
		t.Errorf("maxMid = %+v, want 8", s.maxMid)
	}
}

func TestSeqPreserveFreePassThrough(t *testing.T) {
	// a does not preserve: its cost prefixes b's head.
	a := leaf(ops(10))
	b := seq(leaf(ops(4)), boundary(ops(0)))
	s := seq(a, b)
	if s.head.n != 14 {
		t.Errorf("head = %+v, want 14", s.head)
	}
	if !s.must {
		t.Error("b preserves on every path; composite must too")
	}
}

func TestAltTakesWorst(t *testing.T) {
	withPreserve := seq(seq(leaf(ops(2)), boundary(ops(0))), leaf(ops(9)))
	without := leaf(ops(6))
	s := alt(withPreserve, without)
	if s.must {
		t.Error("one arm is preserve-free; must cannot hold")
	}
	if !s.any {
		t.Error("one arm preserves; any must hold")
	}
	if s.tail.n != 9 || s.nopres.n != 6 {
		t.Errorf("tail/nopres = %+v/%+v", s.tail, s.nopres)
	}
}

func TestLoopSummaryShapes(t *testing.T) {
	plain := leaf(ops(7))
	if s, ok := loopSummary(plain, 5); !ok || s.nopres.n != 35 || s.any {
		t.Errorf("counted preserve-free loop = %+v ok=%v", s, ok)
	}
	if _, ok := loopSummary(plain, -1); ok {
		t.Error("unknown-trip preserve-free loop must widen")
	}

	// A must-preserve body with unknown trips stays bounded: the worst
	// region is the wraparound tail+head.
	body := seq(seq(leaf(ops(3)), boundary(ops(1))), leaf(ops(2)))
	s, ok := loopSummary(body, -1)
	if !ok {
		t.Fatal("must-preserve unbounded loop widened")
	}
	if s.must {
		t.Error("an unknown trip count may be zero; must cannot hold")
	}
	if want := int64(3 + 1 + 2); s.maxMid.n != want {
		t.Errorf("wraparound region = %+v, want %d", s.maxMid, want)
	}
	if w := s.worst(); w.top || w.n != 6 {
		t.Errorf("worst = %+v, want 6", w)
	}

	// A may-preserve body with a known count bounds regions by spanning
	// every preserve-free iteration.
	may := alt(body, leaf(ops(10)))
	s, ok = loopSummary(may, 4)
	if !ok {
		t.Fatal("may-preserve counted loop widened")
	}
	if s.must {
		t.Error("may-preserve loop cannot be must")
	}
	// span = 4×10; worst region = tail(2) + span + head(4).
	if want := int64(2 + 40 + 4); s.maxMid.n != want {
		t.Errorf("maxMid = %+v, want %d", s.maxMid, want)
	}
	if _, ok := loopSummary(may, -1); ok {
		t.Error("may-preserve unknown-trip loop must widen")
	}

	// Zero trips erase the body entirely.
	if s, ok := loopSummary(body, 0); !ok || s.any || s.worst().n != 0 {
		t.Errorf("zero-trip loop = %+v ok=%v", s, ok)
	}
}

func TestWorstCoversPreserveFreeFunctions(t *testing.T) {
	s := leaf(ops(42))
	if w := s.worst(); w.n != 42 {
		t.Errorf("preserve-free worst = %+v, want 42", w)
	}
	mustS := seq(leaf(ops(2)), boundary(ops(0)))
	if w := mustS.worst(); w.n != 2 {
		t.Errorf("must worst = %+v, want head 2", w)
	}
}
