package analysis

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden-fixture harness: each testdata/src/<name> directory is one
// package whose source carries `// want `+"`regex`"+`` comments on the
// lines where the analyzer under test must report. Every diagnostic must
// match a want on its line and every want must be matched — so the test
// fails both on false positives and, crucially, when a check is disabled.

// loadFixture loads one testdata package under the module path "fix".
func loadFixture(t *testing.T, name string) (*Package, *Directives) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	l, err := NewLoader(dir, "fix")
	if err != nil {
		t.Fatalf("NewLoader(%s): %v", dir, err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: loaded %d packages, want 1", name, len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.Errs) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", name, pkg.Errs)
	}
	return pkg, l.Directives()
}

var wantRE = regexp.MustCompile("// want ((?:`[^`]+`\\s*)+)")
var wantPartRE = regexp.MustCompile("`([^`]+)`")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants maps file:line to the expectations written there.
func collectWants(t *testing.T, pkg *Package) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want ") {
						t.Errorf("%s: malformed want comment %q (use backquoted regexps)",
							pkg.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, part := range wantPartRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(part[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, part[1], err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	return wants
}

// runFixture runs one analyzer over one fixture and enforces the wants.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg, dirs := loadFixture(t, name)
	diags := RunOne(a, pkg, dirs)
	checkExpectations(t, pkg, diags)
}

func checkExpectations(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

// fixtureFuncNames sanity-checks a fixture still declares a function; it
// guards against fixtures being accidentally emptied.
func fixtureFuncNames(pkg *Package) []string {
	var names []string
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				names = append(names, fd.Name.Name)
			}
		}
	}
	return names
}

func TestFloatPurityFixture(t *testing.T)   { runFixture(t, FloatPurity, "floatpurity") }
func TestNVMDisciplineFixture(t *testing.T) { runFixture(t, NVMDiscipline, "nvmdiscipline") }
func TestHotAllocFixture(t *testing.T)      { runFixture(t, HotAlloc, "hotalloc") }
func TestErrCheckFixture(t *testing.T)      { runFixture(t, ErrCheck, "errcheck") }
func TestWARHazardFixture(t *testing.T)     { runFixture(t, WARHazard, "warhazard") }
func TestParsafeFixture(t *testing.T)       { runFixture(t, Parsafe, "parsafe") }
func TestFloatFlowFixture(t *testing.T)     { runFixture(t, FloatFlow, "floatflow") }
func TestAllocFlowFixture(t *testing.T)     { runFixture(t, AllocFlow, "allocflow") }
func TestRegionBudgetFixture(t *testing.T)  { runFixture(t, RegionBudget, "regionbudget") }
func TestLockOrderFixture(t *testing.T)     { runFixture(t, LockOrder, "lockorder") }
func TestGoleakFixture(t *testing.T)        { runFixture(t, Goleak, "goleak") }

// TestDirectivesFixture exercises the directive parser's own findings
// (unknown names with did-you-mean suggestions) through the same
// golden-want harness; Problems are not analyzer diagnostics, so the
// fixture feeds them to the checker directly.
func TestDirectivesFixture(t *testing.T) {
	pkg, dirs := loadFixture(t, "directives")
	checkExpectations(t, pkg, dirs.Problems)
}

// TestFixturesNonEmpty guards the harness itself: a fixture that loads
// but declares nothing would vacuously pass.
func TestFixturesNonEmpty(t *testing.T) {
	for _, name := range []string{"floatpurity", "nvmdiscipline", "hotalloc", "errcheck",
		"warhazard", "parsafe", "floatflow", "allocflow", "regionbudget",
		"lockorder", "goleak", "directives"} {
		pkg, _ := loadFixture(t, name)
		if len(fixtureFuncNames(pkg)) == 0 {
			t.Errorf("fixture %s declares no functions", name)
		}
	}
}
