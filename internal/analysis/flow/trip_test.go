package flow

import (
	"fmt"
	"go/ast"
	"testing"
)

// firstFor returns the first for/range statement in fn's body.
func firstFor(fd *ast.FuncDecl) *ast.ForStmt {
	var out *ast.ForStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if fs, ok := n.(*ast.ForStmt); ok {
			out = fs
			return false
		}
		return true
	})
	return out
}

func firstRange(fd *ast.FuncDecl) *ast.RangeStmt {
	var out *ast.RangeStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if rs, ok := n.(*ast.RangeStmt); ok {
			out = rs
			return false
		}
		return true
	})
	return out
}

func TestTripCountCounted(t *testing.T) {
	cases := []struct {
		loop string
		n    int64
		ok   bool
	}{
		{"for i := 0; i < 10; i++ { sink(i) }", 10, true},
		{"for i := 0; i <= 10; i++ { sink(i) }", 11, true},
		{"for i := 10; i > 0; i-- { sink(i) }", 10, true},
		{"for i := 10; i >= 0; i-- { sink(i) }", 11, true},
		{"for i := 0; i < 10; i += 3 { sink(i) }", 4, true},
		{"for i := 20; i >= 3; i -= 4 { sink(i) }", 5, true},
		{"for i := 2; i < 7; i++ { sink(i) }", 5, true},
		{"for i := 0; 10 > i; i++ { sink(i) }", 10, true}, // reversed operands
		{"for i := 0; 0 <= i; i++ { sink(i) }", 0, false}, // runs forever
		{"for i := 5; i < 5; i++ { sink(i) }", 0, true},   // zero-trip
		{"for i := 9; i < 5; i-- { sink(i) }", 0, true},   // false at entry
		{"for i := 0; i < kConst; i++ { sink(i) }", 32, true},
		{"for i := 0; i < 2*kConst; i++ { sink(i) }", 64, true},
		// Widened shapes: every one of these must be ⊤.
		{"for { sink(0); break }", 0, false},
		{"for i := 0; i < bound(); i++ { sink(i) }", 0, false},  // dynamic limit
		{"for i := bound(); i < 10; i++ { sink(i) }", 0, false}, // dynamic start
		{"for i := 0; i < 10; i += bound() { sink(i) }", 0, false},
		{"for i := 0; i != 10; i++ { sink(i) }", 0, false}, // != not handled
		{"for i := 0; i < 10; i++ { i = 3 }", 0, false},    // body writes i
		{"for i := 0; i < 10; i++ { sink2(&i) }", 0, false},
		{"for i := 0; i < 10; i++ { f := func() { i++ }; f() }", 0, false},
		{"for i := 0; i < 10; i *= 2 { sink(i) }", 0, false}, // non-linear
		{"for i := 0; i < 10; i -= 1 { sink(i) }", 0, false}, // moves away
		{"for i := 0.0; i < 10; i++ { _ = i }", 0, false},    // float induction
	}
	for idx, c := range cases {
		src := fmt.Sprintf(`package p
const kConst = 32
func sink(int) {}
func sink2(*int) {}
func bound() int { return 3 }
func f() {
	%s
}
`, c.loop)
		fd, info, _ := compile(t, src, "f")
		fs := firstFor(fd)
		if fs == nil {
			t.Fatalf("case %d: no for statement in %q", idx, c.loop)
		}
		n, ok := TripCount(fs, info)
		if ok != c.ok || (ok && n != c.n) {
			t.Errorf("case %d %q: TripCount = (%d, %v), want (%d, %v)", idx, c.loop, n, ok, c.n, c.ok)
		}
	}
}

func TestRangeTripCount(t *testing.T) {
	cases := []struct {
		loop string
		n    int64
		ok   bool
	}{
		{"for range 8 { sink(0) }", 8, true},
		{"for i := range 8 { sink(i) }", 8, true},
		{"for i := range arr { sink(i) }", 5, true},
		{"for i := range &arr { sink(i) }", 5, true},
		{"for range kConst { sink(0) }", 32, true},
		{`for range "hello" { sink(0) }`, 5, true},
		{"for i := range sl { sink(i) }", 0, false}, // slice: dynamic
		{"for k := range mp { sink(k) }", 0, false}, // map: dynamic
		{"for range bound() { sink(0) }", 0, false}, // dynamic int
	}
	for idx, c := range cases {
		src := fmt.Sprintf(`package p
const kConst = 32
var arr [5]int
var sl []int
var mp map[int]int
func sink(int) {}
func bound() int { return 3 }
func f() {
	%s
}
`, c.loop)
		fd, info, _ := compile(t, src, "f")
		rs := firstRange(fd)
		if rs == nil {
			t.Fatalf("case %d: no range statement in %q", idx, c.loop)
		}
		n, ok := RangeTripCount(rs, info)
		if ok != c.ok || (ok && n != c.n) {
			t.Errorf("case %d %q: RangeTripCount = (%d, %v), want (%d, %v)", idx, c.loop, n, ok, c.n, c.ok)
		}
	}
}

func TestTripCountNested(t *testing.T) {
	// Outer and inner both counted; inner's count must not be disturbed
	// by the outer variable, and vice versa.
	src := `package p
func sink(int) {}
func f() {
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			sink(i + j)
		}
	}
}
`
	fd, info, _ := compile(t, src, "f")
	var loops []*ast.ForStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fs, ok := n.(*ast.ForStmt); ok {
			loops = append(loops, fs)
		}
		return true
	})
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	if n, ok := TripCount(loops[0], info); !ok || n != 6 {
		t.Errorf("outer: (%d, %v), want (6, true)", n, ok)
	}
	if n, ok := TripCount(loops[1], info); !ok || n != 4 {
		t.Errorf("inner: (%d, %v), want (4, true)", n, ok)
	}
}
