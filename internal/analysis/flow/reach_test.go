package flow

import (
	"go/ast"
	"go/types"
	"testing"
)

// defsOf filters a fact down to the definitions of one named variable.
func defsOf(facts Defs, name string) []Def {
	var out []Def
	for d := range facts {
		if d.Obj.Name() == name {
			out = append(out, d)
		}
	}
	return out
}

// exitFact recomputes the fact reaching Exit (its entry fact IS the
// union of the terminating paths' exits, which is what callers want).
func exitFact(g *Graph, facts map[*Block]Defs) Defs {
	return facts[g.Exit]
}

func funcParams(fd *ast.FuncDecl, info *types.Info) []types.Object {
	var out []types.Object
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				out = append(out, info.Defs[n])
			}
		}
	}
	if fd.Recv != nil {
		add(fd.Recv)
	}
	add(fd.Type.Params)
	return out
}

func TestReachingDefsBranchMerge(t *testing.T) {
	fd, info, _ := compile(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	}
	return x
}`, "f")
	g := Build(fd.Body)
	facts := ReachingDefs(g, info, funcParams(fd, info))
	// At exit both the initial x := 0 and the branch's x = 1 may reach.
	if n := len(defsOf(exitFact(g, facts), "x")); n != 2 {
		t.Fatalf("defs of x reaching exit = %d, want 2 (init + branch)", n)
	}
}

func TestReachingDefsKill(t *testing.T) {
	fd, info, _ := compile(t, `package p
func f() int {
	x := 0
	x = 1
	x = 2
	return x
}`, "f")
	g := Build(fd.Body)
	facts := ReachingDefs(g, info, funcParams(fd, info))
	// Straight-line redefinitions kill: entry fact of Exit comes from the
	// single terminating block, where only x = 2 survives.
	if n := len(defsOf(exitFact(g, facts), "x")); n != 1 {
		t.Fatalf("defs of x reaching exit = %d, want 1 (last write wins)", n)
	}
}

func TestReachingDefsLoopCarried(t *testing.T) {
	fd, info, _ := compile(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s = s + i
	}
	return s
}`, "f")
	g := Build(fd.Body)
	facts := ReachingDefs(g, info, funcParams(fd, info))
	// The loop body's redefinition of s must flow around the back edge:
	// find the block holding the condition (two successors, part of a
	// cycle) and check both definitions of s reach it.
	var head *Block
	for _, b := range g.Blocks {
		if len(b.Succs) == 2 && len(b.Nodes) == 1 {
			head = b
		}
	}
	if head == nil {
		t.Fatal("loop head not found")
	}
	if n := len(defsOf(facts[head], "s")); n != 2 {
		t.Fatalf("defs of s reaching loop head = %d, want 2 (init + loop-carried)", n)
	}
}

func TestReachingDefsParams(t *testing.T) {
	fd, info, _ := compile(t, `package p
func f(a int) int {
	return a
}`, "f")
	g := Build(fd.Body)
	facts := ReachingDefs(g, info, funcParams(fd, info))
	if n := len(defsOf(exitFact(g, facts), "a")); n != 1 {
		t.Fatalf("param def of a not seeded, got %d", n)
	}
}

func TestReachingDefsRangeBinding(t *testing.T) {
	fd, info, _ := compile(t, `package p
func f(xs []int) int {
	v := -1
	for _, v = range xs {
	}
	return v
}`, "f")
	g := Build(fd.Body)
	facts := ReachingDefs(g, info, funcParams(fd, info))
	// Both the init and the range binding reach the return.
	if n := len(defsOf(exitFact(g, facts), "v")); n != 2 {
		t.Fatalf("defs of v reaching exit = %d, want 2 (init + range binding)", n)
	}
}
