// Package flow is a lightweight per-function control-flow and dataflow
// engine built only on the standard library's go/ast and go/types — the
// substrate for the analyzers that must see across branches and loops
// (warhazard's preservation-interval tracking, reaching definitions)
// where a plain AST walk cannot.
//
// A Graph is a set of basic blocks over the *statements and control
// expressions* of one function body: compound statements are decomposed,
// so a block's Nodes slice holds simple statements (assignments, calls,
// sends, returns) plus the condition expressions of the branches that
// end it. Analyses consume blocks with a transfer function and the
// Forward fixpoint solver (dataflow.go).
package flow

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal run of nodes executed without
// branching. Nodes holds simple statements and branch/loop condition
// expressions in evaluation order; Succs are the control-flow
// successors. Branch, when non-nil, labels the conditional exit of the
// block so path-sensitive analyses can refine facts per edge.
type Block struct {
	Index  int
	Nodes  []ast.Node
	Succs  []*Block
	Branch *Branch
}

// Branch labels a block's two-way conditional exit: control reaches
// True when Cond evaluates to true and False otherwise. Only if
// statements and for-loop condition heads produce branches; multi-way
// dispatch (switch, select, range termination) carries no label and
// stays path-insensitive.
type Branch struct {
	Cond  ast.Expr
	True  *Block
	False *Block
}

// Graph is the control-flow graph of one function body. Entry is the
// block control enters at; Exit is a virtual block every return (and the
// fall-off-the-end path) edges to.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// Preds computes the predecessor sets of every block.
func (g *Graph) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// Build constructs the CFG of one function body. The builder decomposes
// if/for/range/switch/type-switch/select statements, resolves
// break/continue (labeled or not), goto, and fallthrough; defer and go
// statements are kept as plain nodes in their block (their call
// arguments are evaluated there; deferred execution order is a
// per-analysis concern).
func Build(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmts(body.List)
	b.edge(b.cur, g.Exit)
	return g
}

// labelInfo tracks the targets a label can resolve to: the block the
// labeled statement starts at (goto), and — while a labeled loop or
// switch is being built — its break/continue targets.
type labelInfo struct {
	start *Block // target of goto; start of the labeled statement
	brk   *Block
	cont  *Block
}

type builder struct {
	g      *Graph
	cur    *Block
	brk    *Block // innermost break target
	cont   *Block // innermost continue target
	fall   *Block // next case body, while building a switch case
	labels map[string]*labelInfo
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) label(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{start: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, nil)
	case *ast.RangeStmt:
		b.rangeStmt(s, nil)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, nil)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, nil)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock()
	case *ast.EmptyStmt:
	default:
		// Assignments, declarations, expression/send/inc-dec statements,
		// defer and go: straight-line nodes.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	after := b.newBlock()
	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	b.edge(b.cur, after)
	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		cond.Branch = &Branch{Cond: s.Cond, True: then, False: els}
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(cond, after)
		cond.Branch = &Branch{Cond: s.Cond, True: then, False: after}
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt, li *labelInfo) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	body := b.newBlock()
	post := b.newBlock()
	after := b.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		b.edge(head, after)
		head.Branch = &Branch{Cond: s.Cond, True: body, False: after}
	}
	b.edge(head, body)

	savedBrk, savedCont := b.brk, b.cont
	b.brk, b.cont = after, post
	if li != nil {
		li.brk, li.cont = after, post
	}
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, post)
	b.cur = post
	if s.Post != nil {
		b.stmt(s.Post)
	}
	b.edge(b.cur, head)
	b.brk, b.cont = savedBrk, savedCont
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, li *labelInfo) {
	// The range operand is evaluated once, before the loop.
	b.add(s.X)
	head := b.newBlock()
	body := b.newBlock()
	after := b.newBlock()
	b.edge(b.cur, head)
	b.edge(head, body)
	b.edge(head, after)

	savedBrk, savedCont := b.brk, b.cont
	b.brk, b.cont = after, head
	if li != nil {
		li.brk, li.cont = after, head
	}
	b.cur = body
	// The RangeStmt node itself stands for the per-iteration key/value
	// assignment; analyses must interpret it as exactly that (not walk
	// into X or Body, which have their own blocks).
	b.add(s)
	b.stmt(s.Body)
	b.edge(b.cur, head)
	b.brk, b.cont = savedBrk, savedCont
	b.cur = after
}

func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, li *labelInfo) {
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	b.caseClauses(body, li, func(cc *ast.CaseClause) {
		// Case expressions are evaluated while dispatching; they belong
		// to the head block.
		for _, e := range cc.List {
			b.add(e)
		}
	})
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, li *labelInfo) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Assign)
	b.caseClauses(s.Body, li, nil)
}

// caseClauses builds the branch structure shared by expression and type
// switches: head fans out to one block per case, fallthrough links case
// bodies, a missing default adds a head→after edge.
func (b *builder) caseClauses(body *ast.BlockStmt, li *labelInfo, caseExprs func(*ast.CaseClause)) {
	head := b.cur
	after := b.newBlock()
	var clauses []*ast.CaseClause
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
			if caseExprs != nil {
				caseExprs(cc)
			}
		}
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		bodies[i] = b.newBlock()
		b.edge(head, bodies[i])
		if len(cc.List) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	savedBrk, savedFall := b.brk, b.fall
	b.brk = after
	if li != nil {
		li.brk = after
	}
	for i, cc := range clauses {
		b.fall = nil
		if i+1 < len(bodies) {
			b.fall = bodies[i+1]
		}
		b.cur = bodies[i]
		b.stmts(cc.Body)
		b.edge(b.cur, after)
	}
	b.brk, b.fall = savedBrk, savedFall
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	head := b.cur
	after := b.newBlock()
	savedBrk := b.brk
	b.brk = after
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmts(cc.Body)
		b.edge(b.cur, after)
	}
	b.brk = savedBrk
	b.cur = after
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	li := b.label(s.Label.Name)
	b.edge(b.cur, li.start)
	b.cur = li.start
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, li)
	case *ast.RangeStmt:
		b.rangeStmt(inner, li)
	case *ast.SwitchStmt:
		b.switchStmt(inner.Init, inner.Tag, inner.Body, li)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, li)
	default:
		b.stmt(s.Stmt)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	var target *Block
	switch s.Tok {
	case token.BREAK:
		target = b.brk
		if s.Label != nil {
			target = b.label(s.Label.Name).brk
		}
	case token.CONTINUE:
		target = b.cont
		if s.Label != nil {
			target = b.label(s.Label.Name).cont
		}
	case token.GOTO:
		if s.Label != nil {
			target = b.label(s.Label.Name).start
		}
	case token.FALLTHROUGH:
		target = b.fall
	}
	if target != nil {
		b.edge(b.cur, target)
	}
	// Whatever textually follows the branch is unreachable from here;
	// give it a fresh (possibly pred-less) block.
	b.cur = b.newBlock()
}
