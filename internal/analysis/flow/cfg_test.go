package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// compile parses and type-checks one source file and returns the named
// function's declaration plus the type info.
func compile(t *testing.T, src, fn string) (*ast.FuncDecl, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fd, info, fset
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil, nil
}

// reachable walks the graph from Entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{}
	var visit func(*Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(g.Entry)
	return seen
}

func TestBuildStraightLine(t *testing.T) {
	fd, _, _ := compile(t, `package p
func f() int {
	a := 1
	b := a + 1
	return b
}`, "f")
	g := Build(fd.Body)
	if len(g.Entry.Nodes) != 3 { // two assigns + return
		t.Fatalf("entry block has %d nodes, want 3", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry should flow straight to exit, got %v", g.Entry.Succs)
	}
}

func TestBuildIfElse(t *testing.T) {
	fd, _, _ := compile(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`, "f")
	g := Build(fd.Body)
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("condition block has %d successors, want 2", n)
	}
	// Both arms must rejoin before the return reaches Exit.
	join := g.Entry.Succs[0].Succs[0]
	if g.Entry.Succs[1].Succs[0] != join {
		t.Fatal("then/else arms do not rejoin at one block")
	}
	if len(join.Succs) != 1 || join.Succs[0] != g.Exit {
		t.Fatal("join block should return to exit")
	}
}

func TestBuildForLoopBackEdge(t *testing.T) {
	fd, _, _ := compile(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	g := Build(fd.Body)
	// Find the head: the block holding the condition, with an edge to a
	// body whose post block edges back to it.
	var head *Block
	for _, b := range g.Blocks {
		if len(b.Succs) != 2 {
			continue // the head branches to body and after
		}
		for _, s := range b.Succs {
			for _, s2 := range s.Succs {
				for _, s3 := range s2.Succs {
					if s3 == b && b != s {
						head = b
					}
				}
			}
		}
	}
	if head == nil {
		t.Fatal("no loop head on a back-edge cycle found")
	}
}

func TestBuildBreakContinue(t *testing.T) {
	fd, _, _ := compile(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
		s += i
	}
	return s
}`, "f")
	g := Build(fd.Body)
	// The graph must stay connected: the return block is reachable.
	seen := reachable(g)
	if !seen[g.Exit] {
		t.Fatal("exit not reachable with break/continue")
	}
}

func TestBuildLabeledBreak(t *testing.T) {
	fd, _, _ := compile(t, `package p
func f(n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 2 {
				continue outer
			}
			if i*j > 10 {
				break outer
			}
			s++
		}
	}
	return s
}`, "f")
	g := Build(fd.Body)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit not reachable with labeled break/continue")
	}
}

func TestBuildSwitchFallthrough(t *testing.T) {
	fd, _, _ := compile(t, `package p
func f(x int) int {
	s := 0
	switch x {
	case 1:
		s = 1
		fallthrough
	case 2:
		s += 2
	default:
		s = 9
	}
	return s
}`, "f")
	g := Build(fd.Body)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit not reachable through switch")
	}
	// The dispatch head fans out to all 3 clauses (no head→after edge:
	// there is a default).
	found := false
	for _, b := range g.Blocks {
		if len(b.Succs) >= 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("switch dispatch head with 3 case successors not found")
	}
}

func TestBuildRange(t *testing.T) {
	fd, _, _ := compile(t, `package p
func f(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}`, "f")
	g := Build(fd.Body)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit not reachable through range loop")
	}
	// The range head must have a back edge from the body.
	hasBack := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			for _, s2 := range s.Succs {
				if s2 == b {
					hasBack = true
				}
			}
		}
	}
	if !hasBack {
		t.Fatal("range loop has no back edge")
	}
}

func TestBuildGoto(t *testing.T) {
	fd, _, _ := compile(t, `package p
func f(n int) int {
	s := 0
loop:
	s++
	if s < n {
		goto loop
	}
	return s
}`, "f")
	g := Build(fd.Body)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit not reachable with goto")
	}
	hasBack := false
	seen := map[*Block]bool{}
	var visit func(b *Block, path map[*Block]bool)
	visit = func(b *Block, path map[*Block]bool) {
		if path[b] {
			hasBack = true
			return
		}
		if seen[b] {
			return
		}
		seen[b] = true
		path[b] = true
		for _, s := range b.Succs {
			visit(s, path)
		}
		delete(path, b)
	}
	visit(g.Entry, map[*Block]bool{})
	if !hasBack {
		t.Fatal("goto loop has no cycle in the CFG")
	}
}

func TestBuildEarlyReturn(t *testing.T) {
	fd, _, _ := compile(t, `package p
func f(c bool) int {
	if c {
		return 1
	}
	return 2
}`, "f")
	g := Build(fd.Body)
	// Two paths into Exit.
	preds := g.Preds()
	if len(preds[g.Exit]) < 2 {
		t.Fatalf("exit has %d predecessors, want >= 2", len(preds[g.Exit]))
	}
}
