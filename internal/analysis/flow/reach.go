package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Def is one definition (assignment, declaration, or range binding) of a
// function-local named variable.
type Def struct {
	Obj types.Object
	Pos token.Pos
}

// Defs is a reaching-definitions fact: the set of definitions that may
// reach a program point, at most a handful per variable.
type Defs map[Def]bool

// ReachingDefs computes, for every block of g, the definitions of
// function-local variables that reach the block's entry. params seeds
// the entry block with one definition per parameter (pass the objects of
// the function's parameters and receiver). The classic gen/kill scheme:
// a new definition of a variable kills every earlier one, and joins are
// unions, so a merge point sees every definition that survives on some
// path — including loop-carried ones via the back-edge join.
func ReachingDefs(g *Graph, info *types.Info, params []types.Object) map[*Block]Defs {
	boundary := Defs{}
	for _, p := range params {
		if p != nil {
			boundary[Def{Obj: p, Pos: p.Pos()}] = true
		}
	}
	// nil is the solver's bottom: the first fact to arrive at a block is
	// copied wholesale and always counts as a change, so blocks whose
	// predecessors generate nothing still get processed (an empty fact
	// joined into an empty map would otherwise report no change and the
	// block's own gens would never propagate).
	join := func(dst, src Defs) (Defs, bool) {
		if dst == nil {
			cp := make(Defs, len(src))
			for d := range src {
				cp[d] = true
			}
			return cp, true
		}
		changed := false
		for d := range src {
			if !dst[d] {
				dst[d] = true
				changed = true
			}
		}
		return dst, changed
	}
	transfer := func(b *Block, in Defs) Defs {
		out := make(Defs, len(in))
		for d := range in {
			out[d] = true
		}
		for _, n := range b.Nodes {
			for _, d := range nodeDefs(n, info) {
				for old := range out {
					if old.Obj == d.Obj {
						delete(out, old)
					}
				}
				out[d] = true
			}
		}
		return out
	}
	return Forward(g, boundary, func() Defs { return nil }, join, transfer)
}

// nodeDefs extracts the definitions a single CFG node generates.
// Only direct identifier targets count: an assignment through a
// pointer, index or field does not redefine the variable itself.
func nodeDefs(n ast.Node, info *types.Info) []Def {
	var defs []Def
	ident := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if _, isVar := obj.(*types.Var); isVar {
			defs = append(defs, Def{Obj: obj, Pos: id.Pos()})
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			ident(lhs)
		}
	case *ast.IncDecStmt:
		ident(n.X)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				ident(name)
			}
		}
	case *ast.RangeStmt:
		// The node stands for the per-iteration key/value binding (see
		// Build): X lives in a predecessor block.
		if n.Key != nil {
			ident(n.Key)
		}
		if n.Value != nil {
			ident(n.Value)
		}
	}
	return defs
}
