package flow

// Forward solves a forward dataflow problem to its fixpoint with a
// worklist. The fact S attached to each block is its *entry* state:
// the entry block starts from boundary, every other block from
// bottom(). join folds a predecessor's exit fact src into a block's
// entry fact dst, returning the merged fact (it may mutate and return
// dst) and whether anything changed — the solver's convergence signal.
// transfer maps a block's entry fact to its exit fact and must not
// mutate its input.
//
// The solver terminates for any monotone transfer over a finite-height
// join semilattice — the shape every analysis in this repo uses
// (finite sets of objects/definitions under union-like joins).
func Forward[S any](
	g *Graph,
	boundary S,
	bottom func() S,
	join func(dst, src S) (S, bool),
	transfer func(b *Block, in S) S,
) map[*Block]S {
	return ForwardEdges(g, boundary, bottom, join, transfer, nil)
}

// ForwardEdges is Forward with edge-level refinement: before a block's
// exit fact is joined into a successor, refine may rewrite it with
// knowledge of the edge being taken — typically asserting the outcome
// of the block's Branch condition — or declare the edge infeasible by
// returning ok == false, in which case nothing propagates along it.
// refine must not mutate out: the same exit fact is offered to every
// successor, so a refinement must copy before specializing. A nil
// refine makes ForwardEdges identical to Forward.
func ForwardEdges[S any](
	g *Graph,
	boundary S,
	bottom func() S,
	join func(dst, src S) (S, bool),
	transfer func(b *Block, in S) S,
	refine func(from, to *Block, out S) (S, bool),
) map[*Block]S {
	in := make(map[*Block]S, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = bottom()
	}
	in[g.Entry] = boundary

	work := make([]*Block, 0, len(g.Blocks))
	queued := make(map[*Block]bool, len(g.Blocks))
	push := func(b *Block) {
		if !queued[b] {
			queued[b] = true
			work = append(work, b)
		}
	}
	push(g.Entry)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := transfer(b, in[b])
		for _, s := range b.Succs {
			src := out
			if refine != nil {
				var ok bool
				if src, ok = refine(b, s, out); !ok {
					continue // infeasible edge: propagate nothing
				}
			}
			merged, changed := join(in[s], src)
			in[s] = merged
			if changed {
				push(s)
			}
		}
	}
	return in
}
