package flow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Trip-count inference for counted loops: the piece of the static
// region-cost story that turns "a loop body costs c" into "this loop
// costs n·c". The analysis is deliberately narrow — a loop either
// matches the classic counted shape with constant bounds and an
// induction variable the body never touches, in which case its trip
// count is exact, or it widens to ⊤ (unbounded) and the caller must
// treat the loop as statically uncostable. No intervals, no symbolic
// bounds: a wrong "bounded" answer here would let an over-budget region
// through, so everything uncertain is ⊤.

// tripLimit caps the magnitudes TripCount will do arithmetic on, so the
// count math cannot overflow int64. Loops beyond it widen to ⊤ — a
// counted loop with >2⁴⁰ iterations is unbounded for budget purposes
// anyway.
const tripLimit = int64(1) << 40

// TripCount infers the exact iteration count of a for statement. It
// succeeds only for the counted shape
//
//	for i := c0; i <op> c1; i@ { ... }
//
// where c0 and c1 are integer constants, <op> is one of < <= > >=
// (either operand order), i@ is i++, i--, i += c or i -= c with a
// positive constant c, and the body neither reassigns i nor takes its
// address. Every other loop — missing condition, non-constant bound,
// float induction, body writes to i — returns ok=false: ⊤.
func TripCount(s *ast.ForStmt, info *types.Info) (n int64, ok bool) {
	if s.Cond == nil {
		return 0, false // for {}: unbounded by construction
	}
	iv, start, ok := inductionInit(s.Init, info)
	if !ok {
		return 0, false
	}
	limit, cmp, ok := inductionCond(s.Cond, iv, info)
	if !ok {
		return 0, false
	}
	step, up, ok := inductionPost(s.Post, iv, info)
	if !ok {
		return 0, false
	}
	if writesVar(s.Body, iv, info) {
		return 0, false
	}
	return countTrips(start, limit, step, up, cmp)
}

// RangeTripCount infers the iteration count of a range statement whose
// operand has a statically known length: an array (or pointer to
// array), a constant string, or a constant integer (go1.22
// range-over-int). Slices, maps, channels and function ranges widen to
// ⊤ — their lengths are runtime facts.
func RangeTripCount(s *ast.RangeStmt, info *types.Info) (n int64, ok bool) {
	tv, found := info.Types[s.X]
	if !found {
		return 0, false
	}
	if tv.Value != nil {
		switch tv.Value.Kind() {
		case constant.Int:
			v, exact := constant.Int64Val(tv.Value)
			if exact && v >= 0 && v <= tripLimit {
				return v, true
			}
		case constant.String:
			// Ranging over a string yields runes; the byte length is an
			// upper bound, which is the safe direction for a worst-case
			// cost: never undercount.
			return int64(len(constant.StringVal(tv.Value))), true
		}
		return 0, false
	}
	t := tv.Type
	if t == nil {
		return 0, false
	}
	u := t.Underlying()
	if p, isPtr := u.(*types.Pointer); isPtr {
		u = p.Elem().Underlying()
	}
	if arr, isArr := u.(*types.Array); isArr && arr.Len() >= 0 && arr.Len() <= tripLimit {
		return arr.Len(), true
	}
	return 0, false
}

// inductionInit matches `i := c` or `i = c` with a single integer
// constant and returns the induction variable's object.
func inductionInit(init ast.Stmt, info *types.Info) (types.Object, int64, bool) {
	as, isAssign := init.(*ast.AssignStmt)
	if !isAssign || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, 0, false
	}
	if as.Tok != token.DEFINE && as.Tok != token.ASSIGN {
		return nil, 0, false
	}
	id, isIdent := as.Lhs[0].(*ast.Ident)
	if !isIdent {
		return nil, 0, false
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return nil, 0, false
	}
	c, ok := intValue(as.Rhs[0], info)
	if !ok {
		return nil, 0, false
	}
	return obj, c, true
}

// inductionCond matches `i <op> c` or `c <op> i` and returns the bound
// and the comparison normalized to have i on the left.
func inductionCond(cond ast.Expr, iv types.Object, info *types.Info) (int64, token.Token, bool) {
	be, isBinary := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBinary {
		return 0, 0, false
	}
	flip := map[token.Token]token.Token{
		token.LSS: token.GTR, token.GTR: token.LSS,
		token.LEQ: token.GEQ, token.GEQ: token.LEQ,
	}
	if _, known := flip[be.Op]; !known {
		return 0, 0, false
	}
	if isVar(be.X, iv, info) {
		if c, ok := intValue(be.Y, info); ok {
			return c, be.Op, true
		}
	}
	if isVar(be.Y, iv, info) {
		if c, ok := intValue(be.X, info); ok {
			return c, flip[be.Op], true
		}
	}
	return 0, 0, false
}

// inductionPost matches `i++`, `i--`, `i += c`, `i -= c` with c a
// positive constant; up reports whether the variable increases.
func inductionPost(post ast.Stmt, iv types.Object, info *types.Info) (step int64, up, ok bool) {
	switch p := post.(type) {
	case *ast.IncDecStmt:
		if !isVar(p.X, iv, info) {
			return 0, false, false
		}
		return 1, p.Tok == token.INC, true
	case *ast.AssignStmt:
		if len(p.Lhs) != 1 || len(p.Rhs) != 1 || !isVar(p.Lhs[0], iv, info) {
			return 0, false, false
		}
		if p.Tok != token.ADD_ASSIGN && p.Tok != token.SUB_ASSIGN {
			return 0, false, false
		}
		c, okc := intValue(p.Rhs[0], info)
		if !okc || c <= 0 {
			return 0, false, false
		}
		return c, p.Tok == token.ADD_ASSIGN, true
	}
	return 0, false, false
}

// countTrips solves the normalized counted loop: i starts at start,
// moves by step toward up, runs while `i cmp limit` holds.
func countTrips(start, limit, step int64, up bool, cmp token.Token) (int64, bool) {
	if start < -tripLimit || start > tripLimit || limit < -tripLimit || limit > tripLimit {
		return 0, false
	}
	holds := func(i int64) bool {
		switch cmp {
		case token.LSS:
			return i < limit
		case token.LEQ:
			return i <= limit
		case token.GTR:
			return i > limit
		case token.GEQ:
			return i >= limit
		}
		return false
	}
	if !holds(start) {
		return 0, true // zero-trip regardless of the step direction
	}
	// The step must move i toward the bound, or the loop never exits.
	movesToward := (cmp == token.LSS || cmp == token.LEQ) == up
	if !movesToward {
		return 0, false
	}
	var span int64
	switch cmp {
	case token.LSS:
		span = limit - start // > 0 here
	case token.LEQ:
		span = limit - start + 1
	case token.GTR:
		span = start - limit
	case token.GEQ:
		span = start - limit + 1
	}
	n := (span + step - 1) / step
	return n, true
}

// writesVar reports whether any statement under root assigns to obj,
// increments/decrements it, takes its address, or rebinds it as a range
// variable — anything that breaks the induction arithmetic.
func writesVar(root ast.Node, obj types.Object, info *types.Info) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isVar(lhs, obj, info) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if isVar(n.X, obj, info) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && isVar(n.X, obj, info) {
				found = true
			}
		case *ast.RangeStmt:
			if isVar(n.Key, obj, info) || isVar(n.Value, obj, info) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isVar(e ast.Expr, obj types.Object, info *types.Info) bool {
	if e == nil {
		return false
	}
	id, isIdent := ast.Unparen(e).(*ast.Ident)
	return isIdent && info.ObjectOf(id) == obj
}

// intValue evaluates e as an exact integer constant within tripLimit.
func intValue(e ast.Expr, info *types.Info) (int64, bool) {
	tv, found := info.Types[e]
	if !found || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact || v < -tripLimit || v > tripLimit {
		return 0, false
	}
	return v, true
}
