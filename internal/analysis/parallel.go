package analysis

import (
	"context"

	"iprune/internal/pool"
)

// Parallel driver: the analyzers decompose into independent work units —
// one per (package, per-package analyzer) pair plus one per module-level
// analyzer — each writing into its own result slot. Merging the slots in
// task order reproduces exactly the append order of the sequential
// driver, so Run and RunParallel produce byte-identical output by
// construction: Run *is* RunParallel with one worker, and the final Sort
// is a total order (file, line, column, analyzer, message).
//
// Concurrency safety rests on the same contract go/types documents: all
// type-checker products (types.Info, scopes, named types) are read-only
// after loading, directive indexes are read-only after Collect, and each
// module analyzer builds its own devirtualizer/summaries. The pool that
// executes the tasks is the concflow-certified internal/pool.

// lintTask is one independent work unit of a lint run.
type lintTask struct {
	pkg *Package // target package; nil for module-analyzer tasks
	run func() []Diagnostic
}

// lintTasks builds the work units in canonical order: per-package
// analyzers over the targets (package-major, analyzer-minor — the
// sequential loop order), then the module analyzers. modulePkgs is the
// package set module analyzers see (the whole clean module); targets is
// the set per-package analyzers run on and module analyzers report into
// (only — nil means report everywhere Scope allows).
func lintTasks(analyzers []*Analyzer, modulePkgs, targets []*Package, dirs *Directives, only map[*Package]bool) []lintTask {
	var tasks []lintTask
	for _, pkg := range targets {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			pkg, a := pkg, a
			tasks = append(tasks, lintTask{pkg: pkg, run: func() []Diagnostic {
				return runPkg(a, pkg, dirs)
			}})
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		a := a
		tasks = append(tasks, lintTask{run: func() []Diagnostic {
			var diags []Diagnostic
			mp := &ModulePass{
				Pkgs:   modulePkgs,
				Dirs:   dirs,
				diags:  &diags,
				allow:  a.Allow,
				name:   a.Name,
				scope:  a.Scope,
				only:   only,
				passes: map[*Package]*Pass{},
			}
			a.RunModule(mp)
			return diags
		}})
	}
	return tasks
}

// executeTasks runs every task and returns the results indexed by task.
// workers <= 1 runs sequentially; otherwise a bounded pool executes the
// tasks with workers-way parallelism (the calling goroutine counts as
// one worker). An analyzer panic is re-raised on the caller, matching
// sequential behavior.
func executeTasks(tasks []lintTask, workers int) [][]Diagnostic {
	results := make([][]Diagnostic, len(tasks))
	if workers <= 1 || len(tasks) <= 1 {
		for i, t := range tasks {
			results[i] = t.run()
		}
		return results
	}
	p := pool.New(workers - 1)
	defer p.Close()
	err := p.ForEach(context.Background(), len(tasks), func(i int) {
		results[i] = tasks[i].run()
	})
	if pe, ok := err.(*pool.PanicError); ok {
		panic(pe.Value)
	}
	return results
}

// RunParallel is Run with workers-way parallelism across packages and
// analyzers. Output is byte-identical to Run for any worker count.
func RunParallel(analyzers []*Analyzer, pkgs []*Package, dirs *Directives, workers int) []Diagnostic {
	clean := cleanPkgs(pkgs)
	tasks := lintTasks(analyzers, clean, clean, dirs, nil)
	var diags []Diagnostic
	for _, r := range executeTasks(tasks, workers) {
		diags = append(diags, r...)
	}
	Sort(diags)
	return diags
}

// cleanPkgs filters out packages that failed to type-check (the loader
// already surfaced their errors as diagnostics).
func cleanPkgs(pkgs []*Package) []*Package {
	clean := make([]*Package, 0, len(pkgs))
	for _, pkg := range pkgs {
		if len(pkg.Errs) == 0 {
			clean = append(clean, pkg)
		}
	}
	return clean
}
