package nn

import (
	"fmt"
	"math/rand"

	"iprune/internal/tensor"
)

// Kind distinguishes layer categories for reporting (the paper's Table II
// counts CONV / POOL / FC layers).
type Kind int

// Layer kinds.
const (
	KindConv Kind = iota
	KindFC
	KindPool
	KindGAP // global average pooling: a reduction, not counted as POOL in Table II
	KindAct
	KindFlatten
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindConv:
		return "CONV"
	case KindFC:
		return "FC"
	case KindPool:
		return "POOL"
	case KindGAP:
		return "GAP"
	case KindAct:
		return "ACT"
	case KindFlatten:
		return "FLAT"
	default:
		return "?"
	}
}

// Layer is a single differentiable network stage operating on one sample.
type Layer interface {
	Name() string
	Kind() Kind
	// Forward consumes a CHW (or flat) input and returns the output.
	// Implementations may retain references to the input for backprop.
	Forward(in *tensor.Tensor) *tensor.Tensor
	// Backward consumes dL/dOut and returns dL/dIn, accumulating
	// parameter gradients.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// Params returns learnable parameters (possibly empty).
	Params() []*Param
	// Clone returns a deep copy with independent parameters and masks.
	Clone() Layer
}

// Prunable is implemented by layers whose weights form a GEMM matrix that
// the pruning framework can mask at accelerator-block granularity.
type Prunable interface {
	Layer
	// WeightMatrix exposes the weights as a rows×cols row-major matrix.
	WeightMatrix() (w []float32, rows, cols int)
	// Mask returns the block mask, or nil before InitBlocks.
	Mask() *BlockMask
	// InitBlocks installs a fresh all-keep mask with BM×BK blocks.
	InitBlocks(bm, bk int)
	// ApplyMask zeroes weights in pruned blocks (weights and mask are
	// kept consistent after every optimizer step).
	ApplyMask()
}

// ---------------------------------------------------------------------------
// Conv2D

// Conv2D is a 2-D convolution lowered to GEMM (weights are OutC×K with
// K = InC·KH·KW), matching the device-side lowering so that one block
// geometry describes both training masks and accelerator operations.
type Conv2D struct {
	LayerName string
	Geom      tensor.ConvGeom
	W         *Param // OutC × K
	B         *Param // OutC
	mask      *BlockMask

	col  []float32 // scratch: K×N patch matrix of the last input
	dcol []float32
	in   *tensor.Tensor
}

// NewConv2D constructs and He-initializes a convolution layer.
func NewConv2D(name string, g tensor.ConvGeom, rng *rand.Rand) *Conv2D {
	if err := g.Derive(); err != nil {
		panic(fmt.Sprintf("nn: %s: %v", name, err))
	}
	l := &Conv2D{LayerName: name, Geom: g}
	l.W = NewParam(g.OutC * g.K())
	l.B = NewParam(g.OutC)
	l.W.HeInit(rng, g.K())
	return l
}

// Name implements Layer.
func (l *Conv2D) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *Conv2D) Kind() Kind { return KindConv }

// Params implements Layer.
func (l *Conv2D) Params() []*Param { return []*Param{l.W, l.B} }

// WeightMatrix implements Prunable.
func (l *Conv2D) WeightMatrix() ([]float32, int, int) {
	return l.W.Data, l.Geom.OutC, l.Geom.K()
}

// Mask implements Prunable.
func (l *Conv2D) Mask() *BlockMask { return l.mask }

// InitBlocks implements Prunable.
func (l *Conv2D) InitBlocks(bm, bk int) {
	l.mask = NewBlockMask(l.Geom.OutC, l.Geom.K(), bm, bk)
}

// ApplyMask implements Prunable.
func (l *Conv2D) ApplyMask() {
	if l.mask != nil {
		l.mask.Apply(l.W.Data)
	}
}

// Forward implements Layer.
func (l *Conv2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	g := &l.Geom
	kn := g.K() * g.N()
	if cap(l.col) < kn {
		l.col = make([]float32, kn)
	}
	l.col = l.col[:kn]
	tensor.Im2col(g, in.Data, l.col)
	out := tensor.New(g.OutC, g.OutH, g.OutW)
	tensor.Gemm(l.W.Data, l.col, out.Data, g.OutC, g.K(), g.N(), false)
	n := g.N()
	for oc := 0; oc < g.OutC; oc++ {
		b := l.B.Data[oc]
		row := out.Data[oc*n : oc*n+n]
		for i := range row {
			row[i] += b
		}
	}
	l.in = in
	return out
}

// Backward implements Layer.
func (l *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	g := &l.Geom
	n := g.N()
	// dB
	for oc := 0; oc < g.OutC; oc++ {
		row := gradOut.Data[oc*n : oc*n+n]
		var s float32
		for _, v := range row {
			s += v
		}
		l.B.Grad[oc] += s
	}
	// dW = dY · colᵀ  (OutC×N · N×K) — GemmTB with A=dY (OutC×N), B=col (K×N).
	tensor.GemmTB(gradOut.Data, l.col, l.W.Grad, g.OutC, n, g.K(), true)
	// dcol = Wᵀ · dY  (K×OutC · OutC×N) — GemmTA with A=W (OutC×K), B=dY.
	kn := g.K() * n
	if cap(l.dcol) < kn {
		l.dcol = make([]float32, kn)
	}
	l.dcol = l.dcol[:kn]
	tensor.GemmTA(l.W.Data, gradOut.Data, l.dcol, g.K(), g.OutC, n, false)
	gradIn := tensor.New(g.InC, g.InH, g.InW)
	tensor.Col2im(g, l.dcol, gradIn.Data)
	return gradIn
}

// Clone implements Layer.
func (l *Conv2D) Clone() Layer {
	c := &Conv2D{LayerName: l.LayerName, Geom: l.Geom, W: l.W.Clone(), B: l.B.Clone()}
	if l.mask != nil {
		c.mask = l.mask.Clone()
	}
	return c
}

// ---------------------------------------------------------------------------
// FC

// FC is a fully connected layer (weights Out×In).
type FC struct {
	LayerName string
	In, Out   int
	W         *Param
	B         *Param
	mask      *BlockMask
	in        *tensor.Tensor
}

// NewFC constructs and He-initializes a fully connected layer.
func NewFC(name string, in, out int, rng *rand.Rand) *FC {
	l := &FC{LayerName: name, In: in, Out: out}
	l.W = NewParam(out * in)
	l.B = NewParam(out)
	l.W.HeInit(rng, in)
	return l
}

// Name implements Layer.
func (l *FC) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *FC) Kind() Kind { return KindFC }

// Params implements Layer.
func (l *FC) Params() []*Param { return []*Param{l.W, l.B} }

// WeightMatrix implements Prunable.
func (l *FC) WeightMatrix() ([]float32, int, int) { return l.W.Data, l.Out, l.In }

// Mask implements Prunable.
func (l *FC) Mask() *BlockMask { return l.mask }

// InitBlocks implements Prunable.
func (l *FC) InitBlocks(bm, bk int) { l.mask = NewBlockMask(l.Out, l.In, bm, bk) }

// ApplyMask implements Prunable.
func (l *FC) ApplyMask() {
	if l.mask != nil {
		l.mask.Apply(l.W.Data)
	}
}

// Forward implements Layer.
func (l *FC) Forward(in *tensor.Tensor) *tensor.Tensor {
	if in.Len() != l.In {
		panic(fmt.Sprintf("nn: %s: input %d, want %d", l.LayerName, in.Len(), l.In))
	}
	out := tensor.New(l.Out)
	tensor.Gemm(l.W.Data, in.Data, out.Data, l.Out, l.In, 1, false)
	for i := range out.Data {
		out.Data[i] += l.B.Data[i]
	}
	l.in = in
	return out
}

// Backward implements Layer.
func (l *FC) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	for i, g := range gradOut.Data {
		l.B.Grad[i] += g
	}
	// dW[o][i] += gOut[o] * in[i]
	for o, g := range gradOut.Data {
		if g == 0 {
			continue
		}
		row := l.W.Grad[o*l.In : o*l.In+l.In]
		for i, x := range l.in.Data {
			row[i] += g * x
		}
	}
	gradIn := tensor.New(l.In)
	tensor.GemmTA(l.W.Data, gradOut.Data, gradIn.Data, l.In, l.Out, 1, false)
	return gradIn
}

// Clone implements Layer.
func (l *FC) Clone() Layer {
	c := &FC{LayerName: l.LayerName, In: l.In, Out: l.Out, W: l.W.Clone(), B: l.B.Clone()}
	if l.mask != nil {
		c.mask = l.mask.Clone()
	}
	return c
}

// ---------------------------------------------------------------------------
// MaxPool2D

// MaxPool2D is a max pooling layer over CHW inputs.
type MaxPool2D struct {
	LayerName      string
	C, InH, InW    int
	KH, KW, SH, SW int
	OutH, OutW     int
	argmax         []int
}

// NewMaxPool2D constructs a square max pooling layer.
func NewMaxPool2D(name string, c, inH, inW, k, stride int) *MaxPool2D {
	return NewMaxPool2DRect(name, c, inH, inW, k, k, stride, stride)
}

// NewMaxPool2DRect constructs a max pooling layer with independent kernel
// and stride per axis (1-D signals pool along width only).
func NewMaxPool2DRect(name string, c, inH, inW, kh, kw, sh, sw int) *MaxPool2D {
	l := &MaxPool2D{LayerName: name, C: c, InH: inH, InW: inW, KH: kh, KW: kw, SH: sh, SW: sw}
	l.OutH = (inH-kh)/sh + 1
	l.OutW = (inW-kw)/sw + 1
	if l.OutH <= 0 || l.OutW <= 0 {
		panic(fmt.Sprintf("nn: %s: pool output empty", name))
	}
	return l
}

// Name implements Layer.
func (l *MaxPool2D) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *MaxPool2D) Kind() Kind { return KindPool }

// Params implements Layer.
func (l *MaxPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (l *MaxPool2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(l.C, l.OutH, l.OutW)
	if cap(l.argmax) < out.Len() {
		l.argmax = make([]int, out.Len())
	}
	l.argmax = l.argmax[:out.Len()]
	oi := 0
	for c := 0; c < l.C; c++ {
		plane := in.Data[c*l.InH*l.InW:]
		for oh := 0; oh < l.OutH; oh++ {
			for ow := 0; ow < l.OutW; ow++ {
				best := float32(0)
				bestIdx := -1
				for kh := 0; kh < l.KH; kh++ {
					ih := oh*l.SH + kh
					for kw := 0; kw < l.KW; kw++ {
						iw := ow*l.SW + kw
						idx := ih*l.InW + iw
						v := plane[idx]
						if bestIdx < 0 || v > best {
							best, bestIdx = v, idx
						}
					}
				}
				out.Data[oi] = best
				l.argmax[oi] = c*l.InH*l.InW + bestIdx
				oi++
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *MaxPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := tensor.New(l.C, l.InH, l.InW)
	for i, g := range gradOut.Data {
		gradIn.Data[l.argmax[i]] += g
	}
	return gradIn
}

// Clone implements Layer.
func (l *MaxPool2D) Clone() Layer {
	c := *l
	c.argmax = nil
	return &c
}

// ---------------------------------------------------------------------------
// GlobalAvgPool

// GlobalAvgPool averages each channel plane to a single value.
type GlobalAvgPool struct {
	LayerName string
	C, H, W   int
}

// NewGlobalAvgPool constructs a global average pooling layer.
func NewGlobalAvgPool(name string, c, h, w int) *GlobalAvgPool {
	return &GlobalAvgPool{LayerName: name, C: c, H: h, W: w}
}

// Name implements Layer.
func (l *GlobalAvgPool) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *GlobalAvgPool) Kind() Kind { return KindGAP }

// Params implements Layer.
func (l *GlobalAvgPool) Params() []*Param { return nil }

// Forward implements Layer.
func (l *GlobalAvgPool) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(l.C)
	hw := l.H * l.W
	inv := 1 / float32(hw)
	for c := 0; c < l.C; c++ {
		var s float32
		for _, v := range in.Data[c*hw : c*hw+hw] {
			s += v
		}
		out.Data[c] = s * inv
	}
	return out
}

// Backward implements Layer.
func (l *GlobalAvgPool) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := tensor.New(l.C, l.H, l.W)
	hw := l.H * l.W
	inv := 1 / float32(hw)
	for c := 0; c < l.C; c++ {
		g := gradOut.Data[c] * inv
		row := gradIn.Data[c*hw : c*hw+hw]
		for i := range row {
			row[i] = g
		}
	}
	return gradIn
}

// Clone implements Layer.
func (l *GlobalAvgPool) Clone() Layer { c := *l; return &c }

// ---------------------------------------------------------------------------
// ReLU

// ReLU is the rectified linear activation.
type ReLU struct {
	LayerName string
	mask      []bool
}

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{LayerName: name} }

// Name implements Layer.
func (l *ReLU) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *ReLU) Kind() Kind { return KindAct }

// Params implements Layer.
func (l *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (l *ReLU) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(in.Shape...)
	if cap(l.mask) < in.Len() {
		l.mask = make([]bool, in.Len())
	}
	l.mask = l.mask[:in.Len()]
	for i, v := range in.Data {
		if v > 0 {
			out.Data[i] = v
			l.mask[i] = true
		} else {
			l.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (l *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := tensor.New(gradOut.Shape...)
	for i, g := range gradOut.Data {
		if l.mask[i] {
			gradIn.Data[i] = g
		}
	}
	return gradIn
}

// Clone implements Layer.
func (l *ReLU) Clone() Layer { return &ReLU{LayerName: l.LayerName} }

// ---------------------------------------------------------------------------
// Flatten

// Flatten reshapes a CHW tensor to a vector.
type Flatten struct {
	LayerName string
	inShape   []int
}

// NewFlatten constructs a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{LayerName: name} }

// Name implements Layer.
func (l *Flatten) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *Flatten) Kind() Kind { return KindFlatten }

// Params implements Layer.
func (l *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (l *Flatten) Forward(in *tensor.Tensor) *tensor.Tensor {
	l.inShape = append(l.inShape[:0], in.Shape...)
	return tensor.FromData(in.Data, in.Len())
}

// Backward implements Layer.
func (l *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return tensor.FromData(gradOut.Data, l.inShape...)
}

// Clone implements Layer.
func (l *Flatten) Clone() Layer { return &Flatten{LayerName: l.LayerName} }
