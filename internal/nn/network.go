package nn

import (
	"fmt"
	"math"
	"math/rand"

	"iprune/internal/tensor"
)

// Network is an ordered stack of layers with a softmax cross-entropy head.
type Network struct {
	Name    string
	Classes int
	Layers  []Layer
}

// NewNetwork constructs an empty network.
func NewNetwork(name string, classes int) *Network {
	return &Network{Name: name, Classes: classes}
}

// Add appends a layer and returns the network for chaining.
func (n *Network) Add(l Layer) *Network {
	n.Layers = append(n.Layers, l)
	return n
}

// Forward runs a single sample through all layers and returns the logits.
func (n *Network) Forward(in *tensor.Tensor) *tensor.Tensor {
	x := in
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Softmax converts logits to probabilities (numerically stable).
func Softmax(logits []float32) []float64 {
	maxv := float64(logits[0])
	for _, v := range logits[1:] {
		if float64(v) > maxv {
			maxv = float64(v)
		}
	}
	probs := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(float64(v) - maxv)
		probs[i] = e
		sum += e
	}
	for i := range probs {
		probs[i] /= sum
	}
	return probs
}

// LossBackward computes softmax cross-entropy loss against the label and
// backpropagates, accumulating parameter gradients. Returns the loss.
func (n *Network) LossBackward(in *tensor.Tensor, label int) float64 {
	logits := n.Forward(in)
	probs := Softmax(logits.Data)
	loss := -math.Log(math.Max(probs[label], 1e-12))
	grad := tensor.New(len(logits.Data))
	for i, p := range probs {
		grad.Data[i] = float32(p)
	}
	grad.Data[label] -= 1
	g := grad
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
	return loss
}

// Predict returns the argmax class for a sample.
func (n *Network) Predict(in *tensor.Tensor) int {
	logits := n.Forward(in)
	best, bestIdx := logits.Data[0], 0
	for i, v := range logits.Data[1:] {
		if v > best {
			best, bestIdx = v, i+1
		}
	}
	return bestIdx
}

// ZeroGrads clears every parameter gradient.
func (n *Network) ZeroGrads() {
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			p.ZeroGrad()
		}
	}
}

// Walk visits every layer depth-first in network order, descending into
// multi-path containers. All traversals that must agree on layer order
// (prunable enumeration, spec lowering, mask installation) go through it.
func Walk(layers []Layer, fn func(Layer)) {
	for _, l := range layers {
		fn(l)
		if c, ok := l.(Container); ok {
			Walk(c.Sublayers(), fn)
		}
	}
}

// ApplyMasks re-zeroes pruned blocks in every prunable layer; called after
// each optimizer step so fine-tuning cannot resurrect pruned weights.
func (n *Network) ApplyMasks() {
	for _, p := range n.Prunables() {
		p.ApplyMask()
	}
}

// Prunables returns the prunable layers in network order, including those
// nested inside multi-path branches.
func (n *Network) Prunables() []Prunable {
	var out []Prunable
	Walk(n.Layers, func(l Layer) {
		if p, ok := l.(Prunable); ok {
			out = append(out, p)
		}
	})
	return out
}

// TotalWeights returns the number of weight elements in prunable layers
// that are still unpruned (bias parameters excluded, as in the paper's
// weight counts).
func (n *Network) TotalWeights() int {
	total := 0
	for _, p := range n.Prunables() {
		if m := p.Mask(); m != nil {
			total += m.KeptWeights()
		} else {
			_, r, c := p.WeightMatrix()
			total += r * c
		}
	}
	return total
}

// Clone deep-copies the network including masks.
func (n *Network) Clone() *Network {
	c := NewNetwork(n.Name, n.Classes)
	for _, l := range n.Layers {
		c.Add(l.Clone())
	}
	return c
}

// LayerCounts returns a map of layer-kind name to count, for Table II
// style reporting (activation and flatten layers are bookkeeping, not
// counted by the paper).
func (n *Network) LayerCounts() map[string]int {
	counts := map[string]int{}
	Walk(n.Layers, func(l Layer) {
		switch l.Kind() {
		case KindConv, KindFC, KindPool:
			counts[l.Kind().String()]++
		}
	})
	return counts
}

// ---------------------------------------------------------------------------
// SGD

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param][]float32
}

// NewSGD constructs an optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: map[*Param][]float32{}}
}

// Step applies one update using gradients accumulated over batchSize
// samples, then re-applies pruning masks.
func (s *SGD) Step(n *Network, batchSize int) {
	if batchSize <= 0 {
		panic(fmt.Sprintf("nn: bad batch size %d", batchSize))
	}
	scale := float32(s.LR / float64(batchSize))
	mom := float32(s.Momentum)
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			v := s.vel[p]
			if v == nil {
				v = make([]float32, len(p.Data))
				s.vel[p] = v
			}
			for i := range p.Data {
				v[i] = mom*v[i] - scale*p.Grad[i]
				p.Data[i] += v[i]
			}
		}
	}
	n.ApplyMasks()
}

// ---------------------------------------------------------------------------
// Training and evaluation helpers

// Sample is one labelled training/evaluation example.
type Sample struct {
	X     *tensor.Tensor
	Label int
}

// TrainEpoch runs one epoch of minibatch SGD over samples (shuffled with
// rng) and returns the mean loss.
func TrainEpoch(n *Network, samples []Sample, opt *SGD, batch int, rng *rand.Rand) float64 {
	if batch <= 0 {
		batch = 16
	}
	idx := rng.Perm(len(samples))
	var total float64
	for start := 0; start < len(idx); start += batch {
		end := min(start+batch, len(idx))
		n.ZeroGrads()
		for _, i := range idx[start:end] {
			s := samples[i]
			total += n.LossBackward(s.X, s.Label)
		}
		opt.Step(n, end-start)
	}
	return total / float64(len(samples))
}

// Accuracy evaluates top-1 accuracy over the samples.
func Accuracy(n *Network, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if n.Predict(s.X) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
