// Package nn implements the small training stack the pruning framework
// needs: convolutional, fully connected, pooling and activation layers
// with exact manual backpropagation, SGD with momentum, and — the part
// that is specific to this paper — per-block weight masks that express
// pruning at the granularity of one accelerator-operation weight block
// (guideline 3 in Section III-C).
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is a learnable parameter with its gradient accumulator.
type Param struct {
	Data []float32
	Grad []float32
}

// NewParam allocates a parameter of n elements.
func NewParam(n int) *Param {
	return &Param{Data: make([]float32, n), Grad: make([]float32, n)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Clone deep-copies the parameter (gradients are reset).
func (p *Param) Clone() *Param {
	c := NewParam(len(p.Data))
	copy(c.Data, p.Data)
	return c
}

// HeInit fills the parameter with He-normal initialization for the given
// fan-in, the standard choice for ReLU networks.
func (p *Param) HeInit(rng *rand.Rand, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	for i := range p.Data {
		p.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// BlockMask records which weight blocks of a prunable layer survive.
// The layer's GEMM weight matrix (Rows×Cols) is partitioned into blocks of
// BM×BK; Keep[b] is false once block b has been pruned. Edge blocks are
// clipped to the matrix boundary, matching how HAWAII⁺ issues a final
// partial accelerator operation for ragged tiles.
type BlockMask struct {
	Rows, Cols int
	BM, BK     int
	Keep       []bool
}

// NewBlockMask creates an all-keep mask for a Rows×Cols matrix in BM×BK
// blocks.
func NewBlockMask(rows, cols, bm, bk int) *BlockMask {
	if bm <= 0 || bk <= 0 || rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("nn: invalid block mask geometry %dx%d / %dx%d", rows, cols, bm, bk))
	}
	nb := ceilDiv(rows, bm) * ceilDiv(cols, bk)
	keep := make([]bool, nb)
	for i := range keep {
		keep[i] = true
	}
	return &BlockMask{Rows: rows, Cols: cols, BM: bm, BK: bk, Keep: keep}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// BlockRows returns the number of block rows.
func (m *BlockMask) BlockRows() int { return ceilDiv(m.Rows, m.BM) }

// BlockCols returns the number of block columns.
func (m *BlockMask) BlockCols() int { return ceilDiv(m.Cols, m.BK) }

// NumBlocks returns the total number of blocks.
func (m *BlockMask) NumBlocks() int { return len(m.Keep) }

// KeptBlocks returns how many blocks are still unpruned.
func (m *BlockMask) KeptBlocks() int {
	n := 0
	for _, k := range m.Keep {
		if k {
			n++
		}
	}
	return n
}

// BlockBounds returns the element bounds [r0,r1)×[c0,c1) of block b.
func (m *BlockMask) BlockBounds(b int) (r0, r1, c0, c1 int) {
	bc := m.BlockCols()
	br := b / bc
	bcIdx := b % bc
	r0 = br * m.BM
	r1 = min(r0+m.BM, m.Rows)
	c0 = bcIdx * m.BK
	c1 = min(c0+m.BK, m.Cols)
	return
}

// BlockWeights returns how many weight elements block b covers (edge
// blocks may be smaller).
func (m *BlockMask) BlockWeights(b int) int {
	r0, r1, c0, c1 := m.BlockBounds(b)
	return (r1 - r0) * (c1 - c0)
}

// KeptWeights returns the number of weight elements in unpruned blocks.
func (m *BlockMask) KeptWeights() int {
	n := 0
	for b, k := range m.Keep {
		if k {
			n += m.BlockWeights(b)
		}
	}
	return n
}

// Apply zeroes the pruned blocks in the given Rows×Cols weight matrix.
func (m *BlockMask) Apply(w []float32) {
	for b, keep := range m.Keep {
		if keep {
			continue
		}
		r0, r1, c0, c1 := m.BlockBounds(b)
		for r := r0; r < r1; r++ {
			row := w[r*m.Cols : r*m.Cols+m.Cols]
			for c := c0; c < c1; c++ {
				row[c] = 0
			}
		}
	}
}

// BlockRMS returns the root mean square of the weights inside block b,
// the paper's importance metric for block selection (Section III-D, [20]).
func (m *BlockMask) BlockRMS(w []float32, b int) float64 {
	r0, r1, c0, c1 := m.BlockBounds(b)
	var sum float64
	n := 0
	for r := r0; r < r1; r++ {
		row := w[r*m.Cols : r*m.Cols+m.Cols]
		for c := c0; c < c1; c++ {
			v := float64(row[c])
			sum += v * v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// Clone deep-copies the mask.
func (m *BlockMask) Clone() *BlockMask {
	c := *m
	c.Keep = append([]bool(nil), m.Keep...)
	return &c
}

// Sparsity returns the fraction of weights pruned away (by element count).
func (m *BlockMask) Sparsity() float64 {
	total := m.Rows * m.Cols
	return 1 - float64(m.KeptWeights())/float64(total)
}
