package nn

import (
	"math"
	"math/rand"
	"testing"

	"iprune/internal/tensor"
)

func TestAvgPool2DForward(t *testing.T) {
	l := NewAvgPool2D("a", 1, 4, 4, 2, 2)
	in := tensor.FromData([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out := l.Forward(in)
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("avg pool out = %v, want %v", out.Data, want)
		}
	}
}

func TestAvgPool2DGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewNetwork("avg", 3)
	n.Add(NewConv2D("c", tensor.ConvGeom{InC: 1, InH: 6, InW: 6, OutC: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, rng))
	n.Add(NewReLU("r"))
	n.Add(NewAvgPool2D("a", 3, 6, 6, 2, 2))
	n.Add(NewFlatten("f"))
	n.Add(NewFC("fc", 3*3*3, 3, rng))
	in := tensor.New(1, 6, 6)
	for i := range in.Data {
		in.Data[i] = rng.Float32()*2 - 1
	}
	n.ZeroGrads()
	n.LossBackward(in, 2)
	conv := n.Layers[0].(*Conv2D)
	for _, i := range []int{0, len(conv.W.Data) / 2, len(conv.W.Data) - 1} {
		want := numericalGrad(n, in, 2, conv.W, i)
		got := float64(conv.W.Grad[i])
		if math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
			t.Errorf("grad[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestAvgPool2DRectAndClone(t *testing.T) {
	l := NewAvgPool2DRect("a", 2, 1, 8, 1, 2, 1, 2)
	if l.OutH != 1 || l.OutW != 4 {
		t.Fatalf("rect avg pool out = %dx%d, want 1x4", l.OutH, l.OutW)
	}
	c := l.Clone().(*AvgPool2D)
	c.C = 99
	if l.C == 99 {
		t.Error("clone aliases original")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty pool output")
		}
	}()
	NewAvgPool2D("bad", 1, 2, 2, 4, 1)
}

func TestAdamTrainsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := buildTinyNet(rng)
	var samples []Sample
	for i := 0; i < 60; i++ {
		label := i % 3
		x := tensor.New(2, 6, 6)
		for j := range x.Data {
			x.Data[j] = float32(rng.NormFloat64()*0.3) + float32(label-1)
		}
		samples = append(samples, Sample{X: x, Label: label})
	}
	opt := NewAdam(0.005)
	first := TrainEpochAdam(net, samples, opt, 8, rng)
	var last float64
	for e := 0; e < 5; e++ {
		last = TrainEpochAdam(net, samples, opt, 8, rng)
	}
	if last >= first {
		t.Errorf("Adam loss did not decrease: %v -> %v", first, last)
	}
	if acc := Accuracy(net, samples); acc < 0.9 {
		t.Errorf("Adam accuracy = %v, want >= 0.9", acc)
	}
}

func TestAdamRespectsMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := buildTinyNet(rng)
	conv := net.Layers[0].(*Conv2D)
	conv.InitBlocks(1, 6)
	conv.Mask().Keep[0] = false
	conv.ApplyMask()
	var samples []Sample
	for i := 0; i < 20; i++ {
		x := tensor.New(2, 6, 6)
		for j := range x.Data {
			x.Data[j] = rng.Float32()
		}
		samples = append(samples, Sample{X: x, Label: i % 3})
	}
	opt := NewAdam(0.01)
	for e := 0; e < 3; e++ {
		TrainEpochAdam(net, samples, opt, 4, rng)
	}
	_, _, cols := conv.WeightMatrix()
	r0, r1, c0, c1 := conv.Mask().BlockBounds(0)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			if conv.W.Data[r*cols+c] != 0 {
				t.Fatal("Adam resurrected a pruned weight")
			}
		}
	}
}

func TestAdamStepValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := buildTinyNet(rng)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero batch")
		}
	}()
	NewAdam(0.01).Step(net, 0)
}
