package nn

import (
	"math"
	"math/rand"
	"testing"

	"iprune/internal/tensor"
)

// fireNet builds a SqueezeNet-style fire module: squeeze 1×1 feeding
// parallel 1×1 and 3×3 expands that concatenate.
func fireNet(rng *rand.Rand) *Network {
	n := NewNetwork("fire", 3)
	n.Add(NewConv2D("squeeze", tensor.ConvGeom{InC: 2, InH: 6, InW: 6, OutC: 4, KH: 1, KW: 1, StrideH: 1, StrideW: 1}, rng))
	n.Add(NewReLU("r0"))
	n.Add(NewBranch("expand",
		[]Layer{NewConv2D("e1x1", tensor.ConvGeom{InC: 4, InH: 6, InW: 6, OutC: 3, KH: 1, KW: 1, StrideH: 1, StrideW: 1}, rng), NewReLU("r1")},
		[]Layer{NewConv2D("e3x3", tensor.ConvGeom{InC: 4, InH: 6, InW: 6, OutC: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, rng), NewReLU("r2")},
	))
	n.Add(NewGlobalAvgPool("gap", 8, 6, 6))
	n.Add(NewFC("fc", 8, 3, rng))
	return n
}

func TestBranchForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := fireNet(rng)
	out := n.Forward(tensor.New(2, 6, 6))
	if out.Len() != 3 {
		t.Fatalf("logits = %d, want 3", out.Len())
	}
}

func TestBranchConcatOrder(t *testing.T) {
	// The first path's channels must occupy the leading block of the
	// concatenated output.
	rng := rand.New(rand.NewSource(2))
	b := NewBranch("b",
		[]Layer{NewConv2D("p0", tensor.ConvGeom{InC: 1, InH: 2, InW: 2, OutC: 1, KH: 1, KW: 1, StrideH: 1, StrideW: 1}, rng)},
		[]Layer{NewConv2D("p1", tensor.ConvGeom{InC: 1, InH: 2, InW: 2, OutC: 1, KH: 1, KW: 1, StrideH: 1, StrideW: 1}, rng)},
	)
	p0 := b.Paths[0][0].(*Conv2D)
	p1 := b.Paths[1][0].(*Conv2D)
	p0.W.Data[0], p0.B.Data[0] = 1, 0 // identity
	p1.W.Data[0], p1.B.Data[0] = 2, 0 // doubling
	in := tensor.FromData([]float32{1, 2, 3, 4}, 1, 2, 2)
	out := b.Forward(in)
	if out.Shape[0] != 2 {
		t.Fatalf("concat channels = %d, want 2", out.Shape[0])
	}
	if out.Data[0] != 1 || out.Data[4] != 2 {
		t.Errorf("concat order wrong: %v", out.Data)
	}
}

func TestBranchGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := fireNet(rng)
	in := tensor.New(2, 6, 6)
	for i := range in.Data {
		in.Data[i] = rng.Float32()*2 - 1
	}
	n.ZeroGrads()
	n.LossBackward(in, 1)
	branch := n.Layers[2].(*Branch)
	for pi, path := range branch.Paths {
		conv := path[0].(*Conv2D)
		for _, i := range []int{0, len(conv.W.Data) / 2, len(conv.W.Data) - 1} {
			want := numericalGrad(n, in, 1, conv.W, i)
			got := float64(conv.W.Grad[i])
			if math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
				t.Errorf("path %d grad[%d] = %v, want %v", pi, i, got, want)
			}
		}
	}
	// The squeeze conv (upstream of the branch) must receive gradients
	// from both paths.
	sq := n.Layers[0].(*Conv2D)
	var nonzero int
	for _, g := range sq.W.Grad {
		if g != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("no gradient flowed through the branch to the squeeze conv")
	}
	for _, i := range []int{0, len(sq.W.Data) - 1} {
		want := numericalGrad(n, in, 1, sq.W, i)
		got := float64(sq.W.Grad[i])
		if math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
			t.Errorf("squeeze grad[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestBranchPrunablesRecursion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := fireNet(rng)
	pr := n.Prunables()
	if len(pr) != 4 {
		t.Fatalf("Prunables = %d, want 4 (squeeze + 2 expands + fc)", len(pr))
	}
	counts := n.LayerCounts()
	if counts["CONV"] != 3 || counts["FC"] != 1 {
		t.Errorf("LayerCounts = %v, want 3 CONV + 1 FC", counts)
	}
}

func TestBranchMaskedTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := fireNet(rng)
	// Install masks on all prunables and prune one block inside a path.
	for _, p := range n.Prunables() {
		_, rows, cols := p.WeightMatrix()
		p.InitBlocks(min(2, rows), min(4, cols))
	}
	inner := n.Prunables()[2] // e3x3
	inner.Mask().Keep[0] = false
	inner.ApplyMask()
	var samples []Sample
	for i := 0; i < 12; i++ {
		x := tensor.New(2, 6, 6)
		for j := range x.Data {
			x.Data[j] = rng.Float32()
		}
		samples = append(samples, Sample{X: x, Label: i % 3})
	}
	opt := NewSGD(0.05, 0.9)
	for e := 0; e < 3; e++ {
		TrainEpoch(n, samples, opt, 4, rng)
	}
	w, _, cols := inner.WeightMatrix()
	r0, r1, c0, c1 := inner.Mask().BlockBounds(0)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			if w[r*cols+c] != 0 {
				t.Fatal("pruned block inside a branch path resurrected by training")
			}
		}
	}
}

func TestBranchCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := fireNet(rng)
	c := n.Clone()
	orig := n.Layers[2].(*Branch).Paths[0][0].(*Conv2D)
	clone := c.Layers[2].(*Branch).Paths[0][0].(*Conv2D)
	clone.W.Data[0] = 123
	if orig.W.Data[0] == 123 {
		t.Error("branch clone shares path weights")
	}
}

func TestBranchValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for single-path branch")
		}
	}()
	NewBranch("bad", []Layer{NewReLU("r")})
}

func TestBranchSpatialMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBranch("b",
		[]Layer{NewConv2D("p0", tensor.ConvGeom{InC: 1, InH: 4, InW: 4, OutC: 1, KH: 1, KW: 1, StrideH: 1, StrideW: 1}, rng)},
		[]Layer{NewMaxPool2D("p1", 1, 4, 4, 2, 2)},
	)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched path spatial sizes")
		}
	}()
	b.Forward(tensor.New(1, 4, 4))
}
