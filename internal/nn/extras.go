package nn

import (
	"fmt"
	"math"

	"iprune/internal/tensor"
)

// ---------------------------------------------------------------------------
// AvgPool2D

// AvgPool2D is an average pooling layer over CHW inputs (rectangular
// kernel and stride, like MaxPool2D).
type AvgPool2D struct {
	LayerName      string
	C, InH, InW    int
	KH, KW, SH, SW int
	OutH, OutW     int
}

// NewAvgPool2D constructs a square average pooling layer.
func NewAvgPool2D(name string, c, inH, inW, k, stride int) *AvgPool2D {
	return NewAvgPool2DRect(name, c, inH, inW, k, k, stride, stride)
}

// NewAvgPool2DRect constructs an average pooling layer with independent
// kernel and stride per axis.
func NewAvgPool2DRect(name string, c, inH, inW, kh, kw, sh, sw int) *AvgPool2D {
	l := &AvgPool2D{LayerName: name, C: c, InH: inH, InW: inW, KH: kh, KW: kw, SH: sh, SW: sw}
	l.OutH = (inH-kh)/sh + 1
	l.OutW = (inW-kw)/sw + 1
	if l.OutH <= 0 || l.OutW <= 0 {
		panic(fmt.Sprintf("nn: %s: pool output empty", name))
	}
	return l
}

// Name implements Layer.
func (l *AvgPool2D) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *AvgPool2D) Kind() Kind { return KindPool }

// Params implements Layer.
func (l *AvgPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (l *AvgPool2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(l.C, l.OutH, l.OutW)
	inv := 1 / float32(l.KH*l.KW)
	oi := 0
	for c := 0; c < l.C; c++ {
		plane := in.Data[c*l.InH*l.InW:]
		for oh := 0; oh < l.OutH; oh++ {
			for ow := 0; ow < l.OutW; ow++ {
				var s float32
				for kh := 0; kh < l.KH; kh++ {
					base := (oh*l.SH + kh) * l.InW
					for kw := 0; kw < l.KW; kw++ {
						s += plane[base+ow*l.SW+kw]
					}
				}
				out.Data[oi] = s * inv
				oi++
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *AvgPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := tensor.New(l.C, l.InH, l.InW)
	inv := 1 / float32(l.KH*l.KW)
	oi := 0
	for c := 0; c < l.C; c++ {
		plane := gradIn.Data[c*l.InH*l.InW:]
		for oh := 0; oh < l.OutH; oh++ {
			for ow := 0; ow < l.OutW; ow++ {
				g := gradOut.Data[oi] * inv
				oi++
				for kh := 0; kh < l.KH; kh++ {
					base := (oh*l.SH + kh) * l.InW
					for kw := 0; kw < l.KW; kw++ {
						plane[base+ow*l.SW+kw] += g
					}
				}
			}
		}
	}
	return gradIn
}

// Clone implements Layer.
func (l *AvgPool2D) Clone() Layer { c := *l; return &c }

// ---------------------------------------------------------------------------
// Adam

// Adam is the Adam optimizer (Kingma & Ba), an alternative to SGD for
// fine-tuning experiments. Like SGD.Step it re-applies pruning masks
// after every update.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m map[*Param][]float32
	v map[*Param][]float32
}

// NewAdam constructs the optimizer with the usual defaults
// (β₁=0.9, β₂=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		m: map[*Param][]float32{}, v: map[*Param][]float32{},
	}
}

// Step applies one Adam update using gradients accumulated over
// batchSize samples, then re-applies pruning masks.
func (a *Adam) Step(n *Network, batchSize int) {
	if batchSize <= 0 {
		panic(fmt.Sprintf("nn: bad batch size %d", batchSize))
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	scale := 1 / float32(batchSize)
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			m := a.m[p]
			v := a.v[p]
			if m == nil {
				m = make([]float32, len(p.Data))
				v = make([]float32, len(p.Data))
				a.m[p] = m
				a.v[p] = v
			}
			for i := range p.Data {
				g := p.Grad[i] * scale
				m[i] = float32(a.Beta1)*m[i] + float32(1-a.Beta1)*g
				v[i] = float32(a.Beta2)*v[i] + float32(1-a.Beta2)*g*g
				mh := float64(m[i]) / bc1
				vh := float64(v[i]) / bc2
				p.Data[i] -= float32(a.LR * mh / (math.Sqrt(vh) + a.Epsilon))
			}
		}
	}
	n.ApplyMasks()
}

// TrainEpochAdam runs one epoch of minibatch Adam over samples and
// returns the mean loss. (TrainEpoch's SGD counterpart.)
func TrainEpochAdam(n *Network, samples []Sample, opt *Adam, batch int, rng interface{ Perm(int) []int }) float64 {
	if batch <= 0 {
		batch = 16
	}
	idx := rng.Perm(len(samples))
	var total float64
	for start := 0; start < len(idx); start += batch {
		end := min(start+batch, len(idx))
		n.ZeroGrads()
		for _, i := range idx[start:end] {
			s := samples[i]
			total += n.LossBackward(s.X, s.Label)
		}
		opt.Step(n, end-start)
	}
	return total / float64(len(samples))
}
