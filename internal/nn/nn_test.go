package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"iprune/internal/tensor"
)

func TestBlockMaskGeometry(t *testing.T) {
	m := NewBlockMask(10, 12, 4, 5)
	if m.BlockRows() != 3 || m.BlockCols() != 3 {
		t.Fatalf("block grid = %dx%d, want 3x3", m.BlockRows(), m.BlockCols())
	}
	if m.NumBlocks() != 9 {
		t.Fatalf("NumBlocks = %d, want 9", m.NumBlocks())
	}
	// Bottom-right block is clipped: rows 8..10, cols 10..12 -> 2x2.
	if got := m.BlockWeights(8); got != 4 {
		t.Errorf("edge block weights = %d, want 4", got)
	}
	if m.KeptWeights() != 120 {
		t.Errorf("KeptWeights = %d, want 120", m.KeptWeights())
	}
}

func TestBlockMaskApply(t *testing.T) {
	m := NewBlockMask(4, 4, 2, 2)
	w := make([]float32, 16)
	for i := range w {
		w[i] = 1
	}
	m.Keep[0] = false // top-left 2x2
	m.Apply(w)
	want := []float32{0, 0, 1, 1, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	for i := range w {
		if w[i] != want[i] {
			t.Fatalf("after apply w=%v", w)
		}
	}
	if m.KeptWeights() != 12 {
		t.Errorf("KeptWeights = %d, want 12", m.KeptWeights())
	}
	if math.Abs(m.Sparsity()-0.25) > 1e-9 {
		t.Errorf("Sparsity = %v, want 0.25", m.Sparsity())
	}
}

func TestBlockMaskRMS(t *testing.T) {
	m := NewBlockMask(2, 4, 2, 2)
	w := []float32{3, 4, 0, 0, 0, 0, 1, 1}
	// Block 0 = {3,4,0,0} RMS = sqrt(25/4)=2.5; block 1 = {0,0,1,1} RMS = sqrt(2/4).
	if got := m.BlockRMS(w, 0); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("RMS block0 = %v, want 2.5", got)
	}
	if got := m.BlockRMS(w, 1); math.Abs(got-math.Sqrt(0.5)) > 1e-9 {
		t.Errorf("RMS block1 = %v, want sqrt(0.5)", got)
	}
}

func TestBlockMaskKeptWeightsInvariant(t *testing.T) {
	// Property: sum of BlockWeights over all blocks == Rows*Cols, for any
	// geometry.
	f := func(r, c, bm, bk uint8) bool {
		rows, cols := int(r%20)+1, int(c%20)+1
		bmv, bkv := int(bm%6)+1, int(bk%6)+1
		m := NewBlockMask(rows, cols, bmv, bkv)
		total := 0
		for b := 0; b < m.NumBlocks(); b++ {
			total += m.BlockWeights(b)
		}
		return total == rows*cols && m.KeptWeights() == rows*cols
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// numericalGrad computes dLoss/dparam[i] via central differences.
func numericalGrad(n *Network, in *tensor.Tensor, label int, p *Param, i int) float64 {
	const eps = 1e-3
	orig := p.Data[i]
	p.Data[i] = orig + eps
	logits := n.Forward(in)
	lp := -math.Log(math.Max(Softmax(logits.Data)[label], 1e-12))
	p.Data[i] = orig - eps
	logits = n.Forward(in)
	lm := -math.Log(math.Max(Softmax(logits.Data)[label], 1e-12))
	p.Data[i] = orig
	return (lp - lm) / (2 * eps)
}

func buildTinyNet(rng *rand.Rand) *Network {
	n := NewNetwork("tiny", 3)
	n.Add(NewConv2D("c1", tensor.ConvGeom{InC: 2, InH: 6, InW: 6, OutC: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, rng))
	n.Add(NewReLU("r1"))
	n.Add(NewMaxPool2D("p1", 3, 6, 6, 2, 2))
	n.Add(NewFlatten("fl"))
	n.Add(NewFC("f1", 3*3*3, 3, rng))
	return n
}

func TestGradientCheckConvFC(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := buildTinyNet(rng)
	in := tensor.New(2, 6, 6)
	for i := range in.Data {
		in.Data[i] = rng.Float32()*2 - 1
	}
	n.ZeroGrads()
	n.LossBackward(in, 1)
	// Check a sample of weight gradients in every parameterized layer.
	for _, l := range n.Layers {
		for pi, p := range l.Params() {
			for _, i := range []int{0, len(p.Data) / 2, len(p.Data) - 1} {
				want := numericalGrad(n, in, 1, p, i)
				got := float64(p.Grad[i])
				if math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
					t.Errorf("%s param %d grad[%d] = %v, want %v", l.Name(), pi, i, got, want)
				}
			}
		}
	}
}

func TestGradientCheckGlobalAvgPool(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := NewNetwork("gap", 4)
	n.Add(NewConv2D("c1", tensor.ConvGeom{InC: 1, InH: 4, InW: 4, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, rng))
	n.Add(NewReLU("r1"))
	n.Add(NewGlobalAvgPool("gap", 4, 4, 4))
	in := tensor.New(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = rng.Float32()
	}
	n.ZeroGrads()
	n.LossBackward(in, 2)
	conv := n.Layers[0].(*Conv2D)
	for _, i := range []int{0, 17, len(conv.W.Data) - 1} {
		want := numericalGrad(n, in, 2, conv.W, i)
		got := float64(conv.W.Grad[i])
		if math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
			t.Errorf("gap-net grad[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(a, b, c int8) bool {
		logits := []float32{float32(a) / 8, float32(b) / 8, float32(c) / 8}
		p := Softmax(logits)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	p := Softmax([]float32{1000, 1001, 999})
	if math.IsNaN(p[0]) || math.IsInf(p[1], 0) {
		t.Fatal("softmax not stable for large logits")
	}
	if p[1] < p[0] || p[0] < p[2] {
		t.Error("softmax ordering violated")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := buildTinyNet(rng)
	// Three linearly separable blob classes in input space.
	var samples []Sample
	for i := 0; i < 60; i++ {
		label := i % 3
		x := tensor.New(2, 6, 6)
		for j := range x.Data {
			x.Data[j] = float32(rng.NormFloat64()*0.3) + float32(label-1)
		}
		samples = append(samples, Sample{X: x, Label: label})
	}
	opt := NewSGD(0.05, 0.9)
	first := TrainEpoch(n, samples, opt, 8, rng)
	var last float64
	for e := 0; e < 5; e++ {
		last = TrainEpoch(n, samples, opt, 8, rng)
	}
	if last >= first {
		t.Errorf("loss did not decrease: first %v last %v", first, last)
	}
	if acc := Accuracy(n, samples); acc < 0.9 {
		t.Errorf("train accuracy = %v, want >= 0.9 on separable blobs", acc)
	}
}

func TestMaskSurvivesTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := buildTinyNet(rng)
	conv := n.Layers[0].(*Conv2D)
	conv.InitBlocks(1, 6)
	conv.Mask().Keep[0] = false
	conv.ApplyMask()
	var samples []Sample
	for i := 0; i < 20; i++ {
		x := tensor.New(2, 6, 6)
		for j := range x.Data {
			x.Data[j] = rng.Float32()
		}
		samples = append(samples, Sample{X: x, Label: i % 3})
	}
	opt := NewSGD(0.05, 0.9)
	for e := 0; e < 3; e++ {
		TrainEpoch(n, samples, opt, 4, rng)
	}
	r0, r1, c0, c1 := conv.Mask().BlockBounds(0)
	_, _, cols := conv.WeightMatrix()
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			if conv.W.Data[r*cols+c] != 0 {
				t.Fatalf("pruned weight (%d,%d) resurrected: %v", r, c, conv.W.Data[r*cols+c])
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := buildTinyNet(rng)
	conv := n.Layers[0].(*Conv2D)
	conv.InitBlocks(1, 3)
	c := n.Clone()
	cconv := c.Layers[0].(*Conv2D)
	cconv.W.Data[0] = 999
	cconv.Mask().Keep[0] = false
	if n.Layers[0].(*Conv2D).W.Data[0] == 999 {
		t.Error("clone shares weights")
	}
	if !conv.Mask().Keep[0] {
		t.Error("clone shares mask")
	}
}

func TestPrunablesAndCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := buildTinyNet(rng)
	pr := n.Prunables()
	if len(pr) != 2 {
		t.Fatalf("Prunables = %d, want 2 (conv+fc)", len(pr))
	}
	counts := n.LayerCounts()
	if counts["CONV"] != 1 || counts["FC"] != 1 || counts["POOL"] != 1 {
		t.Errorf("LayerCounts = %v", counts)
	}
	wantW := 3*2*3*3 + 27*3
	if n.TotalWeights() != wantW {
		t.Errorf("TotalWeights = %d, want %d", n.TotalWeights(), wantW)
	}
}

func TestTotalWeightsAfterPrune(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := buildTinyNet(rng)
	fc := n.Layers[4].(*FC)
	fc.InitBlocks(1, 27) // one block per output row: 3 blocks of 27
	fc.Mask().Keep[0] = false
	fc.ApplyMask()
	want := 3*2*3*3 + 27*2
	if n.TotalWeights() != want {
		t.Errorf("TotalWeights = %d, want %d", n.TotalWeights(), want)
	}
}

func TestPredictDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := buildTinyNet(rng)
	in := tensor.New(2, 6, 6)
	for i := range in.Data {
		in.Data[i] = rng.Float32()
	}
	a := n.Predict(in)
	b := n.Predict(in)
	if a != b {
		t.Error("Predict not deterministic")
	}
}
