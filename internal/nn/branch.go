package nn

import (
	"fmt"

	"iprune/internal/tensor"
)

// Container is implemented by layers that contain sublayers (multi-path
// modules). Network traversals — prunable enumeration, mask application,
// layer counting, engine lowering — recurse through it.
type Container interface {
	Layer
	// Sublayers returns the contained layers in a fixed order.
	Sublayers() []Layer
}

// Branch runs several layer paths on the same input and concatenates
// their CHW outputs along the channel axis — the "multiple path networks"
// HAWAII⁺ supports (Section III-D), e.g. SqueezeNet fire modules whose
// 1×1 and 3×3 expands join.
//
// Every path must produce the same spatial size; the branch output has
// the summed channel count.
type Branch struct {
	LayerName string
	Paths     [][]Layer

	outShapes [][]int
	inShape   []int
}

// NewBranch constructs a multi-path module.
func NewBranch(name string, paths ...[]Layer) *Branch {
	if len(paths) < 2 {
		panic(fmt.Sprintf("nn: branch %s needs at least two paths", name))
	}
	return &Branch{LayerName: name, Paths: paths}
}

// Name implements Layer.
func (b *Branch) Name() string { return b.LayerName }

// Kind implements Layer.
func (b *Branch) Kind() Kind { return KindFlatten } // structural; not counted in Table II

// Params implements Layer.
func (b *Branch) Params() []*Param {
	var out []*Param
	for _, path := range b.Paths {
		for _, l := range path {
			out = append(out, l.Params()...)
		}
	}
	return out
}

// Sublayers implements Container.
func (b *Branch) Sublayers() []Layer {
	var out []Layer
	for _, path := range b.Paths {
		out = append(out, path...)
	}
	return out
}

// Forward implements Layer.
func (b *Branch) Forward(in *tensor.Tensor) *tensor.Tensor {
	if len(in.Shape) != 3 {
		panic(fmt.Sprintf("nn: branch %s wants CHW input, got shape %v", b.LayerName, in.Shape))
	}
	b.inShape = append(b.inShape[:0], in.Shape...)
	b.outShapes = b.outShapes[:0]
	var outs []*tensor.Tensor
	totalC := 0
	h, w := -1, -1
	for pi, path := range b.Paths {
		x := in
		for _, l := range path {
			x = l.Forward(x)
		}
		if len(x.Shape) != 3 {
			panic(fmt.Sprintf("nn: branch %s path %d output shape %v is not CHW", b.LayerName, pi, x.Shape))
		}
		if h < 0 {
			h, w = x.Shape[1], x.Shape[2]
		} else if x.Shape[1] != h || x.Shape[2] != w {
			panic(fmt.Sprintf("nn: branch %s path %d spatial %dx%d != %dx%d",
				b.LayerName, pi, x.Shape[1], x.Shape[2], h, w))
		}
		totalC += x.Shape[0]
		b.outShapes = append(b.outShapes, append([]int(nil), x.Shape...))
		outs = append(outs, x)
	}
	out := tensor.New(totalC, h, w)
	off := 0
	for _, x := range outs {
		copy(out.Data[off:], x.Data)
		off += x.Len()
	}
	return out
}

// Backward implements Layer.
func (b *Branch) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := tensor.New(b.inShape...)
	off := 0
	for pi, path := range b.Paths {
		n := 1
		for _, d := range b.outShapes[pi] {
			n *= d
		}
		g := tensor.FromData(gradOut.Data[off:off+n], b.outShapes[pi]...)
		off += n
		for i := len(path) - 1; i >= 0; i-- {
			g = path[i].Backward(g)
		}
		for i, v := range g.Data {
			gradIn.Data[i] += v
		}
	}
	return gradIn
}

// Clone implements Layer.
func (b *Branch) Clone() Layer {
	c := &Branch{LayerName: b.LayerName}
	for _, path := range b.Paths {
		cp := make([]Layer, len(path))
		for i, l := range path {
			cp[i] = l.Clone()
		}
		c.Paths = append(c.Paths, cp)
	}
	return c
}
