package obs

import (
	"encoding/csv"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	if got := KindPowerOn.String(); got != "power-on" {
		t.Errorf("KindPowerOn = %q", got)
	}
	if got := KindLayerEnd.String(); got != "layer-end" {
		t.Errorf("KindLayerEnd = %q", got)
	}
	if got := Kind(200).String(); got != "unknown" {
		t.Errorf("Kind(200) = %q", got)
	}
	for k := KindPowerOn; k <= KindLayerEnd; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	if !r.Enabled() {
		t.Fatal("recorder must be enabled")
	}
	r.Emit(Event{Kind: KindPowerOn, Time: 1})
	r.Emit(Event{Kind: KindPowerOff, Time: 2})
	if n := len(r.Events()); n != 2 {
		t.Fatalf("got %d events, want 2", n)
	}
	if r.Events()[1].Kind != KindPowerOff {
		t.Errorf("event order not preserved")
	}
	r.Reset()
	if n := len(r.Events()); n != 0 {
		t.Errorf("Reset left %d events", n)
	}
}

// TestRecorderResetPreservesSnapshots is the regression test for the
// Reset-clobbering bug: Events() slices taken before a Reset must keep
// their contents when the recorder is reused, and must not observe
// events emitted afterwards.
func TestRecorderResetPreservesSnapshots(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Kind: KindPowerOn, Time: 1})
	r.Emit(Event{Kind: KindPowerOff, Time: 2})
	snap := r.Events()
	r.Reset()
	r.Emit(Event{Kind: KindFailure, Time: 99})
	r.Emit(Event{Kind: KindCharge, Time: 100})
	if len(snap) != 2 {
		t.Fatalf("snapshot length changed to %d", len(snap))
	}
	if snap[0].Kind != KindPowerOn || snap[0].Time != 1 ||
		snap[1].Kind != KindPowerOff || snap[1].Time != 2 {
		t.Errorf("snapshot clobbered by post-Reset emissions: %+v", snap)
	}
	if got := r.Events(); len(got) != 2 || got[0].Kind != KindFailure {
		t.Errorf("post-Reset recording wrong: %+v", got)
	}
}

func TestStepClockMonotonic(t *testing.T) {
	r := NewRecorder()
	c := StepClock{T: r}
	if !c.Enabled() {
		t.Fatal("step clock with recorder must be enabled")
	}
	for i := 0; i < 5; i++ {
		c.Emit(KindPreserve, 0, int64(i), 0, 16)
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time <= evs[i-1].Time {
			t.Errorf("timestamps not strictly monotonic: %g then %g", evs[i-1].Time, evs[i].Time)
		}
	}
}

func TestStepClockDisabled(t *testing.T) {
	var c StepClock // zero value: nil tracer
	if c.Enabled() {
		t.Error("zero StepClock must be disabled")
	}
	c.Emit(KindPreserve, 0, 0, 0, 0) // must not panic
	c = StepClock{T: Nop{}}
	if c.Enabled() {
		t.Error("StepClock over Nop must be disabled")
	}
}

// TestNopZeroAlloc is the tentpole overhead guarantee: a disabled tracer
// on the hot path constructs nothing and allocates nothing.
func TestNopZeroAlloc(t *testing.T) {
	var tr Tracer = Nop{}
	clk := &StepClock{T: Nop{}}
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			tr.Emit(Event{Kind: KindOpCommit})
		}
		clk.Emit(KindPreserve, 1, 2, 64, 64)
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %.1f per op, want 0", allocs)
	}
}

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("a")
	c.Add(1.5)
	m.Counter("a").AddInt(2) // same counter, get-or-create
	if got := m.Counter("a").Value(); got != 3.5 {
		t.Errorf("counter = %g, want 3.5", got)
	}
	m.Counter("b")
	cs := m.Counters()
	if len(cs) != 2 || cs[0].Name != "a" || cs[1].Name != "b" {
		t.Errorf("counters not in registration order: %v", cs)
	}
}

func TestMetricsHistogram(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("lat", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	// 0.5 and 1 land in <=1, 5 in <=10, 100 overflows.
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Errorf("counts = %v, want [2 1 1]", h.Counts)
	}
	if h.N != 4 || math.Abs(h.Mean()-106.5/4) > 1e-12 {
		t.Errorf("n=%d mean=%g", h.N, h.Mean())
	}
	// Re-lookup reuses the existing buckets.
	if h2 := m.Histogram("lat", nil); h2 != h {
		t.Error("histogram lookup did not reuse existing")
	}
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds must panic")
		}
	}()
	m.Histogram("bad", []float64{2, 1})
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("x", LatencyBuckets)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.25) })
	if allocs != 0 {
		t.Errorf("Observe allocates %.1f, want 0", allocs)
	}
}

// syntheticRun builds a two-layer run with one power cycle boundary
// inside layer 1, exercising layer attribution of layer-less power
// events.
func syntheticRun() []Event {
	return []Event{
		{Kind: KindPowerOn, Time: 0, Layer: -1, Op: -1},
		{Kind: KindLayerStart, Time: 0, Layer: 0, Op: -1},
		{Kind: KindOpStart, Time: 0, Layer: 0, Op: 0},
		{Kind: KindOpCommit, Time: 0, Dur: 1, Layer: 0, Op: 0, Energy: 2e-4, Read: 128},
		{Kind: KindPreserve, Time: 1, Layer: 0, Op: 0, Write: 64},
		{Kind: KindLayerEnd, Time: 1, Dur: 1, Layer: 0, Energy: 2e-4},
		{Kind: KindLayerStart, Time: 1, Layer: 1, Op: -1},
		{Kind: KindOpStart, Time: 1, Layer: 1, Op: 1},
		{Kind: KindFailure, Time: 1.5, Layer: -1, Op: -1},
		{Kind: KindPowerOff, Time: 1.5, Layer: -1, Op: -1},
		{Kind: KindCharge, Time: 1.5, Dur: 2, Layer: -1, Op: -1},
		{Kind: KindPowerOn, Time: 3.5, Layer: -1, Op: -1},
		{Kind: KindRecovery, Time: 3.5, Dur: 0.1, Layer: 1, Op: 1, Read: 32},
		{Kind: KindReExec, Time: 3.6, Layer: 1, Op: 1},
		{Kind: KindOpStart, Time: 3.6, Layer: 1, Op: 1},
		{Kind: KindOpCommit, Time: 3.6, Dur: 1, Layer: 1, Op: 1, Energy: 3e-4, Read: 256},
		{Kind: KindPreserve, Time: 4.6, Layer: 1, Op: 1, Write: 96},
		{Kind: KindLayerEnd, Time: 4.6, Dur: 3.6, Layer: 1, Energy: 3e-4},
		{Kind: KindPowerOff, Time: 4.6, Layer: -1, Op: -1},
	}
}

func TestCollect(t *testing.T) {
	s := Collect(syntheticRun())
	if len(s.Layers) != 2 {
		t.Fatalf("got %d layers, want 2", len(s.Layers))
	}
	l0, l1 := s.Layers[0], s.Layers[1]
	if l0.Layer != 0 || l1.Layer != 1 {
		t.Fatalf("layer order: %d, %d", l0.Layer, l1.Layer)
	}
	if l0.Ops != 1 || l0.Starts != 1 || l0.Failures != 0 || l0.Read != 128 || l0.Write != 64 {
		t.Errorf("layer0 = %+v", l0)
	}
	// The failure happened while layer 1 was current, so it is attributed
	// there despite the event itself carrying layer -1.
	if l1.Failures != 1 {
		t.Errorf("layer1 failures = %d, want 1 (attribution of layer-less events)", l1.Failures)
	}
	if l1.Ops != 1 || l1.Starts != 2 || l1.ReExec != 1 {
		t.Errorf("layer1 = %+v", l1)
	}
	if l1.Read != 256+32 || l1.Write != 96 {
		t.Errorf("layer1 NVM = %d/%d", l1.Read, l1.Write)
	}
	if s.Total.Ops != 2 || s.Total.Failures != 1 {
		t.Errorf("total = %+v", s.Total)
	}
	if math.Abs(s.Total.Latency-4.6) > 1e-12 {
		t.Errorf("total latency = %g, want 4.6", s.Total.Latency)
	}
	if math.Abs(s.Total.Energy-5e-4) > 1e-18 {
		t.Errorf("total energy = %g, want 5e-4", s.Total.Energy)
	}
	if len(s.Cycles) != 2 {
		t.Fatalf("got %d cycles, want 2", len(s.Cycles))
	}
	c0 := s.Cycles[0]
	if math.Abs(c0.OnTime-1.5) > 1e-12 || math.Abs(c0.OffTime-2) > 1e-12 {
		t.Errorf("cycle0 = %+v", c0)
	}
	if u := c0.Utilization(); math.Abs(u-1.5/3.5) > 1e-12 {
		t.Errorf("utilization = %g", u)
	}
}

func TestFill(t *testing.T) {
	s := Collect(syntheticRun())
	m := NewMetrics()
	s.Fill(m)
	checks := map[string]float64{
		"run/ops":          2,
		"run/op_attempts":  3,
		"run/reexec_ops":   1,
		"run/failures":     1,
		"run/power_cycles": 2,
		"run/reexec_ratio": 0.5,
	}
	for name, want := range checks {
		if got := m.Counter(name).Value(); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	if h := m.Histogram("layer_latency_s", nil); h.N != 2 {
		t.Errorf("latency histogram n = %d, want 2", h.N)
	}
	if h := m.Histogram("cycle_utilization", nil); h.N != 2 {
		t.Errorf("utilization histogram n = %d, want 2", h.N)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, syntheticRun(), []string{"conv1", "fc1"}); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tr.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", tr.Unit)
	}
	var spans, instants, meta int
	names := map[string]bool{}
	for _, e := range tr.TraceEvents {
		ph, _ := e["ph"].(string)
		switch ph {
		case "X":
			spans++
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", ph)
		}
		if n, ok := e["name"].(string); ok {
			names[n] = true
		}
		if _, ok := e["pid"]; !ok {
			t.Error("event missing pid")
		}
	}
	if meta != 3 {
		t.Errorf("got %d metadata events, want 3 thread names", meta)
	}
	// 19 events: 2 LayerStart skipped, +3 metadata.
	if got := len(tr.TraceEvents); got != 19-2+3 {
		t.Errorf("got %d chrome events, want 20", got)
	}
	// Layer spans must carry the caller's names.
	if !names["conv1"] || !names["fc1"] {
		t.Errorf("layer names missing from trace: %v", names)
	}
	if spans == 0 || instants == 0 {
		t.Errorf("spans=%d instants=%d, want both > 0", spans, instants)
	}
}

func TestWriteCSVSums(t *testing.T) {
	s := Collect(syntheticRun())
	var sb strings.Builder
	if err := WriteCSV(&sb, s, []string{"conv1", "fc1"}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(rows) != 1+2+1 { // header, two layers, total
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	if got := strings.Join(rows[0], ","); got != strings.Join(csvHeader, ",") {
		t.Errorf("header = %q", got)
	}
	col := func(name string) int {
		for i, h := range csvHeader {
			if h == name {
				return i
			}
		}
		t.Fatalf("no column %q", name)
		return -1
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad float %q: %v", s, err)
		}
		return v
	}
	for _, name := range []string{"latency_s", "energy_j", "nvm_read_bytes", "nvm_write_bytes"} {
		c := col(name)
		sum := parse(rows[1][c]) + parse(rows[2][c])
		total := parse(rows[3][c])
		if math.Abs(sum-total) > 1e-15*math.Max(1, math.Abs(total)) {
			t.Errorf("%s: layer sum %g != total %g", name, sum, total)
		}
	}
	if rows[3][0] != "total" {
		t.Errorf("last row label = %q", rows[3][0])
	}
}

func TestWriteSummary(t *testing.T) {
	s := Collect(syntheticRun())
	m := NewMetrics()
	s.Fill(m)
	var sb strings.Builder
	if err := WriteSummary(&sb, s, m, []string{"conv1", "fc1"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"conv1", "fc1", "total", "power cycles: 2", "run/ops", "histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Nil metrics skips the counter section without failing.
	sb.Reset()
	if err := WriteSummary(&sb, s, nil, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "counters:") {
		t.Error("nil metrics must skip the counter section")
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		0:       "0B",
		512:     "512B",
		2048:    "2.0KiB",
		1 << 21: "2.0MiB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestLayerName(t *testing.T) {
	names := []string{"conv1"}
	if got := layerName(names, 0); got != "conv1" {
		t.Errorf("layerName(0) = %q", got)
	}
	if got := layerName(names, 3); got != "layer3" {
		t.Errorf("layerName(3) = %q", got)
	}
	if got := layerName(nil, -1); got != "layer-1" {
		t.Errorf("layerName(-1) = %q", got)
	}
}
