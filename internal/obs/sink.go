package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"text/tabwriter"
)

// WriteFile creates path and renders into it, closing the file and
// propagating the first failure. The Close error matters here: buffered
// writes can surface their I/O error only at close, and a truncated
// artifact silently presented as a successful run is exactly what the
// errcheck analyzer exists to prevent.
func WriteFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return RenderTo(f, render)
}

// RenderTo renders into wc and closes it, propagating the first failure
// — the render error when rendering fails (the artifact is discarded
// either way), otherwise the Close error, where buffered writers
// surface a deferred flush failure. WriteFile is this over os.Create;
// the split exists so the Close-failure contract is testable with an
// error-injecting WriteCloser.
func RenderTo(wc io.WriteCloser, render func(io.Writer) error) error {
	if err := render(wc); err != nil {
		_ = wc.Close() //iprune:allow-err render failed first and wins; the artifact is discarded either way
		return err
	}
	return wc.Close()
}

// layerName resolves a layer index against the caller-provided name
// table (spec names for the cost simulator, net-layer names for the
// functional engine), falling back to a synthetic name.
func layerName(names []string, li int) string {
	if li >= 0 && li < len(names) {
		return names[li]
	}
	return "layer" + strconv.Itoa(li)
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON

// chromeEvent is one entry of the Chrome trace-event format, the subset
// Perfetto and chrome://tracing load: "X" complete spans, "i" instants
// and "M" thread-name metadata.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object container variant of the format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Tracks (tids) of the rendered trace.
const (
	tidAccel  = 1 // accelerator ops, preservation, recovery
	tidLayers = 2 // layer spans
	tidPower  = 3 // power cycles, failures, charging
)

// WriteChromeTrace renders a recorded event stream as Chrome trace-event
// JSON. Open the file in https://ui.perfetto.dev (or chrome://tracing):
// ops, layers and the power supply appear as three tracks. Timestamps
// are microseconds of simulated time (the format's native unit), so a
// cost-simulator second becomes 1e6 ticks and an engine preservation
// step 1 tick.
func WriteChromeTrace(w io.Writer, events []Event, names []string) error {
	const us = 1e6
	ces := make([]chromeEvent, 0, len(events)+3)
	for _, meta := range []struct {
		tid  int
		name string
	}{{tidAccel, "accelerator"}, {tidLayers, "layers"}, {tidPower, "power"}} {
		ces = append(ces, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: meta.tid,
			Args: map[string]any{"name": meta.name},
		})
	}
	for i := range events {
		ev := &events[i]
		ce := chromeEvent{Name: ev.Kind.String(), Cat: ev.Kind.String(), Ph: "i", Ts: ev.Time * us, Pid: 1, S: "t"}
		switch ev.Kind {
		case KindPowerOn, KindPowerOff, KindFailure:
			ce.Tid = tidPower
			if ev.Kind == KindFailure {
				ce.S = "g"
				if ev.Energy != 0 {
					ce.Args = map[string]any{"lost_energy_j": ev.Energy}
				}
			}
		case KindCharge:
			ce.Tid = tidPower
			ce.Ph = "X"
			ce.Dur = ev.Dur * us
			ce.S = ""
		case KindOpStart, KindReExec:
			ce.Tid = tidAccel
			ce.Args = map[string]any{"op": ev.Op}
		case KindOpCommit:
			ce.Tid = tidAccel
			ce.Ph = "X"
			ce.Dur = ev.Dur * us
			ce.S = ""
			ce.Name = "op"
			ce.Args = map[string]any{"op": ev.Op, "layer": layerName(names, ev.Layer)}
			if ev.Energy != 0 {
				ce.Args["energy_j"] = ev.Energy
			}
			if ev.Read != 0 {
				ce.Args["read_bytes"] = ev.Read
			}
		case KindPreserve:
			ce.Tid = tidAccel
			ce.Args = map[string]any{"op": ev.Op, "write_bytes": ev.Write}
		case KindRecovery:
			ce.Tid = tidAccel
			ce.Ph = "X"
			ce.Dur = ev.Dur * us
			ce.S = ""
			ce.Args = map[string]any{"op": ev.Op, "refetch_bytes": ev.Read}
			if ev.Energy != 0 {
				ce.Args["energy_j"] = ev.Energy
			}
		case KindLayerStart:
			continue // the LayerEnd event renders the whole span
		case KindLayerEnd:
			ce.Tid = tidLayers
			ce.Ph = "X"
			ce.Ts = (ev.Time - ev.Dur) * us
			ce.Dur = ev.Dur * us
			ce.S = ""
			ce.Name = layerName(names, ev.Layer)
			if ev.Energy != 0 {
				ce.Args = map[string]any{"energy_j": ev.Energy}
			}
		default:
			ce.Tid = tidAccel
		}
		ces = append(ces, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: ces, DisplayTimeUnit: "ms"})
}

// ---------------------------------------------------------------------------
// CSV

// csvHeader is the per-layer metrics schema written by WriteCSV.
var csvHeader = []string{
	"layer", "name", "ops", "op_attempts", "reexec_ops", "failures",
	"preserve_writes", "latency_s", "energy_j", "nvm_read_bytes",
	"nvm_write_bytes",
}

func csvRow(label, name string, l *LayerStat) []string {
	return []string{
		label,
		name,
		strconv.FormatInt(l.Ops, 10),
		strconv.FormatInt(l.Starts, 10),
		strconv.FormatInt(l.ReExec, 10),
		strconv.FormatInt(l.Failures, 10),
		strconv.FormatInt(l.Preserves, 10),
		strconv.FormatFloat(l.Latency, 'g', -1, 64),
		strconv.FormatFloat(l.Energy, 'g', -1, 64),
		strconv.FormatInt(l.Read, 10),
		strconv.FormatInt(l.Write, 10),
	}
}

// WriteCSV renders the per-layer run statistics as CSV, one row per
// layer plus a final "total" row. Floats are written with full precision
// so the per-layer latency_s and energy_j columns sum exactly to the
// totals the simulator reported.
func WriteCSV(w io.Writer, s *RunStats, names []string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for i := range s.Layers {
		l := &s.Layers[i]
		row := csvRow(strconv.Itoa(l.Layer), layerName(names, l.Layer), l)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	if err := cw.Write(csvRow("total", "", &s.Total)); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// histCSVHeader is the long-form histogram schema written by
// WriteHistogramsCSV: one row per bucket.
var histCSVHeader = []string{"histogram", "le", "count", "sum", "n"}

// WriteHistogramsCSV renders every histogram of the registry in a
// machine-readable long form, one CSV row per bucket: `le` is the
// bucket's inclusive upper bound ("+Inf" for the overflow bucket), and
// `sum`/`n` repeat the histogram totals on every row so any single row
// reconstructs the mean. The layout loads directly into pandas/R for
// the paper's latency/energy distribution plots.
func WriteHistogramsCSV(w io.Writer, m *Metrics) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(histCSVHeader); err != nil {
		return err
	}
	for _, h := range m.Histograms() {
		for i, cnt := range h.Counts {
			le := "+Inf"
			if i < len(h.Bounds) {
				le = strconv.FormatFloat(h.Bounds[i], 'g', -1, 64)
			}
			row := []string{
				h.Name,
				le,
				strconv.FormatInt(cnt, 10),
				strconv.FormatFloat(h.Sum, 'g', -1, 64),
				strconv.FormatInt(h.N, 10),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadHistogramsCSV parses the WriteHistogramsCSV layout back into a
// registry — the round-trip partner used by tests and by tooling that
// post-processes exported runs. Buckets must appear in ascending bound
// order ending with the "+Inf" overflow row, as written.
func ReadHistogramsCSV(r io.Reader) (*Metrics, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("obs: empty histogram CSV")
	}
	if got, want := fmt.Sprint(rows[0]), fmt.Sprint(histCSVHeader); got != want {
		return nil, fmt.Errorf("obs: histogram CSV header %v, want %v", rows[0], histCSVHeader)
	}
	type partial struct {
		bounds []float64
		counts []int64
		sum    float64
		n      int64
		closed bool // overflow row seen
	}
	m := NewMetrics()
	parts := map[string]*partial{}
	var order []string
	for i, row := range rows[1:] {
		if len(row) != len(histCSVHeader) {
			return nil, fmt.Errorf("obs: histogram CSV row %d has %d fields, want %d", i+2, len(row), len(histCSVHeader))
		}
		name := row[0]
		p, ok := parts[name]
		if !ok {
			p = &partial{}
			parts[name] = p
			order = append(order, name)
		}
		if p.closed {
			return nil, fmt.Errorf("obs: histogram %s has buckets after its +Inf row", name)
		}
		cnt, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: histogram CSV row %d: bad count %q", i+2, row[2])
		}
		sum, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: histogram CSV row %d: bad sum %q", i+2, row[3])
		}
		n, err := strconv.ParseInt(row[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: histogram CSV row %d: bad n %q", i+2, row[4])
		}
		if row[1] == "+Inf" {
			p.closed = true
		} else {
			b, err := strconv.ParseFloat(row[1], 64)
			if err != nil {
				return nil, fmt.Errorf("obs: histogram CSV row %d: bad bound %q", i+2, row[1])
			}
			p.bounds = append(p.bounds, b)
		}
		p.counts = append(p.counts, cnt)
		p.sum, p.n = sum, n
	}
	for _, name := range order {
		p := parts[name]
		if !p.closed {
			return nil, fmt.Errorf("obs: histogram %s missing its +Inf overflow row", name)
		}
		h := m.Histogram(name, p.bounds)
		copy(h.Counts, p.counts)
		h.Sum, h.N = p.sum, p.n
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Terminal summary

// WriteSummary renders a human-readable run summary: the per-layer
// table, power-cycle utilization, and (when a registry is given) every
// counter and histogram. This is what the CLIs print under -v. The
// summary is built in memory and written once, so the only fallible
// write is the final one.
func WriteSummary(w io.Writer, s *RunStats, m *Metrics, names []string) error {
	var buf bytes.Buffer
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fprintln(tw, "layer\tname\tops\treexec\tfail\tlatency\tenergy\tNVM-R\tNVM-W")
	put := func(label, name string, l *LayerStat) {
		fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.4gs\t%.4gmJ\t%s\t%s\n",
			label, name, l.Ops, l.ReExec, l.Failures,
			l.Latency, l.Energy*1e3, fmtBytes(l.Read), fmtBytes(l.Write))
	}
	for i := range s.Layers {
		l := &s.Layers[i]
		put(strconv.Itoa(l.Layer), layerName(names, l.Layer), l)
	}
	put("total", "", &s.Total)
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(s.Cycles) > 0 {
		var util float64
		for i := range s.Cycles {
			util += s.Cycles[i].Utilization()
		}
		fmt.Fprintf(&buf, "power cycles: %d, mean utilization %.1f%%\n",
			len(s.Cycles), 100*util/float64(len(s.Cycles)))
	}
	if m != nil {
		fmt.Fprintln(&buf, "counters:")
		for _, c := range m.Counters() {
			fmt.Fprintf(&buf, "  %-24s %.6g\n", c.Name, c.Value())
		}
		for _, h := range m.Histograms() {
			fmt.Fprintf(&buf, "histogram %s: n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g\n",
				h.Name, h.N, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
			for i, cnt := range h.Counts {
				if cnt == 0 {
					continue
				}
				if i < len(h.Bounds) {
					fmt.Fprintf(&buf, "  <= %-10.4g %d\n", h.Bounds[i], cnt)
				} else {
					fmt.Fprintf(&buf, "  >  %-10.4g %d\n", h.Bounds[len(h.Bounds)-1], cnt)
				}
			}
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// fprintf and fprintln write to the in-memory tabwriter, whose only
// error source is its (in-memory) underlying buffer — unreachable here.
func fprintf(tw *tabwriter.Writer, format string, a ...any) {
	_, _ = fmt.Fprintf(tw, format, a...)
}

func fprintln(tw *tabwriter.Writer, a ...any) {
	_, _ = fmt.Fprintln(tw, a...)
}

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return strconv.FormatFloat(float64(b)/(1<<20), 'f', 1, 64) + "MiB"
	case b >= 1<<10:
		return strconv.FormatFloat(float64(b)/(1<<10), 'f', 1, 64) + "KiB"
	default:
		return strconv.FormatInt(b, 10) + "B"
	}
}
