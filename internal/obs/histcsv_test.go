package obs

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestHistogramsCSVRoundTrip(t *testing.T) {
	m := NewMetrics()
	lat := m.Histogram("latency_s", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.05, 3} {
		lat.Observe(v)
	}
	eng := m.Histogram("energy_j", []float64{1e-6, 1e-3})
	eng.Observe(5e-7)
	eng.Observe(2) // overflow

	var buf bytes.Buffer
	if err := WriteHistogramsCSV(&buf, m); err != nil {
		t.Fatalf("WriteHistogramsCSV: %v", err)
	}

	// One header row plus one row per bucket (bounds+1 each).
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if want := 1 + 4 + 3; len(lines) != want {
		t.Fatalf("got %d CSV lines, want %d:\n%s", len(lines), want, buf.String())
	}
	if lines[0] != "histogram,le,count,sum,n" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(buf.String(), "latency_s,+Inf,1,") {
		t.Errorf("overflow row missing +Inf bound:\n%s", buf.String())
	}

	got, err := ReadHistogramsCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadHistogramsCSV: %v", err)
	}
	hs, want := got.Histograms(), m.Histograms()
	if len(hs) != len(want) {
		t.Fatalf("round-trip histogram count = %d, want %d", len(hs), len(want))
	}
	for i, h := range hs {
		w := want[i]
		if h.Name != w.Name || !reflect.DeepEqual(h.Bounds, w.Bounds) ||
			!reflect.DeepEqual(h.Counts, w.Counts) || h.N != w.N ||
			math.Abs(h.Sum-w.Sum) > 1e-12 {
			t.Errorf("round-trip mismatch for %s:\n got %+v\nwant %+v", w.Name, h, w)
		}
	}
}

func TestReadHistogramsCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "a,b,c\n",
		"short row":   "histogram,le,count,sum,n\nh,1,2\n",
		"bad count":   "histogram,le,count,sum,n\nh,1,x,0,0\n",
		"bad bound":   "histogram,le,count,sum,n\nh,y,1,0,1\n",
		"missing inf": "histogram,le,count,sum,n\nh,1,1,0,1\n",
		"rows after inf": "histogram,le,count,sum,n\n" +
			"h,+Inf,1,0,1\nh,2,0,0,1\n",
	}
	for name, in := range cases {
		if _, err := ReadHistogramsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	m := NewMetrics()
	m.Histogram("h", []float64{1}).Observe(0.5)
	if err := WriteFile(path, func(w io.Writer) error { return WriteHistogramsCSV(w, m) }); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "histogram,le,count,sum,n") {
		t.Errorf("file content = %q", data)
	}

	// A failing render propagates its error and still leaves no dangling
	// file descriptor (Close runs on the error path).
	wantErr := errors.New("render failed")
	if err := WriteFile(filepath.Join(dir, "fail.csv"), func(io.Writer) error { return wantErr }); err != wantErr {
		t.Errorf("WriteFile render error = %v, want %v", err, wantErr)
	}

	// An uncreatable path fails at os.Create.
	if err := WriteFile(filepath.Join(dir, "no/such/dir/x.csv"), func(io.Writer) error { return nil }); err == nil {
		t.Error("WriteFile into missing directory: want error")
	}
}
