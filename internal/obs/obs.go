// Package obs is the observability layer of the intermittent inference
// stack: typed trace events emitted by the cost simulator, the power
// simulator and the functional HAWAII⁺ engine, a registry of counters
// and fixed-bucket histograms derived from them, and sinks that render a
// recorded run as Chrome trace-event JSON (loadable in Perfetto), CSV,
// or a terminal summary table.
//
// The design goal is zero cost when disabled: hot paths hold a Tracer
// interface and guard every emission with Enabled(), so with the Nop
// tracer (or a nil tracer behind a StepClock) no event is constructed
// and no allocation happens — events are plain value structs passed by
// value, never boxed. The package deliberately depends on nothing but
// the standard library and on no other package of this module, so every
// layer of the stack can import it.
package obs

// Kind enumerates the typed trace events of the intermittent inference
// stack.
type Kind uint8

// The event types. Power events mirror the capacitor-buffered supply of
// the paper's Table I; op events mirror the HAWAII⁺ accelerator-op
// schedule and its job-counter progress preservation.
const (
	// KindPowerOn marks the device switching on: run start or the end of
	// a recharge period (instant).
	KindPowerOn Kind = iota
	// KindPowerOff marks the device switching off: buffer depleted or
	// run end (instant).
	KindPowerOff
	// KindCharge is the charging dead-time span between a power-off and
	// the next power-on; Dur is the off-time.
	KindCharge
	// KindOpStart marks one accelerator-op attempt being issued
	// (instant). An attempt that is not followed by a matching
	// KindOpCommit was lost to a power failure.
	KindOpStart
	// KindOpCommit is the span of a successfully committed accelerator
	// op: Dur covers its reads, compute and overlapped preservation
	// write; Energy is the op's draw; Read its NVM read bytes.
	KindOpCommit
	// KindPreserve is a progress-preservation NVM write (op outputs plus
	// the job-counter progress indicator); Write carries the bytes.
	KindPreserve
	// KindFailure marks a power failure, simulated or injected
	// (instant).
	KindFailure
	// KindRecovery is the progress-recovery span after a failure:
	// reboot, progress-indicator read and tile re-fetch. Read carries
	// the re-fetched bytes.
	KindRecovery
	// KindReExec marks re-execution of the single op interrupted by a
	// failure (instant).
	KindReExec
	// KindLayerStart marks entry into a layer (instant).
	KindLayerStart
	// KindLayerEnd marks a layer completing. Dur and Energy carry the
	// layer's inclusive wall-clock span and energy draw, including any
	// charging dead-time and recovery spent inside the layer, so that
	// per-layer sums reproduce the aggregate totals exactly.
	KindLayerEnd
)

var kindNames = [...]string{
	"power-on", "power-off", "charge", "op-start", "op-commit",
	"preserve", "failure", "recovery", "re-exec", "layer-start",
	"layer-end",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one trace event. Time is simulated, not wall-clock: the cost
// simulator stamps seconds, the functional engine stamps preservation
// steps (see StepClock). Layer and Op are -1 when the event is not
// scoped to a layer or op.
type Event struct {
	Kind   Kind
	Time   float64 // simulated time at which the event begins
	Dur    float64 // span duration; 0 for instants
	Layer  int     // layer index; -1 when not layer-scoped
	Op     int64   // op ordinal within the run; -1 when not op-scoped
	Energy float64 // joules attributed to the event
	Read   int64   // NVM bytes read
	Write  int64   // NVM bytes written
}

// Tracer receives events from the instrumented simulators. Hot paths
// must guard emission with Enabled so a disabled tracer costs one
// predictable branch and constructs nothing; Emit takes the event by
// value, so emitting never heap-allocates on the caller's side.
type Tracer interface {
	// Enabled reports whether emitted events are recorded.
	Enabled() bool
	// Emit records one event.
	Emit(Event)
}

// Nop is the disabled tracer: Enabled is false and Emit discards. It is
// the default everywhere a tracer is optional.
type Nop struct{}

// Enabled implements Tracer.
//
//iprune:hotpath
func (Nop) Enabled() bool { return false }

// Emit implements Tracer.
//
//iprune:hotpath
func (Nop) Emit(Event) {}

// Recorder is the in-memory tracer: it appends every event to a slice
// for later collection and export.
type Recorder struct {
	events []Event
}

// NewRecorder returns a Recorder with room for a typical run.
func NewRecorder() *Recorder {
	return &Recorder{events: make([]Event, 0, 1024)}
}

// Enabled implements Tracer.
//
//iprune:hotpath
func (r *Recorder) Enabled() bool { return true }

// Emit implements Tracer. The append amortizes over the preallocated
// buffer; recording is not a hot-path-neutral operation and is only
// reached when tracing was explicitly requested.
//
//iprune:hotpath
func (r *Recorder) Emit(ev Event) {
	r.events = append(r.events, ev) //iprune:allow-alloc amortized growth of the opt-in recording buffer
}

// Events returns the recorded events in emission order. The slice
// aliases the recorder's buffer and stays valid after a Reset: Reset
// abandons the backing array instead of truncating it, so events
// emitted afterwards can never clobber a previously returned snapshot.
func (r *Recorder) Events() []Event { return r.events }

// Reset discards the recorded events. It allocates a fresh buffer of
// the same capacity rather than truncating in place — truncation would
// make subsequent Emits overwrite the backing array of slices handed
// out by Events before the Reset.
func (r *Recorder) Reset() { r.events = make([]Event, 0, cap(r.events)) }

// StepClock drives a Tracer from functional execution, where simulated
// time is the count of preservation steps rather than seconds: every
// emission advances the clock by one step, so recorded timestamps are
// strictly monotonic. The float conversion of the step counter lives
// here so the Q15-pure engine packages never touch float arithmetic.
// The zero StepClock (nil tracer) is disabled and emits nothing.
type StepClock struct {
	T    Tracer
	step int64
}

// Enabled reports whether emissions reach a recording tracer.
//
//iprune:hotpath
func (c *StepClock) Enabled() bool { return c.T != nil && c.T.Enabled() }

// Emit records one event at the current step and advances the clock.
//
//iprune:hotpath
//iprune:allow-float step-counter-to-timestamp conversion is confined here by design (see type doc)
func (c *StepClock) Emit(kind Kind, layer int, op int64, read, write int64) {
	if !c.Enabled() {
		return
	}
	c.T.Emit(Event{
		Kind:  kind,
		Time:  float64(c.step),
		Layer: layer,
		Op:    op,
		Read:  read,
		Write: write,
	})
	c.step++
}

// Pricer converts one functional-execution event into simulated seconds
// and joules. The obs package deliberately imports nothing, so the
// implementation lives with the cost model's importers (see
// hawaii.NewTracePricer, which prices against energy.Model — the same
// table the cost simulator and the regionbudget analyzer read); obs only
// defines the contract.
type Pricer interface {
	// Price returns the simulated duration (seconds) and energy (joules)
	// of one event of the given kind: macs is the op's multiply-
	// accumulate count, read/write its NVM traffic in bytes. Kinds a
	// pricer does not model must return (0, 0).
	Price(kind Kind, macs, read, write int64) (dt, energy float64)
}

// EnergyClock drives a Tracer from functional execution, like StepClock,
// but calibrates the timeline against a cost model: with a Pricer every
// emission advances simulated seconds and accumulates joules, so
// functional-engine traces land on the same microsecond/joule axis as
// cost-simulator traces of the same schedule and overlay in one Chrome
// trace. With a nil Pricer the clock degrades to StepClock semantics —
// one abstract step per event, no energy — so default engine traces are
// unchanged.
//
// The clock mirrors the cost simulator's emission conventions so
// Collect and the sinks treat both backends identically: an op-commit
// is a span whose duration covers reads, compute and the overlapped
// preservation write, followed by a synthesized preserve instant
// carrying the write bytes; layer-end events carry the layer's
// inclusive time span and energy delta; charge events are spans of
// recharge dead-time. All float arithmetic of the calibration is
// confined here and in the Pricer, keeping the Q15 engine float-free.
type EnergyClock struct {
	T Tracer
	P Pricer // nil: step semantics (1 step per event, no energy)

	now, joules      float64
	layerT0, layerE0 float64
}

// Enabled reports whether emissions reach a recording tracer.
//
//iprune:hotpath
func (c *EnergyClock) Enabled() bool { return c.T != nil && c.T.Enabled() }

// Now returns the current simulated time: seconds with a Pricer,
// preservation steps without.
func (c *EnergyClock) Now() float64 { return c.now }

// EnergyJ returns the joules accumulated so far (0 without a Pricer).
func (c *EnergyClock) EnergyJ() float64 { return c.joules }

// Emit records one event at the current time and advances the clock by
// the event's priced duration (one step without a Pricer). Span kinds
// (op-commit, charge, recovery) carry the priced duration; an op-commit
// whose write is nonzero is followed by a synthesized preserve instant
// at the op's end, mirroring the cost simulator's emission order, with
// the write's cost already folded into the op span (the accelerator
// overlaps preservation with compute).
//
//iprune:hotpath
//iprune:allow-float timeline calibration integrates seconds and joules; confined here by design (see type doc)
//iprune:allow-budget host-side trace bookkeeping, not device execution; the Pricer call prices regions, it does not run inside one
func (c *EnergyClock) Emit(kind Kind, layer int, op int64, macs, read, write int64) {
	if !c.Enabled() {
		return
	}
	step := c.P == nil
	var dt, e float64
	if step {
		dt = 1
	} else {
		dt, e = c.P.Price(kind, macs, read, write)
	}
	ev := Event{Kind: kind, Time: c.now, Layer: layer, Op: op, Energy: e, Read: read, Write: write}
	switch kind {
	case KindLayerStart:
		c.layerT0, c.layerE0 = c.now, c.joules
	case KindLayerEnd:
		// Layer-end rollup: inclusive span and energy delta since the
		// matching layer-start, so per-layer sums reproduce run totals.
		ev.Dur = c.now - c.layerT0
		ev.Energy = c.joules - c.layerE0
	case KindOpCommit, KindCharge, KindRecovery:
		if !step {
			ev.Dur = dt
		}
	}
	if kind == KindOpCommit {
		// The preservation write is priced into the op span but rendered
		// as its own instant below, like the cost simulator does.
		ev.Write = 0
	}
	c.T.Emit(ev)
	c.now += dt
	c.joules += e
	if kind == KindOpCommit && write > 0 {
		c.T.Emit(Event{Kind: KindPreserve, Time: c.now, Layer: layer, Op: op, Write: write})
		if step {
			c.now++
		}
	}
}
