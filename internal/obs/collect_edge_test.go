package obs

import (
	"math"
	"testing"
)

// Collect must degrade gracefully at the edges the CLIs can feed it:
// an empty recording, a trace cut off mid power-cycle (aborted run or
// truncated stream), and degenerate zero-duration cycles.

func TestCollectEmpty(t *testing.T) {
	s := Collect(nil)
	if s.Events != 0 || len(s.Layers) != 0 || len(s.Cycles) != 0 {
		t.Fatalf("empty collect = %+v", s)
	}
	if s.Total.Ops != 0 || s.Total.Latency != 0 {
		t.Errorf("empty total = %+v", s.Total)
	}
	// Filling a registry from an empty run registers the histograms with
	// zero observations rather than panicking.
	m := NewMetrics()
	s.Fill(m)
	if got := m.Counter("run/ops").Value(); got != 0 {
		t.Errorf("run/ops = %g, want 0", got)
	}
}

func TestCollectPartialCycle(t *testing.T) {
	evs := []Event{
		{Kind: KindPowerOn, Time: 1, Layer: -1, Op: -1},
		{Kind: KindLayerStart, Time: 1, Layer: 0},
		{Kind: KindOpCommit, Time: 2, Dur: 3, Layer: 0, Op: 0, Energy: 5e-6},
		// No power-off: the trace ends mid-cycle.
	}
	s := Collect(evs)
	if len(s.Cycles) != 1 {
		t.Fatalf("got %d cycles, want 1 partial", len(s.Cycles))
	}
	c := s.Cycles[0]
	// The partial cycle closes at the last stamped instant: the op span's
	// end, Time+Dur = 5.
	if c.Start != 1 || math.Abs(c.OnTime-4) > 1e-12 {
		t.Errorf("partial cycle = %+v, want Start 1 OnTime 4", c)
	}
	if math.Abs(c.Energy-5e-6) > 1e-18 {
		t.Errorf("partial cycle energy = %g, want 5e-6", c.Energy)
	}
}

func TestCollectCycleEnergyExcludesLayerEnd(t *testing.T) {
	evs := []Event{
		{Kind: KindPowerOn, Time: 0, Layer: -1, Op: -1},
		{Kind: KindLayerStart, Time: 0, Layer: 0},
		{Kind: KindOpCommit, Time: 0, Dur: 1, Layer: 0, Op: 0, Energy: 2e-6},
		{Kind: KindPreserve, Time: 1, Layer: 0, Op: 0, Write: 8, Energy: 1e-6},
		{Kind: KindLayerEnd, Time: 1, Dur: 1, Layer: 0, Energy: 3e-6}, // rollup of the above
		{Kind: KindPowerOff, Time: 1, Layer: -1, Op: -1},
	}
	s := Collect(evs)
	if len(s.Cycles) != 1 {
		t.Fatalf("got %d cycles, want 1", len(s.Cycles))
	}
	if got := s.Cycles[0].Energy; math.Abs(got-3e-6) > 1e-18 {
		t.Errorf("cycle energy = %g, want 3e-6 (layer-end rollup must not double-count)", got)
	}
}

func TestCycleStatUtilization(t *testing.T) {
	cases := []struct {
		c    CycleStat
		want float64
	}{
		{CycleStat{OnTime: 1, OffTime: 3}, 0.25},
		{CycleStat{OnTime: 2, OffTime: 0}, 1},
		{CycleStat{}, 0},                       // zero-duration cycle
		{CycleStat{OffTime: 5}, 0},             // never powered
		{CycleStat{OnTime: -1, OffTime: 1}, 0}, // defensive: non-positive total
	}
	for i, tc := range cases {
		if got := tc.c.Utilization(); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("case %d: Utilization(%+v) = %g, want %g", i, tc.c, got, tc.want)
		}
	}
}

func TestCollectZeroDurationCycle(t *testing.T) {
	// Power-on immediately followed by power-off: a brown-out before any
	// work. The cycle exists, carries nothing, and utilization is 0.
	evs := []Event{
		{Kind: KindPowerOn, Time: 2, Layer: -1, Op: -1},
		{Kind: KindPowerOff, Time: 2, Layer: -1, Op: -1},
		{Kind: KindCharge, Time: 2, Dur: 1, Layer: -1, Op: -1},
	}
	s := Collect(evs)
	if len(s.Cycles) != 1 {
		t.Fatalf("got %d cycles, want 1", len(s.Cycles))
	}
	c := s.Cycles[0]
	if c.OnTime != 0 || c.OffTime != 1 || c.Energy != 0 {
		t.Errorf("zero-duration cycle = %+v", c)
	}
	if got := c.Utilization(); got != 0 {
		t.Errorf("utilization = %g, want 0", got)
	}
}
