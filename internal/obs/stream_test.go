package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
)

// adversarialRun extends the synthetic run with the encoder edge cases:
// tiny/huge floats (scientific notation), out-of-range and negative
// layer indices (name fallback), an unknown kind (default branch), and
// omitted optional args.
func adversarialRun() []Event {
	return append(syntheticRun(),
		Event{Kind: KindFailure, Time: 5, Layer: -1, Op: -1, Energy: 1e-9},
		Event{Kind: KindFailure, Time: 5.25, Layer: -1, Op: -1, Energy: 2.5e-7},
		Event{Kind: KindLayerEnd, Time: 6, Dur: 0.5, Layer: 7, Energy: 3e21},
		Event{Kind: KindLayerEnd, Time: 6, Dur: 0, Layer: -3},
		Event{Kind: KindOpCommit, Time: 6.5, Dur: 0.25, Layer: 1, Op: -1},
		Event{Kind: Kind(99), Time: 7, Layer: 0, Op: 3},
		Event{Kind: KindRecovery, Time: 7.5, Dur: 0.1, Layer: 0, Op: 4, Read: 0, Energy: -2e-4},
	)
}

// trickyNames exercises the string escaper: HTML characters, quotes,
// control characters, multi-byte runes, invalid UTF-8 and the JS line
// separators.
var trickyNames = []string{
	`fc<&>"esc"`,
	"tab\tnl\nπ→Σ",
	"bad\xffutf8",
	"sep\u2028mid\u2029end",
}

// TestStreamTracerByteIdentical pins the tentpole equivalence: streaming
// a run event by event produces exactly the bytes WriteChromeTrace
// renders from the recorded slice, across every kind, float notation
// and string-escaping edge the two encoders can disagree on.
func TestStreamTracerByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		events []Event
		names  []string
	}{
		{"synthetic", syntheticRun(), []string{"conv1", "fc1"}},
		{"adversarial", adversarialRun(), trickyNames},
		{"empty", nil, []string{"conv1"}},
		{"no-names", syntheticRun(), nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var want bytes.Buffer
			if err := WriteChromeTrace(&want, tc.events, tc.names); err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			st := NewStreamTracer(&got, tc.names)
			if !st.Enabled() {
				t.Fatal("fresh StreamTracer must be enabled")
			}
			for _, ev := range tc.events {
				st.Emit(ev)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Errorf("stream output diverges from WriteChromeTrace\n got: %s\nwant: %s", got.String(), want.String())
			}
		})
	}
}

// TestStreamTracerEarlyClose is the crash-mid-stream contract: any
// prefix of emissions followed by the deferred Close parses as a
// complete Chrome trace.
func TestStreamTracerEarlyClose(t *testing.T) {
	events := adversarialRun()
	for k := 0; k <= len(events); k++ {
		var buf bytes.Buffer
		st := NewStreamTracer(&buf, trickyNames)
		for _, ev := range events[:k] {
			st.Emit(ev)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close after %d events: %v", k, err)
		}
		var tr struct {
			TraceEvents []map[string]any `json:"traceEvents"`
			Unit        string           `json:"displayTimeUnit"`
		}
		if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
			t.Fatalf("output after %d events is not valid JSON: %v\n%s", k, err, buf.String())
		}
		if tr.Unit != "ms" {
			t.Errorf("after %d events: displayTimeUnit = %q", k, tr.Unit)
		}
	}
	// Close is idempotent.
	var buf bytes.Buffer
	st := NewStreamTracer(&buf, nil)
	st.Emit(Event{Kind: KindPowerOn})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Error("second Close wrote more bytes")
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct {
	n   int
	err error
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

func TestStreamTracerWriteError(t *testing.T) {
	sentinel := errors.New("disk full")
	st := NewStreamTracer(&failWriter{n: 64, err: sentinel}, nil)
	// The bufio layer defers the failure; keep emitting until it bites.
	for i := 0; i < 100000 && st.Err() == nil; i++ {
		st.Emit(Event{Kind: KindOpCommit, Time: float64(i), Dur: 1, Layer: 0, Op: int64(i)})
	}
	if !errors.Is(st.Err(), sentinel) {
		t.Fatalf("Err() = %v, want the injected write error", st.Err())
	}
	if st.Enabled() {
		t.Error("tracer must report disabled after a write error")
	}
	before := st.Events()
	st.Emit(Event{Kind: KindPowerOn}) // must not panic, must not count
	if st.Events() != before {
		t.Error("Emit after a write error still counted an event")
	}
	if err := st.Close(); !errors.Is(err, sentinel) {
		t.Errorf("Close = %v, want the injected write error", err)
	}
}

// failCloser succeeds every write and fails Close — the truncated-flush
// shape RenderTo must surface.
type failCloser struct {
	io.Writer
	err error
}

func (c *failCloser) Close() error { return c.err }

func TestRenderToPropagatesCloseError(t *testing.T) {
	sentinel := errors.New("deferred flush failure")
	err := RenderTo(&failCloser{Writer: io.Discard, err: sentinel}, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("RenderTo = %v, want the Close error", err)
	}
	// A render failure wins over the Close error.
	renderErr := errors.New("render failed")
	err = RenderTo(&failCloser{Writer: io.Discard, err: sentinel}, func(io.Writer) error { return renderErr })
	if !errors.Is(err, renderErr) {
		t.Errorf("RenderTo = %v, want the render error", err)
	}
}

func TestStreamTracerMultiProcess(t *testing.T) {
	var buf bytes.Buffer
	st := NewStreamTracer(&buf, nil)
	st.NextProcess("HAR iPrune", []string{"conv1"})
	st.Emit(Event{Kind: KindLayerEnd, Time: 1, Dur: 1, Layer: 0})
	st.NextProcess("empty section", nil) // no events: must leave nothing
	st.NextProcess("CKS iPrune", []string{"fc1"})
	st.Emit(Event{Kind: KindLayerEnd, Time: 2, Dur: 1, Layer: 0})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	procs := map[int]string{}
	layers := map[int]string{}
	for _, e := range tr.TraceEvents {
		if e.Name == "process_name" {
			procs[e.Pid], _ = e.Args["name"].(string)
		}
		if e.Ph == "X" {
			layers[e.Pid] = e.Name
		}
	}
	if len(procs) != 2 || procs[1] != "HAR iPrune" || procs[2] != "CKS iPrune" {
		t.Errorf("process sections = %v, want pids 1,2 named after the runs", procs)
	}
	if layers[1] != "conv1" || layers[2] != "fc1" {
		t.Errorf("per-process layer names = %v", layers)
	}
	if strings.Contains(buf.String(), "empty section") {
		t.Error("a section with no events must leave nothing in the trace")
	}
	if st.Events() != 2 {
		t.Errorf("Events() = %d, want 2 (metadata not counted)", st.Events())
	}
}

// TestStreamTracerEmitZeroAlloc pins the acceptance criterion: steady-
// state emission reuses the scratch buffer and allocates nothing.
func TestStreamTracerEmitZeroAlloc(t *testing.T) {
	st := NewStreamTracer(io.Discard, []string{"conv1", "fc1"})
	ev := Event{Kind: KindOpCommit, Time: 12.5, Dur: 0.25, Layer: 1, Op: 42, Energy: 3e-4, Read: 256}
	st.Emit(ev) // warm the scratch buffer and metadata path
	allocs := testing.AllocsPerRun(1000, func() { st.Emit(ev) })
	if allocs != 0 {
		t.Errorf("Emit allocates %.1f per op in steady state, want 0", allocs)
	}
}

// BenchmarkStreamTracerEmit is in the benchdiff hot set: its allocs/op
// must stay 0 and its ns/op within the regression threshold.
func BenchmarkStreamTracerEmit(b *testing.B) {
	st := NewStreamTracer(io.Discard, []string{"conv1", "fc1"})
	ev := Event{Kind: KindOpCommit, Time: 12.5, Dur: 0.25, Layer: 1, Op: 42, Energy: 3e-4, Read: 256}
	st.Emit(ev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Emit(ev)
	}
}

// TestAppendJSONScalarsMatchEncoding cross-checks the hand encoders
// against encoding/json directly, beyond the values the trace fixtures
// happen to produce.
func TestAppendJSONScalarsMatchEncoding(t *testing.T) {
	strs := append([]string{"", "plain", "a b c", "\x00\x1f\x7f", `\"`, "<script>&amp;</script>", "naïve line", "\xc3\x28"}, trickyNames...)
	for _, s := range strs {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONString(nil, s); !bytes.Equal(got, want) {
			t.Errorf("appendJSONString(%q) = %s, want %s", s, got, want)
		}
	}
	floats := []float64{0, 1, -1, 0.5, 1e-6, 9.9e-7, 1e-9, 2.5e-7, 1e20, 1e21, 3.25e21, -4e-8, 123456789.25, 1.5e6}
	for _, f := range floats {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONFloat(nil, f); !bytes.Equal(got, want) {
			t.Errorf("appendJSONFloat(%v) = %s, want %s", f, got, want)
		}
	}
}

func TestTee(t *testing.T) {
	if NewTee().Enabled() || NewTee(nil, Nop{}).Enabled() {
		t.Error("Tee over nothing enabled must be disabled")
	}
	r1, r2 := NewRecorder(), NewRecorder()
	var buf bytes.Buffer
	st := NewStreamTracer(&buf, nil)
	tee := NewTee(nil, r1, Nop{}, st, r2)
	if !tee.Enabled() {
		t.Fatal("Tee with enabled members must be enabled")
	}
	tee.Emit(Event{Kind: KindPowerOn, Time: 1})
	tee.Emit(Event{Kind: KindPowerOff, Time: 2})
	if len(r1.Events()) != 2 || len(r2.Events()) != 2 {
		t.Errorf("recorders saw %d/%d events, want 2/2", len(r1.Events()), len(r2.Events()))
	}
	if st.Events() != 2 {
		t.Errorf("stream member saw %d events, want 2", st.Events())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if !tee.Enabled() {
		t.Error("Tee must stay enabled while the recorders are")
	}
	if NewTee(st).Enabled() {
		t.Error("Tee over only a closed stream must be disabled")
	}
	before := len(r1.Events())
	tee.Emit(Event{Kind: KindFailure, Time: 3})
	if len(r1.Events()) != before+1 {
		t.Error("closed stream member must not block the recorders")
	}
	if st.Events() != 2 {
		t.Error("closed stream member must not receive further events")
	}
}
