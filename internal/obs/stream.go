package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"unicode/utf8"
)

// StreamTracer is the O(1)-event-memory counterpart of Recorder +
// WriteChromeTrace: a Tracer that encodes each emitted event as one
// Chrome trace-event JSON object straight into a buffered io.Writer and
// retains nothing. A solar-day harvest simulation emits millions of
// events; recording them first would hold the whole run in memory, so
// the long-horizon CLI paths (`isim -trace`, `repro` artifacts) stream
// instead. The byte output over a given event sequence is identical to
// WriteChromeTrace over the same recorded slice (pinned by test), so
// both sinks stay loadable by Perfetto / chrome://tracing and diffable
// against each other.
//
// Lifecycle: NewStreamTracer writes nothing; the object header and the
// per-process metadata are emitted lazily before the first event, and
// Close writes the closing footer and flushes. Callers must Close (the
// deferred-footer contract): an un-Closed stream is a truncated JSON
// array, whereas any prefix of emissions followed by Close parses. Write
// errors are sticky: the first failure disables the tracer (Enabled
// turns false, further Emits discard) and is returned by Close and Err,
// so a full disk surfaces as a failed artifact instead of a silently
// truncated one.
//
// StreamTracer is not safe for concurrent use, matching Recorder.
type StreamTracer struct {
	w      *bufio.Writer
	buf    []byte   // per-event scratch, reused across Emit calls
	names  []string // layer-name table of the current process section
	proc   string   // process_name metadata of the current section ("" = none)
	pid    int
	n      int64 // JSON array elements written, for comma placement
	events int64 // trace events written (excludes metadata)
	meta   bool  // current section's metadata has been written
	moved  bool  // NextProcess was ever called
	header bool  // the surrounding object header has been written
	closed bool
	err    error
}

// NewStreamTracer returns a streaming tracer rendering into w. names
// labels layer indices exactly as in WriteChromeTrace; it may be nil.
func NewStreamTracer(w io.Writer, names []string) *StreamTracer {
	return &StreamTracer{
		w:     bufio.NewWriterSize(w, 32<<10),
		buf:   make([]byte, 0, 256),
		names: names,
		pid:   1,
	}
}

// Enabled implements Tracer. It turns false once the stream is closed or
// a write has failed, so hot emission sites stop constructing events for
// a dead sink.
//
//iprune:hotpath
func (t *StreamTracer) Enabled() bool { return !t.closed && t.err == nil }

// Err returns the first write error encountered, if any. Long-running
// callers can poll it to abort a simulation whose artifact is already
// lost.
func (t *StreamTracer) Err() error { return t.err }

// Events returns the number of trace events written so far (metadata
// records excluded).
func (t *StreamTracer) Events() int64 { return t.events }

// NextProcess starts a new process section in the trace: subsequent
// events carry a fresh pid, their own thread tracks, a process_name
// metadata record, and the given layer-name table. This renders several
// runs (one per model, say) into a single trace file as side-by-side
// Perfetto process groups; each section's timestamps restart at its
// simulator's own origin. A section in which no event was emitted leaves
// nothing in the output.
func (t *StreamTracer) NextProcess(name string, names []string) {
	if t.meta {
		t.pid++
	}
	t.meta = false
	t.moved = true
	t.proc = name
	t.names = names
}

// Emit implements Tracer: the event is encoded and written immediately,
// nothing is retained. The scratch buffer is reused across calls, so
// steady-state emission does not allocate (pinned by benchmark and
// gated via the benchdiff hot set). The allow-alloc blessing marks that
// audited boundary for the devirtualized call graph: the appends inside
// the encoder helpers (appendEvent, writeMeta, the JSON scalar
// encoders) all land in the reused scratch or the lazily-written
// metadata path and must not re-surface at every hot emission site.
//
//iprune:hotpath
//iprune:allow-alloc amortized per-event scratch reuse; steady-state zero-alloc pinned by benchmark
//iprune:allow-budget host-side trace encoding; event cost scales with label lengths, not device regions
func (t *StreamTracer) Emit(ev Event) {
	if t.closed || t.err != nil {
		return
	}
	if ev.Kind == KindLayerStart {
		return // the LayerEnd event renders the whole span
	}
	t.ensureMeta()
	b := t.buf[:0]
	if t.n > 0 {
		b = append(b, ',') //iprune:allow-alloc amortized reuse of the per-event scratch buffer
	}
	b = t.appendEvent(b, &ev)
	t.buf = b
	t.write(b)
	t.n++
	t.events++
}

// Close writes the trace footer, flushes, and returns the first error of
// the stream's lifetime. It is idempotent. Closing an empty stream still
// yields a complete, loadable trace.
func (t *StreamTracer) Close() error {
	if t.closed {
		return t.err
	}
	t.closed = true
	if !t.moved {
		// Match WriteChromeTrace over an empty recording: the default
		// section's track metadata appears even with no events.
		t.ensureMeta()
	}
	t.ensureHeader()
	t.write([]byte("],\"displayTimeUnit\":\"ms\"}\n"))
	if ferr := t.w.Flush(); t.err == nil {
		t.err = ferr
	}
	return t.err
}

// write forwards to the buffered writer with sticky error handling.
func (t *StreamTracer) write(p []byte) {
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(p); err != nil {
		t.err = err
	}
}

// ensureHeader writes the surrounding JSON object opening once.
func (t *StreamTracer) ensureHeader() {
	if t.header {
		return
	}
	t.header = true
	t.write([]byte("{\"traceEvents\":["))
}

// ensureMeta writes the current section's metadata records: an optional
// process_name plus the three thread tracks, mirroring WriteChromeTrace.
func (t *StreamTracer) ensureMeta() {
	if t.meta {
		return
	}
	t.meta = true
	t.ensureHeader()
	if t.proc != "" {
		t.writeMeta("process_name", 0, t.proc)
	}
	t.writeMeta("thread_name", tidAccel, "accelerator")
	t.writeMeta("thread_name", tidLayers, "layers")
	t.writeMeta("thread_name", tidPower, "power")
}

// writeMeta emits one "M" metadata record.
func (t *StreamTracer) writeMeta(kind string, tid int, name string) {
	b := t.buf[:0]
	if t.n > 0 {
		b = append(b, ',')
	}
	b = append(b, "{\"name\":\""...)
	b = append(b, kind...)
	b = append(b, "\",\"ph\":\"M\",\"ts\":0,\"pid\":"...)
	b = strconv.AppendInt(b, int64(t.pid), 10)
	b = append(b, ",\"tid\":"...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, ",\"args\":{\"name\":"...)
	b = appendJSONString(b, name)
	b = append(b, "}}"...)
	t.buf = b
	t.write(b)
	t.n++
}

// appendEvent encodes one event exactly as WriteChromeTrace renders it
// through encoding/json: same fields, same order, same float and string
// encodings. The two code paths are pinned byte-identical by test, so
// edit them together.
func (t *StreamTracer) appendEvent(b []byte, ev *Event) []byte {
	const us = 1e6
	kind := ev.Kind.String()
	switch ev.Kind {
	case KindPowerOn, KindPowerOff:
		b = t.appendCommon(b, kind, -1, kind, "i", ev.Time*us, 0, tidPower, "t")
	case KindFailure:
		b = t.appendCommon(b, kind, -1, kind, "i", ev.Time*us, 0, tidPower, "g")
		if ev.Energy != 0 {
			b = append(b, ",\"args\":{\"lost_energy_j\":"...)
			b = appendJSONFloat(b, ev.Energy)
			b = append(b, '}')
		}
	case KindCharge:
		b = t.appendCommon(b, kind, -1, kind, "X", ev.Time*us, ev.Dur*us, tidPower, "")
	case KindOpStart, KindReExec:
		b = t.appendCommon(b, kind, -1, kind, "i", ev.Time*us, 0, tidAccel, "t")
		b = append(b, ",\"args\":{\"op\":"...)
		b = strconv.AppendInt(b, ev.Op, 10)
		b = append(b, '}')
	case KindOpCommit:
		b = t.appendCommon(b, "op", -1, kind, "X", ev.Time*us, ev.Dur*us, tidAccel, "")
		b = append(b, ",\"args\":{"...)
		if ev.Energy != 0 {
			b = append(b, "\"energy_j\":"...)
			b = appendJSONFloat(b, ev.Energy)
			b = append(b, ',')
		}
		b = append(b, "\"layer\":"...)
		b = t.appendLayerName(b, ev.Layer)
		b = append(b, ",\"op\":"...)
		b = strconv.AppendInt(b, ev.Op, 10)
		if ev.Read != 0 {
			b = append(b, ",\"read_bytes\":"...)
			b = strconv.AppendInt(b, ev.Read, 10)
		}
		b = append(b, '}')
	case KindPreserve:
		b = t.appendCommon(b, kind, -1, kind, "i", ev.Time*us, 0, tidAccel, "t")
		b = append(b, ",\"args\":{\"op\":"...)
		b = strconv.AppendInt(b, ev.Op, 10)
		b = append(b, ",\"write_bytes\":"...)
		b = strconv.AppendInt(b, ev.Write, 10)
		b = append(b, '}')
	case KindRecovery:
		b = t.appendCommon(b, kind, -1, kind, "X", ev.Time*us, ev.Dur*us, tidAccel, "")
		b = append(b, ",\"args\":{"...)
		if ev.Energy != 0 {
			b = append(b, "\"energy_j\":"...)
			b = appendJSONFloat(b, ev.Energy)
			b = append(b, ',')
		}
		b = append(b, "\"op\":"...)
		b = strconv.AppendInt(b, ev.Op, 10)
		b = append(b, ",\"refetch_bytes\":"...)
		b = strconv.AppendInt(b, ev.Read, 10)
		b = append(b, '}')
	case KindLayerEnd:
		b = t.appendCommon(b, "", ev.Layer, kind, "X", (ev.Time-ev.Dur)*us, ev.Dur*us, tidLayers, "")
		if ev.Energy != 0 {
			b = append(b, ",\"args\":{\"energy_j\":"...)
			b = appendJSONFloat(b, ev.Energy)
			b = append(b, '}')
		}
	default:
		b = t.appendCommon(b, kind, -1, kind, "i", ev.Time*us, 0, tidAccel, "t")
	}
	return append(b, '}')
}

// appendCommon appends the fields shared by every event in chromeEvent
// field order: name, cat, ph, ts, dur (omitted when zero), pid, tid and
// s (omitted when empty). name == "" selects the layer-name table via
// nameLayer instead.
func (t *StreamTracer) appendCommon(b []byte, name string, nameLayer int, cat, ph string, ts, dur float64, tid int, s string) []byte {
	b = append(b, "{\"name\":"...)
	if name != "" {
		b = appendJSONString(b, name)
	} else {
		b = t.appendLayerName(b, nameLayer)
	}
	b = append(b, ",\"cat\":"...)
	b = appendJSONString(b, cat)
	b = append(b, ",\"ph\":\""...)
	b = append(b, ph...)
	b = append(b, "\",\"ts\":"...)
	b = appendJSONFloat(b, ts)
	if dur != 0 {
		b = append(b, ",\"dur\":"...)
		b = appendJSONFloat(b, dur)
	}
	b = append(b, ",\"pid\":"...)
	b = strconv.AppendInt(b, int64(t.pid), 10)
	b = append(b, ",\"tid\":"...)
	b = strconv.AppendInt(b, int64(tid), 10)
	if s != "" {
		b = append(b, ",\"s\":\""...)
		b = append(b, s...)
		b = append(b, '"')
	}
	return b
}

// appendLayerName appends the quoted JSON name of a layer index: the
// table entry when in range, the synthetic "layer<N>" fallback otherwise
// — layerName without the intermediate string allocation.
func (t *StreamTracer) appendLayerName(b []byte, li int) []byte {
	if li >= 0 && li < len(t.names) {
		return appendJSONString(b, t.names[li])
	}
	b = append(b, "\"layer"...)
	b = strconv.AppendInt(b, int64(li), 10)
	return append(b, '"')
}

// ---------------------------------------------------------------------------
// encoding/json-compatible scalar encoders

const jsonHex = "0123456789abcdef"

// appendJSONString appends s quoted and escaped exactly as
// encoding/json's default (HTML-escaping) encoder would: control
// characters, quote and backslash escaped, <, >, & as \u00XX, invalid
// UTF-8 as �, and U+2028/U+2029 escaped.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', jsonHex[c>>4], jsonHex[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, "\\ufffd"...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', jsonHex[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendJSONFloat appends f exactly as encoding/json encodes a float64:
// shortest 'f' form in the mid range, 'e' form (with the exponent's
// leading zero stripped) below 1e-6 and at or above 1e21.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// encoding/json cleans e-09 to e-9 etc.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// ---------------------------------------------------------------------------
// Tee

// Tee fans one event stream out to several tracers — typically a
// StreamTracer writing the artifact plus a Recorder feeding Collect.
// Disabled members are skipped per emission, so a StreamTracer that hit
// a write error stops costing anything while the others keep recording.
type Tee struct {
	ts []Tracer
}

// NewTee combines tracers into one. Nil members are dropped; a Tee over
// nothing is permanently disabled.
func NewTee(ts ...Tracer) *Tee {
	t := &Tee{ts: make([]Tracer, 0, len(ts))}
	for _, tr := range ts {
		if tr != nil {
			t.ts = append(t.ts, tr)
		}
	}
	return t
}

// Enabled implements Tracer: true while any member is enabled.
//
//iprune:hotpath
//iprune:allow-budget tracer fan-out recurses through nested tees; host-side observability, outside the device energy envelope
func (t *Tee) Enabled() bool {
	for _, tr := range t.ts {
		if tr.Enabled() {
			return true
		}
	}
	return false
}

// Emit implements Tracer, forwarding to every enabled member.
//
//iprune:hotpath
//iprune:allow-budget tracer fan-out recurses through nested tees; host-side observability, outside the device energy envelope
func (t *Tee) Emit(ev Event) {
	for _, tr := range t.ts {
		if tr.Enabled() {
			tr.Emit(ev)
		}
	}
}
