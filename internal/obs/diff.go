package obs

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"
)

// Delta is the before→after change of one metric of a diffed run pair.
type Delta struct {
	Before, After float64
	Abs           float64 // After - Before
	Pct           float64 // 100 * Abs / Before; meaningless unless PctValid
	PctValid      bool    // false when Before == 0 (no baseline to divide by)
}

func delta(before, after float64) Delta {
	d := Delta{Before: before, After: after, Abs: after - before}
	if before != 0 {
		d.Pct = 100 * d.Abs / before
		d.PctValid = true
	}
	return d
}

// LayerDiff is the typed per-layer delta between two runs: every
// LayerStat metric as absolute before/after values plus the percent
// change where a baseline exists.
type LayerDiff struct {
	Layer int
	Ops, Starts, ReExec, Failures, Preserves,
	Latency, Energy, Read, Write Delta
}

func diffLayer(li int, before, after *LayerStat) LayerDiff {
	var zero LayerStat
	if before == nil {
		before = &zero
	}
	if after == nil {
		after = &zero
	}
	return LayerDiff{
		Layer:     li,
		Ops:       delta(float64(before.Ops), float64(after.Ops)),
		Starts:    delta(float64(before.Starts), float64(after.Starts)),
		ReExec:    delta(float64(before.ReExec), float64(after.ReExec)),
		Failures:  delta(float64(before.Failures), float64(after.Failures)),
		Preserves: delta(float64(before.Preserves), float64(after.Preserves)),
		Latency:   delta(before.Latency, after.Latency),
		Energy:    delta(before.Energy, after.Energy),
		Read:      delta(float64(before.Read), float64(after.Read)),
		Write:     delta(float64(before.Write), float64(after.Write)),
	}
}

// StatsDiff is the cross-run comparison of two RunStats aggregations:
// the per-layer pruning story (before/after latency, energy, preserves,
// re-executions per layer) that a reader previously assembled by diffing
// two CSVs by hand.
type StatsDiff struct {
	Layers []LayerDiff // union of both runs' layers, sorted by index
	Total  LayerDiff
	Cycles Delta // power-cycle counts (0 on both sides for CSV-loaded runs)
}

// DiffRunStats compares two runs layer by layer. Layers present in only
// one run (a layer pruned away entirely, say) diff against zero. Percent
// changes against a zero baseline are marked invalid rather than
// divided.
func DiffRunStats(before, after *RunStats) *StatsDiff {
	type pair struct{ b, a *LayerStat }
	byLayer := map[int]*pair{}
	for i := range before.Layers {
		l := &before.Layers[i]
		byLayer[l.Layer] = &pair{b: l}
	}
	for i := range after.Layers {
		l := &after.Layers[i]
		p, ok := byLayer[l.Layer]
		if !ok {
			p = &pair{}
			byLayer[l.Layer] = p
		}
		p.a = l
	}
	idx := make([]int, 0, len(byLayer))
	for li := range byLayer {
		idx = append(idx, li)
	}
	sort.Ints(idx)
	d := &StatsDiff{
		Total:  diffLayer(-1, &before.Total, &after.Total),
		Cycles: delta(float64(len(before.Cycles)), float64(len(after.Cycles))),
	}
	for _, li := range idx {
		p := byLayer[li]
		d.Layers = append(d.Layers, diffLayer(li, p.b, p.a))
	}
	return d
}

// fmtDeltaCell renders one before→after cell for the terminal table.
// unit is appended to both values; scale multiplies them for display
// (1e3 for J→mJ).
func fmtDeltaCell(d Delta, scale float64, unit string) string {
	if d.Before == d.After {
		return fmt.Sprintf("%.4g%s", d.Before*scale, unit)
	}
	cell := fmt.Sprintf("%.4g%s -> %.4g%s", d.Before*scale, unit, d.After*scale, unit)
	if d.PctValid {
		return fmt.Sprintf("%s (%+.1f%%)", cell, d.Pct)
	}
	return cell + " (n/a%)"
}

// WriteDiffTable renders a cross-run diff as a terminal table: one row
// per layer plus a total row, the headline intermittent metrics as
// before → after (±percent) cells, and the power-cycle delta when either
// run recorded cycles. Built in memory and written once, like
// WriteSummary.
func WriteDiffTable(w io.Writer, d *StatsDiff, names []string) error {
	var buf bytes.Buffer
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fprintln(tw, "layer\tname\tlatency\tenergy\tpreserves\treexec\tops")
	put := func(label, name string, l *LayerDiff) {
		fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			label, name,
			fmtDeltaCell(l.Latency, 1, "s"),
			fmtDeltaCell(l.Energy, 1e3, "mJ"),
			fmtDeltaCell(l.Preserves, 1, ""),
			fmtDeltaCell(l.ReExec, 1, ""),
			fmtDeltaCell(l.Ops, 1, ""))
	}
	for i := range d.Layers {
		l := &d.Layers[i]
		put(strconv.Itoa(l.Layer), layerName(names, l.Layer), l)
	}
	put("total", "", &d.Total)
	if err := tw.Flush(); err != nil {
		return err
	}
	if d.Cycles.Before != 0 || d.Cycles.After != 0 {
		fmt.Fprintf(&buf, "power cycles: %s\n", fmtDeltaCell(d.Cycles, 1, ""))
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// WriteHistDiffTable renders a cross-run histogram comparison: one row
// per histogram present in either registry, with n, mean and the
// p50/p95/p99 tails as before → after (±percent) cells — the
// distribution-level complement to WriteDiffTable's per-layer means,
// fed by `isim -compare` when both inputs are histogram CSV exports.
func WriteHistDiffTable(w io.Writer, before, after *Metrics) error {
	var buf bytes.Buffer
	tw := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fprintln(tw, "histogram\tn\tmean\tp50\tp95\tp99")
	names := make([]string, 0, len(before.Histograms())+len(after.Histograms()))
	seen := map[string]bool{}
	for _, m := range []*Metrics{before, after} {
		for _, h := range m.Histograms() {
			if !seen[h.Name] {
				seen[h.Name] = true
				names = append(names, h.Name)
			}
		}
	}
	get := func(m *Metrics, name string) *Histogram {
		if h, ok := m.hists[name]; ok {
			return h
		}
		return &Histogram{Name: name}
	}
	for _, name := range names {
		b, a := get(before, name), get(after, name)
		q := func(p float64) string { return fmtDeltaCell(delta(b.Quantile(p), a.Quantile(p)), 1, "") }
		fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n", name,
			fmtDeltaCell(delta(float64(b.N), float64(a.N)), 1, ""),
			fmtDeltaCell(delta(b.Mean(), a.Mean()), 1, ""),
			q(0.50), q(0.95), q(0.99))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// diffCSVHeader is the long-form cross-run diff schema: one row per
// layer per metric, so the table loads straight into pandas/R without
// a wide-format column explosion.
var diffCSVHeader = []string{"layer", "name", "metric", "before", "after", "delta", "pct"}

// WriteDiffCSV renders a cross-run diff in long form. The metric column
// reuses the WriteCSV schema names; pct is empty when the baseline is
// zero.
func WriteDiffCSV(w io.Writer, d *StatsDiff, names []string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(diffCSVHeader); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	put := func(label, name string, l *LayerDiff) error {
		for _, m := range []struct {
			metric string
			d      Delta
		}{
			{"ops", l.Ops}, {"op_attempts", l.Starts}, {"reexec_ops", l.ReExec},
			{"failures", l.Failures}, {"preserve_writes", l.Preserves},
			{"latency_s", l.Latency}, {"energy_j", l.Energy},
			{"nvm_read_bytes", l.Read}, {"nvm_write_bytes", l.Write},
		} {
			pct := ""
			if m.d.PctValid {
				pct = g(m.d.Pct)
			}
			row := []string{label, name, m.metric, g(m.d.Before), g(m.d.After), g(m.d.Abs), pct}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range d.Layers {
		l := &d.Layers[i]
		if err := put(strconv.Itoa(l.Layer), layerName(names, l.Layer), l); err != nil {
			return err
		}
	}
	if err := put("total", "", &d.Total); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// ReadStatsCSV parses the WriteCSV per-layer layout back into a RunStats
// plus its layer-name table — the round-trip partner that lets two
// exported runs be diffed (`isim -compare A.csv B.csv`) without
// re-simulating. Power cycles and the event count are not part of the
// CSV schema and come back zero.
func ReadStatsCSV(r io.Reader) (*RunStats, []string, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("obs: empty run-stats CSV")
	}
	if got, want := fmt.Sprint(rows[0]), fmt.Sprint(csvHeader); got != want {
		return nil, nil, fmt.Errorf("obs: run-stats CSV header %v, want %v", rows[0], csvHeader)
	}
	s := &RunStats{}
	var names []string
	sawTotal := false
	for i, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			return nil, nil, fmt.Errorf("obs: run-stats CSV row %d has %d fields, want %d", i+2, len(row), len(csvHeader))
		}
		var l LayerStat
		bad := func(col, val string, err error) error {
			return fmt.Errorf("obs: run-stats CSV row %d: bad %s %q: %v", i+2, col, val, err)
		}
		ints := []struct {
			col  int
			dst  *int64
			name string
		}{
			{2, &l.Ops, "ops"}, {3, &l.Starts, "op_attempts"}, {4, &l.ReExec, "reexec_ops"},
			{5, &l.Failures, "failures"}, {6, &l.Preserves, "preserve_writes"},
			{9, &l.Read, "nvm_read_bytes"}, {10, &l.Write, "nvm_write_bytes"},
		}
		for _, c := range ints {
			v, err := strconv.ParseInt(row[c.col], 10, 64)
			if err != nil {
				return nil, nil, bad(c.name, row[c.col], err)
			}
			*c.dst = v
		}
		if l.Latency, err = strconv.ParseFloat(row[7], 64); err != nil {
			return nil, nil, bad("latency_s", row[7], err)
		}
		if l.Energy, err = strconv.ParseFloat(row[8], 64); err != nil {
			return nil, nil, bad("energy_j", row[8], err)
		}
		if row[0] == "total" {
			l.Layer = -1
			s.Total = l
			sawTotal = true
			continue
		}
		li, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, nil, bad("layer index", row[0], err)
		}
		l.Layer = li
		s.Layers = append(s.Layers, l)
		for len(names) <= li {
			names = append(names, "")
		}
		if li >= 0 {
			names[li] = row[1]
		}
	}
	if !sawTotal {
		return nil, nil, fmt.Errorf("obs: run-stats CSV missing its total row")
	}
	sort.Slice(s.Layers, func(i, j int) bool { return s.Layers[i].Layer < s.Layers[j].Layer })
	return s, names, nil
}
