package obs

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts the standard runtime/pprof profiles behind the
// CLIs' -cpuprofile/-memprofile flags. Either path may be empty (that
// profile is skipped). The returned stop function ends the CPU profile
// and writes the heap profile (after a GC, so it reflects live memory,
// not garbage); callers must run it on every exit path that should
// produce profiles — a log.Fatal bypasses deferred stops and loses
// them, which is acceptable for an aborted run.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			_ = cpuFile.Close() //iprune:allow-err the profile failed to start and wins; the empty file is abandoned
			return nil, fmt.Errorf("obs: start cpu profile: %w", err)
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = err
			}
		}
		if memPath != "" {
			runtime.GC() // materialize the live heap before snapshotting
			err := WriteFile(memPath, func(w io.Writer) error {
				return pprof.WriteHeapProfile(w)
			})
			if err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
