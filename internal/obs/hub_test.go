package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// deviceRun emits one synthetic power cycle of n op commits into tr,
// stamped in seconds/joules so per-cycle energy and utilization are
// exercised end to end.
func deviceRun(tr Tracer, n int) {
	t := 0.0
	tr.Emit(Event{Kind: KindPowerOn, Time: t, Layer: -1, Op: -1})
	tr.Emit(Event{Kind: KindLayerStart, Time: t, Layer: 0})
	for op := 0; op < n; op++ {
		tr.Emit(Event{Kind: KindOpStart, Time: t, Layer: 0, Op: int64(op)})
		tr.Emit(Event{Kind: KindOpCommit, Time: t, Dur: 0.5, Layer: 0, Op: int64(op), Energy: 1e-6, Read: 64})
		t += 0.5
		tr.Emit(Event{Kind: KindPreserve, Time: t, Layer: 0, Op: int64(op), Write: 32})
	}
	tr.Emit(Event{Kind: KindLayerEnd, Time: t, Dur: t, Layer: 0, Energy: float64(n) * 1e-6})
	tr.Emit(Event{Kind: KindPowerOff, Time: t, Layer: -1, Op: -1})
}

// TestHubConcurrentDevices is the -race workout of the Hub's ownership
// model: many devices emitting concurrently from their own goroutines,
// merged into per-device stats, one fleet rollup and one multi-process
// trace.
func TestHubConcurrentDevices(t *testing.T) {
	const devices, opsEach = 8, 50
	h := NewHub(3)
	devs := make([]*HubDevice, devices)
	for i := range devs {
		devs[i] = h.Device(fmt.Sprintf("dev%d", i), []string{"conv"})
	}
	var wg sync.WaitGroup
	for _, d := range devs {
		wg.Add(1)
		go func(d *HubDevice) {
			defer wg.Done()
			deviceRun(d, opsEach)
		}(d)
	}
	wg.Wait()
	h.Close()

	for _, d := range devs {
		s := d.Stats()
		if s == nil {
			t.Fatalf("%s: no stats after Close", d.Name)
		}
		if s.Total.Ops != opsEach {
			t.Errorf("%s: %d ops, want %d", d.Name, s.Total.Ops, opsEach)
		}
		if len(s.Cycles) != 1 {
			t.Errorf("%s: %d cycles, want 1", d.Name, len(s.Cycles))
		}
		// Per-device event order is emission order (one shard owns each
		// device's buffer).
		evs := d.Events()
		for i := 1; i < len(evs); i++ {
			if evs[i].Time < evs[i-1].Time {
				t.Fatalf("%s: event %d out of order", d.Name, i)
			}
		}
	}

	roll := h.Rollup()
	if got := roll.Counter("run/ops").Value(); got != devices*opsEach {
		t.Errorf("rollup ops = %g, want %d", got, devices*opsEach)
	}
	if got := roll.Counter("run/power_cycles").Value(); got != devices {
		t.Errorf("rollup power cycles = %g, want %d", got, devices)
	}
	// The fleet histogram holds every device's observations, so its
	// quantiles are real tails, not averages of averages.
	var hist *Histogram
	for _, hh := range roll.Histograms() {
		if hh.Name == "layer_latency_s" {
			hist = hh
		}
	}
	if hist == nil || hist.N != devices {
		t.Fatalf("rollup layer_latency_s has N=%v, want %d", hist, devices)
	}

	var buf strings.Builder
	if err := h.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &tr); err != nil {
		t.Fatalf("fleet trace is not valid JSON: %v", err)
	}
	procs := map[string]int{}
	for _, ev := range tr.TraceEvents {
		if ev.Name == "process_name" {
			if n, ok := ev.Args["name"].(string); ok {
				procs[n] = ev.Pid
			}
		}
	}
	pids := map[int]bool{}
	for _, d := range devs {
		pid, ok := procs[d.Name]
		if !ok {
			t.Fatalf("fleet trace missing a section for %s (got %v)", d.Name, procs)
		}
		pids[pid] = true
	}
	if len(pids) != devices {
		t.Errorf("device sections share pids: %v", procs)
	}
}

func TestHubLifecycle(t *testing.T) {
	h := NewHub(0) // clamped to one shard
	d := h.Device("only", nil)
	if !d.Enabled() {
		t.Error("device disabled before Close")
	}
	if err := h.WriteTrace(&strings.Builder{}); err == nil {
		t.Error("WriteTrace before Close must error")
	}
	deviceRun(d, 1)
	h.Close()
	h.Close() // idempotent
	if d.Enabled() {
		t.Error("device still enabled after Close")
	}
	n := len(d.Events())
	d.Emit(Event{Kind: KindOpCommit}) // dropped, not deadlocked
	if len(d.Events()) != n {
		t.Error("emit after Close was not dropped")
	}
	defer func() {
		if recover() == nil {
			t.Error("Device after Close must panic")
		}
	}()
	h.Device("late", nil)
}

// TestHubCloseDrainsBufferedEvents pins that Close is a drain, not a
// discard: every event sent before Close — even ones still sitting in a
// shard channel — is recorded.
func TestHubCloseDrainsBufferedEvents(t *testing.T) {
	h := NewHub(2)
	d := h.Device("drain", nil)
	const n = 100
	for i := 0; i < n; i++ {
		d.Emit(Event{Kind: KindOpCommit, Time: float64(i)})
	}
	h.Close()
	if got := len(d.Events()); got != n {
		t.Fatalf("recorded %d events, want %d (Close dropped buffered sends)", got, n)
	}
	if d.Stats() == nil || d.Metrics() == nil {
		t.Fatal("Stats/Metrics nil after Close")
	}
}

// TestHubEmitAfterCloseDroppedAcrossShards pins the post-Close drop on a
// multi-shard hub: no shard's channel may accept (or block on) a send
// after shutdown, whichever shard the device is pinned to.
func TestHubEmitAfterCloseDroppedAcrossShards(t *testing.T) {
	h := NewHub(4)
	var devs []*HubDevice
	for i := 0; i < 8; i++ { // two devices pinned to each shard
		devs = append(devs, h.Device(string(rune('a'+i)), nil))
	}
	for _, d := range devs {
		deviceRun(d, 2)
	}
	h.Close()
	for _, d := range devs {
		n := len(d.Events())
		d.Emit(Event{Kind: KindFailure}) // must neither panic nor block
		if len(d.Events()) != n {
			t.Fatalf("%s: emit after Close was recorded", d.Name)
		}
	}
}

// TestHubAccessorsNilBeforeClose pins that per-device statistics are a
// Close-time product: reading them mid-run returns nil rather than a
// torn snapshot.
func TestHubAccessorsNilBeforeClose(t *testing.T) {
	h := NewHub(1)
	d := h.Device("early", nil)
	deviceRun(d, 3)
	if d.Stats() != nil || d.Metrics() != nil {
		t.Error("Stats/Metrics non-nil before Close")
	}
	h.Close()
	if d.Stats() == nil || d.Metrics() == nil {
		t.Error("Stats/Metrics nil after Close")
	}
}

// BenchmarkHubEmit measures the producer-side emit path: one guarded
// channel send of a plain value — no lock, no allocation on the
// producer's side.
func BenchmarkHubEmit(b *testing.B) {
	h := NewHub(1)
	d := h.Device("bench", nil)
	ev := Event{Kind: KindOpCommit, Time: 1, Dur: 0.5, Layer: 0, Op: 1, Energy: 1e-6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Emit(ev)
	}
	b.StopTimer()
	h.Close()
}
