package obs

import "sort"

// LayerStat aggregates the events of one layer (or, for Total, the whole
// run). Latency and Energy come from KindLayerEnd events and therefore
// include charging dead-time and recovery incurred inside the layer —
// summing them over all layers reproduces the run's aggregate latency
// and energy exactly.
type LayerStat struct {
	Layer     int   // layer index (-1 for Total)
	Ops       int64 // committed accelerator ops
	Starts    int64 // op attempts issued (Starts-Ops were lost to failures)
	ReExec    int64 // re-executed ops after failures
	Failures  int64 // power failures attributed to the layer
	Preserves int64 // preservation writes
	Latency   float64
	Energy    float64
	Read      int64 // NVM bytes read
	Write     int64 // NVM bytes written
}

// CycleStat is one power cycle: the device-on span ending in a
// power-off, plus the charging dead-time that followed it (0 for the
// final cycle of a run).
type CycleStat struct {
	Start   float64 // power-on time
	OnTime  float64 // powered span
	OffTime float64 // subsequent charging dead-time
	// Energy is the measured draw of the cycle: the sum of op-commit,
	// preserve, recovery and failure event energies stamped inside it.
	// Layer-end events are excluded — they carry rollups of the same
	// draws and would double-count. This is what the budget audit
	// (energy.AuditTrace) checks against the static bounds.
	Energy float64
}

// Utilization returns the fraction of the cycle's wall-clock the device
// was powered.
func (c *CycleStat) Utilization() float64 {
	total := c.OnTime + c.OffTime
	if total <= 0 {
		return 0
	}
	return c.OnTime / total
}

// RunStats is the per-layer / per-power-cycle aggregation of one
// recorded run.
type RunStats struct {
	Layers []LayerStat // sorted by layer index
	Cycles []CycleStat // in time order
	Total  LayerStat   // aggregate over all layers
	Events int         // events collected
}

// Collect aggregates a recorded event stream into per-layer and
// per-power-cycle statistics. Events without a layer of their own
// (power events emitted by the supply simulator) are attributed to the
// layer that was executing when they occurred.
func Collect(events []Event) *RunStats {
	s := &RunStats{Events: len(events)}
	idx := map[int]int{}
	cur := -1
	layer := func(li int) *LayerStat {
		if li < 0 {
			li = cur
		}
		if li < 0 {
			// Events before the first layer boundary: attribute to a
			// catch-all pseudo-layer only if one is ever needed.
			li = -1
		}
		if i, ok := idx[li]; ok {
			return &s.Layers[i]
		}
		idx[li] = len(s.Layers)
		s.Layers = append(s.Layers, LayerStat{Layer: li})
		return &s.Layers[len(s.Layers)-1]
	}
	var cycleStart, cycleEnergy, lastT float64
	inCycle := false
	for i := range events {
		ev := &events[i]
		// Track the run's end time for a trace cut off mid power-cycle.
		// Layer-end stamps its end time directly; span kinds stamp their
		// start, so the span end is Time+Dur.
		if t := ev.Time + ev.Dur; ev.Kind != KindLayerEnd && t > lastT {
			lastT = t
		} else if ev.Kind == KindLayerEnd && ev.Time > lastT {
			lastT = ev.Time
		}
		if inCycle {
			switch ev.Kind {
			case KindOpCommit, KindPreserve, KindRecovery, KindFailure:
				cycleEnergy += ev.Energy
			}
		}
		switch ev.Kind {
		case KindLayerStart:
			cur = ev.Layer
		case KindLayerEnd:
			l := layer(ev.Layer)
			l.Latency += ev.Dur
			l.Energy += ev.Energy
		case KindOpStart:
			layer(ev.Layer).Starts++
		case KindOpCommit:
			l := layer(ev.Layer)
			l.Ops++
			l.Read += ev.Read
			l.Write += ev.Write
		case KindPreserve:
			l := layer(ev.Layer)
			l.Preserves++
			l.Read += ev.Read
			l.Write += ev.Write
		case KindFailure:
			layer(ev.Layer).Failures++
		case KindRecovery:
			layer(ev.Layer).Read += ev.Read
		case KindReExec:
			layer(ev.Layer).ReExec++
		case KindPowerOn:
			cycleStart = ev.Time
			cycleEnergy = 0
			inCycle = true
		case KindPowerOff:
			if inCycle {
				s.Cycles = append(s.Cycles, CycleStat{
					Start:  cycleStart,
					OnTime: ev.Time - cycleStart,
					Energy: cycleEnergy,
				})
				inCycle = false
			}
		case KindCharge:
			if n := len(s.Cycles); n > 0 {
				s.Cycles[n-1].OffTime += ev.Dur
			}
		}
	}
	if inCycle {
		// The trace was cut off mid power-cycle (an aborted run, or a
		// stream truncated by the caller): close the partial cycle at the
		// last stamped event time so its work is still accounted for.
		s.Cycles = append(s.Cycles, CycleStat{
			Start:  cycleStart,
			OnTime: lastT - cycleStart,
			Energy: cycleEnergy,
		})
	}
	sort.Slice(s.Layers, func(i, j int) bool { return s.Layers[i].Layer < s.Layers[j].Layer })
	s.Total.Layer = -1
	for i := range s.Layers {
		l := &s.Layers[i]
		s.Total.Ops += l.Ops
		s.Total.Starts += l.Starts
		s.Total.ReExec += l.ReExec
		s.Total.Failures += l.Failures
		s.Total.Preserves += l.Preserves
		s.Total.Latency += l.Latency
		s.Total.Energy += l.Energy
		s.Total.Read += l.Read
		s.Total.Write += l.Write
	}
	return s
}

// Fill registers the run's statistics in a metrics registry: run-level
// counters plus the per-layer latency/energy, power-cycle-utilization
// and re-execution histograms the paper's analysis calls for.
func (s *RunStats) Fill(m *Metrics) {
	m.Counter("run/ops").AddInt(s.Total.Ops)
	m.Counter("run/op_attempts").AddInt(s.Total.Starts)
	m.Counter("run/reexec_ops").AddInt(s.Total.ReExec)
	m.Counter("run/failures").AddInt(s.Total.Failures)
	m.Counter("run/preserve_writes").AddInt(s.Total.Preserves)
	m.Counter("run/power_cycles").AddInt(int64(len(s.Cycles)))
	m.Counter("run/latency_s").Add(s.Total.Latency)
	m.Counter("run/energy_j").Add(s.Total.Energy)
	m.Counter("run/nvm_read_bytes").AddInt(s.Total.Read)
	m.Counter("run/nvm_write_bytes").AddInt(s.Total.Write)
	if s.Total.Ops > 0 {
		m.Counter("run/reexec_ratio").Add(float64(s.Total.ReExec) / float64(s.Total.Ops))
	}
	lh := m.Histogram("layer_latency_s", LatencyBuckets)
	eh := m.Histogram("layer_energy_j", EnergyBuckets)
	for i := range s.Layers {
		lh.Observe(s.Layers[i].Latency)
		eh.Observe(s.Layers[i].Energy)
	}
	uh := m.Histogram("cycle_utilization", UtilizationBuckets)
	for i := range s.Cycles {
		uh.Observe(s.Cycles[i].Utilization())
	}
}
