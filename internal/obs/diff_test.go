package obs

import (
	"encoding/csv"
	"math"
	"reflect"
	"strings"
	"testing"
)

// diffFixture is the hand-computed two-layer pair: layer 0 halves every
// metric, layer 1 exists only before (pruned away), layer 2 only after.
// Cycles shrink 3 → 2.
func diffFixture() (*RunStats, *RunStats) {
	before := &RunStats{
		Layers: []LayerStat{
			{Layer: 0, Ops: 10, Starts: 12, ReExec: 2, Failures: 2, Preserves: 10, Latency: 2, Energy: 0.004, Read: 1024, Write: 2048},
			{Layer: 1, Ops: 8, Starts: 8, Preserves: 8, Latency: 1, Energy: 0.002, Read: 512, Write: 1024},
		},
		Cycles: make([]CycleStat, 3),
		Total:  LayerStat{Layer: -1, Ops: 18, Starts: 20, ReExec: 2, Failures: 2, Preserves: 18, Latency: 3, Energy: 0.006, Read: 1536, Write: 3072},
	}
	after := &RunStats{
		Layers: []LayerStat{
			{Layer: 0, Ops: 5, Starts: 6, ReExec: 1, Failures: 1, Preserves: 5, Latency: 1, Energy: 0.002, Read: 512, Write: 1024},
			{Layer: 2, Ops: 4, Starts: 4, Preserves: 4, Latency: 0.5, Energy: 0.001, Read: 256, Write: 512},
		},
		Cycles: make([]CycleStat, 2),
		Total:  LayerStat{Layer: -1, Ops: 9, Starts: 10, ReExec: 1, Failures: 1, Preserves: 9, Latency: 1.5, Energy: 0.003, Read: 768, Write: 1536},
	}
	return before, after
}

func TestDiffRunStatsHandComputed(t *testing.T) {
	before, after := diffFixture()
	d := DiffRunStats(before, after)
	if len(d.Layers) != 3 {
		t.Fatalf("got %d layer diffs, want the union of 3 layers", len(d.Layers))
	}
	check := func(name string, got Delta, wantBefore, wantAfter, wantAbs, wantPct float64, wantValid bool) {
		t.Helper()
		if got.Before != wantBefore || got.After != wantAfter {
			t.Errorf("%s: before/after = %g/%g, want %g/%g", name, got.Before, got.After, wantBefore, wantAfter)
		}
		if math.Abs(got.Abs-wantAbs) > 1e-12 {
			t.Errorf("%s: abs = %g, want %g", name, got.Abs, wantAbs)
		}
		if got.PctValid != wantValid {
			t.Errorf("%s: PctValid = %v, want %v", name, got.PctValid, wantValid)
		}
		if wantValid && math.Abs(got.Pct-wantPct) > 1e-12 {
			t.Errorf("%s: pct = %g, want %g", name, got.Pct, wantPct)
		}
	}
	// Layer 0: 10→5 ops is -5 (-50%), 2s→1s latency, 4mJ→2mJ energy,
	// 10→5 preserves, 2→1 re-executions — all hand-checked.
	l0 := d.Layers[0]
	if l0.Layer != 0 {
		t.Fatalf("first diff is layer %d", l0.Layer)
	}
	check("l0.Ops", l0.Ops, 10, 5, -5, -50, true)
	check("l0.Latency", l0.Latency, 2, 1, -1, -50, true)
	check("l0.Energy", l0.Energy, 0.004, 0.002, -0.002, -50, true)
	check("l0.Preserves", l0.Preserves, 10, 5, -5, -50, true)
	check("l0.ReExec", l0.ReExec, 2, 1, -1, -50, true)
	check("l0.Starts", l0.Starts, 12, 6, -6, -50, true)
	check("l0.Failures", l0.Failures, 2, 1, -1, -50, true)
	check("l0.Read", l0.Read, 1024, 512, -512, -50, true)
	check("l0.Write", l0.Write, 2048, 1024, -1024, -50, true)
	// Layer 1 exists only before: diffs to zero, -100%.
	l1 := d.Layers[1]
	if l1.Layer != 1 {
		t.Fatalf("second diff is layer %d", l1.Layer)
	}
	check("l1.Ops", l1.Ops, 8, 0, -8, -100, true)
	check("l1.Latency", l1.Latency, 1, 0, -1, -100, true)
	// Layer 2 exists only after: zero baseline, percent invalid.
	l2 := d.Layers[2]
	if l2.Layer != 2 {
		t.Fatalf("third diff is layer %d", l2.Layer)
	}
	check("l2.Ops", l2.Ops, 0, 4, 4, 0, false)
	check("l2.Energy", l2.Energy, 0, 0.001, 0.001, 0, false)
	// Totals: 18→9 ops (-50%), 3s→1.5s, 6mJ→3mJ; cycles 3→2.
	check("total.Ops", d.Total.Ops, 18, 9, -9, -50, true)
	check("total.Latency", d.Total.Latency, 3, 1.5, -1.5, -50, true)
	check("total.Energy", d.Total.Energy, 0.006, 0.003, -0.003, -50, true)
	check("cycles", d.Cycles, 3, 2, -1, -100.0/3, true)
}

func TestWriteDiffTable(t *testing.T) {
	before, after := diffFixture()
	d := DiffRunStats(before, after)
	var sb strings.Builder
	if err := WriteDiffTable(&sb, d, []string{"conv1", "fc1", "fc2"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"conv1", "fc1", "fc2", "total",
		"2s -> 1s (-50.0%)",   // layer 0 latency
		"4mJ -> 2mJ (-50.0%)", // layer 0 energy
		"10 -> 5 (-50.0%)",    // layer 0 preserves/ops
		"8 -> 0 (-100.0%)",    // layer 1 pruned away
		"0 -> 4 (n/a%)",       // layer 2 zero baseline: no percent
		"power cycles: 3 -> 2 (-33.3%)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff table missing %q:\n%s", want, out)
		}
	}
	// Equal before/after collapses to a single value cell.
	same := DiffRunStats(before, before)
	sb.Reset()
	if err := WriteDiffTable(&sb, same, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "->") {
		t.Errorf("self-diff must not render arrows:\n%s", sb.String())
	}
}

func TestWriteDiffCSV(t *testing.T) {
	before, after := diffFixture()
	d := DiffRunStats(before, after)
	var sb strings.Builder
	if err := WriteDiffCSV(&sb, d, []string{"conv1", "fc1", "fc2"}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	// Header + 9 metrics for each of 3 layers + total.
	if len(rows) != 1+9*4 {
		t.Fatalf("got %d rows, want %d", len(rows), 1+9*4)
	}
	if got := strings.Join(rows[0], ","); got != strings.Join(diffCSVHeader, ",") {
		t.Errorf("header = %q", got)
	}
	cell := map[[2]string][]string{}
	for _, row := range rows[1:] {
		cell[[2]string{row[0], row[2]}] = row
	}
	if row := cell[[2]string{"0", "latency_s"}]; row[3] != "2" || row[4] != "1" || row[5] != "-1" || row[6] != "-50" {
		t.Errorf("layer0 latency row = %v", row)
	}
	if row := cell[[2]string{"2", "ops"}]; row[6] != "" {
		t.Errorf("zero-baseline pct must be empty, got %q", row[6])
	}
	if row := cell[[2]string{"total", "energy_j"}]; row[5] != "-0.003" {
		t.Errorf("total energy delta = %q", row[5])
	}
}

// TestReadStatsCSVRoundTrip pins -compare's loader against WriteCSV: a
// collected run exported and re-imported must diff as a no-op.
func TestReadStatsCSVRoundTrip(t *testing.T) {
	s := Collect(syntheticRun())
	names := []string{"conv1", "fc1"}
	var sb strings.Builder
	if err := WriteCSV(&sb, s, names); err != nil {
		t.Fatal(err)
	}
	got, gotNames, err := ReadStatsCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Layers, s.Layers) {
		t.Errorf("layers round-trip mismatch:\n got %+v\nwant %+v", got.Layers, s.Layers)
	}
	if !reflect.DeepEqual(got.Total, s.Total) {
		t.Errorf("total round-trip mismatch:\n got %+v\nwant %+v", got.Total, s.Total)
	}
	if !reflect.DeepEqual(gotNames, names) {
		t.Errorf("names = %v, want %v", gotNames, names)
	}
	d := DiffRunStats(s, got)
	for _, l := range append(d.Layers, d.Total) {
		if l.Latency.Abs != 0 || l.Ops.Abs != 0 || l.Energy.Abs != 0 {
			t.Errorf("round-trip self-diff not zero at layer %d: %+v", l.Layer, l)
		}
	}
}

func TestReadStatsCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "a,b,c\n",
		"short row":     strings.Join(csvHeader, ",") + "\n0,conv1,1\n",
		"bad int":       strings.Join(csvHeader, ",") + "\n0,conv1,x,0,0,0,0,0,0,0,0\ntotal,,0,0,0,0,0,0,0,0,0\n",
		"bad float":     strings.Join(csvHeader, ",") + "\n0,conv1,0,0,0,0,0,x,0,0,0\ntotal,,0,0,0,0,0,0,0,0,0\n",
		"bad layer idx": strings.Join(csvHeader, ",") + "\nzero,conv1,0,0,0,0,0,0,0,0,0\ntotal,,0,0,0,0,0,0,0,0,0\n",
		"missing total": strings.Join(csvHeader, ",") + "\n0,conv1,0,0,0,0,0,0,0,0,0\n",
	}
	for name, in := range cases {
		if _, _, err := ReadStatsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadStatsCSV accepted malformed input", name)
		}
	}
}
