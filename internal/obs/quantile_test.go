package obs

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{Name: "q", Bounds: []float64{1, 2, 4}, Counts: make([]int64, 4)}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
	// Four observations, one per finite bucket plus one overflow.
	for _, v := range []float64{0.5, 1.5, 3, 10} {
		h.Observe(v)
	}
	cases := []struct{ p, want float64 }{
		{0, 0},    // first bucket interpolates from 0
		{0.25, 1}, // rank 1 lands exactly on the first bound
		{0.5, 2},  // rank 2 on the second bound
		{0.75, 4}, // rank 3 on the third
		{1, 4},    // overflow clamps to the last finite bound
		{-1, 0},   // p clamped into [0,1]
		{2, 4},
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
	// Interpolation inside a bucket: 10 observations in (1,2] put the
	// median in the middle of that bucket's span.
	h2 := &Histogram{Name: "q2", Bounds: []float64{1, 2}, Counts: make([]int64, 3)}
	for i := 0; i < 10; i++ {
		h2.Observe(1.5)
	}
	if got := h2.Quantile(0.5); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("uniform-bucket median = %g, want 1.5", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	bounds := []float64{1, 10}
	a := &Histogram{Name: "m", Bounds: bounds, Counts: make([]int64, 3)}
	b := &Histogram{Name: "m", Bounds: bounds, Counts: make([]int64, 3)}
	a.Observe(0.5)
	b.Observe(5)
	b.Observe(50)
	a.Merge(b)
	if a.N != 3 || math.Abs(a.Sum-55.5) > 1e-12 {
		t.Errorf("merged N=%d Sum=%g, want 3/55.5", a.N, a.Sum)
	}
	for i, want := range []int64{1, 1, 1} {
		if a.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, a.Counts[i], want)
		}
	}
	// b is untouched.
	if b.N != 2 {
		t.Errorf("merge mutated its argument: N=%d", b.N)
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("merging mismatched bounds must panic")
		}
		if !strings.Contains(r.(string), "bounds") && !strings.Contains(r.(string), "bucket") {
			t.Errorf("unexpected panic %v", r)
		}
	}()
	a.Merge(&Histogram{Name: "m", Bounds: []float64{1, 11}, Counts: make([]int64, 3)})
}

func TestMetricsMerge(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Counter("x").Add(2)
	b.Counter("x").Add(3)
	b.Counter("only_b").Add(7)
	b.Histogram("h", []float64{1, 2}).Observe(1.5)
	a.Merge(b)
	if got := a.Counter("x").Value(); got != 5 {
		t.Errorf("merged x = %g, want 5", got)
	}
	if got := a.Counter("only_b").Value(); got != 7 {
		t.Errorf("merged only_b = %g, want 7 (created from other's shape)", got)
	}
	hs := a.Histograms()
	if len(hs) != 1 || hs[0].N != 1 {
		t.Errorf("merged histograms = %v", hs)
	}
}
