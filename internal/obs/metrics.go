package obs

import "sort"

// Counter is a named monotonically-growing metric. Values are float64 so
// one type covers both event counts and integrated seconds/joules; the
// AddInt entry point keeps the float conversion inside this package so
// Q15-pure callers (tile, hawaii) never write float arithmetic.
type Counter struct {
	Name string
	val  float64
}

// Add increases the counter.
func (c *Counter) Add(v float64) { c.val += v }

// AddInt increases the counter by an integer amount.
func (c *Counter) AddInt(v int64) { c.val += float64(v) }

// Value returns the current value.
func (c *Counter) Value() float64 { return c.val }

// Histogram is a fixed-bucket histogram: Bounds[i] is the inclusive
// upper bound of bucket i, and one extra overflow bucket catches
// everything above the last bound. Buckets are fixed at creation so
// observation never allocates.
type Histogram struct {
	Name   string
	Bounds []float64
	Counts []int64 // len(Bounds)+1; the last bucket is overflow
	Sum    float64
	N      int64
}

// Observe records one value.
//
//iprune:hotpath
//iprune:allow-budget the bucket scan is bounded by the histogram's configured bucket count; observability runs on the host, outside the device energy envelope
func (h *Histogram) Observe(v float64) {
	h.Sum += v
	h.N++
	for i, b := range h.Bounds {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// Mean returns the mean of the observed values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Merge folds other's observations into h. Both histograms must share
// the same bucket bounds — merging across shapes would silently
// misattribute counts, so a mismatch panics like a malformed
// registration does.
func (h *Histogram) Merge(other *Histogram) {
	if len(other.Bounds) != len(h.Bounds) {
		panic("obs: cannot merge histograms with different bucket counts: " + h.Name)
	}
	for i, b := range h.Bounds {
		if other.Bounds[i] != b {
			panic("obs: cannot merge histograms with different bucket bounds: " + h.Name)
		}
	}
	for i, cnt := range other.Counts {
		h.Counts[i] += cnt
	}
	h.Sum += other.Sum
	h.N += other.N
}

// Quantile estimates the p-quantile (p in [0,1]) of the observed values
// by linear interpolation inside the bucket holding the target rank,
// Prometheus-style: the first bucket interpolates from 0 (the package's
// grids cover non-negative observables), and a rank landing in the
// overflow bucket reports the last finite bound — the histogram cannot
// see beyond it. Returns 0 when empty.
func (h *Histogram) Quantile(p float64) float64 {
	if h.N == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.N)
	var cum float64
	for i, cnt := range h.Counts {
		prev := cum
		cum += float64(cnt)
		if cum < rank || cnt == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		return lo + (h.Bounds[i]-lo)*(rank-prev)/float64(cnt)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Metrics is a registry of counters and histograms. Lookups are
// get-or-create; enumeration preserves registration order so rendered
// tables are stable.
type Metrics struct {
	counters map[string]*Counter
	hists    map[string]*Histogram
	corder   []string
	horder   []string
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	if c, ok := m.counters[name]; ok {
		return c
	}
	c := &Counter{Name: name}
	m.counters[name] = c
	m.corder = append(m.corder, name)
	return c
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (bounds must be sorted ascending; later
// calls reuse the existing buckets and ignore the argument).
func (m *Metrics) Histogram(name string, bounds []float64) *Histogram {
	if h, ok := m.hists[name]; ok {
		return h
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be sorted ascending: " + name)
	}
	h := &Histogram{
		Name:   name,
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]int64, len(bounds)+1),
	}
	m.hists[name] = h
	m.horder = append(m.horder, name)
	return h
}

// Counters returns all counters in registration order.
func (m *Metrics) Counters() []*Counter {
	out := make([]*Counter, len(m.corder))
	for i, name := range m.corder {
		out[i] = m.counters[name]
	}
	return out
}

// Merge folds every counter and histogram of other into m, creating
// missing entries with other's shape — the fleet-rollup primitive: each
// Hub device fills its own registry and Merge folds them into one.
func (m *Metrics) Merge(other *Metrics) {
	for _, c := range other.Counters() {
		m.Counter(c.Name).Add(c.Value())
	}
	for _, h := range other.Histograms() {
		m.Histogram(h.Name, h.Bounds).Merge(h)
	}
}

// Histograms returns all histograms in registration order.
func (m *Metrics) Histograms() []*Histogram {
	out := make([]*Histogram, len(m.horder))
	for i, name := range m.horder {
		out[i] = m.hists[name]
	}
	return out
}

// Default bucket bounds for the run-level histograms. The simulated
// latencies of the paper's workloads span ~1 ms (continuous) to tens of
// seconds (weak harvest), hence the wide geometric grids.
var (
	// LatencyBuckets covers per-layer latency in seconds.
	LatencyBuckets = []float64{1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 60}
	// EnergyBuckets covers per-layer energy in joules.
	EnergyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}
	// UtilizationBuckets covers power-cycle utilization (active time
	// over cycle wall-clock).
	UtilizationBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
)
