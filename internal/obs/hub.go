package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// hubMsg is one traced event tagged with its emitting device. It is a
// plain value (one pointer, one Event) so a channel send never
// heap-allocates.
type hubMsg struct {
	dev *HubDevice
	ev  Event
}

// hubShard is one event lane of the Hub: a buffered channel drained by
// exactly one owning goroutine, which is the only writer of the event
// buffers of the devices assigned to the lane.
type hubShard struct {
	ch chan hubMsg
}

// Hub is the fleet-level telemetry collector: many concurrently
// simulated devices each get a Tracer from Device, emit into it from
// their own goroutines, and the Hub merges everything into per-device
// run statistics, fleet rollup metrics and one multi-process Chrome
// trace.
//
// Ownership model: state is sharded, not locked. Each device is pinned
// to one shard; each shard's buffered channel is drained by a single
// owning goroutine, which is the only writer of its devices' event
// buffers — emitters never touch shared state, they only send one
// value on a channel, so the emit path allocates nothing and takes no
// lock. Device registration is the only mutex-guarded operation.
//
// Producers own the shutdown edge: Close may only be called after
// every goroutine that emits into the Hub has finished (join them with
// the usual sync.WaitGroup first). Close drains the shards, joins the
// owner goroutines, and freezes per-device statistics; the per-device
// accessors (Stats, Metrics) and the fleet views (Rollup, WriteTrace)
// are valid only after Close.
type Hub struct {
	mu     sync.Mutex
	shards []hubShard
	devs   []*HubDevice
	wg     sync.WaitGroup
	closed atomic.Bool
}

// HubDevice is one device's private lane into the Hub. It implements
// Tracer; hand it to an Engine, CostSim or power.Sim as their trace
// sink.
type HubDevice struct {
	Name string

	hub    *Hub
	shard  *hubShard
	names  []string // layer-name table for trace rendering
	events []Event  // written only by the owning shard goroutine
	stats  *RunStats
	m      *Metrics
}

// NewHub starts a Hub with the given number of shards (lanes drained
// concurrently; one owning goroutine each). shards is clamped to >= 1.
func NewHub(shards int) *Hub {
	if shards < 1 {
		shards = 1
	}
	h := &Hub{shards: make([]hubShard, shards)}
	for i := range h.shards {
		// The buffer absorbs emission bursts; 1024 matches the
		// Recorder's initial capacity.
		h.shards[i].ch = make(chan hubMsg, 1024)
		h.wg.Add(1)
		go h.drain(&h.shards[i])
	}
	return h
}

// drain is the shard's owning goroutine: the sole writer of the event
// buffers of every device pinned to this shard.
func (h *Hub) drain(s *hubShard) {
	defer h.wg.Done()
	for m := range s.ch {
		m.dev.events = append(m.dev.events, m.ev)
	}
}

// Device registers a device and returns its tracer lane. names is the
// device's layer-name table, used when rendering the merged trace.
// Devices are assigned to shards round-robin; all lanes of one device
// land on one shard, so its event order is its emission order.
func (h *Hub) Device(name string, names []string) *HubDevice {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed.Load() {
		panic("obs: Hub.Device after Close")
	}
	d := &HubDevice{
		Name:   name,
		hub:    h,
		shard:  &h.shards[len(h.devs)%len(h.shards)],
		names:  names,
		events: make([]Event, 0, 1024),
	}
	h.devs = append(h.devs, d)
	return d
}

// Enabled implements Tracer.
//
//iprune:hotpath
func (d *HubDevice) Enabled() bool { return !d.hub.closed.Load() }

// Emit implements Tracer: one channel send of a plain value, no lock,
// no allocation. Events emitted after Close are dropped by the Enabled
// guard; racing an Emit against Close violates the Hub's shutdown
// contract (producers must be joined first).
//
//iprune:hotpath
func (d *HubDevice) Emit(ev Event) {
	if !d.hub.closed.Load() {
		d.shard.ch <- hubMsg{dev: d, ev: ev}
	}
}

// Close shuts the Hub down: closes every shard, joins the owner
// goroutines, and freezes per-device statistics and metrics. Idempotent.
// All producers must have finished emitting before Close is called.
func (h *Hub) Close() {
	if h.closed.Swap(true) {
		return
	}
	for i := range h.shards {
		close(h.shards[i].ch)
	}
	h.wg.Wait()
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, d := range h.devs {
		d.stats = Collect(d.events)
		d.m = NewMetrics()
		d.stats.Fill(d.m)
	}
}

// Events returns the device's recorded events. Valid only after Close.
func (d *HubDevice) Events() []Event { return d.events }

// Stats returns the device's collected run statistics (nil before
// Close).
func (d *HubDevice) Stats() *RunStats { return d.stats }

// Metrics returns the device's own metrics registry (nil before Close).
func (d *HubDevice) Metrics() *Metrics { return d.m }

// Devices returns the registered devices in registration order.
func (h *Hub) Devices() []*HubDevice {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*HubDevice(nil), h.devs...)
}

// Rollup merges every device's metrics registry into one fleet-level
// registry: counters add, histograms merge bucket-wise, so the fleet
// view keeps real tails (Histogram.Quantile), not averages of
// averages. Valid only after Close.
func (h *Hub) Rollup() *Metrics {
	m := NewMetrics()
	for _, d := range h.Devices() {
		if d.m != nil {
			m.Merge(d.m)
		}
	}
	return m
}

// WriteTrace renders the whole fleet as one Chrome trace: one process
// section per device (named after it) on the shared time axis. Valid
// only after Close.
func (h *Hub) WriteTrace(w io.Writer) error {
	if !h.closed.Load() {
		return fmt.Errorf("obs: Hub.WriteTrace before Close")
	}
	st := NewStreamTracer(w, nil)
	for _, d := range h.Devices() {
		st.NextProcess(d.Name, d.names)
		for _, ev := range d.events {
			st.Emit(ev)
		}
	}
	return st.Close()
}
