package device

import "testing"

func TestProfileSanity(t *testing.T) {
	p := MSP430FR5994()
	if p.VMBytes != 8*1024 || p.NVMBytes != 512*1024 {
		t.Errorf("memory sizes wrong: VM=%d NVM=%d", p.VMBytes, p.NVMBytes)
	}
	if p.MACTime <= 0 || p.NVMWritePerByte <= 0 || p.BasePower <= 0 {
		t.Error("profile has non-positive constants")
	}
	// The core ratio the paper depends on: writing one Q15 output (2 B)
	// must cost more time than the handful of MACs that produced it.
	writeOne := 2 * p.NVMWritePerByte
	macsPerOutput := 9.0 // conv 3x3 window
	if writeOne <= macsPerOutput*p.MACTime {
		t.Errorf("NVM write (%g) must dominate %g MACs (%g) for intermittent inference to be write-bound",
			writeOne, macsPerOutput, macsPerOutput*p.MACTime)
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	p := MSP430FR5994()
	if p.TransferTime(0, true) <= 0 {
		t.Error("zero-byte transfer still pays invocation overhead")
	}
	if p.TransferTime(100, true) <= p.TransferTime(10, true) {
		t.Error("transfer time must grow with size")
	}
	if p.TransferTime(100, true) <= p.TransferTime(100, false) {
		t.Error("writes are slower than reads in this profile")
	}
}

func TestTransferEnergyOf(t *testing.T) {
	p := MSP430FR5994()
	if p.TransferEnergyOf(100, true) <= p.TransferEnergyOf(100, false) {
		t.Error("write energy per byte exceeds read energy in this profile")
	}
	if p.TransferEnergyOf(0, false) != p.TransferEnergy {
		t.Error("zero-byte transfer energy should equal setup energy")
	}
}

func TestComputeCosts(t *testing.T) {
	p := MSP430FR5994()
	if p.ComputeTime(1000) != 1000*p.MACTime {
		t.Error("ComputeTime not linear")
	}
	if p.ComputeEnergy(1000) != 1000*p.MACEnergy {
		t.Error("ComputeEnergy not linear")
	}
}
