// Package device models the evaluation platform of the paper's Table I:
// a TI MSP430FR5994 MCU with a Low-Energy Accelerator (LEA), 8 KB of
// on-chip SRAM used as volatile memory (VM), and a 512 KB external
// Cypress CY15B104Q FRAM used as nonvolatile memory (NVM), reached
// through DMA-driven SPI transfers.
//
// The profile's latency and energy constants are calibrated to public
// datasheet orders of magnitude (16 MHz core/LEA clock, ~1 MAC/cycle on
// the LEA, SPI FRAM streaming at a fraction of a microsecond per byte,
// single-digit-milliwatt active power). The paper's conclusions rest on
// cost *ratios* — NVM writes dominating intermittent inference, reads and
// MACs dominating continuous inference — and those ratios are what the
// profile reproduces; absolute seconds are not expected to match the
// authors' testbed.
package device

// Profile is a hardware cost model.
type Profile struct {
	Name string

	// Memory capacities.
	VMBytes  int // on-chip SRAM available to the inference engine
	NVMBytes int // external FRAM

	// Timing, in seconds.
	MACTime         float64 // one LEA multiply-accumulate
	OpOverheadTime  float64 // LEA command issue/retire per accelerator op
	DMAInvokeTime   float64 // DMA descriptor setup per transfer
	NVMInvokeTime   float64 // SPI command/address phase per NVM transaction
	NVMReadPerByte  float64 // streaming read, per byte
	NVMWritePerByte float64 // streaming write, per byte
	RebootTime      float64 // power-on reset to engine resume entry

	// Energy, in joules.
	BasePower        float64 // static active power while on (CPU, clocks, leakage)
	MACEnergy        float64 // incremental energy per LEA MAC
	NVMReadEnergyPB  float64 // per byte read
	NVMWriteEnergyPB float64 // per byte written
	TransferEnergy   float64 // per DMA+SPI transaction (setup portion)
	RebootEnergy     float64 // per power-on reset
}

// MSP430FR5994 returns the default profile for the paper's platform.
func MSP430FR5994() Profile {
	return Profile{
		Name:     "TI MSP430FR5994 + LEA + CY15B104Q FRAM",
		VMBytes:  8 * 1024,
		NVMBytes: 512 * 1024,

		MACTime:         62.5e-9, // 1 cycle @ 16 MHz
		OpOverheadTime:  2e-6,    // ~32 cycles LEA command handling
		DMAInvokeTime:   2e-6,
		NVMInvokeTime:   4e-6,   // SPI opcode + 3 address bytes @ 8 MHz
		NVMReadPerByte:  0.5e-6, // 16 Mbit/s SPI streaming
		NVMWritePerByte: 0.6e-6,
		RebootTime:      1e-3,

		BasePower:        3e-3,    // MCU active + board
		MACEnergy:        0.12e-9, // LEA is the efficient path
		NVMReadEnergyPB:  10e-9,
		NVMWriteEnergyPB: 15e-9,
		TransferEnergy:   40e-9,
		RebootEnergy:     5e-6,
	}
}

// TransferTime returns the latency of moving n bytes between VM and NVM
// in one DMA transaction.
func (p *Profile) TransferTime(n int64, write bool) float64 {
	per := p.NVMReadPerByte
	if write {
		per = p.NVMWritePerByte
	}
	return p.DMAInvokeTime + p.NVMInvokeTime + float64(n)*per
}

// TransferEnergyOf returns the energy of moving n bytes in one
// transaction, excluding base power (which is charged per elapsed time).
func (p *Profile) TransferEnergyOf(n int64, write bool) float64 {
	per := p.NVMReadEnergyPB
	if write {
		per = p.NVMWriteEnergyPB
	}
	return p.TransferEnergy + float64(n)*per
}

// ComputeTime returns the latency of macs multiply-accumulates on the
// accelerator, excluding per-op command overhead.
func (p *Profile) ComputeTime(macs int64) float64 {
	return float64(macs) * p.MACTime
}

// ComputeEnergy returns the incremental accelerator energy for macs MACs.
func (p *Profile) ComputeEnergy(macs int64) float64 {
	return float64(macs) * p.MACEnergy
}
