package models

import (
	"math/rand"
	"path/filepath"
	"testing"

	"iprune/internal/dataset"
	"iprune/internal/nn"
	"iprune/internal/quant"
	"iprune/internal/tensor"
	"iprune/internal/tile"
)

func TestLayerCountsMatchTableII(t *testing.T) {
	cases := []struct {
		name           string
		conv, pool, fc int
	}{
		{"SQN", 11, 2, 0},
		{"HAR", 3, 3, 1},
		{"CKS", 2, 0, 3},
	}
	for _, c := range cases {
		net, err := ByName(c.name, 1)
		if err != nil {
			t.Fatal(err)
		}
		counts := net.LayerCounts()
		if counts["CONV"] != c.conv || counts["POOL"] != c.pool || counts["FC"] != c.fc {
			t.Errorf("%s: CONV=%d POOL=%d FC=%d, want %d/%d/%d (Table II)",
				c.name, counts["CONV"], counts["POOL"], counts["FC"], c.conv, c.pool, c.fc)
		}
	}
}

func TestModelSizesNearTableII(t *testing.T) {
	// Paper Table II: SQN 147 KB, HAR 28 KB, CKS 131 KB. Allow 20%.
	want := map[string]int{"SQN": 147, "HAR": 28, "CKS": 131}
	cfg := tile.DefaultConfig()
	for name, kb := range want {
		net, _ := ByName(name, 1)
		specs := tile.SpecsFromNetwork(net, cfg)
		tile.InstallMasks(net, specs)
		m, err := quant.Deploy(net, specs)
		if err != nil {
			t.Fatal(err)
		}
		got := m.SizeBytes() / 1024
		lo, hi := kb*8/10, kb*12/10
		if got < lo || got > hi {
			t.Errorf("%s size = %d KB, want within [%d,%d] (paper %d)", name, got, lo, hi, kb)
		}
	}
}

func TestDiversityOrderingMatchesTableII(t *testing.T) {
	cfg := tile.DefaultConfig()
	div := map[string]float64{}
	label := map[string]string{}
	for _, name := range Names() {
		net, _ := ByName(name, 1)
		specs := tile.SpecsFromNetwork(net, cfg)
		tile.InstallMasks(net, specs)
		jobs := tile.LayerJobs(net, specs, cfg)
		div[name] = tile.Diversity(jobs)
		label[name] = tile.DiversityLabel(div[name])
	}
	if !(div["SQN"] < div["HAR"] && div["HAR"] < div["CKS"]) {
		t.Errorf("diversity ordering SQN<HAR<CKS violated: %v", div)
	}
	if label["SQN"] != "Low" || label["HAR"] != "Medium" || label["CKS"] != "High" {
		t.Errorf("diversity labels = %v, want Low/Medium/High", label)
	}
}

func TestForwardShapes(t *testing.T) {
	for _, name := range Names() {
		net, _ := ByName(name, 1)
		shape, err := InputShape(name)
		if err != nil {
			t.Fatal(err)
		}
		out := net.Forward(tensor.New(shape...))
		if out.Len() != net.Classes {
			t.Errorf("%s: output %d logits, want %d", name, out.Len(), net.Classes)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("resnet50", 1); err == nil {
		t.Error("expected error for unknown model")
	}
	if _, err := InputShape("resnet50"); err == nil {
		t.Error("expected error for unknown shape")
	}
}

func TestModelsFitNVM(t *testing.T) {
	// All three deployed models plus the engine must fit the 512 KB FRAM;
	// individually each must be far below it.
	cfg := tile.DefaultConfig()
	for _, name := range Names() {
		net, _ := ByName(name, 1)
		specs := tile.SpecsFromNetwork(net, cfg)
		tile.InstallMasks(net, specs)
		m, err := quant.Deploy(net, specs)
		if err != nil {
			t.Fatal(err)
		}
		if m.SizeBytes() > 512*1024/2 {
			t.Errorf("%s: %d bytes leaves no room for activations in 512 KB FRAM", name, m.SizeBytes())
		}
	}
}

func TestHARTrainsAboveChance(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	ds := dataset.HAR(dataset.Config{Train: 120, Test: 60, Noise: 0.35}, 1)
	net := HAR(1)
	opt := nn.NewSGD(0.02, 0.9)
	rng := rand.New(rand.NewSource(2))
	for e := 0; e < 6; e++ {
		nn.TrainEpoch(net, ds.Train, opt, 16, rng)
	}
	acc := nn.Accuracy(net, ds.Test)
	if acc < 0.5 {
		t.Errorf("HAR accuracy after 6 epochs = %v, want > 0.5 (chance = 0.17)", acc)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "har.model")
	net := HAR(7)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	net.Prunables()[0].Mask().Keep[1] = false
	net.Prunables()[0].ApplyMask()
	if err := Save(path, net, 7); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range net.Layers {
		for j, p := range l.Params() {
			gp := got.Layers[i].Params()[j]
			for k := range p.Data {
				if p.Data[k] != gp.Data[k] {
					t.Fatalf("layer %d param %d differs after round trip", i, j)
				}
			}
		}
	}
	gm := got.Prunables()[0].Mask()
	if gm == nil || gm.Keep[1] {
		t.Error("mask not restored")
	}
	// Predictions identical.
	x := tensor.New(3, 1, 128)
	for i := range x.Data {
		x.Data[i] = float32(i%7) * 0.1
	}
	if net.Predict(x) != got.Predict(x) {
		t.Error("loaded model predicts differently")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.model")); err == nil {
		t.Error("expected error for missing file")
	}
}
