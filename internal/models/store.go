package models

import (
	"encoding/gob"
	"fmt"
	"os"

	"iprune/internal/nn"
)

// snapshot is the on-disk form of a trained (possibly pruned) model: the
// architecture is reconstructed by the named builder, so only parameters
// and masks are stored.
type snapshot struct {
	Model   string
	Seed    int64
	Params  [][]float32 // every nn.Param of every layer, in network order
	Masks   []maskSnap  // one per prunable layer; Keep nil = no mask
	Version int
}

type maskSnap struct {
	BM, BK int
	Keep   []bool
}

const snapshotVersion = 1

// Save writes the network's parameters and pruning masks to path. The
// network must have been produced by the named builder with the given
// seed so Load can rebuild the architecture.
func Save(path string, net *nn.Network, seed int64) error {
	snap := snapshot{Model: net.Name, Seed: seed, Version: snapshotVersion}
	for _, l := range net.Layers {
		for _, p := range l.Params() {
			snap.Params = append(snap.Params, append([]float32(nil), p.Data...))
		}
	}
	for _, p := range net.Prunables() {
		ms := maskSnap{}
		if m := p.Mask(); m != nil {
			ms.BM, ms.BK = m.BM, m.BK
			ms.Keep = append([]bool(nil), m.Keep...)
		}
		snap.Masks = append(snap.Masks, ms)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("models: save: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(snap); err != nil {
		_ = f.Close() //iprune:allow-err the encode error is the one to surface; the artifact is discarded
		return fmt.Errorf("models: save %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("models: save %s: %w", path, err)
	}
	return nil
}

// Load rebuilds a network from a snapshot written by Save.
func Load(path string) (*nn.Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("models: load: %w", err)
	}
	defer f.Close() //iprune:allow-err read-only close; decode errors are surfaced below
	var snap snapshot
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("models: load %s: %w", path, err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("models: %s has snapshot version %d, want %d", path, snap.Version, snapshotVersion)
	}
	net, err := ByName(snap.Model, snap.Seed)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, l := range net.Layers {
		for _, p := range l.Params() {
			if idx >= len(snap.Params) || len(snap.Params[idx]) != len(p.Data) {
				return nil, fmt.Errorf("models: %s: parameter %d shape mismatch", path, idx)
			}
			copy(p.Data, snap.Params[idx])
			idx++
		}
	}
	if idx != len(snap.Params) {
		return nil, fmt.Errorf("models: %s: %d stored parameters, consumed %d", path, len(snap.Params), idx)
	}
	prunables := net.Prunables()
	if len(snap.Masks) != len(prunables) {
		return nil, fmt.Errorf("models: %s: %d masks for %d prunable layers", path, len(snap.Masks), len(prunables))
	}
	for i, ms := range snap.Masks {
		if ms.Keep == nil {
			continue
		}
		prunables[i].InitBlocks(ms.BM, ms.BK)
		m := prunables[i].Mask()
		if len(m.Keep) != len(ms.Keep) {
			return nil, fmt.Errorf("models: %s: mask %d has %d blocks, want %d", path, i, len(ms.Keep), len(m.Keep))
		}
		copy(m.Keep, ms.Keep)
		prunables[i].ApplyMask()
	}
	return net, nil
}
