// Package models defines the three TinyML networks of the paper's
// Table II, sized to match the reported footprints when quantized to
// 16-bit weights:
//
//	SQN — image recognition, 11 CONV + 2 POOL, ~147 KB, SqueezeNet-style
//	      squeeze/expand pairs on 3×32×32 inputs, 10 classes;
//	HAR — human-activity detection, 3 CONV + 3 POOL + 1 FC, ~28 KB,
//	      1-D convolutions over 3-axis × 128-step windows, 6 classes;
//	CKS — speech keyword spotting, 2 CONV + 3 FC, ~131 KB, over 10×49
//	      MFCC maps, 12 classes.
//
// The architectures also reproduce Table II's layer-diversity ordering:
// SQN's fire modules give similar per-layer accelerator-output counts
// (low diversity), HAR mixes mid-size convolutions with one FC (medium),
// and CKS concentrates almost all accelerator outputs in its second
// convolution while its FCs hold most of the weights (high diversity).
package models

import (
	"fmt"
	"math/rand"

	"iprune/internal/nn"
	"iprune/internal/tensor"
)

// conv is a small helper for building padded square-kernel conv layers.
func conv(name string, rng *rand.Rand, inC, inH, inW, outC, k, pad int) *nn.Conv2D {
	return nn.NewConv2D(name, tensor.ConvGeom{
		InC: inC, InH: inH, InW: inW, OutC: outC,
		KH: k, KW: k, StrideH: 1, StrideW: 1, PadH: pad, PadW: pad,
	}, rng)
}

// SQN builds the image-recognition network (11 CONV, 2 POOL).
func SQN(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	n := nn.NewNetwork("SQN", 10)
	// conv1 + pool: 3×32×32 → 16×16×16.
	n.Add(conv("conv1", rng, 3, 32, 32, 16, 3, 1)).Add(nn.NewReLU("relu1"))
	n.Add(nn.NewMaxPool2D("pool1", 16, 32, 32, 2, 2))
	// Fire modules at 16×16: squeeze (1×1) then expand (3×3).
	n.Add(conv("fire1_sq", rng, 16, 16, 16, 8, 1, 0)).Add(nn.NewReLU("relu2"))
	n.Add(conv("fire1_ex", rng, 8, 16, 16, 20, 3, 1)).Add(nn.NewReLU("relu3"))
	n.Add(conv("fire2_sq", rng, 20, 16, 16, 12, 1, 0)).Add(nn.NewReLU("relu4"))
	n.Add(conv("fire2_ex", rng, 12, 16, 16, 28, 3, 1)).Add(nn.NewReLU("relu5"))
	n.Add(nn.NewMaxPool2D("pool2", 28, 16, 16, 2, 2))
	// Fire modules at 8×8.
	n.Add(conv("fire3_sq", rng, 28, 8, 8, 20, 1, 0)).Add(nn.NewReLU("relu6"))
	n.Add(conv("fire3_ex", rng, 20, 8, 8, 48, 3, 1)).Add(nn.NewReLU("relu7"))
	n.Add(conv("fire4_sq", rng, 48, 8, 8, 32, 1, 0)).Add(nn.NewReLU("relu8"))
	n.Add(conv("fire4_ex", rng, 32, 8, 8, 72, 3, 1)).Add(nn.NewReLU("relu9"))
	// Head: one 3×3 feature conv and the 1×1 classifier conv, then GAP.
	n.Add(conv("conv10", rng, 72, 8, 8, 56, 3, 1)).Add(nn.NewReLU("relu10"))
	n.Add(conv("conv11", rng, 56, 8, 8, 10, 1, 0))
	n.Add(nn.NewGlobalAvgPool("gap", 10, 8, 8))
	return n
}

// HAR builds the activity-detection network (3 CONV, 3 POOL, 1 FC) over
// 3×1×128 accelerometer windows.
func HAR(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	n := nn.NewNetwork("HAR", 6)
	c1 := nn.NewConv2D("conv1", tensor.ConvGeom{
		InC: 3, InH: 1, InW: 128, OutC: 12,
		KH: 1, KW: 9, StrideH: 1, StrideW: 1, PadW: 4,
	}, rng)
	n.Add(c1).Add(nn.NewReLU("relu1"))
	n.Add(nn.NewMaxPool2DRect("pool1", 12, 1, 128, 1, 2, 1, 2))
	c2 := nn.NewConv2D("conv2", tensor.ConvGeom{
		InC: 12, InH: 1, InW: 64, OutC: 20,
		KH: 1, KW: 9, StrideH: 1, StrideW: 1, PadW: 4,
	}, rng)
	n.Add(c2).Add(nn.NewReLU("relu2"))
	n.Add(nn.NewMaxPool2DRect("pool2", 20, 1, 64, 1, 2, 1, 2))
	c3 := nn.NewConv2D("conv3", tensor.ConvGeom{
		InC: 20, InH: 1, InW: 32, OutC: 48,
		KH: 1, KW: 9, StrideH: 1, StrideW: 1, PadW: 4,
	}, rng)
	n.Add(c3).Add(nn.NewReLU("relu3"))
	n.Add(nn.NewMaxPool2DRect("pool3", 48, 1, 32, 1, 2, 1, 2))
	n.Add(nn.NewFlatten("flat"))
	n.Add(nn.NewFC("fc1", 48*16, 6, rng))
	return n
}

// CKS builds the keyword-spotting network (2 CONV, 3 FC) over 1×10×49
// MFCC maps.
func CKS(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	n := nn.NewNetwork("CKS", 12)
	c1 := nn.NewConv2D("conv1", tensor.ConvGeom{
		InC: 1, InH: 10, InW: 49, OutC: 48,
		KH: 8, KW: 4, StrideH: 1, StrideW: 1,
	}, rng) // out 48×3×46
	n.Add(c1).Add(nn.NewReLU("relu1"))
	c2 := nn.NewConv2D("conv2", tensor.ConvGeom{
		InC: 48, InH: 3, InW: 46, OutC: 32,
		KH: 3, KW: 4, StrideH: 1, StrideW: 1,
	}, rng) // out 32×1×43
	n.Add(c2).Add(nn.NewReLU("relu2"))
	n.Add(nn.NewFlatten("flat"))
	n.Add(nn.NewFC("fc1", 32*43, 32, rng)).Add(nn.NewReLU("relu3"))
	n.Add(nn.NewFC("fc2", 32, 16, rng)).Add(nn.NewReLU("relu4"))
	n.Add(nn.NewFC("fc3", 16, 12, rng))
	return n
}

// Names lists the available model builders in paper order.
func Names() []string { return []string{"SQN", "HAR", "CKS"} }

// ByName builds a model by its Table II name.
func ByName(name string, seed int64) (*nn.Network, error) {
	switch name {
	case "SQN":
		return SQN(seed), nil
	case "HAR":
		return HAR(seed), nil
	case "CKS":
		return CKS(seed), nil
	default:
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
}

// InputShape returns the model's expected input tensor shape.
func InputShape(name string) ([]int, error) {
	switch name {
	case "SQN":
		return []int{3, 32, 32}, nil
	case "HAR":
		return []int{3, 1, 128}, nil
	case "CKS":
		return []int{1, 10, 49}, nil
	default:
		return nil, fmt.Errorf("models: unknown model %q", name)
	}
}
