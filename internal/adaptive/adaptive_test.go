package adaptive

import (
	"testing"

	"iprune/internal/core"
	"iprune/internal/models"
	"iprune/internal/tile"
)

// variantsForTest builds three HAR variants at increasing one-shot prune
// depth (accuracy labels are synthetic: deeper prune, lower accuracy).
func variantsForTest(t *testing.T) []Variant {
	t.Helper()
	var out []Variant
	for i, ratio := range []float64{0, 0.3, 0.6} {
		net := models.HAR(1)
		cfg := tile.DefaultConfig()
		specs := tile.SpecsFromNetwork(net, cfg)
		tile.InstallMasks(net, specs)
		if ratio > 0 {
			core.OneShotBlocks(net, ratio)
		}
		out = append(out, Variant{
			Name:     []string{"full", "mid", "small"}[i],
			Net:      net,
			Accuracy: 0.95 - 0.05*float64(i),
		})
	}
	return out
}

func TestSelectorOrdersByAccuracy(t *testing.T) {
	s, err := NewSelector(variantsForTest(t))
	if err != nil {
		t.Fatal(err)
	}
	vs := s.Variants()
	for i := 1; i < len(vs); i++ {
		if vs[i].Accuracy > vs[i-1].Accuracy {
			t.Fatal("variants not sorted by accuracy")
		}
	}
}

func TestEstimateMonotoneInPruning(t *testing.T) {
	s, err := NewSelector(variantsForTest(t))
	if err != nil {
		t.Fatal(err)
	}
	// Under fixed power, deeper pruning (lower accuracy rank) is faster.
	const p = 6e-3
	for i := 1; i < len(s.Variants()); i++ {
		if s.Estimate(i, p) >= s.Estimate(i-1, p) {
			t.Errorf("variant %d not faster than %d", i, i-1)
		}
	}
}

func TestPickPrefersAccuracyWhenPowerIsPlentiful(t *testing.T) {
	s, err := NewSelector(variantsForTest(t))
	if err != nil {
		t.Fatal(err)
	}
	d := s.Pick(2.0 /* continuous-class power */, 10.0 /* generous deadline */)
	if !d.Met || d.Index != 0 {
		t.Errorf("plentiful power should pick the most accurate variant: %+v", d)
	}
}

func TestPickDegradesUnderWeakPower(t *testing.T) {
	s, err := NewSelector(variantsForTest(t))
	if err != nil {
		t.Fatal(err)
	}
	// Find a deadline the full model misses at 4 mW but a pruned one meets.
	full := s.Estimate(0, 4e-3)
	small := s.Estimate(len(s.Variants())-1, 4e-3)
	if small >= full {
		t.Fatal("test premise broken: pruned variant not faster")
	}
	deadline := (small + full) / 2
	d := s.Pick(4e-3, deadline)
	if !d.Met {
		t.Fatalf("deadline %v should be achievable: %+v", deadline, d)
	}
	if d.Index == 0 {
		t.Error("weak power should have forced a pruned variant")
	}
}

func TestPickFallsBackToFastest(t *testing.T) {
	s, err := NewSelector(variantsForTest(t))
	if err != nil {
		t.Fatal(err)
	}
	d := s.Pick(4e-3, 1e-9) // impossible deadline
	if d.Met {
		t.Fatal("impossible deadline reported as met")
	}
	lastIdx := len(s.Variants()) - 1
	if d.Index != lastIdx {
		t.Errorf("fallback picked %d, want fastest %d", d.Index, lastIdx)
	}
}

func TestNewSelectorValidates(t *testing.T) {
	if _, err := NewSelector(nil); err == nil {
		t.Error("expected error for empty variant set")
	}
}
