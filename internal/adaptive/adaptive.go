// Package adaptive implements environment-adaptive model switching in
// the spirit of EVE (Islam et al., ICCAD 2022 — reference [8] of the
// paper): the deployment keeps several pruned variants of one network at
// different compression levels and, at run time, picks the most accurate
// variant whose expected intermittent inference latency meets a deadline
// under the currently harvested power.
//
// iPrune makes the variants; this package makes the choice. The latency
// estimates come from the same event-driven cost simulator the rest of
// the repository uses, so the switch decision and the evaluation agree
// by construction.
package adaptive

import (
	"fmt"
	"math"
	"sort"

	"iprune/internal/hawaii"
	"iprune/internal/nn"
	"iprune/internal/power"
	"iprune/internal/tile"
)

// Variant is one deployable model in the switchable set.
type Variant struct {
	Name     string
	Net      *nn.Network
	Accuracy float64 // measured accuracy of the variant
	schedule []hawaii.Op
}

// Selector picks variants by harvested power.
type Selector struct {
	cfg      tile.Config
	sim      *hawaii.CostSim
	variants []Variant
}

// NewSelector builds a selector over the given variants (at least one).
// Variants are deployed with the default engine configuration; their op
// schedules are precomputed once.
func NewSelector(variants []Variant) (*Selector, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("adaptive: no variants")
	}
	cfg := tile.DefaultConfig()
	s := &Selector{cfg: cfg, sim: hawaii.NewCostSim(cfg)}
	for _, v := range variants {
		specs := tile.SpecsFromNetwork(v.Net, cfg)
		for i, p := range v.Net.Prunables() {
			if p.Mask() == nil {
				p.InitBlocks(specs[i].TM, specs[i].TK)
			}
		}
		v.schedule = hawaii.ScheduleFromNetwork(v.Net, specs, tile.Intermittent, cfg)
		if len(v.schedule) == 0 {
			return nil, fmt.Errorf("adaptive: variant %s has an empty schedule", v.Name)
		}
		s.variants = append(s.variants, v)
	}
	// Most accurate first, so Pick can return the first that fits.
	sort.SliceStable(s.variants, func(a, b int) bool {
		return s.variants[a].Accuracy > s.variants[b].Accuracy
	})
	return s, nil
}

// Estimate returns the simulated end-to-end latency of variant i under
// the given harvested power (deterministic: jitter disabled so the
// decision is reproducible). A variant that cannot complete under the
// supply — an op exceeds the buffer — estimates as +Inf, so Pick never
// selects it while any completing variant exists.
func (s *Selector) Estimate(i int, harvestWatts float64) float64 {
	sup := power.Supply{Name: "estimate", Power: harvestWatts}
	if harvestWatts >= 1 {
		sup.Continuous = true
	}
	res, err := s.sim.Run(s.variants[i].schedule, tile.Intermittent, sup, 1)
	if err != nil {
		return math.Inf(1)
	}
	return res.Latency
}

// Decision reports what Pick chose and why.
type Decision struct {
	Variant  *Variant
	Index    int
	Latency  float64 // estimated seconds under the given power
	Deadline float64
	Met      bool // false: nothing met the deadline, fastest returned
}

// Pick returns the most accurate variant whose estimated latency under
// the given harvested power meets the deadline. If none fits, the
// fastest variant is returned with Met=false — degraded service beats
// none on a battery-less node.
func (s *Selector) Pick(harvestWatts, deadline float64) Decision {
	bestIdx, bestLat := -1, 0.0
	for i := range s.variants {
		lat := s.Estimate(i, harvestWatts)
		if lat <= deadline {
			return Decision{Variant: &s.variants[i], Index: i, Latency: lat, Deadline: deadline, Met: true}
		}
		if bestIdx < 0 || lat < bestLat {
			bestIdx, bestLat = i, lat
		}
	}
	return Decision{Variant: &s.variants[bestIdx], Index: bestIdx, Latency: bestLat, Deadline: deadline, Met: false}
}

// Variants exposes the selector's ordered variant list (most accurate
// first).
func (s *Selector) Variants() []Variant { return s.variants }
