package compress

import (
	"math/rand"
	"testing"

	"iprune/internal/nn"
	"iprune/internal/tensor"
	"iprune/internal/tile"
)

func buildNet(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	n := nn.NewNetwork("c", 4)
	n.Add(nn.NewConv2D("c1", tensor.ConvGeom{InC: 2, InH: 8, InW: 8, OutC: 6, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, rng))
	n.Add(nn.NewReLU("r"))
	n.Add(nn.NewFlatten("f"))
	n.Add(nn.NewFC("fc", 6*8*8, 4, rng))
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(n, cfg)
	tile.InstallMasks(n, specs)
	return n
}

func TestShareReducesDistinctValues(t *testing.T) {
	net := buildNet(1)
	res, err := Share(net, 4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range net.Prunables() {
		w, _, _ := p.WeightMatrix()
		distinct := map[float32]bool{}
		for _, v := range w {
			if v != 0 {
				distinct[v] = true
			}
		}
		if len(distinct) > 16 {
			t.Errorf("%s: %d distinct values after 4-bit sharing", p.Name(), len(distinct))
		}
	}
	if res.MeanSquaredError <= 0 {
		t.Error("MSE should be positive for real weights")
	}
	if len(res.Codebooks) != 2 {
		t.Errorf("codebooks = %d, want 2", len(res.Codebooks))
	}
}

func TestShareMSEShrinksWithBits(t *testing.T) {
	coarse, err := Share(buildNet(2), 2, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Share(buildNet(2), 6, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fine.MeanSquaredError >= coarse.MeanSquaredError {
		t.Errorf("6-bit MSE %g >= 2-bit MSE %g", fine.MeanSquaredError, coarse.MeanSquaredError)
	}
}

func TestSharePreservesPrunedZeros(t *testing.T) {
	net := buildNet(3)
	p := net.Prunables()[0]
	p.Mask().Keep[0] = false
	p.ApplyMask()
	if _, err := Share(net, 4, 10, 1); err != nil {
		t.Fatal(err)
	}
	w, _, cols := p.WeightMatrix()
	r0, r1, c0, c1 := p.Mask().BlockBounds(0)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			if w[r*cols+c] != 0 {
				t.Fatal("sharing resurrected a pruned weight")
			}
		}
	}
}

func TestShareDoesNotChangeJobs(t *testing.T) {
	// The extension's headline: weight sharing shrinks storage but not
	// the accelerator-output count (intermittent latency driver).
	net := buildNet(4)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	before := tile.CountNetwork(net, specs, tile.Intermittent, cfg).Jobs
	if _, err := Share(net, 4, 10, 1); err != nil {
		t.Fatal(err)
	}
	after := tile.CountNetwork(net, specs, tile.Intermittent, cfg).Jobs
	if before != after {
		t.Errorf("sharing changed jobs %d -> %d", before, after)
	}
}

func TestShareAccuracyDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := buildNet(5)
	var samples []nn.Sample
	for i := 0; i < 40; i++ {
		label := i % 4
		x := tensor.New(2, 8, 8)
		for j := range x.Data {
			x.Data[j] = float32(rng.NormFloat64()*0.3) + float32(label)*0.5 - 1
		}
		samples = append(samples, nn.Sample{X: x, Label: label})
	}
	opt := nn.NewSGD(0.05, 0.9)
	for e := 0; e < 6; e++ {
		nn.TrainEpoch(net, samples, opt, 8, rng)
	}
	base := nn.Accuracy(net, samples)
	if base < 0.9 {
		t.Skipf("training failed (%v); nothing to test", base)
	}
	if _, err := Share(net, 5, 10, 1); err != nil {
		t.Fatal(err)
	}
	shared := nn.Accuracy(net, samples)
	if base-shared > 0.15 {
		t.Errorf("5-bit sharing lost %.3f accuracy", base-shared)
	}
}

func TestSizeBytesSmallerThanDense(t *testing.T) {
	net := buildNet(6)
	res, err := Share(net, 4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	dense := 2 * net.TotalWeights() // Q15 bytes
	sharedSize := SizeBytes(net, res, 0)
	if sharedSize >= dense {
		t.Errorf("shared size %d >= dense %d", sharedSize, dense)
	}
}

func TestShareValidation(t *testing.T) {
	net := buildNet(7)
	if _, err := Share(net, 0, 10, 1); err == nil {
		t.Error("expected error for 0 bits")
	}
	if _, err := Share(net, 16, 10, 1); err == nil {
		t.Error("expected error for 16 bits")
	}
	if _, err := Share(net, 4, 0, 1); err == nil {
		t.Error("expected error for 0 iters")
	}
}

func TestShareDeterministic(t *testing.T) {
	a := buildNet(8)
	b := buildNet(8)
	if _, err := Share(a, 4, 10, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := Share(b, 4, 10, 9); err != nil {
		t.Fatal(err)
	}
	wa, _, _ := a.Prunables()[0].WeightMatrix()
	wb, _, _ := b.Prunables()[0].WeightMatrix()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("sharing not deterministic for same seed")
		}
	}
}
