// Package compress implements weight sharing (k-means weight clustering),
// one of the compression techniques the paper's conclusion proposes
// adapting to intermittent systems ("matrix decomposition and weight
// sharing").
//
// Weight sharing replaces each layer's weights with entries from a small
// shared codebook, shrinking the stored model to per-weight codebook
// indices plus the codebook itself. Crucially — and this is the point the
// ablation benches make — sharing reduces *model size* but leaves the
// accelerator-operation schedule untouched: every block still computes,
// every output is still preserved to NVM, so intermittent inference
// latency barely moves. Pruning and sharing therefore compose: prune to
// cut accelerator outputs, then share to cut the residual storage.
package compress

import (
	"fmt"
	"math"
	"math/rand"

	"iprune/internal/nn"
)

// Codebook is one layer's shared-weight dictionary.
type Codebook struct {
	Layer     string
	Centroids []float32
	Bits      int // index width per weight
}

// Result describes a weight-sharing pass over a network.
type Result struct {
	Codebooks []Codebook
	// MeanSquaredError is the average squared weight perturbation
	// introduced by sharing, over all clustered weights.
	MeanSquaredError float64
}

// Share clusters every prunable layer's nonzero weights into 2^bits
// shared values (k-means, kmeans++ seeding) and rewrites the weights in
// place. Pruned (masked) weights stay zero and are excluded from
// clustering. Returns the codebooks for size accounting.
func Share(net *nn.Network, bits, iters int, seed int64) (*Result, error) {
	if bits < 1 || bits > 12 {
		return nil, fmt.Errorf("compress: bits %d out of range [1,12]", bits)
	}
	if iters < 1 {
		return nil, fmt.Errorf("compress: iters must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	res := &Result{}
	var sse float64
	var count int
	for _, p := range net.Prunables() {
		w, _, _ := p.WeightMatrix()
		var nz []float32
		for _, v := range w {
			if v != 0 {
				nz = append(nz, v)
			}
		}
		k := 1 << bits
		if len(nz) == 0 {
			res.Codebooks = append(res.Codebooks, Codebook{Layer: p.Name(), Bits: bits})
			continue
		}
		if k > len(nz) {
			k = len(nz)
		}
		centroids := kmeans(nz, k, iters, rng)
		for i, v := range w {
			if v == 0 {
				continue
			}
			c := nearest(centroids, v)
			d := float64(v - centroids[c])
			sse += d * d
			count++
			w[i] = centroids[c]
		}
		p.ApplyMask()
		res.Codebooks = append(res.Codebooks, Codebook{Layer: p.Name(), Centroids: centroids, Bits: bits})
	}
	if count > 0 {
		res.MeanSquaredError = sse / float64(count)
	}
	return res, nil
}

// SizeBytes estimates the stored size of a shared model: per nonzero
// weight one bits-wide index, plus each codebook at 2 bytes per centroid
// (Q15), plus the BSR index arrays which sharing does not change.
func SizeBytes(net *nn.Network, res *Result, bsrIndexBytes int) int {
	totalBits := 0
	for _, p := range net.Prunables() {
		w, _, _ := p.WeightMatrix()
		nz := 0
		for _, v := range w {
			if v != 0 {
				nz++
			}
		}
		totalBits += nz * res.Codebooks[0].Bits
	}
	codebookBytes := 0
	for _, cb := range res.Codebooks {
		codebookBytes += 2 * len(cb.Centroids)
	}
	return (totalBits+7)/8 + codebookBytes + bsrIndexBytes
}

// kmeans clusters 1-D values with kmeans++ seeding.
func kmeans(vals []float32, k, iters int, rng *rand.Rand) []float32 {
	centroids := seedPlusPlus(vals, k, rng)
	assign := make([]int, len(vals))
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range vals {
			c := nearest(centroids, v)
			if assign[i] != c {
				assign[i] = c
				changed = true
			}
		}
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, v := range vals {
			sums[assign[i]] += float64(v)
			counts[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				centroids[c] = float32(sums[c] / float64(counts[c]))
			}
		}
		if !changed && it > 0 {
			break
		}
	}
	return centroids
}

// seedPlusPlus picks k initial centroids with distance-squared weighting.
func seedPlusPlus(vals []float32, k int, rng *rand.Rand) []float32 {
	centroids := make([]float32, 0, k)
	centroids = append(centroids, vals[rng.Intn(len(vals))])
	d2 := make([]float64, len(vals))
	for len(centroids) < k {
		var total float64
		for i, v := range vals {
			d := math.Inf(1)
			for _, c := range centroids {
				dd := float64(v-c) * float64(v-c)
				if dd < d {
					d = dd
				}
			}
			d2[i] = d
			total += d
		}
		if total == 0 {
			// All remaining points coincide with centroids; pad with
			// copies (harmless: empty clusters keep their value).
			centroids = append(centroids, centroids[0])
			continue
		}
		r := rng.Float64() * total
		for i := range vals {
			r -= d2[i]
			if r <= 0 {
				centroids = append(centroids, vals[i])
				break
			}
		}
		if r > 0 {
			centroids = append(centroids, vals[len(vals)-1])
		}
	}
	return centroids
}

func nearest(centroids []float32, v float32) int {
	best, bestD := 0, math.Inf(1)
	for c, cv := range centroids {
		d := float64(v-cv) * float64(v-cv)
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
