package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the evaluation results as tidy CSV (one row per
// app × variant × supply) for external plotting.
func WriteCSV(w io.Writer, results []*AppResult) error {
	cw := csv.NewWriter(w)
	header := []string{
		"app", "variant", "supply",
		"accuracy_q15", "size_bytes", "macs", "acc_outputs",
		"latency_s", "active_s", "charging_s", "energy_j", "power_cycles",
		"read_s", "write_s", "compute_s", "recovery_s",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("report: csv: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, r := range results {
		for _, v := range r.Variants {
			for _, sup := range Supplies() {
				lat := v.Latency[sup.Name]
				row := []string{
					r.App, v.Name, sup.Name,
					f(v.AccuracyQ), strconv.Itoa(v.SizeBytes),
					strconv.FormatInt(v.Counts.MACs, 10),
					strconv.FormatInt(v.Counts.Jobs, 10),
					f(lat.Latency), f(lat.ActiveTime), f(lat.OffTime),
					f(lat.Energy), strconv.Itoa(lat.Failures),
					f(lat.Break.ReadTime), f(lat.Break.WriteTime),
					f(lat.Break.ComputeTime), f(lat.Break.RecoveryTime),
				}
				if err := cw.Write(row); err != nil {
					return fmt.Errorf("report: csv: %w", err)
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
