package report

import (
	"encoding/json"
	"strings"
	"testing"

	"iprune/internal/hawaii"
	"iprune/internal/models"
	"iprune/internal/tile"
)

func TestLoadDataScalesSplits(t *testing.T) {
	for _, app := range models.Names() {
		q, err := LoadData(app, Quick, 1)
		if err != nil {
			t.Fatal(err)
		}
		f, err := LoadData(app, Full, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(q.Train) >= len(f.Train) {
			t.Errorf("%s: quick train %d >= full %d", app, len(q.Train), len(f.Train))
		}
	}
	if _, err := LoadData("nope", Quick, 1); err == nil {
		t.Error("expected error for unknown app")
	}
}

func TestTrainHARQuickReachesTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("training")
	}
	ds, err := LoadData("HAR", Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	_, acc, err := Train("HAR", ds, Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.75 {
		t.Errorf("HAR quick accuracy %.3f, want >= 0.75", acc)
	}
}

func TestFig2BreakdownShape(t *testing.T) {
	conv, inter, err := Fig2Breakdown("HAR", Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's motivating observation must hold in the simulator.
	if inter.Break.WriteTime <= conv.Break.WriteTime {
		t.Error("intermittent discipline must write more than the conventional flow")
	}
	if conv.Break.WriteTime >= conv.Break.ReadTime+conv.Break.ComputeTime {
		t.Error("conventional flow must be read/compute dominated")
	}
	out := RenderFig2("HAR", conv, inter)
	if !strings.Contains(out, "FIGURE 2") || !strings.Contains(out, "NVM-write") {
		t.Error("RenderFig2 output malformed")
	}
}

func TestRenderTable1MentionsPlatform(t *testing.T) {
	out := RenderTable1()
	for _, want := range []string{"MSP430FR5994", "8 KB SRAM", "512 KB FRAM", "2.8 V", "100 uF"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

// fakeResults builds a minimal AppResult set for render tests without
// running the training pipeline.
func fakeResults(t *testing.T) []*AppResult {
	t.Helper()
	var out []*AppResult
	cfg := tile.DefaultConfig()
	for _, app := range models.Names() {
		net, err := models.ByName(app, 1)
		if err != nil {
			t.Fatal(err)
		}
		specs := tile.SpecsFromNetwork(net, cfg)
		tile.InstallMasks(net, specs)
		counts := tile.CountNetwork(net, specs, tile.Intermittent, cfg)
		r := &AppResult{App: app, Specs: specs, Diversity: tile.Diversity(tile.LayerJobs(net, specs, cfg))}
		for i, name := range []string{"Unpruned", "ePrune", "iPrune"} {
			r.Variants = append(r.Variants, Variant{
				Name: name, Net: net,
				AccuracyQ: 0.9, SizeBytes: 1024 * (100 - 10*i), Counts: counts,
				Latency: map[string]hawaii.Result{
					"continuous": {Latency: 1.0 / float64(i+1)},
					"strong":     {Latency: 2.0 / float64(i+1)},
					"weak":       {Latency: 4.0 / float64(i+1)},
				},
			})
		}
		out = append(out, r)
	}
	return out
}

func TestRenderTables(t *testing.T) {
	results := fakeResults(t)
	t2 := RenderTable2(results)
	for _, want := range []string{"SQN", "HAR", "CKS", "CONV x 11", "Diversity"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
	t3 := RenderTable3(results)
	for _, want := range []string{"Unpruned", "ePrune", "iPrune", "Accuracy"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table III missing %q", want)
		}
	}
	f5 := RenderFig5(results)
	if !strings.Contains(f5, "speedup") || !strings.Contains(f5, "weak") {
		t.Error("Figure 5 output malformed")
	}
	lt := RenderLayerTable(results[0])
	if !strings.Contains(lt, "conv1") {
		t.Error("layer table missing layers")
	}
}

func TestPaperReferenceComplete(t *testing.T) {
	for _, app := range models.Names() {
		if _, ok := PaperTable2[app]; !ok {
			t.Errorf("PaperTable2 missing %s", app)
		}
		rows, ok := PaperTable3[app]
		if !ok {
			t.Fatalf("PaperTable3 missing %s", app)
		}
		for _, v := range []string{"Unpruned", "ePrune", "iPrune"} {
			if _, ok := rows[v]; !ok {
				t.Errorf("PaperTable3[%s] missing %s", app, v)
			}
		}
	}
	if PaperFig5.VsEPruneHi <= PaperFig5.VsEPruneLo {
		t.Error("Fig5 reference range inverted")
	}
}

func TestSupplies(t *testing.T) {
	s := Supplies()
	if len(s) != 3 || s[0].Name != "continuous" || s[2].Name != "weak" {
		t.Errorf("Supplies = %v", s)
	}
}

func TestWriteRunTraces(t *testing.T) {
	results := fakeResults(t)
	// Give one app a dataset so its section pair includes the functional
	// engine's calibrated overlay next to the cost-sim run.
	ds, err := LoadData("HAR", Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.App == "HAR" {
			r.Dataset = ds
		}
	}
	var buf strings.Builder
	if err := WriteRunTraces(&buf, results, 1); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	procs := map[string]int{}
	for _, e := range tr.TraceEvents {
		if e.Name == "process_name" {
			if n, ok := e.Args["name"].(string); ok {
				procs[n] = e.Pid
			}
		}
	}
	// One cost-sim process group per app, labelled with the traced
	// variant and backend, with distinct pids; the dataset-carrying app
	// additionally gets the engine overlay section.
	pids := map[int]bool{}
	for _, app := range models.Names() {
		pid, ok := procs[app+" iPrune cost-sim"]
		if !ok {
			t.Errorf("trace missing process group for %s (got %v)", app, procs)
			continue
		}
		pids[pid] = true
	}
	if len(pids) != len(models.Names()) {
		t.Errorf("process groups share pids: %v", procs)
	}
	if pid, ok := procs["HAR iPrune engine"]; !ok {
		t.Errorf("trace missing the engine overlay section (got %v)", procs)
	} else if pids[pid] {
		t.Error("engine overlay section shares a pid with a cost-sim section")
	}
	if len(tr.TraceEvents) <= len(procs) {
		t.Error("trace holds no simulation events")
	}
	// Results without variants contribute nothing but do not fail.
	var empty strings.Builder
	if err := WriteRunTraces(&empty, []*AppResult{{App: "X"}}, 1); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(empty.String(), "process_name") {
		t.Error("variant-less result must not open a process group")
	}
}

func TestWriteFig2Traces(t *testing.T) {
	var buf strings.Builder
	if err := WriteFig2Traces(&buf, 1); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	procs := map[string]bool{}
	for _, e := range tr.TraceEvents {
		if e.Name == "process_name" {
			if n, ok := e.Args["name"].(string); ok {
				procs[n] = true
			}
		}
	}
	for _, app := range models.Names() {
		if !procs[app+" conventional"] || !procs[app+" intermittent"] {
			t.Errorf("fig2 trace missing %s sections (got %v)", app, procs)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	results := fakeResults(t)
	var buf strings.Builder
	if err := WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Count(out, "\n")
	// header + 3 apps * 3 variants * 3 supplies
	if lines != 1+27 {
		t.Errorf("csv lines = %d, want 28", lines)
	}
	if !strings.HasPrefix(out, "app,variant,supply") {
		t.Error("csv header malformed")
	}
	if !strings.Contains(out, "SQN,iPrune,weak") {
		t.Error("csv missing expected row")
	}
}
