// Package report orchestrates the paper's evaluation (Section IV): it
// trains the three TinyML models on their datasets, prunes each with
// iPrune and ePrune, deploys every variant through quantization and BSR,
// simulates intermittent inference under the three power strengths, and
// renders Tables I–III and Figures 2 and 5 next to the paper's numbers.
package report

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"iprune/internal/core"
	"iprune/internal/dataset"
	"iprune/internal/device"
	"iprune/internal/hawaii"
	"iprune/internal/models"
	"iprune/internal/nn"
	"iprune/internal/power"
	"iprune/internal/quant"
	"iprune/internal/search"
	"iprune/internal/tile"
)

// Scale selects how much compute the pipeline spends. Quick keeps unit
// tests and default benches tractable on one core; Full is the
// paper-style run behind EXPERIMENTS.md.
type Scale struct {
	Name        string
	TrainFrac   float64 // fraction of the default dataset split sizes
	NoiseFrac   float64 // fraction of the default dataset noise (smaller splits need easier tasks)
	Epochs      map[string]int
	LR          float64
	LRDecay     float64 // per-epoch multiplicative decay
	PruneIters  int
	PruneEpochs int
	Epsilon     float64
	SenseFrac   float64 // sensitivity subset, fraction of validation set
	AnnealIters int
}

// Quick is the test/bench default.
var Quick = Scale{
	Name:      "quick",
	TrainFrac: 0.4,
	NoiseFrac: 0.5,
	Epochs:    map[string]int{"SQN": 16, "HAR": 8, "CKS": 8},
	LR:        0.005, LRDecay: 0.85,
	PruneIters: 8, PruneEpochs: 4,
	Epsilon:   0.05,
	SenseFrac: 0.4, AnnealIters: 400,
}

// Full is the paper-style configuration.
var Full = Scale{
	Name:      "full",
	TrainFrac: 1.0,
	NoiseFrac: 1.0,
	Epochs:    map[string]int{"SQN": 20, "HAR": 12, "CKS": 12},
	LR:        0.005, LRDecay: 0.85,
	PruneIters: 8, PruneEpochs: 4,
	Epsilon:   0.02,
	SenseFrac: 0.25, AnnealIters: 1500,
}

// LoadData builds the dataset for an application at the given scale.
func LoadData(app string, sc Scale, seed int64) (*dataset.Dataset, error) {
	var cfg dataset.Config
	var gen func(dataset.Config, int64) *dataset.Dataset
	switch app {
	case "SQN":
		cfg, gen = dataset.ImagesConfig(), dataset.Images
	case "HAR":
		cfg, gen = dataset.HARConfig(), dataset.HAR
	case "CKS":
		cfg, gen = dataset.SpeechConfig(), dataset.Speech
	default:
		return nil, fmt.Errorf("report: unknown app %q", app)
	}
	cfg.Train = max(32, int(float64(cfg.Train)*sc.TrainFrac))
	cfg.Test = max(24, int(float64(cfg.Test)*sc.TrainFrac))
	if sc.NoiseFrac > 0 {
		cfg.Noise *= sc.NoiseFrac
	}
	return gen(cfg, seed), nil
}

// Train pretrains an application model at the given scale and returns it
// with its float validation accuracy.
func Train(app string, ds *dataset.Dataset, sc Scale, seed int64) (*nn.Network, float64, error) {
	net, err := models.ByName(app, seed)
	if err != nil {
		return nil, 0, err
	}
	opt := nn.NewSGD(sc.LR, 0.9)
	rng := rand.New(rand.NewSource(seed + 1000))
	for e := 0; e < sc.Epochs[app]; e++ {
		nn.TrainEpoch(net, ds.Train, opt, 16, rng)
		opt.LR *= sc.LRDecay
	}
	return net, nn.Accuracy(net, ds.Test), nil
}

// pruneOptions adapts core defaults to the scale.
func pruneOptions(sc Scale, valSize int, seed int64) core.Options {
	o := core.DefaultOptions()
	o.MaxIters = sc.PruneIters
	o.FinetuneEpochs = sc.PruneEpochs
	o.Epsilon = sc.Epsilon
	o.LR = sc.LR * 0.4
	o.LRDecay = 0.85
	// Smaller bites than the paper's Γ̂=40%: our recovery fine-tuning has
	// ~10^2 gradient steps where the authors had server-scale training, so
	// an iteration must never remove more than it can heal. More
	// iterations compensate (the loop is iterative by design).
	o.GammaHat = 0.2
	o.GammaCap = 0.35
	o.SenseSamples = max(24, int(float64(valSize)*sc.SenseFrac))
	o.Anneal = search.Config{Iters: sc.AnnealIters, T0: 1, T1: 1e-3}
	o.Seed = seed
	return o
}

// Variant is one row of Table III: a model under one pruning framework.
type Variant struct {
	Name      string // "Unpruned", "ePrune", "iPrune"
	Net       *nn.Network
	AccuracyF float64 // float32 accuracy on the test split
	AccuracyQ float64 // deployed (Q15) accuracy on the test split
	SizeBytes int
	Counts    tile.Counts // intermittent-mode cost counters
	// Latency holds one cost-simulated end-to-end inference per supply
	// name (continuous / strong / weak).
	Latency map[string]hawaii.Result
}

// AppResult aggregates one application's full evaluation.
type AppResult struct {
	App       string
	Dataset   *dataset.Dataset
	Specs     []tile.LayerSpec
	Diversity float64
	Variants  []Variant // Unpruned, ePrune, iPrune in order
}

// Supplies returns the paper's three operating points in report order.
func Supplies() []power.Supply {
	return []power.Supply{power.ContinuousPower, power.StrongPower, power.WeakPower}
}

// evaluate fills a Variant from a (possibly pruned) network.
func evaluate(name string, net *nn.Network, ds *dataset.Dataset, cfg tile.Config, seed int64) (Variant, error) {
	v := Variant{Name: name, Net: net, Latency: map[string]hawaii.Result{}}
	specs := tile.SpecsFromNetwork(net, cfg)
	m, err := quant.Deploy(net, specs)
	if err != nil {
		return v, err
	}
	v.SizeBytes = m.SizeBytes()
	v.AccuracyF = nn.Accuracy(net, ds.Test)
	v.AccuracyQ = quant.AccuracyQ15(quant.QuantizeWeights(net), ds.Test)
	v.Counts = tile.CountNetwork(net, specs, tile.Intermittent, cfg)
	cs := hawaii.NewCostSim(cfg)
	for _, sup := range Supplies() {
		r, err := cs.RunNetwork(net, specs, tile.Intermittent, sup, seed)
		if err != nil {
			return v, fmt.Errorf("report: %s under %s: %w", name, sup.Name, err)
		}
		v.Latency[sup.Name] = r
	}
	return v, nil
}

// RunApp executes the full pipeline for one application: pretrain,
// prune with ePrune and iPrune, deploy and simulate every variant.
// If cacheDir is non-empty, trained and pruned networks are cached there
// and reused across runs. logf may be nil.
func RunApp(app string, sc Scale, seed int64, cacheDir string, logf func(string, ...any)) (*AppResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ds, err := LoadData(app, sc, seed)
	if err != nil {
		return nil, err
	}
	cfg := tile.DefaultConfig()

	cached := func(tag string, build func() (*nn.Network, error)) (*nn.Network, error) {
		if cacheDir == "" {
			return build()
		}
		path := filepath.Join(cacheDir, fmt.Sprintf("%s-%s-%s.model", sc.Name, app, tag))
		if net, err := models.Load(path); err == nil {
			logf("%s/%s: loaded cache %s", app, tag, path)
			return net, nil
		}
		net, err := build()
		if err != nil {
			return nil, err
		}
		if err := os.MkdirAll(cacheDir, 0o755); err != nil {
			return nil, err
		}
		if err := models.Save(path, net, seed); err != nil {
			return nil, err
		}
		return net, nil
	}

	base, err := cached("base", func() (*nn.Network, error) {
		logf("%s: pretraining (%d epochs)", app, sc.Epochs[app])
		net, acc, err := Train(app, ds, sc, seed)
		if err != nil {
			return nil, err
		}
		logf("%s: pretrained, float accuracy %.3f", app, acc)
		return net, nil
	})
	if err != nil {
		return nil, err
	}
	specs := tile.SpecsFromNetwork(base, cfg)
	tile.InstallMasks(base, specs)

	res := &AppResult{App: app, Dataset: ds, Specs: specs}
	res.Diversity = tile.Diversity(tile.LayerJobs(base, specs, cfg))

	prune := func(tag string, crit core.Criterion) (*nn.Network, error) {
		return cached(tag, func() (*nn.Network, error) {
			logf("%s: pruning with %s", app, crit.Name())
			p := core.NewPruner(crit)
			p.Opt = pruneOptions(sc, len(ds.Test), seed)
			p.Opt.Logf = logf
			p.Cfg = cfg
			r, err := p.Run(base, ds.Train, ds.Test)
			if err != nil {
				return nil, err
			}
			logf("%s/%s: %d iterations, accuracy %.3f (base %.3f)",
				app, crit.Name(), r.Iterations, r.Accuracy, r.BaseAccuracy)
			return r.Net, nil
		})
	}

	eNet, err := prune("eprune", core.Energy{})
	if err != nil {
		return nil, err
	}
	iNet, err := prune("iprune", core.AccOutputs{})
	if err != nil {
		return nil, err
	}

	for i, nv := range []struct {
		name string
		net  *nn.Network
	}{{"Unpruned", base}, {"ePrune", eNet}, {"iPrune", iNet}} {
		v, err := evaluate(nv.name, nv.net, ds, cfg, seed+int64(i))
		if err != nil {
			return nil, err
		}
		res.Variants = append(res.Variants, v)
	}
	return res, nil
}

// RunAll executes RunApp for every application.
func RunAll(sc Scale, seed int64, cacheDir string, logf func(string, ...any)) ([]*AppResult, error) {
	var out []*AppResult
	for _, app := range models.Names() {
		r, err := RunApp(app, sc, seed, cacheDir, logf)
		if err != nil {
			return nil, fmt.Errorf("report: %s: %w", app, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig2Breakdown produces the Figure 2 data: the unpruned model's active
// latency split under (a) the conventional continuous-power flow and (b)
// the intermittent discipline.
func Fig2Breakdown(app string, sc Scale, seed int64) (conventional, intermittent hawaii.Result, err error) {
	net, err := models.ByName(app, seed)
	if err != nil {
		return
	}
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	cs := hawaii.NewCostSim(cfg)
	conventional, err = cs.RunNetwork(net, specs, tile.Continuous, power.ContinuousPower, seed)
	if err != nil {
		return
	}
	intermittent, err = cs.RunNetwork(net, specs, tile.Intermittent, power.ContinuousPower, seed)
	return conventional, intermittent, err
}

// DeviceProfile exposes the Table I platform for rendering.
func DeviceProfile() device.Profile { return device.MSP430FR5994() }
