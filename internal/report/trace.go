package report

import (
	"io"

	"iprune/internal/hawaii"
	"iprune/internal/models"
	"iprune/internal/obs"
	"iprune/internal/power"
	"iprune/internal/tile"
)

// specNames extracts the layer-name table of an app's schedule for the
// trace sinks.
func specNames(specs []tile.LayerSpec) []string {
	names := make([]string, len(specs))
	for i := range specs {
		names[i] = specs[i].Name
	}
	return names
}

// WriteRunTraces streams one observed intermittent inference per
// evaluated application into a single Chrome trace: each app's iPrune
// variant (falling back to the last variant present) simulated under
// the strong supply, rendered as its own Perfetto process group, plus
// — when the app carries a dataset — an overlay section of the
// functional engine executing the same schedule with its trace
// calibrated to the shared energy model, so both backends read on one
// microsecond/joule axis. The events stream straight to w, so a
// full-scale run never holds a trace in memory.
func WriteRunTraces(w io.Writer, results []*AppResult, seed int64) error {
	st := obs.NewStreamTracer(w, nil)
	cfg := tile.DefaultConfig()
	for _, r := range results {
		if len(r.Variants) == 0 {
			continue
		}
		v := &r.Variants[len(r.Variants)-1]
		for i := range r.Variants {
			if r.Variants[i].Name == "iPrune" {
				v = &r.Variants[i]
				break
			}
		}
		st.NextProcess(r.App+" "+v.Name+" cost-sim", specNames(r.Specs))
		cs := hawaii.NewCostSim(cfg)
		cs.Trace = st
		if _, err := cs.RunNetwork(v.Net, r.Specs, tile.Intermittent, power.StrongPower, seed); err != nil {
			st.Close() //iprune:allow-err surfacing the simulation error; the aborted trace is discarded
			return err
		}
		if r.Dataset == nil || len(r.Dataset.Test) == 0 {
			continue
		}
		st.NextProcess(r.App+" "+v.Name+" engine", specNames(r.Specs))
		eng, err := hawaii.NewEngine(v.Net, r.Specs, cfg)
		if err != nil {
			st.Close() //iprune:allow-err surfacing the engine error; the aborted trace is discarded
			return err
		}
		eng.Trace = st
		eng.Price = hawaii.NewTracePricer(power.StrongPower, cfg)
		if _, err := eng.Infer(r.Dataset.Test[0].X, nil); err != nil {
			st.Close() //iprune:allow-err surfacing the engine error; the aborted trace is discarded
			return err
		}
	}
	return st.Close()
}

// WriteFig2Traces streams the Figure 2 story as a Chrome trace: for
// every application, the unpruned model under the conventional
// continuous-power flow and under the intermittent discipline, one
// process group per (app, mode) pair — the event-level companion to
// Fig2Breakdown's aggregate split.
func WriteFig2Traces(w io.Writer, seed int64) error {
	st := obs.NewStreamTracer(w, nil)
	cfg := tile.DefaultConfig()
	for _, app := range models.Names() {
		net, err := models.ByName(app, seed)
		if err != nil {
			return err
		}
		specs := tile.SpecsFromNetwork(net, cfg)
		tile.InstallMasks(net, specs)
		for _, mode := range []struct {
			label string
			m     tile.Mode
		}{{"conventional", tile.Continuous}, {"intermittent", tile.Intermittent}} {
			st.NextProcess(app+" "+mode.label, specNames(specs))
			cs := hawaii.NewCostSim(cfg)
			cs.Trace = st
			if _, err := cs.RunNetwork(net, specs, mode.m, power.ContinuousPower, seed); err != nil {
				st.Close() //iprune:allow-err surfacing the simulation error; the aborted trace is discarded
				return err
			}
		}
	}
	return st.Close()
}
