package report

// PaperTable2Row holds the paper's Table II reference values.
type PaperTable2Row struct {
	Layers    string
	SizeKB    int
	MACsK     int
	OutputsK  int
	Diversity string
}

// PaperTable2 is the paper's Table II.
var PaperTable2 = map[string]PaperTable2Row{
	"SQN": {Layers: "CONV x 11, POOL x 2", SizeKB: 147, MACsK: 4442, OutputsK: 1483, Diversity: "Low"},
	"HAR": {Layers: "CONV x 3, POOL x 3, FC x 1", SizeKB: 28, MACsK: 321, OutputsK: 77, Diversity: "Medium"},
	"CKS": {Layers: "CONV x 2, FC x 3", SizeKB: 131, MACsK: 2811, OutputsK: 1582, Diversity: "High"},
}

// PaperTable3Row holds the paper's Table III reference values.
type PaperTable3Row struct {
	Accuracy float64 // percent
	SizeKB   int
	MACsK    int
	OutputsK int
}

// PaperTable3 is the paper's Table III, keyed by app then variant.
var PaperTable3 = map[string]map[string]PaperTable3Row{
	"SQN": {
		"Unpruned": {76.3, 147, 4442, 1483},
		"ePrune":   {75.5, 56, 1617, 561},
		"iPrune":   {75.5, 55, 1560, 518},
	},
	"HAR": {
		"Unpruned": {92.5, 28, 321, 77},
		"ePrune":   {92.7, 14, 183, 56},
		"iPrune":   {92.7, 9, 108, 44},
	},
	"CKS": {
		"Unpruned": {87.5, 131, 2811, 1582},
		"ePrune":   {87.6, 75, 1047, 987},
		"iPrune":   {87.7, 67, 1149, 509},
	},
}

// PaperFig5 summarizes the paper's Figure 5 headline: iPrune speedup
// ranges over the baselines across apps and power strengths.
var PaperFig5 = struct {
	VsUnprunedLo, VsUnprunedHi float64
	VsEPruneLo, VsEPruneHi     float64
}{1.7, 2.9, 1.1, 2.0}
