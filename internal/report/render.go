package report

import (
	"fmt"
	"strings"

	"iprune/internal/hawaii"
	"iprune/internal/power"
	"iprune/internal/tile"
)

// RenderTable1 prints the experimental-environment table (paper Table I).
func RenderTable1() string {
	d := DeviceProfile()
	b := power.DefaultBuffer()
	var sb strings.Builder
	fmt.Fprintf(&sb, "TABLE I — SPECIFICATIONS OF THE (SIMULATED) EXPERIMENTAL ENVIRONMENT\n")
	fmt.Fprintf(&sb, "  Hardware\n")
	fmt.Fprintf(&sb, "    Platform            %s\n", d.Name)
	fmt.Fprintf(&sb, "    Volatile memory     %d KB SRAM\n", d.VMBytes/1024)
	fmt.Fprintf(&sb, "    Non-volatile memory %d KB FRAM\n", d.NVMBytes/1024)
	fmt.Fprintf(&sb, "    MAC latency         %.1f ns   NVM write %.2f us/B   NVM read %.2f us/B\n",
		d.MACTime*1e9, d.NVMWritePerByte*1e6, d.NVMReadPerByte*1e6)
	fmt.Fprintf(&sb, "  Energy\n")
	fmt.Fprintf(&sb, "    Switch on/off       %.1f V / %.1f V\n", b.VOn, b.VOff)
	fmt.Fprintf(&sb, "    Capacitance         %.0f uF (%.0f uJ usable per cycle)\n", b.CapF*1e6, b.UsableEnergy()*1e6)
	for _, s := range Supplies() {
		fmt.Fprintf(&sb, "    %-10s power    %g mW\n", s.Name, s.Power*1e3)
	}
	return sb.String()
}

// RenderTable2 prints the application characteristics (paper Table II)
// with the paper's values alongside.
func RenderTable2(results []*AppResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "TABLE II — TINYML APPLICATIONS (measured | paper)\n")
	fmt.Fprintf(&sb, "  %-4s %-28s %13s %15s %15s %18s\n",
		"App", "Layers", "Size KB", "MACs K", "Acc.Out K", "Diversity")
	for _, r := range results {
		u := r.Variants[0]
		p := PaperTable2[r.App]
		counts := u.Net.LayerCounts()
		var parts []string
		for _, k := range []string{"CONV", "POOL", "FC"} {
			if counts[k] > 0 {
				parts = append(parts, fmt.Sprintf("%s x %d", k, counts[k]))
			}
		}
		divLabel := diversityLabel(r.Diversity)
		fmt.Fprintf(&sb, "  %-4s %-28s %5d | %5d %6d | %6d %6d | %6d %9s | %-6s\n",
			r.App, strings.Join(parts, ", "),
			u.SizeBytes/1024, p.SizeKB,
			u.Counts.MACs/1000, p.MACsK,
			u.Counts.Jobs/1000, p.OutputsK,
			divLabel, p.Diversity)
	}
	return sb.String()
}

func diversityLabel(cv float64) string {
	switch {
	case cv < 0.85:
		return "Low"
	case cv < 1.5:
		return "Medium"
	default:
		return "High"
	}
}

// RenderTable3 prints the pruned-model characteristics (paper Table III)
// with the paper's values alongside.
func RenderTable3(results []*AppResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "TABLE III — CHARACTERISTICS OF THE PRUNED MODELS (measured | paper)\n")
	fmt.Fprintf(&sb, "  %-4s %-8s %14s %15s %15s %16s\n",
		"App", "Model", "Accuracy %", "Size KB", "MACs K", "Acc.Out K")
	for _, r := range results {
		for _, v := range r.Variants {
			p := PaperTable3[r.App][v.Name]
			fmt.Fprintf(&sb, "  %-4s %-8s %6.1f | %5.1f %6d | %6d %6d | %6d %7d | %6d\n",
				r.App, v.Name,
				v.AccuracyQ*100, p.Accuracy,
				v.SizeBytes/1024, p.SizeKB,
				v.Counts.MACs/1000, p.MACsK,
				v.Counts.Jobs/1000, p.OutputsK)
		}
	}
	return sb.String()
}

// RenderFig2 prints the latency-breakdown comparison (paper Figure 2).
func RenderFig2(app string, conventional, intermittent hawaii.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FIGURE 2 — %s unpruned: active-latency breakdown\n", app)
	row := func(label string, r hawaii.Result) {
		total := r.Break.ReadTime + r.Break.WriteTime + r.Break.ComputeTime + r.Break.OverheadTime
		if total == 0 {
			total = 1
		}
		fmt.Fprintf(&sb, "  %-26s NVM-read %5.1f%%  NVM-write %5.1f%%  compute %5.1f%%  overhead %5.1f%%  (active %.3fs)\n",
			label,
			100*r.Break.ReadTime/total, 100*r.Break.WriteTime/total,
			100*r.Break.ComputeTime/total, 100*r.Break.OverheadTime/total,
			r.ActiveTime)
	}
	row("(a) continuously-powered", conventional)
	row("(b) intermittently-powered", intermittent)
	sb.WriteString("  paper: (a) reads+compute dominate; (b) NVM writes dominate\n")
	return sb.String()
}

// RenderFig5 prints per-app, per-supply latencies with speedup
// annotations (paper Figure 5).
func RenderFig5(results []*AppResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FIGURE 5 — INTERMITTENT INFERENCE LATENCY (seconds per end-to-end inference)\n")
	fmt.Fprintf(&sb, "  %-4s %-11s %12s %12s %12s   %s\n", "App", "Supply", "Unpruned", "ePrune", "iPrune", "iPrune speedup vs (ePrune, Unpruned)")
	var minE, maxE, minU, maxU float64
	first := true
	for _, r := range results {
		for _, sup := range Supplies() {
			u := r.Variants[0].Latency[sup.Name].Latency
			e := r.Variants[1].Latency[sup.Name].Latency
			i := r.Variants[2].Latency[sup.Name].Latency
			se, su := e/i, u/i
			if first {
				minE, maxE, minU, maxU = se, se, su, su
				first = false
			}
			minE, maxE = minF(minE, se), maxF(maxE, se)
			minU, maxU = minF(minU, su), maxF(maxU, su)
			fmt.Fprintf(&sb, "  %-4s %-11s %12.3f %12.3f %12.3f   %.2fx, %.2fx\n",
				r.App, sup.Name, u, e, i, se, su)
		}
	}
	fmt.Fprintf(&sb, "  measured speedup ranges: vs ePrune %.2f–%.2fx (paper %.1f–%.1fx), vs Unpruned %.2f–%.2fx (paper %.1f–%.1fx)\n",
		minE, maxE, PaperFig5.VsEPruneLo, PaperFig5.VsEPruneHi,
		minU, maxU, PaperFig5.VsUnprunedLo, PaperFig5.VsUnprunedHi)
	return sb.String()
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// RenderLayerTable prints the per-layer lowering of an app with each
// layer's accelerator-output count under every variant's masks.
func RenderLayerTable(r *AppResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s layer lowering (per-layer accelerator outputs by variant)\n", r.App)
	cfg := tile.DefaultConfig()
	perVariant := make([][]int64, len(r.Variants))
	for i, v := range r.Variants {
		specs := tile.SpecsFromNetwork(v.Net, cfg)
		perVariant[i] = tile.LayerJobs(v.Net, specs, cfg)
	}
	fmt.Fprintf(&sb, "  %-10s %-4s %-22s %10s %10s %10s\n", "layer", "kind", "GEMM (MxKxN, tile)", "Unpruned", "ePrune", "iPrune")
	for i := range r.Specs {
		s := &r.Specs[i]
		fmt.Fprintf(&sb, "  %-10s %-4s %4dx%-5dx%-5d %d/%d/%d %10d %10d %10d\n",
			s.Name, s.Kind, s.M, s.K, s.N, s.TM, s.TK, s.TN,
			perVariant[0][i], perVariant[1][i], perVariant[2][i])
	}
	return sb.String()
}
