package tile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"iprune/internal/nn"
	"iprune/internal/tensor"
)

func TestSelectTilesConvUsesKernelWindow(t *testing.T) {
	cfg := DefaultConfig()
	tm, tk, tn := SelectTiles(nn.KindConv, 16, 27, 1024, 9, cfg)
	if tk != 9 {
		t.Errorf("conv tk = %d, want 9 (kernel window)", tk)
	}
	if tm < 1 || tm > cfg.MaxTM || tn < 1 || tn > cfg.MaxTN {
		t.Errorf("tile shape out of caps: tm=%d tn=%d", tm, tn)
	}
}

func TestSelectTilesFCUsesVecLen(t *testing.T) {
	cfg := DefaultConfig()
	_, tk, tn := SelectTiles(nn.KindFC, 10, 512, 1, 0, cfg)
	if tk != cfg.FCVecLen {
		t.Errorf("fc tk = %d, want %d", tk, cfg.FCVecLen)
	}
	if tn != 1 {
		t.Errorf("fc tn = %d, want 1", tn)
	}
}

func TestSelectTilesClipsToLayer(t *testing.T) {
	cfg := DefaultConfig()
	tm, tk, tn := SelectTiles(nn.KindFC, 2, 8, 1, 0, cfg)
	if tm > 2 || tk > 8 || tn > 1 {
		t.Errorf("tiles not clipped: %d %d %d", tm, tk, tn)
	}
}

func TestSelectTilesRespectsVMBudget(t *testing.T) {
	f := func(mRaw, kRaw, nRaw uint16, vmRaw uint8) bool {
		m, k, n := int(mRaw%256)+1, int(kRaw%1024)+1, int(nRaw%2048)+1
		cfg := DefaultConfig()
		cfg.VMBytes = 512 + int(vmRaw)*64
		tm, tk, tn := SelectTiles(nn.KindConv, m, k, n, 9, cfg)
		budget := int(float64(cfg.VMBytes) * cfg.VMUtil / float64(cfg.ElemBytes))
		if budget < 16 {
			budget = 16
		}
		elems := 2*(tm*tk+tk*tn) + m*tn
		// The selection must fit unless even minimal tiles cannot (the
		// M-row partial panel alone can exceed a tiny budget).
		return elems <= budget || (tn == 1 && tk == 1 && 2*(tm+1)+m > budget)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func buildTestNet(t *testing.T) *nn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	n := nn.NewNetwork("t", 4)
	n.Add(nn.NewConv2D("c1", tensor.ConvGeom{InC: 2, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, rng))
	n.Add(nn.NewReLU("r1"))
	n.Add(nn.NewMaxPool2D("p1", 4, 8, 8, 2, 2))
	n.Add(nn.NewFlatten("fl"))
	n.Add(nn.NewFC("f1", 4*4*4, 4, rng))
	return n
}

func TestSpecsFromNetwork(t *testing.T) {
	net := buildTestNet(t)
	cfg := DefaultConfig()
	specs := SpecsFromNetwork(net, cfg)
	if len(specs) != 2 {
		t.Fatalf("specs = %d, want 2", len(specs))
	}
	c := specs[0]
	if c.Kind != nn.KindConv || c.M != 4 || c.K != 18 || c.N != 64 || c.KHKW != 9 {
		t.Errorf("conv spec = %+v", c)
	}
	f := specs[1]
	if f.Kind != nn.KindFC || f.M != 4 || f.K != 64 || f.N != 1 {
		t.Errorf("fc spec = %+v", f)
	}
	if c.Index != 0 || f.Index != 1 {
		t.Error("spec indices wrong")
	}
}

func TestInstallMasksMatchesSpecs(t *testing.T) {
	net := buildTestNet(t)
	cfg := DefaultConfig()
	specs := SpecsFromNetwork(net, cfg)
	InstallMasks(net, specs)
	for i, p := range net.Prunables() {
		m := p.Mask()
		if m == nil {
			t.Fatalf("layer %d has no mask", i)
		}
		if m.BM != specs[i].TM || m.BK != specs[i].TK {
			t.Errorf("layer %d mask block %dx%d, spec tile %dx%d", i, m.BM, m.BK, specs[i].TM, specs[i].TK)
		}
	}
}

func TestCountLayerUnprunedIdentities(t *testing.T) {
	cfg := DefaultConfig()
	spec := LayerSpec{Name: "c", Kind: nn.KindConv, M: 4, K: 18, N: 64, KHKW: 9}
	spec.TM, spec.TK, spec.TN = SelectTiles(spec.Kind, spec.M, spec.K, spec.N, spec.KHKW, cfg)
	c := CountLayer(&spec, nil, Intermittent, cfg)
	// MACs must equal M*K*N exactly for the unpruned layer.
	if c.MACs != int64(4*18*64) {
		t.Errorf("MACs = %d, want %d", c.MACs, 4*18*64)
	}
	// Jobs = M*N*ceil(K/TK): every output accumulated once per k-block.
	wantJobs := int64(4 * 64 * ((18 + spec.TK - 1) / spec.TK))
	if c.Jobs != wantJobs {
		t.Errorf("Jobs = %d, want %d", c.Jobs, wantJobs)
	}
	if c.OutputWrite != c.Jobs*int64(cfg.ElemBytes) {
		t.Errorf("OutputWrite = %d, want Jobs*ElemBytes = %d", c.OutputWrite, c.Jobs*2)
	}
	if c.IndicatorWrite != c.Ops*int64(cfg.IndicatorBytes) {
		t.Errorf("IndicatorWrite = %d, want %d", c.IndicatorWrite, c.Ops*8)
	}
}

func TestCountLayerContinuousVsIntermittent(t *testing.T) {
	cfg := DefaultConfig()
	spec := LayerSpec{Name: "c", Kind: nn.KindConv, M: 8, K: 36, N: 100, KHKW: 9}
	spec.TM, spec.TK, spec.TN = SelectTiles(spec.Kind, spec.M, spec.K, spec.N, spec.KHKW, cfg)
	ci := CountLayer(&spec, nil, Intermittent, cfg)
	cc := CountLayer(&spec, nil, Continuous, cfg)
	if cc.MACs != ci.MACs || cc.Jobs != ci.Jobs {
		t.Error("mode must not change MACs/Jobs")
	}
	// Continuous writes the OFM once: M*N elements.
	if cc.OutputWrite != int64(8*100*cfg.ElemBytes) {
		t.Errorf("continuous OutputWrite = %d, want %d", cc.OutputWrite, 8*100*2)
	}
	if cc.IndicatorWrite != 0 || cc.PartialRead != 0 {
		t.Error("continuous mode must not write indicators or re-read partials")
	}
	if ci.TotalNVMWrite() <= cc.TotalNVMWrite() {
		t.Error("intermittent mode must write more than continuous")
	}
}

func TestCountLayerMaskedReducesEverything(t *testing.T) {
	cfg := DefaultConfig()
	spec := LayerSpec{Name: "f", Kind: nn.KindFC, M: 16, K: 64, N: 1}
	spec.TM, spec.TK, spec.TN = SelectTiles(spec.Kind, spec.M, spec.K, spec.N, 0, cfg)
	mask := nn.NewBlockMask(spec.M, spec.K, spec.TM, spec.TK)
	full := CountLayer(&spec, mask, Intermittent, cfg)
	// Prune half the blocks.
	for b := 0; b < mask.NumBlocks(); b += 2 {
		mask.Keep[b] = false
	}
	half := CountLayer(&spec, mask, Intermittent, cfg)
	if half.Jobs >= full.Jobs || half.MACs >= full.MACs || half.Ops >= full.Ops {
		t.Errorf("pruning did not reduce: %+v vs %+v", half, full)
	}
	if half.TotalNVMWrite() >= full.TotalNVMWrite() {
		t.Error("pruning did not reduce NVM writes")
	}
}

func TestCountLayerAllPrunedIsZero(t *testing.T) {
	cfg := DefaultConfig()
	spec := LayerSpec{Name: "f", Kind: nn.KindFC, M: 4, K: 32, N: 1}
	spec.TM, spec.TK, spec.TN = SelectTiles(spec.Kind, spec.M, spec.K, spec.N, 0, cfg)
	mask := nn.NewBlockMask(spec.M, spec.K, spec.TM, spec.TK)
	for b := range mask.Keep {
		mask.Keep[b] = false
	}
	c := CountLayer(&spec, mask, Intermittent, cfg)
	if c.Jobs != 0 || c.MACs != 0 || c.Ops != 0 || c.TotalNVMWrite() != 0 {
		t.Errorf("all-pruned layer should cost nothing: %+v", c)
	}
}

func TestCountLayerMaskGeometryValidated(t *testing.T) {
	cfg := DefaultConfig()
	spec := LayerSpec{Name: "f", Kind: nn.KindFC, M: 4, K: 32, N: 1, TM: 2, TK: 8, TN: 1}
	mask := nn.NewBlockMask(4, 32, 1, 8) // BM mismatch
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mask/spec mismatch")
		}
	}()
	CountLayer(&spec, mask, Intermittent, cfg)
}

func TestCountLayerJobsLinearInBlocks(t *testing.T) {
	// Property: jobs removed by pruning one full block equals
	// JobsPerBlock for interior blocks.
	cfg := DefaultConfig()
	spec := LayerSpec{Name: "c", Kind: nn.KindConv, M: 8, K: 27, N: 50, KHKW: 9}
	spec.TM, spec.TK, spec.TN = SelectTiles(spec.Kind, spec.M, spec.K, spec.N, spec.KHKW, cfg)
	mask := nn.NewBlockMask(spec.M, spec.K, spec.TM, spec.TK)
	before := CountLayer(&spec, mask, Intermittent, cfg).Jobs
	mask.Keep[0] = false // block (0,0) is always full-size
	after := CountLayer(&spec, mask, Intermittent, cfg).Jobs
	if before-after != JobsPerBlock(&spec) {
		t.Errorf("delta jobs = %d, want %d", before-after, JobsPerBlock(&spec))
	}
}

func TestCountNetworkAggregates(t *testing.T) {
	net := buildTestNet(t)
	cfg := DefaultConfig()
	specs := SpecsFromNetwork(net, cfg)
	InstallMasks(net, specs)
	total := CountNetwork(net, specs, Intermittent, cfg)
	var manual Counts
	prunables := net.Prunables()
	for i := range specs {
		manual.Add(CountLayer(&specs[i], prunables[i].Mask(), Intermittent, cfg))
	}
	if total != manual {
		t.Errorf("CountNetwork = %+v, manual = %+v", total, manual)
	}
	jobs := LayerJobs(net, specs, cfg)
	var sum int64
	for _, j := range jobs {
		sum += j
	}
	if sum != total.Jobs {
		t.Errorf("LayerJobs sum = %d, total = %d", sum, total.Jobs)
	}
}

func TestDiversity(t *testing.T) {
	if d := Diversity([]int64{100, 100, 100}); d != 0 {
		t.Errorf("uniform diversity = %v, want 0", d)
	}
	low := Diversity([]int64{90, 100, 110})
	high := Diversity([]int64{1, 1, 1000})
	if low >= high {
		t.Errorf("diversity ordering wrong: low=%v high=%v", low, high)
	}
	if DiversityLabel(0.1) != "Low" || DiversityLabel(1.0) != "Medium" || DiversityLabel(2.5) != "High" {
		t.Error("diversity labels wrong")
	}
	if Diversity(nil) != 0 {
		t.Error("empty diversity should be 0")
	}
}

func TestModeString(t *testing.T) {
	if Continuous.String() != "continuous" || Intermittent.String() != "intermittent" {
		t.Error("mode strings wrong")
	}
}

func TestSteadyStatePreservationIsWriteOnly(t *testing.T) {
	// Partials accumulate in the VM-resident panel; preservation only
	// writes. PartialRead is reserved for recovery accounting and must be
	// zero in analytic schedules.
	cfg := DefaultConfig()
	spec := LayerSpec{Name: "f", Kind: nn.KindFC, M: 2, K: 64, N: 1}
	spec.TM, spec.TK, spec.TN = SelectTiles(spec.Kind, spec.M, spec.K, spec.N, 0, cfg)
	c := CountLayer(&spec, nil, Intermittent, cfg)
	if c.PartialRead != 0 {
		t.Errorf("PartialRead = %d, want 0 in steady state", c.PartialRead)
	}
	if c.OutputWrite == 0 {
		t.Error("intermittent mode must write outputs")
	}
}

func TestSelectTilesPartialPanelFitsVM(t *testing.T) {
	// The whole M×TN partial panel must fit the VM budget together with
	// the double-buffered operand tiles.
	cfg := DefaultConfig()
	for _, m := range []int{8, 96, 256} {
		tm, tk, tn := SelectTiles(nn.KindConv, m, 864, 1024, 9, cfg)
		budget := int(float64(cfg.VMBytes) * cfg.VMUtil / float64(cfg.ElemBytes))
		if 2*(tm*tk+tk*tn)+m*tn > budget {
			t.Errorf("M=%d: tiles %dx%dx%d overflow VM budget", m, tm, tk, tn)
		}
	}
}

func TestSpecsRecurseIntoBranches(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := nn.NewNetwork("fire", 3)
	n.Add(nn.NewConv2D("sq", tensor.ConvGeom{InC: 2, InH: 8, InW: 8, OutC: 4, KH: 1, KW: 1, StrideH: 1, StrideW: 1}, rng))
	n.Add(nn.NewBranch("ex",
		[]nn.Layer{nn.NewConv2D("e1", tensor.ConvGeom{InC: 4, InH: 8, InW: 8, OutC: 3, KH: 1, KW: 1, StrideH: 1, StrideW: 1}, rng)},
		[]nn.Layer{nn.NewConv2D("e3", tensor.ConvGeom{InC: 4, InH: 8, InW: 8, OutC: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, rng)},
	))
	n.Add(nn.NewGlobalAvgPool("gap", 8, 8, 8))
	n.Add(nn.NewFC("fc", 8, 3, rng))
	cfg := DefaultConfig()
	specs := SpecsFromNetwork(n, cfg)
	if len(specs) != 4 {
		t.Fatalf("specs = %d, want 4 (squeeze + both expands + fc)", len(specs))
	}
	names := []string{"sq", "e1", "e3", "fc"}
	for i, s := range specs {
		if s.Name != names[i] {
			t.Errorf("spec %d = %s, want %s (walk order)", i, s.Name, names[i])
		}
	}
	// InstallMasks must pair with the same traversal order.
	InstallMasks(n, specs)
	for i, p := range n.Prunables() {
		if p.Name() != names[i] {
			t.Errorf("prunable %d = %s, want %s", i, p.Name(), names[i])
		}
		if p.Mask() == nil {
			t.Errorf("prunable %s missing mask", p.Name())
		}
	}
	c := CountNetwork(n, specs, Intermittent, cfg)
	if c.Jobs <= 0 {
		t.Error("branch network produced no jobs")
	}
}
