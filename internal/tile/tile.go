// Package tile models how HAWAII⁺ lowers each DNN layer onto the LEA-class
// accelerator: the GEMM loop tiling and ordering (following the
// high-performance low-memory lowering of Anderson et al., [2] in the
// paper), the decomposition into accelerator operations and jobs, and the
// resulting counts of MACs, accelerator outputs, and NVM traffic.
//
// These counts are the substance of the paper:
//
//   - the number of accelerator outputs is iPrune's pruning criterion
//     (Section III-B);
//   - the pruning granularity is the weight block computed by one
//     accelerator operation (Section III-C, guideline 3);
//   - NVM write traffic derived from the op schedule is what makes
//     intermittent inference latency behave differently from continuous
//     inference (Section II-B, Figure 2).
//
// Model. A layer is lowered to C[M×N] = W[M×K]·X[K×N] (for convolutions,
// M=OutC, K=InC·KH·KW, N=OutH·OutW; for FC, N=1). One accelerator
// operation multiplies a TM×TK weight block by a TK×TN input tile and
// produces TM×TN partially-accumulated outputs; each produced output is a
// job in HAWAII's sense, and in intermittent mode every job's output is
// written straight back to NVM together with a progress indicator. The
// reduction tile TK is short — for convolutions it is one spatial kernel
// window (KH·KW), for FC layers the accelerator's vector-MAC length —
// which is exactly why intermittent inference is write-dominated: every
// few MACs one fresh partial output leaves the accelerator.
package tile

import (
	"fmt"
	"math"

	"iprune/internal/nn"
	"iprune/internal/obs"
)

// Config describes the inference-engine configuration that determines the
// op decomposition (the paper: "the tile size and dataflow").
type Config struct {
	// VMBytes is the SRAM available to tiles (both operands and results).
	VMBytes int
	// VMUtil is the fraction of VMBytes usable for tile data after the
	// engine's own state (the rest holds stacks, DMA descriptors, and the
	// double-buffer margin).
	VMUtil float64
	// ElemBytes is the byte width of one value (2 for Q15).
	ElemBytes int
	// IndicatorBytes is the size of the progress indicator written with
	// each accelerator operation's outputs (HAWAII's job counter).
	IndicatorBytes int
	// MaxTM caps how many output rows one accelerator op produces
	// (HAWAII⁺'s accelerated vector-matrix multiply width).
	MaxTM int
	// MaxTN caps the output-column tile width.
	MaxTN int
	// FCVecLen is the accelerator's maximum vector-MAC length, the TK used
	// by fully connected layers.
	FCVecLen int
}

// DefaultConfig mirrors the paper's platform: 8 KB SRAM, Q15 values,
// a job-counter indicator, and LEA-like op shapes.
func DefaultConfig() Config {
	return Config{
		VMBytes:        8 * 1024,
		VMUtil:         0.75,
		ElemBytes:      2,
		IndicatorBytes: 8,
		MaxTM:          8,
		MaxTN:          32,
		FCVecLen:       32,
	}
}

// LayerSpec is the lowered description of one prunable layer.
type LayerSpec struct {
	Index int     // position among the network's prunable layers
	Name  string  // layer name
	Kind  nn.Kind // KindConv or KindFC
	M     int     // GEMM rows (output channels / FC outputs)
	K     int     // GEMM reduction (InC·KH·KW / FC inputs)
	N     int     // GEMM columns (OutH·OutW / 1)
	KHKW  int     // conv spatial window size (KH·KW); 0 for FC

	TM, TK, TN int // selected tile shape
}

// Blocks returns the number of weight blocks in the layer.
func (s *LayerSpec) Blocks() int {
	return ceilDiv(s.M, s.TM) * ceilDiv(s.K, s.TK)
}

// Weights returns the number of weight elements in the layer.
func (s *LayerSpec) Weights() int { return s.M * s.K }

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// SelectTiles chooses the tile shape for a layer under the VM constraint,
// implementing HAWAII⁺'s "tile size selection to fully utilize the VM and
// maximize data reuse": TK is fixed by the op type (kernel window for
// conv, vector-MAC length for FC), then TN is maximized (reusing the
// loaded weight block across output columns), then TM.
func SelectTiles(kind nn.Kind, m, k, n, khkw int, cfg Config) (tm, tk, tn int) {
	budget := int(float64(cfg.VMBytes) * cfg.VMUtil / float64(cfg.ElemBytes)) //iprune:allow-float config-time VM budget, not on the inference path
	if budget < 16 {
		budget = 16
	}
	switch kind {
	case nn.KindConv:
		tk = khkw
	case nn.KindFC:
		tk = cfg.FCVecLen
	default:
		panic(fmt.Sprintf("tile: layer kind %v is not prunable", kind))
	}
	tk = min(tk, k)
	if tk < 1 {
		tk = 1
	}
	tn = min(cfg.MaxTN, n)
	// Balance TM across row strips so edge blocks carry minimal padding
	// in the BSR store (M=9 with MaxTM=8 becomes two 5/4 strips, not 8/1).
	tm = min(cfg.MaxTM, m)
	tm = ceilDiv(m, ceilDiv(m, tm))
	// Shrink until everything fits the VM budget: the weight block and
	// input tile are double-buffered so DMA can overlap compute, and the
	// partial panel (one output column tile across all M rows) stays
	// VM-resident so outputs accumulate without NVM re-reads.
	fits := func() bool {
		return 2*(tm*tk+tk*tn)+m*tn <= budget
	}
	for !fits() && tn > 1 {
		tn--
	}
	for !fits() && tm > 1 {
		tm--
	}
	for !fits() && tk > 1 {
		tk--
	}
	return tm, tk, tn
}

// SpecsFromNetwork lowers every prunable layer of the network and returns
// the specs in network order. It does not touch the network's masks; use
// InstallMasks for that.
func SpecsFromNetwork(net *nn.Network, cfg Config) []LayerSpec {
	var specs []LayerSpec
	idx := 0
	nn.Walk(net.Layers, func(l nn.Layer) {
		p, ok := l.(nn.Prunable)
		if !ok {
			return
		}
		var s LayerSpec
		s.Index = idx
		s.Name = l.Name()
		s.Kind = l.Kind()
		switch v := l.(type) {
		case *nn.Conv2D:
			s.M = v.Geom.OutC
			s.K = v.Geom.K()
			s.N = v.Geom.N()
			s.KHKW = v.Geom.KH * v.Geom.KW
		case *nn.FC:
			s.M = v.Out
			s.K = v.In
			s.N = 1
		default:
			_, rows, cols := p.WeightMatrix()
			s.M, s.K, s.N = rows, cols, 1
		}
		s.TM, s.TK, s.TN = SelectTiles(s.Kind, s.M, s.K, s.N, s.KHKW, cfg)
		specs = append(specs, s)
		idx++
	})
	return specs
}

// InstallMasks initializes each prunable layer's block mask to match its
// accelerator-op weight-block geometry. Existing masks are replaced.
func InstallMasks(net *nn.Network, specs []LayerSpec) {
	prunables := net.Prunables()
	if len(prunables) != len(specs) {
		panic(fmt.Sprintf("tile: %d specs for %d prunable layers", len(specs), len(prunables)))
	}
	for i, p := range prunables {
		p.InitBlocks(specs[i].TM, specs[i].TK)
	}
}

// Counts aggregates the execution-cost counters of a layer (or network).
type Counts struct {
	Ops        int64 // accelerator operations issued
	Jobs       int64 // accelerator outputs produced (= the iPrune criterion)
	MACs       int64 // multiply-accumulates performed
	WeightRead int64 // bytes of weights fetched from NVM
	InputRead  int64 // bytes of input-tile data fetched from NVM
	// PartialRead is bytes of preserved partial sums re-fetched from NVM.
	// In steady state partials accumulate in the VM-resident panel and
	// are only written (preservation is write-only), so this is zero in
	// analytic schedules; progress recovery after a power failure charges
	// it separately.
	PartialRead int64
	// OutputWrite is bytes of accelerator outputs written back
	// (per job in intermittent mode; once per OFM in continuous mode).
	OutputWrite int64
	// IndicatorWrite is bytes of progress indicators written
	// (intermittent mode only).
	IndicatorWrite int64
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Ops += other.Ops
	c.Jobs += other.Jobs
	c.MACs += other.MACs
	c.WeightRead += other.WeightRead
	c.InputRead += other.InputRead
	c.PartialRead += other.PartialRead
	c.OutputWrite += other.OutputWrite
	c.IndicatorWrite += other.IndicatorWrite
}

// TotalNVMRead returns all NVM read bytes.
func (c *Counts) TotalNVMRead() int64 { return c.WeightRead + c.InputRead + c.PartialRead }

// TotalNVMWrite returns all NVM write bytes.
func (c *Counts) TotalNVMWrite() int64 { return c.OutputWrite + c.IndicatorWrite }

// Mode selects between the two execution disciplines of Section II.
type Mode int

// Execution modes.
const (
	// Continuous keeps accelerator outputs accumulating in VM and writes
	// each OFM tile once when complete (Section II-A).
	Continuous Mode = iota
	// Intermittent writes every accelerator output and its progress
	// indicator straight back to NVM (Section II-B).
	Intermittent
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Continuous {
		return "continuous"
	}
	return "intermittent"
}

// CountLayer computes the cost counters for one layer under the given
// mask (nil = unpruned) and execution mode.
//
// Derivation. The block grid over W is ceil(M/TM)×ceil(K/TK); kept block
// b with rm rows and kk columns participates in ceil(N/TN) ops (one per
// output-column tile), producing rm outputs per output column: its job
// count is rm·N regardless of TN clipping, and its MAC count rm·kk·N.
// The engine's loop order is input-stationary (output-column tile, then
// k-block, then block row — the low-memory ordering of [2]): each kk×tn
// input tile is fetched once per k-panel and reused across all block
// rows, while every op fetches its own weight block. Partial sums
// accumulate in the VM-resident output panel; in intermittent mode each
// op's fresh outputs are additionally written straight to NVM
// (preservation is write-only in steady state — partials are re-read
// only during progress recovery). Because all kept blocks of a layer
// share TM/TK/N, intra-layer weights contribute identically to the job
// count while layers differ — the layer-wise criterion property of
// Section III-C.
//
//iprune:hotpath
//iprune:allow-budget analytic host-side characterization; loop bounds are layer geometry, not an on-device region
func CountLayer(spec *LayerSpec, mask *nn.BlockMask, mode Mode, cfg Config) Counts {
	if mask != nil {
		if mask.Rows != spec.M || mask.Cols != spec.K || mask.BM != spec.TM || mask.BK != spec.TK {
			panic(fmt.Sprintf("tile: mask geometry %dx%d/%dx%d does not match spec %dx%d/%dx%d for %s",
				mask.Rows, mask.Cols, mask.BM, mask.BK, spec.M, spec.K, spec.TM, spec.TK, spec.Name))
		}
	}
	var c Counts
	eb := int64(cfg.ElemBytes)
	brs := ceilDiv(spec.M, spec.TM) // block rows
	bcs := ceilDiv(spec.K, spec.TK) // block cols
	nTiles := ceilDiv(spec.N, spec.TN)
	for br := 0; br < brs; br++ {
		rm := min(spec.TM, spec.M-br*spec.TM)
		seen := 0
		for bc := 0; bc < bcs; bc++ {
			if mask != nil && !mask.Keep[br*bcs+bc] {
				continue
			}
			kk := min(spec.TK, spec.K-bc*spec.TK)
			c.Ops += int64(nTiles)
			c.Jobs += int64(rm) * int64(spec.N)
			c.MACs += int64(rm) * int64(kk) * int64(spec.N)
			// Weight block fetched once per op (it stays in VM across the
			// op's outputs but is re-fetched per output-column tile).
			c.WeightRead += int64(nTiles) * int64(rm) * int64(kk) * eb
			if mode == Intermittent {
				c.OutputWrite += int64(rm) * int64(spec.N) * eb
				c.IndicatorWrite += int64(nTiles) * int64(cfg.IndicatorBytes)
			}
			seen++
		}
		if mode == Continuous && seen > 0 {
			// OFM row strip written once when its tiles complete.
			c.OutputWrite += int64(rm) * int64(spec.N) * eb
		}
	}
	// Input tiles are fetched once per surviving k-panel and reused
	// across block rows (input-stationary ordering).
	for bc := 0; bc < bcs; bc++ {
		kept := mask == nil
		if !kept {
			for br := 0; br < brs; br++ {
				if mask.Keep[br*bcs+bc] {
					kept = true
					break
				}
			}
		}
		if kept {
			kk := min(spec.TK, spec.K-bc*spec.TK)
			c.InputRead += int64(kk) * int64(spec.N) * eb
		}
	}
	return c
}

// CountNetwork sums CountLayer over all specs using the network's current
// masks.
func CountNetwork(net *nn.Network, specs []LayerSpec, mode Mode, cfg Config) Counts {
	prunables := net.Prunables()
	var total Counts
	for i := range specs {
		total.Add(CountLayer(&specs[i], prunables[i].Mask(), mode, cfg))
	}
	return total
}

// Observe registers the counters in a metrics registry under
// "tile/<name>/..." names, making the analytic cost model's view of a
// layer (or network total) part of a run's observable metrics.
func (c *Counts) Observe(m *obs.Metrics, name string) {
	p := "tile/" + name + "/"
	m.Counter(p + "ops").AddInt(c.Ops)
	m.Counter(p + "jobs").AddInt(c.Jobs)
	m.Counter(p + "macs").AddInt(c.MACs)
	m.Counter(p + "nvm_read_bytes").AddInt(c.TotalNVMRead())
	m.Counter(p + "nvm_write_bytes").AddInt(c.TotalNVMWrite())
}

// ObserveNetwork registers every prunable layer's analytic counters plus
// the network total in the registry, and returns the total. This is the
// static (schedule-derived) complement to the event-derived run metrics:
// jobs here are the iPrune pruning criterion.
func ObserveNetwork(m *obs.Metrics, net *nn.Network, specs []LayerSpec, mode Mode, cfg Config) Counts {
	prunables := net.Prunables()
	var total Counts
	for i := range specs {
		c := CountLayer(&specs[i], prunables[i].Mask(), mode, cfg)
		c.Observe(m, specs[i].Name)
		total.Add(c)
	}
	total.Observe(m, "total")
	return total
}

// LayerJobs returns the per-layer accelerator-output counts (the pruning
// criterion values) under the current masks.
func LayerJobs(net *nn.Network, specs []LayerSpec, cfg Config) []int64 {
	prunables := net.Prunables()
	out := make([]int64, len(specs))
	for i := range specs {
		out[i] = CountLayer(&specs[i], prunables[i].Mask(), Intermittent, cfg).Jobs
	}
	return out
}

// JobsPerBlock returns how many accelerator outputs one kept weight block
// of the layer contributes. Blocks in a row strip whose TM is clipped
// contribute less; this returns the full-block value used for criterion
// estimation.
func JobsPerBlock(spec *LayerSpec) int64 {
	return int64(min(spec.TM, spec.M)) * int64(spec.N)
}

// Diversity computes the coefficient of variation of per-layer job
// counts, the paper's "diversity among layers" (Table II: SQN low, HAR
// medium, CKS high).
//
//iprune:allow-float reporting statistic over job counts, not device numerics
func Diversity(jobs []int64) float64 {
	if len(jobs) == 0 {
		return 0
	}
	var mean float64
	for _, j := range jobs {
		mean += float64(j)
	}
	mean /= float64(len(jobs))
	if mean == 0 {
		return 0
	}
	var varsum float64
	for _, j := range jobs {
		d := float64(j) - mean
		varsum += d * d
	}
	return math.Sqrt(varsum/float64(len(jobs))) / mean
}

// DiversityLabel maps a coefficient of variation to the paper's
// low/medium/high labels.
func DiversityLabel(cv float64) string {
	switch {
	case cv < 0.85:
		return "Low"
	case cv < 1.5:
		return "Medium"
	default:
		return "High"
	}
}
