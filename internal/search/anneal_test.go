package search

import (
	"math"
	"math/rand"
	"testing"
)

// quadratic is a convex test problem with minimum at the target point.
type quadratic struct {
	target []float64
}

func (q quadratic) Energy(s []float64) float64 {
	var e float64
	for i, v := range s {
		d := v - q.target[i]
		e += d * d
	}
	return e
}

func (q quadratic) Neighbor(s, out []float64, rng *rand.Rand) {
	copy(out, s)
	i := rng.Intn(len(out))
	out[i] += rng.NormFloat64() * 0.1
}

func TestAnnealFindsQuadraticMinimum(t *testing.T) {
	p := quadratic{target: []float64{0.3, -0.7, 1.2}}
	best, e := Anneal(p, []float64{0, 0, 0}, DefaultConfig(), 1)
	if e > 0.02 {
		t.Errorf("energy = %v, want near 0 (best=%v)", e, best)
	}
	for i := range best {
		if math.Abs(best[i]-p.target[i]) > 0.15 {
			t.Errorf("dim %d: %v, want %v", i, best[i], p.target[i])
		}
	}
}

// multimodal has a deceptive local minimum at 0 and a global one at 2.
type multimodal struct{}

func (multimodal) Energy(s []float64) float64 {
	x := s[0]
	return 0.1*x*x*x*x - 0.5*x*x*x + 0.2*x*x + 1
}

func (multimodal) Neighbor(s, out []float64, rng *rand.Rand) {
	out[0] = s[0] + rng.NormFloat64()*0.3
}

func TestAnnealEscapesLocalMinimum(t *testing.T) {
	cfg := Config{Iters: 5000, T0: 2.0, T1: 1e-3}
	best, _ := Anneal(multimodal{}, []float64{0}, cfg, 3)
	// Global minimum of the quartic is near x ≈ 3.55; the local trap is
	// near 0. Escaping means ending well to the right of the trap.
	if best[0] < 1.5 {
		t.Errorf("stuck at local minimum: x=%v", best[0])
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	p := quadratic{target: []float64{1, 2}}
	a, ae := Anneal(p, []float64{0, 0}, DefaultConfig(), 42)
	b, be := Anneal(p, []float64{0, 0}, DefaultConfig(), 42)
	if ae != be || a[0] != b[0] || a[1] != b[1] {
		t.Error("same seed must reproduce identical runs")
	}
}

func TestAnnealNeverWorseThanInit(t *testing.T) {
	p := quadratic{target: []float64{5}}
	init := []float64{5} // already optimal
	_, e := Anneal(p, init, DefaultConfig(), 9)
	if e > 1e-12 {
		t.Errorf("best energy %v worse than optimal init", e)
	}
}

func TestAnnealValidatesConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad schedule")
		}
	}()
	Anneal(quadratic{target: []float64{0}}, []float64{0}, Config{Iters: 0, T0: 1, T1: 0.1}, 1)
}
