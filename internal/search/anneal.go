// Package search provides the simulated-annealing searcher iPrune uses to
// allocate per-layer pruning ratios (paper Section III-D: "our iPrune
// implementation adopts simulated annealing to search for per-layer
// pruning ratios, but any search algorithm could be used instead").
//
// The searcher is deliberately problem-agnostic: the pruning core supplies
// an energy function (post-prune accelerator outputs plus an accuracy
// penalty) and a constraint-preserving neighbour move.
package search

import (
	"fmt"
	"math"
	"math/rand"
)

// Problem is a state space over float vectors.
type Problem interface {
	// Energy returns the objective to minimize.
	Energy(state []float64) float64
	// Neighbor writes a perturbed copy of state into out (both have the
	// same length). Implementations must keep any problem constraints
	// satisfied.
	Neighbor(state, out []float64, rng *rand.Rand)
}

// Config controls the annealing schedule.
type Config struct {
	Iters int     // total proposal count
	T0    float64 // initial temperature
	T1    float64 // final temperature (geometric schedule)
}

// DefaultConfig is a schedule that converges well for the ratio-allocation
// problems in this repository (tens of dimensions, smooth objectives).
func DefaultConfig() Config {
	return Config{Iters: 2000, T0: 1.0, T1: 1e-3}
}

// Anneal minimizes the problem starting from init and returns the best
// state found and its energy. The run is deterministic for a given seed.
func Anneal(p Problem, init []float64, cfg Config, seed int64) ([]float64, float64) {
	if cfg.Iters <= 0 || cfg.T0 <= 0 || cfg.T1 <= 0 || cfg.T1 > cfg.T0 {
		panic(fmt.Sprintf("search: invalid schedule %+v", cfg))
	}
	rng := rand.New(rand.NewSource(seed))
	cur := append([]float64(nil), init...)
	curE := p.Energy(cur)
	best := append([]float64(nil), cur...)
	bestE := curE
	next := make([]float64, len(cur))
	decay := math.Pow(cfg.T1/cfg.T0, 1/float64(cfg.Iters))
	temp := cfg.T0
	for i := 0; i < cfg.Iters; i++ {
		p.Neighbor(cur, next, rng)
		nextE := p.Energy(next)
		if nextE <= curE || rng.Float64() < math.Exp((curE-nextE)/temp) {
			cur, next = next, cur
			curE = nextE
			if curE < bestE {
				bestE = curE
				copy(best, cur)
			}
		}
		temp *= decay
	}
	return best, bestE
}
