// Package tensor provides the dense float32 tensor type and the handful of
// linear-algebra primitives (GEMM, im2col) the training and inference
// stacks are built on.
//
// Convolutions throughout the repository are lowered to matrix
// multiplication following the GEMM-based algorithms of Anderson et al.
// (cited as [2] in the paper), which is also the lowering HAWAII⁺ uses on
// the LEA; keeping the training-side math in the same shape as the
// device-side math is what lets one tiling description drive both.
package tensor

import "fmt"

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zeroed tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromData wraps an existing slice; the slice is not copied.
func FromData(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// At returns the element at the given multi-index (bounds-checked through
// the flat index computation; primarily for tests and small paths).
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.flat(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.flat(idx)] = v
}

func (t *Tensor) flat(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// Gemm computes C = A·B (+C if accumulate) for row-major matrices:
// A is m×k, B is k×n, C is m×n. The k-inner/j-unrolled loop order keeps B
// accesses sequential, which matters on the single-core interpreter-free
// hot path this repo trains on.
//
//iprune:hotpath
//iprune:allow-budget training-time float kernel; runs on the workstation and never inside a harvested power cycle
func Gemm(a, b, c []float32, m, k, n int, accumulate bool) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: gemm buffer too small")
	}
	if !accumulate {
		for i := range c[:m*n] {
			c[i] = 0
		}
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n]
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// GemmTA computes C = Aᵀ·B where A is k×m (so Aᵀ is m×k), B is k×n,
// C is m×n. Used by backprop for weight gradients.
func GemmTA(a, b, c []float32, m, k, n int, accumulate bool) {
	if !accumulate {
		for i := range c[:m*n] {
			c[i] = 0
		}
	}
	for p := 0; p < k; p++ {
		arow := a[p*m : p*m+m]
		brow := b[p*n : p*n+n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			crow := c[i*n : i*n+n]
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// GemmTB computes C = A·Bᵀ where A is m×k, B is n×k, C is m×n. Used by
// backprop for input gradients.
func GemmTB(a, b, c []float32, m, k, n int, accumulate bool) {
	if !accumulate {
		for i := range c[:m*n] {
			c[i] = 0
		}
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			brow := b[j*k : j*k+k]
			var s float32
			for p := range arow {
				s += arow[p] * brow[p]
			}
			crow[j] += s
		}
	}
}

// ConvGeom describes the spatial geometry of a 2-D convolution.
type ConvGeom struct {
	InC, InH, InW int
	OutC          int
	KH, KW        int
	StrideH       int
	StrideW       int
	PadH, PadW    int
	OutH, OutW    int // derived; filled by Derive
}

// Derive fills OutH/OutW from the other fields and validates them.
func (g *ConvGeom) Derive() error {
	if g.StrideH <= 0 || g.StrideW <= 0 {
		return fmt.Errorf("tensor: non-positive stride in %+v", *g)
	}
	g.OutH = (g.InH+2*g.PadH-g.KH)/g.StrideH + 1
	g.OutW = (g.InW+2*g.PadW-g.KW)/g.StrideW + 1
	if g.OutH <= 0 || g.OutW <= 0 {
		return fmt.Errorf("tensor: conv geometry produces empty output: %+v", *g)
	}
	return nil
}

// K returns the GEMM reduction dimension of the lowered convolution.
func (g *ConvGeom) K() int { return g.InC * g.KH * g.KW }

// N returns the GEMM output-column dimension of the lowered convolution.
func (g *ConvGeom) N() int { return g.OutH * g.OutW }

// Im2col lowers an input feature map (C×H×W, flattened) into the K×N
// patch matrix such that W·col = output. col must have length K()*N().
func Im2col(g *ConvGeom, in, col []float32) {
	if len(in) < g.InC*g.InH*g.InW {
		panic("tensor: im2col input too small")
	}
	n := g.N()
	if len(col) < g.K()*n {
		panic("tensor: im2col output too small")
	}
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := in[c*g.InH*g.InW:]
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				dst := col[row*n:]
				i := 0
				for oh := 0; oh < g.OutH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						for ow := 0; ow < g.OutW; ow++ {
							dst[i] = 0
							i++
						}
						continue
					}
					base := ih * g.InW
					for ow := 0; ow < g.OutW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw < 0 || iw >= g.InW {
							dst[i] = 0
						} else {
							dst[i] = plane[base+iw]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// Col2im scatters gradients from the patch-matrix layout back to the input
// feature map layout, accumulating overlapping contributions. in is zeroed
// first.
func Col2im(g *ConvGeom, col, in []float32) {
	for i := range in[:g.InC*g.InH*g.InW] {
		in[i] = 0
	}
	n := g.N()
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := in[c*g.InH*g.InW:]
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				src := col[row*n:]
				i := 0
				for oh := 0; oh < g.OutH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						i += g.OutW
						continue
					}
					base := ih * g.InW
					for ow := 0; ow < g.OutW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw >= 0 && iw < g.InW {
							plane[base+iw] += src[i]
						}
						i++
					}
				}
				row++
			}
		}
	}
}
