package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Len() != 24 {
		t.Errorf("Len = %d, want 24", tt.Len())
	}
	if len(tt.Shape) != 3 || tt.Shape[0] != 2 || tt.Shape[1] != 3 || tt.Shape[2] != 4 {
		t.Errorf("Shape = %v", tt.Shape)
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero dim")
		}
	}()
	New(2, 0)
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(2, 3)
	tt.Set(7.5, 1, 2)
	if tt.At(1, 2) != 7.5 {
		t.Errorf("At(1,2) = %v, want 7.5", tt.At(1, 2))
	}
	if tt.Data[1*3+2] != 7.5 {
		t.Error("row-major layout violated")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := New(4)
	a.Data[0] = 1
	b := a.Clone()
	b.Data[0] = 2
	if a.Data[0] != 1 {
		t.Error("clone shares storage with original")
	}
}

func TestFromDataValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched length")
		}
	}()
	FromData(make([]float32, 5), 2, 3)
}

// naiveGemm is the reference implementation used to validate the tuned ones.
func naiveGemm(a, b []float32, m, k, n int) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {8, 8, 8}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randSlice(rng, m*k), randSlice(rng, k*n)
		want := naiveGemm(a, b, m, k, n)
		got := make([]float32, m*n)
		Gemm(a, b, got, m, k, n, false)
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-4 {
				t.Fatalf("gemm %v mismatch at %d: %v vs %v", dims, i, got[i], want[i])
			}
		}
	}
}

func TestGemmAccumulate(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 4}
	c := []float32{10}
	Gemm(a, b, c, 1, 2, 1, true)
	if c[0] != 10+1*3+2*4 {
		t.Errorf("accumulate gemm = %v, want 21", c[0])
	}
}

func TestGemmTAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, k, n := 4, 5, 3
	// A is k×m; compute Aᵀ·B.
	a, b := randSlice(rng, k*m), randSlice(rng, k*n)
	at := make([]float32, m*k)
	for p := 0; p < k; p++ {
		for i := 0; i < m; i++ {
			at[i*k+p] = a[p*m+i]
		}
	}
	want := naiveGemm(at, b, m, k, n)
	got := make([]float32, m*n)
	GemmTA(a, b, got, m, k, n, false)
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("gemmTA mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestGemmTBMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, k, n := 3, 4, 5
	// B is n×k; compute A·Bᵀ.
	a, b := randSlice(rng, m*k), randSlice(rng, n*k)
	bt := make([]float32, k*n)
	for j := 0; j < n; j++ {
		for p := 0; p < k; p++ {
			bt[p*n+j] = b[j*k+p]
		}
	}
	want := naiveGemm(a, bt, m, k, n)
	got := make([]float32, m*n)
	GemmTB(a, b, got, m, k, n, false)
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("gemmTB mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestConvGeomDerive(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 32, InW: 32, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	if err := g.Derive(); err != nil {
		t.Fatal(err)
	}
	if g.OutH != 32 || g.OutW != 32 {
		t.Errorf("same-pad conv out = %dx%d, want 32x32", g.OutH, g.OutW)
	}
	if g.K() != 27 || g.N() != 1024 {
		t.Errorf("K=%d N=%d, want 27, 1024", g.K(), g.N())
	}
}

func TestConvGeomDeriveErrors(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 2, InW: 2, OutC: 1, KH: 5, KW: 5, StrideH: 1, StrideW: 1}
	if err := g.Derive(); err == nil {
		t.Error("expected error for kernel larger than padded input")
	}
	g2 := ConvGeom{InC: 1, InH: 4, InW: 4, OutC: 1, KH: 2, KW: 2, StrideH: 0, StrideW: 1}
	if err := g2.Derive(); err == nil {
		t.Error("expected error for zero stride")
	}
}

// naiveConv computes direct convolution as a reference for im2col+gemm.
func naiveConv(g *ConvGeom, in, w []float32) []float32 {
	out := make([]float32, g.OutC*g.OutH*g.OutW)
	for oc := 0; oc < g.OutC; oc++ {
		for oh := 0; oh < g.OutH; oh++ {
			for ow := 0; ow < g.OutW; ow++ {
				var s float32
				for ic := 0; ic < g.InC; ic++ {
					for kh := 0; kh < g.KH; kh++ {
						for kw := 0; kw < g.KW; kw++ {
							ih := oh*g.StrideH - g.PadH + kh
							iw := ow*g.StrideW - g.PadW + kw
							if ih < 0 || ih >= g.InH || iw < 0 || iw >= g.InW {
								continue
							}
							wi := ((oc*g.InC+ic)*g.KH+kh)*g.KW + kw
							s += w[wi] * in[(ic*g.InH+ih)*g.InW+iw]
						}
					}
				}
				out[(oc*g.OutH+oh)*g.OutW+ow] = s
			}
		}
	}
	return out
}

func TestIm2colGemmMatchesDirectConv(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := []ConvGeom{
		{InC: 2, InH: 6, InW: 6, OutC: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 1, InH: 8, InW: 8, OutC: 2, KH: 2, KW: 2, StrideH: 2, StrideW: 2},
		{InC: 3, InH: 5, InW: 7, OutC: 4, KH: 3, KW: 5, StrideH: 2, StrideW: 1, PadH: 1, PadW: 2},
	}
	for ci, g := range cases {
		if err := g.Derive(); err != nil {
			t.Fatal(err)
		}
		in := randSlice(rng, g.InC*g.InH*g.InW)
		w := randSlice(rng, g.OutC*g.K())
		want := naiveConv(&g, in, w)
		col := make([]float32, g.K()*g.N())
		Im2col(&g, in, col)
		got := make([]float32, g.OutC*g.N())
		Gemm(w, col, got, g.OutC, g.K(), g.N(), false)
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-4 {
				t.Fatalf("case %d: conv mismatch at %d: %v vs %v", ci, i, got[i], want[i])
			}
		}
	}
}

func TestCol2imIsIm2colAdjoint(t *testing.T) {
	// <Im2col(x), y> == <x, Col2im(y)> must hold for backprop to be exact.
	rng := rand.New(rand.NewSource(5))
	g := ConvGeom{InC: 2, InH: 5, InW: 5, OutC: 1, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	if err := g.Derive(); err != nil {
		t.Fatal(err)
	}
	x := randSlice(rng, g.InC*g.InH*g.InW)
	y := randSlice(rng, g.K()*g.N())
	cx := make([]float32, g.K()*g.N())
	Im2col(&g, x, cx)
	var lhs float64
	for i := range cx {
		lhs += float64(cx[i]) * float64(y[i])
	}
	xg := make([]float32, len(x))
	Col2im(&g, y, xg)
	var rhs float64
	for i := range x {
		rhs += float64(x[i]) * float64(xg[i])
	}
	if math.Abs(lhs-rhs) > 1e-3 {
		t.Errorf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestGemmLinearityProperty(t *testing.T) {
	// Gemm(a1+a2, b) == Gemm(a1,b) + Gemm(a2,b), checked via quick with
	// small fixed dims.
	m, k, n := 2, 3, 2
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a1, a2, b := randSlice(rng, m*k), randSlice(rng, m*k), randSlice(rng, k*n)
		sum := make([]float32, m*k)
		for i := range sum {
			sum[i] = a1[i] + a2[i]
		}
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		cs := make([]float32, m*n)
		Gemm(a1, b, c1, m, k, n, false)
		Gemm(a2, b, c2, m, k, n, false)
		Gemm(sum, b, cs, m, k, n, false)
		for i := range cs {
			if math.Abs(float64(cs[i]-(c1[i]+c2[i]))) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
