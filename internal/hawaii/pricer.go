package hawaii

import (
	"iprune/internal/energy"
	"iprune/internal/obs"
	"iprune/internal/power"
	"iprune/internal/tile"
)

// TracePricer implements obs.Pricer over the shared energy cost model:
// it converts the functional engine's trace events into the same
// simulated seconds and joules CostSim stamps, so an Engine run and a
// CostSim run of the same schedule overlay on one time axis. Op commits
// are priced exactly like the cost simulator prices schedule ops
// (energy.Model.OpCost with the overlapped preservation write of
// intermittent mode), recovery re-execution like its recovery path, and
// stage-level preservation as serialized NVM transactions. The obs
// package cannot host this (it imports nothing; energy sits above it),
// which is why the calibration lives with the engine.
//
// Failed attempts are the one deliberate asymmetry: the functional
// engine observes only committed progress, so the sunk time and energy
// of an attempt lost to an injected failure are not re-created on the
// calibrated axis — the trace prices committed work, recovery and
// recharge dead-time.
type TracePricer struct {
	M   energy.Model
	Cfg tile.Config
	// HarvestW is the harvesting supply's power; a charge event is
	// priced as one full buffer recharge at this power. <= 0 (a
	// continuous supply) makes recharge free and instantaneous.
	HarvestW float64
	// Jitter mirrors the supply's harvest jitter, kept for reporting —
	// the deterministic pricing itself uses the nominal power.
	Jitter float64
}

// NewTracePricer calibrates against the default model (the paper's
// MSP430FR5994 + 100 µF buffer) and the given supply.
func NewTracePricer(sup power.Supply, cfg tile.Config) *TracePricer {
	p := &TracePricer{M: energy.Default(), Cfg: cfg, Jitter: sup.Jitter}
	if !sup.Continuous {
		p.HarvestW = sup.Power
	}
	return p
}

// Price implements obs.Pricer.
//
//iprune:allow-float analytic cost model integrates seconds and joules, not device numerics
func (p *TracePricer) Price(kind obs.Kind, macs, read, write int64) (dt, e float64) {
	switch kind {
	case obs.KindOpCommit:
		// One accelerator op: reads stream in, the accelerator runs,
		// the preservation write overlaps compute (intermittent mode).
		return p.M.OpCost(macs, read, write, true)
	case obs.KindPreserve:
		// Stage-level preservation (input transform, CPU-stage commit,
		// OFM finalize): serialized NVM read + write transactions. The
		// op-level preserve never reaches here — its write is folded
		// into the op span by the EnergyClock.
		if read > 0 {
			dt += p.M.Dev.TransferTime(read, false)
			e += p.M.NVMReadJ(read)
		}
		if write > 0 {
			dt += p.M.Dev.TransferTime(write, true)
			e += p.M.NVMWriteJ(write)
		}
		return dt, e
	case obs.KindReExec:
		// Recovery: reboot, progress-indicator + BSR index read, and
		// the interrupted op's tile re-fetch (read carries the bytes).
		return p.M.RecoveryCost(int64(p.Cfg.IndicatorBytes)+2*2, read)
	case obs.KindCharge:
		// Recharge dead-time: one full buffer at the harvest power.
		if p.HarvestW <= 0 {
			return 0, 0
		}
		return p.M.BufferJ / p.HarvestW, 0
	}
	return 0, 0
}
