package hawaii

import (
	"errors"
	"strings"

	"math"
	"math/rand"
	"testing"

	"iprune/internal/energy"
	"iprune/internal/nn"
	"iprune/internal/power"
	"iprune/internal/tensor"
	"iprune/internal/tile"
)

func buildNet(seed int64) (*nn.Network, []tile.LayerSpec, tile.Config) {
	rng := rand.New(rand.NewSource(seed))
	n := nn.NewNetwork("t", 4)
	n.Add(nn.NewConv2D("c1", tensor.ConvGeom{InC: 2, InH: 16, InW: 16, OutC: 12, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, rng))
	n.Add(nn.NewReLU("r1"))
	n.Add(nn.NewMaxPool2D("p1", 12, 16, 16, 2, 2))
	n.Add(nn.NewConv2D("c2", tensor.ConvGeom{InC: 12, InH: 8, InW: 8, OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, rng))
	n.Add(nn.NewReLU("r2"))
	n.Add(nn.NewMaxPool2D("p2", 16, 8, 8, 2, 2))
	n.Add(nn.NewFlatten("fl"))
	n.Add(nn.NewFC("f1", 16*4*4, 4, rng))
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(n, cfg)
	tile.InstallMasks(n, specs)
	return n, specs, cfg
}

// The must* helpers run the cost sim and fail the test if the schedule
// cannot complete (ErrOpExceedsBuffer) — none of these fixtures should
// ever exceed the buffer.

func mustRun(t *testing.T, cs *CostSim, ops []Op, mode tile.Mode, sup power.Supply, seed int64) Result {
	t.Helper()
	res, err := cs.Run(ops, mode, sup, seed)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func mustRunWithSim(t *testing.T, cs *CostSim, ops []Op, mode tile.Mode, sim *power.Sim) Result {
	t.Helper()
	res, err := cs.RunWithSim(ops, mode, sim)
	if err != nil {
		t.Fatalf("RunWithSim: %v", err)
	}
	return res
}

func mustRunNetwork(t *testing.T, cs *CostSim, net *nn.Network, specs []tile.LayerSpec, mode tile.Mode, sup power.Supply, seed int64) Result {
	t.Helper()
	res, err := cs.RunNetwork(net, specs, mode, sup, seed)
	if err != nil {
		t.Fatalf("RunNetwork: %v", err)
	}
	return res
}

func pruneSome(net *nn.Network, every int) {
	for _, p := range net.Prunables() {
		m := p.Mask()
		for b := 0; b < m.NumBlocks(); b += every {
			m.Keep[b] = false
		}
		p.ApplyMask()
	}
}

// ---------------------------------------------------------------------------
// Schedule consistency

func TestScheduleMatchesCountLayer(t *testing.T) {
	net, specs, cfg := buildNet(1)
	pruneSome(net, 3)
	prunables := net.Prunables()
	for _, mode := range []tile.Mode{tile.Intermittent, tile.Continuous} {
		for i := range specs {
			mask := prunables[i].Mask()
			want := tile.CountLayer(&specs[i], mask, mode, cfg)
			ops := BuildSchedule(&specs[i], mask, mode, cfg)
			var got tile.Counts
			for _, op := range ops {
				got.Ops++
				got.Jobs += op.Jobs
				got.MACs += op.MACs
				got.WeightRead += op.WeightRead
				got.InputRead += op.InputRead
				got.OutputWrite += op.OutWrite
				got.IndicatorWrite += op.IndWrite
			}
			if got != want {
				t.Errorf("%s/%v: schedule aggregate %+v != analytic %+v", specs[i].Name, mode, got, want)
			}
		}
	}
}

func TestScheduleSkipsPrunedBlocks(t *testing.T) {
	net, specs, cfg := buildNet(2)
	before := len(ScheduleFromNetwork(net, specs, tile.Intermittent, cfg))
	pruneSome(net, 2)
	after := len(ScheduleFromNetwork(net, specs, tile.Intermittent, cfg))
	if after >= before {
		t.Errorf("pruning did not shrink the schedule: %d -> %d", before, after)
	}
}

// ---------------------------------------------------------------------------
// Cost simulator

func TestCostSimContinuousSupplyNeverFails(t *testing.T) {
	net, specs, cfg := buildNet(3)
	cs := NewCostSim(cfg)
	res := mustRunNetwork(t, cs, net, specs, tile.Intermittent, power.ContinuousPower, 1)
	if res.Failures != 0 || res.OffTime != 0 {
		t.Errorf("continuous supply: failures=%d off=%v", res.Failures, res.OffTime)
	}
	if res.Latency <= 0 || res.Energy <= 0 {
		t.Error("latency and energy must be positive")
	}
	if math.Abs(res.Latency-res.ActiveTime) > 1e-12 {
		t.Error("continuous latency must equal active time")
	}
}

func TestCostSimWeakSlowerThanStrong(t *testing.T) {
	net, specs, cfg := buildNet(4)
	cs := NewCostSim(cfg)
	cont := mustRunNetwork(t, cs, net, specs, tile.Intermittent, power.ContinuousPower, 1)
	strong := mustRunNetwork(t, cs, net, specs, tile.Intermittent, power.StrongPower, 1)
	weak := mustRunNetwork(t, cs, net, specs, tile.Intermittent, power.WeakPower, 1)
	if !(cont.Latency < strong.Latency && strong.Latency < weak.Latency) {
		t.Errorf("latency ordering violated: cont=%v strong=%v weak=%v",
			cont.Latency, strong.Latency, weak.Latency)
	}
	if !(strong.Failures > 0 && weak.Failures > strong.Failures) {
		t.Errorf("failure ordering violated: strong=%d weak=%d", strong.Failures, weak.Failures)
	}
}

func TestCostSimIntermittentWriteDominated(t *testing.T) {
	// The paper's Figure 2: under the intermittent discipline NVM writes
	// dominate; under the conventional flow reads+compute dominate.
	net, specs, cfg := buildNet(5)
	cs := NewCostSim(cfg)
	inter := mustRunNetwork(t, cs, net, specs, tile.Intermittent, power.ContinuousPower, 1)
	conv := mustRunNetwork(t, cs, net, specs, tile.Continuous, power.ContinuousPower, 1)
	if inter.Break.WriteTime <= inter.Break.ReadTime+inter.Break.ComputeTime {
		t.Errorf("intermittent not write-dominated: write=%v read=%v compute=%v",
			inter.Break.WriteTime, inter.Break.ReadTime, inter.Break.ComputeTime)
	}
	if conv.Break.WriteTime >= conv.Break.ReadTime+conv.Break.ComputeTime {
		t.Errorf("conventional flow write-dominated: write=%v read=%v compute=%v",
			conv.Break.WriteTime, conv.Break.ReadTime, conv.Break.ComputeTime)
	}
	if conv.Latency >= inter.Latency {
		t.Error("conventional data-reuse flow should be faster than preservation under continuous power")
	}
}

func TestCostSimPruningSpeedsUp(t *testing.T) {
	net, specs, cfg := buildNet(6)
	cs := NewCostSim(cfg)
	before := mustRunNetwork(t, cs, net, specs, tile.Intermittent, power.StrongPower, 1)
	pruneSome(net, 2)
	after := mustRunNetwork(t, cs, net, specs, tile.Intermittent, power.StrongPower, 1)
	if after.Latency >= before.Latency {
		t.Errorf("pruning did not speed up: %v -> %v", before.Latency, after.Latency)
	}
	if after.Jobs >= before.Jobs {
		t.Error("pruning did not reduce jobs")
	}
}

func TestCostSimDeterministicForSeed(t *testing.T) {
	net, specs, cfg := buildNet(7)
	cs := NewCostSim(cfg)
	a := mustRunNetwork(t, cs, net, specs, tile.Intermittent, power.WeakPower, 42)
	b := mustRunNetwork(t, cs, net, specs, tile.Intermittent, power.WeakPower, 42)
	if a != b {
		t.Error("same seed must reproduce identical results")
	}
}

func TestCostSimConventionalNeedsContinuous(t *testing.T) {
	net, specs, cfg := buildNet(8)
	cs := NewCostSim(cfg)
	defer func() {
		if recover() == nil {
			t.Error("expected panic: conventional flow under harvested power")
		}
	}()
	cs.RunNetwork(net, specs, tile.Continuous, power.WeakPower, 1)
}

func TestCostSimPowerCyclesRealistic(t *testing.T) {
	// The paper: an end-to-end inference takes dozens to a few hundreds of
	// power cycles. Even this small model should need more than a few.
	net, specs, cfg := buildNet(9)
	cs := NewCostSim(cfg)
	res := mustRunNetwork(t, cs, net, specs, tile.Intermittent, power.StrongPower, 1)
	if res.Failures < 5 {
		t.Errorf("only %d power cycles; power model suspiciously generous", res.Failures)
	}
}

func TestCostSimOpExceedsBufferError(t *testing.T) {
	// One monster op whose single-op energy dwarfs the default buffer:
	// the sim must return a typed error instead of crashing, and the
	// partial result must show zero committed ops.
	cfg := tile.DefaultConfig()
	cs := NewCostSim(cfg)
	ops := []Op{{Layer: 0, MACs: 1 << 30, Jobs: 1, WeightRead: 1 << 24, OutWrite: 1 << 24, RefetchBytes: 1 << 24}}
	res, err := cs.Run(ops, tile.Intermittent, power.WeakPower, 1)
	if err == nil {
		t.Fatal("expected ErrOpExceedsBuffer, got nil")
	}
	var ebuf *ErrOpExceedsBuffer
	if !errors.As(err, &ebuf) {
		t.Fatalf("error is %T, want *ErrOpExceedsBuffer", err)
	}
	if ebuf.Op != 0 || ebuf.Supply != power.WeakPower.Name {
		t.Errorf("error fields: %+v", ebuf)
	}
	if ebuf.Energy <= ebuf.Buffer {
		t.Errorf("reported energy %g should exceed buffer %g", ebuf.Energy, ebuf.Buffer)
	}
	if res.Ops != 0 {
		t.Errorf("partial result committed %d ops, want 0", res.Ops)
	}
	if res.Failures == 0 {
		t.Error("partial result should record the power failures spent retrying")
	}
	for _, want := range []string{"op 0", power.WeakPower.Name, "buffer"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestOpCostMatchesEnergyModel(t *testing.T) {
	// The cost sim must price ops through energy.Model — the same table
	// the regionbudget static analyzer reads. Any drift between the two
	// fails here.
	cs := NewCostSim(tile.DefaultConfig())
	em := energy.Model{Dev: cs.Dev}
	ops := []Op{
		{MACs: 4096, WeightRead: 2048, InputRead: 512, OutWrite: 256, IndWrite: 2},
		{MACs: 128, WeightRead: 64, OutWrite: 1024, IndWrite: 2},
		{MACs: 100000, WeightRead: 8192, InputRead: 8192},
		{MACs: 4096, WeightRead: 2048, OutWrite: 256, SerialWrite: true},
	}
	for i := range ops {
		op := &ops[i]
		for _, mode := range []tile.Mode{tile.Intermittent, tile.Continuous} {
			gotT, gotE, _ := cs.opCost(op, mode)
			overlapped := mode == tile.Intermittent && !op.SerialWrite
			wantT, wantE := em.OpCost(op.MACs, op.WeightRead+op.InputRead, op.OutWrite+op.IndWrite, overlapped)
			if gotT != wantT || gotE != wantE {
				t.Errorf("op %d mode %v: opCost (%g, %g) != energy.Model.OpCost (%g, %g)",
					i, mode, gotT, gotE, wantT, wantE)
			}
		}
		gotT, gotE := cs.recoveryCost(op)
		wantT, wantE := em.RecoveryCost(int64(cs.Cfg.IndicatorBytes)+4, op.RefetchBytes)
		if gotT != wantT || gotE != wantE {
			t.Errorf("op %d: recoveryCost (%g, %g) != energy.Model.RecoveryCost (%g, %g)",
				i, gotT, gotE, wantT, wantE)
		}
	}
}

// ---------------------------------------------------------------------------
// Functional engine

func engineSamples(rng *rand.Rand, n int) []nn.Sample {
	var out []nn.Sample
	for i := 0; i < n; i++ {
		x := tensor.New(2, 16, 16)
		for j := range x.Data {
			x.Data[j] = rng.Float32()*2 - 1
		}
		out = append(out, nn.Sample{X: x, Label: i % 4})
	}
	return out
}

func newTestEngine(t *testing.T, seed int64, pruneEvery int) (*Engine, []nn.Sample) {
	t.Helper()
	net, specs, cfg := buildNet(seed)
	if pruneEvery > 0 {
		pruneSome(net, pruneEvery)
	}
	rng := rand.New(rand.NewSource(seed + 100))
	samples := engineSamples(rng, 8)
	e, err := NewEngine(net, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Calibrate(samples[:4])
	return e, samples
}

func TestEngineMatchesFloatPrediction(t *testing.T) {
	e, samples := newTestEngine(t, 10, 0)
	agree := 0
	for _, s := range samples {
		res, err := e.Infer(s.X, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Pred == e.Net.Predict(s.X) {
			agree++
		}
	}
	if agree < len(samples)*3/4 {
		t.Errorf("engine/float agreement %d/%d too low", agree, len(samples))
	}
}

func TestEngineLogitsCloseToFloat(t *testing.T) {
	e, samples := newTestEngine(t, 11, 0)
	res, err := e.Infer(samples[0].X, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := e.Net.Forward(samples[0].X)
	for i := range res.Logits {
		if math.Abs(float64(res.Logits[i]-ref.Data[i])) > 0.25 {
			t.Errorf("logit %d: engine %v vs float %v", i, res.Logits[i], ref.Data[i])
		}
	}
}

func TestEngineFailureEquivalence(t *testing.T) {
	// The headline correctness property: inference interrupted by power
	// failures produces bit-identical logits to an uninterrupted run.
	// N=1 would fail at every boundary, denying forward progress by
	// construction (no real supply does that: a recharged buffer always
	// completes at least one op), so N=2 is the harshest survivable rate.
	for _, everyN := range []int64{2, 3, 7, 50} {
		e, samples := newTestEngine(t, 12, 3)
		clean, err := e.Infer(samples[0].X, nil)
		if err != nil {
			t.Fatal(err)
		}
		faulty, err := e.Infer(samples[0].X, &EveryN{N: everyN})
		if err != nil {
			t.Fatal(err)
		}
		if faulty.Stats.Failures == 0 {
			t.Fatalf("injector N=%d produced no failures", everyN)
		}
		for i := range clean.Logits {
			if clean.Logits[i] != faulty.Logits[i] {
				t.Fatalf("N=%d: logit %d differs: clean %v faulty %v (failures=%d)",
					everyN, i, clean.Logits[i], faulty.Logits[i], faulty.Stats.Failures)
			}
		}
		if faulty.Stats.ReExecOps == 0 {
			t.Errorf("N=%d: failures occurred but no ops re-executed", everyN)
		}
	}
}

func TestEngineCommittedWorkIdenticalUnderFailures(t *testing.T) {
	e, samples := newTestEngine(t, 13, 2)
	clean, err := e.Infer(samples[1].X, nil)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := e.Infer(samples[1].X, &EveryN{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Stats.Ops != faulty.Stats.Ops || clean.Stats.Jobs != faulty.Stats.Jobs {
		t.Errorf("committed ops/jobs differ: clean %d/%d faulty %d/%d",
			clean.Stats.Ops, clean.Stats.Jobs, faulty.Stats.Ops, faulty.Stats.Jobs)
	}
	// The faulty run must have paid extra reads for re-execution.
	if faulty.Stats.OpReadBytes <= clean.Stats.OpReadBytes {
		t.Error("re-execution should cost extra NVM reads")
	}
}

func TestEngineStatsMatchSchedule(t *testing.T) {
	// Without failures, the functional engine's op-level NVM traffic must
	// equal the analytic schedule's, tying the two views together.
	e, samples := newTestEngine(t, 14, 3)
	res, err := e.Infer(samples[0].X, nil)
	if err != nil {
		t.Fatal(err)
	}
	ops := ScheduleFromNetwork(e.Net, e.Specs, tile.Intermittent, e.Cfg)
	var wantWrite, wantRead, wantJobs, wantOps int64
	for _, op := range ops {
		wantWrite += op.OutWrite + op.IndWrite
		wantRead += op.WeightRead + op.InputRead
		wantJobs += op.Jobs
		wantOps++
	}
	if res.Stats.OpWriteBytes != wantWrite {
		t.Errorf("OpWriteBytes = %d, schedule says %d", res.Stats.OpWriteBytes, wantWrite)
	}
	if res.Stats.OpReadBytes != wantRead {
		t.Errorf("OpReadBytes = %d, schedule says %d", res.Stats.OpReadBytes, wantRead)
	}
	if res.Stats.Jobs != wantJobs || res.Stats.Ops != wantOps {
		t.Errorf("jobs/ops = %d/%d, schedule says %d/%d", res.Stats.Jobs, res.Stats.Ops, wantJobs, wantOps)
	}
}

func TestEnginePrunedSkipsZeroBlocks(t *testing.T) {
	eFull, samples := newTestEngine(t, 15, 0)
	ePruned, _ := newTestEngine(t, 15, 2)
	full, err := eFull.Infer(samples[0].X, nil)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := ePruned.Infer(samples[0].X, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Stats.Ops >= full.Stats.Ops || pruned.Stats.OpWriteBytes >= full.Stats.OpWriteBytes {
		t.Error("BSR did not skip pruned blocks")
	}
}

func TestEngineHandlesHeavyFailureRate(t *testing.T) {
	// Fail at every single preservation boundary once: forward progress
	// must still complete (each op commits before the next boundary).
	e, samples := newTestEngine(t, 16, 3)
	res, err := e.Infer(samples[0].X, &EveryN{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := e.Infer(samples[0].X, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.Logits {
		if clean.Logits[i] != res.Logits[i] {
			t.Fatal("heavy failure rate changed the result")
		}
	}
}

func TestRescaleQ(t *testing.T) {
	q := rescaleQ(16384, 0, 1) // 0.5 at shift 0 -> 0.25 slot at shift 1
	if q != 8192 {
		t.Errorf("rescale down = %d, want 8192", q)
	}
	q = rescaleQ(8192, 1, 0)
	if q != 16384 {
		t.Errorf("rescale up = %d, want 16384", q)
	}
	// Saturation when moving to a smaller scale.
	q = rescaleQ(30000, 3, 0)
	if q != 32767 {
		t.Errorf("rescale saturate = %d, want 32767", q)
	}
}

func TestCostSimTraceDriven(t *testing.T) {
	net, specs, cfg := buildNet(20)
	cs := NewCostSim(cfg)
	ops := ScheduleFromNetwork(net, specs, tile.Intermittent, cfg)
	// Bright trace vs dim trace: the dim day must be slower.
	bright := power.Trace{Times: []float64{0, 100}, Powers: []float64{16e-3, 16e-3}}
	dim := power.Trace{Times: []float64{0, 100}, Powers: []float64{3e-3, 3e-3}}
	bs, err := power.NewTraceSim(power.DefaultBuffer(), bright, 1)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := power.NewTraceSim(power.DefaultBuffer(), dim, 1)
	if err != nil {
		t.Fatal(err)
	}
	rb := mustRunWithSim(t, cs, ops, tile.Intermittent, bs)
	rd := mustRunWithSim(t, cs, ops, tile.Intermittent, ds)
	if rb.Latency >= rd.Latency {
		t.Errorf("bright trace latency %v >= dim %v", rb.Latency, rd.Latency)
	}
	if rd.Failures <= rb.Failures {
		t.Errorf("dim trace failures %d <= bright %d", rd.Failures, rb.Failures)
	}
}

func TestCostSimRunMatchesRunWithSim(t *testing.T) {
	net, specs, cfg := buildNet(21)
	cs := NewCostSim(cfg)
	ops := ScheduleFromNetwork(net, specs, tile.Intermittent, cfg)
	a := mustRun(t, cs, ops, tile.Intermittent, power.WeakPower, 5)
	b := mustRunWithSim(t, cs, ops, tile.Intermittent, power.NewSim(power.DefaultBuffer(), power.WeakPower, 5))
	if a != b {
		t.Error("Run and RunWithSim diverged for the same supply/seed")
	}
}
