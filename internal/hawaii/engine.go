package hawaii

import (
	"fmt"

	"iprune/internal/fixed"
	"iprune/internal/nn"
	"iprune/internal/obs"
	"iprune/internal/quant"
	"iprune/internal/tensor"
	"iprune/internal/tile"
)

// FailureInjector decides when simulated power fails during functional
// execution. It is consulted at every preservation boundary; returning
// true wipes the volatile state and forces progress recovery.
type FailureInjector interface {
	Fail() bool
}

// NoFailures never fails.
type NoFailures struct{}

// Fail implements FailureInjector.
func (NoFailures) Fail() bool { return false }

// EveryN fails at every N-th preservation boundary.
type EveryN struct {
	N     int64
	count int64
}

// Fail implements FailureInjector.
func (f *EveryN) Fail() bool {
	if f.N <= 0 {
		return false
	}
	f.count++
	return f.count%f.N == 0
}

// ExecStats reports what one functional inference did.
type ExecStats struct {
	Ops           int64 // accelerator ops committed
	Jobs          int64 // accelerator outputs committed
	Failures      int64 // injected power failures
	ReExecOps     int64 // ops re-executed after failures
	OpReadBytes   int64 // NVM reads by ops (weights, inputs, partials)
	OpWriteBytes  int64 // NVM writes by ops (outputs + indicators)
	AuxWriteBytes int64 // engine-internal writes (input transform, OFM finalize)
	AuxReadBytes  int64 // engine-internal reads (finalize, CPU stages)
}

// InferResult is the outcome of a functional inference.
type InferResult struct {
	Logits []float32
	Pred   int
	Stats  ExecStats
}

// Engine functionally executes a deployed model with progress
// preservation and recovery, mirroring HAWAII⁺: every accelerator op's
// outputs go straight to NVM together with a job-counter progress
// indicator; on power failure only the interrupted op is re-executed.
//
// Partial sums ping-pong between two NVM buffers indexed by the parity of
// the op's position along the reduction, so an op interrupted between its
// data write and its counter commit re-executes idempotently — it reads
// the previous parity's buffer, which the failed attempt never touched.
type Engine struct {
	Net   *nn.Network
	Specs []tile.LayerSpec
	Cfg   tile.Config
	Model *quant.Model

	// Trace receives the functional execution events (op attempts and
	// commits, preservation writes, injected failures, recovery
	// re-execution, layer boundaries). Nil disables tracing; emission is
	// guarded so the disabled path allocates nothing per op.
	Trace obs.Tracer

	// Price calibrates the trace timeline: nil stamps events in
	// abstract preservation steps (the engine itself has no notion of
	// seconds), while a Pricer — NewTracePricer over the shared energy
	// model — stamps simulated seconds and joules, putting engine
	// traces on the same axis as CostSim traces of the same schedule.
	// Pricing only shapes observation; execution is bit-identical
	// either way.
	Price obs.Pricer

	inShift   int
	outShifts []int // per prunable layer

	clk obs.EnergyClock
	nvm nvmState
}

// nvmState is the persistent store: everything here survives failures.
// It models the FRAM; every store must come from a function marked
// //iprune:nvm-api so preservation accounting stays sound.
//
//iprune:nvm
type nvmState struct {
	acts      map[int][]fixed.Q15 // committed activation after net layer i
	actShifts map[int]int
	stage     int         // first uncommitted net-layer index
	txDone    bool        // input transform of the current stage committed
	col       []fixed.Q15 // transformed (im2col) input of current stage
	opCounter int64       // committed ops of the current stage
	partial   [2][]fixed.Q15
}

// The commit primitives below are the engine's only NVM write sites.
// Each models one atomic preservation point (on the device: a bounded
// FRAM store sequence completed within the energy budget of a single
// capacitor charge). They are marked //iprune:preserve: the warhazard
// analyzer treats a call as ending the current WAR interval and exempts
// their bodies, which by nature read-modify-write the store.

// resetNVM reinitializes the persistent store for a fresh inference and
// commits the quantized input as the layer -1 activation.
//
//iprune:nvm-api
//iprune:preserve
func (e *Engine) resetNVM(in []fixed.Q15) {
	e.nvm = nvmState{acts: map[int][]fixed.Q15{}, actShifts: map[int]int{}}
	e.nvm.acts[-1] = in
	e.nvm.actShifts[-1] = e.inShift
}

// commitAct atomically publishes a stage's output activation — the
// preservation point that ends a CPU stage or a finalize interval.
//
//iprune:nvm-api
//iprune:preserve
func (e *Engine) commitAct(li int, act []fixed.Q15, shift int) {
	e.nvm.acts[li] = act
	e.nvm.actShifts[li] = shift
}

// commitStage advances the committed stage cursor and resets the
// per-stage NVM cursors for the next one.
//
//iprune:nvm-api
//iprune:preserve
func (e *Engine) commitStage() {
	e.nvm.stage++
	e.nvm.opCounter = 0
	e.nvm.txDone = false
}

// commitTransform publishes the transformed (im2col) GEMM operand and
// sizes the ping-pong partial buffers for a fresh stage entry.
//
//iprune:nvm-api
//iprune:preserve
func (e *Engine) commitTransform(col []fixed.Q15, mn int) {
	e.nvm.col = col
	e.nvm.txDone = true
	e.nvm.partial[0] = make([]fixed.Q15, mn)
	e.nvm.partial[1] = make([]fixed.Q15, mn)
}

// commitOp publishes the job counter after an op's data write — the
// HAWAII job-counter preservation step.
//
//iprune:nvm-api
//iprune:preserve
func (e *Engine) commitOp(ord int64) {
	e.nvm.opCounter = ord + 1
}

// NewEngine deploys the network (BSR + Q15) and prepares the engine.
// Output scale shifts default to 2 everywhere; run Calibrate with a few
// samples to fit them to the activation ranges.
func NewEngine(net *nn.Network, specs []tile.LayerSpec, cfg tile.Config) (*Engine, error) {
	model, err := quant.Deploy(net, specs)
	if err != nil {
		return nil, err
	}
	e := &Engine{Net: net, Specs: specs, Cfg: cfg, Model: model}
	e.outShifts = make([]int, len(specs))
	for i := range e.outShifts {
		e.outShifts[i] = 2
	}
	return e, nil
}

// Calibrate runs the float network over the samples and sets each
// prunable layer's output shift (and the input shift) from the observed
// activation ranges, the standard post-training calibration step.
//
//iprune:allow-float post-training calibration runs the float reference network
func (e *Engine) Calibrate(samples []nn.Sample) {
	maxIn := 0.0
	maxOut := make([]float64, len(e.Specs))
	for _, s := range samples {
		for _, v := range s.X.Data {
			if a := abs64(float64(v)); a > maxIn {
				maxIn = a
			}
		}
		x := s.X
		pi := 0
		for _, l := range e.Net.Layers {
			x = l.Forward(x)
			if _, ok := l.(nn.Prunable); ok {
				for _, v := range x.Data {
					if a := abs64(float64(v)); a > maxOut[pi] {
						maxOut[pi] = a
					}
				}
				pi++
			}
		}
	}
	e.inShift = shiftFor(maxIn)
	for i, m := range maxOut {
		e.outShifts[i] = shiftFor(m)
	}
}

//iprune:allow-float calibration helper
func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

//iprune:allow-float calibration helper
func shiftFor(maxAbs float64) int {
	s := 0
	for maxAbs >= 1.0 {
		maxAbs /= 2
		s++
	}
	return s
}

// rescaleQ converts a Q15 value from one power-of-two scale to another
// with rounding and saturation.
func rescaleQ(q fixed.Q15, from, to int) fixed.Q15 {
	if from == to {
		return q
	}
	if from > to {
		v := int64(q) << uint(from-to)
		if v > fixed.One {
			return fixed.Q15(fixed.One)
		}
		if v < fixed.MinVal {
			return fixed.Q15(fixed.MinVal)
		}
		return fixed.Q15(v)
	}
	sh := uint(to - from)
	v := int64(q)
	v += 1 << (sh - 1)
	return fixed.Q15(v >> sh)
}

// Infer executes one sample. The injector is consulted at every
// preservation boundary; the run completes regardless of failures, and
// the result is bit-identical to a failure-free run. Every NVM store is
// routed through one of the //iprune:preserve commit primitives below,
// so the write surface the warhazard analyzer reasons about is exactly
// the set of named preservation points.
func (e *Engine) Infer(x *tensor.Tensor, inj FailureInjector) (*InferResult, error) {
	if inj == nil {
		inj = NoFailures{}
	}
	// Quantize the input "sensor reading" into NVM.
	in := make([]fixed.Q15, x.Len())
	scale := pow2(-e.inShift)
	for i, v := range x.Data {
		in[i] = fixed.FromFloat(float64(v) * scale) //iprune:allow-float sensor-reading quantization boundary
	}
	e.resetNVM(in)
	var stats ExecStats

	e.clk = obs.EnergyClock{T: e.Trace, P: e.Price}
	e.clk.Emit(obs.KindPowerOn, -1, -1, 0, 0, 0)
	pi := 0 // prunable index of the current stage (advances with stages)
	resuming := false
	for e.nvm.stage < len(e.Net.Layers) {
		li := e.nvm.stage
		layer := e.Net.Layers[li]
		if resuming {
			// Reboot after the injected failure: the buffer recharges
			// (dead-time on the calibrated timeline), then recovery
			// re-enters the interrupted stage back on power.
			e.clk.Emit(obs.KindCharge, li, -1, 0, 0, 0)
			e.clk.Emit(obs.KindPowerOn, li, -1, 0, 0, 0)
		} else {
			e.clk.Emit(obs.KindLayerStart, li, -1, 0, 0, 0)
		}
		var err error
		var failed bool
		if _, ok := layer.(nn.Prunable); ok {
			failed, err = e.runPrunableStage(li, pi, inj, resuming, &stats)
		} else {
			failed, err = e.runCPUStage(li, inj, &stats)
		}
		if err != nil {
			return nil, err
		}
		if failed {
			// Power failure: volatile state is lost; NVM counters decide
			// where execution resumes. Recovery re-enters the same stage.
			stats.Failures++
			e.clk.Emit(obs.KindFailure, li, -1, 0, 0, 0)
			e.clk.Emit(obs.KindPowerOff, li, -1, 0, 0, 0)
			resuming = true
			continue
		}
		resuming = false
		e.clk.Emit(obs.KindLayerEnd, li, -1, 0, 0, 0)
		if _, ok := layer.(nn.Prunable); ok {
			pi++
		}
		e.commitStage()
	}
	e.clk.Emit(obs.KindPowerOff, -1, -1, 0, 0, 0)

	lastIdx := len(e.Net.Layers) - 1
	out := e.nvm.acts[lastIdx]
	outShift := e.nvm.actShifts[lastIdx]
	logits := make([]float32, len(out))
	s := pow2(outShift)
	for i, q := range out {
		logits[i] = float32(q.Float() * s) //iprune:allow-float logit dequantization for the caller
	}
	best := 0
	for i := range logits {
		if logits[i] > logits[best] {
			best = i
		}
	}
	return &InferResult{Logits: logits, Pred: best, Stats: stats}, nil
}

//iprune:allow-float calibration helper for power-of-two scales
func pow2(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 2
	}
	for i := 0; i > n; i-- {
		v /= 2
	}
	return v
}

// runCPUStage executes a non-accelerated layer (activation, pooling,
// flatten) as one atomic recomputable step: it reads the committed input
// activation from NVM, computes in VM, and commits the output through
// commitAct. A failure before the commit simply recomputes.
//
//iprune:hotpath
//iprune:allow-budget one recomputable step over a layer-sized activation; the layer fits the VM working set by construction and commitAct cuts the region
func (e *Engine) runCPUStage(li int, inj FailureInjector, stats *ExecStats) (failed bool, err error) {
	in := e.nvm.acts[li-1]
	shift := e.nvm.actShifts[li-1]
	stats.AuxReadBytes += int64(2 * len(in))
	var out []fixed.Q15
	switch l := e.Net.Layers[li].(type) {
	case *nn.ReLU:
		out = make([]fixed.Q15, len(in))
		for i, q := range in {
			if q > 0 {
				out[i] = q
			}
		}
	case *nn.Flatten:
		out = append([]fixed.Q15(nil), in...)
	case *nn.MaxPool2D:
		out = make([]fixed.Q15, l.C*l.OutH*l.OutW)
		oi := 0
		for c := 0; c < l.C; c++ {
			plane := in[c*l.InH*l.InW:]
			for oh := 0; oh < l.OutH; oh++ {
				for ow := 0; ow < l.OutW; ow++ {
					var best fixed.Q15
					first := true
					for kh := 0; kh < l.KH; kh++ {
						for kw := 0; kw < l.KW; kw++ {
							v := plane[(oh*l.SH+kh)*l.InW+(ow*l.SW+kw)]
							if first || v > best {
								best = v
								first = false
							}
						}
					}
					out[oi] = best
					oi++
				}
			}
		}
	case *nn.GlobalAvgPool:
		out = make([]fixed.Q15, l.C)
		hw := l.H * l.W
		for c := 0; c < l.C; c++ {
			var acc int64
			for _, q := range in[c*hw : c*hw+hw] {
				acc += int64(q)
			}
			out[c] = fixed.Q15(acc / int64(hw))
		}
	default:
		return false, fmt.Errorf("hawaii: unsupported CPU stage %T", e.Net.Layers[li])
	}
	if inj.Fail() {
		return true, nil
	}
	e.commitAct(li, out, shift)
	stats.AuxWriteBytes += int64(2 * len(out))
	e.clk.Emit(obs.KindPreserve, li, -1, 0, int64(2*len(in)), int64(2*len(out)))
	return false, nil
}

// runPrunableStage executes one conv/FC layer on the accelerator as a
// sequence of ops with job-counter preservation. Returns failed=true when
// the injector fired; the committed NVM cursors make re-entry resume at
// the interrupted op.
//
//iprune:hotpath
//iprune:allow-budget the op loop preserves job cursors after every accelerator op; op sizes are plan-dependent and CostSim checks each against the buffer (ErrOpExceedsBuffer)
func (e *Engine) runPrunableStage(li, pi int, inj FailureInjector, resuming bool, stats *ExecStats) (failed bool, err error) {
	spec := &e.Specs[pi]
	lw := &e.Model.Layers[pi]
	w := lw.Weights
	outShift := e.outShifts[pi]
	inAct := e.nvm.acts[li-1]
	inShift := e.nvm.actShifts[li-1]

	// Input transformation (paper: "tile input data transformation"):
	// materialize the K×N GEMM operand in NVM once per stage.
	if !e.nvm.txDone {
		col, terr := e.transformInput(li, spec, inAct)
		if terr != nil {
			return false, terr
		}
		if inj.Fail() {
			return true, nil
		}
		e.commitTransform(col, spec.M*spec.N)
		stats.AuxWriteBytes += int64(2 * len(col))
		e.clk.Emit(obs.KindPreserve, li, -1, 0, 0, int64(2*len(col)))
		// If the failure hit the transform itself, redoing it was the
		// recovery; the first op then runs for the first time.
		resuming = false
	}

	brs := (spec.M + spec.TM - 1) / spec.TM
	bcs := (spec.K + spec.TK - 1) / spec.TK
	nTiles := (spec.N + spec.TN - 1) / spec.TN
	bk := w.BM * w.BK

	// VM-side lookup from block coordinates to BSR slot; rebuilt on every
	// (re-)entry, so it needs no preservation.
	slotOf := make([]int, brs*bcs)
	for i := range slotOf {
		slotOf[i] = -1
	}
	for br := 0; br < brs; br++ {
		for s := int(w.RowPtr[br]); s < int(w.RowPtr[br+1]); s++ {
			slotOf[br*bcs+int(w.ColIdx[s])] = s
		}
	}

	// Enumerate ops in the same input-stationary (j, bc, br) order as
	// BuildSchedule: one input tile serves every block row of a k-panel.
	var ord int64
	for j := 0; j < nTiles; j++ {
		n0 := j * spec.TN
		tn := min(spec.TN, spec.N-n0)
		for bc := 0; bc < bcs; bc++ {
			kk := min(spec.TK, spec.K-bc*spec.TK)
			inputCharged := false
			for br := 0; br < brs; br++ {
				s := slotOf[br*bcs+bc]
				if s < 0 {
					continue // pruned block: BSR skips it entirely
				}
				seen := s - int(w.RowPtr[br])
				if ord < e.nvm.opCounter {
					ord++
					if !inputCharged {
						// The input tile was loaded before the failure;
						// resuming mid-panel re-fetches it (counted with
						// the re-executed op below, not here).
						inputCharged = true
					}
					continue // already committed before the failure
				}
				r0 := br * spec.TM
				rm := min(spec.TM, spec.M-r0)
				reExec := false
				if resuming {
					// Only the interrupted op re-executes (HAWAII's
					// recovery property); ops after it run for the first
					// time. The re-fetch (weight block, input tile,
					// preserved partials) rides on the event so the
					// calibrated timeline can price recovery like the
					// cost simulator's RefetchBytes.
					stats.ReExecOps++
					reExec = true
					resuming = false
					inputCharged = false // lost with VM; re-fetch
					refetch := int64(2*rm*kk) + int64(2*kk*tn) + int64(2*rm*tn)
					e.clk.Emit(obs.KindReExec, li, ord, 0, refetch, 0)
				}
				e.clk.Emit(obs.KindOpStart, li, ord, 0, 0, 0)
				block := w.Blocks[s*bk : (s+1)*bk]
				src := e.nvm.partial[(seen+1)%2]
				dst := e.nvm.partial[seen%2]
				opRead := int64(2 * rm * kk) // weight block
				if !inputCharged {
					opRead += int64(2 * kk * tn) // input tile
					inputCharged = true
				}
				if reExec {
					// Recovery re-reads the preserved partials; in steady
					// state they live in the VM-resident panel (the NVM
					// parity buffers below model the preserved copy).
					opRead += int64(2 * rm * tn)
				}
				stats.OpReadBytes += opRead
				accumulateBlock(dst, src, e.nvm.col, block,
					seen == 0, r0, rm, n0, tn, bc*spec.TK, kk,
					spec.N, w.BK, w.Shift, inShift, outShift)
				opWrite := int64(2*rm*tn) + int64(e.Cfg.IndicatorBytes)
				stats.OpWriteBytes += opWrite
				if inj.Fail() {
					// Failure after the data write but before the counter
					// commit: the op will re-execute on resume, reading the
					// untouched previous-parity buffer — idempotent.
					return true, nil
				}
				e.commitOp(ord)
				stats.Ops++
				stats.Jobs += int64(rm * tn)
				if e.clk.Enabled() {
					// One emission covers the committed op and its
					// preservation: the clock prices the op like the
					// cost simulator (overlapped write) and renders the
					// trailing preserve instant itself.
					macs := int64(rm) * int64(kk) * int64(tn)
					e.clk.Emit(obs.KindOpCommit, li, ord, macs, opRead, opWrite)
				}
				ord++
			}
		}
	}

	// Finalize: gather each row strip from its last parity, add biases,
	// commit the OFM as the stage's activation. Idempotent on re-entry.
	out := make([]fixed.Q15, spec.M*spec.N)
	for br := 0; br < brs; br++ {
		r0 := br * spec.TM
		rm := min(spec.TM, spec.M-r0)
		kept := int(w.RowPtr[br+1] - w.RowPtr[br])
		var buf []fixed.Q15
		if kept > 0 {
			buf = e.nvm.partial[(kept-1)%2]
		}
		for r := 0; r < rm; r++ {
			gr := r0 + r
			b := rescaleQ(lw.Biases.Data[gr], lw.Biases.Shift, outShift)
			for c := 0; c < spec.N; c++ {
				v := fixed.Q15(0)
				if buf != nil {
					v = buf[gr*spec.N+c]
				}
				out[gr*spec.N+c] = fixed.Add(v, b)
			}
		}
	}
	stats.AuxReadBytes += int64(2 * spec.M * spec.N)
	if inj.Fail() {
		return true, nil
	}
	e.commitAct(li, out, outShift)
	stats.AuxWriteBytes += int64(2 * spec.M * spec.N)
	e.clk.Emit(obs.KindPreserve, li, -1, 0, int64(2*spec.M*spec.N), int64(2*spec.M*spec.N))
	return false, nil
}

// accumulateBlock is the MAC inner kernel of one accelerator op: it
// widens one surviving weight block against the transformed input
// panel, narrows each dot product to the output scale, and accumulates
// it onto the previous parity's partials — writing dst, reading src.
// The caller passes the parity buffers explicitly (dst is this op's
// buffer, src the opposite one; first suppresses the src read on a
// row strip's first op), which keeps the ping-pong WAR discipline
// visible in the signature and leaves the kernel free of engine state,
// so block-parallel execution can shard calls across row strips.
//
//iprune:hotpath
//iprune:allow-budget block dimensions come from the tile plan, which sizes every op to the VM budget; one block never spans a preservation boundary
func accumulateBlock(dst, src, col, block []fixed.Q15,
	first bool, r0, rm, n0, tn, k0, kk, n, bk, wShift, inShift, outShift int) {
	for r := 0; r < rm; r++ {
		gr := r0 + r
		wrow := block[r*bk:]
		for c := 0; c < tn; c++ {
			gc := n0 + c
			var acc int64
			for kq := 0; kq < kk; kq++ {
				acc += int64(wrow[kq]) * int64(col[(k0+kq)*n+gc])
			}
			contrib := narrowAcc(acc, wShift, inShift, outShift)
			prev := fixed.Q15(0)
			if !first {
				prev = src[gr*n+gc]
			}
			dst[gr*n+gc] = fixed.Add(prev, contrib)
		}
	}
}

// narrowAcc converts a 30-fractional-bit accumulator at combined scale
// 2^(wShift+xShift) to Q15 at scale 2^outShift.
func narrowAcc(acc int64, wShift, xShift, outShift int) fixed.Q15 {
	sh := 15 + outShift - wShift - xShift
	var v int64
	switch {
	case sh > 0:
		v = acc + (1 << (sh - 1))
		v >>= uint(sh)
	case sh < 0:
		v = acc << uint(-sh)
	default:
		v = acc
	}
	if v > fixed.One {
		return fixed.Q15(fixed.One)
	}
	if v < fixed.MinVal {
		return fixed.Q15(fixed.MinVal)
	}
	return fixed.Q15(v)
}

// transformInput builds the K×N GEMM operand for the stage: im2col for
// convolutions (zero padding included), the activation vector for FC.
func (e *Engine) transformInput(li int, spec *tile.LayerSpec, inAct []fixed.Q15) ([]fixed.Q15, error) {
	switch l := e.Net.Layers[li].(type) {
	case *nn.FC:
		if len(inAct) != spec.K {
			return nil, fmt.Errorf("hawaii: FC %s input %d, want %d", spec.Name, len(inAct), spec.K)
		}
		return append([]fixed.Q15(nil), inAct...), nil
	case *nn.Conv2D:
		g := &l.Geom
		col := make([]fixed.Q15, spec.K*spec.N)
		row := 0
		for c := 0; c < g.InC; c++ {
			plane := inAct[c*g.InH*g.InW:]
			for kh := 0; kh < g.KH; kh++ {
				for kw := 0; kw < g.KW; kw++ {
					dst := col[row*spec.N:]
					i := 0
					for oh := 0; oh < g.OutH; oh++ {
						ih := oh*g.StrideH - g.PadH + kh
						for ow := 0; ow < g.OutW; ow++ {
							iw := ow*g.StrideW - g.PadW + kw
							if ih < 0 || ih >= g.InH || iw < 0 || iw >= g.InW {
								dst[i] = 0
							} else {
								dst[i] = plane[ih*g.InW+iw]
							}
							i++
						}
					}
					row++
				}
			}
		}
		return col, nil
	default:
		return nil, fmt.Errorf("hawaii: unsupported prunable stage %T", e.Net.Layers[li])
	}
}
