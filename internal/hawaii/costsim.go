// Package hawaii implements the HAWAII⁺ intermittent inference engine of
// the paper (Section III-D): the job-counter-based progress preservation
// and recovery scheme of HAWAII [10] extended with BSR sparse weights,
// accelerated vector-matrix multiplication, tile input transformation and
// VM-filling tile sizes.
//
// The package offers two coordinated views of the engine:
//
//   - CostSim (this file): an event-driven simulator that walks the
//     accelerator-op schedule of a model and integrates latency and energy
//     against the device profile and the harvesting supply, including
//     power failures, recharge dead time and progress recovery. It scales
//     to full models and generates the paper's Figure 2 and Figure 5.
//
//   - Engine (engine.go): a functional simulator that really executes
//     Q15 inference job by job against simulated VM/NVM state with
//     injected power failures, demonstrating that preservation/recovery
//     produces bit-identical results to an uninterrupted run.
package hawaii

import (
	"fmt"

	"iprune/internal/device"
	"iprune/internal/energy"
	"iprune/internal/nn"
	"iprune/internal/obs"
	"iprune/internal/power"
	"iprune/internal/tile"
)

// Op is one accelerator operation in the schedule: a TM×TK weight block
// times a TK×TN input tile producing TM×TN jobs (outputs).
type Op struct {
	Layer      int // spec index
	MACs       int64
	Jobs       int64 // outputs produced
	WeightRead int64 // bytes
	// InputRead is the amortized input-tile traffic: the kk×tn tile is
	// fetched once per k-panel and charged to the panel's first op.
	InputRead int64
	OutWrite  int64 // bytes (intermittent: per op; continuous: OFM share)
	IndWrite  int64 // bytes
	// RefetchBytes is what progress recovery must re-read if power fails
	// during this op: its weight block, the full input tile, and the
	// preserved partial outputs it accumulates onto.
	RefetchBytes int64
	// SerialWrite marks ops whose output write cannot overlap compute
	// (task-level preservation flushes results only at task end).
	SerialWrite bool
}

// BuildSchedule expands a layer spec and mask into the ordered op list the
// engine executes. The loop order is input-stationary — output-column
// tiles outermost, then k-blocks, then block rows — the low-memory GEMM
// ordering of [2]: the kk×tn input tile is fetched once per surviving
// k-panel and reused across every block row, while each op streams in its
// own weight block. BSR skips pruned blocks. Aggregated over the
// schedule, the counters match tile.CountLayer exactly; tests enforce
// this so the analytic criterion and the executed schedule can never
// drift apart.
//
//iprune:hotpath
//iprune:allow-budget host-side schedule construction; it plans power-cycle regions but never executes inside one
func BuildSchedule(spec *tile.LayerSpec, mask *nn.BlockMask, mode tile.Mode, cfg tile.Config) []Op {
	if mask != nil && (mask.Rows != spec.M || mask.Cols != spec.K || mask.BM != spec.TM || mask.BK != spec.TK) {
		panic(fmt.Sprintf("hawaii: mask geometry does not match spec for %s", spec.Name))
	}
	eb := int64(cfg.ElemBytes)
	brs := (spec.M + spec.TM - 1) / spec.TM
	bcs := (spec.K + spec.TK - 1) / spec.TK
	nTiles := (spec.N + spec.TN - 1) / spec.TN
	keep := func(br, bc int) bool {
		return mask == nil || mask.Keep[br*bcs+bc]
	}
	// seen[br] counts surviving k-blocks encountered per row strip within
	// one output-column tile; lastSeen[br] is the total, used to attribute
	// the continuous-mode OFM write to the op that completes the strip.
	lastSeen := make([]int, brs)
	for br := 0; br < brs; br++ {
		for bc := 0; bc < bcs; bc++ {
			if keep(br, bc) {
				lastSeen[br]++
			}
		}
	}
	ops := make([]Op, 0, brs*bcs*nTiles)
	seen := make([]int, brs)
	for j := 0; j < nTiles; j++ {
		tn := min(spec.TN, spec.N-j*spec.TN)
		for br := range seen {
			seen[br] = 0
		}
		for bc := 0; bc < bcs; bc++ {
			kk := min(spec.TK, spec.K-bc*spec.TK)
			inputCharged := false
			for br := 0; br < brs; br++ {
				if !keep(br, bc) {
					continue
				}
				rm := min(spec.TM, spec.M-br*spec.TM)
				op := Op{
					Layer:      spec.Index,
					MACs:       int64(rm) * int64(kk) * int64(tn),
					Jobs:       int64(rm) * int64(tn),
					WeightRead: int64(rm) * int64(kk) * eb,
				}
				op.RefetchBytes = op.WeightRead + int64(kk)*int64(tn)*eb + int64(rm)*int64(tn)*eb
				if !inputCharged {
					op.InputRead = int64(kk) * int64(tn) * eb
					inputCharged = true
				}
				if mode == tile.Intermittent {
					op.OutWrite = int64(rm) * int64(tn) * eb
					op.IndWrite = int64(cfg.IndicatorBytes)
				} else if seen[br] == lastSeen[br]-1 {
					// Continuous mode: the completed OFM strip tile is
					// written back once, attributed to the op finishing it.
					op.OutWrite = int64(rm) * int64(tn) * eb
				}
				ops = append(ops, op) //iprune:allow-alloc appends into a slice preallocated to full schedule capacity
				seen[br]++
			}
		}
	}
	return ops
}

// ScheduleFromNetwork builds the whole-model op schedule from the
// network's current masks.
func ScheduleFromNetwork(net *nn.Network, specs []tile.LayerSpec, mode tile.Mode, cfg tile.Config) []Op {
	prunables := net.Prunables()
	var ops []Op
	for i := range specs {
		ops = append(ops, BuildSchedule(&specs[i], prunables[i].Mask(), mode, cfg)...)
	}
	return ops
}

// Breakdown attributes active time to activities (paper Figure 2).
type Breakdown struct {
	ReadTime float64 // NVM reads (weights, inputs, partials)
	// WriteTime and ComputeTime attribute each op's exposed pipeline
	// stage: whichever of the write stream and the accelerator dominates
	// is charged, the other is hidden under it.
	WriteTime    float64
	ComputeTime  float64
	OverheadTime float64 // op issue + DMA/SPI invocation overheads
	RecoveryTime float64 // reboot + re-fetch + re-executed work after failures
}

// Result is the outcome of one simulated end-to-end inference.
type Result struct {
	Latency    float64 // wall-clock seconds including charging dead time
	ActiveTime float64 // powered-on seconds
	OffTime    float64 // charging seconds
	Energy     float64 // joules drawn by the device
	Failures   int     // power failures experienced
	Ops        int64   // accelerator operations completed
	Jobs       int64   // accelerator outputs produced (committed once)
	Break      Breakdown
}

// CostSim evaluates op schedules against a device profile.
type CostSim struct {
	Dev device.Profile
	Cfg tile.Config
	// Trace receives op, layer and recovery events from every Run; the
	// power simulator's own events (power-on/off, failure, charge) join
	// the same stream. Nil disables tracing at the cost of one branch
	// per op.
	Trace obs.Tracer
}

// NewCostSim constructs a simulator with the default MSP430 profile.
func NewCostSim(cfg tile.Config) *CostSim {
	return &CostSim{Dev: device.MSP430FR5994(), Cfg: cfg}
}

// opCost returns the latency, energy and breakdown attribution of one op.
// Reads happen first (DMA), then the accelerator runs while the previous
// outputs stream out — compute and preservation are pipelined (paper
// Section III-B), so the exposed time is max(compute, write). The pricing
// itself lives in energy.Model.OpCost — the one table the regionbudget
// static analyzer also reads — so the simulator and the analyzer can
// never disagree about what an op costs; only the Breakdown attribution
// (which pipeline stage the exposed time is charged to) is local.
//
//iprune:allow-float analytic cost model integrates seconds and joules, not device numerics
func (cs *CostSim) opCost(op *Op, mode tile.Mode) (t, e float64, b Breakdown) {
	d := &cs.Dev
	readBytes := op.WeightRead + op.InputRead
	overlapped := mode == tile.Intermittent && !op.SerialWrite
	t, e = energy.Model{Dev: cs.Dev}.OpCost(op.MACs, readBytes, op.OutWrite+op.IndWrite, overlapped)
	readT := d.TransferTime(readBytes, false)
	compT := d.ComputeTime(op.MACs)
	var writeT float64
	if op.OutWrite+op.IndWrite > 0 {
		writeT = d.TransferTime(op.OutWrite+op.IndWrite, true)
	}
	b.ReadTime = readT
	b.OverheadTime = d.OpOverheadTime
	if mode == tile.Intermittent && op.SerialWrite {
		b.ComputeTime = compT
		b.WriteTime = writeT
	} else if mode == tile.Intermittent {
		if writeT >= compT {
			b.WriteTime = writeT
			b.ComputeTime = 0 // fully hidden under the write stream
		} else {
			b.ComputeTime = compT
			b.WriteTime = 0
		}
	} else {
		b.ComputeTime = compT
		b.WriteTime = writeT
	}
	return t, e, b
}

// recoveryCost returns the time and energy of progress recovery after a
// failure interrupting op: reboot, progress-indicator read, the two extra
// BSR index reads to relocate the nonzero block (Section III-D), and the
// re-fetch of the interrupted op's tile data.
//
//iprune:allow-float analytic cost model integrates seconds and joules, not device numerics
func (cs *CostSim) recoveryCost(op *Op) (t, e float64) {
	idxBytes := int64(cs.Cfg.IndicatorBytes) + 2*2
	return energy.Model{Dev: cs.Dev}.RecoveryCost(idxBytes, op.RefetchBytes)
}

// ErrOpExceedsBuffer reports that a single op (or its recovery path)
// draws more energy than one full buffer charge supplies, so the
// schedule can never make progress under the given supply: the device
// would brown out at the same point on every retry. The regionbudget
// static analyzer exists to catch the source-level analogue of this
// condition before a deployment ever hits it at runtime.
type ErrOpExceedsBuffer struct {
	Op       int     // schedule index of the stuck op
	Supply   string  // supply name
	Recovery bool    // true if the recovery path, not the op itself, is stuck
	Energy   float64 // joules the stuck step needs in one charge
	Buffer   float64 // usable joules per charge
}

func (e *ErrOpExceedsBuffer) Error() string {
	what := "op"
	if e.Recovery {
		what = "recovery for op"
	}
	return fmt.Sprintf("hawaii: %s %d cannot complete under %s supply: needs %s in one power cycle but the buffer supplies %s",
		what, e.Op, e.Supply, energy.FormatJ(e.Energy), energy.FormatJ(e.Buffer))
}

// Run simulates one end-to-end inference of the schedule under the given
// execution mode and supply. seed controls harvest jitter. A non-nil
// error is *ErrOpExceedsBuffer: the schedule contains an op that can
// never fit one buffer charge, and the partial Result covers the work
// committed before the stuck op.
func (cs *CostSim) Run(ops []Op, mode tile.Mode, sup power.Supply, seed int64) (Result, error) {
	return cs.RunWithSim(ops, mode, power.NewSim(power.DefaultBuffer(), sup, seed))
}

// RunWithSim simulates the schedule against a caller-provided power
// simulator — the hook for trace-driven supplies (power.NewTraceSim) and
// custom buffers.
//
//iprune:allow-float analytic cost model integrates seconds and joules, not device numerics
func (cs *CostSim) RunWithSim(ops []Op, mode tile.Mode, sim *power.Sim) (Result, error) {
	sup := sim.Supply
	if mode == tile.Continuous && !sup.Continuous {
		panic("hawaii: the conventional data-reuse flow cannot survive power failures (Section II-B); use Intermittent mode with a harvested supply")
	}
	var tr obs.Tracer = obs.Nop{}
	if cs.Trace != nil {
		tr = cs.Trace
	}
	if sim.Trace == nil {
		sim.Trace = tr
	}
	traced := tr.Enabled()
	var res Result
	// The trace clock is res.Latency itself: every event is stamped with
	// the simulated wall-clock at which it begins, and layer-end events
	// carry the layer's inclusive span and energy delta so per-layer
	// sums reproduce the aggregate totals exactly.
	curLayer := -1
	var layerT0, layerE0 float64
	endLayer := func() {
		if traced && curLayer >= 0 {
			tr.Emit(obs.Event{
				Kind: obs.KindLayerEnd, Time: res.Latency,
				Dur: res.Latency - layerT0, Layer: curLayer, Op: -1,
				Energy: sim.EnergyUsed - layerE0,
			})
		}
	}
	for i := range ops {
		op := &ops[i]
		if op.Layer != curLayer {
			endLayer()
			curLayer = op.Layer
			layerT0, layerE0 = res.Latency, sim.EnergyUsed
			if traced {
				tr.Emit(obs.Event{Kind: obs.KindLayerStart, Time: res.Latency, Layer: curLayer, Op: -1})
			}
		}
		t, e, b := cs.opCost(op, mode)
		const maxRetries = 1000
		retries := 0
		for {
			if traced {
				tr.Emit(obs.Event{Kind: obs.KindOpStart, Time: res.Latency, Layer: curLayer, Op: int64(i)})
			}
			if !sim.Consume(e, t) {
				break // op committed
			}
			// Power failed during the op: its time is spent but the work
			// is lost; charge the dark period, then the recovery path.
			res.ActiveTime += t
			res.Latency += t
			off := sim.Recharge()
			res.OffTime += off
			res.Latency += off
			rt, re := cs.recoveryCost(op)
			for sim.Consume(re, rt) {
				// Failing during recovery itself: recharge and retry the
				// recovery (possible only under extreme profiles).
				off = sim.Recharge()
				res.OffTime += off
				res.Latency += off
				retries++
				if retries > maxRetries {
					res.Energy = sim.EnergyUsed
					res.Failures = sim.Failures
					return res, &ErrOpExceedsBuffer{
						Op: i, Supply: sup.Name, Recovery: true,
						Energy: re, Buffer: sim.Buffer.UsableEnergy(),
					}
				}
			}
			if traced {
				tr.Emit(obs.Event{
					Kind: obs.KindRecovery, Time: res.Latency, Dur: rt,
					Layer: curLayer, Op: int64(i), Energy: re,
					Read: op.RefetchBytes,
				})
			}
			res.ActiveTime += rt
			res.Latency += rt
			res.Break.RecoveryTime += rt
			retries++
			if retries > maxRetries {
				res.Energy = sim.EnergyUsed
				res.Failures = sim.Failures
				return res, &ErrOpExceedsBuffer{
					Op: i, Supply: sup.Name,
					Energy: e, Buffer: sim.Buffer.UsableEnergy(),
				}
			}
		}
		if traced {
			tr.Emit(obs.Event{
				Kind: obs.KindOpCommit, Time: res.Latency, Dur: t,
				Layer: curLayer, Op: int64(i), Energy: e,
				Read: op.WeightRead + op.InputRead,
			})
			if wb := op.OutWrite + op.IndWrite; wb > 0 {
				tr.Emit(obs.Event{
					Kind: obs.KindPreserve, Time: res.Latency + t,
					Layer: curLayer, Op: int64(i), Write: wb,
				})
			}
		}
		res.ActiveTime += t
		res.Latency += t
		res.Ops++
		res.Jobs += op.Jobs
		res.Break.ReadTime += b.ReadTime
		res.Break.WriteTime += b.WriteTime
		res.Break.ComputeTime += b.ComputeTime
		res.Break.OverheadTime += b.OverheadTime
	}
	endLayer()
	if traced && len(ops) > 0 {
		tr.Emit(obs.Event{Kind: obs.KindPowerOff, Time: res.Latency, Layer: -1, Op: -1})
	}
	res.Energy = sim.EnergyUsed
	res.Failures = sim.Failures
	return res, nil
}

// RunNetwork is a convenience wrapper: schedule + Run from a network's
// current masks.
func (cs *CostSim) RunNetwork(net *nn.Network, specs []tile.LayerSpec, mode tile.Mode, sup power.Supply, seed int64) (Result, error) {
	return cs.Run(ScheduleFromNetwork(net, specs, mode, cs.Cfg), mode, sup, seed)
}
