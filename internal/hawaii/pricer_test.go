package hawaii

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"iprune/internal/obs"
	"iprune/internal/power"
	"iprune/internal/tile"
)

// TestEngineCostSimSharedTimeAxis pins the tentpole calibration claim:
// a functional-engine run priced by TracePricer and a cost-sim run of
// the same network and supply stamp their traces in the same simulated
// seconds and joules. Under continuous power neither backend sees a
// failure, the op schedules are identical, and the per-op pricing goes
// through the same energy.Model.OpCost table — so the op-commit time
// and energy sums must agree to float tolerance, not merely correlate.
func TestEngineCostSimSharedTimeAxis(t *testing.T) {
	e, samples := newTestEngine(t, 30, 3)
	engRec := obs.NewRecorder()
	e.Trace = engRec
	e.Price = NewTracePricer(power.ContinuousPower, e.Cfg)
	if _, err := e.Infer(samples[0].X, nil); err != nil {
		t.Fatal(err)
	}

	cs := NewCostSim(e.Cfg)
	simRec := obs.NewRecorder()
	cs.Trace = simRec
	mustRunNetwork(t, cs, e.Net, e.Specs, tile.Intermittent, power.ContinuousPower, 1)

	type axis struct {
		name           string
		events         []obs.Event
		ops            int64
		timeJ, energyJ float64
	}
	sides := []*axis{
		{name: "engine", events: engRec.Events()},
		{name: "cost-sim", events: simRec.Events()},
	}
	for _, side := range sides {
		if len(side.events) == 0 {
			t.Fatalf("%s emitted no events", side.name)
		}
		// Both backends stamp simulated seconds: timestamps must be
		// monotone non-decreasing on each axis (instant events may share
		// a stamp with the span that produced them).
		for i := 1; i < len(side.events); i++ {
			if side.events[i].Time < side.events[i-1].Time-1e-12 {
				t.Fatalf("%s event %d (%s): time %g before %g",
					side.name, i, side.events[i].Kind, side.events[i].Time, side.events[i-1].Time)
			}
		}
		for i := range side.events {
			if ev := &side.events[i]; ev.Kind == obs.KindOpCommit {
				side.ops++
				side.timeJ += ev.Dur
				side.energyJ += ev.Energy
			}
		}
	}
	eng, sim := sides[0], sides[1]
	if eng.ops != sim.ops {
		t.Fatalf("engine committed %d ops, cost-sim %d", eng.ops, sim.ops)
	}
	relTol := func(got, want float64) bool {
		return math.Abs(got-want) <= 1e-9*math.Max(1, math.Abs(want))
	}
	if !relTol(eng.timeJ, sim.timeJ) {
		t.Errorf("op-commit time: engine %g s, cost-sim %g s", eng.timeJ, sim.timeJ)
	}
	if !relTol(eng.energyJ, sim.energyJ) {
		t.Errorf("op-commit energy: engine %g J, cost-sim %g J", eng.energyJ, sim.energyJ)
	}
	if eng.energyJ <= 0 {
		t.Error("calibrated engine trace carries no energy")
	}
}

// TestEngineCostSimOverlayTrace renders both backends into one streamed
// Chrome trace as two process sections and checks the combined artifact
// parses, keeps the sections on distinct pids, and stays monotone
// non-decreasing inside each section.
func TestEngineCostSimOverlayTrace(t *testing.T) {
	e, samples := newTestEngine(t, 31, 3)
	names := make([]string, len(e.Specs))
	for i := range e.Specs {
		names[i] = e.Specs[i].Name
	}

	var buf strings.Builder
	st := obs.NewStreamTracer(&buf, nil)
	st.NextProcess("cost-sim", names)
	cs := NewCostSim(e.Cfg)
	cs.Trace = st
	mustRunNetwork(t, cs, e.Net, e.Specs, tile.Intermittent, power.StrongPower, 1)

	st.NextProcess("engine", names)
	e.Trace = st
	e.Price = NewTracePricer(power.StrongPower, e.Cfg)
	if _, err := e.Infer(samples[0].X, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &tr); err != nil {
		t.Fatalf("overlay trace is not valid JSON: %v", err)
	}
	procs := map[string]int{}
	lastTs := map[int]float64{}
	eventsPerPid := map[int]int{}
	for _, ev := range tr.TraceEvents {
		if ev.Name == "process_name" {
			if n, ok := ev.Args["name"].(string); ok {
				procs[n] = ev.Pid
			}
			continue
		}
		if ev.Ph == "M" || ev.Cat == "layer-end" {
			// Layer-end spans are stamped at their layer's *start* time
			// (the encoder rewinds ts by the duration), so they do not
			// participate in the emission-order monotonicity invariant.
			continue
		}
		if ev.Ts < lastTs[ev.Pid]-1e-6 {
			t.Fatalf("pid %d: ts %g before %g", ev.Pid, ev.Ts, lastTs[ev.Pid])
		}
		lastTs[ev.Pid] = ev.Ts
		eventsPerPid[ev.Pid]++
	}
	simPid, ok := procs["cost-sim"]
	if !ok {
		t.Fatalf("no cost-sim process section (got %v)", procs)
	}
	engPid, ok := procs["engine"]
	if !ok {
		t.Fatalf("no engine process section (got %v)", procs)
	}
	if simPid == engPid {
		t.Fatalf("both sections share pid %d", simPid)
	}
	if eventsPerPid[simPid] == 0 || eventsPerPid[engPid] == 0 {
		t.Fatalf("empty section: cost-sim %d events, engine %d events",
			eventsPerPid[simPid], eventsPerPid[engPid])
	}
}

// TestTracePricerSupplies pins the pricer's supply handling: recharge
// dead-time is one full buffer at the harvest power, and free under a
// continuous supply.
func TestTracePricerSupplies(t *testing.T) {
	cfg := tile.DefaultConfig()
	harv := NewTracePricer(power.WeakPower, cfg)
	dt, e := harv.Price(obs.KindCharge, 0, 0, 0)
	if want := harv.M.BufferJ / power.WeakPower.Power; math.Abs(dt-want) > 1e-12 || e != 0 {
		t.Errorf("harvest charge = (%g, %g), want (%g, 0)", dt, e, want)
	}
	cont := NewTracePricer(power.ContinuousPower, cfg)
	if dt, e := cont.Price(obs.KindCharge, 0, 0, 0); dt != 0 || e != 0 {
		t.Errorf("continuous charge = (%g, %g), want free", dt, e)
	}
	if dt, e := cont.Price(obs.KindOpCommit, 100, 200, 64); dt <= 0 || e <= 0 {
		t.Errorf("op commit priced (%g, %g), want positive", dt, e)
	}
}
