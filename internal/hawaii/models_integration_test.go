package hawaii

import (
	"testing"

	"iprune/internal/dataset"
	"iprune/internal/models"
	"iprune/internal/power"
	"iprune/internal/tile"
)

// The functional engine must execute every paper model end to end and
// survive failure injection with bit-identical results — on the real
// architectures, not just the test net.
func TestEngineRunsPaperModels(t *testing.T) {
	if testing.Short() {
		t.Skip("full-model functional inference")
	}
	type app struct {
		name    string
		samples func() *dataset.Dataset
	}
	apps := []app{
		{"HAR", func() *dataset.Dataset {
			return dataset.HAR(dataset.Config{Train: 4, Test: 2, Noise: 0.5}, 1)
		}},
		{"CKS", func() *dataset.Dataset {
			return dataset.Speech(dataset.Config{Train: 4, Test: 2, Noise: 0.5}, 1)
		}},
		{"SQN", func() *dataset.Dataset {
			return dataset.Images(dataset.Config{Train: 4, Test: 2, Noise: 0.5}, 1)
		}},
	}
	cfg := tile.DefaultConfig()
	for _, a := range apps {
		net, err := models.ByName(a.name, 1)
		if err != nil {
			t.Fatal(err)
		}
		specs := tile.SpecsFromNetwork(net, cfg)
		tile.InstallMasks(net, specs)
		// Prune a third of each layer so BSR skipping is exercised.
		for _, p := range net.Prunables() {
			m := p.Mask()
			for b := 0; b < m.NumBlocks(); b += 3 {
				m.Keep[b] = false
			}
			p.ApplyMask()
		}
		eng, err := NewEngine(net, specs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		ds := a.samples()
		eng.Calibrate(ds.Train)
		clean, err := eng.Infer(ds.Test[0].X, nil)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		faulty, err := eng.Infer(ds.Test[0].X, &EveryN{N: 97})
		if err != nil {
			t.Fatalf("%s faulty: %v", a.name, err)
		}
		if faulty.Stats.Failures == 0 {
			t.Errorf("%s: injector produced no failures over %d ops", a.name, clean.Stats.Ops)
		}
		for i := range clean.Logits {
			if clean.Logits[i] != faulty.Logits[i] {
				t.Fatalf("%s: failure injection changed logit %d", a.name, i)
			}
		}
		// Committed jobs must match the analytic criterion.
		want := tile.CountNetwork(net, specs, tile.Intermittent, cfg).Jobs
		if clean.Stats.Jobs != want {
			t.Errorf("%s: engine jobs %d != analytic %d", a.name, clean.Stats.Jobs, want)
		}
	}
}

// The cost simulator must reproduce the paper's power-cycle magnitudes on
// the real models: dozens to a few hundreds of cycles per inference.
func TestPaperModelsPowerCycleCounts(t *testing.T) {
	cfg := tile.DefaultConfig()
	for _, name := range models.Names() {
		net, err := models.ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		specs := tile.SpecsFromNetwork(net, cfg)
		tile.InstallMasks(net, specs)
		cs := NewCostSim(cfg)
		res := mustRunNetwork(t, cs, net, specs, tile.Intermittent, power.StrongPower, 1)
		if res.Failures < 12 || res.Failures > 3000 {
			t.Errorf("%s: %d power cycles under strong power; paper reports dozens to a few hundreds",
				name, res.Failures)
		}
	}
}
