package hawaii

import (
	"testing"

	"iprune/internal/power"
	"iprune/internal/tile"
)

func TestTaskScheduleConservesWork(t *testing.T) {
	// Task-level preservation changes *when* results are written, not how
	// much is computed: MACs, jobs and output bytes must match the
	// job-level schedule exactly.
	net, specs, cfg := buildNet(30)
	pruneSome(net, 3)
	jobOps := ScheduleFromNetwork(net, specs, tile.Intermittent, cfg)
	tasks := TaskScheduleFromNetwork(net, specs, cfg)
	var jm, jj, jo, tm, tj, to int64
	for _, op := range jobOps {
		jm += op.MACs
		jj += op.Jobs
		jo += op.OutWrite
	}
	for _, task := range tasks {
		tm += task.MACs
		tj += task.Jobs
		to += task.OutWrite
		if !task.SerialWrite {
			t.Fatal("task missing SerialWrite")
		}
	}
	if jm != tm || jj != tj || jo != to {
		t.Errorf("work not conserved: MACs %d/%d jobs %d/%d out %d/%d", jm, tm, jj, tj, jo, to)
	}
	if len(tasks) >= len(jobOps) {
		t.Errorf("tasks (%d) should be coarser than ops (%d)", len(tasks), len(jobOps))
	}
}

func TestTaskScheduleFewerPreservationTransactions(t *testing.T) {
	// The coarse discipline's advantage is fewer preservation commits
	// (one per task instead of one per op); each commit's indicator is
	// bigger (loop indices vs a job counter), so bytes may not shrink but
	// transaction count must.
	net, specs, cfg := buildNet(31)
	jobOps := ScheduleFromNetwork(net, specs, tile.Intermittent, cfg)
	tasks := TaskScheduleFromNetwork(net, specs, cfg)
	if len(tasks) >= len(jobOps) {
		t.Errorf("task commits (%d) should undercut op commits (%d)", len(tasks), len(jobOps))
	}
}

func TestTaskLevelLosesUnderWeakPower(t *testing.T) {
	// The design trade-off the HAWAII lineage demonstrates: coarse tasks
	// pay more re-execution per failure, so under weak harvested power
	// the job-level discipline wins end-to-end latency.
	net, specs, cfg := buildNet(32)
	cs := NewCostSim(cfg)
	jobOps := ScheduleFromNetwork(net, specs, tile.Intermittent, cfg)
	tasks := TaskScheduleFromNetwork(net, specs, cfg)
	job := mustRun(t, cs, jobOps, tile.Intermittent, power.WeakPower, 1)
	task := mustRun(t, cs, tasks, tile.Intermittent, power.WeakPower, 1)
	if task.Latency <= job.Latency {
		t.Errorf("task-level %.4fs should be slower than job-level %.4fs under weak power",
			task.Latency, job.Latency)
	}
	if task.Break.RecoveryTime <= job.Break.RecoveryTime {
		t.Errorf("task-level recovery %.4fs should exceed job-level %.4fs",
			task.Break.RecoveryTime, job.Break.RecoveryTime)
	}
}

func TestTaskLevelCompletesUnderContinuousPower(t *testing.T) {
	net, specs, cfg := buildNet(33)
	cs := NewCostSim(cfg)
	tasks := TaskScheduleFromNetwork(net, specs, cfg)
	res := mustRun(t, cs, tasks, tile.Intermittent, power.ContinuousPower, 1)
	if res.Failures != 0 || res.Latency <= 0 {
		t.Errorf("continuous task run: failures=%d latency=%v", res.Failures, res.Latency)
	}
}

func TestTaskScheduleSkipsPrunedPanels(t *testing.T) {
	net, specs, cfg := buildNet(34)
	before := len(TaskScheduleFromNetwork(net, specs, cfg))
	// Prune every block of the first k-panel of the first layer.
	p := net.Prunables()[0]
	m := p.Mask()
	bcs := m.BlockCols()
	for br := 0; br < m.BlockRows(); br++ {
		m.Keep[br*bcs] = false
	}
	p.ApplyMask()
	after := len(TaskScheduleFromNetwork(net, specs, cfg))
	if after >= before {
		t.Errorf("pruned panel not skipped: %d -> %d tasks", before, after)
	}
}
