package hawaii

import (
	"math"
	"testing"

	"iprune/internal/obs"
	"iprune/internal/power"
	"iprune/internal/tile"
)

// ---------------------------------------------------------------------------
// Trace invariants: functional engine under injected failures

// checkPowerPairing scans an event stream and verifies power-on/off
// discipline: events alternate (no double-on, no off-without-on) and the
// stream ends powered off with balanced pair counts.
func checkPowerPairing(t *testing.T, events []obs.Event) (ons, offs int) {
	t.Helper()
	powered := false
	for i := range events {
		switch events[i].Kind {
		case obs.KindPowerOn:
			if powered {
				t.Fatalf("event %d: power-on while already powered", i)
			}
			powered = true
			ons++
		case obs.KindPowerOff:
			if !powered {
				t.Fatalf("event %d: power-off while not powered", i)
			}
			powered = false
			offs++
		}
	}
	if powered {
		t.Error("trace ends still powered on")
	}
	if ons != offs {
		t.Errorf("unbalanced power events: %d on, %d off", ons, offs)
	}
	return ons, offs
}

func TestEngineTraceInvariantsUnderEveryN(t *testing.T) {
	e, samples := newTestEngine(t, 30, 3)
	rec := obs.NewRecorder()
	e.Trace = rec
	res, err := e.Infer(samples[0].X, &EveryN{N: 7})
	if err != nil {
		t.Fatal(err)
	}
	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("engine emitted no events")
	}

	// Simulated step timestamps must be strictly monotonic.
	for i := 1; i < len(evs); i++ {
		if evs[i].Time <= evs[i-1].Time {
			t.Fatalf("event %d: time %g not after %g", i, evs[i].Time, evs[i-1].Time)
		}
	}

	ons, _ := checkPowerPairing(t, evs)
	// One power-on per boot: the initial one plus one per failure.
	if want := int(res.Stats.Failures) + 1; ons != want {
		t.Errorf("power-ons = %d, want %d (1 + %d failures)", ons, want, res.Stats.Failures)
	}

	var failures, reexecs, commits int64
	for i := range evs {
		switch evs[i].Kind {
		case obs.KindFailure:
			failures++
		case obs.KindReExec:
			reexecs++
		case obs.KindOpCommit:
			commits++
		}
	}
	if failures != res.Stats.Failures {
		t.Errorf("trace failures = %d, stats say %d", failures, res.Stats.Failures)
	}
	if reexecs != res.Stats.ReExecOps {
		t.Errorf("trace re-execs = %d, stats say %d", reexecs, res.Stats.ReExecOps)
	}
	if commits != res.Stats.Ops {
		t.Errorf("trace op commits = %d, stats say %d", commits, res.Stats.Ops)
	}

	// The same run without tracing must behave identically (tracing is
	// observation, not simulation state).
	e2, samples2 := newTestEngine(t, 30, 3)
	res2, err := e2.Infer(samples2[0].X, &EveryN{N: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != res2.Stats {
		t.Errorf("tracing changed execution: %+v vs %+v", res.Stats, res2.Stats)
	}
}

func TestEngineTraceCleanRunHasNoFailureEvents(t *testing.T) {
	e, samples := newTestEngine(t, 31, 0)
	rec := obs.NewRecorder()
	e.Trace = rec
	if _, err := e.Infer(samples[0].X, nil); err != nil {
		t.Fatal(err)
	}
	for i, ev := range rec.Events() {
		switch ev.Kind {
		case obs.KindFailure, obs.KindReExec, obs.KindRecovery:
			t.Errorf("event %d: %s in a failure-free run", i, ev.Kind)
		}
	}
	if ons, _ := checkPowerPairing(t, rec.Events()); ons != 1 {
		t.Errorf("clean run has %d power cycles, want 1", ons)
	}
}

// ---------------------------------------------------------------------------
// Trace invariants: cost simulator

func TestCostSimTraceSumsMatchAggregate(t *testing.T) {
	for _, sup := range []power.Supply{power.ContinuousPower, power.StrongPower, power.WeakPower} {
		t.Run(sup.Name, func(t *testing.T) {
			net, specs, cfg := buildNet(32)
			pruneSome(net, 3)
			cs := NewCostSim(cfg)
			rec := obs.NewRecorder()
			cs.Trace = rec
			res := mustRunNetwork(t, cs, net, specs, tile.Intermittent, sup, 1)
			evs := rec.Events()

			// Merged power-sim + cost-sim stream must be time-ordered.
			for i := 1; i < len(evs); i++ {
				if evs[i].Time < evs[i-1].Time-1e-9 {
					t.Fatalf("event %d (%s): time %g before %g", i, evs[i].Kind, evs[i].Time, evs[i-1].Time)
				}
			}
			checkPowerPairing(t, evs)

			s := obs.Collect(evs)
			if len(s.Layers) != len(specs) {
				t.Fatalf("collected %d layers, want %d", len(s.Layers), len(specs))
			}
			// Per-layer latency and energy sums reproduce the aggregate
			// result exactly (the LayerEnd events carry deltas of the same
			// accumulators the simulator reports).
			relTol := func(got, want float64) bool {
				return math.Abs(got-want) <= 1e-9*math.Max(1, math.Abs(want))
			}
			if !relTol(s.Total.Latency, res.Latency) {
				t.Errorf("layer latency sum %g != aggregate %g", s.Total.Latency, res.Latency)
			}
			if !relTol(s.Total.Energy, res.Energy) {
				t.Errorf("layer energy sum %g != aggregate %g", s.Total.Energy, res.Energy)
			}
			if int(s.Total.Failures) != res.Failures {
				t.Errorf("trace failures %d != aggregate %d", s.Total.Failures, res.Failures)
			}
			if sup.Continuous && len(s.Cycles) != 1 {
				t.Errorf("continuous run has %d power cycles, want 1", len(s.Cycles))
			}
			if !sup.Continuous && len(s.Cycles) != res.Failures+1 {
				t.Errorf("got %d power cycles, want %d failures + 1", len(s.Cycles), res.Failures)
			}
		})
	}
}

func TestCostSimTracingDoesNotPerturbResult(t *testing.T) {
	net, specs, cfg := buildNet(33)
	cs := NewCostSim(cfg)
	plain := mustRunNetwork(t, cs, net, specs, tile.Intermittent, power.StrongPower, 2)
	traced := NewCostSim(cfg)
	traced.Trace = obs.NewRecorder()
	got := mustRunNetwork(t, traced, net, specs, tile.Intermittent, power.StrongPower, 2)
	if plain != got {
		t.Errorf("tracing changed the simulation result:\nplain  %+v\ntraced %+v", plain, got)
	}
}
