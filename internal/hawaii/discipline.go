package hawaii

import (
	"iprune/internal/nn"
	"iprune/internal/tile"
)

// The paper's Section I contrasts two progress-preservation designs:
// HAWAII footprints every accelerator output with a job counter (fine
// granularity, minimal re-execution), while SONIC/TAILS preserves at
// task granularity — loop indices saved when an atomic task finishes,
// with the whole interrupted task re-executed after a failure. This file
// models the task-level discipline so the trade-off can be simulated
// and benchmarked against the job-level engine the rest of the package
// implements.

// taskIndicatorBytes is the progress indicator of a task-level runtime:
// a handful of loop indices rather than one job counter.
const taskIndicatorBytes = 16

// BuildTaskSchedule lowers a layer into atomic tasks: one task covers a
// whole (output-column tile × k-panel) group — every surviving block row
// of one k-block, the unit the input-stationary loop naturally brackets.
// Within a task, outputs accumulate in VM; the task's outputs and loop
// indices are written back only when it completes, so the write stream
// cannot overlap the task's compute (SerialWrite). A failure inside a
// task loses the whole task: RefetchBytes covers all its operands.
//
// Each returned Op therefore *is* one task; the CostSim executes task
// schedules unchanged.
func BuildTaskSchedule(spec *tile.LayerSpec, mask *nn.BlockMask, cfg tile.Config) []Op {
	if mask != nil && (mask.Rows != spec.M || mask.Cols != spec.K || mask.BM != spec.TM || mask.BK != spec.TK) {
		panic("hawaii: mask geometry does not match spec for " + spec.Name)
	}
	eb := int64(cfg.ElemBytes)
	brs := (spec.M + spec.TM - 1) / spec.TM
	bcs := (spec.K + spec.TK - 1) / spec.TK
	nTiles := (spec.N + spec.TN - 1) / spec.TN
	keep := func(br, bc int) bool {
		return mask == nil || mask.Keep[br*bcs+bc]
	}
	var tasks []Op
	for j := 0; j < nTiles; j++ {
		tn := min(spec.TN, spec.N-j*spec.TN)
		for bc := 0; bc < bcs; bc++ {
			kk := min(spec.TK, spec.K-bc*spec.TK)
			var task Op
			task.Layer = spec.Index
			task.SerialWrite = true
			rows := 0
			for br := 0; br < brs; br++ {
				if !keep(br, bc) {
					continue
				}
				rm := min(spec.TM, spec.M-br*spec.TM)
				rows += rm
				task.MACs += int64(rm) * int64(kk) * int64(tn)
				task.Jobs += int64(rm) * int64(tn)
				task.WeightRead += int64(rm) * int64(kk) * eb
			}
			if rows == 0 {
				continue // fully pruned k-panel: no task at all
			}
			task.InputRead = int64(kk) * int64(tn) * eb
			task.OutWrite = int64(rows) * int64(tn) * eb
			task.IndWrite = taskIndicatorBytes
			task.RefetchBytes = task.WeightRead + task.InputRead + task.OutWrite
			tasks = append(tasks, task)
		}
	}
	return tasks
}

// TaskScheduleFromNetwork builds the whole-model task schedule.
func TaskScheduleFromNetwork(net *nn.Network, specs []tile.LayerSpec, cfg tile.Config) []Op {
	prunables := net.Prunables()
	var tasks []Op
	for i := range specs {
		tasks = append(tasks, BuildTaskSchedule(&specs[i], prunables[i].Mask(), cfg)...)
	}
	return tasks
}
