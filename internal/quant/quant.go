// Package quant converts trained float32 networks into the 16-bit
// fixed-point deployment form used on the device (paper Section IV-A:
// "model parameters are quantized from the 32-bit floating point
// representation used during pruning to a 16-bit fixed point
// representation, without a significant accuracy loss").
//
// Two things live here: (1) the deployable model — every prunable layer's
// weights in BSR Q15 form plus quantized biases, with exact NVM size
// accounting; and (2) deployment-accuracy evaluation, which runs the
// float network with weights and activations rounded through Q15 at every
// layer boundary, so the measured accuracy is the accuracy of the values
// the device actually computes with.
package quant

import (
	"fmt"

	"iprune/internal/fixed"
	"iprune/internal/nn"
	"iprune/internal/sparse"
	"iprune/internal/tensor"
	"iprune/internal/tile"
)

// LayerWeights is the deployable form of one prunable layer.
type LayerWeights struct {
	Name    string
	Weights *sparse.Matrix
	Biases  fixed.Tensor
}

// Model is a deployable quantized model.
type Model struct {
	Name   string
	Layers []LayerWeights
}

// Deploy quantizes the network's prunable layers into BSR form using the
// block geometry from specs (which must come from the same network).
func Deploy(net *nn.Network, specs []tile.LayerSpec) (*Model, error) {
	prunables := net.Prunables()
	if len(prunables) != len(specs) {
		return nil, fmt.Errorf("quant: %d specs for %d prunable layers", len(specs), len(prunables))
	}
	m := &Model{Name: net.Name}
	for i, p := range prunables {
		w, rows, cols := p.WeightMatrix()
		sm, err := sparse.FromDense(w, rows, cols, p.Mask(), specs[i].TM, specs[i].TK)
		if err != nil {
			return nil, fmt.Errorf("quant: layer %s: %w", specs[i].Name, err)
		}
		var bias []float32
		switch v := p.(type) {
		case *nn.Conv2D:
			bias = v.B.Data
		case *nn.FC:
			bias = v.B.Data
		}
		m.Layers = append(m.Layers, LayerWeights{
			Name:    specs[i].Name,
			Weights: sm,
			Biases:  fixed.QuantizeSlice(bias),
		})
	}
	return m, nil
}

// SizeBytes reports the model's NVM footprint: BSR payloads and indices
// plus biases — "all model parameters and indexing structures in the BSR
// format" (Table III).
func (m *Model) SizeBytes() int {
	total := 0
	for _, l := range m.Layers {
		total += l.Weights.SizeBytes() + l.Biases.SizeBytes()
	}
	return total
}

// roundQ15 fake-quantizes a slice in place: each value is rounded to the
// nearest representable Q15 value under the slice's per-tensor shift.
func roundQ15(data []float32) {
	qt := fixed.QuantizeSlice(data)
	copy(data, qt.Dequantize())
}

// QuantizeWeights returns a clone of the network whose prunable-layer
// weights and biases have been rounded through Q15 (per-tensor shift).
func QuantizeWeights(net *nn.Network) *nn.Network {
	c := net.Clone()
	for _, p := range c.Prunables() {
		w, _, _ := p.WeightMatrix()
		roundQ15(w)
		p.ApplyMask()
		switch v := p.(type) {
		case *nn.Conv2D:
			roundQ15(v.B.Data)
		case *nn.FC:
			roundQ15(v.B.Data)
		}
	}
	return c
}

// ForwardQ15 runs one sample through the network, rounding the activations
// through Q15 after every layer — the deployment numerics. The input is
// rounded too. Returns the logits.
func ForwardQ15(net *nn.Network, in *tensor.Tensor) *tensor.Tensor {
	x := in.Clone()
	roundQ15(x.Data)
	for _, l := range net.Layers {
		x = l.Forward(x)
		roundQ15(x.Data)
	}
	return x
}

// PredictQ15 returns the argmax class under deployment numerics.
func PredictQ15(net *nn.Network, in *tensor.Tensor) int {
	logits := ForwardQ15(net, in)
	best, bestIdx := logits.Data[0], 0
	for i, v := range logits.Data[1:] {
		if v > best {
			best, bestIdx = v, i+1
		}
	}
	return bestIdx
}

// AccuracyQ15 evaluates top-1 accuracy under deployment numerics; call on
// a QuantizeWeights clone to measure the deployed model's accuracy.
func AccuracyQ15(net *nn.Network, samples []nn.Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if PredictQ15(net, s.X) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
