package quant

import (
	"math"
	"math/rand"
	"testing"

	"iprune/internal/nn"
	"iprune/internal/tensor"
	"iprune/internal/tile"
)

func buildNet(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	n := nn.NewNetwork("q", 3)
	n.Add(nn.NewConv2D("c1", tensor.ConvGeom{InC: 1, InH: 6, InW: 6, OutC: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, rng))
	n.Add(nn.NewReLU("r1"))
	n.Add(nn.NewMaxPool2D("p1", 4, 6, 6, 2, 2))
	n.Add(nn.NewFlatten("fl"))
	n.Add(nn.NewFC("f1", 4*3*3, 3, rng))
	return n
}

func TestDeployProducesAllLayers(t *testing.T) {
	net := buildNet(1)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	m, err := Deploy(net, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Layers) != 2 {
		t.Fatalf("layers = %d, want 2", len(m.Layers))
	}
	if m.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
}

func TestDeploySizeShrinksWithPruning(t *testing.T) {
	net := buildNet(2)
	cfg := tile.DefaultConfig()
	specs := tile.SpecsFromNetwork(net, cfg)
	tile.InstallMasks(net, specs)
	full, err := Deploy(net, specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range net.Prunables() {
		mask := p.Mask()
		for b := 0; b < mask.NumBlocks(); b += 2 {
			mask.Keep[b] = false
		}
		p.ApplyMask()
	}
	pruned, err := Deploy(net, specs)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.SizeBytes() >= full.SizeBytes() {
		t.Errorf("pruned size %d >= full %d", pruned.SizeBytes(), full.SizeBytes())
	}
}

func TestDeploySpecMismatch(t *testing.T) {
	net := buildNet(3)
	if _, err := Deploy(net, nil); err == nil {
		t.Error("expected error for missing specs")
	}
}

func TestQuantizeWeightsCloseToFloat(t *testing.T) {
	net := buildNet(4)
	q := QuantizeWeights(net)
	for i, p := range net.Prunables() {
		w, _, _ := p.WeightMatrix()
		qw, _, _ := q.Prunables()[i].WeightMatrix()
		var maxAbs float64
		for _, v := range w {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		tol := math.Max(maxAbs, 1) / (1 << 14)
		for j := range w {
			if math.Abs(float64(qw[j]-w[j])) > tol {
				t.Fatalf("layer %d weight %d: quantized %v vs %v", i, j, qw[j], w[j])
			}
		}
	}
	// Original must be untouched.
	if &net.Layers[0].(*nn.Conv2D).W.Data[0] == &q.Layers[0].(*nn.Conv2D).W.Data[0] {
		t.Error("QuantizeWeights did not clone")
	}
}

func TestForwardQ15MatchesFloatOnEasyInput(t *testing.T) {
	net := buildNet(5)
	rng := rand.New(rand.NewSource(6))
	q := QuantizeWeights(net)
	agree := 0
	const n = 50
	for i := 0; i < n; i++ {
		in := tensor.New(1, 6, 6)
		for j := range in.Data {
			in.Data[j] = rng.Float32()*2 - 1
		}
		if net.Predict(in) == PredictQ15(q, in) {
			agree++
		}
	}
	if agree < n*9/10 {
		t.Errorf("float/Q15 agreement %d/%d too low", agree, n)
	}
}

func TestAccuracyQ15Empty(t *testing.T) {
	net := buildNet(7)
	if AccuracyQ15(net, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestAccuracyQ15OnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := buildNet(9)
	var samples []nn.Sample
	for i := 0; i < 60; i++ {
		label := i % 3
		x := tensor.New(1, 6, 6)
		for j := range x.Data {
			x.Data[j] = float32(rng.NormFloat64()*0.2) + float32(label-1)*0.5
		}
		samples = append(samples, nn.Sample{X: x, Label: label})
	}
	opt := nn.NewSGD(0.05, 0.9)
	for e := 0; e < 8; e++ {
		nn.TrainEpoch(net, samples, opt, 8, rng)
	}
	floatAcc := nn.Accuracy(net, samples)
	q := QuantizeWeights(net)
	qAcc := AccuracyQ15(q, samples)
	if floatAcc < 0.9 {
		t.Fatalf("float accuracy too low to test quantization: %v", floatAcc)
	}
	if math.Abs(qAcc-floatAcc) > 0.1 {
		t.Errorf("Q15 accuracy %v deviates from float %v", qAcc, floatAcc)
	}
}
